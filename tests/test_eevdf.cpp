// EEVDF queue semantics, the qos spec mini-language, and the policy's
// end-to-end behavior. The randomized invariant harness (zero-sum lag,
// lag bounds, eligibility over long random streams) lives in
// slow_eevdf.cpp; here the properties are pinned on small, hand-checkable
// scenarios plus differential runs against out_of_order.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/engine.h"
#include "core/experiment.h"
#include "sched/eevdf.h"
#include "test_support.h"
#include "workload/in2p3.h"

namespace ppsched {
namespace {

Subjob sub(JobId job, UserId user, QosClass cls, std::uint64_t events) {
  Subjob sj;
  sj.job = job;
  sj.range = {0, events};
  sj.user = user;
  sj.qos = cls;
  return sj;
}

double totalLag(const EevdfQueue& q) {
  double sum = 0.0;
  for (const auto& a : q.accounts()) sum += a.lag;
  return sum;
}

// --------------------------------------------------------------------------
// EevdfQueue: dispatch order.

TEST(EevdfQueue, EmptyPops) {
  EevdfQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_DOUBLE_EQ(q.virtualTime(), 0.0);
}

TEST(EevdfQueue, SingleAccountIsFifo) {
  EevdfQueue q;
  for (JobId j = 0; j < 5; ++j) q.enqueue(sub(j, 1, QosClass::Bulk, 100), 1.0);
  for (JobId j = 0; j < 5; ++j) EXPECT_EQ(q.pop()->job, j);
  EXPECT_TRUE(q.empty());
}

TEST(EevdfQueue, EqualWeightsDegenerateToFifoAcrossAccounts) {
  // One equal-sized request per user, equal weights: every deadline ties,
  // so the activation-order tie-break must reproduce plain FIFO.
  EevdfQueue q;
  for (JobId j = 0; j < 8; ++j) q.enqueue(sub(j, 10 + j, QosClass::Bulk, 500), 1.0);
  for (JobId j = 0; j < 8; ++j) EXPECT_EQ(q.pop()->job, j);
}

TEST(EevdfQueue, EqualWeightsAlternateUnderBacklog) {
  // Two equal-weight accounts with two requests each: after a dispatch the
  // charged account falls behind virtual time (ineligible), so service must
  // strictly alternate A B A B, never A A B B.
  EevdfQueue q;
  q.enqueue(sub(0, 1, QosClass::Bulk, 100), 1.0);
  q.enqueue(sub(1, 1, QosClass::Bulk, 100), 1.0);
  q.enqueue(sub(2, 2, QosClass::Bulk, 100), 1.0);
  q.enqueue(sub(3, 2, QosClass::Bulk, 100), 1.0);
  EXPECT_EQ(q.pop()->user, 1u);
  EXPECT_EQ(q.pop()->user, 2u);
  EXPECT_EQ(q.pop()->user, 1u);
  EXPECT_EQ(q.pop()->user, 2u);
}

TEST(EevdfQueue, WeightsSkewServiceProportionally) {
  // User 2 has 4x the weight of user 1; over any prefix of the dispatch
  // sequence it should receive about 4x the service.
  EevdfQueue q;
  for (JobId j = 0; j < 50; ++j) q.enqueue(sub(2 * j, 1, QosClass::Bulk, 100), 1.0);
  for (JobId j = 0; j < 50; ++j) q.enqueue(sub(2 * j + 1, 2, QosClass::Interactive, 100), 4.0);
  int heavy = 0;
  for (int i = 0; i < 25; ++i) heavy += q.pop()->user == 2u ? 1 : 0;
  EXPECT_GE(heavy, 18);  // ~4/5 of 25, with start-up rounding slack
  EXPECT_LE(heavy, 22);
  // Both queues drain completely.
  int rest = 0;
  while (q.pop()) ++rest;
  EXPECT_EQ(rest, 75);
}

TEST(EevdfQueue, ZeroSumLagAndBacklogBookkeeping) {
  EevdfQueue q;
  q.enqueue(sub(0, 1, QosClass::Bulk, 300), 1.0);
  q.enqueue(sub(1, 2, QosClass::Interactive, 200), 4.0);
  q.enqueue(sub(2, 3, QosClass::Bulk, 100), 2.0);
  EXPECT_EQ(q.queuedSubjobs(), 3u);
  EXPECT_EQ(q.queuedEvents(), 600u);
  EXPECT_EQ(q.maxRequestEvents(), 300u);
  EXPECT_NEAR(totalLag(q), 0.0, 1e-9);
  (void)q.pop();
  EXPECT_NEAR(totalLag(q), 0.0, 1e-9);  // zero-sum holds after a charge
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.queuedEvents(), 0u);
}

TEST(EevdfQueue, RefundUndoesTheCharge) {
  EevdfQueue q;
  q.enqueue(sub(0, 1, QosClass::Bulk, 100), 1.0);
  q.enqueue(sub(1, 1, QosClass::Bulk, 100), 1.0);
  (void)q.pop();
  const double charged = q.accounts().front().vruntime;
  q.refund(1, QosClass::Bulk, 100);
  EXPECT_NEAR(q.accounts().front().vruntime, charged - 100.0, 1e-9);
  // Refunding an account that was never seen is a no-op, not a crash.
  q.refund(99, QosClass::Interactive, 50);
}

TEST(EevdfQueue, LateJoinerDebtIsCappedAtOneRequest) {
  // Drive one account far ahead in virtual time, then let a fresh account
  // join: it must join at V (no free history), and when the *first* account
  // re-joins later its carried debt is capped at one incoming request.
  EevdfQueue q;
  for (JobId j = 0; j < 10; ++j) q.enqueue(sub(j, 1, QosClass::Bulk, 100), 1.0);
  for (int i = 0; i < 10; ++i) (void)q.pop();  // drain: v_1 = 1000, V frozen
  q.enqueue(sub(20, 2, QosClass::Bulk, 100), 1.0);
  const double v = q.virtualTime();
  q.enqueue(sub(21, 1, QosClass::Bulk, 100), 1.0);  // rejoins with v_old = 1000
  for (const auto& a : q.accounts()) {
    if (a.key.user == 1) {
      EXPECT_LE(a.vruntime, v + 100.0 / a.weight + 1e-9);  // debt <= one request
    }
  }
  // The fresh account is not starved by user 1's history.
  EXPECT_EQ(q.pop()->user, 2u);
}

TEST(EevdfQueue, AffinityWindowTradesOrderForCheapHeads) {
  // Same-deadline heads: within the window the costly head loses, with
  // window 0 strict EEVDF order (activation order) wins regardless of cost.
  const auto costly = [](const Subjob& sj) { return sj.user == 1 ? 10.0 : 1.0; };
  EevdfQueue strict;
  strict.enqueue(sub(0, 1, QosClass::Bulk, 100), 1.0);
  strict.enqueue(sub(1, 2, QosClass::Bulk, 100), 1.0);
  EXPECT_EQ(strict.popPreferring(costly, 0)->user, 1u);
  EevdfQueue windowed;
  windowed.enqueue(sub(0, 1, QosClass::Bulk, 100), 1.0);
  windowed.enqueue(sub(1, 2, QosClass::Bulk, 100), 1.0);
  EXPECT_EQ(windowed.popPreferring(costly, 1000)->user, 2u);
}

TEST(EevdfQueue, DeterministicForIdenticalStreams) {
  auto drive = [] {
    EevdfQueue q;
    std::ostringstream order;
    // Interleave enqueues and pops with mixed weights and sizes.
    for (JobId j = 0; j < 30; ++j) {
      const UserId user = j % 5;
      const bool inter = user >= 3;
      q.enqueue(sub(j, user, inter ? QosClass::Interactive : QosClass::Bulk,
                    100 + 37 * (j % 7)),
                inter ? 4.0 : 1.0);
      if (j % 3 == 2) order << q.pop()->job << ' ';
    }
    while (auto sj = q.pop()) order << sj->job << ' ';
    return order.str();
  };
  EXPECT_EQ(drive(), drive());
}

// --------------------------------------------------------------------------
// The qos spec mini-language.

TEST(QosSpec, RoundTripsThroughFormat) {
  QosParams q;
  q.bulkWeight = 2.0;
  q.interactiveWeight = 9.0;
  q.interactiveDeadline = 900.0;
  q.affinityWindowEvents = 123;
  q.interactiveGroups = {"lhcb", "atlas"};
  const QosParams back = parseQosSpec(formatQosSpec(q));
  EXPECT_DOUBLE_EQ(back.bulkWeight, 2.0);
  EXPECT_DOUBLE_EQ(back.interactiveWeight, 9.0);
  EXPECT_DOUBLE_EQ(back.interactiveDeadline, 900.0);
  EXPECT_EQ(back.affinityWindowEvents, 123u);
  EXPECT_EQ(back.interactiveGroups, (std::vector<std::string>{"lhcb", "atlas"}));
}

TEST(QosSpec, EmptySpecKeepsDefaults) {
  const QosParams q = parseQosSpec("");
  EXPECT_DOUBLE_EQ(q.bulkWeight, 1.0);
  EXPECT_DOUBLE_EQ(q.interactiveWeight, 4.0);
  EXPECT_DOUBLE_EQ(q.interactiveDeadline, 0.0);
}

TEST(QosSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parseQosSpec("xweight=1"), std::invalid_argument);     // unknown key
  EXPECT_THROW(parseQosSpec("iweight=0"), std::invalid_argument);     // weight <= 0
  EXPECT_THROW(parseQosSpec("bweight=-2"), std::invalid_argument);
  EXPECT_THROW(parseQosSpec("ideadline=-5"), std::invalid_argument);  // negative deadline
  EXPECT_THROW(parseQosSpec("iweight=abc"), std::invalid_argument);
  EXPECT_THROW(parseQosSpec("window=1.5"), std::invalid_argument);    // not an integer
  EXPECT_THROW(parseQosSpec("iweight"), std::invalid_argument);       // missing '='
}

// --------------------------------------------------------------------------
// Policy plumbing.

TEST(EevdfPolicy, DeadlineMapsToRequestSizeCap) {
  SimConfig cfg = testing::tinyConfig(2, 100'000, 50'000);
  EevdfScheduler::Params p;
  p.stripeEvents = 50'000;
  p.qos.interactiveDeadline = 2'600.0;  // / 0.26 s/event cached = 10'000 events
  auto policy = std::make_unique<EevdfScheduler>(p);
  EevdfScheduler* raw = policy.get();
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, testing::fixedSource({}), std::move(policy), metrics);
  EXPECT_NEAR(static_cast<double>(raw->requestEvents(QosClass::Interactive)), 10'000.0, 1.0);
  EXPECT_EQ(raw->requestEvents(QosClass::Bulk), 50'000u);  // no deadline: the stripe
}

ExperimentSpec skewedSpec(const char* policy, int interactiveGroups) {
  ExperimentSpec spec;
  spec.policyName = policy;
  spec.jobsPerHour = 2.0;
  spec.sim.finalize();
  spec.warmupJobs = 30;
  spec.measuredJobs = 250;
  spec.maxJobsInSystem = 2000;
  SkewedWorkloadParams wl;
  wl.totalEvents = spec.sim.totalEvents();
  wl.jobsPerHour = spec.jobsPerHour;
  wl.users = 12;
  wl.minJobEvents = 2'000;
  wl.paretoAlpha = 1.5;
  wl.groups = 6;
  wl.interactiveGroups = interactiveGroups;
  spec.sourceFactory = [wl] { return std::make_unique<SkewedWorkloadGenerator>(wl, 99); };
  return spec;
}

TEST(EevdfPolicy, EndToEndReportsPerClassStats) {
  const RunResult r = runExperiment(skewedSpec("eevdf", 2));
  EXPECT_EQ(r.measuredJobs, 250u);
  ASSERT_EQ(r.classStats.size(), 2u);  // both classes saw measured jobs
  EXPECT_EQ(r.classStats[0].cls, QosClass::Bulk);
  EXPECT_EQ(r.classStats[1].cls, QosClass::Interactive);
  EXPECT_GT(r.classStats[0].jobs, 0u);
  EXPECT_GT(r.classStats[1].jobs, 0u);
  EXPECT_NEAR(r.classStats[0].eventShare + r.classStats[1].eventShare, 1.0, 1e-9);
  EXPECT_GT(r.weightedUserFairness, 0.0);
  EXPECT_LE(r.weightedUserFairness, 1.0);
}

TEST(EevdfPolicy, SurvivesNodeFailuresWithRefunds) {
  ExperimentSpec spec = skewedSpec("eevdf", 2);
  spec.measuredJobs = 120;
  spec.sim.failures.meanTimeBetweenFailuresSec = 20 * units::hour;
  spec.sim.failures.meanTimeToRepairSec = 1 * units::hour;
  const RunResult r = runExperiment(spec);
  EXPECT_EQ(r.measuredJobs, 120u);  // every measured job still completes
  EXPECT_GT(r.nodeFailures, 0u);    // ... and failures actually happened
}

// Differential: with equal weights, no deadlines and no affinity window,
// EEVDF is just a fair drain of the same work — aggregate throughput must
// match out_of_order within a small tolerance (both are work-conserving),
// and the weighted Jain index must not fall below the class-blind baseline.
TEST(EevdfPolicy, EqualWeightsMatchOutOfOrderThroughput) {
  ExperimentSpec eevdf = skewedSpec("eevdf", 0);
  eevdf.policyParams.qos.interactiveWeight = 1.0;  // equal weights
  eevdf.policyParams.qos.affinityWindowEvents = 0;
  ExperimentSpec ooo = skewedSpec("out_of_order", 0);
  const RunResult re = runExperiment(eevdf);
  const RunResult ro = runExperiment(ooo);
  ASSERT_FALSE(re.overloaded);
  ASSERT_FALSE(ro.overloaded);
  EXPECT_NEAR(re.throughputJobsPerHour, ro.throughputJobsPerHour,
              0.05 * ro.throughputJobsPerHour);
  EXPECT_GE(re.weightedUserFairness, ro.weightedUserFairness - 0.05);
}

TEST(EevdfPolicy, InteractiveClassWaitsLessUnderBacklog) {
  // Overloaded daytime peaks (diurnal wave beyond the farm's capacity):
  // the 4x-weighted interactive class must see the shorter mean wait.
  ExperimentSpec spec = skewedSpec("eevdf", 2);
  spec.jobsPerHour = 4.0;
  spec.sourceFactory = nullptr;
  SkewedWorkloadParams wl;
  wl.totalEvents = spec.sim.totalEvents();
  wl.jobsPerHour = spec.jobsPerHour;
  wl.users = 12;
  wl.minJobEvents = 2'000;
  wl.paretoAlpha = 1.5;
  wl.groups = 6;
  wl.interactiveGroups = 2;
  wl.diurnalAmplitude = 0.6;
  spec.sourceFactory = [wl] { return std::make_unique<SkewedWorkloadGenerator>(wl, 99); };
  const RunResult r = runExperiment(spec);
  ASSERT_EQ(r.classStats.size(), 2u);
  EXPECT_LT(r.classStats[1].meanWait, r.classStats[0].meanWait);  // interactive < bulk
  EXPECT_LT(r.classStats[1].p95Wait, r.classStats[0].p95Wait);
}

}  // namespace
}  // namespace ppsched
