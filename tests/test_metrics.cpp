// MetricsCollector: per-job accounting, warm-up exclusion, overload verdict.
#include "core/metrics.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace ppsched {
namespace {

Job mkJob(JobId id, SimTime arrival, std::uint64_t events) {
  return Job{id, arrival, {0, events}};
}

TEST(Metrics, JobLifecycle) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 100.0, 1000), 100.0);
  EXPECT_EQ(m.arrivedJobs(), 1u);
  EXPECT_EQ(m.jobsInSystem(), 1u);
  m.onFirstStart(0, 150.0);
  m.onCompletion(0, 950.0);
  EXPECT_EQ(m.completedJobs(), 1u);
  EXPECT_EQ(m.jobsInSystem(), 0u);

  const JobRecord& rec = m.record(0);
  EXPECT_DOUBLE_EQ(rec.waitingTime(), 50.0);
  EXPECT_DOUBLE_EQ(rec.processingTime(), 800.0);
}

TEST(Metrics, SpeedupUsesPerJobReference) {
  CostModel serial;
  serial.pipelined = false;  // paper reference: 0.8 s/event uncached
  MetricsCollector m(serial, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 1000), 0.0);  // reference: 1000 * 0.8 = 800 s
  m.onFirstStart(0, 0.0);
  m.onCompletion(0, 400.0);  // processing 400 s -> speedup 2
  const RunResult r = m.finalize(400.0);
  EXPECT_EQ(r.measuredJobs, 1u);
  EXPECT_DOUBLE_EQ(r.avgSpeedup, 2.0);
}

TEST(Metrics, FirstStartOnlyRecordsOnce) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onFirstStart(0, 10.0);
  m.onFirstStart(0, 99.0);  // later piece starting elsewhere
  EXPECT_DOUBLE_EQ(m.record(0).firstStart, 10.0);
}

TEST(Metrics, WarmupJobsExcluded) {
  MetricsCollector m(CostModel{}, {2, 0.0});
  for (JobId i = 0; i < 4; ++i) {
    m.onArrival(mkJob(i, i * 1000.0, 100), i * 1000.0);
    m.onFirstStart(i, i * 1000.0 + 5.0);
    m.onCompletion(i, i * 1000.0 + 105.0);
  }
  const RunResult r = m.finalize(500.0);
  EXPECT_EQ(r.completedJobs, 4u);
  EXPECT_EQ(r.measuredJobs, 2u);  // ids 2 and 3
}

TEST(Metrics, SchedulingDelaySubtractedInExDelay) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onSchedulingDelay(0, 300.0);
  m.onFirstStart(0, 500.0);
  m.onCompletion(0, 600.0);
  const RunResult r = m.finalize(600.0);
  EXPECT_DOUBLE_EQ(r.avgWait, 500.0);
  EXPECT_DOUBLE_EQ(r.avgWaitExDelay, 200.0);
}

TEST(Metrics, IncompleteJobsNotMeasured) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onFirstStart(0, 1.0);
  const RunResult r = m.finalize(100.0);
  EXPECT_EQ(r.measuredJobs, 0u);
  EXPECT_EQ(r.arrivedJobs, 1u);
}

TEST(Metrics, EventSourceAccounting) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onEventsProcessed(DataSource::LocalCache, 60, 0.0);
  m.onEventsProcessed(DataSource::Tertiary, 30, 0.0);
  m.onEventsProcessed(DataSource::RemoteCache, 10, 0.0);
  const RunResult r = m.finalize(1.0);
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.6);
  EXPECT_DOUBLE_EQ(r.remoteReadFraction, 0.1);
  EXPECT_EQ(r.tertiaryEvents, 30u);
}

TEST(Metrics, GuardsAgainstProtocolViolations) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  EXPECT_THROW(m.record(0), std::out_of_range);
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  EXPECT_THROW(m.onCompletion(0, 1.0), std::logic_error);  // never started
  m.onFirstStart(0, 0.5);
  m.onCompletion(0, 1.0);
  EXPECT_THROW(m.onCompletion(0, 2.0), std::logic_error);  // completed twice
  // Sparse / out-of-order ids rejected.
  EXPECT_THROW(m.onArrival(mkJob(5, 3.0, 10), 3.0), std::logic_error);
}

TEST(Metrics, SteadyStateIsNotOverloaded) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  // Alternating arrival/completion: in-system count stays at 0/1.
  SimTime t = 0.0;
  for (JobId i = 0; i < 100; ++i) {
    m.onArrival(mkJob(i, t, 100), t);
    m.onFirstStart(i, t);
    m.onCompletion(i, t + 50.0);
    t += 100.0;
  }
  const RunResult r = m.finalize(t);
  EXPECT_FALSE(r.overloaded);
  EXPECT_NEAR(r.throughputJobsPerHour, 36.0, 1.0);  // one per 100 s
}

TEST(Metrics, UnboundedBacklogIsOverloaded) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  SimTime t = 0.0;
  // Arrivals every 100 s, completions every 200 s: backlog grows linearly.
  JobId next = 0;
  JobId done = 0;
  for (int step = 0; step < 400; ++step) {
    t += 100.0;
    m.onArrival(mkJob(next, t, 100), t);
    m.onFirstStart(next, t);
    ++next;
    if (step % 2 == 1) {
      m.onCompletion(done, t);
      ++done;
    }
  }
  const RunResult r = m.finalize(t);
  EXPECT_TRUE(r.overloaded);
  EXPECT_GT(r.inSystemSlopePerHour, 0.0);
}

TEST(Metrics, HistogramOnRequest) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  for (JobId i = 0; i < 10; ++i) m.onArrival(mkJob(i, 0.0, 100), 0.0);
  for (JobId i = 0; i < 10; ++i) m.onFirstStart(i, 3600.0);  // one hour wait
  for (JobId i = 0; i < 10; ++i) m.onCompletion(i, 7200.0);
  const RunResult without = m.finalize(7200.0, false);
  EXPECT_TRUE(without.waitHistogram.empty());
  const RunResult with = m.finalize(7200.0, true);
  ASSERT_FALSE(with.waitHistogram.empty());
  std::uint64_t total = 0;
  for (const auto& [lo, count] : with.waitHistogram) total += count;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace ppsched
