// MetricsCollector: per-job accounting, warm-up exclusion, overload verdict.
#include "core/metrics.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace ppsched {
namespace {

Job mkJob(JobId id, SimTime arrival, std::uint64_t events) {
  return Job{id, arrival, {0, events}};
}

TEST(Metrics, JobLifecycle) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 100.0, 1000), 100.0);
  EXPECT_EQ(m.arrivedJobs(), 1u);
  EXPECT_EQ(m.jobsInSystem(), 1u);
  m.onFirstStart(0, 150.0);
  m.onCompletion(0, 950.0);
  EXPECT_EQ(m.completedJobs(), 1u);
  EXPECT_EQ(m.jobsInSystem(), 0u);

  const JobRecord& rec = m.record(0);
  EXPECT_DOUBLE_EQ(rec.waitingTime(), 50.0);
  EXPECT_DOUBLE_EQ(rec.processingTime(), 800.0);
}

TEST(Metrics, SpeedupUsesPerJobReference) {
  CostModel serial;
  serial.pipelined = false;  // paper reference: 0.8 s/event uncached
  MetricsCollector m(serial, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 1000), 0.0);  // reference: 1000 * 0.8 = 800 s
  m.onFirstStart(0, 0.0);
  m.onCompletion(0, 400.0);  // processing 400 s -> speedup 2
  const RunResult r = m.finalize(400.0);
  EXPECT_EQ(r.measuredJobs, 1u);
  EXPECT_DOUBLE_EQ(r.avgSpeedup, 2.0);
}

TEST(Metrics, FirstStartOnlyRecordsOnce) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onFirstStart(0, 10.0);
  m.onFirstStart(0, 99.0);  // later piece starting elsewhere
  EXPECT_DOUBLE_EQ(m.record(0).firstStart, 10.0);
}

TEST(Metrics, WarmupJobsExcluded) {
  MetricsCollector m(CostModel{}, {2, 0.0});
  for (JobId i = 0; i < 4; ++i) {
    m.onArrival(mkJob(i, i * 1000.0, 100), i * 1000.0);
    m.onFirstStart(i, i * 1000.0 + 5.0);
    m.onCompletion(i, i * 1000.0 + 105.0);
  }
  const RunResult r = m.finalize(500.0);
  EXPECT_EQ(r.completedJobs, 4u);
  EXPECT_EQ(r.measuredJobs, 2u);  // ids 2 and 3
}

TEST(Metrics, SchedulingDelaySubtractedInExDelay) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onSchedulingDelay(0, 300.0);
  m.onFirstStart(0, 500.0);
  m.onCompletion(0, 600.0);
  const RunResult r = m.finalize(600.0);
  EXPECT_DOUBLE_EQ(r.avgWait, 500.0);
  EXPECT_DOUBLE_EQ(r.avgWaitExDelay, 200.0);
}

TEST(Metrics, IncompleteJobsNotMeasured) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onFirstStart(0, 1.0);
  const RunResult r = m.finalize(100.0);
  EXPECT_EQ(r.measuredJobs, 0u);
  EXPECT_EQ(r.arrivedJobs, 1u);
}

TEST(Metrics, EventSourceAccounting) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onEventsProcessed(DataSource::LocalCache, 60, 0.0);
  m.onEventsProcessed(DataSource::Tertiary, 30, 0.0);
  m.onEventsProcessed(DataSource::RemoteCache, 10, 0.0);
  const RunResult r = m.finalize(1.0);
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.6);
  EXPECT_DOUBLE_EQ(r.remoteReadFraction, 0.1);
  EXPECT_EQ(r.tertiaryEvents, 30u);
}

TEST(Metrics, GuardsAgainstProtocolViolations) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  EXPECT_THROW(m.record(0), std::out_of_range);
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  EXPECT_THROW(m.onCompletion(0, 1.0), std::logic_error);  // never started
  m.onFirstStart(0, 0.5);
  m.onCompletion(0, 1.0);
  EXPECT_THROW(m.onCompletion(0, 2.0), std::logic_error);  // completed twice
  // Sparse / out-of-order ids rejected.
  EXPECT_THROW(m.onArrival(mkJob(5, 3.0, 10), 3.0), std::logic_error);
}

TEST(Metrics, SteadyStateIsNotOverloaded) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  // Alternating arrival/completion: in-system count stays at 0/1.
  SimTime t = 0.0;
  for (JobId i = 0; i < 100; ++i) {
    m.onArrival(mkJob(i, t, 100), t);
    m.onFirstStart(i, t);
    m.onCompletion(i, t + 50.0);
    t += 100.0;
  }
  const RunResult r = m.finalize(t);
  EXPECT_FALSE(r.overloaded);
  EXPECT_NEAR(r.throughputJobsPerHour, 36.0, 1.0);  // one per 100 s
}

TEST(Metrics, UnboundedBacklogIsOverloaded) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  SimTime t = 0.0;
  // Arrivals every 100 s, completions every 200 s: backlog grows linearly.
  JobId next = 0;
  JobId done = 0;
  for (int step = 0; step < 400; ++step) {
    t += 100.0;
    m.onArrival(mkJob(next, t, 100), t);
    m.onFirstStart(next, t);
    ++next;
    if (step % 2 == 1) {
      m.onCompletion(done, t);
      ++done;
    }
  }
  const RunResult r = m.finalize(t);
  EXPECT_TRUE(r.overloaded);
  EXPECT_GT(r.inSystemSlopePerHour, 0.0);
}

// --------------------------------------------------------------------------
// Per-user stats and the Jain fairness index.

Job mkUserJob(JobId id, SimTime arrival, std::uint64_t events, UserId user) {
  return Job{id, arrival, {0, events}, user};
}

TEST(Metrics, PerUserStatsAndFairness) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  // User 0: three jobs of 300 events (waits 10, 20, 30); user 1: one job of
  // 100 events (wait 40).
  const std::uint64_t sizes[] = {300, 300, 300, 100};
  const UserId users[] = {0, 0, 0, 1};
  const double waits[] = {10, 20, 30, 40};
  for (JobId i = 0; i < 4; ++i) {
    const SimTime t = i * 1000.0;
    m.onArrival(mkUserJob(i, t, sizes[i], users[i]), t);
    m.onFirstStart(i, t + waits[i]);
    m.onCompletion(i, t + waits[i] + 100.0);
  }
  const RunResult r = m.finalize(4000.0);

  ASSERT_EQ(r.userStats.size(), 2u);
  // Sorted by descending served-event share: user 0 (900 of 1000) first.
  EXPECT_EQ(r.userStats[0].user, 0u);
  EXPECT_EQ(r.userStats[0].jobs, 3u);
  EXPECT_EQ(r.userStats[0].servedEvents, 900u);
  EXPECT_DOUBLE_EQ(r.userStats[0].eventShare, 0.9);
  EXPECT_DOUBLE_EQ(r.userStats[0].meanWait, 20.0);
  EXPECT_EQ(r.userStats[1].user, 1u);
  EXPECT_DOUBLE_EQ(r.userStats[1].eventShare, 0.1);
  EXPECT_DOUBLE_EQ(r.userStats[1].meanWait, 40.0);

  // Jain over {900, 100}: (1000)^2 / (2 * (810000 + 10000)) = 0.60975...
  EXPECT_NEAR(r.userFairness, 1000.0 * 1000.0 / (2 * 820000.0), 1e-12);
  EXPECT_GT(r.userFairness, 0.5);  // >= 1/n always
  EXPECT_LT(r.userFairness, 1.0);
}

TEST(Metrics, FairnessIsOneForSingleUser) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  for (JobId i = 0; i < 5; ++i) {
    m.onArrival(mkUserJob(i, i * 10.0, 100 + 50 * i, 7), i * 10.0);
    m.onFirstStart(i, i * 10.0 + 1.0);
    m.onCompletion(i, i * 10.0 + 5.0);
  }
  const RunResult r = m.finalize(100.0);
  ASSERT_EQ(r.userStats.size(), 1u);
  EXPECT_EQ(r.userStats[0].user, 7u);
  EXPECT_DOUBLE_EQ(r.userStats[0].eventShare, 1.0);
  EXPECT_DOUBLE_EQ(r.userFairness, 1.0);  // exactly, not approximately
}

TEST(Metrics, TaglessRunsReadAsTriviallyFair) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  m.onArrival(mkJob(0, 0.0, 100), 0.0);
  m.onFirstStart(0, 1.0);
  m.onCompletion(0, 2.0);
  const RunResult r = m.finalize(2.0);
  ASSERT_EQ(r.userStats.size(), 1u);
  EXPECT_EQ(r.userStats[0].user, kNoUser);
  EXPECT_DOUBLE_EQ(r.userFairness, 1.0);
}

TEST(Metrics, EqualSharesGivePerfectFairness) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  for (JobId i = 0; i < 6; ++i) {
    m.onArrival(mkUserJob(i, i * 10.0, 500, i % 3), i * 10.0);
    m.onFirstStart(i, i * 10.0);
    m.onCompletion(i, i * 10.0 + 1.0);
  }
  const RunResult r = m.finalize(100.0);
  EXPECT_EQ(r.userStats.size(), 3u);
  EXPECT_DOUBLE_EQ(r.userFairness, 1.0);
}

TEST(Metrics, UserTagsLeaveAggregatesBitIdentical) {
  // Golden pin for the user-tag extension: feeding the identical lifecycle
  // stream with and without tags must leave every pre-existing aggregate
  // bit-for-bit unchanged (tags are observational, never behavioral).
  MetricsCollector tagless(CostModel{}, {2, 0.0});
  MetricsCollector tagged(CostModel{}, {2, 0.0});
  SimTime t = 0.0;
  for (JobId i = 0; i < 40; ++i) {
    const std::uint64_t events = 100 + 37 * (i % 7);
    t += 100.0 + static_cast<double>(i % 5);
    tagless.onArrival(mkJob(i, t, events), t);
    tagged.onArrival(mkUserJob(i, t, events, i % 4), t);
    for (auto* m : {&tagless, &tagged}) {
      m->onSchedulingDelay(i, 3.0);
      m->onFirstStart(i, t + 7.5);
      m->onEventsProcessed(i % 3 == 0 ? DataSource::Tertiary : DataSource::LocalCache, events,
                           t + 8.0);
      m->onCompletion(i, t + 7.5 + 0.26 * static_cast<double>(events));
    }
  }
  const RunResult a = tagless.finalize(t + 1000.0, true);
  const RunResult b = tagged.finalize(t + 1000.0, true);

  EXPECT_EQ(a.arrivedJobs, b.arrivedJobs);
  EXPECT_EQ(a.completedJobs, b.completedJobs);
  EXPECT_EQ(a.measuredJobs, b.measuredJobs);
  EXPECT_EQ(a.avgSpeedup, b.avgSpeedup);  // exact ==, not NEAR: bit identity
  EXPECT_EQ(a.avgProcessing, b.avgProcessing);
  EXPECT_EQ(a.avgWait, b.avgWait);
  EXPECT_EQ(a.avgWaitExDelay, b.avgWaitExDelay);
  EXPECT_EQ(a.medianWait, b.medianWait);
  EXPECT_EQ(a.p95Wait, b.p95Wait);
  EXPECT_EQ(a.maxWait, b.maxWait);
  EXPECT_EQ(a.cacheHitFraction, b.cacheHitFraction);
  EXPECT_EQ(a.remoteReadFraction, b.remoteReadFraction);
  EXPECT_EQ(a.tertiaryEvents, b.tertiaryEvents);
  EXPECT_EQ(a.processedEvents, b.processedEvents);
  EXPECT_EQ(a.avgJobsInSystem, b.avgJobsInSystem);
  EXPECT_EQ(a.inSystemSlopePerHour, b.inSystemSlopePerHour);
  EXPECT_EQ(a.throughputJobsPerHour, b.throughputJobsPerHour);
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.waitHistogram, b.waitHistogram);

  // Only the new user-facing fields differ.
  EXPECT_EQ(a.userStats.size(), 1u);
  EXPECT_EQ(b.userStats.size(), 4u);
  EXPECT_DOUBLE_EQ(a.userFairness, 1.0);
}

TEST(Metrics, HistogramOnRequest) {
  MetricsCollector m(CostModel{}, {0, 0.0});
  for (JobId i = 0; i < 10; ++i) m.onArrival(mkJob(i, 0.0, 100), 0.0);
  for (JobId i = 0; i < 10; ++i) m.onFirstStart(i, 3600.0);  // one hour wait
  for (JobId i = 0; i < 10; ++i) m.onCompletion(i, 7200.0);
  const RunResult without = m.finalize(7200.0, false);
  EXPECT_TRUE(without.waitHistogram.empty());
  const RunResult with = m.finalize(7200.0, true);
  ASSERT_FALSE(with.waitHistogram.empty());
  std::uint64_t total = 0;
  for (const auto& [lo, count] : with.waitHistogram) total += count;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace ppsched
