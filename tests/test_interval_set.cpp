// IntervalSet: the data structure everything else leans on.
#include "storage/interval_set.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

namespace ppsched {
namespace {

TEST(EventRange, BasicProperties) {
  EventRange r{10, 20};
  EXPECT_EQ(r.size(), 10u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
}

TEST(EventRange, EmptyRange) {
  EventRange r{5, 5};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.contains(5));
}

TEST(EventRange, Overlaps) {
  EventRange a{10, 20};
  EXPECT_TRUE(a.overlaps({15, 25}));
  EXPECT_TRUE(a.overlaps({0, 11}));
  EXPECT_TRUE(a.overlaps({12, 13}));
  EXPECT_FALSE(a.overlaps({20, 30}));  // half-open: touching is not overlap
  EXPECT_FALSE(a.overlaps({0, 10}));
}

TEST(EventRange, Intersect) {
  EventRange a{10, 20};
  EXPECT_EQ(a.intersect({15, 25}), (EventRange{15, 20}));
  EXPECT_EQ(a.intersect({0, 100}), (EventRange{10, 20}));
  EXPECT_TRUE(a.intersect({20, 30}).empty());
}

TEST(EventRange, Prefix) {
  EventRange a{10, 20};
  EXPECT_EQ(a.prefix(3), (EventRange{10, 13}));
  EXPECT_EQ(a.prefix(10), a);
  EXPECT_EQ(a.prefix(100), a);
  EXPECT_TRUE(a.prefix(0).empty());
}

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.intervalCount(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, SingleInsert) {
  IntervalSet s;
  s.insert({10, 20});
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
}

TEST(IntervalSet, InsertEmptyIsNoop) {
  IntervalSet s{{10, 20}};
  s.insert({30, 30});
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.intervalCount(), 1u);
}

TEST(IntervalSet, DisjointInsertsStaySeparate) {
  IntervalSet s;
  s.insert({10, 20});
  s.insert({30, 40});
  EXPECT_EQ(s.intervalCount(), 2u);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_FALSE(s.contains(25));
}

TEST(IntervalSet, AdjacentInsertsMerge) {
  IntervalSet s;
  s.insert({10, 20});
  s.insert({20, 30});
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(s.containsRange({10, 30}));
}

TEST(IntervalSet, OverlappingInsertsMerge) {
  IntervalSet s;
  s.insert({10, 25});
  s.insert({20, 40});
  s.insert({5, 12});
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_EQ(s.size(), 35u);
  EXPECT_EQ(s.first(), (EventRange{5, 40}));
}

TEST(IntervalSet, InsertBridgingManyIntervals) {
  IntervalSet s{{0, 5}, {10, 15}, {20, 25}, {30, 35}};
  s.insert({4, 31});
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_EQ(s.first(), (EventRange{0, 35}));
}

TEST(IntervalSet, EraseMiddleSplits) {
  IntervalSet s{{10, 30}};
  s.erase({15, 20});
  EXPECT_EQ(s.intervalCount(), 2u);
  EXPECT_EQ(s.size(), 15u);
  EXPECT_TRUE(s.containsRange({10, 15}));
  EXPECT_TRUE(s.containsRange({20, 30}));
  EXPECT_FALSE(s.contains(17));
}

TEST(IntervalSet, EraseExact) {
  IntervalSet s{{10, 30}};
  s.erase({10, 30});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EraseAcrossIntervals) {
  IntervalSet s{{0, 10}, {20, 30}, {40, 50}};
  s.erase({5, 45});
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{0, 5}, {45, 50}}));
}

TEST(IntervalSet, EraseNonexistentIsNoop) {
  IntervalSet s{{10, 20}};
  s.erase({30, 40});
  EXPECT_EQ(s.size(), 10u);
}

TEST(IntervalSet, EraseEdgesOnly) {
  IntervalSet s{{10, 20}};
  s.erase({5, 12});
  s.erase({18, 25});
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{12, 18}}));
}

TEST(IntervalSet, ContainsRange) {
  IntervalSet s{{10, 20}, {30, 40}};
  EXPECT_TRUE(s.containsRange({12, 18}));
  EXPECT_TRUE(s.containsRange({10, 20}));
  EXPECT_FALSE(s.containsRange({15, 35}));  // gap in the middle
  EXPECT_FALSE(s.containsRange({25, 28}));
  EXPECT_TRUE(s.containsRange({13, 13}));  // empty range is always contained
}

TEST(IntervalSet, Intersects) {
  IntervalSet s{{10, 20}, {30, 40}};
  EXPECT_TRUE(s.intersects({0, 11}));
  EXPECT_TRUE(s.intersects({19, 31}));
  EXPECT_FALSE(s.intersects({20, 30}));
  EXPECT_FALSE(s.intersects({40, 50}));
  EXPECT_FALSE(s.intersects({15, 15}));
}

TEST(IntervalSet, OverlapSize) {
  IntervalSet s{{10, 20}, {30, 40}};
  EXPECT_EQ(s.overlapSize({0, 50}), 20u);
  EXPECT_EQ(s.overlapSize({15, 35}), 10u);
  EXPECT_EQ(s.overlapSize({20, 30}), 0u);
  EXPECT_EQ(s.overlapSize({12, 14}), 2u);
}

TEST(IntervalSet, IntersectWithRange) {
  IntervalSet s{{10, 20}, {30, 40}};
  const IntervalSet got = s.intersectWith(EventRange{15, 35});
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{15, 20}, {30, 35}}));
}

TEST(IntervalSet, IntersectWithSet) {
  IntervalSet a{{0, 10}, {20, 30}};
  IntervalSet b{{5, 25}};
  const IntervalSet got = a.intersectWith(b);
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{5, 10}, {20, 25}}));
  // Symmetric.
  EXPECT_EQ(b.intersectWith(a), got);
}

TEST(IntervalSet, Difference) {
  IntervalSet a{{0, 30}};
  IntervalSet b{{5, 10}, {20, 25}};
  const IntervalSet got = a.difference(b);
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{0, 5}, {10, 20}, {25, 30}}));
}

TEST(IntervalSet, InsertSetAndEraseSet) {
  IntervalSet a{{0, 5}};
  a.insert(IntervalSet{{10, 15}, {4, 6}});
  EXPECT_EQ(a.intervals(), (std::vector<EventRange>{{0, 6}, {10, 15}}));
  a.erase(IntervalSet{{2, 12}});
  EXPECT_EQ(a.intervals(), (std::vector<EventRange>{{0, 2}, {12, 15}}));
}

TEST(IntervalSet, RunAt) {
  IntervalSet s{{10, 20}, {30, 40}};
  EXPECT_EQ(s.runAt(10), (EventRange{10, 20}));
  EXPECT_EQ(s.runAt(15), (EventRange{15, 20}));
  EXPECT_TRUE(s.runAt(20).empty());
  EXPECT_TRUE(s.runAt(25).empty());
  EXPECT_EQ(s.runAt(39), (EventRange{39, 40}));
}

TEST(IntervalSet, FirstThrowsOnEmpty) {
  IntervalSet s;
  EXPECT_THROW(s.first(), std::logic_error);
}

TEST(IntervalSet, StreamOutput) {
  IntervalSet s{{1, 3}, {7, 9}};
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "{[1,3) [7,9)}");
}

TEST(IntervalSet, Clear) {
  IntervalSet s{{1, 100}};
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

// Property test: IntervalSet agrees with a reference std::set<EventIndex>
// implementation under random insert/erase sequences.
class IntervalSetRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalSetRandomized, MatchesReferenceModel) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<std::uint64_t> pos(0, 200);
  std::uniform_int_distribution<std::uint64_t> len(0, 40);
  std::uniform_int_distribution<int> op(0, 2);

  IntervalSet s;
  std::set<std::uint64_t> model;
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t b = pos(gen);
    const std::uint64_t e = b + len(gen);
    if (op(gen) != 0) {
      s.insert({b, e});
      for (std::uint64_t i = b; i < e; ++i) model.insert(i);
    } else {
      s.erase({b, e});
      for (std::uint64_t i = b; i < e; ++i) model.erase(i);
    }
    ASSERT_EQ(s.size(), model.size()) << "step " << step;
    // Spot-check membership and structural invariants.
    for (std::uint64_t probe = 0; probe <= 240; probe += 7) {
      ASSERT_EQ(s.contains(probe), model.contains(probe)) << "probe " << probe;
    }
    const auto ranges = s.intervals();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      ASSERT_LT(ranges[i].begin, ranges[i].end);
      if (i > 0) ASSERT_GT(ranges[i].begin, ranges[i - 1].end);  // disjoint, non-adjacent
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ppsched
