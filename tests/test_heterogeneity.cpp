// Heterogeneous node speeds and tertiary access latency (model extensions;
// the paper assumes identical nodes and zero Castor latency, §2.4).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

TEST(Heterogeneity, ConfigValidation) {
  SimConfig cfg = tinyConfig(2, 1000, 100);
  cfg.nodeSpeedFactors = {1.0};  // wrong size
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
  cfg.nodeSpeedFactors = {1.0, 0.0};  // non-positive
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
  cfg.nodeSpeedFactors = {1.0, 2.0};
  EXPECT_NO_THROW(cfg.finalize());
  cfg.tertiaryLatencySec = -1.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(Heterogeneity, FasterCpuShortensCpuShareOnly) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.nodeSpeedFactors = {1.0, 2.0};  // node 1 has a 2x CPU
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {5000, 6000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  // Node 0: 1000 x (0.6 + 0.2) = 800 s. Node 1: 1000 x (0.6 + 0.1) = 700 s.
  EXPECT_DOUBLE_EQ(h.metrics.record(0).processingTime(), 800.0);
  EXPECT_DOUBLE_EQ(h.metrics.record(1).processingTime(), 700.0);
}

TEST(Heterogeneity, SlowNodeOnCachedData) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.nodeSpeedFactors = {0.5};  // half-speed CPU
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // Cached: 0.06 disk + 0.2/0.5 cpu = 0.46 s/event.
  EXPECT_DOUBLE_EQ(h.engine->now(), 460.0);
}

TEST(Heterogeneity, PoliciesCompleteOnMixedCluster) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.nodeSpeedFactors = {0.5, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.25, 1.5, 2.0};
  cfg.workload.jobsPerHour = 0.9;
  cfg.finalize();
  for (const char* policy : {"splitting", "out_of_order"}) {
    MetricsCollector metrics(cfg.cost, {20, 0.0});
    Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 3),
                  makePolicy(policy), metrics);
    engine.run({.completedJobs = 120});
    EXPECT_EQ(metrics.completedJobs(), 120u) << policy;
    const RunResult r = metrics.finalize(engine.now());
    EXPECT_GT(r.avgSpeedup, 0.5) << policy;
  }
}

TEST(TertiaryLatency, AddsPerSpanCost) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000, /*maxSpan=*/500);
  cfg.tertiaryLatencySec = 30.0;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // Two 500-event tertiary spans, each paying 30 s latency.
  EXPECT_DOUBLE_EQ(h.engine->now(), 2 * 30.0 + 1000 * 0.8);
}

TEST(TertiaryLatency, CachedSpansPayNoLatency) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.tertiaryLatencySec = 100.0;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 260.0);
}

TEST(TertiaryLatency, PreemptionDuringLatencyProcessesNothing) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.tertiaryLatencySec = 60.0;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  Subjob rem;
  h.policy->timerHook = [&](TimerId) { rem = h.engine->preempt(0); };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(45.0);  // still inside the 60 s latency
  h.engine->run({});
  EXPECT_EQ(rem.range, (EventRange{0, 1000}));  // no progress yet
  EXPECT_EQ(h.engine->remainingOf(0).size(), 1000u);
}

TEST(TertiaryLatency, PenalizesFineGrainedSchedulingMore) {
  // Latency is paid once per tertiary stream, so a policy that splits work
  // into many small uncached pieces (out-of-order) loses more than the farm,
  // which streams whole jobs. Both must degrade, the farm only mildly.
  ExperimentSpec base;
  base.jobsPerHour = 0.8;
  base.warmupJobs = 50;
  base.measuredJobs = 200;
  ExperimentSpec lat = base;
  lat.sim.tertiaryLatencySec = 120.0;
  lat.sim.finalize();

  base.policyName = lat.policyName = "farm";
  const double farmDrop =
      runExperiment(lat).avgSpeedup / runExperiment(base).avgSpeedup;
  base.policyName = lat.policyName = "out_of_order";
  const double oooDrop =
      runExperiment(lat).avgSpeedup / runExperiment(base).avgSpeedup;
  EXPECT_LT(farmDrop, 1.0);
  EXPECT_GT(farmDrop, 0.9);  // ~8 spans/job, 120 s each, on a 32000 s job
  EXPECT_LT(oooDrop, farmDrop);  // fine-grained splitting pays latency often
  EXPECT_GT(oooDrop, 0.5);
}

}  // namespace
}  // namespace ppsched
