// MixedScheduler (§7 future work): immediate cached work, delayed uncached.
#include "sched/mixed.h"

#include <gtest/gtest.h>

#include "sched/delayed.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct MixedHarness {
  MixedHarness(SimConfig cfg, std::vector<Job> jobs, MixedScheduler::Params params)
      : metrics(cfg.cost, {0, 0.0}) {
    auto p = std::make_unique<MixedScheduler>(params);
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  MixedScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

MixedScheduler::Params fastParams(Duration period) {
  MixedScheduler::Params p;
  p.periodDelay = period;
  p.stripeEvents = 1000;
  p.starvationLimit = 2 * units::day;
  return p;
}

TEST(Mixed, CachedJobRunsImmediately) {
  MixedHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 10.0, {0, 1000}}},
                 fastParams(3600.0));
  h.engine->cluster().node(1).cache().insert({0, 1000}, 0.0);
  h.engine->run({});
  // Cached on node 1: no period wait. The idle node 0 may steal part of the
  // run, so processing takes at most the single-node cached time.
  EXPECT_DOUBLE_EQ(h.metrics.record(0).firstStart, 10.0);
  EXPECT_GT(h.metrics.record(0).processingTime(), 130.0);
  EXPECT_LE(h.metrics.record(0).processingTime(), 260.0);
}

TEST(Mixed, UncachedJobWaitsForPeriod) {
  MixedHarness h(tinyConfig(1, 1'000'000, 100'000), {{0, 0.0, {0, 1000}}},
                 fastParams(500.0));
  h.engine->run({});
  EXPECT_NEAR(h.metrics.record(0).firstStart, 500.0, 1e-6);
  EXPECT_NEAR(h.metrics.record(0).schedulingDelay, 500.0, 1e-6);
}

TEST(Mixed, ZeroPeriodStripesImmediately) {
  MixedHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}}, fastParams(0.0));
  h.engine->run({});
  EXPECT_NEAR(h.metrics.record(0).firstStart, 0.0, 1e-6);
  EXPECT_EQ(h.metrics.completedJobs(), 1u);
  EXPECT_EQ(h.policy->accumulatedSubjobs(), 0u);
}

TEST(Mixed, OverlappingColdJobsLoadTertiaryOncePerPeriod) {
  MixedHarness h(tinyConfig(1, 1'000'000, 100'000),
                 {{0, 0.0, {0, 3000}}, {1, 10.0, {0, 3000}}, {2, 20.0, {0, 3000}}},
                 fastParams(100.0));
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 3000u);  // one fetch serves all three jobs
}

TEST(Mixed, CachedArrivalPreemptsColdRun) {
  MixedHarness h(tinyConfig(1, 1'000'000, 100'000),
                 {{0, 0.0, {0, 5000}}, {1, 200.0, {90'000, 91'000}}}, fastParams(50.0));
  h.engine->cluster().node(0).cache().insert({90'000, 91'000}, 0.0);
  h.engine->run({});
  // Job 1 (cached) preempts job 0's uncached meta run at t=200.
  EXPECT_NEAR(h.metrics.record(1).completion, 200.0 + 260.0, 1.0);
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
}

TEST(Mixed, StarvationGuardPromotesOldMetas) {
  MixedScheduler::Params params = fastParams(100.0);
  params.starvationLimit = 2 * units::hour;
  std::vector<Job> jobs;
  jobs.push_back({0, 0.0, {0, 1000}});           // becomes cached
  jobs.push_back({1, 1.0, {500'000, 504'000}});  // cold
  SimTime t = 2.0;
  for (JobId i = 2; i < 40; ++i) {
    jobs.push_back({i, t, {0, 1000}});
    t += 270.0;
  }
  MixedHarness h(tinyConfig(1, 1'000'000, 100'000), jobs, params);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 40u);
  EXPECT_GE(h.policy->promotions(), 1u);
  EXPECT_LT(h.metrics.record(1).waitingTime(), 3 * units::hour);
}

TEST(Mixed, DrainsMixedStream) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 30; ++i) {
    jobs.push_back({i, i * 400.0, {(i % 4) * 60'000, (i % 4) * 60'000 + 3000}});
  }
  MixedHarness h(tinyConfig(3, 1'000'000, 60'000), jobs, fastParams(1800.0));
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 30u);
  EXPECT_EQ(h.policy->metaQueueSize(), 0u);
  EXPECT_EQ(h.policy->accumulatedSubjobs(), 0u);
}

TEST(Mixed, HotJobsFasterThanPureDelayed) {
  // With hot (repeat) jobs in the stream, mixed must deliver them much
  // faster than pure delayed scheduling on the same trace.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 24; ++i) {
    const bool hot = (i % 2) == 0;
    jobs.push_back({i, t, hot ? EventRange{0, 3000}
                              : EventRange{100'000 + i * 5000ull, 104'000 + i * 5000ull}});
    t += 900.0;
  }
  const SimConfig cfg = tinyConfig(2, 1'000'000, 20'000);

  MixedHarness mixed(cfg, jobs, fastParams(4 * units::hour));
  mixed.engine->run({});

  MetricsCollector mDelayed(cfg.cost, {0, 0.0});
  DelayedParams dp;
  dp.stripeEvents = 1000;
  Engine eDelayed(cfg, fixedSource(jobs),
                  std::make_unique<DelayedScheduler>(
                      dp, std::make_unique<FixedDelay>(4 * units::hour)),
                  mDelayed);
  eDelayed.run({});

  // Mean wait of the hot half under mixed must beat delayed's overall mean.
  double mixedHotWait = 0.0;
  int hotCount = 0;
  for (JobId i = 0; i < 24; i += 2) {
    if (i == 0) continue;  // first pass is cold
    mixedHotWait += mixed.metrics.record(i).waitingTime();
    ++hotCount;
  }
  mixedHotWait /= hotCount;
  const RunResult rd = mDelayed.finalize(eDelayed.now());
  EXPECT_LT(mixedHotWait, rd.avgWait);
}

}  // namespace
}  // namespace ppsched
