// Splitting helpers shared by the policies.
#include "sched/split_util.h"

#include <gtest/gtest.h>

namespace ppsched {
namespace {

Subjob mk(EventIndex b, EventIndex e) {
  Subjob sj;
  sj.job = 1;
  sj.range = {b, e};
  sj.jobArrival = 5.0;
  return sj;
}

TEST(SplitEqual, ExactPartition) {
  const auto parts = splitEqual(mk(0, 100), 4, 10);
  ASSERT_EQ(parts.size(), 4u);
  EventIndex cursor = 0;
  for (const Subjob& p : parts) {
    EXPECT_EQ(p.range.begin, cursor);
    EXPECT_EQ(p.events(), 25u);
    EXPECT_EQ(p.job, 1u);
    EXPECT_DOUBLE_EQ(p.jobArrival, 5.0);
    cursor = p.range.end;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(SplitEqual, RemainderSpreadEvenly) {
  const auto parts = splitEqual(mk(0, 10), 3, 1);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].events(), 4u);
  EXPECT_EQ(parts[1].events(), 3u);
  EXPECT_EQ(parts[2].events(), 3u);
}

TEST(SplitEqual, MinSizeLimitsParts) {
  const auto parts = splitEqual(mk(0, 35), 10, 10);
  ASSERT_EQ(parts.size(), 3u);  // 35/10 = 3 parts max
  for (const Subjob& p : parts) EXPECT_GE(p.events(), 10u);
}

TEST(SplitEqual, TinyRangeStaysWhole) {
  const auto parts = splitEqual(mk(0, 9), 4, 10);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].range, (EventRange{0, 9}));
}

TEST(SplitEqual, EmptySubjobGivesNothing) {
  EXPECT_TRUE(splitEqual(mk(5, 5), 3, 1).empty());
}

TEST(SplitProportional, BalancesFinishTimes) {
  // first at 0.26 s/event, second at 0.8 s/event: the slow side gets less.
  const auto [first, second] = splitProportional(mk(0, 1060), 0.26, 0.8, 10);
  EXPECT_EQ(first.events() + second.events(), 1060u);
  EXPECT_GT(first.events(), second.events());
  const double t1 = first.events() * 0.26;
  const double t2 = second.events() * 0.8;
  EXPECT_NEAR(t1, t2, 0.8 + 0.26);  // within one event of balance
}

TEST(SplitProportional, EqualRatesSplitInHalf) {
  const auto [first, second] = splitProportional(mk(0, 100), 1.0, 1.0, 10);
  EXPECT_EQ(first.events(), 50u);
  EXPECT_EQ(second.events(), 50u);
}

TEST(SplitProportional, TooSmallStaysWhole) {
  const auto [first, second] = splitProportional(mk(0, 15), 1.0, 1.0, 10);
  EXPECT_EQ(first.events(), 15u);
  EXPECT_TRUE(second.empty());
}

TEST(SplitProportional, RespectsMinOnBothSides) {
  // Extreme rate ratio would give the slow side < min without clamping.
  const auto [first, second] = splitProportional(mk(0, 100), 0.001, 10.0, 20);
  EXPECT_GE(first.events(), 20u);
  EXPECT_GE(second.events(), 20u);
}

class SplitByCachesTest : public ::testing::Test {
 protected:
  Cluster cluster_{3, 10'000};
};

TEST_F(SplitByCachesTest, AllUncachedIsOnePiece) {
  const auto pieces = splitByCaches(mk(0, 1000), cluster_, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].cachedOn, kNoNode);
  EXPECT_EQ(pieces[0].subjob.range, (EventRange{0, 1000}));
}

TEST_F(SplitByCachesTest, CachedRunsGetTheirNode) {
  cluster_.node(1).cache().insert({200, 500}, 1.0);
  const auto pieces = splitByCaches(mk(0, 1000), cluster_, 10);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].subjob.range, (EventRange{0, 200}));
  EXPECT_EQ(pieces[0].cachedOn, kNoNode);
  EXPECT_EQ(pieces[1].subjob.range, (EventRange{200, 500}));
  EXPECT_EQ(pieces[1].cachedOn, 1);
  EXPECT_EQ(pieces[2].subjob.range, (EventRange{500, 1000}));
  EXPECT_EQ(pieces[2].cachedOn, kNoNode);
}

TEST_F(SplitByCachesTest, PiecesPartitionTheRange) {
  cluster_.node(0).cache().insert({100, 300}, 1.0);
  cluster_.node(1).cache().insert({250, 700}, 1.0);
  cluster_.node(2).cache().insert({650, 800}, 1.0);
  const auto pieces = splitByCaches(mk(50, 950), cluster_, 10);
  EventIndex cursor = 50;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.subjob.range.begin, cursor);
    cursor = p.subjob.range.end;
  }
  EXPECT_EQ(cursor, 950u);
}

TEST_F(SplitByCachesTest, LongestRunWins) {
  cluster_.node(0).cache().insert({0, 100}, 1.0);
  cluster_.node(1).cache().insert({0, 400}, 1.0);
  const auto pieces = splitByCaches(mk(0, 400), cluster_, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].cachedOn, 1);
}

TEST_F(SplitByCachesTest, MinSizeAbsorbsTinyPieces) {
  cluster_.node(0).cache().insert({0, 5}, 1.0);  // below minSize 10
  const auto pieces = splitByCaches(mk(0, 1000), cluster_, 10);
  for (const auto& p : pieces) {
    EXPECT_GE(p.subjob.events(), 10u);
  }
}

TEST_F(SplitByCachesTest, FinalTinyTailIsMerged) {
  cluster_.node(0).cache().insert({0, 995}, 1.0);
  const auto pieces = splitByCaches(mk(0, 1000), cluster_, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].subjob.range, (EventRange{0, 1000}));
}

TEST_F(SplitByCachesTest, JobOverloadCarriesIdentity) {
  Job job;
  job.id = 9;
  job.arrival = 123.0;
  job.range = {0, 500};
  const auto pieces = splitByCaches(job, cluster_, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].subjob.job, 9u);
  EXPECT_DOUBLE_EQ(pieces[0].subjob.jobArrival, 123.0);
}

}  // namespace
}  // namespace ppsched
