// Experiment harness: runExperiment / loadSweep / findMaxSustainableLoad.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <array>

#include "sim/random.h"

namespace ppsched {
namespace {

ExperimentSpec quickSpec(const std::string& policy, double load) {
  ExperimentSpec spec;
  spec.policyName = policy;
  spec.jobsPerHour = load;
  spec.warmupJobs = 40;
  spec.measuredJobs = 120;
  spec.maxJobsInSystem = 200;
  return spec;
}

TEST(Experiment, RunOnceProducesConsistentResult) {
  const RunResult r = runExperiment(quickSpec("farm", 0.8));
  EXPECT_GE(r.completedJobs, 160u);
  EXPECT_GT(r.measuredJobs, 0u);
  EXPECT_NEAR(r.avgSpeedup, 1.0, 0.01);  // farm never speeds up
  EXPECT_FALSE(r.overloaded);
  EXPECT_GT(r.simulatedTime, 0.0);
}

TEST(Experiment, DeterministicForSameSeed) {
  const RunResult a = runExperiment(quickSpec("out_of_order", 1.0));
  const RunResult b = runExperiment(quickSpec("out_of_order", 1.0));
  EXPECT_DOUBLE_EQ(a.avgSpeedup, b.avgSpeedup);
  EXPECT_DOUBLE_EQ(a.avgWait, b.avgWait);
  EXPECT_EQ(a.completedJobs, b.completedJobs);
}

TEST(Experiment, BitIdenticalAcrossRepeatsForEveryCachingPolicy) {
  // Determinism guard for the event-queue/interval rewrites: the (time, seq)
  // pop order and the flat interval algebra must make repeated fixed-seed
  // runs bit-identical in every reported metric, for each policy family.
  for (const char* policy : {"farm", "out_of_order", "cache_oriented", "replication"}) {
    ExperimentSpec spec = quickSpec(policy, 1.0);
    spec.prewarmCaches = true;
    const RunResult a = runExperiment(spec);
    const RunResult b = runExperiment(spec);
    EXPECT_EQ(a.avgSpeedup, b.avgSpeedup) << policy;
    EXPECT_EQ(a.avgWait, b.avgWait) << policy;
    EXPECT_EQ(a.avgWaitExDelay, b.avgWaitExDelay) << policy;
    EXPECT_EQ(a.cacheHitFraction, b.cacheHitFraction) << policy;
    EXPECT_EQ(a.simulatedTime, b.simulatedTime) << policy;
    EXPECT_EQ(a.completedJobs, b.completedJobs) << policy;
    EXPECT_EQ(a.overloaded, b.overloaded) << policy;
  }
}

TEST(Experiment, SeedDomainsKeepSweepAndReplicaStreamsApart) {
  // Regression for the shared-index seed collision: with the old scheme,
  // sweep point i=1000+k and replica k derived the same child seed. The
  // domain-tagged derivation must give different streams even at matching
  // indices.
  const ExperimentSpec base = quickSpec("farm", 0.8);
  EXPECT_NE(deriveSeed(base.seed, SeedDomain::Sweep, 1000),
            deriveSeed(base.seed, SeedDomain::Replica, 0));
  EXPECT_NE(deriveSeed(base.seed, SeedDomain::Sweep, 7000),
            deriveSeed(base.seed, SeedDomain::Prewarm, 0));
}

TEST(Experiment, SeedChangesResults) {
  ExperimentSpec spec = quickSpec("out_of_order", 1.0);
  const RunResult a = runExperiment(spec);
  spec.seed = 777;
  const RunResult b = runExperiment(spec);
  EXPECT_NE(a.avgWait, b.avgWait);
}

TEST(Experiment, OverloadedFarmIsDetected) {
  // 1.4 jobs/hour is far beyond the farm's ~1.1 maximum.
  const RunResult r = runExperiment(quickSpec("farm", 1.4));
  EXPECT_TRUE(r.overloaded);
}

TEST(Experiment, LoadSweepSequentialAndParallelAgree) {
  const std::array<double, 3> loads{0.7, 0.9, 1.05};
  const ExperimentSpec base = quickSpec("farm", 0.0);
  const auto seq = loadSweep(base, loads, nullptr);
  ThreadPool pool(2);
  const auto par = loadSweep(base, loads, &pool);
  ASSERT_EQ(seq.size(), 3u);
  ASSERT_EQ(par.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(seq[i].jobsPerHour, loads[i]);
    EXPECT_DOUBLE_EQ(seq[i].result.avgWait, par[i].result.avgWait);
  }
}

TEST(Experiment, SweepSeedsDifferAcrossPoints) {
  const std::array<double, 2> loads{0.8, 0.8};
  const auto points = loadSweep(quickSpec("farm", 0.0), loads);
  // Same load, different derived seeds: results must differ.
  EXPECT_NE(points[0].result.avgWait, points[1].result.avgWait);
}

TEST(Experiment, FindMaxSustainableLoadBracketsFarmLimit) {
  ExperimentSpec spec = quickSpec("farm", 0.0);
  spec.warmupJobs = 30;
  spec.measuredJobs = 100;
  const double maxLoad = findMaxSustainableLoad(spec, 0.6, 1.6, 0.1);
  // Theoretical farm limit is 1.125 jobs/hour; with only ~100 measured jobs
  // per probe the detector is coarse, so the bracket is generous (the
  // integration tests pin the verdict down with larger samples).
  EXPECT_GT(maxLoad, 0.8);
  EXPECT_LT(maxLoad, 1.45);
}

TEST(Experiment, FindMaxValidatesBracket) {
  ExperimentSpec spec = quickSpec("farm", 0.0);
  EXPECT_THROW(findMaxSustainableLoad(spec, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(findMaxSustainableLoad(spec, 1.0, 0.5), std::invalid_argument);
  // lo already overloaded.
  EXPECT_THROW(findMaxSustainableLoad(spec, 2.5, 3.0), std::invalid_argument);
}

TEST(Experiment, PrewarmShortensColdStart) {
  // Over the first handful of jobs a cold cluster has almost no cache hits
  // (only job-to-job self overlap); a pre-warmed one starts near its steady
  // hit rate. (Over longer horizons the hot regions self-warm quickly and
  // the difference fades.)
  // Averaged over a few seeds: a single 10-job run is noisy enough for the
  // margin to flip on an unlucky prewarm draw.
  double coldHits = 0.0;
  double warmHits = 0.0;
  constexpr int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    ExperimentSpec cold = quickSpec("out_of_order", 1.0);
    cold.warmupJobs = 0;
    cold.measuredJobs = 10;
    cold.seed = 42 + static_cast<std::uint64_t>(s);
    ExperimentSpec warm = cold;
    warm.prewarmCaches = true;
    coldHits += runExperiment(cold).cacheHitFraction;
    warmHits += runExperiment(warm).cacheHitFraction;
  }
  EXPECT_GT(warmHits / kSeeds, coldHits / kSeeds + 0.1);
}

TEST(Experiment, PrewarmIsNoopForCachelessPolicies) {
  ExperimentSpec spec = quickSpec("farm", 0.8);
  spec.prewarmCaches = true;
  const RunResult r = runExperiment(spec);
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.0);
}

TEST(Experiment, HistogramRequested) {
  ExperimentSpec spec = quickSpec("out_of_order", 1.2);
  spec.withHistogram = true;
  const RunResult r = runExperiment(spec);
  EXPECT_FALSE(r.waitHistogram.empty());
}

}  // namespace
}  // namespace ppsched
