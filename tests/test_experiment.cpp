// Experiment harness: runExperiment / loadSweep / findMaxSustainableLoad.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <array>

namespace ppsched {
namespace {

ExperimentSpec quickSpec(const std::string& policy, double load) {
  ExperimentSpec spec;
  spec.policyName = policy;
  spec.jobsPerHour = load;
  spec.warmupJobs = 40;
  spec.measuredJobs = 120;
  spec.maxJobsInSystem = 200;
  return spec;
}

TEST(Experiment, RunOnceProducesConsistentResult) {
  const RunResult r = runExperiment(quickSpec("farm", 0.8));
  EXPECT_GE(r.completedJobs, 160u);
  EXPECT_GT(r.measuredJobs, 0u);
  EXPECT_NEAR(r.avgSpeedup, 1.0, 0.01);  // farm never speeds up
  EXPECT_FALSE(r.overloaded);
  EXPECT_GT(r.simulatedTime, 0.0);
}

TEST(Experiment, DeterministicForSameSeed) {
  const RunResult a = runExperiment(quickSpec("out_of_order", 1.0));
  const RunResult b = runExperiment(quickSpec("out_of_order", 1.0));
  EXPECT_DOUBLE_EQ(a.avgSpeedup, b.avgSpeedup);
  EXPECT_DOUBLE_EQ(a.avgWait, b.avgWait);
  EXPECT_EQ(a.completedJobs, b.completedJobs);
}

TEST(Experiment, SeedChangesResults) {
  ExperimentSpec spec = quickSpec("out_of_order", 1.0);
  const RunResult a = runExperiment(spec);
  spec.seed = 777;
  const RunResult b = runExperiment(spec);
  EXPECT_NE(a.avgWait, b.avgWait);
}

TEST(Experiment, OverloadedFarmIsDetected) {
  // 1.4 jobs/hour is far beyond the farm's ~1.1 maximum.
  const RunResult r = runExperiment(quickSpec("farm", 1.4));
  EXPECT_TRUE(r.overloaded);
}

TEST(Experiment, LoadSweepSequentialAndParallelAgree) {
  const std::array<double, 3> loads{0.7, 0.9, 1.05};
  const ExperimentSpec base = quickSpec("farm", 0.0);
  const auto seq = loadSweep(base, loads, nullptr);
  ThreadPool pool(2);
  const auto par = loadSweep(base, loads, &pool);
  ASSERT_EQ(seq.size(), 3u);
  ASSERT_EQ(par.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(seq[i].jobsPerHour, loads[i]);
    EXPECT_DOUBLE_EQ(seq[i].result.avgWait, par[i].result.avgWait);
  }
}

TEST(Experiment, SweepSeedsDifferAcrossPoints) {
  const std::array<double, 2> loads{0.8, 0.8};
  const auto points = loadSweep(quickSpec("farm", 0.0), loads);
  // Same load, different derived seeds: results must differ.
  EXPECT_NE(points[0].result.avgWait, points[1].result.avgWait);
}

TEST(Experiment, FindMaxSustainableLoadBracketsFarmLimit) {
  ExperimentSpec spec = quickSpec("farm", 0.0);
  spec.warmupJobs = 30;
  spec.measuredJobs = 100;
  const double maxLoad = findMaxSustainableLoad(spec, 0.6, 1.6, 0.1);
  // Theoretical farm limit is 1.125 jobs/hour; with only ~100 measured jobs
  // per probe the detector is coarse, so the bracket is generous (the
  // integration tests pin the verdict down with larger samples).
  EXPECT_GT(maxLoad, 0.8);
  EXPECT_LT(maxLoad, 1.45);
}

TEST(Experiment, FindMaxValidatesBracket) {
  ExperimentSpec spec = quickSpec("farm", 0.0);
  EXPECT_THROW(findMaxSustainableLoad(spec, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(findMaxSustainableLoad(spec, 1.0, 0.5), std::invalid_argument);
  // lo already overloaded.
  EXPECT_THROW(findMaxSustainableLoad(spec, 2.5, 3.0), std::invalid_argument);
}

TEST(Experiment, PrewarmShortensColdStart) {
  // Over the first handful of jobs a cold cluster has almost no cache hits
  // (only job-to-job self overlap); a pre-warmed one starts near its steady
  // hit rate. (Over longer horizons the hot regions self-warm quickly and
  // the difference fades.)
  ExperimentSpec cold = quickSpec("out_of_order", 1.0);
  cold.warmupJobs = 0;
  cold.measuredJobs = 10;
  ExperimentSpec warm = cold;
  warm.prewarmCaches = true;
  const RunResult rc = runExperiment(cold);
  const RunResult rw = runExperiment(warm);
  EXPECT_GT(rw.cacheHitFraction, rc.cacheHitFraction + 0.1);
}

TEST(Experiment, PrewarmIsNoopForCachelessPolicies) {
  ExperimentSpec spec = quickSpec("farm", 0.8);
  spec.prewarmCaches = true;
  const RunResult r = runExperiment(spec);
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.0);
}

TEST(Experiment, HistogramRequested) {
  ExperimentSpec spec = quickSpec("out_of_order", 1.2);
  spec.withHistogram = true;
  const RunResult r = runExperiment(spec);
  EXPECT_FALSE(r.waitHistogram.empty());
}

}  // namespace
}  // namespace ppsched
