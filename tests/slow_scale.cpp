// 100-node scale tests (ctest label: slow).
//
// ISSUE: topology-aware placement must be exercised at the cluster sizes
// the paper targets, not just on 4-node toys. These runs take seconds each
// (more under sanitizers), so they live in ppsched_slow_tests and CI runs
// them in a separate step with a longer timeout.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/validating_policy.h"
#include "net/network.h"
#include "workload/generator.h"

namespace ppsched {
namespace {

// Bit-exact doubles, hex-pinned (see test_network_integration.cpp).
std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

ExperimentSpec hundredNodeSpec() {
  ExperimentSpec spec;
  spec.policyName = "replication";
  spec.policyParams.replicationThreshold = 1;
  spec.jobsPerHour = 20.0;
  spec.seed = 20260807;
  spec.warmupJobs = 30;
  spec.measuredJobs = 150;
  spec.sim.numNodes = 100;
  spec.sim.cacheBytesPerNode = 20'000'000'000ULL;
  spec.sim.totalDataBytes = 400'000'000'000ULL;
  return spec;
}

// Golden pin at 100 nodes with the network model off: the topology-aware
// code path must leave the paper heuristic bit-for-bit untouched at scale,
// not only on the 6-node pins of test_network_integration.cpp.
TEST(SlowScale, HundredNodeGoldenPinWithNetworkOff) {
  const RunResult r = runExperiment(hundredNodeSpec());
  EXPECT_EQ(bits(r.avgSpeedup), 0x4056bde7d4efab2eULL);
  EXPECT_EQ(bits(r.avgWait), 0x400d5d2f7ae9581bULL);
  EXPECT_EQ(bits(r.simulatedTime), 0x40e1c7e3dfc83becULL);
  EXPECT_EQ(r.processedEvents, 7528070ULL);
  EXPECT_EQ(r.tertiaryEvents, 751069ULL);
  EXPECT_EQ(r.replicatedEvents, 624243ULL);
  EXPECT_EQ(r.replicationOps, 9952ULL);
}

// The same 100-node workload with the flow model enabled is deterministic:
// two identically-seeded runs agree bit-for-bit, placement ranking and the
// max-min solver included.
TEST(SlowScale, HundredNodeNetworkRunIsDeterministic) {
  ExperimentSpec spec = hundredNodeSpec();
  spec.sim.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  const RunResult a = runExperiment(spec);
  const RunResult b = runExperiment(spec);
  EXPECT_EQ(bits(a.avgSpeedup), bits(b.avgSpeedup));
  EXPECT_EQ(bits(a.avgWait), bits(b.avgWait));
  EXPECT_EQ(bits(a.simulatedTime), bits(b.simulatedTime));
  EXPECT_EQ(a.processedEvents, b.processedEvents);
  EXPECT_EQ(a.tertiaryEvents, b.tertiaryEvents);
  EXPECT_EQ(a.replicatedEvents, b.replicatedEvents);
  EXPECT_EQ(a.replicationOps, b.replicationOps);
  EXPECT_FALSE(a.overloaded);
}

// On narrow uplinks at 100 nodes, topology-aware placement must not lose
// to the cache-content heuristic it replaces (the bench quantifies the
// win; this pins the direction).
TEST(SlowScale, TopologyAwareDoesNotLoseToCacheOnlyOnNarrowUplinks) {
  ExperimentSpec spec = hundredNodeSpec();
  spec.sim.network = parseNetworkSpec("nic=125,uplink=2,ingress=40,group=5");
  ExperimentSpec cacheOnly = spec;
  cacheOnly.policyParams.topologyAware = false;
  const RunResult topo = runExperiment(spec);
  const RunResult cache = runExperiment(cacheOnly);
  ASSERT_FALSE(topo.overloaded);
  EXPECT_GE(topo.avgSpeedup, cache.avgSpeedup);
}

// Invariant fuzz at 100 nodes: grouped switches, shared ingress, random
// machine crashes and repairs, replication on the first remote access. The
// validator sweeps the flow network after every callback; the crash path
// exercises remote-reader retargeting at scale.
TEST(SlowScale, HundredNodeNetworkInvariantsHoldUnderFailures) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.numNodes = 100;
  cfg.cacheBytesPerNode = 20'000'000'000ULL;
  cfg.totalDataBytes = 400'000'000'000ULL;
  cfg.workload.jobsPerHour = 20.0;
  cfg.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  cfg.failures.meanTimeBetweenFailuresSec = 12 * units::hour;
  cfg.failures.meanTimeToRepairSec = 1 * units::hour;
  cfg.finalize();

  PolicyParams params;
  params.replicationThreshold = 1;
  auto validating =
      std::make_unique<ValidatingPolicy>(makePolicy("replication", params));
  auto* ptr = validating.get();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 20260807),
                std::move(validating), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 120, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 120u);
  EXPECT_GT(ptr->checksPerformed(), 500u);
  const RunResult result = metrics.finalize(engine.now());
  EXPECT_GT(result.nodeFailures, 0u);
}

}  // namespace
}  // namespace ppsched
