// Engine: run execution, caching effects, preemption, remote reads,
// replication, timers, stop conditions.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::ManualPolicy;
using testing::tinyConfig;
using testing::whole;

TEST(Engine, UncachedRunTakesTertiaryRate) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 10.0, {0, 1000}}}, /*caching=*/false);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // 1000 events x 0.8 s, started at t=10.
  EXPECT_DOUBLE_EQ(h.engine->now(), 10.0 + 800.0);
  ASSERT_EQ(h.policy->finished.size(), 1u);
  EXPECT_TRUE(h.policy->finished[0].second.jobCompleted);
  EXPECT_TRUE(h.engine->jobDone(0));
}

TEST(Engine, CachingDisabledLeavesCachesEmpty) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 500}}}, /*caching=*/false);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_EQ(h.engine->cluster().node(0).cache().used(), 0u);
}

TEST(Engine, ProcessedDataIsCached) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {100, 600}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({100, 600}));
}

TEST(Engine, SecondPassOverCachedDataRunsAtDiskRate) {
  Harness h(tinyConfig(1, 100'000, 10'000),
            {{0, 0.0, {0, 1000}}, {1, 10'000.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // Job 0: 800 s (uncached). Job 1: arrives at 10000 (idle), 260 s cached.
  EXPECT_DOUBLE_EQ(h.engine->now(), 10'000.0 + 260.0);
  const auto& rec = h.metrics.record(1);
  EXPECT_DOUBLE_EQ(rec.processingTime(), 260.0);
}

TEST(Engine, MixedRangeCostsPiecewise) {
  // Cache only the middle part; a run over the whole range pays
  // 0.8 outside and 0.26 inside.
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 900}}});
  h.engine->cluster().node(0).cache().insert({300, 600}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 600 * 0.8 + 300 * 0.26);
}

TEST(Engine, SpanSubdivisionDoesNotChangeDuration) {
  for (std::uint64_t span : {7ull, 100ull, 1'000'000ull}) {
    Harness h(tinyConfig(1, 100'000, 10'000, span), {{0, 0.0, {0, 500}}});
    h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
    h.engine->run({});
    EXPECT_NEAR(h.engine->now(), 400.0, 1e-6) << "span " << span;
  }
}

TEST(Engine, PreemptionAppliesPartialProgress) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  // Preempt via a timer at t = 80: exactly 100 uncached events processed.
  Subjob rem;
  h.policy->timerHook = [&](TimerId) { rem = h.engine->preempt(0); };
  h.engine->run({.completedJobs = 0, .arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(80.0);
  h.engine->run({});
  EXPECT_EQ(rem.range, (EventRange{100, 1000}));
  EXPECT_EQ(h.engine->remainingOf(0).size(), 900u);
  // The processed prefix is in the cache.
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({0, 100}));
  EXPECT_FALSE(h.engine->jobDone(0));
}

TEST(Engine, PreemptMidEventRoundsDown) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  Subjob rem;
  h.policy->timerHook = [&](TimerId) { rem = h.engine->preempt(0); };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(81.0);  // 101.25 events worth of time
  h.engine->run({});
  EXPECT_EQ(rem.range.begin, 101u);
}

TEST(Engine, PreemptAtExactCompletionReturnsEmpty) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 100}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  Subjob rem{0, {1, 2}, 0.0, false};
  h.policy->timerHook = [&](TimerId) {
    if (!h.engine->isIdle(0)) rem = h.engine->preempt(0);
  };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(80.0);  // exactly when the run would finish
  h.engine->run({});
  // Either the span-completion event fired first (node idle) or preempt
  // returned an empty remainder; both leave the job done.
  EXPECT_TRUE(rem.empty() || h.policy->finished.size() == 1);
  EXPECT_TRUE(h.engine->jobDone(0));
}

TEST(Engine, ResumedRemainderCompletesJob) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.policy->timerHook = [&](TimerId) {
    const Subjob rem = h.engine->preempt(0);
    h.engine->startRun(1, rem);  // move the rest to node 1
  };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(80.0 * 5);  // 500 events done on node 0
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
  ASSERT_EQ(h.policy->finished.size(), 1u);
  EXPECT_EQ(h.policy->finished[0].first, 1);  // completion reported on node 1
  EXPECT_TRUE(h.policy->finished[0].second.jobCompleted);
}

TEST(Engine, ParallelPiecesLastOneReportsCompletion) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    Subjob a = whole(j), b = whole(j);
    a.range = {0, 400};
    b.range = {400, 1000};
    h.engine->startRun(0, a);
    h.engine->startRun(1, b);
  };
  h.engine->run({});
  ASSERT_EQ(h.policy->finished.size(), 2u);
  EXPECT_FALSE(h.policy->finished[0].second.jobCompleted);  // node 0 at t=320
  EXPECT_TRUE(h.policy->finished[1].second.jobCompleted);   // node 1 at t=480
}

TEST(Engine, RemoteReadUsesRemoteRateAndDoesNotCacheLocally) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(1).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) {
    RunOptions opts;
    opts.remoteFrom = 1;
    h.engine->startRun(0, whole(j), opts);
  };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 1000 * 0.26);  // remote disk + cpu
  EXPECT_EQ(h.engine->cluster().node(0).cache().used(), 0u);  // no replication
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.remoteReadFraction, 1.0);
}

TEST(Engine, ReplicationTriggersOnNthAccess) {
  SimConfig cfg = tinyConfig(2, 100'000, 10'000);
  std::vector<Job> jobs;
  for (JobId i = 0; i < 3; ++i) {
    jobs.push_back({i, i * 10'000.0, {0, 500}});
  }
  Harness h(cfg, jobs);
  h.engine->cluster().node(1).cache().insert({0, 500}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) {
    RunOptions opts;
    opts.remoteFrom = 1;
    opts.replicationThreshold = 3;
    h.engine->startRun(0, whole(j), opts);
  };
  h.engine->run({});
  // Accesses 1 and 2 read remotely without copying; access 3 replicates.
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({0, 500}));
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.replicatedEvents, 500u);
  EXPECT_GE(r.replicationOps, 1u);
}

TEST(Engine, TertiaryStopsAtCachedBoundary) {
  // Span planning: an uncached stretch must end where cached data begins,
  // not skip over it.
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({500, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 500 * 0.8 + 500 * 0.26);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.5);
}

TEST(Engine, StartRunValidation) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(0, whole(j));
    // Busy node.
    EXPECT_THROW(h.engine->startRun(0, whole(j)), std::logic_error);
    // Empty subjob.
    Subjob empty = whole(j);
    empty.range = {5, 5};
    EXPECT_THROW(h.engine->startRun(1, empty), std::logic_error);
    // Range already being processed elsewhere (not remaining... it is
    // remaining until processed, so use an out-of-job range instead).
    Subjob outside = whole(j);
    outside.range = {2000, 3000};
    EXPECT_THROW(h.engine->startRun(1, outside), std::logic_error);
    // Bad remote node.
    RunOptions opts;
    opts.remoteFrom = 7;
    Subjob rest = whole(j);
    EXPECT_THROW(h.engine->startRun(1, rest, opts), std::logic_error);
  };
  h.engine->run({});
}

TEST(Engine, DoubleAssignmentOfProcessedRangeThrows) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 100}}, {1, 1'000'000.0, {0, 100}}});
  h.policy->arrivalHook = [&](const Job& j) {
    if (j.id == 1) {
      // Job 0's range is long processed; re-running job 0's subjob is a bug.
      Subjob stale;
      stale.job = 0;
      stale.range = {0, 100};
      EXPECT_THROW(h.engine->startRun(0, stale), std::logic_error);
      h.engine->startRun(0, whole(j));
    } else {
      h.engine->startRun(0, whole(j));
    }
  };
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(1));
}

TEST(Engine, PreemptIdleNodeThrows) {
  Harness h(tinyConfig(1, 100'000, 10'000), {});
  EXPECT_THROW(h.engine->preempt(0), std::logic_error);
}

TEST(Engine, RunningViewTracksProgress) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.policy->timerHook = [&](TimerId) {
    const auto view = h.engine->running(0);
    EXPECT_TRUE(view.active);
    EXPECT_EQ(view.subjob.job, 0u);
    EXPECT_EQ(view.remaining, (EventRange{200, 1000}));  // 160 s / 0.8
  };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(160.0);
  h.engine->run({});
  EXPECT_FALSE(h.engine->running(0).active);
}

TEST(Engine, TimersFireAndCancel) {
  Harness h(tinyConfig(1, 100'000, 10'000), {});
  const TimerId keep = h.engine->scheduleTimer(10.0);
  const TimerId cancel = h.engine->scheduleTimer(5.0);
  h.engine->cancelTimer(cancel);
  h.engine->run({});
  ASSERT_EQ(h.policy->timers.size(), 1u);
  EXPECT_EQ(h.policy->timers[0], keep);
  EXPECT_DOUBLE_EQ(h.engine->now(), 10.0);
}

TEST(Engine, TimerInThePastThrows) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 100.0, {0, 10}}});
  h.policy->arrivalHook = [&](const Job& j) {
    EXPECT_THROW(h.engine->scheduleTimer(50.0), std::invalid_argument);
    h.engine->startRun(0, whole(j));
  };
  h.engine->run({});
}

TEST(Engine, StopAfterCompletedJobs) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 5; ++i) jobs.push_back({i, i * 10'000.0, {i * 100, i * 100 + 50}});
  Harness h(tinyConfig(1, 100'000, 10'000), jobs);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({.completedJobs = 2});
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
}

TEST(Engine, MaxJobsInSystemAborts) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 10; ++i) jobs.push_back({i, static_cast<double>(i), {0, 50'000}});
  Harness h(tinyConfig(1, 100'000, 10'000), jobs);
  h.policy->arrivalHook = [&](const Job& j) {
    if (h.engine->isIdle(0)) h.engine->startRun(0, whole(j));
  };
  h.engine->run({.maxJobsInSystem = 3});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_TRUE(r.abortedOverloaded);
  EXPECT_TRUE(r.overloaded);
}

TEST(Engine, SimTimeLimitStopsTheClock) {
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 10'000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({.simTimeLimit = 100.0});
  EXPECT_DOUBLE_EQ(h.engine->now(), 100.0);
  EXPECT_FALSE(h.engine->jobDone(0));
}

TEST(Engine, MidRunEvictionCausesRefetch) {
  // Cache too small for the whole job: the tail of the range evicts the
  // head; a second pass over the head pays tertiary cost again.
  SimConfig cfg = tinyConfig(1, 100'000, 500, /*maxSpan=*/100);
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 2'000'000.0, {500, 1500}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  // Job 0 leaves {500,1000} cached (its head was evicted by its own tail).
  // Job 1 hits those 500 events, then fetches {1000,1500} from tertiary.
  EXPECT_NEAR(r.cacheHitFraction, 0.25, 0.01);  // 500 of 2000 processed
}

TEST(Engine, ConstructionValidation) {
  SimConfig cfg = tinyConfig(1, 1000, 100);
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  EXPECT_THROW(Engine(cfg, nullptr, std::make_unique<ManualPolicy>(), metrics),
               std::invalid_argument);
  EXPECT_THROW(Engine(cfg, testing::fixedSource({}), nullptr, metrics), std::invalid_argument);
}

}  // namespace
}  // namespace ppsched
