// In2p3TraceReader / SkewedWorkloadGenerator: real batch records -> Jobs.
#include "workload/in2p3.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "core/experiment.h"
#include "workload/trace.h"

namespace ppsched {
namespace {

std::unique_ptr<std::istream> streamOf(const std::string& text) {
  return std::make_unique<std::istringstream>(text);
}

In2p3MapConfig testCfg() {
  In2p3MapConfig cfg;
  cfg.totalEvents = 1'000'000;
  cfg.secPerEventRef = 0.8;
  cfg.minJobEvents = 10;
  cfg.groupSpanFraction = 0.125;
  return cfg;
}

In2p3TraceReader readerOf(const std::string& csv, In2p3MapConfig cfg = testCfg()) {
  return {streamOf(csv), cfg, "<test>"};
}

constexpr const char* kLog =
    "submit_time,user,group,walltime_req\n"
    "1000,alice,lhcb,800\n"
    "1060,bob,atlas,8000\n"
    "1060,alice,lhcb,1600\n"
    "1500,carol,lhcb,4\n";

TEST(In2p3, MapsRecordsToJobs) {
  auto r = readerOf(kLog);

  const auto j0 = r.next();
  ASSERT_TRUE(j0);
  EXPECT_EQ(j0->id, 0u);
  EXPECT_DOUBLE_EQ(j0->arrival, 0.0);  // first submit becomes t=0
  EXPECT_EQ(j0->events(), 1000u);      // 800 s / 0.8 s-per-event
  EXPECT_EQ(j0->user, 0u);             // alice interned first

  const auto j1 = r.next();
  ASSERT_TRUE(j1);
  EXPECT_EQ(j1->id, 1u);
  EXPECT_DOUBLE_EQ(j1->arrival, 60.0);
  EXPECT_EQ(j1->user, 1u);  // bob

  const auto j2 = r.next();  // alice again: same UserId, identical arrival ok
  ASSERT_TRUE(j2);
  EXPECT_DOUBLE_EQ(j2->arrival, 60.0);
  EXPECT_EQ(j2->user, 0u);
  EXPECT_EQ(j2->events(), 2000u);

  const auto j3 = r.next();  // 4 s / 0.8 = 5 events, below the 10-event floor
  ASSERT_TRUE(j3);
  EXPECT_EQ(j3->events(), 10u);

  EXPECT_FALSE(r.next());
  EXPECT_EQ(r.usersSeen(), 3u);
  EXPECT_EQ(r.jobsReturned(), 4u);
}

TEST(In2p3, HeaderColumnsFlexibleOrderExtrasIgnored) {
  auto r = readerOf(
      "jobid,walltime_req,memory_mb,user,submit_time,group\n"
      "17,800,2048,alice,1000,lhcb\n");
  const auto j = r.next();
  ASSERT_TRUE(j);
  EXPECT_EQ(j->events(), 1000u);
  EXPECT_EQ(j->user, 0u);
}

TEST(In2p3, GroupColumnOptional) {
  auto r = readerOf("submit_time,user,walltime_req\n0,alice,800\n60,bob,800\n");
  const auto a = r.next();
  const auto b = r.next();
  ASSERT_TRUE(a && b);
  // Without groups everyone shares one region: same span-sized window.
  const auto span = static_cast<std::uint64_t>(0.125 * 1'000'000);
  EXPECT_LE(a->range.end - a->range.begin, span);
}

TEST(In2p3, MissingRequiredColumnThrows) {
  try {
    readerOf("submit_time,group,walltime_req\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("user"), std::string::npos) << e.what();
  }
  EXPECT_THROW(readerOf("user,group,walltime_req\n"), std::runtime_error);
  EXPECT_THROW(readerOf(""), std::runtime_error);  // no header at all
}

TEST(In2p3, MalformedRecordsThrowWithLine) {
  auto expectLineError = [](const std::string& csv, const char* needle, const char* line) {
    auto r = readerOf(std::string("submit_time,user,group,walltime_req\n") + csv);
    try {
      while (r.next()) {
      }
      FAIL() << "expected throw for: " << csv;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(needle), std::string::npos) << msg;
      EXPECT_NE(msg.find(line), std::string::npos) << msg;
    }
  };
  expectLineError("1000,alice,lhcb\n", "fields", "line 2");
  expectLineError("1000,alice,lhcb,800,extra\n", "fields", "line 2");
  expectLineError("nan,alice,lhcb,800\n", "finite", "line 2");
  expectLineError("-5,alice,lhcb,800\n", ">= 0", "line 2");
  expectLineError("1000,,lhcb,800\n", "user", "line 2");
  expectLineError("1000,alice,lhcb,0\n", "walltime_req", "line 2");
  expectLineError("1000,alice,lhcb,-800\n", "walltime_req", "line 2");
  expectLineError("1000,alice,lhcb,junk\n", "malformed", "line 2");
  expectLineError("1000,alice,lhcb,800\n900,bob,atlas,800\n", "backwards", "line 3");
}

TEST(In2p3, SameGroupJobsReadOverlappingRegions) {
  // All jobs of one group land inside the same span-sized region of the
  // data space (that overlap is what gives caches a chance); a different
  // group hashes elsewhere.
  auto r = readerOf(
      "submit_time,user,group,walltime_req\n"
      "0,alice,lhcb,8000\n"
      "1,bob,lhcb,8000\n"
      "2,carol,lhcb,8000\n"
      "3,dave,atlas,8000\n");
  const auto a = r.next();
  const auto b = r.next();
  const auto c = r.next();
  const auto d = r.next();
  ASSERT_TRUE(a && b && c && d);
  const auto span = static_cast<std::uint64_t>(0.125 * 1'000'000);
  const std::uint64_t lo = std::min({a->range.begin, b->range.begin, c->range.begin});
  const std::uint64_t hi = std::max({a->range.end, b->range.end, c->range.end});
  EXPECT_LE(hi - lo, span);                 // one shared lhcb region
  EXPECT_NE(d->range.begin, a->range.begin);  // atlas hashed elsewhere
}

TEST(In2p3, MappingIsDeterministic) {
  auto r1 = readerOf(kLog);
  auto r2 = readerOf(kLog);
  while (true) {
    const auto a = r1.next();
    const auto b = r2.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(*a, *b);
  }
  // And the label hash itself is a fixed function (placement is stable
  // across platforms/runs, so traces replay identically everywhere).
  EXPECT_EQ(stableLabelHash("lhcb"), stableLabelHash("lhcb"));
  EXPECT_NE(stableLabelHash("lhcb"), stableLabelHash("atlas"));
}

TEST(In2p3, JobsFeedTheEngineViaDenseIds) {
  // End to end: real-format records through runExperiment (which requires
  // dense ids from 0) with per-user stats coming out the other side.
  const std::string path = ::testing::TempDir() + "/ppsched_in2p3_e2e.csv";
  {
    std::ofstream out(path);
    out << "submit_time,user,group,walltime_req\n";
    for (int i = 0; i < 60; ++i) {
      out << i * 1800 << ",u" << (i % 3) << ",lhcb," << 4000 + 100 * (i % 5) << "\n";
    }
  }
  ExperimentSpec spec;
  spec.policyName = "out_of_order";
  spec.tracePath = path;
  spec.warmupJobs = 10;
  spec.measuredJobs = 50;
  const RunResult r = runExperiment(spec);
  std::remove(path.c_str());
  EXPECT_EQ(r.completedJobs, 60u);
  EXPECT_EQ(r.userStats.size(), 3u);
  EXPECT_GT(r.userFairness, 0.0);
  EXPECT_LE(r.userFairness, 1.0);
}

TEST(In2p3, OpenTraceSourceAutoDetectsFormats) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.finalize();
  const std::string dir = ::testing::TempDir();

  const std::string in2p3Path = dir + "/ppsched_autodetect_in2p3.csv";
  {
    std::ofstream out(in2p3Path);
    out << "# a comment first\nsubmit_time,user,group,walltime_req\n0,alice,lhcb,800\n";
  }
  auto a = openTraceSource(in2p3Path, cfg);
  const auto ja = a->next();
  ASSERT_TRUE(ja);
  EXPECT_EQ(ja->user, 0u);  // interned label => the IN2P3 reader ran

  const std::string ppschedPath = dir + "/ppsched_autodetect_native.csv";
  {
    std::ofstream out(ppschedPath);
    out << kTraceHeader << "5,100,10,50\n8,200,10,50\n";
  }
  auto b = openTraceSource(ppschedPath, cfg);
  const auto jb = b->next();
  ASSERT_TRUE(jb);
  EXPECT_EQ(jb->id, 0u);  // native path renumbers densely
  EXPECT_EQ(jb->user, kNoUser);

  EXPECT_THROW(openTraceSource(dir + "/ppsched_no_such_trace.csv", cfg), std::runtime_error);
  std::remove(in2p3Path.c_str());
  std::remove(ppschedPath.c_str());
}

// --------------------------------------------------------------------------
// SkewedWorkloadGenerator: the IN2P3-shaped synthetic.

SkewedWorkloadParams skewedParams() {
  SkewedWorkloadParams p;
  p.totalEvents = 1'000'000;
  p.jobsPerHour = 10.0;
  p.users = 20;
  p.zipfS = 1.2;
  p.minJobEvents = 100;
  p.paretoAlpha = 1.5;
  p.groups = 4;
  return p;
}

TEST(SkewedWorkload, DeterministicForSeed) {
  SkewedWorkloadGenerator a(skewedParams(), 42);
  SkewedWorkloadGenerator b(skewedParams(), 42);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(*a.next(), *b.next());
  SkewedWorkloadGenerator c(skewedParams(), 43);
  bool differs = false;
  SkewedWorkloadGenerator a2(skewedParams(), 42);
  for (int i = 0; i < 200 && !differs; ++i) differs = *a2.next() != *c.next();
  EXPECT_TRUE(differs);
}

TEST(SkewedWorkload, ProducesValidHeavyTailedStream) {
  const auto p = skewedParams();
  SkewedWorkloadGenerator g(p, 7);
  TraceValidator v;
  std::map<UserId, int> perUser;
  std::uint64_t maxEvents = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto j = g.next();
    ASSERT_TRUE(j);
    v.check(*j);  // dense increasing ids, sorted arrivals, non-empty ranges
    ASSERT_LT(j->user, static_cast<UserId>(p.users));
    ASSERT_GE(j->events(), p.minJobEvents);
    ASSERT_LE(j->range.end, p.totalEvents);
    ++perUser[j->user];
    maxEvents = std::max(maxEvents, j->events());
  }
  // Zipf skew: the heaviest user dominates any mid-rank user.
  EXPECT_GT(perUser[0], 4 * perUser[10]);
  // Pareto tail: some job far above the minimum actually occurred.
  EXPECT_GT(maxEvents, 10 * p.minJobEvents);
}

TEST(SkewedWorkload, UsersKeepTheirGroupRegion) {
  const auto p = skewedParams();
  SkewedWorkloadGenerator g(p, 11);
  const auto span = static_cast<std::uint64_t>(p.groupSpanFraction *
                                               static_cast<double>(p.totalEvents));
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> groupWindow;
  for (int i = 0; i < 500; ++i) {
    const auto j = g.next();
    const int grp = g.groupOf(j->user);
    auto [it, fresh] = groupWindow.try_emplace(grp, j->range.begin, j->range.end);
    if (!fresh) {
      it->second.first = std::min(it->second.first, j->range.begin);
      it->second.second = std::max(it->second.second, j->range.end);
    }
  }
  EXPECT_GT(groupWindow.size(), 1u);
  for (const auto& [grp, window] : groupWindow) {
    EXPECT_LE(window.second - window.first, span) << "group " << grp;
  }
}

TEST(SkewedWorkload, CsvRoundTripsThroughReader) {
  // writeIn2p3Csv -> In2p3TraceReader must reproduce arrivals, sizes and
  // the user partition (labels are re-interned, so ids may permute).
  const auto p = skewedParams();
  SkewedWorkloadGenerator gen(p, 123);
  const JobTrace original = JobTrace::record(gen, 300);

  SkewedWorkloadGenerator gen2(p, 123);
  std::stringstream csv;
  EXPECT_EQ(writeIn2p3Csv(csv, gen2, 300, 0.8, &gen2), 300u);

  In2p3MapConfig cfg;
  cfg.totalEvents = p.totalEvents;
  cfg.secPerEventRef = 0.8;
  cfg.minJobEvents = 1;
  cfg.groupSpanFraction = p.groupSpanFraction;
  In2p3TraceReader reader(streamOf(csv.str()), cfg, "<roundtrip>");

  // The reader re-anchors arrivals at the first submit time.
  const SimTime first = original.jobs().front().arrival;
  std::map<UserId, UserId> userMap;  // original tag -> re-interned tag
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto j = reader.next();
    ASSERT_TRUE(j);
    const Job& o = original.jobs()[i];
    EXPECT_EQ(j->id, o.id);
    EXPECT_DOUBLE_EQ(j->arrival, o.arrival - first);
    EXPECT_EQ(j->events(), o.events());
    const auto [it, fresh] = userMap.try_emplace(o.user, j->user);
    EXPECT_EQ(it->second, j->user);  // consistent relabeling = same partition
  }
  EXPECT_FALSE(reader.next());
  std::set<UserId> distinct;
  for (const auto& [o, n] : userMap) distinct.insert(n);
  EXPECT_EQ(distinct.size(), userMap.size());  // injective relabeling
}

TEST(SkewedWorkload, RejectsInvalidParams) {
  auto bad = [](auto mutate) {
    SkewedWorkloadParams p = skewedParams();
    mutate(p);
    EXPECT_THROW(SkewedWorkloadGenerator(p, 1), std::invalid_argument);
  };
  bad([](auto& p) { p.users = 0; });
  bad([](auto& p) { p.paretoAlpha = 1.0; });
  bad([](auto& p) { p.jobsPerHour = 0.0; });
  bad([](auto& p) { p.minJobEvents = 0; });
  bad([](auto& p) { p.groupSpanFraction = 0.0; });
  bad([](auto& p) { p.diurnalAmplitude = 1.5; });
  bad([](auto& p) { p.interactiveGroups = -1; });
  bad([](auto& p) { p.interactiveGroups = p.groups + 1; });
}

// --------------------------------------------------------------------------
// QoS class mapping: group -> class, on both the reader and the generator.

TEST(In2p3, InteractiveGroupLabelsMapToClass) {
  In2p3MapConfig cfg = testCfg();
  cfg.interactiveGroups = {"lhcb"};
  auto r = readerOf(kLog, cfg);
  const auto j0 = r.next();  // alice/lhcb
  const auto j1 = r.next();  // bob/atlas
  ASSERT_TRUE(j0 && j1);
  EXPECT_EQ(j0->qos, QosClass::Interactive);
  EXPECT_EQ(j1->qos, QosClass::Bulk);
  // Exact label match only: no prefix or case folding.
  In2p3MapConfig loose = testCfg();
  loose.interactiveGroups = {"lhc", "LHCB"};
  auto r2 = readerOf(kLog, loose);
  EXPECT_EQ(r2.next()->qos, QosClass::Bulk);
}

TEST(SkewedWorkload, InteractiveGroupsTagTheirUsersConsistently) {
  SkewedWorkloadParams p = skewedParams();
  p.interactiveGroups = 2;
  SkewedWorkloadGenerator g(p, 31);
  std::map<UserId, QosClass> seen;
  std::size_t interactive = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto j = g.next();
    ASSERT_TRUE(j);
    EXPECT_EQ(j->qos, g.groupOf(j->user) < p.interactiveGroups ? QosClass::Interactive
                                                               : QosClass::Bulk);
    const auto [it, fresh] = seen.try_emplace(j->user, j->qos);
    if (!fresh) EXPECT_EQ(it->second, j->qos);  // one class per user
    interactive += j->qos == QosClass::Interactive ? 1 : 0;
  }
  EXPECT_GT(interactive, 0u);       // the mapping is non-vacuous ...
  EXPECT_LT(interactive, 1000u);    // ... and not all-encompassing
  // interactiveGroups == 0 (the default) leaves everything bulk.
  SkewedWorkloadGenerator plain(skewedParams(), 31);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(plain.next()->qos, QosClass::Bulk);
}

}  // namespace
}  // namespace ppsched
