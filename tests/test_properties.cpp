// Cross-policy property tests: conservation, determinism, and bounds that
// must hold for ANY policy on ANY workload.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "test_support.h"
#include "workload/generator.h"

namespace ppsched {
namespace {

struct PropertyCase {
  std::string policy;
  std::uint64_t seed;
};

std::string caseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.policy + "_seed" + std::to_string(info.param.seed);
}

class PolicyProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(PolicyProperties, EveryEventProcessedExactlyOnce) {
  // Conservation: summed over all jobs, the engine must process exactly as
  // many events as were submitted — no loss, no duplication — regardless of
  // splitting, preemption, stealing or striping.
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.2;
  cfg.finalize();
  PolicyParams params;
  params.periodDelay = 6 * units::hour;
  params.stripeEvents = 1000;

  WorkloadGenerator gen(cfg.workload, GetParam().seed);
  const JobTrace trace = JobTrace::record(gen, 120);
  std::uint64_t submitted = 0;
  for (const Job& j : trace.jobs()) submitted += j.events();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(trace),
                makePolicy(GetParam().policy, params), metrics);
  engine.run({});

  ASSERT_EQ(metrics.completedJobs(), trace.size());
  const RunResult r = metrics.finalize(engine.now());
  EXPECT_EQ(r.processedEvents, submitted);
  // Every job's remaining set is empty.
  for (const Job& j : trace.jobs()) {
    EXPECT_TRUE(engine.jobDone(j.id));
    EXPECT_TRUE(engine.remainingOf(j.id).empty());
  }
}

TEST_P(PolicyProperties, DeterministicAcrossRuns) {
  ExperimentSpec spec;
  spec.policyName = GetParam().policy;
  spec.policyParams.periodDelay = 6 * units::hour;
  spec.policyParams.stripeEvents = 1000;
  spec.jobsPerHour = 1.0;
  spec.seed = GetParam().seed;
  spec.warmupJobs = 20;
  spec.measuredJobs = 80;
  const RunResult a = runExperiment(spec);
  const RunResult b = runExperiment(spec);
  EXPECT_DOUBLE_EQ(a.avgSpeedup, b.avgSpeedup);
  EXPECT_DOUBLE_EQ(a.avgWait, b.avgWait);
  EXPECT_DOUBLE_EQ(a.cacheHitFraction, b.cacheHitFraction);
  EXPECT_EQ(a.tertiaryEvents, b.tertiaryEvents);
}

TEST_P(PolicyProperties, SpeedupWithinTheoreticalBounds) {
  ExperimentSpec spec;
  spec.policyName = GetParam().policy;
  spec.policyParams.periodDelay = 3 * units::hour;
  spec.policyParams.stripeEvents = 1000;
  spec.jobsPerHour = 0.8;
  spec.seed = GetParam().seed;
  spec.warmupJobs = 30;
  spec.measuredJobs = 100;
  const RunResult r = runExperiment(spec);
  // Hard ceiling: numNodes x caching gain (10 x 3.08).
  const SimConfig cfg = SimConfig::paperDefaults();
  EXPECT_LE(r.avgSpeedup, cfg.numNodes * cfg.cost.cachingGain() + 1e-9);
  EXPECT_GT(r.avgSpeedup, 0.0);
  // Waits are finite and non-negative at a sustainable load.
  EXPECT_GE(r.avgWait, 0.0);
  EXPECT_GE(r.maxWait, r.medianWait);
}

std::vector<PropertyCase> allCases() {
  std::vector<PropertyCase> cases;
  for (const std::string& policy : policyNames()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      cases.push_back({policy, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyProperties, ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace ppsched
