// Engine edge cases: option combinations (pipelining x contention x
// heterogeneity), stop conditions, pinning under pressure, event ordering.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

TEST(EngineEdge, ArrivedJobsStopCondition) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 10; ++i) jobs.push_back({i, i * 10.0, {i * 1000, i * 1000 + 100}});
  Harness h(tinyConfig(2, 1'000'000, 10'000), jobs);
  h.policy->arrivalHook = [&](const Job& j) {
    if (h.engine->isIdle(0)) h.engine->startRun(0, whole(j));
  };
  h.engine->run({.arrivedJobs = 3});
  EXPECT_EQ(h.policy->arrivals.size(), 3u);
  EXPECT_EQ(h.metrics.arrivedJobs(), 3u);
}

TEST(EngineEdge, PipelinedRatesDriveSpans) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.cost.pipelined = true;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // Pipelined uncached: max(0.6, 0.2) = 0.6 s/event.
  EXPECT_DOUBLE_EQ(h.engine->now(), 600.0);
}

TEST(EngineEdge, PipelinedCachedSpanIsCpuBound) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.cost.pipelined = true;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // max(0.06 disk, 0.2 cpu) = 0.2 s/event.
  EXPECT_DOUBLE_EQ(h.engine->now(), 200.0);
}

TEST(EngineEdge, ContentionComposesWithPipelining) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.cost.pipelined = true;
  cfg.tertiaryAggregateBytesPerSec = 1e6;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {5000, 6000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  // Second stream sees 0.5 MB/s: max(1.2 transfer, 0.2 cpu) = 1.2 s/event.
  EXPECT_DOUBLE_EQ(h.engine->now(), 1200.0);
}

TEST(EngineEdge, NodeSpeedComposesWithPipelining) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.cost.pipelined = true;
  cfg.nodeSpeedFactors = {0.25};  // cpu 0.8 s/event: now CPU-bound uncached
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // max(0.6 transfer, 0.8 cpu) = 0.8 s/event.
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
}

TEST(EngineEdge, PinnedSpanSurvivesCachePressure) {
  // While node 0 reads its cached span, injected inserts cannot evict the
  // pinned span data out from under it.
  SimConfig cfg = tinyConfig(1, 1'000'000, 1000, /*maxSpan=*/1000);
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);  // cache full
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->at(10.0, [&] {
    // Hostile insert while the span is pinned: nothing is evictable, so
    // nothing may enter and the pinned data must survive.
    h.engine->cluster().node(0).cache().insert({500'000, 500'900}, 10.0);
    EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({0, 1000}));
  });
  h.engine->run({});
  // The whole run stayed cached: 260 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 260.0);
}

TEST(EngineEdge, IdleNodesAscending) {
  Harness h(tinyConfig(5, 1'000'000, 1000), {{0, 0.0, {0, 100}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(2, whole(j)); };
  h.policy->timerHook = [&](TimerId) {
    EXPECT_EQ(h.engine->idleNodes(), (std::vector<NodeId>{0, 1, 3, 4}));
  };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(5.0);
  h.engine->run({});
}

TEST(EngineEdge, InjectedActionsShareFifoOrderingWithEvents) {
  Harness h(tinyConfig(1, 1'000'000, 1000), {});
  std::vector<int> order;
  h.engine->at(10.0, [&] { order.push_back(1); });
  h.engine->at(10.0, [&] { order.push_back(2); });
  h.engine->at(5.0, [&] { order.push_back(0); });
  h.engine->run({});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EngineEdge, RemoteSpanFallsBackToTertiaryPastRemoteCoverage) {
  // Remote node caches only the first half; the run reads that half
  // remotely and fetches the rest from tertiary storage.
  Harness h(tinyConfig(2, 1'000'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(1).cache().insert({0, 500}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) {
    RunOptions opts;
    opts.remoteFrom = 1;
    h.engine->startRun(0, whole(j), opts);
  };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 500 * 0.26 + 500 * 0.8);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.remoteReadFraction, 0.5);
  // The tertiary half entered the local cache; the remote half did not
  // (no replication threshold).
  EXPECT_FALSE(h.engine->cluster().node(0).cache().containsRange({0, 500}));
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({500, 1000}));
}

TEST(EngineEdge, PreemptTwiceIsRejected) {
  Harness h(tinyConfig(1, 1'000'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.policy->timerHook = [&](TimerId) {
    (void)h.engine->preempt(0);
    EXPECT_THROW(h.engine->preempt(0), std::logic_error);
  };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(40.0);
  h.engine->run({});
}

TEST(EngineEdge, ZeroCpuCostStillProgresses) {
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000);
  cfg.cost.cpuSecPerEvent = 0.0;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 600.0);  // pure transfer cost
  EXPECT_TRUE(h.engine->jobDone(0));
}

}  // namespace
}  // namespace ppsched
