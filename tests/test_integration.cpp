// Integration tests: whole-simulation properties across policies, and the
// paper's qualitative claims at small scale.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/queueing.h"

namespace ppsched {
namespace {

ExperimentSpec spec(const std::string& policy, double load, std::uint64_t seed = 42) {
  ExperimentSpec s;
  s.policyName = policy;
  s.jobsPerHour = load;
  s.seed = seed;
  s.warmupJobs = 60;
  s.measuredJobs = 250;
  s.maxJobsInSystem = 300;
  return s;
}

// ---------------------------------------------------------------------------
// Every policy must satisfy basic sanity invariants on the same workload.

class AllPolicies : public ::testing::TestWithParam<std::string> {};

TEST_P(AllPolicies, CompletesAndReportsSaneMetrics) {
  ExperimentSpec s = spec(GetParam(), 0.9);
  if (GetParam() == "delayed") s.policyParams.periodDelay = 6 * units::hour;
  const RunResult r = runExperiment(s);
  EXPECT_GE(r.completedJobs, s.warmupJobs + s.measuredJobs) << GetParam();
  EXPECT_GT(r.measuredJobs, 0u);
  EXPECT_GT(r.avgSpeedup, 0.2);
  EXPECT_LT(r.avgSpeedup, 31.0);  // hard bound: 10 nodes x caching gain 3.08
  EXPECT_GE(r.avgWait, 0.0);
  EXPECT_GE(r.avgWaitExDelay, 0.0);
  EXPECT_LE(r.avgWaitExDelay, r.avgWait + 1e-9);
  EXPECT_GE(r.cacheHitFraction, 0.0);
  EXPECT_LE(r.cacheHitFraction, 1.0);
  EXPECT_FALSE(r.overloaded) << GetParam() << " overloaded at 0.9 jobs/hour";
}

TEST_P(AllPolicies, CachelessPoliciesNeverHitCache) {
  const std::string name = GetParam();
  const RunResult r = runExperiment(spec(name, 0.8));
  if (name == "farm" || name == "splitting") {
    EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPolicies,
                         ::testing::Values("farm", "splitting", "cache_oriented",
                                           "out_of_order", "replication", "delayed",
                                           "adaptive", "mixed"));

// ---------------------------------------------------------------------------
// The paper's qualitative orderings (small-scale versions of Figs 2, 3, 5).

TEST(PaperShape, SplittingBeatsFarmOnSpeedup) {
  const RunResult farm = runExperiment(spec("farm", 0.8));
  const RunResult split = runExperiment(spec("splitting", 0.8));
  EXPECT_GT(split.avgSpeedup, 1.5 * farm.avgSpeedup);
  EXPECT_LT(split.avgWait, farm.avgWait);
}

TEST(PaperShape, CachingBeatsPlainSplitting) {
  const RunResult split = runExperiment(spec("splitting", 0.9));
  const RunResult cached = runExperiment(spec("cache_oriented", 0.9));
  EXPECT_GT(cached.avgSpeedup, split.avgSpeedup);
  EXPECT_LT(cached.avgWait, split.avgWait);
  EXPECT_GT(cached.cacheHitFraction, 0.2);
}

TEST(PaperShape, OutOfOrderBeatsCacheOriented) {
  const RunResult fifo = runExperiment(spec("cache_oriented", 1.0));
  const RunResult ooo = runExperiment(spec("out_of_order", 1.0));
  EXPECT_GT(ooo.avgSpeedup, fifo.avgSpeedup);
  EXPECT_LT(ooo.avgWait, fifo.avgWait);
}

TEST(PaperShape, LargerCacheHelpsCacheOriented) {
  ExperimentSpec small = spec("cache_oriented", 0.9);
  small.sim.cacheBytesPerNode = 50'000'000'000ULL;
  small.sim.finalize();
  ExperimentSpec large = spec("cache_oriented", 0.9);
  large.sim.cacheBytesPerNode = 200'000'000'000ULL;
  large.sim.finalize();
  const RunResult rs = runExperiment(small);
  const RunResult rl = runExperiment(large);
  EXPECT_GT(rl.cacheHitFraction, rs.cacheHitFraction);
  EXPECT_GT(rl.avgSpeedup, rs.avgSpeedup);
}

TEST(PaperShape, OutOfOrderSustainsLoadsTheFarmCannot) {
  // 1.4 jobs/hour: beyond the farm's 1.125 limit, fine for out-of-order.
  const RunResult farm = runExperiment(spec("farm", 1.4));
  const RunResult ooo = runExperiment(spec("out_of_order", 1.4));
  EXPECT_TRUE(farm.overloaded);
  EXPECT_FALSE(ooo.overloaded);
}

TEST(PaperShape, DelayedSustainsHighLoadAtWaitCost) {
  ExperimentSpec s = spec("delayed", 2.0);
  s.policyParams.periodDelay = 2 * units::day;
  s.policyParams.stripeEvents = 1000;
  s.maxJobsInSystem = 2000;  // periods legitimately hold many jobs
  s.measuredJobs = 400;
  const RunResult delayed = runExperiment(s);
  EXPECT_FALSE(delayed.overloaded);

  // The FIFO cached policy cannot sustain 2 jobs/hour.
  const RunResult fifo = runExperiment(spec("cache_oriented", 2.0));
  EXPECT_TRUE(fifo.overloaded);
}

TEST(PaperShape, FarmWaitingTimeMatchesMErMTheory) {
  // §3.1/§3.4: the farm is an M/Er/m queue. Compare simulated mean waiting
  // time with the Allen–Cunneen approximation at a moderate load.
  ExperimentSpec s = spec("farm", 0.9);
  s.measuredJobs = 600;
  const RunResult r = runExperiment(s);
  const QueueModel q = farmQueueModel(10, 0.9, 32'000.0, 4);
  const double predicted = q.meanWaitApprox();
  EXPECT_GT(r.avgWait, 0.4 * predicted);
  EXPECT_LT(r.avgWait, 2.5 * predicted);
}

TEST(PaperShape, ReplicationDoesNotChangeOutOfOrderPerformance) {
  const RunResult ooo = runExperiment(spec("out_of_order", 1.3));
  const RunResult repl = runExperiment(spec("replication", 1.3));
  // §4.2: "identical performances" — allow simulation noise.
  EXPECT_NEAR(repl.avgSpeedup, ooo.avgSpeedup, 0.25 * ooo.avgSpeedup);
}

TEST(PaperShape, PipeliningImprovesThroughput) {
  // §7 future work: overlapping transfer and processing cuts the uncached
  // event cost from 0.8 to 0.6 s.
  ExperimentSpec serial = spec("out_of_order", 1.0);
  ExperimentSpec pipelined = spec("out_of_order", 1.0);
  pipelined.sim.cost.pipelined = true;
  pipelined.sim.finalize();
  const RunResult rs = runExperiment(serial);
  const RunResult rp = runExperiment(pipelined);
  EXPECT_GT(rp.avgSpeedup, rs.avgSpeedup);
}

}  // namespace
}  // namespace ppsched
