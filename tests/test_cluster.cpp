// Cluster / Node: cache-location queries used by the policies.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace ppsched {
namespace {

TEST(Cluster, Construction) {
  Cluster c(4, 1000);
  EXPECT_EQ(c.size(), 4);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).id(), n);
    EXPECT_EQ(c.node(n).cache().capacity(), 1000u);
  }
}

TEST(Cluster, RejectsEmptyCluster) {
  EXPECT_THROW(Cluster(0, 100), std::invalid_argument);
}

TEST(Cluster, NodeBoundsChecked) {
  Cluster c(2, 100);
  EXPECT_THROW(c.node(-1), std::out_of_range);
  EXPECT_THROW(c.node(2), std::out_of_range);
}

TEST(Cluster, CachedOnQueriesTheRightNode) {
  Cluster c(3, 1000);
  c.node(1).cache().insert({100, 200}, 1.0);
  EXPECT_TRUE(c.cachedOn(0, {100, 200}).empty());
  EXPECT_EQ(c.cachedOn(1, {100, 200}).size(), 100u);
}

TEST(Cluster, NodesCaching) {
  Cluster c(3, 1000);
  c.node(0).cache().insert({0, 50}, 1.0);
  c.node(2).cache().insert({25, 75}, 1.0);
  EXPECT_EQ(c.nodesCaching({0, 100}), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.nodesCaching({60, 100}), (std::vector<NodeId>{2}));
  EXPECT_TRUE(c.nodesCaching({80, 100}).empty());
}

TEST(Cluster, BestCacheNodePicksLargestOverlap) {
  Cluster c(3, 1000);
  c.node(0).cache().insert({0, 10}, 1.0);
  c.node(1).cache().insert({0, 90}, 1.0);
  EXPECT_EQ(c.bestCacheNode({0, 100}), 1);
  EXPECT_EQ(c.bestCacheNode({500, 600}), kNoNode);
}

TEST(Cluster, BestCacheNodeTieGoesToLowestId) {
  Cluster c(3, 1000);
  c.node(1).cache().insert({0, 50}, 1.0);
  c.node(2).cache().insert({50, 100}, 1.0);
  EXPECT_EQ(c.bestCacheNode({0, 100}), 1);
}

TEST(Cluster, CachedAnywhereUnionsNodes) {
  Cluster c(3, 1000);
  c.node(0).cache().insert({0, 30}, 1.0);
  c.node(1).cache().insert({20, 60}, 1.0);
  const IntervalSet got = c.cachedAnywhere({0, 100});
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{0, 60}}));
}

TEST(Cluster, TotalCachedEventsSumsNodes) {
  Cluster c(2, 1000);
  c.node(0).cache().insert({0, 30}, 1.0);
  c.node(1).cache().insert({0, 30}, 1.0);  // duplicates count per node
  EXPECT_EQ(c.totalCachedEvents(), 60u);
}

}  // namespace
}  // namespace ppsched
