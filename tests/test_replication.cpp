// ReplicationScheduler (§4.2): remote reads + 3rd-access replication.
#include "sched/replication.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct ReplHarness {
  ReplHarness(SimConfig cfg, std::vector<Job> jobs, int threshold = 3)
      : metrics(cfg.cost, {0, 0.0}) {
    ReplicationScheduler::Params params;
    params.replicationThreshold = threshold;
    auto p = std::make_unique<ReplicationScheduler>(params);
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  ReplicationScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(Replication, NameAndDefaults) {
  ReplicationScheduler p;
  EXPECT_EQ(p.name(), "replication");
  EXPECT_TRUE(p.usesCaching());
}

TEST(Replication, RemoteReadInsteadOfTertiary) {
  // Job data cached on node 1, but node 1 is kept busy by a first job, so
  // the piece lands on node 0 via stealing/splitting and reads remotely.
  ReplHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 4000}}});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  // Everything was served from cache (local or remote), nothing from tape.
  EXPECT_EQ(r.tertiaryEvents, 0u);
  EXPECT_EQ(r.completedJobs, 1u);
}

TEST(Replication, ColdDataStillComesFromTertiary) {
  ReplHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}});
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 2000u);
  EXPECT_EQ(r.replicationOps, 0u);
}

TEST(Replication, ReplicationIsRareUnderNormalLoad) {
  // The paper: replication occurs in less than 1 permille of job arrivals.
  // With a realistic-ish stream we only assert it stays rare relative to
  // total work.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 60; ++i) {
    jobs.push_back({i, t, {(i % 6) * 30'000, (i % 6) * 30'000 + 5000}});
    t += 900.0;
  }
  ReplHarness h(tinyConfig(4, 1'000'000, 30'000), jobs);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.completedJobs, 60u);
  const double replicatedFraction =
      static_cast<double>(r.replicatedEvents) / (60.0 * 5000.0);
  EXPECT_LT(replicatedFraction, 0.05);
}

// With the network model on, the replication policy consults the host's
// contention-aware cost feedback before committing to a remote read: when
// the estimated remote rate is no better than streaming from tertiary, the
// remote read (and the replication it would seed) is skipped.
TEST(Replication, CongestedNetworkGatesRemoteReads) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 1e6;  // NIC as slow as the tertiary stream
  cfg.finalize();
  ReplHarness h(cfg, {});

  // Both paths now bottleneck on the same 1 MB/s NIC: remote buys nothing.
  EXPECT_GE(h.engine->estimatedSecPerEvent(0, 1, DataSource::RemoteCache),
            h.engine->estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary));

  // The gated run streams from tertiary: no remote flows open.
  std::vector<Job> jobs{{0, 0.0, {0, 4000}}};
  ReplHarness run(cfg, jobs);
  run.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  run.engine->run({});
  EXPECT_EQ(run.engine->networkReport().remoteFlows, 0u);
  EXPECT_EQ(run.metrics.finalize(run.engine->now()).completedJobs, 1u);
}

TEST(Replication, UncongestedNetworkKeepsRemoteReads) {
  // Same scenario with a fast NIC: the gate passes and remote reads happen
  // (the network-model analogue of RemoteReadInsteadOfTertiary).
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 125e6;
  cfg.finalize();
  ReplHarness probe(cfg, {});
  EXPECT_LT(probe.engine->estimatedSecPerEvent(0, 1, DataSource::RemoteCache),
            probe.engine->estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary));

  ReplHarness h(cfg, {{0, 0.0, {0, 4000}}});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->run({});
  EXPECT_GT(h.engine->networkReport().remoteFlows, 0u);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 0u);
  EXPECT_EQ(r.completedJobs, 1u);
}

TEST(Replication, SameCompletionsAsOutOfOrderOnSameTrace) {
  // §4.2's headline: replication does not change overall performance. Run
  // the same trace under both policies and compare end-to-end time loosely.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 40; ++i) {
    jobs.push_back({i, t, {(i % 4) * 40'000, (i % 4) * 40'000 + 6000}});
    t += 1200.0;
  }
  SimConfig cfg = tinyConfig(3, 1'000'000, 40'000);

  MetricsCollector mOoo(cfg.cost, {0, 0.0});
  Engine eOoo(cfg, fixedSource(jobs), std::make_unique<OutOfOrderScheduler>(), mOoo);
  eOoo.run({});

  ReplHarness h(cfg, jobs);
  h.engine->run({});

  const RunResult a = mOoo.finalize(eOoo.now());
  const RunResult b = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(a.completedJobs, b.completedJobs);
  // Within 10% of each other on mean speedup (paper: "identical").
  EXPECT_NEAR(a.avgSpeedup, b.avgSpeedup, 0.1 * a.avgSpeedup + 0.5);
}

}  // namespace
}  // namespace ppsched
