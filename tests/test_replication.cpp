// ReplicationScheduler (§4.2): remote reads + 3rd-access replication.
#include "sched/replication.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct ReplHarness {
  ReplHarness(SimConfig cfg, std::vector<Job> jobs, int threshold = 3)
      : metrics(cfg.cost, {0, 0.0}) {
    ReplicationScheduler::Params params;
    params.replicationThreshold = threshold;
    auto p = std::make_unique<ReplicationScheduler>(params);
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  ReplicationScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(Replication, NameAndDefaults) {
  ReplicationScheduler p;
  EXPECT_EQ(p.name(), "replication");
  EXPECT_TRUE(p.usesCaching());
}

TEST(Replication, RemoteReadInsteadOfTertiary) {
  // Job data cached on node 1, but node 1 is kept busy by a first job, so
  // the piece lands on node 0 via stealing/splitting and reads remotely.
  ReplHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 4000}}});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  // Everything was served from cache (local or remote), nothing from tape.
  EXPECT_EQ(r.tertiaryEvents, 0u);
  EXPECT_EQ(r.completedJobs, 1u);
}

TEST(Replication, ColdDataStillComesFromTertiary) {
  ReplHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}});
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 2000u);
  EXPECT_EQ(r.replicationOps, 0u);
}

TEST(Replication, ReplicationIsRareUnderNormalLoad) {
  // The paper: replication occurs in less than 1 permille of job arrivals.
  // With a realistic-ish stream we only assert it stays rare relative to
  // total work.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 60; ++i) {
    jobs.push_back({i, t, {(i % 6) * 30'000, (i % 6) * 30'000 + 5000}});
    t += 900.0;
  }
  ReplHarness h(tinyConfig(4, 1'000'000, 30'000), jobs);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.completedJobs, 60u);
  const double replicatedFraction =
      static_cast<double>(r.replicatedEvents) / (60.0 * 5000.0);
  EXPECT_LT(replicatedFraction, 0.05);
}

// With the network model on, the replication policy consults the host's
// contention-aware cost feedback before committing to a remote read: when
// the estimated remote rate is no better than streaming from tertiary, the
// remote read (and the replication it would seed) is skipped.
TEST(Replication, CongestedNetworkGatesRemoteReads) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 1e6;  // NIC as slow as the tertiary stream
  cfg.finalize();
  ReplHarness h(cfg, {});

  // Both paths now bottleneck on the same 1 MB/s NIC: remote buys nothing.
  EXPECT_GE(h.engine->estimatedSecPerEvent(0, 1, DataSource::RemoteCache),
            h.engine->estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary));

  // The gated run streams from tertiary: no remote flows open.
  std::vector<Job> jobs{{0, 0.0, {0, 4000}}};
  ReplHarness run(cfg, jobs);
  run.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  run.engine->run({});
  EXPECT_EQ(run.engine->networkReport().remoteFlows, 0u);
  EXPECT_EQ(run.metrics.finalize(run.engine->now()).completedJobs, 1u);
}

TEST(Replication, UncongestedNetworkKeepsRemoteReads) {
  // Same scenario with a fast NIC: the gate passes and remote reads happen
  // (the network-model analogue of RemoteReadInsteadOfTertiary).
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 125e6;
  cfg.finalize();
  ReplHarness probe(cfg, {});
  EXPECT_LT(probe.engine->estimatedSecPerEvent(0, 1, DataSource::RemoteCache),
            probe.engine->estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary));

  ReplHarness h(cfg, {{0, 0.0, {0, 4000}}});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->run({});
  EXPECT_GT(h.engine->networkReport().remoteFlows, 0u);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 0u);
  EXPECT_EQ(r.completedJobs, 1u);
}

// ---------------------------------------------------------------------------
// Topology-aware placement (network model on): the serving node comes from
// ISchedulerHost::rankPlacements instead of raw cache content, and replica
// copies are withheld on congested paths.
// ---------------------------------------------------------------------------

/// Exposes the protected placement decision for direct unit testing.
struct ProbePolicy : ReplicationScheduler {
  using ReplicationScheduler::ReplicationScheduler;
  AccessPlan probe(NodeId node, const Subjob& sj) { return planFor(node, sj); }
};

Subjob stolen(EventRange r) {
  Subjob sj;
  sj.job = 0;
  sj.range = r;
  sj.yieldsToCached = true;
  return sj;
}

/// Switches {0,1}/{2,3}, 2 MB/s uplinks: node 1 is same-switch for node 0,
/// node 3 is across the core.
SimConfig switchedConfig() {
  SimConfig cfg = tinyConfig(4, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 125e6;
  cfg.network.uplinkBytesPerSec = 2e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  return cfg;
}

TEST(ReplicationTopology, PicksCheapestServerNotLargestCache) {
  testing::Harness h(switchedConfig(), {});
  // Node 3 caches more, but serving across the 2 MB/s uplink costs
  // 0.5 s/event; same-switch node 1 serves at 0.26 s/event.
  h.engine->cluster().node(1).cache().insert({0, 3000}, 0.0);
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);

  ProbePolicy topo{ReplicationScheduler::Params{}};
  topo.bind(*h.engine);
  const AccessPlan plan = topo.probe(0, stolen({0, 4000}));
  EXPECT_EQ(plan.servingNode, 1);
  EXPECT_EQ(plan.replicationThreshold, 3);

  ReplicationScheduler::Params cacheOnly;
  cacheOnly.topologyAware = false;
  ProbePolicy legacy{cacheOnly};
  legacy.bind(*h.engine);
  EXPECT_EQ(legacy.probe(0, stolen({0, 4000})).servingNode, 3);
}

TEST(ReplicationTopology, SkipsRemoteWhenEveryPathLosesToTertiary) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 1e6;  // NIC as slow as the tertiary stream
  cfg.finalize();
  testing::Harness h(cfg, {});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  ProbePolicy topo{ReplicationScheduler::Params{}};
  topo.bind(*h.engine);
  EXPECT_EQ(topo.probe(0, stolen({0, 4000})).servingNode, kNoNode);
}

TEST(ReplicationTopology, CongestedPathWithholdsReplicaCopy) {
  // The gate measures sharing, not topology: an idle cross-switch path is
  // priced at its own uncontended cost (uplink included), so only live
  // contention on the chosen links withholds the copy. Here a remote read
  // 2 -> 1 saturates both uplinks of the 0<->3 route.
  SimConfig cfg = tinyConfig(4, 1'000'000, 100'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 125e6;
  cfg.network.uplinkBytesPerSec = 2.5e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  testing::Harness h(cfg, {{0, 0.0, {10'000, 14'000}}});
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);
  h.engine->cluster().node(2).cache().insert({10'000, 14'000}, 0.0);

  ProbePolicy topo{ReplicationScheduler::Params{}};
  topo.bind(*h.engine);

  // Idle uplink: the cross-switch read from node 3 costs 0.44 s/event —
  // exactly the path's uncontended cost — and the copy is allowed.
  const AccessPlan idle = topo.probe(0, stolen({0, 4000}));
  EXPECT_EQ(idle.servingNode, 3);
  EXPECT_EQ(idle.replicationThreshold, 3);

  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(1, testing::whole(j), {.remoteFrom = 2});
  };
  AccessPlan contended;
  AccessPlan sameSwitch;
  h.policy->timerHook = [&](TimerId) {
    contended = topo.probe(0, stolen({0, 4000}));
    sameSwitch = topo.probe(2, stolen({0, 4000}));
  };
  h.engine->run({.simTimeLimit = 1.0});
  h.engine->scheduleTimer(10.0);
  h.engine->run({.simTimeLimit = 20.0});

  // Shared uplinks halve the share: 0.68 s/event still beats tertiary
  // (0.8) so the read stays remote, but it exceeds 1.5x the uncontended
  // 0.44, so the replica copy is withheld to spare the loaded links.
  EXPECT_EQ(contended.servingNode, 3);
  EXPECT_EQ(contended.replicationThreshold, 0);

  // The same source serves node 2 same-switch off the NICs alone: copy
  // allowed there even while the uplinks are saturated.
  EXPECT_EQ(sameSwitch.servingNode, 3);
  EXPECT_EQ(sameSwitch.replicationThreshold, 3);
}

TEST(ReplicationTopology, NonStolenSubjobNeverReadsRemotely) {
  testing::Harness h(switchedConfig(), {});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  ProbePolicy topo{ReplicationScheduler::Params{}};
  topo.bind(*h.engine);
  Subjob sj = stolen({0, 4000});
  sj.yieldsToCached = false;
  EXPECT_EQ(topo.probe(0, sj).servingNode, kNoNode);
}

TEST(ReplicationTopology, DisabledNetworkFallsBackToCacheHeuristic) {
  // topologyAware stays on, but with the model off the policy must take the
  // legacy bit-identical path: largest cache wins, no gates.
  testing::Harness h(tinyConfig(4, 1'000'000, 100'000), {});
  h.engine->cluster().node(1).cache().insert({0, 3000}, 0.0);
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);
  ProbePolicy topo{ReplicationScheduler::Params{}};
  topo.bind(*h.engine);
  const AccessPlan plan = topo.probe(0, stolen({0, 4000}));
  EXPECT_EQ(plan.servingNode, 3);
  EXPECT_EQ(plan.replicationThreshold, 3);
}

TEST(ReplicationTopology, EndToEndServingStaysOffCongestedUplinks) {
  // One job whose data is fully cached on node 1 AND on node 3 — one full
  // copy behind each edge switch. The out-of-order split spreads it across
  // all four nodes; the stolen pieces read remotely. Cache-only placement
  // breaks the largest-cache tie by node id and serves everyone from node
  // 1, dragging node 2's read across the uplink; topology-aware placement
  // serves every reader from its own switch, leaving the uplinks silent.
  auto runWith = [&](bool topologyAware) {
    SimConfig cfg = switchedConfig();
    ReplicationScheduler::Params params;
    params.topologyAware = topologyAware;
    MetricsCollector metrics(cfg.cost, {0, 0.0});
    Engine engine(cfg, fixedSource({{0, 0.0, {0, 4000}}}),
                  std::make_unique<ReplicationScheduler>(params), metrics);
    engine.cluster().node(1).cache().insert({0, 4000}, 0.0);
    engine.cluster().node(3).cache().insert({0, 4000}, 0.0);
    engine.run({});
    EXPECT_EQ(metrics.finalize(engine.now()).completedJobs, 1u);
    double maxUplink = 0.0;
    for (const LinkReport& l : engine.networkReport().links) {
      if (l.name.rfind("uplink", 0) == 0) maxUplink = std::max(maxUplink, l.utilization);
    }
    return std::pair<double, SimTime>{maxUplink, engine.now()};
  };
  const auto [cacheOnlyUplink, cacheOnlyTime] = runWith(false);
  const auto [topoUplink, topoTime] = runWith(true);
  EXPECT_GT(cacheOnlyUplink, 0.0);
  EXPECT_DOUBLE_EQ(topoUplink, 0.0);
  EXPECT_LE(topoTime, cacheOnlyTime + 1e-9);
}

TEST(Replication, SameCompletionsAsOutOfOrderOnSameTrace) {
  // §4.2's headline: replication does not change overall performance. Run
  // the same trace under both policies and compare end-to-end time loosely.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 40; ++i) {
    jobs.push_back({i, t, {(i % 4) * 40'000, (i % 4) * 40'000 + 6000}});
    t += 1200.0;
  }
  SimConfig cfg = tinyConfig(3, 1'000'000, 40'000);

  MetricsCollector mOoo(cfg.cost, {0, 0.0});
  Engine eOoo(cfg, fixedSource(jobs), std::make_unique<OutOfOrderScheduler>(), mOoo);
  eOoo.run({});

  ReplHarness h(cfg, jobs);
  h.engine->run({});

  const RunResult a = mOoo.finalize(eOoo.now());
  const RunResult b = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(a.completedJobs, b.completedJobs);
  // Within 10% of each other on mean speedup (paper: "identical").
  EXPECT_NEAR(a.avgSpeedup, b.avgSpeedup, 0.1 * a.avgSpeedup + 0.5);
}

}  // namespace
}  // namespace ppsched
