// Property tests for the flat (sorted-vector) interval structures.
//
// IntervalSet and IntervalCounter moved from node-based std::map storage to
// flat sorted vectors; these tests cross-check the flat implementations
// against straightforward map-based reference models (the old semantics)
// under long random operation sequences, so any divergence in coalescing,
// boundary handling or size bookkeeping shows up with a reproducible seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "storage/interval_map.h"
#include "storage/interval_set.h"

namespace ppsched {
namespace {

// ---------------------------------------------------------------------------
// Reference models (the pre-flat, map-based semantics).

/// Disjoint coalesced interval set stored as begin -> end, old-style.
class RefIntervalSet {
 public:
  void insert(EventRange r) {
    if (r.empty()) return;
    EventIndex b = r.begin;
    EventIndex e = r.end;
    auto it = map_.lower_bound(b);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) it = prev;
    }
    while (it != map_.end() && it->first <= e) {
      b = std::min(b, it->first);
      e = std::max(e, it->second);
      it = map_.erase(it);
    }
    map_.emplace(b, e);
  }

  void erase(EventRange r) {
    if (r.empty() || map_.empty()) return;
    auto it = map_.lower_bound(r.begin);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > r.begin) it = prev;
    }
    while (it != map_.end() && it->first < r.end) {
      const EventIndex ib = it->first;
      const EventIndex ie = it->second;
      it = map_.erase(it);
      if (ib < r.begin) map_.emplace(ib, r.begin);
      if (ie > r.end) {
        map_.emplace(r.end, ie);
        break;
      }
    }
  }

  [[nodiscard]] std::vector<EventRange> intervals() const {
    std::vector<EventRange> out;
    for (const auto& [b, e] : map_) out.push_back({b, e});
    return out;
  }

  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t total = 0;
    for (const auto& [b, e] : map_) total += e - b;
    return total;
  }

 private:
  std::map<EventIndex, EventIndex> map_;
};

/// Interval counter evaluated point-wise (trivially correct, O(range)).
class RefCounter {
 public:
  void add(EventRange r, std::int64_t delta) {
    for (EventIndex e = r.begin; e < r.end; ++e) values_[e] += delta;
  }

  [[nodiscard]] std::int64_t valueAt(EventIndex e) const {
    auto it = values_.find(e);
    return it == values_.end() ? 0 : it->second;
  }

 private:
  std::map<EventIndex, std::int64_t> values_;
};

void expectSameContents(const IntervalSet& flat, const RefIntervalSet& ref,
                        const char* what, unsigned step) {
  ASSERT_EQ(flat.intervals(), ref.intervals()) << what << " diverged at step " << step;
  ASSERT_EQ(flat.size(), ref.size()) << what << " size diverged at step " << step;
  ASSERT_EQ(flat.intervalCount(), ref.intervals().size())
      << what << " interval count diverged at step " << step;
}

// ---------------------------------------------------------------------------
// IntervalSet vs reference.

TEST(FlatIntervalProperty, RandomInsertEraseMatchesMapSemantics) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 20; ++round) {
    IntervalSet flat;
    RefIntervalSet ref;
    for (unsigned step = 0; step < 400; ++step) {
      const EventIndex b = rng() % 2000;
      const EventIndex len = rng() % 120;
      const EventRange r{b, b + len};
      if (rng() % 3 == 0) {
        flat.erase(r);
        ref.erase(r);
      } else {
        flat.insert(r);
        ref.insert(r);
      }
      expectSameContents(flat, ref, "insert/erase", step);
    }
  }
}

TEST(FlatIntervalProperty, BoundaryCoalescing) {
  IntervalSet s;
  s.insert({10, 20});
  s.insert({20, 30});  // adjacent: must merge
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{10, 30}}));
  s.insert({31, 40});  // gap of one: must NOT merge
  EXPECT_EQ(s.intervalCount(), 2u);
  s.insert({30, 31});  // fills the gap: collapses to one
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{10, 40}}));
  s.erase({15, 15});  // empty erase: no-op
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{10, 40}}));
  s.erase({15, 25});  // interior split
  EXPECT_EQ(s.intervals(), (std::vector<EventRange>{{10, 15}, {25, 40}}));
}

TEST(FlatIntervalProperty, QueriesMatchBruteForce) {
  std::mt19937_64 rng(7);
  IntervalSet s;
  for (int i = 0; i < 60; ++i) {
    const EventIndex b = rng() % 3000;
    s.insert({b, b + rng() % 90});
  }
  const auto ivs = s.intervals();
  auto bruteContains = [&](EventIndex e) {
    return std::any_of(ivs.begin(), ivs.end(),
                       [&](const EventRange& r) { return r.contains(e); });
  };
  for (EventIndex e = 0; e < 3200; e += 3) {
    ASSERT_EQ(s.contains(e), bruteContains(e)) << "contains(" << e << ")";
    const EventRange run = s.runAt(e);
    if (bruteContains(e)) {
      ASSERT_EQ(run.begin, e);
      ASSERT_TRUE(s.containsRange(run));
      ASSERT_FALSE(s.contains(run.end));
    } else {
      ASSERT_TRUE(run.empty());
    }
  }
  for (int q = 0; q < 500; ++q) {
    const EventIndex b = rng() % 3200;
    const EventRange r{b, b + rng() % 200};
    std::uint64_t brute = 0;
    for (EventIndex e = r.begin; e < r.end; ++e) brute += bruteContains(e) ? 1 : 0;
    ASSERT_EQ(s.overlapSize(r), brute);
    ASSERT_EQ(s.intersects(r), brute > 0);
    ASSERT_EQ(s.containsRange(r), brute == r.size());
    ASSERT_EQ(s.intersectWith(r).size(), brute);
  }
}

TEST(FlatIntervalProperty, BatchedSetOperationsMatchElementwise) {
  std::mt19937_64 rng(99);
  for (int round = 0; round < 40; ++round) {
    IntervalSet a, b;
    for (int i = 0; i < 25; ++i) {
      a.insert({rng() % 1500, rng() % 1500 + rng() % 80});
      b.insert({rng() % 1500, rng() % 1500 + rng() % 80});
    }
    // Union via the batched linear-merge path vs one-range-at-a-time.
    IntervalSet merged = a;
    merged.insert(b);
    IntervalSet loop = a;
    for (const auto& r : b.intervals()) loop.insert(r);
    ASSERT_EQ(merged, loop);

    // Intersection via the linear sweep vs brute force.
    const IntervalSet inter = a.intersectWith(b);
    for (EventIndex e = 0; e < 1700; e += 7) {
      ASSERT_EQ(inter.contains(e), a.contains(e) && b.contains(e));
    }
    // Difference.
    const IntervalSet diff = a.difference(b);
    for (EventIndex e = 0; e < 1700; e += 7) {
      ASSERT_EQ(diff.contains(e), a.contains(e) && !b.contains(e));
    }
  }
}

// ---------------------------------------------------------------------------
// IntervalCounter vs reference.

TEST(FlatIntervalProperty, CounterRandomAddsMatchPointwiseModel) {
  std::mt19937_64 rng(31337);
  for (int round = 0; round < 10; ++round) {
    IntervalCounter flat;
    RefCounter ref;
    // Track live (range, delta) pairs so we only ever retract what we added
    // and values stay >= 0.
    std::vector<std::pair<EventRange, std::int64_t>> live;
    for (unsigned step = 0; step < 250; ++step) {
      if (!live.empty() && rng() % 3 == 0) {
        const std::size_t pick = rng() % live.size();
        const auto [r, d] = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        flat.add(r, -d);
        ref.add(r, -d);
      } else {
        const EventIndex b = rng() % 900;
        const EventRange r{b, b + 1 + rng() % 60};
        const auto d = static_cast<std::int64_t>(1 + rng() % 3);
        live.emplace_back(r, d);
        flat.add(r, d);
        ref.add(r, d);
      }
      for (EventIndex e = 0; e < 1000; e += 1) {
        ASSERT_EQ(flat.valueAt(e), ref.valueAt(e)) << "valueAt(" << e << ") step " << step;
      }
      // Coalescing invariant: consecutive breakpoints carry distinct values
      // and no breakpoint repeats the value in force before it.
      const auto bps = flat.breakpoints();
      std::int64_t prev = 0;
      for (const auto& [pos, value] : bps) {
        ASSERT_NE(value, prev) << "redundant breakpoint at " << pos << " step " << step;
        prev = value;
      }
    }
    // Retract everything: the counter must return to all-zero.
    for (const auto& [r, d] : live) {
      flat.add(r, -d);
      ref.add(r, -d);
    }
    EXPECT_TRUE(flat.allZero());
  }
}

TEST(FlatIntervalProperty, CounterRangeQueriesMatchBruteForce) {
  std::mt19937_64 rng(555);
  IntervalCounter c;
  std::vector<std::pair<EventRange, std::int64_t>> live;
  for (int i = 0; i < 40; ++i) {
    const EventIndex b = rng() % 800;
    const EventRange r{b, b + 1 + rng() % 50};
    c.add(r, static_cast<std::int64_t>(1 + rng() % 2));
  }
  auto bruteValue = [&](EventIndex e) { return c.valueAt(e); };
  for (int q = 0; q < 300; ++q) {
    const EventIndex b = rng() % 900;
    const EventRange r{b, b + 1 + rng() % 120};
    std::int64_t lo = bruteValue(r.begin);
    std::int64_t hi = lo;
    for (EventIndex e = r.begin; e < r.end; ++e) {
      lo = std::min(lo, bruteValue(e));
      hi = std::max(hi, bruteValue(e));
    }
    ASSERT_EQ(c.minOver(r), lo);
    ASSERT_EQ(c.maxOver(r), hi);
    const std::int64_t threshold = 1 + static_cast<std::int64_t>(rng() % 3);
    const IntervalSet at = c.rangesAtLeast(r, threshold);
    for (EventIndex e = r.begin; e < r.end; ++e) {
      ASSERT_EQ(at.contains(e), bruteValue(e) >= threshold)
          << "rangesAtLeast mismatch at " << e;
    }
  }
}

TEST(FlatIntervalProperty, CounterUnderflowStillThrows) {
  IntervalCounter c;
  c.add({10, 20}, 2);
  EXPECT_THROW(c.add({5, 15}, -1), std::logic_error);   // [5,10) would go to -1
  EXPECT_THROW(c.add({10, 20}, -3), std::logic_error);  // below zero inside
  // The failed adds must not have corrupted the counter.
  EXPECT_EQ(c.valueAt(9), 0);
  EXPECT_EQ(c.valueAt(10), 2);
  EXPECT_EQ(c.valueAt(19), 2);
  EXPECT_EQ(c.valueAt(20), 0);
  c.add({10, 20}, -2);
  EXPECT_TRUE(c.allZero());
}

}  // namespace
}  // namespace ppsched
