// OutOfOrderScheduler (§4.1, Table 3).
#include "sched/out_of_order.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct OooHarness {
  OooHarness(SimConfig cfg, std::vector<Job> jobs,
             OutOfOrderScheduler::Params params = {2 * units::day})
      : metrics(cfg.cost, {0, 0.0}) {
    auto p = std::make_unique<OutOfOrderScheduler>(params);
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  OutOfOrderScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(OutOfOrder, SingleJobSpreadsOverIdleNodes) {
  OooHarness h(tinyConfig(4, 1'000'000, 100'000), {{0, 0.0, {0, 4000}}});
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);  // 1000 x 0.8 per node
}

TEST(OutOfOrder, CachedJobOvertakesUncachedQueue) {
  // One node, busy with job 0 (uncached). Job 1 (uncached) queues. Job 2's
  // data is cached: it must preempt and finish before job 1 starts.
  OooHarness h(tinyConfig(1, 1'000'000, 100'000),
               {{0, 0.0, {0, 5000}},
                {1, 1.0, {10'000, 15'000}},
                {2, 2.0, {90'000, 91'000}}});
  h.engine->cluster().node(0).cache().insert({90'000, 91'000}, 0.0);
  h.engine->run({});
  // Job 2 preempts job 0 at t=2 and runs 260 s.
  EXPECT_NEAR(h.metrics.record(2).completion, 2.0 + 260.0, 1.0);
  EXPECT_LT(h.metrics.record(2).completion, h.metrics.record(1).firstStart);
  EXPECT_EQ(h.metrics.completedJobs(), 3u);
}

TEST(OutOfOrder, CachedArrivalDoesNotPreemptCachedRun) {
  // Node 0 runs job 0 on its own cached data; job 1 (also cached on node 0)
  // must queue, not preempt.
  OooHarness h(tinyConfig(1, 1'000'000, 100'000),
               {{0, 0.0, {0, 1000}}, {1, 1.0, {2000, 3000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.engine->cluster().node(0).cache().insert({2000, 3000}, 0.0);
  h.engine->run({});
  // Job 0 completes its full 260 s before job 1 starts.
  EXPECT_DOUBLE_EQ(h.metrics.record(0).completion, 260.0);
  EXPECT_NEAR(h.metrics.record(1).firstStart, 260.0, 1e-6);
}

TEST(OutOfOrder, PreemptedUncachedWorkResumesLater) {
  OooHarness h(tinyConfig(1, 1'000'000, 100'000),
               {{0, 0.0, {0, 2000}}, {1, 10.0, {50'000, 50'500}}});
  h.engine->cluster().node(0).cache().insert({50'000, 50'500}, 0.0);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
  // Job 0 was interrupted for 500 * 0.26 = 130 s.
  EXPECT_NEAR(h.metrics.record(0).completion, 2000 * 0.8 + 130.0, 2.0);
}

TEST(OutOfOrder, WorkStealingSplitsBalanced) {
  // Node 1 idle, node 0 has a long cached run: node 1 steals the uncached-
  // rate share so both finish around the same time.
  OooHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 10'600}}});
  h.engine->cluster().node(0).cache().insert({0, 10'600}, 0.0);
  h.engine->run({});
  // Balanced split: ~8000 cached on node 0 (2080 s) + ~2600 stolen uncached
  // on node 1 (2080 s) -> finish ~2080 s, well below the 2756 s serial time.
  EXPECT_LT(h.engine->now(), 2300.0);
  EXPECT_EQ(h.metrics.completedJobs(), 1u);
}

TEST(OutOfOrder, StarvationGuardPromotesOldJobs) {
  // A stream of cached jobs would starve the uncached job 1 forever without
  // the guard; with a small limit it must complete reasonably soon.
  OutOfOrderScheduler::Params params;
  params.starvationLimit = 2 * units::hour;
  std::vector<Job> jobs;
  jobs.push_back({0, 0.0, {0, 1000}});          // will be cached
  jobs.push_back({1, 1.0, {500'000, 504'000}});  // cold, repeatedly overtaken
  SimTime t = 2.0;
  for (JobId i = 2; i < 40; ++i) {
    jobs.push_back({i, t, {0, 1000}});  // hot, always cached after job 0
    t += 270.0;  // just above one cached pass (260 s): node never free long
  }
  OooHarness h(tinyConfig(1, 1'000'000, 100'000), jobs, params);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 40u);
  EXPECT_GE(h.policy->promotions(), 1u);
  // Promoted within ~starvation limit + one job, far below the no-guard
  // bound (~38 overtakes).
  EXPECT_LT(h.metrics.record(1).waitingTime(), 3 * units::hour);
}

TEST(OutOfOrder, QueueAccountingConsistent) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 30; ++i) {
    jobs.push_back({i, i * 100.0, {(i % 3) * 50'000, (i % 3) * 50'000 + 4000}});
  }
  OooHarness h(tinyConfig(3, 1'000'000, 50'000), jobs);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 30u);
  EXPECT_EQ(h.policy->uncachedQueueSize(), 0u);
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(h.policy->nodeQueueSize(n), 0u);
}

TEST(OutOfOrder, HigherHitRateThanArrivalOrderWouldGive) {
  // Alternating hot (cached after first pass) and cold jobs on one node.
  // Out-of-order lets hot jobs run at cached speed immediately.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  for (JobId i = 0; i < 20; ++i) {
    const bool hot = (i % 2) == 0;
    jobs.push_back({i, t, hot ? EventRange{0, 2000}
                              : EventRange{100'000 + i * 3000ull, 103'000 + i * 3000ull}});
    t += 600.0;
  }
  OooHarness h(tinyConfig(1, 1'000'000, 10'000), jobs);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.completedJobs, 20u);
  // 9 of 10 hot passes cached: 18000 of 48000 events.
  EXPECT_GT(r.cacheHitFraction, 0.3);
}

}  // namespace
}  // namespace ppsched
