// CostModel: the paper's calibration must hold exactly (DESIGN.md §2).
#include "storage/rates.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ppsched {
namespace {

/// The paper's serial fetch-then-process model (the calibration below is
/// stated in those terms); CostModel itself now defaults to pipelined.
CostModel serialCost() {
  CostModel cost;
  cost.pipelined = false;
  return cost;
}

TEST(CostModel, DefaultsToPipelined) {
  const CostModel cost;
  EXPECT_TRUE(cost.pipelined);
  // Transfer overlapped with compute: tertiary (0.6) dominates CPU (0.2),
  // the disk read (0.06) hides behind it.
  EXPECT_DOUBLE_EQ(cost.uncachedSecPerEvent(), 0.6);
  EXPECT_DOUBLE_EQ(cost.cachedSecPerEvent(), 0.2);
}

TEST(CostModel, PaperDefaults) {
  const CostModel cost = serialCost();
  EXPECT_DOUBLE_EQ(cost.diskSecPerEvent(), 0.06);      // 600 KB / 10 MB/s
  EXPECT_DOUBLE_EQ(cost.tertiarySecPerEvent(), 0.6);   // 600 KB / 1 MB/s
  EXPECT_DOUBLE_EQ(cost.cachedSecPerEvent(), 0.26);    // disk + cpu
  EXPECT_DOUBLE_EQ(cost.uncachedSecPerEvent(), 0.8);   // tertiary + cpu
}

TEST(CostModel, CachingGainSlightlyLargerThanThree) {
  const CostModel cost = serialCost();
  EXPECT_GT(cost.cachingGain(), 3.0);   // paper: "slightly larger than 3"
  EXPECT_LT(cost.cachingGain(), 3.2);
  EXPECT_NEAR(cost.cachingGain(), 0.8 / 0.26, 1e-12);
}

TEST(CostModel, SingleNodeUncachedTimeMatchesPaper) {
  const CostModel cost = serialCost();
  // Mean 40000-event job: 32000 s ("almost 9 hours").
  EXPECT_DOUBLE_EQ(cost.singleNodeUncachedTime(40'000), 32'000.0);
}

TEST(CostModel, RemoteDefaultsToDiskThroughput) {
  const CostModel cost = serialCost();
  EXPECT_DOUBLE_EQ(cost.secPerEvent(DataSource::RemoteCache), 0.26);
}

TEST(CostModel, SourceOrdering) {
  const CostModel cost = serialCost();
  EXPECT_LT(cost.secPerEvent(DataSource::LocalCache), cost.secPerEvent(DataSource::Tertiary));
  EXPECT_LE(cost.secPerEvent(DataSource::LocalCache), cost.secPerEvent(DataSource::RemoteCache));
}

TEST(CostModel, PipelinedOverlapsTransferAndCompute) {
  CostModel cost;
  cost.pipelined = true;
  // Tertiary transfer (0.6) dominates the CPU (0.2).
  EXPECT_DOUBLE_EQ(cost.uncachedSecPerEvent(), 0.6);
  // Disk read (0.06) hides behind the CPU (0.2).
  EXPECT_DOUBLE_EQ(cost.cachedSecPerEvent(), 0.2);
  // Pipelining improves the uncached path by 25%.
  EXPECT_LT(cost.uncachedSecPerEvent(), 0.8);
}

TEST(CostModel, CustomThroughputs) {
  CostModel cost = serialCost();
  cost.tertiaryBytesPerSec = 2e6;  // a faster Castor
  EXPECT_DOUBLE_EQ(cost.uncachedSecPerEvent(), 0.5);
  cost.cpuSecPerEvent = 0.0;  // infinitely fast CPU
  EXPECT_DOUBLE_EQ(cost.cachedSecPerEvent(), 0.06);
}

TEST(CostModel, RemoteCachePathTracksRemoteThroughput) {
  CostModel cost = serialCost();
  cost.remoteBytesPerSec = 5e6;  // half the disk rate
  EXPECT_DOUBLE_EQ(cost.remoteSecPerEvent(), 0.12);
  EXPECT_DOUBLE_EQ(cost.secPerEvent(DataSource::RemoteCache), 0.32);
  // The local-disk path is unaffected.
  EXPECT_DOUBLE_EQ(cost.secPerEvent(DataSource::LocalCache), 0.26);
}

TEST(CostModel, PipelinedRemoteCachePath) {
  CostModel cost;
  cost.pipelined = true;
  // Remote transfer (0.06) hides behind the CPU (0.2).
  EXPECT_DOUBLE_EQ(cost.secPerEvent(DataSource::RemoteCache), 0.2);
  // A slow remote link dominates instead.
  cost.remoteBytesPerSec = 1e6;
  EXPECT_DOUBLE_EQ(cost.secPerEvent(DataSource::RemoteCache), 0.6);
}

TEST(CostModel, SerialAndPipelinedFormulasForEverySource) {
  CostModel cost;
  for (const DataSource src :
       {DataSource::LocalCache, DataSource::RemoteCache, DataSource::Tertiary}) {
    const double transfer = src == DataSource::LocalCache    ? cost.diskSecPerEvent()
                            : src == DataSource::RemoteCache ? cost.remoteSecPerEvent()
                                                             : cost.tertiarySecPerEvent();
    cost.pipelined = false;
    EXPECT_DOUBLE_EQ(cost.secPerEvent(src), transfer + cost.cpuSecPerEvent);
    cost.pipelined = true;
    EXPECT_DOUBLE_EQ(cost.secPerEvent(src), std::max(transfer, cost.cpuSecPerEvent));
  }
}

}  // namespace
}  // namespace ppsched
