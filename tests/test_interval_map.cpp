// IntervalCounter: boundary-map interval counters (pins, remote accesses).
#include "storage/interval_map.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace ppsched {
namespace {

TEST(IntervalCounter, StartsAllZero) {
  IntervalCounter c;
  EXPECT_TRUE(c.allZero());
  EXPECT_EQ(c.valueAt(0), 0);
  EXPECT_EQ(c.valueAt(1'000'000), 0);
}

TEST(IntervalCounter, SingleAdd) {
  IntervalCounter c;
  c.add({10, 20}, 3);
  EXPECT_EQ(c.valueAt(9), 0);
  EXPECT_EQ(c.valueAt(10), 3);
  EXPECT_EQ(c.valueAt(19), 3);
  EXPECT_EQ(c.valueAt(20), 0);
  EXPECT_FALSE(c.allZero());
}

TEST(IntervalCounter, AddZeroDeltaIsNoop) {
  IntervalCounter c;
  c.add({10, 20}, 0);
  EXPECT_TRUE(c.allZero());
}

TEST(IntervalCounter, AddEmptyRangeIsNoop) {
  IntervalCounter c;
  c.add({10, 10}, 5);
  EXPECT_TRUE(c.allZero());
}

TEST(IntervalCounter, OverlappingAddsStack) {
  IntervalCounter c;
  c.add({0, 30}, 1);
  c.add({10, 20}, 1);
  EXPECT_EQ(c.valueAt(5), 1);
  EXPECT_EQ(c.valueAt(15), 2);
  EXPECT_EQ(c.valueAt(25), 1);
}

TEST(IntervalCounter, BalancedAddRemoveReturnsToZero) {
  IntervalCounter c;
  c.add({5, 50}, 2);
  c.add({10, 20}, 1);
  c.add({10, 20}, -1);
  c.add({5, 50}, -2);
  EXPECT_TRUE(c.allZero());
  EXPECT_TRUE(c.breakpoints().empty());
}

TEST(IntervalCounter, NegativeThrows) {
  IntervalCounter c;
  c.add({0, 10}, 1);
  EXPECT_THROW(c.add({5, 15}, -1), std::logic_error);
}

TEST(IntervalCounter, MinMaxOver) {
  IntervalCounter c;
  c.add({0, 10}, 1);
  c.add({5, 15}, 2);
  // values: [0,5)=1, [5,10)=3, [10,15)=2, rest 0
  EXPECT_EQ(c.minOver({0, 15}), 1);
  EXPECT_EQ(c.maxOver({0, 15}), 3);
  EXPECT_EQ(c.minOver({0, 20}), 0);  // [15,20) is back at zero
  EXPECT_EQ(c.maxOver({12, 30}), 2);
  EXPECT_EQ(c.minOver({12, 30}), 0);
  EXPECT_EQ(c.minOver({20, 30}), 0);
}

TEST(IntervalCounter, MinMaxOverEmptyRangeThrows) {
  IntervalCounter c;
  EXPECT_THROW(c.minOver({5, 5}), std::invalid_argument);
  EXPECT_THROW(c.maxOver({5, 5}), std::invalid_argument);
}

TEST(IntervalCounter, RangesAtLeast) {
  IntervalCounter c;
  c.add({0, 30}, 1);
  c.add({10, 20}, 2);
  const IntervalSet hot = c.rangesAtLeast({0, 40}, 3);
  EXPECT_EQ(hot.intervals(), (std::vector<EventRange>{{10, 20}}));
  const IntervalSet warm = c.rangesAtLeast({0, 40}, 1);
  EXPECT_EQ(warm.intervals(), (std::vector<EventRange>{{0, 30}}));
  EXPECT_TRUE(c.rangesAtLeast({0, 40}, 4).empty());
}

TEST(IntervalCounter, RangesAtLeastClipsToQuery) {
  IntervalCounter c;
  c.add({0, 100}, 5);
  const IntervalSet got = c.rangesAtLeast({40, 60}, 5);
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{40, 60}}));
}

TEST(IntervalCounter, CoalescesEqualNeighbours) {
  IntervalCounter c;
  c.add({0, 10}, 1);
  c.add({10, 20}, 1);
  // One breakpoint up at 0, one down at 20.
  EXPECT_EQ(c.breakpoints().size(), 2u);
  EXPECT_EQ(c.minOver({0, 20}), 1);
}

// Property test against a dense reference array.
class IntervalCounterRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalCounterRandomized, MatchesDenseModel) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<std::uint64_t> pos(0, 150);
  std::uniform_int_distribution<std::uint64_t> len(1, 30);
  std::uniform_int_distribution<int> deltaPick(0, 2);

  IntervalCounter c;
  std::map<std::uint64_t, std::int64_t> dense;  // position -> count
  auto denseAt = [&](std::uint64_t i) {
    auto it = dense.find(i);
    return it == dense.end() ? 0 : it->second;
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t b = pos(gen);
    const std::uint64_t e = b + len(gen);
    std::int64_t delta = deltaPick(gen) != 0 ? +1 : -1;
    if (delta < 0) {
      // Only subtract where the model can afford it.
      std::int64_t minVal = std::numeric_limits<std::int64_t>::max();
      for (std::uint64_t i = b; i < e; ++i) minVal = std::min(minVal, denseAt(i));
      if (minVal < 1) delta = +1;
    }
    c.add({b, e}, delta);
    for (std::uint64_t i = b; i < e; ++i) dense[i] += delta;

    for (std::uint64_t probe = 0; probe <= 190; probe += 3) {
      ASSERT_EQ(c.valueAt(probe), denseAt(probe)) << "step " << step << " probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalCounterRandomized,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace ppsched
