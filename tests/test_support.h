// Shared helpers for engine and policy tests.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "workload/trace.h"

namespace ppsched::testing {

/// A scripted policy: records every callback and defers decisions to
/// std::function hooks set by the test.
class ManualPolicy : public ISchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "manual"; }
  [[nodiscard]] bool usesCaching() const override { return caching; }

  void onJobArrival(const Job& job) override {
    arrivals.push_back(job);
    if (arrivalHook) arrivalHook(job);
  }
  void onRunFinished(NodeId node, const RunReport& report) override {
    finished.emplace_back(node, report);
    if (finishHook) finishHook(node, report);
  }
  void onTimer(TimerId timer) override {
    timers.push_back(timer);
    if (timerHook) timerHook(timer);
  }
  void onNodeDown(NodeId node, const RunReport* lost) override {
    nodeDowns.emplace_back(node, lost ? std::optional<RunReport>(*lost) : std::nullopt);
    if (nodeDownHook) {
      nodeDownHook(node, lost);
    } else {
      ISchedulerPolicy::onNodeDown(node, lost);  // default re-dispatch path
    }
  }
  void onNodeUp(NodeId node) override {
    nodeUps.push_back(node);
    if (nodeUpHook) nodeUpHook(node);
  }

  /// Public access to the bound host for test hooks.
  ISchedulerHost& eng() { return host(); }

  bool caching = true;
  std::vector<Job> arrivals;
  std::vector<std::pair<NodeId, RunReport>> finished;
  std::vector<TimerId> timers;
  std::vector<std::pair<NodeId, std::optional<RunReport>>> nodeDowns;
  std::vector<NodeId> nodeUps;
  std::function<void(const Job&)> arrivalHook;
  std::function<void(NodeId, const RunReport&)> finishHook;
  std::function<void(TimerId)> timerHook;
  std::function<void(NodeId, const RunReport*)> nodeDownHook;
  std::function<void(NodeId)> nodeUpHook;
};

/// Config with a small, round-numbered data space: `totalEvents` events of
/// 600 KB, per-node cache of `cacheEvents` events, paper cost model
/// (0.26 s/event cached, 0.8 s/event uncached).
inline SimConfig tinyConfig(int numNodes, std::uint64_t totalEvents,
                            std::uint64_t cacheEvents, std::uint64_t maxSpan = 1'000'000) {
  SimConfig cfg;
  cfg.numNodes = numNodes;
  cfg.totalDataBytes = totalEvents * 600'000ULL;
  cfg.cacheBytesPerNode = cacheEvents * 600'000ULL;
  cfg.maxSpanEvents = maxSpan;
  cfg.workload.hotRegions.clear();
  cfg.workload.hotProbability = 0.0;
  cfg.cost.pipelined = false;  // the paper's serial model (golden pins)
  cfg.finalize();
  return cfg;
}

inline std::unique_ptr<JobSource> fixedSource(std::vector<Job> jobs) {
  return std::make_unique<TraceSource>(JobTrace(std::move(jobs)));
}

inline Subjob whole(const Job& job) { return wholeSubjob(job); }

/// Owns the full engine stack for a scripted test.
struct Harness {
  Harness(SimConfig cfg, std::vector<Job> jobs, bool caching = true,
          WarmupConfig warmup = {0, 0.0})
      : metrics(cfg.cost, warmup) {
    auto policyPtr = std::make_unique<ManualPolicy>();
    policyPtr->caching = caching;
    policy = policyPtr.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(policyPtr),
                                      metrics);
  }

  MetricsCollector metrics;
  ManualPolicy* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

}  // namespace ppsched::testing
