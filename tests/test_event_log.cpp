// EventLog + timeline renderer.
#include "core/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/registry.h"
#include "core/timeline.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

TEST(EventLog, RecordsJobLifecycle) {
  Harness h(tinyConfig(1, 1'000'000, 10'000), {{0, 5.0, {0, 100}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});

  ASSERT_EQ(log.count(SimEventKind::JobArrival), 1u);
  ASSERT_EQ(log.count(SimEventKind::RunStart), 1u);
  ASSERT_EQ(log.count(SimEventKind::JobComplete), 1u);
  ASSERT_EQ(log.count(SimEventKind::RunEnd), 1u);

  const auto events = log.ofJob(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, SimEventKind::JobArrival);
  EXPECT_DOUBLE_EQ(events[0].time, 5.0);
  EXPECT_EQ(events[1].kind, SimEventKind::RunStart);
  EXPECT_EQ(events[1].node, 0);
  // Completion is recorded before the run-end callback.
  EXPECT_EQ(events[2].kind, SimEventKind::JobComplete);
  EXPECT_EQ(events[3].kind, SimEventKind::RunEnd);
  EXPECT_DOUBLE_EQ(events[3].time, 5.0 + 80.0);
}

TEST(EventLog, RecordsPreemptionWithProcessedRange) {
  Harness h(tinyConfig(2, 1'000'000, 10'000), {{0, 0.0, {0, 1000}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.policy->timerHook = [&](TimerId) { (void)h.engine->preempt(0); };
  h.engine->run({.arrivedJobs = 1, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(80.0);
  h.engine->run({});

  const auto preempts = log.ofKind(SimEventKind::Preempt);
  ASSERT_EQ(preempts.size(), 1u);
  EXPECT_EQ(preempts[0].node, 0);
  EXPECT_EQ(preempts[0].range, (EventRange{0, 100}));  // 80 s at 0.8 s/event
  EXPECT_EQ(log.count(SimEventKind::TimerFired), 1u);
}

TEST(EventLog, NoSinkMeansNoOverheadOrCrash) {
  Harness h(tinyConfig(1, 1'000'000, 10'000), {{0, 0.0, {0, 100}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
}

TEST(EventLog, CsvExport) {
  EventLog log;
  log.record({1.5, SimEventKind::RunStart, 3, 2, {10, 20}});
  std::ostringstream os;
  log.writeCsv(os);
  EXPECT_EQ(os.str(), "time,kind,job,node,begin,end\n1.5,run_start,3,2,10,20\n");
}

TEST(EventLog, QueriesFilterCorrectly) {
  EventLog log;
  log.record({1.0, SimEventKind::RunStart, 1, 0, {}});
  log.record({2.0, SimEventKind::RunStart, 2, 1, {}});
  log.record({3.0, SimEventKind::RunEnd, 1, 0, {}});
  EXPECT_EQ(log.ofKind(SimEventKind::RunStart).size(), 2u);
  EXPECT_EQ(log.ofJob(1).size(), 2u);
  EXPECT_EQ(log.onNode(1).size(), 1u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Timeline, BusyIntervalsFromLog) {
  EventLog log;
  log.record({10.0, SimEventKind::RunStart, 7, 0, {}});
  log.record({30.0, SimEventKind::RunEnd, 7, 0, {}});
  log.record({20.0, SimEventKind::RunStart, 8, 1, {}});
  const auto intervals = busyIntervals(log, 2, 50.0);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (BusyInterval{0, 7, 10.0, 30.0}));
  EXPECT_EQ(intervals[1], (BusyInterval{1, 8, 20.0, 50.0}));  // closed at endTime
}

TEST(Timeline, MalformedLogsRejected) {
  EventLog log;
  log.record({1.0, SimEventKind::RunEnd, 1, 0, {}});
  EXPECT_THROW(busyIntervals(log, 1, 2.0), std::runtime_error);

  EventLog doubleStart;
  doubleStart.record({1.0, SimEventKind::RunStart, 1, 0, {}});
  doubleStart.record({2.0, SimEventKind::RunStart, 2, 0, {}});
  EXPECT_THROW(busyIntervals(doubleStart, 1, 3.0), std::runtime_error);
}

TEST(Timeline, RenderShowsJobsAndIdleTime) {
  EventLog log;
  log.record({0.0, SimEventKind::RunStart, 1, 0, {}});
  log.record({50.0, SimEventKind::RunEnd, 1, 0, {}});
  TimelineOptions opt;
  opt.begin = 0.0;
  opt.end = 100.0;
  opt.width = 10;
  opt.header = false;
  const std::string text = renderTimeline(log, 1, opt);
  EXPECT_EQ(text, "node 0   |11111.....|\n");
}

TEST(Timeline, UtilizationFromRealRun) {
  // Two equal subjobs on two nodes: both ~100% busy until completion.
  Harness h(tinyConfig(2, 1'000'000, 10'000), {{0, 0.0, {0, 2000}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) {
    Subjob a = whole(j), b = whole(j);
    a.range = {0, 1000};
    b.range = {1000, 2000};
    h.engine->startRun(0, a);
    h.engine->startRun(1, b);
  };
  h.engine->run({});
  const auto util = nodeUtilization(log, 2, 0.0, h.engine->now());
  ASSERT_EQ(util.size(), 2u);
  EXPECT_NEAR(util[0], 1.0, 1e-9);
  EXPECT_NEAR(util[1], 1.0, 1e-9);
}

TEST(Timeline, EndToEndWithPolicy) {
  // A full policy-driven run produces a parseable log and a renderable
  // timeline.
  SimConfig cfg = tinyConfig(3, 1'000'000, 50'000);
  cfg.workload.jobsPerHour = 6.0;  // tiny jobs below, so this is light load
  cfg.finalize();
  std::vector<Job> jobs;
  for (JobId i = 0; i < 10; ++i) jobs.push_back({i, i * 700.0, {i * 4000, i * 4000 + 3000}});
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, ppsched::testing::fixedSource(jobs), makePolicy("out_of_order"), metrics);
  EventLog log;
  engine.setEventSink(&log);
  engine.run({});
  EXPECT_EQ(log.count(SimEventKind::JobComplete), 10u);
  EXPECT_GE(log.count(SimEventKind::RunStart), 10u);
  const std::string text = renderTimeline(log, 3);
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("node 2"), std::string::npos);
}

}  // namespace
}  // namespace ppsched
