// SimConfig: derived quantities must reproduce the paper's numbers.
#include "core/config.h"

#include <gtest/gtest.h>

namespace ppsched {
namespace {

TEST(Config, PaperDerivedQuantities) {
  const SimConfig cfg = SimConfig::paperDefaults();
  EXPECT_EQ(cfg.numNodes, 10);
  EXPECT_EQ(cfg.totalEvents(), 3'333'333u);          // 2 TB / 600 KB
  EXPECT_EQ(cfg.cacheEvents(), 166'666u);            // 100 GB / 600 KB
  EXPECT_DOUBLE_EQ(cfg.meanSingleNodeTime(), 32'000.0);
  EXPECT_NEAR(cfg.maxTheoreticalLoadJobsPerHour(), 3.46, 0.005);
  EXPECT_NEAR(cfg.maxFarmLoadJobsPerHour(), 1.125, 0.001);
}

TEST(Config, CacheSizesOfThePaper) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.cacheBytesPerNode = 50'000'000'000ULL;
  cfg.finalize();
  EXPECT_EQ(cfg.cacheEvents(), 83'333u);
  cfg.cacheBytesPerNode = 200'000'000'000ULL;
  cfg.finalize();
  EXPECT_EQ(cfg.cacheEvents(), 333'333u);
  // 200 GB x 10 nodes covers the whole 2 TB data space.
  EXPECT_GE(cfg.cacheEvents() * 10, cfg.totalEvents() - 10);
}

TEST(Config, FinalizeSyncsWorkloadSpace) {
  SimConfig cfg;
  cfg.workload.totalEvents = 1;  // stale: finalize must overwrite
  cfg.finalize();
  EXPECT_EQ(cfg.workload.totalEvents, cfg.totalEvents());
}

TEST(Config, FinalizeLiftsWorkloadMinJobSize) {
  SimConfig cfg;
  cfg.minSubjobEvents = 50;
  cfg.workload.minJobEvents = 10;
  cfg.finalize();
  EXPECT_EQ(cfg.workload.minJobEvents, 50u);
}

TEST(Config, ValidationRejectsNonsense) {
  SimConfig cfg;
  cfg.numNodes = 0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.cost.diskBytesPerSec = 0.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.totalDataBytes = 1;  // smaller than one event
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.minSubjobEvents = 0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.maxSpanEvents = 0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(Config, FailureConfigValidation) {
  SimConfig cfg;
  cfg.failures.meanTimeBetweenFailuresSec = -1.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.failures.meanTimeBetweenFailuresSec = 1000.0;
  cfg.failures.meanTimeToRepairSec = 0.0;  // enabled model needs a repair time
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.failures.tertiaryOutages = {{-5.0, 10.0}};
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.failures.tertiaryOutages = {{5.0, 0.0}};
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(Config, FailureConfigDefaultsDisabled) {
  SimConfig cfg = SimConfig::paperDefaults();
  EXPECT_FALSE(cfg.failures.enabled());
  cfg.failures.meanTimeBetweenFailuresSec = 1.0;
  EXPECT_TRUE(cfg.failures.enabled());
}

TEST(Config, FinalizeSortsOutageWindows) {
  SimConfig cfg;
  cfg.failures.tertiaryOutages = {{100.0, 10.0}, {0.0, 20.0}, {50.0, 5.0}};
  cfg.finalize();
  EXPECT_DOUBLE_EQ(cfg.failures.tertiaryOutages[0].start, 0.0);
  EXPECT_DOUBLE_EQ(cfg.failures.tertiaryOutages[1].start, 50.0);
  EXPECT_DOUBLE_EQ(cfg.failures.tertiaryOutages[2].start, 100.0);
  EXPECT_DOUBLE_EQ(cfg.failures.tertiaryOutages[0].end(), 20.0);
}

TEST(Config, NetworkConfigDefaultsDisabled) {
  const SimConfig cfg = SimConfig::paperDefaults();
  EXPECT_FALSE(cfg.network.enabled);
  EXPECT_EQ(cfg.network, NetworkConfig{});
}

TEST(Config, NetworkConfigValidation) {
  SimConfig cfg;
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 0.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.network.enabled = true;
  cfg.network.uplinkBytesPerSec = -1.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.network.enabled = true;
  cfg.network.tertiaryIngressBytesPerSec = -1.0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.network.enabled = true;
  cfg.network.nodesPerSwitch = -2;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);

  // A disabled model is never validated (inert by construction).
  cfg = SimConfig{};
  cfg.network.nicBytesPerSec = 0.0;
  EXPECT_NO_THROW(cfg.finalize());

  // A fully-specified enabled model passes.
  cfg = SimConfig{};
  cfg.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  EXPECT_NO_THROW(cfg.finalize());
}

TEST(Config, NetworkSpecRoundTripsThroughSimConfig) {
  SimConfig cfg;
  cfg.network = parseNetworkSpec("nic=125,uplink=8,group=4");
  cfg.finalize();
  EXPECT_EQ(parseNetworkSpec(formatNetworkSpec(cfg.network)), cfg.network);
}

TEST(Config, MaxLoadScalesWithNodes) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.numNodes = 20;
  cfg.finalize();
  EXPECT_NEAR(cfg.maxTheoreticalLoadJobsPerHour(), 2 * 3.4615, 0.01);
}

}  // namespace
}  // namespace ppsched
