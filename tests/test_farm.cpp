// FarmScheduler (§3.1): FCFS, one node per job, no caching.
#include "sched/farm.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct FarmHarness {
  FarmHarness(SimConfig cfg, std::vector<Job> jobs) : metrics(cfg.cost, {0, 0.0}) {
    auto p = std::make_unique<FarmScheduler>();
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  FarmScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(Farm, RunsJobsWholeOnOneNode) {
  FarmHarness h(tinyConfig(4, 1'000'000, 100'000), {{0, 0.0, {0, 1000}}});
  h.engine->run({});
  // 1000 events x 0.8 s, never split, never cached.
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
  EXPECT_EQ(h.engine->cluster().totalCachedEvents(), 0u);
}

TEST(Farm, ConcurrentJobsUseSeparateNodes) {
  FarmHarness h(tinyConfig(4, 1'000'000, 100'000),
                {{0, 0.0, {0, 1000}}, {1, 1.0, {2000, 3000}}});
  h.engine->run({});
  const auto& r0 = h.metrics.record(0);
  const auto& r1 = h.metrics.record(1);
  EXPECT_DOUBLE_EQ(r0.waitingTime(), 0.0);
  EXPECT_DOUBLE_EQ(r1.waitingTime(), 0.0);  // second node was idle
  EXPECT_DOUBLE_EQ(r1.processingTime(), 800.0);
}

TEST(Farm, QueuesWhenAllNodesBusy) {
  FarmHarness h(tinyConfig(1, 1'000'000, 100'000),
                {{0, 0.0, {0, 1000}}, {1, 1.0, {2000, 3000}}});
  h.engine->run({});
  // Job 1 waits for job 0 to finish at t=800.
  EXPECT_DOUBLE_EQ(h.metrics.record(1).waitingTime(), 799.0);
  EXPECT_DOUBLE_EQ(h.engine->now(), 1600.0);
}

TEST(Farm, FifoOrderAmongQueuedJobs) {
  FarmHarness h(tinyConfig(1, 1'000'000, 100'000),
                {{0, 0.0, {0, 100}},
                 {1, 1.0, {200, 900}},
                 {2, 2.0, {1000, 1100}}});
  h.engine->run({});
  // Job 1 (bigger) entered the queue first and runs before job 2.
  EXPECT_LT(h.metrics.record(1).firstStart, h.metrics.record(2).firstStart);
}

TEST(Farm, SpeedupIsAboutOne) {
  // With no splitting and no caching, processing time equals the single
  // node reference, so the speedup is exactly 1.
  FarmHarness h(tinyConfig(2, 1'000'000, 100'000),
                {{0, 0.0, {0, 5000}}, {1, 10.0, {9000, 12'000}}});
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.avgSpeedup, 1.0);
}

TEST(Farm, QueueDrainsCompletely) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 20; ++i) {
    jobs.push_back({i, static_cast<double>(i), {i * 200, i * 200 + 100}});
  }
  FarmHarness h(tinyConfig(3, 1'000'000, 100'000), jobs);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 20u);
  EXPECT_EQ(h.policy->queuedJobs(), 0u);
}

}  // namespace
}  // namespace ppsched
