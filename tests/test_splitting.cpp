// SplittingScheduler (§3.2, Table 1).
#include "sched/splitting.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct SplitHarness {
  SplitHarness(SimConfig cfg, std::vector<Job> jobs) : metrics(cfg.cost, {0, 0.0}) {
    auto p = std::make_unique<SplittingScheduler>();
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  SplittingScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(Splitting, SingleJobUsesAllIdleNodes) {
  SplitHarness h(tinyConfig(4, 1'000'000, 0), {{0, 0.0, {0, 4000}}});
  h.engine->run({});
  // 4000 events over 4 nodes: 1000 x 0.8 = 800 s instead of 3200 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.avgSpeedup, 4.0);
}

TEST(Splitting, NoCaching) {
  SplitHarness h(tinyConfig(4, 1'000'000, 100'000), {{0, 0.0, {0, 4000}}});
  h.engine->run({});
  EXPECT_EQ(h.engine->cluster().totalCachedEvents(), 0u);
}

TEST(Splitting, NewJobTakesNodeFromWidestJob) {
  // Job 0 spreads over both nodes; job 1 must immediately get one node.
  SplitHarness h(tinyConfig(2, 1'000'000, 0),
                 {{0, 0.0, {0, 10'000}}, {1, 100.0, {20'000, 21'000}}});
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.metrics.record(1).waitingTime(), 0.0);
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
}

TEST(Splitting, QueuesWhenEveryNodeRunsADistinctJob) {
  SplitHarness h(tinyConfig(2, 1'000'000, 0),
                 {{0, 0.0, {0, 2000}},
                  {1, 1.0, {10'000, 12'000}},
                  {2, 2.0, {20'000, 22'000}}});
  h.engine->run({});
  EXPECT_GT(h.metrics.record(2).waitingTime(), 0.0);
  EXPECT_EQ(h.metrics.completedJobs(), 3u);
}

TEST(Splitting, WorkStealingAfterSubjobEnd) {
  // Two equal subjobs of job 0 + a small job 1 on node 1; when job 1's node
  // frees, it should steal half of job 0's remaining work and speed it up.
  SplitHarness h(tinyConfig(2, 1'000'000, 0),
                 {{0, 0.0, {0, 8000}}, {1, 1.0, {20'000, 20'100}}});
  h.engine->run({});
  // Without stealing, job 0 would end at 0.8*8000 = 6400 s (one node after
  // the takeover). With re-splitting it must finish well before that.
  EXPECT_LT(h.metrics.record(0).completion, 5000.0);
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
}

TEST(Splitting, MinimalSubjobSizeRespected) {
  // A 30-event job on 4 nodes: at min size 10, at most 3 subjobs.
  SimConfig cfg = tinyConfig(4, 1'000'000, 0);
  SplitHarness h(cfg, {{0, 0.0, {0, 30}}});
  h.engine->run({});
  // If split into 3 pieces of 10 events, each takes 8 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 8.0);
}

TEST(Splitting, ManyJobsAllComplete) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 30; ++i) {
    jobs.push_back({i, i * 50.0, {i * 3000, i * 3000 + 2000}});
  }
  SplitHarness h(tinyConfig(3, 1'000'000, 0), jobs);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 30u);
  EXPECT_EQ(h.policy->queuedJobs(), 0u);
  // Every job record is consistent.
  for (JobId i = 0; i < 30; ++i) {
    const auto& rec = h.metrics.record(i);
    EXPECT_GE(rec.firstStart, rec.arrival);
    EXPECT_GT(rec.completion, rec.firstStart);
  }
}

TEST(Splitting, AlwaysBeatsOrMatchesFarmReference) {
  // The paper: "the job splitting policy performs always better than the
  // simple processing farm". Check mean speedup over a mixed stream.
  std::vector<Job> jobs;
  for (JobId i = 0; i < 15; ++i) {
    jobs.push_back({i, i * 2000.0, {i * 5000, i * 5000 + 3000 + (i % 4) * 800}});
  }
  SplitHarness h(tinyConfig(3, 1'000'000, 0), jobs);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_GE(r.avgSpeedup, 1.0);
}

}  // namespace
}  // namespace ppsched
