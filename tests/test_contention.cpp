// Tertiary-bandwidth contention (SimConfig::tertiaryAggregateBytesPerSec)
// and the Engine::at failure-injection hook.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

TEST(Contention, SingleStreamUnaffectedByCap) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.tertiaryAggregateBytesPerSec = 1e6;  // enough for exactly one stream
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);  // same as uncontended
}

TEST(Contention, ConcurrentStreamsShareAggregate) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.tertiaryAggregateBytesPerSec = 1e6;  // two streams -> 0.5 MB/s each
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {5000, 6000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  // First run starts alone (1 MB/s); second joins and sees 0.5 MB/s:
  // 0.2 + 0.6/0.5... = 0.2 + 1.2 = 1.4 s/event -> 1400 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 1400.0);
}

TEST(Contention, ZeroCapMeansUncontended) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000);
  cfg.tertiaryAggregateBytesPerSec = 0.0;
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {5000, 6000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
}

TEST(Contention, StreamCountDropsWhenSpansEnd) {
  // After the short job 0 finishes, job 1's NEXT span sees less contention.
  SimConfig cfg = tinyConfig(2, 1'000'000, 10'000, /*maxSpan=*/100);
  cfg.tertiaryAggregateBytesPerSec = 1e6;
  Harness h(cfg, {{0, 0.0, {0, 100}}, {1, 0.0, {5000, 5200}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  // Job 0: one span, alone at start: 100 x 0.8 = 80 s.
  // Job 1: first 100-event span contended (1.4 s/event = 140 s), second
  // span starts at t=140 with job 0 long gone: 100 x 0.8 = 80 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 220.0);
}

TEST(Contention, ReducesSustainableLoadEndToEnd) {
  ExperimentSpec free;
  free.policyName = "out_of_order";
  free.jobsPerHour = 1.2;
  free.warmupJobs = 50;
  free.measuredJobs = 200;
  ExperimentSpec capped = free;
  capped.sim.tertiaryAggregateBytesPerSec = 3e6;  // 3 MB/s for 10 nodes
  capped.sim.finalize();
  const RunResult rFree = runExperiment(free);
  const RunResult rCapped = runExperiment(capped);
  EXPECT_LT(rCapped.avgSpeedup, rFree.avgSpeedup);
}

TEST(Inject, ActionRunsAtRequestedTime) {
  Harness h(tinyConfig(1, 1'000'000, 10'000), {});
  SimTime fired = -1.0;
  h.engine->at(123.0, [&] { fired = h.engine->now(); });
  h.engine->run({});
  EXPECT_DOUBLE_EQ(fired, 123.0);
}

TEST(Inject, PastActionThrows) {
  Harness h(tinyConfig(1, 1'000'000, 10'000), {{0, 100.0, {0, 10}}});
  h.policy->arrivalHook = [&](const Job& j) {
    EXPECT_THROW(h.engine->at(50.0, [] {}), std::invalid_argument);
    h.engine->startRun(0, whole(j));
  };
  h.engine->run({});
}

TEST(Inject, CacheFlushMidRunForcesRefetch) {
  // A run over its own cached data loses the cache mid-way: the engine must
  // re-fetch the rest from tertiary storage, not crash.
  SimConfig cfg = tinyConfig(1, 1'000'000, 10'000, /*maxSpan=*/100);
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  // At t=130 (500 cached events done), the node's disk dies.
  h.engine->at(130.0, [&] { h.engine->cluster().node(0).cache().evict({0, 1000}); });
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
  // 500 events at 0.26 (cached) + 500 at 0.8 (refetched) = 130 + 400.
  EXPECT_DOUBLE_EQ(h.engine->now(), 530.0);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_NEAR(r.cacheHitFraction, 0.5, 0.01);
}

TEST(Inject, WholeClusterCacheWipeUnderPolicy) {
  // End-to-end: wipe every cache mid-simulation under the out-of-order
  // policy; everything still completes and metrics stay sane.
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.0;
  cfg.finalize();
  MetricsCollector metrics(cfg.cost, {20, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 5),
                makePolicy("out_of_order"), metrics);
  engine.at(50 * units::hour, [&engine, &cfg] {
    for (NodeId n = 0; n < engine.numNodes(); ++n) {
      engine.cluster().node(n).cache().evict({0, cfg.totalEvents()});
    }
  });
  engine.run({.completedJobs = 150});
  EXPECT_EQ(metrics.completedJobs(), 150u);
  const RunResult r = metrics.finalize(engine.now());
  EXPECT_GT(r.avgSpeedup, 1.0);
}

TEST(Replicated, AggregatesAcrossSeeds) {
  ExperimentSpec spec;
  spec.policyName = "farm";
  spec.jobsPerHour = 0.8;
  spec.warmupJobs = 30;
  spec.measuredJobs = 100;
  const ReplicatedResult r = runReplicated(spec, 4);
  ASSERT_EQ(r.runs.size(), 4u);
  EXPECT_NEAR(r.meanSpeedup, 1.0, 0.01);  // farm speedup is deterministic ~1
  EXPECT_GT(r.meanWaitHours, 0.0);
  EXPECT_GE(r.waitHoursStdErr, 0.0);
  EXPECT_FALSE(r.overloaded);
  // Replicas differ (different seeds).
  EXPECT_NE(r.runs[0].avgWait, r.runs[1].avgWait);
}

TEST(Replicated, ParallelMatchesSequential) {
  ExperimentSpec spec;
  spec.policyName = "out_of_order";
  spec.jobsPerHour = 1.0;
  spec.warmupJobs = 20;
  spec.measuredJobs = 60;
  const ReplicatedResult seq = runReplicated(spec, 3);
  ThreadPool pool(2);
  const ReplicatedResult par = runReplicated(spec, 3, &pool);
  EXPECT_DOUBLE_EQ(seq.meanSpeedup, par.meanSpeedup);
  EXPECT_DOUBLE_EQ(seq.meanWaitHours, par.meanWaitHours);
}

TEST(Replicated, ZeroReplicasRejected) {
  EXPECT_THROW(runReplicated(ExperimentSpec{}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ppsched
