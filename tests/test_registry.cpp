// Policy registry.
#include "core/registry.h"

#include <gtest/gtest.h>

#include "sched/delayed.h"

namespace ppsched {
namespace {

TEST(Registry, CreatesEveryRegisteredPolicy) {
  for (const std::string& name : policyNames()) {
    const auto policy = makePolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(makePolicy("fifo_magic"), std::invalid_argument);
  EXPECT_THROW(makePolicy(""), std::invalid_argument);
}

TEST(Registry, UnknownNameErrorEnumeratesKnownPolicies) {
  try {
    makePolicy("fifo_magic");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fifo_magic"), std::string::npos);
    for (const std::string& name : policyNames()) {
      EXPECT_NE(what.find(name), std::string::npos) << name << " missing from: " << what;
    }
  }
}

TEST(Registry, NamesInPaperOrder) {
  const auto names = policyNames();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "farm");
  // This repo's §7 future-work policies close the list.
  EXPECT_EQ(names[7], "mixed");
  EXPECT_EQ(names[8], "prefetch_delayed");
  EXPECT_EQ(names.back(), "eevdf");
}

TEST(Registry, CachelessPoliciesDeclareIt) {
  EXPECT_FALSE(makePolicy("farm")->usesCaching());
  EXPECT_FALSE(makePolicy("splitting")->usesCaching());
  EXPECT_TRUE(makePolicy("cache_oriented")->usesCaching());
  EXPECT_TRUE(makePolicy("out_of_order")->usesCaching());
  EXPECT_TRUE(makePolicy("delayed")->usesCaching());
}

TEST(Registry, DelayedParamsArePassedThrough) {
  PolicyParams params;
  params.periodDelay = 123.0;
  params.stripeEvents = 777;
  const auto policy = makePolicy("delayed", params);
  const auto* delayed = dynamic_cast<const DelayedScheduler*>(policy.get());
  ASSERT_NE(delayed, nullptr);
}

TEST(Registry, AdaptiveVariants) {
  PolicyParams params;
  EXPECT_EQ(makePolicy("adaptive", params)->name(), "adaptive");
  params.adaptiveFeedback = true;
  EXPECT_EQ(makePolicy("adaptive", params)->name(), "adaptive");
  params.adaptiveFeedback = false;
  params.adaptiveTable = {{1.0, 0.0}, {2.0, 50.0}};
  EXPECT_EQ(makePolicy("adaptive", params)->name(), "adaptive");
  // A malformed custom table is rejected at construction.
  params.adaptiveTable = {{2.0, 0.0}, {1.0, 50.0}};
  EXPECT_THROW(makePolicy("adaptive", params), std::invalid_argument);
}

}  // namespace
}  // namespace ppsched
