// Fault injection and recovery: scripted and stochastic node failures,
// lost-run accounting, the default policy re-dispatch path, tertiary
// outage windows, and down-node bookkeeping.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/registry.h"
#include "core/timeline.h"
#include "test_support.h"
#include "workload/generator.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

TEST(Failures, CrashKillsRunAndDefaultPathRedispatches) {
  // Node 0 crashes 80 s into an 800 s run; the default onNodeDown parks the
  // remainder and the host restarts it on idle node 1 immediately.
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->at(80.0, [&] { h.engine->failNode(0); });
  h.engine->run({});

  ASSERT_EQ(h.policy->nodeDowns.size(), 1u);
  EXPECT_EQ(h.policy->nodeDowns[0].first, 0);
  ASSERT_TRUE(h.policy->nodeDowns[0].second.has_value());
  const RunReport& lost = *h.policy->nodeDowns[0].second;
  EXPECT_EQ(lost.reason, RunEndReason::Lost);
  // One giant span: the crash discards all in-flight progress.
  EXPECT_EQ(lost.remainder.range, (EventRange{0, 1000}));

  EXPECT_TRUE(h.engine->jobDone(0));
  // Restarted from scratch on node 1 at t=80: 80 + 1000 * 0.8.
  EXPECT_DOUBLE_EQ(h.engine->now(), 80.0 + 800.0);

  EXPECT_EQ(log.count(SimEventKind::NodeDown), 1u);
  const auto lostEvents = log.ofKind(SimEventKind::RunLost);
  ASSERT_EQ(lostEvents.size(), 1u);
  EXPECT_EQ(lostEvents[0].range, (EventRange{0, 1000}));

  const RunResult result = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(result.nodeFailures, 1u);
  EXPECT_EQ(result.lostRuns, 1u);
  EXPECT_EQ(h.metrics.record(0).lostRuns, 1);
}

TEST(Failures, CrashDiscardsOnlyTheInFlightSpan) {
  // 100-event spans: at t=200 two spans (200 events) are committed and the
  // third is 50 events in; the crash rolls back to the span boundary.
  SimConfig cfg = tinyConfig(2, 100'000, 10'000, /*maxSpan=*/100);
  cfg.failures.loseCacheOnFailure = false;  // keep the cache to inspect it
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  Subjob remainder;
  h.policy->nodeDownHook = [&](NodeId, const RunReport* lost) {
    ASSERT_NE(lost, nullptr);
    remainder = lost->remainder;  // swallow: no re-dispatch
  };
  h.engine->at(200.0, [&] { h.engine->failNode(0); });
  h.engine->run({});

  EXPECT_EQ(remainder.range, (EventRange{200, 1000}));
  EXPECT_EQ(h.engine->remainingOf(0).size(), 800u);
  // Committed spans stay cached when loseCacheOnFailure is off.
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({0, 200}));
  EXPECT_FALSE(h.engine->jobDone(0));
  // 50 in-flight events (40 s at 0.8 s/event) were discarded.
  const RunResult result = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(result.lostEvents, 50u);
}

TEST(Failures, CrashWipesTheCacheByDefault) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 100}}});
  h.engine->cluster().node(0).cache().insert({5000, 6000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(1, whole(j)); };
  h.engine->at(10.0, [&] { h.engine->failNode(0); });
  h.engine->run({});
  EXPECT_EQ(h.engine->cluster().node(0).cache().used(), 0u);
  // The idle crashed node still reports onNodeDown, with no lost run.
  ASSERT_EQ(h.policy->nodeDowns.size(), 1u);
  EXPECT_FALSE(h.policy->nodeDowns[0].second.has_value());
}

TEST(Failures, DownNodeIsNeitherUpNorIdleAndRejectsRuns) {
  Harness h(tinyConfig(3, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->failNode(1);
    EXPECT_FALSE(h.engine->isUp(1));
    EXPECT_FALSE(h.engine->isIdle(1));
    EXPECT_EQ(h.engine->idleNodes(), (std::vector<NodeId>{0, 2}));
    EXPECT_THROW(h.engine->startRun(1, whole(j)), std::logic_error);
    // Repair makes it schedulable again.
    h.engine->repairNode(1);
    EXPECT_TRUE(h.engine->isUp(1));
    EXPECT_TRUE(h.engine->isIdle(1));
    h.engine->startRun(1, whole(j));
  };
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
  EXPECT_EQ(h.policy->nodeUps, (std::vector<NodeId>{1}));
  // failNode / repairNode are idempotent no-ops in the target state.
  h.engine->repairNode(1);
  EXPECT_EQ(h.policy->nodeUps.size(), 1u);
}

TEST(Failures, MulticoreCrashTakesAllSlotsOfTheMachine) {
  SimConfig cfg = tinyConfig(4, 100'000, 10'000);
  cfg.cpusPerNode = 2;  // nodes {0,1} and {2,3} are two machines
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {2000, 3000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(j.id == 0 ? 0 : 1, whole(j));
  };
  h.engine->at(80.0, [&] { h.engine->failNode(1); });  // slot 1 -> machine 0
  h.engine->run({});
  // Both slots went down, both runs were lost, both jobs still complete
  // (re-dispatched onto machine 1's slots).
  ASSERT_EQ(h.policy->nodeDowns.size(), 2u);
  EXPECT_FALSE(h.engine->isUp(0));
  EXPECT_FALSE(h.engine->isUp(1));
  EXPECT_TRUE(h.engine->jobDone(0));
  EXPECT_TRUE(h.engine->jobDone(1));
  const RunResult result = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(result.nodeFailures, 1u);  // one machine failure, two lost runs
  EXPECT_EQ(result.lostRuns, 2u);
}

TEST(Failures, RedispatchWaitsForARepairWhenClusterIsDown) {
  // Single node: the crash leaves nowhere to restart. The remainder stays
  // parked until the scripted repair, then completes.
  Harness h(tinyConfig(1, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->at(80.0, [&] { h.engine->failNode(0); });
  h.engine->at(500.0, [&] { h.engine->repairNode(0); });
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
  // Restarted from scratch at the repair: 500 + 800.
  EXPECT_DOUBLE_EQ(h.engine->now(), 500.0 + 800.0);
}

TEST(Failures, TertiaryOutageWindowStallsUncachedSpans) {
  SimConfig cfg = tinyConfig(1, 100'000, 10'000);
  cfg.failures.tertiaryOutages = {{0.0, 100.0}};
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // The span starts inside the outage: wait it out, then 1000 x 0.8 s.
  EXPECT_DOUBLE_EQ(h.engine->now(), 100.0 + 800.0);
}

TEST(Failures, ChainedOutageWindowsStack) {
  SimConfig cfg = tinyConfig(1, 100'000, 10'000);
  // Second window opens before the first ends: the stall walks the chain.
  cfg.failures.tertiaryOutages = {{50.0, 100.0}, {0.0, 100.0}};  // finalize sorts
  cfg.finalize();
  ASSERT_EQ(cfg.failures.tertiaryOutages[0].start, 0.0);
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 150.0 + 800.0);
}

TEST(Failures, OutageDoesNotAffectCachedSpans) {
  SimConfig cfg = tinyConfig(1, 100'000, 10'000);
  cfg.failures.tertiaryOutages = {{0.0, 100.0}};
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 1000 * 0.26);
}

TEST(Failures, DisabledFailureModelLeavesTheClockAlone) {
  // An enormous MTBF schedules a first failure far beyond the workload; the
  // chain must be cancelled once work drains, not waited out.
  SimConfig cfg = tinyConfig(1, 100'000, 10'000);
  cfg.failures.meanTimeBetweenFailuresSec = 1e12;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
}

TEST(Failures, StochasticFailuresAreDeterministicPerSeed) {
  auto runOnce = [](std::uint64_t seed) {
    SimConfig cfg = SimConfig::paperDefaults();
    cfg.workload.jobsPerHour = 1.0;
    cfg.failures.meanTimeBetweenFailuresSec = 1 * units::day;
    cfg.failures.meanTimeToRepairSec = 2 * units::hour;
    cfg.failures.seed = seed;
    cfg.finalize();
    MetricsCollector metrics(cfg.cost, {0, 0.0});
    Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 7),
                  makePolicy("out_of_order"), metrics);
    engine.run({.completedJobs = 40, .maxJobsInSystem = 2000});
    RunResult r = metrics.finalize(engine.now());
    return std::make_tuple(engine.now(), r.nodeFailures, r.lostRuns, r.avgWait);
  };
  const auto a = runOnce(42);
  const auto b = runOnce(42);
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<1>(a), 0u);  // failures actually happened
}

TEST(Failures, EveryPolicyCompletesUnderScriptedFailures) {
  // A deterministic mini-sweep: two crashes with one repair, all policies
  // must finish the whole trace through the default recovery path alone.
  for (const std::string& name : policyNames()) {
    SimConfig cfg = tinyConfig(4, 200'000, 20'000);
    std::vector<Job> jobs;
    for (JobId id = 0; id < 6; ++id) {
      const auto base = static_cast<std::uint64_t>(id) * 20'000;
      jobs.push_back({id, id * 600.0, {base, base + 5'000}});
    }
    MetricsCollector metrics(cfg.cost, {0, 0.0});
    Engine engine(cfg, testing::fixedSource(jobs), makePolicy(name), metrics);
    engine.at(1'000.0, [&] { engine.failNode(0); });
    engine.at(2'000.0, [&] { engine.failNode(2); });
    engine.at(5'000.0, [&] { engine.repairNode(0); });
    engine.run({});
    EXPECT_EQ(metrics.completedJobs(), 6u) << name;
    for (JobId id = 0; id < 6; ++id) {
      EXPECT_TRUE(engine.jobDone(id)) << name;
    }
  }
}

TEST(Failures, TimelineTracksDownWindows) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->at(80.0, [&] { h.engine->failNode(0); });
  h.engine->at(400.0, [&] { h.engine->repairNode(0); });
  h.engine->run({});

  const auto down = downIntervals(log, 2, h.engine->now());
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].node, 0);
  EXPECT_DOUBLE_EQ(down[0].begin, 80.0);
  EXPECT_DOUBLE_EQ(down[0].end, 400.0);
  // busyIntervals must close the killed run at the crash.
  for (const BusyInterval& b : busyIntervals(log, 2, h.engine->now())) {
    if (b.node == 0) {
      EXPECT_LE(b.end, 80.0);
    }
  }
  // The rendered timeline marks the outage.
  const std::string art = renderTimeline(log, 2, {.end = h.engine->now(), .width = 40});
  EXPECT_NE(art.find('x'), std::string::npos);
}

TEST(Failures, UnrepairedDownWindowClosesAtEndTime) {
  Harness h(tinyConfig(2, 100'000, 10'000), {{0, 0.0, {0, 1000}}});
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->at(80.0, [&] { h.engine->failNode(0); });
  h.engine->run({});
  const auto down = downIntervals(log, 2, h.engine->now());
  ASSERT_EQ(down.size(), 1u);
  EXPECT_DOUBLE_EQ(down[0].end, h.engine->now());
}

}  // namespace
}  // namespace ppsched
