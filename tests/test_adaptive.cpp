// Adaptive delay (§6): table and feedback controllers.
#include "sched/adaptive.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

TEST(AdaptiveTable, Validation) {
  EXPECT_THROW(TableAdaptiveDelay({}), std::invalid_argument);
  // Loads must ascend.
  EXPECT_THROW(TableAdaptiveDelay({{2.0, 0.0}, {1.0, 10.0}}), std::invalid_argument);
  // Delays must not decrease.
  EXPECT_THROW(TableAdaptiveDelay({{1.0, 10.0}, {2.0, 5.0}}), std::invalid_argument);
}

TEST(AdaptiveTable, PicksMinimalSufficientDelay) {
  SimConfig cfg = tinyConfig(1, 1000, 100);
  MetricsCollector m(cfg.cost, {0, 0.0});
  Engine e(cfg, fixedSource({}), std::make_unique<ppsched::testing::ManualPolicy>(), m);

  TableAdaptiveDelay table({{1.0, 0.0}, {2.0, 100.0}, {3.0, 200.0}});
  EXPECT_DOUBLE_EQ(table.nextPeriod(e, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(table.nextPeriod(e, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(table.nextPeriod(e, 1.5), 100.0);
  EXPECT_DOUBLE_EQ(table.nextPeriod(e, 2.5), 200.0);
  EXPECT_DOUBLE_EQ(table.nextPeriod(e, 99.0), 200.0);  // beyond table: max
}

TEST(AdaptiveTable, DefaultTableIsWellFormed) {
  const auto levels = TableAdaptiveDelay::defaultTable();
  ASSERT_GE(levels.size(), 3u);
  EXPECT_DOUBLE_EQ(levels.front().delay, 0.0);  // zero delay at low load
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i].maxLoadJobsPerHour, levels[i - 1].maxLoadJobsPerHour);
    EXPECT_GE(levels[i].delay, levels[i - 1].delay);
  }
  EXPECT_NO_THROW(TableAdaptiveDelay{levels});
}

TEST(AdaptiveFeedback, Validation) {
  FeedbackAdaptiveDelay::Params p;
  p.ladder.clear();
  EXPECT_THROW(FeedbackAdaptiveDelay{p}, std::invalid_argument);
  p = FeedbackAdaptiveDelay::Params{};
  p.ladder = {100.0, 50.0};
  EXPECT_THROW(FeedbackAdaptiveDelay{p}, std::invalid_argument);
  p = FeedbackAdaptiveDelay::Params{};
  p.lowWater = p.highWater;
  EXPECT_THROW(FeedbackAdaptiveDelay{p}, std::invalid_argument);
}

TEST(AdaptiveFeedback, EscalatesAndRecovers) {
  SimConfig cfg = tinyConfig(1, 100'000, 100);
  MetricsCollector m(cfg.cost, {0, 0.0});
  // Jobs that arrive but are never completed push the in-system count up.
  std::vector<Job> jobs;
  for (JobId i = 0; i < 50; ++i) jobs.push_back({i, 1.0 + i, {0, 100}});
  auto manual = std::make_unique<ppsched::testing::ManualPolicy>();
  Engine e(cfg, fixedSource(jobs), std::move(manual), m);
  e.run({.simTimeLimit = 100.0});  // 50 jobs in system, none started

  FeedbackAdaptiveDelay::Params p;
  p.ladder = {0.0, 60.0, 120.0};
  p.highWater = 30;
  p.lowWater = 5;
  FeedbackAdaptiveDelay fb(p);
  EXPECT_DOUBLE_EQ(fb.nextPeriod(e, 0.0), 60.0);   // 50 > 30: escalate
  EXPECT_DOUBLE_EQ(fb.nextPeriod(e, 0.0), 120.0);  // still high: escalate
  EXPECT_DOUBLE_EQ(fb.nextPeriod(e, 0.0), 120.0);  // clamped at top
  EXPECT_EQ(fb.currentLevel(), 2u);
}

TEST(AdaptiveScheduler, ZeroDelayAtLowLoadBehavesImmediately) {
  SimConfig cfg = tinyConfig(2, 1'000'000, 100'000);
  MetricsCollector m(cfg.cost, {0, 0.0});
  DelayedParams params;
  params.stripeEvents = 5000;
  auto policy = makeAdaptiveScheduler(params);
  EXPECT_EQ(policy->name(), "adaptive");
  Engine e(cfg, fixedSource({{0, 10.0, {0, 1000}}}), std::move(policy), m);
  e.run({});
  // Observed load ~0 -> delay 0 -> immediate start.
  EXPECT_NEAR(m.record(0).firstStart, 10.0, 1e-6);
}

TEST(AdaptiveScheduler, CompletesMixedStream) {
  SimConfig cfg = tinyConfig(3, 1'000'000, 50'000);
  MetricsCollector m(cfg.cost, {0, 0.0});
  std::vector<Job> jobs;
  for (JobId i = 0; i < 30; ++i) {
    jobs.push_back({i, i * 400.0, {(i % 5) * 20'000, (i % 5) * 20'000 + 3000}});
  }
  DelayedParams params;
  params.stripeEvents = 1000;
  Engine e(cfg, fixedSource(jobs), makeAdaptiveScheduler(params), m);
  e.run({});
  EXPECT_EQ(m.completedJobs(), 30u);
}

}  // namespace
}  // namespace ppsched
