// Statistics collectors.
#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppsched {
namespace {

TEST(StreamingStats, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, SumIsExactNotReconstructed) {
  // Regression: sum() used to be mean() * count, which accumulates Welford
  // rounding drift; 0.1 is inexact in binary, so a long stream exposes it.
  StreamingStats s;
  double direct = 0.0;
  for (int i = 0; i < 1'000'000; ++i) {
    s.add(0.1);
    direct += 0.1;
  }
  // Bit-identical: add() performs the same accumulation in the same order.
  EXPECT_EQ(s.sum(), direct);
}

TEST(StreamingStats, SumMatchesDirectAccumulationOnVaryingStream) {
  StreamingStats s;
  double direct = 0.0;
  double x = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    x = std::fmod(x + 0.7071067811865475, 3.0) - 1.0;  // varied magnitudes/signs
    s.add(x);
    direct += x;
  }
  EXPECT_EQ(s.sum(), direct);
  // The old reconstruction drifts from the exact sum on this stream; the
  // exact sum must still be consistent with the mean to float accuracy.
  EXPECT_NEAR(s.mean(), s.sum() / static_cast<double>(s.count()), 1e-9);
}

TEST(StreamingStats, SingleSampleHasZeroVariance) {
  StreamingStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, MeanAndQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 1.0);
}

TEST(SampleSet, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(LogHistogram, BucketsAndClamping) {
  LogHistogram h(1.0, 1000.0, 3);  // buckets: [1,10), [10,100), [100,1000)
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  h.add(0.1);     // clamps into first bucket
  h.add(5000.0);  // clamps into last bucket
  EXPECT_EQ(h.countInBucket(0), 2u);
  EXPECT_EQ(h.countInBucket(1), 1u);
  EXPECT_EQ(h.countInBucket(2), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_NEAR(h.bucketLow(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bucketHigh(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bucketLow(2), 100.0, 1e-9);
  EXPECT_NEAR(h.bucketHigh(2), 1000.0, 1e-9);
}

TEST(LogHistogram, RejectsBadRanges) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
  TimeWeightedStat s(0.0);
  s.set(0.0, 2.0);   // value 2 over [0, 10)
  s.set(10.0, 6.0);  // value 6 over [10, 20)
  EXPECT_DOUBLE_EQ(s.average(20.0), 4.0);
  EXPECT_DOUBLE_EQ(s.current(), 6.0);
}

TEST(TimeWeightedStat, AverageExtendsCurrentValue) {
  TimeWeightedStat s(0.0);
  s.set(0.0, 4.0);
  EXPECT_DOUBLE_EQ(s.average(8.0), 4.0);
}

TEST(TimeWeightedStat, RejectsTimeTravel) {
  TimeWeightedStat s(5.0);
  s.set(6.0, 1.0);
  EXPECT_THROW(s.set(4.0, 2.0), std::invalid_argument);
}

TEST(TimeWeightedStat, ZeroElapsedReturnsCurrent) {
  TimeWeightedStat s(0.0);
  s.set(0.0, 3.0);
  EXPECT_DOUBLE_EQ(s.average(0.0), 3.0);
}

TEST(LinearTrend, ExactLine) {
  LinearTrend t;
  for (int i = 0; i < 10; ++i) t.add(i, 3.0 * i + 2.0);
  EXPECT_NEAR(t.slope(), 3.0, 1e-12);
}

TEST(LinearTrend, FlatLine) {
  LinearTrend t;
  for (int i = 0; i < 10; ++i) t.add(i, 7.0);
  EXPECT_NEAR(t.slope(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.meanY(), 7.0);
}

TEST(LinearTrend, DegenerateCases) {
  LinearTrend t;
  EXPECT_DOUBLE_EQ(t.slope(), 0.0);
  t.add(1.0, 5.0);
  EXPECT_DOUBLE_EQ(t.slope(), 0.0);  // one point
  t.add(1.0, 9.0);
  EXPECT_DOUBLE_EQ(t.slope(), 0.0);  // vertical (same x)
}

}  // namespace
}  // namespace ppsched
