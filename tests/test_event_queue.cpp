// EventQueue: ordering, tie-breaking, cancellation.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ppsched {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.nextTime(), std::logic_error);
  EXPECT_THROW(q.runNext(), std::logic_error);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(5.5, [] {});
  EXPECT_DOUBLE_EQ(q.nextTime(), 5.5);
  EXPECT_DOUBLE_EQ(q.runNext(), 5.5);
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  q.schedule(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFiringIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.runNext();
  q.cancel(id);  // must not disturb later events
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancellingAllMakesQueueEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.schedule(i, [] {}));
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.nextTime(), std::logic_error);
}

TEST(EventQueue, EventsScheduledDuringCallbackFire) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1);
    q.schedule(2.0, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  // Queue is reusable after clear.
  q.schedule(3.0, [] {});
  EXPECT_DOUBLE_EQ(q.runNext(), 3.0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  SimTime last = -1.0;
  for (int i = 0; i < 2000; ++i) {
    q.schedule(static_cast<SimTime>((i * 7919) % 1000), [] {});
  }
  while (!q.empty()) {
    const SimTime t = q.runNext();
    ASSERT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace ppsched
