// EventQueue: ordering, tie-breaking, cancellation.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <random>
#include <vector>

namespace ppsched {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.nextTime(), std::logic_error);
  EXPECT_THROW(q.runNext(), std::logic_error);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(5.5, [] {});
  EXPECT_DOUBLE_EQ(q.nextTime(), 5.5);
  EXPECT_DOUBLE_EQ(q.runNext(), 5.5);
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  q.schedule(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFiringIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.runNext();
  q.cancel(id);  // must not disturb later events
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancellingAllMakesQueueEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.schedule(i, [] {}));
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.nextTime(), std::logic_error);
}

TEST(EventQueue, EventsScheduledDuringCallbackFire) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1);
    q.schedule(2.0, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  // Queue is reusable after clear.
  q.schedule(3.0, [] {});
  EXPECT_DOUBLE_EQ(q.runNext(), 3.0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  SimTime last = -1.0;
  for (int i = 0; i < 2000; ++i) {
    q.schedule(static_cast<SimTime>((i * 7919) % 1000), [] {});
  }
  while (!q.empty()) {
    const SimTime t = q.runNext();
    ASSERT_GE(t, last);
    last = t;
  }
}

// ---------------------------------------------------------------------------
// Monotonicity precondition (regression: a rollback path scheduling in the
// past used to silently corrupt the heap order).

TEST(EventQueue, SchedulingBeforeLastPoppedThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.runNext();
  EXPECT_THROW(q.schedule(4.9, [] {}), std::logic_error);
  // Scheduling exactly at the last popped time stays allowed.
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));
}

TEST(EventQueue, SchedulingBehindNowDuringCallbackThrows) {
  EventQueue q;
  bool pastThrew = false;
  bool atNowOk = false;
  q.schedule(10.0, [&] {
    // `now` is 10.0 while this callback runs: at-now is legal, behind-now
    // must throw instead of corrupting the heap.
    q.schedule(10.0, [&] { atNowOk = true; });
    try {
      q.schedule(9.0, [] {});
    } catch (const std::logic_error&) {
      pastThrew = true;
    }
  });
  while (!q.empty()) q.runNext();
  EXPECT_TRUE(pastThrew);
  EXPECT_TRUE(atNowOk);
}

TEST(EventQueue, NanScheduleTimeThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}), std::logic_error);
}

TEST(EventQueue, ClearResetsThePastWatermark) {
  EventQueue q;
  q.schedule(100.0, [] {});
  q.runNext();
  q.clear();
  EXPECT_NO_THROW(q.schedule(1.0, [] {}));
  EXPECT_DOUBLE_EQ(q.runNext(), 1.0);
}

// ---------------------------------------------------------------------------
// Tombstone compaction.

TEST(EventQueue, CompactionPreservesOrderUnderMassCancellation) {
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<int> fired;
  // 1024 events; cancel all but every 16th, which pushes the dead fraction
  // far past the compaction threshold.
  for (int i = 0; i < 1024; ++i) {
    const int time = (i * 7919) % 512;
    ids.push_back(q.schedule(static_cast<SimTime>(time), [&fired, i] { fired.push_back(i); }));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 16 != 0) q.cancel(ids[i]);
  }
  EXPECT_EQ(q.size(), 64u);
  SimTime last = -1.0;
  while (!q.empty()) {
    const SimTime t = q.runNext();
    ASSERT_GE(t, last);
    last = t;
  }
  // Exactly the survivors fired, in deterministic (time, seq) order.
  ASSERT_EQ(fired.size(), 64u);
  std::vector<int> expected;
  for (int i = 0; i < 1024; i += 16) expected.push_back(i);
  std::stable_sort(expected.begin(), expected.end(), [](int a, int b) {
    return (a * 7919) % 512 < (b * 7919) % 512;
  });
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, CompactionReclaimsDeadEntries) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i) ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  for (std::size_t i = 1; i < ids.size(); ++i) q.cancel(ids[i]);
  EXPECT_EQ(q.deadEntries(), 511u);
  // The next pop prunes: bulk compaction leaves only the live entry.
  EXPECT_DOUBLE_EQ(q.nextTime(), 0.0);
  EXPECT_EQ(q.deadEntries(), 0u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// Callback storage.

TEST(EventQueue, LargeCapturesFallBackToHeapCorrectly) {
  EventQueue q;
  std::array<double, 32> payload{};  // 256 bytes: larger than the inline buffer
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<double>(i);
  double sum = 0.0;
  q.schedule(1.0, [payload, &sum] {
    for (double v : payload) sum += v;
  });
  q.runNext();
  EXPECT_DOUBLE_EQ(sum, 496.0);
}

TEST(EventQueue, MoveOnlyCapturesAreSupported) {
  EventQueue q;
  auto big = std::make_unique<int>(41);
  int got = 0;
  q.schedule(1.0, [p = std::move(big), &got] { got = *p + 1; });
  q.runNext();
  EXPECT_EQ(got, 42);
}

TEST(EventQueue, CancelledCallbackDestructorsRun) {
  // The pool must destroy cancelled callbacks (at pop or compaction), not
  // leak them: track with shared_ptr use counts.
  auto token = std::make_shared<int>(0);
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 128; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [token] {}));
  }
  EXPECT_EQ(token.use_count(), 129);
  for (EventId id : ids) q.cancel(id);
  q.schedule(1000.0, [] {});
  q.runNext();  // prunes (and compacts) the cancelled entries
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Randomized cross-check against a trivially correct reference model.

TEST(EventQueue, RandomScheduleCancelMatchesReferenceModel) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    struct Ref {
      SimTime time = 0.0;
      bool cancelled = false;
      bool fired = false;
    };
    // One Ref per schedule(); its index equals the EventId the queue hands
    // out, because ids are dense and this test is the only scheduler.
    std::vector<Ref> refs;
    std::vector<std::size_t> firedOrder;
    SimTime now = 0.0;

    auto liveCount = [&] {
      std::size_t n = 0;
      for (const auto& e : refs) n += (!e.cancelled && !e.fired) ? 1 : 0;
      return n;
    };
    auto expectedNext = [&] {
      std::size_t best = refs.size();
      for (std::size_t i = 0; i < refs.size(); ++i) {
        const auto& e = refs[i];
        if (e.cancelled || e.fired) continue;
        if (best == refs.size() || e.time < refs[best].time) best = i;
        // Equal times: the earlier id (lower index) wins; the scan order
        // already guarantees that.
      }
      return best;
    };
    auto popAndCheck = [&] {
      const std::size_t want = expectedNext();
      ASSERT_LT(want, refs.size());
      const SimTime t = q.runNext();
      ASSERT_FALSE(firedOrder.empty());
      ASSERT_EQ(firedOrder.back(), want) << "pop order diverged, round " << round;
      ASSERT_DOUBLE_EQ(t, refs[want].time);
      ASSERT_GE(t, now);
      now = t;
    };

    for (int step = 0; step < 600; ++step) {
      const auto roll = rng() % 10;
      if (roll < 6 || refs.empty()) {
        const SimTime at = now + static_cast<double>(rng() % 1000);
        const std::size_t idx = refs.size();
        const EventId id = q.schedule(at, [&refs, &firedOrder, idx] {
          refs[idx].fired = true;
          firedOrder.push_back(idx);
        });
        ASSERT_EQ(id, idx);
        refs.push_back({at});
      } else if (roll < 8) {
        // Cancel a random entry; on fired/cancelled ones this is a no-op.
        const std::size_t idx = rng() % refs.size();
        q.cancel(idx);
        if (!refs[idx].fired) refs[idx].cancelled = true;
      } else if (!q.empty()) {
        popAndCheck();
      }
      ASSERT_EQ(q.size(), liveCount()) << "live count diverged, round " << round;
    }
    while (!q.empty()) popAndCheck();
    ASSERT_EQ(liveCount(), 0u);
  }
}

}  // namespace
}  // namespace ppsched
