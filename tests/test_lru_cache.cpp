// LruExtentCache: the per-node disk cache model.
#include "storage/lru_cache.h"

#include <gtest/gtest.h>

namespace ppsched {
namespace {

TEST(LruCache, StartsEmpty) {
  LruExtentCache c(100);
  EXPECT_EQ(c.capacity(), 100u);
  EXPECT_EQ(c.used(), 0u);
  EXPECT_EQ(c.freeSpace(), 100u);
  EXPECT_TRUE(c.contents().empty());
}

TEST(LruCache, InsertAndQuery) {
  LruExtentCache c(100);
  const IntervalSet inserted = c.insert({10, 30}, 1.0);
  EXPECT_EQ(inserted.size(), 20u);
  EXPECT_EQ(c.used(), 20u);
  EXPECT_TRUE(c.containsRange({10, 30}));
  EXPECT_TRUE(c.containsRange({15, 25}));
  EXPECT_FALSE(c.containsRange({5, 15}));
  EXPECT_EQ(c.overlapSize({0, 100}), 20u);
  EXPECT_EQ(c.cachedIn({20, 40}).intervals(), (std::vector<EventRange>{{20, 30}}));
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruExtentCache c(0);
  EXPECT_TRUE(c.insert({0, 50}, 1.0).empty());
  EXPECT_EQ(c.used(), 0u);
}

TEST(LruCache, ReinsertingCachedDataInsertsNothingNew) {
  LruExtentCache c(100);
  c.insert({10, 30}, 1.0);
  const IntervalSet second = c.insert({10, 30}, 2.0);
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(c.used(), 20u);
}

TEST(LruCache, PartialOverlapInsertsOnlyMissing) {
  LruExtentCache c(100);
  c.insert({10, 30}, 1.0);
  const IntervalSet got = c.insert({20, 50}, 2.0);
  EXPECT_EQ(got.intervals(), (std::vector<EventRange>{{30, 50}}));
  EXPECT_EQ(c.used(), 40u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruExtentCache c(50);
  c.insert({0, 20}, 1.0);    // oldest
  c.insert({100, 120}, 2.0);
  c.insert({200, 210}, 3.0);  // cache now full (50 events)
  c.insert({300, 320}, 4.0);  // needs 20 -> evicts {0,20}
  EXPECT_FALSE(c.containsRange({0, 20}));
  EXPECT_TRUE(c.containsRange({100, 120}));
  EXPECT_TRUE(c.containsRange({200, 210}));
  EXPECT_TRUE(c.containsRange({300, 320}));
  EXPECT_EQ(c.used(), 50u);
  EXPECT_EQ(c.totalEvicted(), 20u);
}

TEST(LruCache, TouchProtectsFromEviction) {
  LruExtentCache c(50);
  c.insert({0, 20}, 1.0);
  c.insert({100, 120}, 2.0);
  c.insert({200, 210}, 3.0);
  c.touch({0, 20}, 4.0);      // refresh the oldest
  c.insert({300, 320}, 5.0);  // now {100,120} is the LRU
  EXPECT_TRUE(c.containsRange({0, 20}));
  EXPECT_FALSE(c.containsRange({100, 120}));
}

TEST(LruCache, PartialTouchSplitsExtent) {
  LruExtentCache c(100);
  c.insert({0, 40}, 1.0);
  c.touch({10, 20}, 2.0);
  // Still fully cached, but now in multiple extents with different stamps.
  EXPECT_TRUE(c.containsRange({0, 40}));
  EXPECT_GE(c.extentCount(), 3u);
  EXPECT_EQ(c.used(), 40u);
}

TEST(LruCache, PartialTouchEvictionEvictsColdParts) {
  LruExtentCache c(40);
  c.insert({0, 40}, 1.0);
  c.touch({10, 20}, 2.0);
  c.insert({100, 130}, 3.0);  // need 30: evict cold pieces {0,10} and {20,40}
  EXPECT_TRUE(c.containsRange({10, 20}));
  EXPECT_FALSE(c.containsRange({0, 10}));
  EXPECT_FALSE(c.containsRange({20, 40}));
  EXPECT_TRUE(c.containsRange({100, 130}));
  EXPECT_EQ(c.used(), 40u);
}

TEST(LruCache, PinnedDataSurvivesEviction) {
  LruExtentCache c(60);
  c.insert({0, 30}, 1.0);
  c.pin({0, 30});
  c.insert({100, 120}, 2.0);
  c.insert({200, 230}, 3.0);  // needs 30, only {100,120} evictable
  EXPECT_TRUE(c.containsRange({0, 30}));
  EXPECT_FALSE(c.containsRange({100, 120}));
  EXPECT_TRUE(c.containsRange({200, 230}));
  c.unpin({0, 30});
  c.insert({300, 330}, 4.0);  // now the pinned data is evictable again
  EXPECT_FALSE(c.containsRange({0, 30}));
}

TEST(LruCache, PartiallyPinnedExtentShedsUnpinnedPart) {
  LruExtentCache c(40);
  c.insert({0, 40}, 1.0);
  c.pin({10, 20});
  c.insert({100, 120}, 2.0);  // needs 20: evicts the unpinned {0,10}+{20,30}
  EXPECT_TRUE(c.containsRange({10, 20}));
  EXPECT_FALSE(c.containsRange({0, 10}));
  EXPECT_FALSE(c.containsRange({20, 30}));
  EXPECT_TRUE(c.containsRange({30, 40}));  // partial eviction stops at the deficit
  EXPECT_EQ(c.overlapSize({0, 40}), 20u);
  EXPECT_TRUE(c.containsRange({100, 120}));
}

TEST(LruCache, FullyPinnedCacheInsertsPartially) {
  LruExtentCache c(30);
  c.insert({0, 30}, 1.0);
  c.pin({0, 30});
  const IntervalSet got = c.insert({100, 150}, 2.0);
  EXPECT_TRUE(got.empty());  // nothing fits
  c.unpin({0, 30});
  c.pin({0, 10});
  const IntervalSet got2 = c.insert({100, 150}, 3.0);
  EXPECT_EQ(got2.size(), 20u);  // 20 events evictable -> prefix inserted
  EXPECT_TRUE(c.containsRange({0, 10}));
}

TEST(LruCache, InsertLargerThanCapacityFillsPrefix) {
  LruExtentCache c(30);
  const IntervalSet got = c.insert({0, 100}, 1.0);
  EXPECT_EQ(got.size(), 30u);
  EXPECT_EQ(c.used(), 30u);
}

TEST(LruCache, ExplicitEvict) {
  LruExtentCache c(100);
  c.insert({0, 50}, 1.0);
  c.evict({10, 20});
  EXPECT_EQ(c.used(), 40u);
  EXPECT_FALSE(c.containsRange({10, 20}));
  EXPECT_TRUE(c.containsRange({0, 10}));
  EXPECT_TRUE(c.containsRange({20, 50}));
}

TEST(LruCache, PinnedInReportsPins) {
  LruExtentCache c(100);
  c.insert({0, 50}, 1.0);
  c.pin({10, 30});
  EXPECT_EQ(c.pinnedIn({0, 50}).intervals(), (std::vector<EventRange>{{10, 30}}));
  c.unpin({10, 30});
  EXPECT_TRUE(c.pinnedIn({0, 50}).empty());
}

TEST(LruCache, UnbalancedUnpinThrows) {
  LruExtentCache c(100);
  c.pin({0, 10});
  EXPECT_THROW(c.unpin({0, 20}), std::logic_error);
}

TEST(LruCache, EqualTimestampNeighboursMerge) {
  LruExtentCache c(100);
  c.insert({0, 10}, 1.0);
  c.insert({10, 20}, 1.0);
  EXPECT_EQ(c.extentCount(), 1u);
  c.insert({20, 30}, 2.0);
  EXPECT_EQ(c.extentCount(), 2u);
}

TEST(LruCache, InsertDoesNotEvictItsOwnRange) {
  // Inserting a range whose cached part is the LRU must not evict that part
  // to make room for the rest.
  LruExtentCache c(40);
  c.insert({0, 20}, 1.0);    // will be refreshed by the big insert
  c.insert({100, 120}, 2.0);
  c.insert({0, 40}, 3.0);    // 20 cached + 20 new; must evict {100,120}
  EXPECT_TRUE(c.containsRange({0, 40}));
  EXPECT_FALSE(c.containsRange({100, 120}));
}

TEST(LruCache, TotalEvictedAccumulatesAcrossPartialEvictions) {
  LruExtentCache c(100);
  c.insert({0, 100}, 1.0);
  c.insert({200, 240}, 2.0);  // evicts 40 from the front of {0,100}
  EXPECT_EQ(c.totalEvicted(), 40u);
  c.insert({300, 330}, 3.0);  // evicts 30 more
  EXPECT_EQ(c.totalEvicted(), 70u);
  c.evict({200, 240});        // explicit eviction also counts
  EXPECT_EQ(c.totalEvicted(), 110u);
}

TEST(LruCache, PartialEvictionKeepsRemainderLru) {
  // After a partial eviction the surviving remainder keeps its original
  // timestamp and is the next to go.
  LruExtentCache c(100);
  c.insert({0, 60}, 1.0);
  c.insert({100, 140}, 2.0);
  c.insert({200, 230}, 3.0);  // evicts {0,30}; {30,60} remains at t=1
  EXPECT_FALSE(c.containsRange({0, 30}));
  EXPECT_TRUE(c.containsRange({30, 60}));
  c.insert({300, 330}, 4.0);  // must take the rest of the t=1 extent first
  EXPECT_FALSE(c.containsRange({30, 60}));
  EXPECT_TRUE(c.containsRange({100, 140}));
}

TEST(LruCache, TouchOnUncachedRangeIsNoop) {
  LruExtentCache c(100);
  c.insert({0, 10}, 1.0);
  c.touch({50, 60}, 2.0);
  EXPECT_EQ(c.used(), 10u);
  EXPECT_EQ(c.extentCount(), 1u);
}

TEST(LruCache, PinUnpinOnEmptyCacheIsLegal) {
  // Pins are bookkeeping over ranges, independent of contents: a policy may
  // pin before data arrives.
  LruExtentCache c(100);
  c.pin({0, 50});
  EXPECT_EQ(c.pinnedIn({0, 100}).size(), 50u);
  c.insert({0, 50}, 1.0);
  c.unpin({0, 50});
  EXPECT_TRUE(c.containsRange({0, 50}));
}

TEST(LruCache, ReusableAfterFullEviction) {
  LruExtentCache c(50);
  c.insert({0, 50}, 1.0);
  c.evict({0, 50});
  EXPECT_EQ(c.used(), 0u);
  EXPECT_EQ(c.extentCount(), 0u);
  c.insert({100, 150}, 2.0);
  EXPECT_TRUE(c.containsRange({100, 150}));
}

TEST(LruCache, DropWipesContentsAndCountsAsEviction) {
  LruExtentCache c(100);
  c.insert({0, 50}, 1.0);
  c.insert({200, 230}, 2.0);
  c.drop();
  EXPECT_EQ(c.used(), 0u);
  EXPECT_EQ(c.extentCount(), 0u);
  EXPECT_TRUE(c.contents().empty());
  EXPECT_FALSE(c.containsRange({0, 50}));
  EXPECT_EQ(c.totalEvicted(), 80u);
  // The cache keeps working after a drop.
  c.insert({300, 340}, 3.0);
  EXPECT_TRUE(c.containsRange({300, 340}));
}

TEST(LruCache, DropOnEmptyCacheIsNoop) {
  LruExtentCache c(100);
  c.drop();
  EXPECT_EQ(c.used(), 0u);
  EXPECT_EQ(c.totalEvicted(), 0u);
}

TEST(LruCache, DropPreservesPinBookkeeping) {
  // A crash wipes contents but not pins: pins track in-flight *runs*, whose
  // eventual unpin() must still balance. Pinned ranges are gone from the
  // cache yet remain pinned (and re-insertable) until unpinned.
  LruExtentCache c(100);
  c.insert({0, 30}, 1.0);
  c.pin({0, 30});
  c.drop();
  EXPECT_FALSE(c.containsRange({0, 30}));
  EXPECT_EQ(c.pinnedIn({0, 100}).intervals(), (std::vector<EventRange>{{0, 30}}));
  // The balanced unpin from the (now dead) run is still legal.
  c.unpin({0, 30});
  EXPECT_TRUE(c.pinnedIn({0, 100}).empty());
  // And an unbalanced one still throws.
  EXPECT_THROW(c.unpin({0, 30}), std::logic_error);
}

TEST(LruCache, PinsSurvivingDropStillProtectReinsertedData) {
  LruExtentCache c(40);
  c.insert({0, 20}, 1.0);
  c.pin({0, 20});
  c.drop();
  c.insert({0, 20}, 2.0);     // the dead run's range comes back...
  c.insert({100, 140}, 3.0);  // ...and its pin still shields it from eviction
  EXPECT_TRUE(c.containsRange({0, 20}));
  EXPECT_TRUE(c.containsRange({100, 120}));   // free space absorbed the prefix
  EXPECT_FALSE(c.containsRange({120, 140}));  // pinned {0,20} was not evicted
  c.unpin({0, 20});
}

TEST(LruCache, UsedNeverExceedsCapacityUnderStress) {
  LruExtentCache c(500);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t b = static_cast<std::uint64_t>((i * 37) % 1000);
    c.insert({b, b + 60}, static_cast<SimTime>(i));
    ASSERT_LE(c.used(), c.capacity());
    ASSERT_EQ(c.contents().size(), c.used());
  }
}

}  // namespace
}  // namespace ppsched
