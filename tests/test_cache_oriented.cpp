// CacheOrientedScheduler (§3.3, Table 2).
#include "sched/cache_oriented.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct CacheHarness {
  CacheHarness(SimConfig cfg, std::vector<Job> jobs) : metrics(cfg.cost, {0, 0.0}) {
    auto p = std::make_unique<CacheOrientedScheduler>();
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  CacheOrientedScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(CacheOriented, CachesWhatItReads) {
  CacheHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}});
  h.engine->run({});
  EXPECT_EQ(h.engine->cluster().totalCachedEvents(), 2000u);
}

TEST(CacheOriented, RepeatJobRunsAtCachedSpeed) {
  CacheHarness h(tinyConfig(1, 1'000'000, 100'000),
                 {{0, 0.0, {0, 1000}}, {1, 10'000.0, {0, 1000}}});
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.metrics.record(1).processingTime(), 260.0);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.5);
}

TEST(CacheOriented, CachedPieceRunsOnItsNode) {
  // Pre-seed node 1 with the first half of the job; that half must be
  // processed on node 1 (at cached rate), the rest elsewhere.
  CacheHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}});
  h.engine->cluster().node(1).cache().insert({0, 1000}, 0.0);
  h.engine->run({});
  // Node 1 does the cached half in 260 s, node 0 starts the uncached half;
  // when node 1 frees it steals part of node 0's remainder (Table 2), so
  // the job must finish after the cached pass but well before the 800 s a
  // non-stealing schedule would take.
  EXPECT_GT(h.engine->now(), 260.0);
  EXPECT_LT(h.engine->now(), 700.0);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.5);
}

TEST(CacheOriented, SubdividesWhenFewerPiecesThanNodes) {
  CacheHarness h(tinyConfig(4, 1'000'000, 100'000), {{0, 0.0, {0, 4000}}});
  h.engine->run({});
  // One uncached piece subdivided across 4 idle nodes: 1000 x 0.8 each.
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
}

TEST(CacheOriented, ArrivalPreemptsLeastCacheUsefulRun) {
  // Job 0 runs on both nodes (uncached). Job 1, whose data is cached on
  // node 1, arrives: it must start immediately by displacing a job-0 piece.
  CacheHarness h(tinyConfig(2, 1'000'000, 100'000),
                 {{0, 0.0, {0, 20'000}}, {1, 100.0, {50'000, 51'000}}});
  h.engine->cluster().node(1).cache().insert({50'000, 51'000}, 0.0);
  h.engine->run({});
  EXPECT_DOUBLE_EQ(h.metrics.record(1).waitingTime(), 0.0);
  // Job 1 ran fully cached.
  EXPECT_DOUBLE_EQ(h.metrics.record(1).processingTime(), 260.0);
  EXPECT_EQ(h.metrics.completedJobs(), 2u);
}

TEST(CacheOriented, FifoJobStartOrder) {
  // Three jobs, one node: start order must follow arrival order even though
  // job 2's data is cached.
  CacheHarness h(tinyConfig(1, 1'000'000, 100'000),
                 {{0, 0.0, {0, 1000}},
                  {1, 1.0, {10'000, 11'000}},
                  {2, 2.0, {0, 1000}}});
  h.engine->run({});
  EXPECT_LT(h.metrics.record(1).firstStart, h.metrics.record(2).firstStart);
}

TEST(CacheOriented, LruKeepsHotDataUseful) {
  // Cache of 1000 events; alternating hot jobs over {0,800} interleaved
  // with cold sweeps. The hot range must stay mostly cached.
  std::vector<Job> jobs;
  SimTime t = 0.0;
  JobId id = 0;
  for (int round = 0; round < 6; ++round) {
    jobs.push_back({id++, t, {0, 800}});
    t += 10'000.0;
    jobs.push_back({id++, t, {5000 + round * 400ull, 5000 + round * 400ull + 300}});
    t += 10'000.0;
  }
  CacheHarness h(tinyConfig(1, 1'000'000, 1000), jobs);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  // Each cold sweep evicts only ~300 of the 800 hot events (partial LRU
  // eviction), so later hot passes still hit most of their data.
  EXPECT_GT(r.cacheHitFraction, 0.45);
}

TEST(CacheOriented, DrainsUnderBurst) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 25; ++i) {
    jobs.push_back({i, i * 1.0, {(i % 5) * 4000, (i % 5) * 4000 + 3000}});
  }
  CacheHarness h(tinyConfig(3, 1'000'000, 50'000), jobs);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 25u);
  EXPECT_EQ(h.policy->queuedJobs(), 0u);
}

TEST(CacheOriented, BeatsPlainSplittingOnRepeatedData) {
  // Same trace, warm data: the cached policy must win end-to-end time.
  std::vector<Job> jobs;
  for (JobId i = 0; i < 10; ++i) {
    jobs.push_back({i, i * 3000.0, {0, 8000}});
  }
  CacheHarness h(tinyConfig(2, 1'000'000, 100'000), jobs);
  h.engine->run({});
  const RunResult cached = h.metrics.finalize(h.engine->now());
  EXPECT_GT(cached.cacheHitFraction, 0.7);
  EXPECT_GT(cached.avgSpeedup, 3.0);  // ~2 nodes x ~3 caching gain on repeats
}

}  // namespace
}  // namespace ppsched
