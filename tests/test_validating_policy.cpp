// ValidatingPolicy: invariant fuzzing of every policy.
#include "core/validating_policy.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "net/network.h"
#include "test_support.h"
#include "workload/generator.h"

namespace ppsched {
namespace {

TEST(ValidatingPolicy, RequiresInnerPolicy) {
  EXPECT_THROW(ValidatingPolicy(nullptr), std::invalid_argument);
}

TEST(ValidatingPolicy, ForwardsIdentity) {
  ValidatingPolicy p(makePolicy("farm"));
  EXPECT_EQ(p.name(), "farm+validate");
  EXPECT_FALSE(p.usesCaching());
  ValidatingPolicy q(makePolicy("out_of_order"));
  EXPECT_TRUE(q.usesCaching());
}

TEST(ValidatingPolicy, DetectsViolations) {
  // A deliberately broken policy: keeps a node running a job that the
  // engine considers... we can't make the engine inconsistent from outside,
  // so instead violate the cache-accounting invariant via a hostile inner
  // policy that corrupts a cache during its callback. The decorator cannot
  // see *who* broke the state, only that it is broken — emulate by an inner
  // policy that pins without balance? Pins don't break accounting. Use the
  // simplest observable violation: none is reachable through public APIs,
  // which is itself the point — assert a healthy run performs checks.
  SimConfig cfg = ppsched::testing::tinyConfig(2, 100'000, 10'000);
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  auto validating = std::make_unique<ValidatingPolicy>(makePolicy("splitting"));
  auto* ptr = validating.get();
  Engine engine(cfg, ppsched::testing::fixedSource({{0, 0.0, {0, 5000}}}),
                std::move(validating), metrics);
  engine.run({});
  EXPECT_TRUE(engine.jobDone(0));
  EXPECT_GE(ptr->checksPerformed(), 2u);  // arrival + run end(s)
}

// Fuzz: every registered policy, run under the validator against a random
// workload at moderate load. Any invariant violation throws and fails.
class PolicyFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyFuzz, InvariantsHoldOverRandomWorkload) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.3;
  cfg.finalize();

  PolicyParams params;
  params.periodDelay = 8 * units::hour;
  params.stripeEvents = 1000;
  auto validating = std::make_unique<ValidatingPolicy>(makePolicy(GetParam(), params));
  auto* ptr = validating.get();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 123),
                std::move(validating), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 150, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 150u);
  EXPECT_GT(ptr->checksPerformed(), 300u);
}

TEST_P(PolicyFuzz, InvariantsHoldUnderRandomNodeFailures) {
  // Same random workload, now with stochastic machine crashes and repairs.
  // Every policy must survive losing runs (and caches) mid-flight: the
  // validator additionally checks that down nodes never run or report idle.
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.3;
  cfg.failures.meanTimeBetweenFailuresSec = 2 * units::day;
  cfg.failures.meanTimeToRepairSec = 3 * units::hour;
  cfg.finalize();

  PolicyParams params;
  params.periodDelay = 8 * units::hour;
  params.stripeEvents = 1000;
  auto validating = std::make_unique<ValidatingPolicy>(makePolicy(GetParam(), params));
  auto* ptr = validating.get();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 123),
                std::move(validating), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 80, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 80u);
  EXPECT_GT(ptr->checksPerformed(), 150u);
  const RunResult result = metrics.finalize(engine.now());
  EXPECT_GT(result.nodeFailures, 0u);
}

TEST_P(PolicyFuzz, NetworkInvariantsHoldOverRandomWorkload) {
  // Flow model on: grouped switches, thin uplinks, a shared tertiary
  // ingress. Every sweep now additionally validates the network section
  // (flow endpoints alive, links within capacity, replica copies disjoint).
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.3;
  cfg.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  cfg.finalize();

  PolicyParams params;
  params.periodDelay = 8 * units::hour;
  params.stripeEvents = 1000;
  auto validating = std::make_unique<ValidatingPolicy>(makePolicy(GetParam(), params));
  auto* ptr = validating.get();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 123),
                std::move(validating), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 100, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 100u);
  EXPECT_GT(ptr->checksPerformed(), 200u);
}

TEST_P(PolicyFuzz, NetworkInvariantsHoldUnderRandomNodeFailures) {
  // Crashes with the flow model on: a dying machine closes its links while
  // flows and replica copies reference it. Exercises the engine's
  // remote-reader retargeting — survivors mid-remote-read from the dead
  // machine must fold progress and re-plan — and the validator's
  // no-flow-references-a-down-machine sweep.
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.3;
  cfg.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  cfg.failures.meanTimeBetweenFailuresSec = 2 * units::day;
  cfg.failures.meanTimeToRepairSec = 3 * units::hour;
  cfg.finalize();

  PolicyParams params;
  params.periodDelay = 8 * units::hour;
  params.stripeEvents = 1000;
  auto validating = std::make_unique<ValidatingPolicy>(makePolicy(GetParam(), params));

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 123),
                std::move(validating), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 60, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 60u);
  const RunResult result = metrics.finalize(engine.now());
  EXPECT_GT(result.nodeFailures, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyFuzz,
                         ::testing::Values("farm", "splitting", "cache_oriented",
                                           "out_of_order", "replication", "delayed",
                                           "adaptive", "mixed"));

}  // namespace
}  // namespace ppsched
