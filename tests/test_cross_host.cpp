// Cross-host equivalence: the same policy must produce equivalent results
// on the discrete-event Engine and the wall-clock RealtimeHost (§2.3's
// dual-use claim, tested per policy).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/registry.h"
#include "core/validating_policy.h"
#include "runtime/realtime_host.h"
#include "test_support.h"
#include "workload/trace.h"

namespace ppsched {
namespace {

using namespace std::chrono_literals;

class CrossHost : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossHost, SimulatedAndRealtimeAgree) {
  SimConfig cfg = ppsched::testing::tinyConfig(3, 1'000'000, 60'000);

  // Segments with deliberate repetition so caching matters.
  const std::vector<EventRange> segments{
      {0, 5000}, {200'000, 204'000}, {0, 5000}, {400'000, 402'000}, {200'000, 203'000}};

  PolicyParams params;
  params.periodDelay = 600.0;  // short periods keep the realtime run quick
  params.stripeEvents = 1000;

  // --- simulated pass ----------------------------------------------------
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    jobs.push_back({static_cast<JobId>(i), static_cast<SimTime>(i) * 0.01, segments[i]});
  }
  MetricsCollector simMetrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(JobTrace(jobs)),
                makePolicy(GetParam(), params), simMetrics);
  engine.run({});
  ASSERT_EQ(simMetrics.completedJobs(), segments.size());

  // --- realtime pass -----------------------------------------------------
  MetricsCollector rtMetrics(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 400'000.0;
  RealtimeHost host(cfg, makePolicy(GetParam(), params), rtMetrics, opt);
  for (const EventRange& segment : segments) host.submit(segment);
  ASSERT_TRUE(host.drain(15'000ms)) << GetParam();
  ASSERT_EQ(host.completedJobs(), segments.size());

  // Equivalence up to OS jitter and timing-dependent tie-breaks: total
  // processed events are identical; aggregate processing effort agrees
  // within a factor of two (individual placements may differ).
  const RunResult rs = simMetrics.finalize(engine.now());
  const RunResult rr = rtMetrics.finalize(host.now());
  EXPECT_EQ(rs.processedEvents, rr.processedEvents);
  EXPECT_GT(rr.avgProcessing, 0.3 * rs.avgProcessing);
  EXPECT_LT(rr.avgProcessing, 3.0 * rs.avgProcessing);
  // Both hosts ran with caching (or without) per the policy contract.
  if (makePolicy(GetParam())->usesCaching()) {
    EXPECT_GT(rr.cacheHitFraction, 0.0) << "repeat segments must hit on both hosts";
    EXPECT_GT(rs.cacheHitFraction, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(rr.cacheHitFraction, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CrossHost,
                         ::testing::Values("farm", "splitting", "cache_oriented",
                                           "out_of_order", "delayed", "mixed"));

TEST_P(CrossHost, SameFailureScriptWorksOnBothHosts) {
  // A scripted crash/repair driven through the shared at() interface: both
  // hosts lose a machine mid-workload and must still finish everything via
  // the default onNodeDown re-dispatch path.
  SimConfig cfg = ppsched::testing::tinyConfig(3, 1'000'000, 60'000);
  const std::vector<EventRange> segments{{0, 5000}, {200'000, 204'000}, {0, 5000}};

  PolicyParams params;
  params.periodDelay = 600.0;
  params.stripeEvents = 1000;

  // --- simulated pass ----------------------------------------------------
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    jobs.push_back({static_cast<JobId>(i), static_cast<SimTime>(i) * 0.01, segments[i]});
  }
  MetricsCollector simMetrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(JobTrace(jobs)),
                makePolicy(GetParam(), params), simMetrics);
  engine.at(100.0, [&] { engine.failNode(0); });
  engine.at(2000.0, [&] { engine.repairNode(0); });
  engine.run({});
  ASSERT_EQ(simMetrics.completedJobs(), segments.size()) << GetParam();

  // --- realtime pass -----------------------------------------------------
  MetricsCollector rtMetrics(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 400'000.0;
  RealtimeHost host(cfg, makePolicy(GetParam(), params), rtMetrics, opt);
  host.at(host.now() + 100.0, [&] { host.failNode(0); });
  host.at(host.now() + 2000.0, [&] { host.repairNode(0); });
  for (const EventRange& segment : segments) host.submit(segment);
  ASSERT_TRUE(host.drain(15'000ms)) << GetParam();
  ASSERT_EQ(host.completedJobs(), segments.size());

  const RunResult rs = simMetrics.finalize(engine.now());
  const RunResult rr = rtMetrics.finalize(host.now());
  EXPECT_EQ(rs.nodeFailures, 1u);
  EXPECT_EQ(rr.nodeFailures, 1u);
  // Re-done work means processed >= submitted on both hosts.
  std::uint64_t submitted = 0;
  for (const EventRange& s : segments) submitted += s.size();
  EXPECT_GE(rs.processedEvents, submitted);
  EXPECT_GE(rr.processedEvents, submitted);
}

// Randomized engine configurations under the validating decorator: no
// invariant may break for any (nodes, cache, span, pipelined) combination.
struct FuzzConfig {
  int nodes;
  std::uint64_t cacheEvents;
  std::uint64_t span;
  bool pipelined;
};

class ConfigFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(ConfigFuzz, OutOfOrderSurvivesAnyConfiguration) {
  const FuzzConfig& fc = GetParam();
  SimConfig cfg = ppsched::testing::tinyConfig(fc.nodes, 2'000'000, fc.cacheEvents, fc.span);
  cfg.cost.pipelined = fc.pipelined;
  cfg.workload.jobsPerHour = 2.0;
  cfg.workload.meanJobEvents = 8000;
  cfg.finalize();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  auto policy = std::make_unique<ValidatingPolicy>(makePolicy("out_of_order"));
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 99),
                std::move(policy), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 60, .maxJobsInSystem = 500}));
  EXPECT_GE(metrics.completedJobs(), 60u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigFuzz,
                         ::testing::Values(FuzzConfig{1, 1000, 100, false},
                                           FuzzConfig{2, 50'000, 5000, false},
                                           FuzzConfig{7, 200'000, 1'000'000, false},
                                           FuzzConfig{3, 10, 500, false},
                                           FuzzConfig{4, 100'000, 2000, true},
                                           FuzzConfig{16, 30'000, 777, true}));

}  // namespace
}  // namespace ppsched
