// Multi-CPU nodes (SMP extension): CPUs of one machine share a disk cache.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::whole;

SimConfig smpConfig(int machines, int cpus, std::uint64_t cacheEvents) {
  SimConfig cfg;
  cfg.numNodes = machines;
  cfg.cpusPerNode = cpus;
  cfg.totalDataBytes = 1'000'000ULL * 600'000;
  cfg.cacheBytesPerNode = cacheEvents * 600'000ULL;
  cfg.workload.hotRegions.clear();
  cfg.workload.hotProbability = 0.0;
  cfg.cost.pipelined = false;  // the paper's serial model (timing expectations)
  cfg.finalize();
  return cfg;
}

TEST(Multicore, ConfigValidation) {
  SimConfig cfg = smpConfig(2, 2, 1000);
  EXPECT_EQ(cfg.totalCpus(), 4);
  cfg.cpusPerNode = 0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(Multicore, MaxLoadScalesWithCpus) {
  SimConfig one = SimConfig::paperDefaults();
  SimConfig two = SimConfig::paperDefaults();
  two.cpusPerNode = 2;
  two.finalize();
  EXPECT_NEAR(two.maxTheoreticalLoadJobsPerHour(), 2 * one.maxTheoreticalLoadJobsPerHour(),
              1e-9);
}

TEST(Multicore, ClusterExposesLogicalCpusSharingCaches) {
  Cluster c(2, 1000, 3);
  EXPECT_EQ(c.size(), 6);
  EXPECT_TRUE(c.node(0).sharesCacheWith(c.node(1)));
  EXPECT_TRUE(c.node(0).sharesCacheWith(c.node(2)));
  EXPECT_FALSE(c.node(0).sharesCacheWith(c.node(3)));
  // Writing through one CPU's cache is visible to its siblings only.
  c.node(0).cache().insert({0, 100}, 1.0);
  EXPECT_TRUE(c.node(2).cache().containsRange({0, 100}));
  EXPECT_FALSE(c.node(3).cache().containsRange({0, 100}));
  // Shared caches are counted once.
  EXPECT_EQ(c.totalCachedEvents(), 100u);
}

TEST(Multicore, SiblingCpuHitsDataFetchedByTheOther) {
  SimConfig cfg = smpConfig(1, 2, 10'000);
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 1000.0, {0, 1000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(j.id == 0 ? 0 : 1, whole(j));
  };
  h.engine->run({});
  // CPU 0 fetched from tertiary (800 s); CPU 1 starts at t=1000 and reads
  // the shared cache (260 s).
  EXPECT_DOUBLE_EQ(h.metrics.record(1).processingTime(), 260.0);
}

TEST(Multicore, BothCpusRunConcurrently) {
  SimConfig cfg = smpConfig(1, 2, 10'000);
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {5000, 6000}}});
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  // Truly parallel: both finish at 800 s, not 1600.
  EXPECT_DOUBLE_EQ(h.engine->now(), 800.0);
}

TEST(Multicore, PinsProtectSiblingReads) {
  // CPU 1 streams new data into the shared cache while CPU 0 reads its
  // cached span; the pinned span must survive the pressure.
  SimConfig cfg = smpConfig(1, 2, 1000);
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {500'000, 500'900}}});
  h.engine->cluster().node(0).cache().insert({0, 1000}, 0.0);  // shared cache full
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(static_cast<NodeId>(j.id), whole(j));
  };
  h.engine->run({});
  EXPECT_TRUE(h.engine->jobDone(0));
  EXPECT_TRUE(h.engine->jobDone(1));
  // CPU 0's run stayed fully cached (260 s) despite CPU 1's inserts.
  EXPECT_DOUBLE_EQ(h.metrics.record(0).processingTime(), 260.0);
}

TEST(Multicore, PoliciesRunUnchangedOnSmpClusters) {
  for (const char* policy : {"cache_oriented", "out_of_order", "delayed"}) {
    ExperimentSpec spec;
    spec.sim.cpusPerNode = 2;
    spec.sim.numNodes = 5;  // same 10 CPU slots as the paper, 5 machines
    spec.sim.finalize();
    spec.policyName = policy;
    spec.policyParams.periodDelay = 6 * units::hour;
    spec.jobsPerHour = 0.9;
    spec.warmupJobs = 40;
    spec.measuredJobs = 150;
    const RunResult r = runExperiment(spec);
    EXPECT_GE(r.completedJobs, 190u) << policy;
    EXPECT_FALSE(r.overloaded) << policy;
  }
}

TEST(Multicore, CachePoolingHelpsFifoAndOutOfOrderStaysLevel) {
  // Same total CPUs and total cache: 10x1 vs 2x5. Pooling 500 GB behind
  // each cache makes the FIFO cache-oriented policy far more effective
  // (any slot can serve most hot data locally). Out-of-order's queues are
  // cache-GROUP based (siblings share one queue), so it neither degrades
  // nor needs the pooling: performance stays level across shapes. (A
  // per-CPU-queue variant degraded badly here — see bench/ext_multicore.)
  auto run = [](const char* policy, int machines, int cpus) {
    ExperimentSpec spec;
    spec.sim.numNodes = machines;
    spec.sim.cpusPerNode = cpus;
    spec.sim.cacheBytesPerNode = 1'000'000'000'000ULL / static_cast<unsigned>(machines);
    spec.sim.finalize();
    spec.policyName = policy;
    spec.jobsPerHour = 1.2;
    spec.warmupJobs = 60;
    spec.measuredJobs = 250;
    return runExperiment(spec);
  };
  const RunResult fifoThin = run("cache_oriented", 10, 1);
  const RunResult fifoFat = run("cache_oriented", 2, 5);
  EXPECT_GT(fifoFat.cacheHitFraction, fifoThin.cacheHitFraction + 0.1);
  EXPECT_GT(fifoFat.avgSpeedup, fifoThin.avgSpeedup);

  const RunResult oooThin = run("out_of_order", 10, 1);
  const RunResult oooFat = run("out_of_order", 2, 5);
  EXPECT_GT(oooFat.avgSpeedup, 0.7 * oooThin.avgSpeedup);
  EXPECT_GT(oooFat.cacheHitFraction, 0.7 * oooThin.cacheHitFraction);
}

}  // namespace
}  // namespace ppsched
