// Direct coverage of the CLI flag parsing (core/cli.h) — parseCliArgs is
// driven with plain argument vectors, so accepted and rejected spellings
// are pinned without spawning the ppsched_cli binary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cli.h"

namespace ppsched {
namespace {

CliOptions parse(std::vector<std::string> args) { return parseCliArgs(args); }

std::string parseError(std::vector<std::string> args) {
  try {
    (void)parseCliArgs(args);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(Cli, DefaultsWithBareRunCommand) {
  const CliOptions opt = parse({"run"});
  EXPECT_EQ(opt.command, "run");
  EXPECT_EQ(opt.spec.policyName, "out_of_order");
  EXPECT_DOUBLE_EQ(opt.spec.jobsPerHour, 1.0);
  EXPECT_FALSE(opt.csv);
}

TEST(Cli, ParsesCoreFlags) {
  const CliOptions opt = parse({"run", "--policy", "eevdf", "--load", "2.5", "--nodes", "20",
                                "--cpus", "2", "--stripe", "2000", "--seed", "7",
                                "--pipelined", "--csv"});
  EXPECT_EQ(opt.spec.policyName, "eevdf");
  EXPECT_DOUBLE_EQ(opt.spec.jobsPerHour, 2.5);
  EXPECT_EQ(opt.spec.sim.numNodes, 20);
  EXPECT_EQ(opt.spec.sim.cpusPerNode, 2);
  EXPECT_EQ(opt.spec.policyParams.stripeEvents, 2000u);
  EXPECT_EQ(opt.spec.seed, 7u);
  EXPECT_TRUE(opt.spec.sim.cost.pipelined);
  EXPECT_TRUE(opt.csv);
}

TEST(Cli, TraceFlagCarriesThePath) {
  const CliOptions opt = parse({"run", "--trace", "/tmp/jobs.csv"});
  EXPECT_EQ(opt.spec.tracePath, "/tmp/jobs.csv");
  EXPECT_NE(parseError({"run", "--trace"}).find("missing value for --trace"),
            std::string::npos);
}

TEST(Cli, NetworkFlagParsesTheSpec) {
  const CliOptions opt = parse({"run", "--network", "nic=125,uplink=20"});
  EXPECT_TRUE(opt.spec.sim.network.enabled);
  EXPECT_DOUBLE_EQ(opt.spec.sim.network.nicBytesPerSec, 125e6);
  EXPECT_DOUBLE_EQ(opt.spec.sim.network.uplinkBytesPerSec, 20e6);
  EXPECT_FALSE(parse({"run", "--network", "off"}).spec.sim.network.enabled);
  EXPECT_THROW(parse({"run", "--network", "warp=9"}), std::invalid_argument);
}

TEST(Cli, QosFlagParsesTheSpec) {
  const CliOptions opt =
      parse({"run", "--policy", "eevdf", "--qos", "iweight=8,ideadline=900,window=0"});
  EXPECT_DOUBLE_EQ(opt.spec.policyParams.qos.interactiveWeight, 8.0);
  EXPECT_DOUBLE_EQ(opt.spec.policyParams.qos.interactiveDeadline, 900.0);
  EXPECT_EQ(opt.spec.policyParams.qos.affinityWindowEvents, 0u);
  EXPECT_THROW(parse({"run", "--qos", "iweight=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"run", "--qos", "shiny=1"}), std::invalid_argument);
  EXPECT_NE(parseError({"run", "--qos"}).find("missing value for --qos"), std::string::npos);
}

TEST(Cli, QosGroupLabelsReachTheTraceMapping) {
  const CliOptions opt = parse({"timeline", "--qos", "igroups=lhcb|atlas"});
  EXPECT_EQ(opt.spec.policyParams.qos.interactiveGroups,
            (std::vector<std::string>{"lhcb", "atlas"}));
}

TEST(Cli, LoadsListAndBracketFlags) {
  const CliOptions opt =
      parse({"sweep", "--loads", "0.5,1.0,1.5", "--lo", "0.4", "--hi", "2.0",
             "--replicas", "9"});
  EXPECT_EQ(opt.loads, (std::vector<double>{0.5, 1.0, 1.5}));
  EXPECT_DOUBLE_EQ(opt.lo, 0.4);
  EXPECT_DOUBLE_EQ(opt.hi, 2.0);
  EXPECT_EQ(opt.replicas, 9u);
}

TEST(Cli, RejectsUnknownCommandsAndFlags) {
  EXPECT_NE(parseError({}).find("missing command"), std::string::npos);
  EXPECT_NE(parseError({"launch"}).find("unknown command: launch"), std::string::npos);
  EXPECT_NE(parseError({"run", "--warp"}).find("unknown option: --warp"), std::string::npos);
}

TEST(Cli, RejectsMalformedNumbers) {
  EXPECT_NE(parseError({"run", "--load", "fast"}).find("malformed number for --load"),
            std::string::npos);
  EXPECT_NE(parseError({"run", "--load", "1.5x"}).find("malformed"), std::string::npos);
  EXPECT_NE(parseError({"run", "--nodes", "-3"}).find("unsigned integer"), std::string::npos);
  EXPECT_NE(parseError({"run", "--jobs", "12.5"}).find("unsigned integer"), std::string::npos);
  EXPECT_NE(parseError({"sweep", "--loads", "1.0,,2.0"}).find("malformed"), std::string::npos);
}

TEST(Cli, DelayedFamilyGetsTheDeepJobCap) {
  EXPECT_EQ(parse({"run", "--policy", "delayed"}).spec.maxJobsInSystem, 4000u);
  EXPECT_EQ(parse({"run", "--policy", "mixed"}).spec.maxJobsInSystem, 4000u);
  const CliOptions ooo = parse({"run", "--policy", "out_of_order"});
  EXPECT_LT(ooo.spec.maxJobsInSystem, 4000u);
}

}  // namespace
}  // namespace ppsched
