// Sharded multi-master scheduling: spec parser, cache digests, the
// shard-scoped host view, K=1 bit-identity golden pins, cross-shard work
// stealing, the ownership invariant, and failure rehoming.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/registry.h"
#include "shard/coordinator.h"
#include "shard/digest.h"
#include "shard/shard_config.h"
#include "storage/lru_cache.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::ManualPolicy;
using testing::fixedSource;
using testing::tinyConfig;
using testing::whole;

// --- spec parser ----------------------------------------------------------

TEST(ShardSpec, ParsesFullSpec) {
  const ShardConfig cfg = parseShardSpec("4,digest=600,steal=off,route=rr,admit=8,buckets=64");
  EXPECT_EQ(cfg.count, 4);
  EXPECT_DOUBLE_EQ(cfg.digestPeriodSec, 600.0);
  EXPECT_FALSE(cfg.steal);
  EXPECT_EQ(cfg.route, "rr");
  EXPECT_EQ(cfg.admit, 8);
  EXPECT_EQ(cfg.buckets, 64);
  EXPECT_TRUE(cfg.enabled());
}

TEST(ShardSpec, BareCountUsesDefaults) {
  const ShardConfig cfg = parseShardSpec("4");
  EXPECT_EQ(cfg.count, 4);
  EXPECT_DOUBLE_EQ(cfg.digestPeriodSec, 0.0);
  EXPECT_TRUE(cfg.steal);
  EXPECT_EQ(cfg.route, "affinity");
  EXPECT_EQ(cfg.admit, 0);
  EXPECT_EQ(cfg.buckets, 256);
}

TEST(ShardSpec, EmptyAndOffDisable) {
  EXPECT_FALSE(parseShardSpec("").enabled());
  EXPECT_FALSE(parseShardSpec("off").enabled());
  EXPECT_EQ(formatShardSpec(ShardConfig{}), "off");
}

TEST(ShardSpec, RejectsBadSpecs) {
  EXPECT_THROW(parseShardSpec("0"), std::invalid_argument);   // K = 0
  EXPECT_THROW(parseShardSpec("-2"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4x"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("digest=5"), std::invalid_argument);  // count must come first
  EXPECT_THROW(parseShardSpec("4,digest=600,digest=700"), std::invalid_argument);  // dup key
  EXPECT_THROW(parseShardSpec("4,steal=off,steal=off"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,"), std::invalid_argument);  // trailing garbage
  EXPECT_THROW(parseShardSpec("4,,steal=off"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,bogus=1"), std::invalid_argument);  // unknown key
  EXPECT_THROW(parseShardSpec("4,steal"), std::invalid_argument);    // missing '='
  EXPECT_THROW(parseShardSpec("4,steal=maybe"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,route=random"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,digest=-3"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,digest=3s"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,admit=-1"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,admit=x"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4,buckets=0"), std::invalid_argument);
}

TEST(ShardSpec, ErrorsNameTheOffender) {
  try {
    parseShardSpec("4,frobnicate=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(ShardSpec, FuzzRoundTrip) {
  // Fixed-seed fuzz: format o parse must be the identity on valid configs
  // (the same guarantee the network and QoS spec parsers are held to).
  std::mt19937 rng(20260809);
  for (int i = 0; i < 500; ++i) {
    ShardConfig cfg;
    cfg.count = 1 + static_cast<int>(rng() % 64);
    switch (rng() % 4) {
      case 0: cfg.digestPeriodSec = 0.0; break;
      case 1: cfg.digestPeriodSec = static_cast<double>(rng() % 100000); break;
      case 2: cfg.digestPeriodSec = 0.25 * static_cast<double>(rng() % 1000); break;
      default: cfg.digestPeriodSec = 1e-3 * static_cast<double>(rng() % 7919); break;
    }
    cfg.steal = (rng() % 2) == 0;
    cfg.route = (rng() % 2) == 0 ? "affinity" : "rr";
    cfg.admit = static_cast<int>(rng() % 33);
    cfg.buckets = 1 + static_cast<int>(rng() % 1024);
    const std::string spec = formatShardSpec(cfg);
    EXPECT_EQ(parseShardSpec(spec), cfg) << spec;
  }
}

// --- cache digests --------------------------------------------------------

TEST(CacheDigest, BucketBitRequiresHalfCoverage) {
  // 1000 events over 10 buckets of 100. A bucket's bit is set iff at least
  // half of it is cached.
  LruExtentCache cache(1000);
  cache.insert({0, 100}, 0.0);    // bucket 0: fully covered
  cache.insert({100, 149}, 0.0);  // bucket 1: 49 < 50 -> clear
  cache.insert({200, 250}, 0.0);  // bucket 2: exactly half -> set
  CacheDigest digest(1000, 10);
  digest.rebuild(cache);
  EXPECT_TRUE(digest.bit(0));
  EXPECT_FALSE(digest.bit(1));
  EXPECT_TRUE(digest.bit(2));
  for (int b = 3; b < 10; ++b) EXPECT_FALSE(digest.bit(b)) << b;
}

TEST(CacheDigest, EstimateSumsSetBucketOverlap) {
  LruExtentCache cache(1000);
  cache.insert({0, 100}, 0.0);
  cache.insert({200, 300}, 0.0);
  CacheDigest digest(1000, 10);
  digest.rebuild(cache);
  // [50, 250): 50 events in set bucket 0, none in clear bucket 1, 50 in set
  // bucket 2.
  EXPECT_EQ(digest.estimate({50, 250}), 100u);
  EXPECT_EQ(digest.estimate({300, 1000}), 0u);
  EXPECT_EQ(digest.estimate({0, 0}), 0u);
  // The digest is coarse: a set bucket claims its whole span even where the
  // cache has holes. That over-estimate is the price of compactness.
  cache.evict({0, 25});
  digest.rebuild(cache);  // 75/100 still set
  EXPECT_EQ(digest.estimate({0, 100}), 100u);
}

TEST(DigestBoard, PeriodZeroIsAlwaysFresh) {
  Cluster cl(2, 100);
  cl.node(0).cache().insert({0, 50}, 0.0);
  DigestBoard board(0.0, 100, 10, 2);
  board.refresh(5.0, cl, 1);
  EXPECT_DOUBLE_EQ(board.age(5.0), 0.0);
  EXPECT_EQ(board.estimate(0, {0, 100}), 50u);
  cl.node(0).cache().insert({50, 100}, 1.0);
  board.refresh(6.0, cl, 1);  // period 0: every refresh rebuilds
  EXPECT_EQ(board.estimate(0, {0, 100}), 100u);
  EXPECT_EQ(board.refreshes(), 2u);
}

TEST(DigestBoard, PeriodBoundsStaleness) {
  Cluster cl(2, 100);
  DigestBoard board(100.0, 100, 10, 2);
  board.refresh(10.0, cl, 1);  // window 0; digests empty
  cl.node(1).cache().insert({0, 100}, 11.0);
  board.refresh(50.0, cl, 1);  // same window: no rebuild, view goes stale
  EXPECT_EQ(board.estimate(1, {0, 100}), 0u);
  EXPECT_DOUBLE_EQ(board.age(50.0), 40.0);
  board.refresh(150.0, cl, 1);  // window 1: rebuild picks up the insert
  EXPECT_EQ(board.estimate(1, {0, 100}), 100u);
  EXPECT_DOUBLE_EQ(board.age(150.0), 0.0);
  EXPECT_EQ(board.refreshes(), 2u);
}

// --- shard host view ------------------------------------------------------

/// Coordinator over ManualPolicy inners, collecting the created instances.
struct ManualShards {
  std::vector<ManualPolicy*> inners;  // creation order: shard 0 first (probe)

  std::unique_ptr<ShardedCoordinator> make(const ShardConfig& cfg) {
    return std::make_unique<ShardedCoordinator>(cfg, [this] {
      auto p = std::make_unique<ManualPolicy>();
      inners.push_back(p.get());
      return p;
    });
  }
};

TEST(ShardHostView, NarrowsNodesAndTranslatesDispatch) {
  SimConfig cfg = tinyConfig(4, 1000, 100);
  cfg.shards = parseShardSpec("2,route=rr,steal=off");
  std::vector<Job> jobs;
  jobs.push_back({0, 0.0, {0, 100}});
  jobs.push_back({1, 1.0, {100, 200}});
  ManualShards shards;
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, fixedSource(jobs), shards.make(cfg.shards), metrics);
  ASSERT_EQ(shards.inners.size(), 2u);

  // Each inner sees a 2-node slice, re-numbered from zero.
  for (ManualPolicy* p : shards.inners) {
    p->arrivalHook = [p](const Job& job) {
      EXPECT_EQ(p->eng().numNodes(), 2);
      EXPECT_EQ(p->eng().config().numNodes, 2);
      EXPECT_EQ(p->eng().cluster().size(), 2);
      ASSERT_FALSE(p->eng().idleNodes().empty());
      p->eng().startRun(p->eng().idleNodes().front(), wholeSubjob(job));
    };
  }
  StopCondition stop;
  stop.completedJobs = 2;
  engine.run(stop);

  // Round-robin routed one job to each shard; shard 1's local node 0 is
  // global node 2.
  ASSERT_EQ(shards.inners[0]->arrivals.size(), 1u);
  ASSERT_EQ(shards.inners[1]->arrivals.size(), 1u);
  EXPECT_EQ(shards.inners[0]->arrivals[0].id, 0u);
  EXPECT_EQ(shards.inners[1]->arrivals[0].id, 1u);
  ASSERT_EQ(shards.inners[1]->finished.size(), 1u);
  EXPECT_EQ(shards.inners[1]->finished[0].first, 0);  // local id, not global 2
  EXPECT_EQ(metrics.jobsInSystem(), 0u);
}

TEST(ShardHostView, SliceCachesAliasTheRealCluster) {
  SimConfig cfg = tinyConfig(4, 1000, 100);
  cfg.shards = parseShardSpec("2,route=rr,steal=off");
  ManualShards shards;
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, fixedSource({}), shards.make(cfg.shards), metrics);
  ASSERT_EQ(shards.inners.size(), 2u);
  // Writing through the real cluster is visible through shard 1's view
  // (global node 2 == local node 0), and vice versa.
  engine.cluster().node(2).cache().insert({0, 42}, 0.0);
  ISchedulerHost& view = shards.inners[1]->eng();
  EXPECT_EQ(view.cluster().node(0).cache().overlapSize({0, 100}), 42u);
  view.cluster().node(1).cache().insert({100, 150}, 0.0);
  EXPECT_EQ(engine.cluster().node(3).cache().overlapSize({100, 200}), 50u);
}

// --- K=1 bit-identity golden pins ----------------------------------------

ExperimentSpec shardQuickSpec(const std::string& policy, double load) {
  ExperimentSpec spec;
  spec.policyName = policy;
  spec.jobsPerHour = load;
  spec.warmupJobs = 30;
  spec.measuredJobs = 90;
  spec.maxJobsInSystem = 4000;  // delayed-family policies hold whole periods
  spec.prewarmCaches = true;
  return spec;
}

TEST(ShardGoldenPins, SingleShardBitIdenticalForEveryPolicy) {
  // The acceptance bar of the sharding subsystem: --shards 1 must change
  // NOTHING. One shard spans every machine, admission is unlimited, lost
  // work forwards to the host's own drain, and no digests or steals touch
  // the decision path — so every reported metric is bit-identical, for all
  // ten policies.
  for (const std::string& policy : policyNames()) {
    ExperimentSpec spec = shardQuickSpec(policy, 1.0);
    const RunResult base = runExperiment(spec);
    spec.sim.shards = parseShardSpec("1");
    const RunResult sharded = runExperiment(spec);
    EXPECT_EQ(base.avgSpeedup, sharded.avgSpeedup) << policy;
    EXPECT_EQ(base.avgWait, sharded.avgWait) << policy;
    EXPECT_EQ(base.avgWaitExDelay, sharded.avgWaitExDelay) << policy;
    EXPECT_EQ(base.cacheHitFraction, sharded.cacheHitFraction) << policy;
    EXPECT_EQ(base.simulatedTime, sharded.simulatedTime) << policy;
    EXPECT_EQ(base.completedJobs, sharded.completedJobs) << policy;
    EXPECT_EQ(base.overloaded, sharded.overloaded) << policy;
    EXPECT_FALSE(base.shards.enabled);
    EXPECT_TRUE(sharded.shards.enabled);
    ASSERT_EQ(sharded.shards.shards.size(), 1u);
    EXPECT_EQ(sharded.shards.steals, 0u);
  }
}

// --- K>1 behaviour --------------------------------------------------------

TEST(ShardedCoordinator, SpreadsWorkAndConservesJobs) {
  // Every arrival is routed to exactly one shard, and steals move jobs
  // between shards one donor / one taker at a time. The engine throws on
  // any double dispatch, so completion alone proves no job ran twice.
  ExperimentSpec spec = shardQuickSpec("out_of_order", 2.5);
  spec.sim.shards = parseShardSpec("4,admit=2,route=rr");
  const RunResult r = runExperiment(spec);
  EXPECT_GE(r.completedJobs, 120u);
  ASSERT_TRUE(r.shards.enabled);
  ASSERT_EQ(r.shards.shards.size(), 4u);
  std::size_t routed = 0;
  std::size_t stolenIn = 0;
  std::size_t stolenOut = 0;
  for (const ShardStats& s : r.shards.shards) {
    routed += s.jobsRouted;
    stolenIn += s.jobsStolenIn;
    stolenOut += s.jobsStolenOut;
    EXPECT_GT(s.jobsRouted, 0u) << "shard " << s.shard << " never routed a job";
    EXPECT_GE(s.peakQueueDepth, 1u);
    EXPECT_GT(s.meanQueueDepth, 0.0);
  }
  EXPECT_GE(routed, r.completedJobs);
  // Steal conservation: every steal has exactly one donor and one taker.
  EXPECT_EQ(stolenIn, r.shards.steals);
  EXPECT_EQ(stolenOut, r.shards.steals);
  EXPECT_GE(r.shards.stealAttempts, r.shards.steals);
}

TEST(ShardedCoordinator, StealOffKeepsQueuesSeparate) {
  ExperimentSpec spec = shardQuickSpec("out_of_order", 2.5);
  spec.sim.shards = parseShardSpec("4,admit=2,route=rr,steal=off");
  const RunResult r = runExperiment(spec);
  ASSERT_TRUE(r.shards.enabled);
  EXPECT_EQ(r.shards.steals, 0u);
  EXPECT_EQ(r.shards.stealAttempts, 0u);
  for (const ShardStats& s : r.shards.shards) {
    EXPECT_EQ(s.jobsStolenIn, 0u);
    EXPECT_EQ(s.jobsStolenOut, 0u);
  }
}

TEST(ShardedCoordinator, DigestStalenessIsMeasured) {
  ExperimentSpec spec = shardQuickSpec("out_of_order", 2.0);
  spec.sim.shards = parseShardSpec("4,digest=7200,admit=2");
  const RunResult r = runExperiment(spec);
  ASSERT_TRUE(r.shards.enabled);
  EXPECT_GT(r.shards.digestAgeSamples, 0u);
  EXPECT_GT(r.shards.digestRefreshes, 0u);
  EXPECT_GT(r.shards.meanDigestAgeSec, 0.0);
  std::uint64_t histTotal = 0;
  for (const std::uint64_t c : r.shards.digestAgeHistogram) histTotal += c;
  EXPECT_EQ(histTotal, r.shards.digestAgeSamples);
  // Fresh digests (period 0) never age.
  spec.sim.shards = parseShardSpec("4,admit=2");
  const RunResult fresh = runExperiment(spec);
  EXPECT_DOUBLE_EQ(fresh.shards.meanDigestAgeSec, 0.0);
}

TEST(ShardedCoordinator, DispatchingAForeignJobThrows) {
  // The ownership invariant: a shard's policy may only dispatch jobs the
  // coordinator routed (or stole) to it. A rogue inner policy dispatching a
  // peer's job must be caught at the view boundary, not silently run.
  SimConfig cfg = tinyConfig(4, 1000, 100);
  cfg.shards = parseShardSpec("2,route=rr,steal=off");
  std::vector<Job> jobs;
  jobs.push_back({0, 0.0, {0, 100}});
  jobs.push_back({1, 1.0, {100, 200}});
  ManualShards shards;
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, fixedSource(jobs), shards.make(cfg.shards), metrics);
  ASSERT_EQ(shards.inners.size(), 2u);
  // Shard 0 holds its job; shard 1 tries to dispatch it.
  ManualPolicy* rogue = shards.inners[1];
  ManualPolicy* owner = shards.inners[0];
  rogue->arrivalHook = [rogue, owner](const Job&) {
    ASSERT_FALSE(owner->arrivals.empty());
    rogue->eng().startRun(0, wholeSubjob(owner->arrivals.front()));
  };
  StopCondition stop;
  stop.completedJobs = 2;
  EXPECT_THROW(engine.run(stop), std::logic_error);
}

/// Inner policy for failure tests: FIFO, one whole job per idle node.
class FifoWholeJobPolicy final : public ISchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo_whole"; }
  void onJobArrival(const Job& job) override {
    queue_.push_back(job.id);
    dispatch();
  }
  void onRunFinished(NodeId, const RunReport&) override { dispatch(); }
  void onNodeUp(NodeId) override { dispatch(); }

 private:
  void dispatch() {
    while (!queue_.empty()) {
      const auto idle = host().idleNodes();
      if (idle.empty()) return;
      const JobId id = queue_.front();
      queue_.pop_front();
      if (host().jobDone(id)) continue;
      const IntervalSet& rem = host().remainingOf(id);
      if (rem.empty()) continue;
      Subjob sj = wholeSubjob(host().job(id));
      sj.range = rem.first();
      host().startRun(idle.front(), sj);
    }
  }
  std::deque<JobId> queue_;
};

TEST(ShardedCoordinator, DrainedShardStealsFromBackloggedPeer) {
  // Deterministic steal: round-robin gives shard 0 three long jobs and
  // shard 1 three short ones. admit=1 holds two of each pending; shard 1
  // drains first and must steal exactly one job from shard 0's backlog
  // (shard 0 admits its own last pending job before a second steal).
  SimConfig cfg = tinyConfig(4, 10000, 1000);
  cfg.shards = parseShardSpec("2,route=rr,admit=1");
  std::vector<Job> jobs;
  for (JobId j = 0; j < 6; ++j) {
    const EventIndex base = static_cast<EventIndex>(j) * 1000;
    const std::uint64_t size = (j % 2 == 0) ? 600 : 50;  // s0 long, s1 short
    jobs.push_back({j, 0.0, {base, base + size}});
  }
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  auto coord = std::make_unique<ShardedCoordinator>(
      cfg.shards, [] { return std::make_unique<FifoWholeJobPolicy>(); });
  ShardedCoordinator* coordPtr = coord.get();
  Engine engine(cfg, fixedSource(jobs), std::move(coord), metrics);
  StopCondition stop;
  stop.completedJobs = 6;
  engine.run(stop);

  EXPECT_EQ(metrics.jobsInSystem(), 0u);
  const ShardReport rep = coordPtr->report();
  EXPECT_EQ(rep.steals, 1u);
  EXPECT_EQ(rep.stealAttempts, 1u);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].jobsStolenOut, 1u);
  EXPECT_EQ(rep.shards[0].jobsStolenIn, 0u);
  EXPECT_EQ(rep.shards[1].jobsStolenIn, 1u);
  EXPECT_EQ(rep.shards[1].jobsStolenOut, 0u);
  EXPECT_EQ(rep.shards[0].jobsRouted, 3u);
  EXPECT_EQ(rep.shards[1].jobsRouted, 3u);
}

TEST(ShardedCoordinator, DeadSliceRehomesPendingJobsToLivePeer) {
  // Kill shard 0's whole slice while it still has un-admitted (pending)
  // jobs: those orphans must move to the live peer and complete there —
  // re-dispatching the killed RUNS alone is not enough.
  SimConfig cfg = tinyConfig(4, 10000, 1000);
  cfg.shards = parseShardSpec("2,route=rr,admit=1,steal=off");
  std::vector<Job> jobs;
  // rr: jobs 0 and 2 -> shard 0, jobs 1 and 3 -> shard 1. admit=1 keeps
  // jobs 2 and 3 pending behind the running ones.
  jobs.push_back({0, 0.0, {0, 600}});
  jobs.push_back({1, 0.0, {600, 1200}});
  jobs.push_back({2, 0.0, {1200, 1800}});
  jobs.push_back({3, 0.0, {1800, 2400}});
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  auto coord = std::make_unique<ShardedCoordinator>(
      cfg.shards, [] { return std::make_unique<FifoWholeJobPolicy>(); });
  ShardedCoordinator* coordPtr = coord.get();
  Engine engine(cfg, fixedSource(jobs), std::move(coord), metrics);
  Engine* eng = &engine;
  engine.at(10.0, [eng] {
    eng->failNode(0);  // machine 0 and 1 = shard 0's whole slice
    eng->failNode(1);
  });
  engine.at(100000.0, [eng] {
    eng->repairNode(0);
    eng->repairNode(1);
  });
  StopCondition stop;
  stop.completedJobs = 4;
  engine.run(stop);

  const ShardReport rep = coordPtr->report();
  EXPECT_EQ(metrics.jobsInSystem(), 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  // Job 2 was pending on the dead shard and moved to shard 1.
  EXPECT_EQ(rep.shards[0].jobsRehomed, 1u);
  EXPECT_EQ(rep.shards[1].jobsRouted + rep.shards[1].jobsStolenIn, 2u);
}

TEST(ShardedCoordinator, FailureDuringStealingLosesNothing) {
  // Regression: stealing and slice failure interleaved. Shard 1 idles and
  // steals from backlogged shard 0; mid-run shard 0's slice dies, rehoming
  // what remains. No job may be lost or double-dispatched (the engine
  // throws on duplicates; completion count catches losses).
  SimConfig cfg = tinyConfig(4, 10000, 1000);
  cfg.shards = parseShardSpec("2,route=rr,admit=1");  // steal on
  std::vector<Job> jobs;
  for (JobId j = 0; j < 8; ++j) {
    const EventIndex base = static_cast<EventIndex>(j) * 600;
    jobs.push_back({j, static_cast<SimTime>(j), {base, base + 500}});
  }
  MetricsCollector metrics(cfg.cost, {0, 0.0});
  auto coord = std::make_unique<ShardedCoordinator>(
      cfg.shards, [] { return std::make_unique<FifoWholeJobPolicy>(); });
  ShardedCoordinator* coordPtr = coord.get();
  Engine engine(cfg, fixedSource(jobs), std::move(coord), metrics);
  Engine* eng = &engine;
  engine.at(30.0, [eng] {
    eng->failNode(0);
    eng->failNode(1);
  });
  engine.at(200000.0, [eng] {
    eng->repairNode(0);
    eng->repairNode(1);
  });
  StopCondition stop;
  stop.completedJobs = 8;
  engine.run(stop);

  EXPECT_EQ(metrics.jobsInSystem(), 0u);
  const ShardReport rep = coordPtr->report();
  std::size_t stolenIn = 0;
  std::size_t stolenOut = 0;
  for (const ShardStats& s : rep.shards) {
    stolenIn += s.jobsStolenIn;
    stolenOut += s.jobsStolenOut;
  }
  EXPECT_EQ(stolenIn, rep.steals);
  EXPECT_EQ(stolenOut, rep.steals);
}

TEST(ShardedCoordinator, ConfigValidatesShardCount) {
  SimConfig cfg = tinyConfig(4, 1000, 100);
  cfg.shards = parseShardSpec("8");  // more shards than machines
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

}  // namespace
}  // namespace ppsched
