// Rng: determinism and distribution moments.
#include "sim/random.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace ppsched {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniformInt(3, 7);
    ASSERT_GE(x, 3u);
    ASSERT_LE(x, 7u);
    sawLo |= (x == 3);
    sawHi |= (x == 7);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ErlangMeanAndVariance) {
  // Erlang(k, lambda): mean k/lambda, variance k/lambda^2. With mean m and
  // shape k, variance = m^2 / k.
  Rng rng(13);
  const int n = 100'000;
  const double mean = 40'000.0;
  const int shape = 4;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.erlang(shape, mean);
    sum += x;
    sumSq += x * x;
  }
  const double m = sum / n;
  const double var = sumSq / n - m * m;
  EXPECT_NEAR(m, mean, mean * 0.02);
  EXPECT_NEAR(var, mean * mean / shape, mean * mean / shape * 0.05);
}

TEST(Rng, ErlangShapeOneIsExponential) {
  Rng rng(17);
  const int n = 50'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.erlang(1, 5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ErlangModeBelowMean) {
  // The paper quotes the mode (30000) of its Erlang(4) job sizes while all
  // derived numbers require mean 40000; check mode ~= 3/4 of the mean via a
  // coarse histogram.
  Rng rng(19);
  std::array<int, 40> hist{};
  const double mean = 40'000.0;
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.erlang(4, mean);
    const auto bucket = static_cast<std::size_t>(x / 4000.0);
    if (bucket < hist.size()) ++hist[bucket];
  }
  const auto modeBucket =
      static_cast<std::size_t>(std::max_element(hist.begin(), hist.end()) - hist.begin());
  const double mode = (static_cast<double>(modeBucket) + 0.5) * 4000.0;
  EXPECT_NEAR(mode, 30'000.0, 4000.0);
}

TEST(Rng, ErlangRejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(rng.erlang(0, 10.0), std::invalid_argument);
  EXPECT_THROW(rng.erlang(4, -1.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  const std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40'000; ++i) ++counts[rng.weightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  const std::array<double, 2> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weightedIndex(zeros), std::invalid_argument);
}

TEST(Rng, ChanceProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.25, 0.01);
}

TEST(DeriveSeed, DistinctPerIndex) {
  const auto a = deriveSeed(42, 0);
  const auto b = deriveSeed(42, 1);
  const auto c = deriveSeed(43, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, deriveSeed(42, 0));  // deterministic
}

TEST(DeriveSeed, DomainsAreDisjointStreams) {
  // Regression: loadSweep, runReplicated and cache prewarm used to share
  // one index namespace with ad-hoc offsets (i, 1000 + i, 7000 + n), so a
  // >=1000-point sweep reused the replication streams. Domain-tagged
  // derivation must keep the streams disjoint across a wide index range.
  constexpr std::uint64_t kBase = 42;
  constexpr std::uint64_t kRange = 20'000;
  std::set<std::uint64_t> seen;
  for (const auto domain : {SeedDomain::Sweep, SeedDomain::Replica, SeedDomain::Prewarm}) {
    for (std::uint64_t i = 0; i < kRange; ++i) {
      EXPECT_TRUE(seen.insert(deriveSeed(kBase, domain, i)).second)
          << "seed collision: domain " << static_cast<std::uint64_t>(domain) << " index " << i;
    }
  }
  // And none of them may alias the legacy un-domained namespace either.
  for (std::uint64_t i = 0; i < kRange; ++i) {
    EXPECT_TRUE(seen.insert(deriveSeed(kBase, i)).second)
        << "domain stream collides with deriveSeed(base, " << i << ")";
  }
}

TEST(DeriveSeed, DomainStreamsAreDeterministic) {
  EXPECT_EQ(deriveSeed(7, SeedDomain::Replica, 3), deriveSeed(7, SeedDomain::Replica, 3));
  EXPECT_NE(deriveSeed(7, SeedDomain::Replica, 3), deriveSeed(7, SeedDomain::Sweep, 3));
  EXPECT_NE(deriveSeed(7, SeedDomain::Replica, 3), deriveSeed(8, SeedDomain::Replica, 3));
}

}  // namespace
}  // namespace ppsched
