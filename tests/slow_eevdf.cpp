// Randomized property harness for the EEVDF virtual-time bookkeeping
// (sched/eevdf.h), mirroring the style of test_placement_property.cpp.
//
// Over long random streams of enqueues, dispatches, refunds and idle
// drains, the EEVDF invariants must hold at every step:
//
//   1. zero-sum lag:       Σ_i lag_i = Σ_i w_i (V - v_i) ≈ 0 over active
//                          accounts (exact by construction here);
//   2. bounded lag:        under continuous competition (no refunds, no
//                          drains) |lag_i| <= one maximal request — the
//                          classic EEVDF theorem; under churn the bound
//                          relaxes by the account's outstanding refunded
//                          service, which is owed to it by design until
//                          the re-enqueued remainder is recharged;
//   3. eligibility:        every dispatched head came from an account with
//                          v_i <= V (+ float eps) *before* the charge;
//   4. determinism:        an identical op stream yields the identical
//                          dispatch sequence;
//   5. conservation:       queued subjob/event counters match the ground
//                          truth maintained by the test.
//
// The harness re-derives eligibility and the lag bounds independently from
// the public accounts() snapshot rather than trusting the queue's
// internals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "sched/eevdf.h"
#include "sim/random.h"

namespace ppsched {
namespace {

using AccountId = std::pair<UserId, int>;  // (user, class) as an orderable key

Subjob sub(JobId job, UserId user, QosClass cls, std::uint64_t events) {
  Subjob sj;
  sj.job = job;
  sj.range = {0, events};
  sj.user = user;
  sj.qos = cls;
  return sj;
}

double weightFor(UserId user, QosClass cls) {
  // Deterministic per-account weights spanning two orders of magnitude.
  return cls == QosClass::Interactive ? 4.0 + static_cast<double>(user % 3)
                                      : 0.25 + 0.5 * static_cast<double>(user % 4);
}

struct InvariantCounters {
  int lagChecks = 0;
  int eligibilityChecks = 0;
  int dispatches = 0;
  int refunds = 0;
  int drains = 0;
};

/// Assert invariants 1, 2 and 5 on the public snapshot. `totalDebt` is the
/// system's refunded-but-not-yet-recharged service (events): the refunded
/// account is owed that much extra deficit by design, and by the zero-sum
/// identity the matching leads spread over the other accounts — so it
/// widens every account's bound. `slackRequests` scales the request term
/// (1 under continuous competition; churn episodes allow 2 for the drift
/// that non-zero-lag departures introduce).
void checkState(const EevdfQueue& q, std::uint64_t expectSubjobs, std::uint64_t expectEvents,
                double totalDebt, double slackRequests, InvariantCounters& c) {
  ASSERT_EQ(q.queuedSubjobs(), expectSubjobs);
  ASSERT_EQ(q.queuedEvents(), expectEvents);
  const double V = q.virtualTime();
  const double request = static_cast<double>(q.maxRequestEvents());
  double sumLag = 0.0;
  double scale = 1.0;  // eps scale: lag terms are O(w * V)
  for (const auto& a : q.accounts()) {
    if (!a.active) {
      ASSERT_EQ(a.lag, 0.0);
      continue;
    }
    sumLag += a.lag;
    scale += std::abs(a.weight * V) + std::abs(a.weight * a.vruntime);
    // Invariant 2: no account's lead or deficit exceeds its bound.
    ASSERT_LE(std::abs(a.lag), slackRequests * request + totalDebt + 1e-6 * scale)
        << "user " << a.key.user << " cls " << static_cast<int>(a.key.cls) << " lag "
        << a.lag << " total debt " << totalDebt << " V " << V << " v " << a.vruntime;
    ++c.lagChecks;
  }
  // Invariant 1: lags cancel exactly (V is their weighted mean).
  ASSERT_NEAR(sumLag, 0.0, 1e-7 * scale);
}

/// One long random episode of enqueue/dispatch/refund/drain churn; records
/// the dispatch order (for determinism checks) into `orderOut` and
/// accumulates non-vacuity counters.
void runEpisode(std::uint64_t seed, InvariantCounters& c, std::string& orderOut) {
  Rng rng(seed);
  EevdfQueue q;
  std::ostringstream order;
  std::uint64_t subjobs = 0;
  std::uint64_t events = 0;
  // Ground truth per account: service charged (refundable) and service
  // refunded but not yet recharged by a later dispatch.
  std::map<AccountId, std::uint64_t> charged;
  std::map<AccountId, std::uint64_t> debt;
  JobId nextJob = 0;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.45) {  // enqueue
      const UserId user = rng.uniformInt(0, 7);
      const QosClass cls = rng.chance(0.4) ? QosClass::Interactive : QosClass::Bulk;
      const std::uint64_t size = rng.uniformInt(1, 5'000);
      q.enqueue(sub(nextJob++, user, cls, size), weightFor(user, cls));
      subjobs += 1;
      events += size;
    } else if (roll < 0.85) {  // dispatch
      // Invariant 3: re-derive the eligible set before the pop and verify
      // the popped account was in it.
      const double V = q.virtualTime();
      std::map<AccountId, double> preV;
      for (const auto& a : q.accounts()) {
        if (a.active) preV[{a.key.user, static_cast<int>(a.key.cls)}] = a.vruntime;
      }
      const auto sj = q.pop();
      if (!sj) continue;
      const AccountId key{sj->user, static_cast<int>(sj->qos)};
      ASSERT_TRUE(preV.contains(key));
      ASSERT_LE(preV[key], V + 1e-9 * (1.0 + std::abs(V)))
          << "ineligible dispatch: v " << preV[key] << " > V " << V;
      ++c.eligibilityChecks;
      ++c.dispatches;
      order << sj->job << ' ';
      subjobs -= 1;
      events -= sj->events();
      charged[key] += sj->events();
      // A dispatch recharges outstanding refunded service, event for event.
      auto d = debt.find(key);
      if (d != debt.end()) d->second -= std::min(d->second, sj->events());
    } else if (roll < 0.95) {  // refund part of a past charge
      if (charged.empty()) continue;
      auto it = charged.begin();
      std::advance(it, static_cast<long>(rng.uniformInt(0, charged.size() - 1)));
      if (it->second == 0) continue;
      const std::uint64_t back = rng.uniformInt(1, it->second);
      q.refund(it->first.first, static_cast<QosClass>(it->first.second), back);
      it->second -= back;
      debt[it->first] += back;
      ++c.refunds;
    } else {  // drain completely: the idle queue must stay consistent
      while (auto sj = q.pop()) {
        order << sj->job << ' ';
        subjobs -= 1;
        events -= sj->events();
        ++c.dispatches;
      }
      ASSERT_TRUE(q.empty());
      debt.clear();  // an idle queue owes nobody anything
      ++c.drains;
    }
    double totalDebt = 0.0;
    for (const auto& [key, owed] : debt) totalDebt += static_cast<double>(owed);
    checkState(q, subjobs, events, totalDebt, /*slackRequests=*/2.0, c);
    if (::testing::Test::HasFatalFailure()) return;
  }
  orderOut = order.str();
}

TEST(EevdfProperty, InvariantsHoldOverRandomChurn) {
  InvariantCounters c;
  std::string order;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    runEpisode(0x5EED'0000 + seed, c, order);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Non-vacuity: the episodes actually exercised every path.
  EXPECT_GT(c.lagChecks, 10'000);
  EXPECT_GT(c.eligibilityChecks, 2'000);
  EXPECT_GT(c.dispatches, 2'000);
  EXPECT_GT(c.refunds, 100);
  EXPECT_GT(c.drains, 10);
}

TEST(EevdfProperty, ClassicLagBoundUnderContinuousCompetition) {
  // The textbook EEVDF guarantee needs its hypothesis: every account stays
  // backlogged (no drains, no refunds, no joins after the start). Then no
  // account's lead or deficit ever exceeds one maximal request.
  InvariantCounters c;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(0xC1A5'51C0 + seed);
    EevdfQueue q;
    constexpr UserId kUsers = 6;
    std::uint64_t subjobs = 0;
    std::uint64_t events = 0;
    JobId next = 0;
    auto classOf = [](UserId u) {
      return u % 2 == 0 ? QosClass::Interactive : QosClass::Bulk;
    };
    std::map<UserId, std::uint64_t> backlog;  // queued subjobs per account
    for (int i = 0; i < 500 * kUsers; ++i) {
      // Top up: weighted service drains heavy accounts faster, so keep every
      // account backlogged — the hypothesis of the classic bound.
      for (UserId u = 0; u < kUsers; ++u) {
        while (backlog[u] < 2) {
          const std::uint64_t size = rng.uniformInt(1, 5'000);
          q.enqueue(sub(next++, u, classOf(u), size), weightFor(u, classOf(u)));
          backlog[u] += 1;
          subjobs += 1;
          events += size;
        }
      }
      const auto sj = q.pop();
      ASSERT_TRUE(sj.has_value());
      backlog[sj->user] -= 1;
      subjobs -= 1;
      events -= sj->events();
      checkState(q, subjobs, events, /*totalDebt=*/0.0, /*slackRequests=*/1.0, c);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(c.lagChecks, 10'000);
}

TEST(EevdfProperty, DispatchOrderDeterministicForFixedSeed) {
  InvariantCounters c1;
  InvariantCounters c2;
  std::string a;
  std::string b;
  runEpisode(0xD15'7A7C4ULL, c1, a);
  runEpisode(0xD15'7A7C4ULL, c2, b);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(EevdfProperty, EqualWeightsNeverStarveAnAccount) {
  // With equal weights and bounded request sizes, an account with queued
  // work is served within (#accounts * one round) dispatches — here pinned
  // loosely: over a long backlog drain no account waits more than
  // 4 * accounts dispatches between consecutive services.
  Rng rng(20260809);
  EevdfQueue q;
  constexpr int kUsers = 6;
  constexpr int kPerUser = 40;
  JobId next = 0;
  for (int round = 0; round < kPerUser; ++round) {
    for (UserId u = 0; u < kUsers; ++u) {
      q.enqueue(sub(next++, u, QosClass::Bulk, rng.uniformInt(500, 1'500)), 1.0);
    }
  }
  std::map<UserId, int> sinceServed;
  while (auto sj = q.pop()) {
    for (auto& [user, gap] : sinceServed) ++gap;
    sinceServed[sj->user] = 0;
    for (const auto& [user, gap] : sinceServed) {
      ASSERT_LE(gap, 4 * kUsers) << "user " << user << " starved";
    }
  }
}

}  // namespace
}  // namespace ppsched
