// RealtimeHost: the wall-clock counterpart of the simulator (§2.3's
// "runs both on the simulated and on the target system" claim).
//
// Timing assertions are deliberately loose (OS scheduling jitter); the
// tests pin down completion, bookkeeping, cache effects, and that the SAME
// policy objects drive both hosts.
#include "runtime/realtime_host.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "test_support.h"

namespace ppsched {
namespace {

using namespace std::chrono_literals;

SimConfig rtConfig(int nodes) {
  SimConfig cfg = ppsched::testing::tinyConfig(nodes, 1'000'000, 50'000);
  return cfg;
}

TEST(RealtimeHost, Validation) {
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  EXPECT_THROW(RealtimeHost(cfg, nullptr, m), std::invalid_argument);
  RealtimeOptions bad;
  bad.timeScale = 0.0;
  EXPECT_THROW(RealtimeHost(cfg, makePolicy("farm"), m, bad), std::invalid_argument);
}

TEST(RealtimeHost, CompletesOneJobUnderFarm) {
  SimConfig cfg = rtConfig(2);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 100'000.0;  // 800 simulated s ~= 8 wall ms
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  const JobId id = host.submit({0, 1000});
  ASSERT_TRUE(host.drain(5000ms));
  EXPECT_TRUE(host.jobDone(id));
  EXPECT_EQ(host.completedJobs(), 1u);
  const auto& rec = m.record(id);
  EXPECT_GT(rec.processingTime(), 0.0);
}

TEST(RealtimeHost, WallClockRoughlyMatchesScaledCost) {
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 20'000.0;  // 8000 sim s -> ~400 wall ms
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  host.submit({0, 10'000});  // 10000 x 0.8 = 8000 simulated seconds
  ASSERT_TRUE(host.drain(5000ms));
  const auto& rec = m.record(0);
  // Simulated processing time within 25% of the model's 8000 s.
  EXPECT_GT(rec.processingTime(), 8000.0 * 0.95);
  EXPECT_LT(rec.processingTime(), 8000.0 * 1.25);
}

TEST(RealtimeHost, CachesDataLikeTheSimulator) {
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 200'000.0;
  RealtimeHost host(cfg, makePolicy("cache_oriented"), m, opt);
  host.submit({0, 2000});
  ASSERT_TRUE(host.drain(5000ms));
  EXPECT_TRUE(host.cluster().node(0).cache().containsRange({0, 2000}));

  // A repeat job hits the cache.
  host.submit({0, 2000});
  ASSERT_TRUE(host.drain(5000ms));
  const RunResult r = m.finalize(host.now());
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 0.5);
  // And runs ~3x faster than the cold pass.
  EXPECT_LT(m.record(1).processingTime(), m.record(0).processingTime() * 0.6);
}

TEST(RealtimeHost, SamePolicyObjectsServeManyJobs) {
  SimConfig cfg = rtConfig(3);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 400'000.0;
  RealtimeHost host(cfg, makePolicy("out_of_order"), m, opt);
  // Phase 1: four distinct segments, fully drained (so their data is
  // deterministically cached before the repeats arrive).
  for (int i = 0; i < 4; ++i) {
    host.submit({static_cast<EventIndex>(i * 100'000),
                 static_cast<EventIndex>(i * 100'000 + 3000)});
  }
  ASSERT_TRUE(host.drain(10'000ms));
  // Phase 2: eight repeats over the same segments.
  for (int i = 0; i < 8; ++i) {
    host.submit({static_cast<EventIndex>((i % 4) * 100'000),
                 static_cast<EventIndex>((i % 4) * 100'000 + 3000)});
  }
  ASSERT_TRUE(host.drain(10'000ms));
  EXPECT_EQ(host.completedJobs(), 12u);
  const RunResult r = m.finalize(host.now());
  // 8 of 12 passes run over cached data: hit fraction ~2/3.
  EXPECT_GT(r.cacheHitFraction, 0.5);
}

TEST(RealtimeHost, SplittingPolicyUsesAllNodes) {
  SimConfig cfg = rtConfig(4);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 400'000.0;
  RealtimeHost host(cfg, makePolicy("splitting"), m, opt);
  host.submit({0, 40'000});
  ASSERT_TRUE(host.drain(10'000ms));
  const auto& rec = m.record(0);
  // 40000 x 0.8 = 32000 sim s serial; on 4 nodes it must take well under
  // half of that (loose: OS jitter).
  EXPECT_LT(rec.processingTime(), 32'000.0 * 0.5);
}

TEST(RealtimeHost, DelayedPolicyTimersFire) {
  SimConfig cfg = rtConfig(2);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 400'000.0;  // a 1000 sim-s period ~= 2.5 wall ms
  PolicyParams params;
  params.periodDelay = 1000.0;
  params.stripeEvents = 1000;
  RealtimeHost host(cfg, makePolicy("delayed", params), m, opt);
  host.submit({0, 2000});
  host.submit({50'000, 52'000});
  ASSERT_TRUE(host.drain(10'000ms));
  EXPECT_EQ(host.completedJobs(), 2u);
  // Both jobs carry the period's scheduling delay.
  EXPECT_GT(m.record(0).schedulingDelay, 0.0);
}

TEST(RealtimeHost, OutOfOrderPreemptionWorksAgainstWallClock) {
  // A cached job arriving while a cold job runs must preempt it and finish
  // first — the Table 3 mechanism exercised against live executors.
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 40'000.0;  // cold job ~8000 sim s ~= 200 wall ms
  RealtimeHost host(cfg, makePolicy("out_of_order"), m, opt);
  host.cluster().node(0).cache().insert({900'000, 901'000}, 0.0);
  const JobId cold = host.submit({0, 10'000});
  // Let the cold run begin, then submit the cached job.
  for (int i = 0; i < 200 && host.idleNodes().size() == 1; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  const JobId hot = host.submit({900'000, 901'000});
  ASSERT_TRUE(host.drain(10'000ms));
  EXPECT_LT(m.record(hot).completion, m.record(cold).completion);
  // The cold job still accounts for every one of its events exactly once.
  EXPECT_TRUE(host.remainingOf(cold).empty());
}

TEST(RealtimeHost, FailNodeKillsRunAndDefaultPathRedispatches) {
  SimConfig cfg = rtConfig(2);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 20'000.0;  // 8000 sim s ~= 400 wall ms: time to interfere
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  const JobId id = host.submit({0, 10'000});
  for (int i = 0; i < 400 && host.idleNodes().size() == 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_FALSE(host.isIdle(0) && host.isIdle(1));
  host.failNode(0);
  EXPECT_FALSE(host.isUp(0));
  EXPECT_FALSE(host.isIdle(0));
  EXPECT_THROW(host.startRun(0, {id, {0, 10}, 0.0, false}), std::logic_error);
  // The default onNodeDown re-dispatches onto node 1 and the job finishes.
  ASSERT_TRUE(host.drain(15'000ms));
  EXPECT_TRUE(host.jobDone(id));
  const RunResult r = m.finalize(host.now());
  EXPECT_EQ(r.nodeFailures, 1u);
  // A run may or may not have been in flight on node 0 at the kill.
  EXPECT_LE(r.lostRuns, 1u);
  EXPECT_TRUE(host.isUp(1));
  host.repairNode(0);
  EXPECT_TRUE(host.isUp(0));
}

TEST(RealtimeHost, RepairedNodeRejoinsService) {
  // Single node: fail it mid-run, verify the job stalls, repair, drain.
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 20'000.0;
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  const JobId id = host.submit({0, 10'000});
  for (int i = 0; i < 400 && !host.idleNodes().empty(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  host.failNode(0);
  EXPECT_FALSE(host.drain(200ms));  // nowhere to run: cannot finish
  EXPECT_FALSE(host.jobDone(id));
  host.repairNode(0);
  ASSERT_TRUE(host.drain(15'000ms));
  EXPECT_TRUE(host.jobDone(id));
  EXPECT_EQ(m.record(id).lostRuns, 1);
}

TEST(RealtimeHost, ScriptedActionsFireInSimTimeOrder) {
  SimConfig cfg = rtConfig(1);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 100'000.0;
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  std::mutex mu;
  std::vector<int> fired;
  host.at(host.now() + 2000.0, [&] { std::lock_guard g(mu); fired.push_back(2); });
  host.at(host.now() + 500.0, [&] { std::lock_guard g(mu); fired.push_back(1); });
  const JobId id = host.submit({0, 4000});
  ASSERT_TRUE(host.drain(10'000ms));
  EXPECT_TRUE(host.jobDone(id));
  for (int i = 0; i < 400; ++i) {
    std::lock_guard g(mu);
    if (fired.size() == 2) break;
    std::this_thread::sleep_for(1ms);
  }
  std::lock_guard g(mu);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(RealtimeHost, NetworkModelPricesTertiaryStreamsStatically) {
  // With the network model on, this host prices a run's network pieces once
  // at start against the active stream count (static share approximation).
  SimConfig cfg = rtConfig(2);
  cfg.network.enabled = true;
  cfg.network.tertiaryIngressBytesPerSec = 0.5e6;
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 100'000.0;  // 1400 sim s ~= 14 wall ms
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  // A first joining stream gets the whole half-MB/s ingress: 1.2 s transfer
  // + 0.2 s CPU. Local reads never touch the network.
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary), 1.4);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, kNoNode, DataSource::LocalCache), 0.26);
  const JobId id = host.submit({0, 1000});
  ASSERT_TRUE(host.drain(10'000ms));
  EXPECT_TRUE(host.jobDone(id));
  // 1000 events at 1.4 s/event (would be 0.8 on an unconstrained network);
  // the lower bound is what discriminates, the upper one is loose against
  // OS scheduling jitter.
  const auto& rec = m.record(id);
  EXPECT_GT(rec.processingTime(), 1400.0 * 0.95);
  EXPECT_LT(rec.processingTime(), 1400.0 * 2.0);
  // The finished run released its share: a new stream sees the full link.
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary), 1.4);
}

TEST(RealtimeHost, NetworkModelRemoteEstimateRespectsNic) {
  SimConfig cfg = rtConfig(2);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 6e6;  // slower than the 10 MB/s remote disk
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeHost host(cfg, makePolicy("farm"), m);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, 1, DataSource::RemoteCache), 0.3);
}

TEST(RealtimeHost, EstimateReflectsConcurrentlyOpenStreams) {
  // Two tertiary runs in flight: a third joining stream would make three
  // shares of the 1.5 MB/s ingress, 0.5 MB/s each, below the 1 MB/s device
  // rate. Remote-read estimates skip the ingress and stay flat.
  SimConfig cfg = rtConfig(3);
  cfg.network.enabled = true;
  cfg.network.tertiaryIngressBytesPerSec = 1.5e6;
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 10'000.0;
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(2, kNoNode, DataSource::Tertiary), 0.8);
  host.submit({0, 4000});
  host.submit({50'000, 54'000});
  for (int i = 0; i < 2000 && host.idleNodes().size() != 1; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(host.idleNodes().size(), 1u);  // both runs still open
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(2, kNoNode, DataSource::Tertiary), 1.4);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(2, 1, DataSource::RemoteCache), 0.26);
  ASSERT_TRUE(host.drain(10'000ms));
  // Both streams released their shares: a new one sees the full ingress.
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(2, kNoNode, DataSource::Tertiary), 0.8);
}

TEST(RealtimeHost, RemoteEstimateChargesUplinkOnlyAcrossSwitches) {
  SimConfig cfg = rtConfig(4);
  cfg.network.enabled = true;
  cfg.network.uplinkBytesPerSec = 2e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeHost host(cfg, makePolicy("farm"), m);
  // Same switch: the 10 MB/s remote disk binds. Across switches (or with
  // an unknown source, priced conservatively): the 2 MB/s uplink binds.
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, 1, DataSource::RemoteCache), 0.26);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, 2, DataSource::RemoteCache), 0.5);
  EXPECT_DOUBLE_EQ(host.estimatedSecPerEvent(0, kNoNode, DataSource::RemoteCache), 0.5);
  EXPECT_TRUE(host.sameSwitch(0, 1));
  EXPECT_FALSE(host.sameSwitch(1, 2));
}

TEST(RealtimeHost, RankPlacementsPrefersSameSwitchSource) {
  // Node 3 (other switch) caches more, but node 1 serves without touching
  // the thin uplink — the ranking puts node 1 first, mirroring the
  // simulator's placement API on the wall-clock host.
  SimConfig cfg = rtConfig(4);
  cfg.network.enabled = true;
  cfg.network.uplinkBytesPerSec = 2e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeHost host(cfg, makePolicy("farm"), m);
  host.cluster().node(1).cache().insert({0, 2000}, 0.0);
  host.cluster().node(3).cache().insert({0, 3000}, 0.0);
  const auto ranked = host.rankPlacements(0, {0, 3000});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].source, 1);
  EXPECT_TRUE(ranked[0].sameSwitch);
  EXPECT_DOUBLE_EQ(ranked[0].secPerEvent, 0.26);
  EXPECT_EQ(ranked[0].cachedEvents, 2000u);
  EXPECT_EQ(ranked[1].source, 3);
  EXPECT_FALSE(ranked[1].sameSwitch);
  EXPECT_DOUBLE_EQ(ranked[1].secPerEvent, 0.5);
}

TEST(RealtimeHost, IdleAndRunningViews) {
  SimConfig cfg = rtConfig(2);
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 2000.0;  // slow: 800 sim s = 400 wall ms, observable
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  EXPECT_EQ(host.idleNodes().size(), 2u);
  host.submit({0, 1000});
  // Give the scheduler thread a moment to place the job.
  for (int i = 0; i < 200 && host.idleNodes().size() == 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(host.idleNodes().size(), 1u);
  const auto view = host.running(0);
  EXPECT_TRUE(view.active);
  EXPECT_EQ(view.subjob.job, 0u);
  ASSERT_TRUE(host.drain(5000ms));
  EXPECT_TRUE(host.isIdle(0));
}

}  // namespace
}  // namespace ppsched
