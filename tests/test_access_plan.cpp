// The access-plan API (core/host.h): planAccess ranking properties, the
// RunOptions shim's bit-identity with explicit plans, and prefetch
// end-to-end (warmed caches are local at dispatch).
#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "runtime/realtime_host.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

// --- shim vs plan bit-identity ---------------------------------------------

struct ShimRun {
  SimTime endedAt = 0.0;
  double processing = 0.0;
  std::uint64_t replicatedEvents = 0;
  double avgSpeedup = 0.0;
};

template <typename Dispatch>
ShimRun runOnce(bool network, Dispatch dispatch) {
  SimConfig cfg = tinyConfig(3, 100'000, 10'000);
  if (network) {
    cfg.network.enabled = true;
    cfg.network.nicBytesPerSec = 6e6;
    cfg.network.nodesPerSwitch = 2;
    cfg.network.uplinkBytesPerSec = 2e6;
    cfg.finalize();
  }
  Harness h(cfg, {{0, 0.0, {0, 2000}}});
  h.engine->cluster().node(2).cache().insert({0, 2000}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) { dispatch(*h.engine, j); };
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  return {h.engine->now(), h.metrics.record(0).processingTime(), r.replicatedEvents,
          r.avgSpeedup};
}

void expectShimMatchesPlan(bool network) {
  const ShimRun shim = runOnce(network, [](Engine& e, const Job& j) {
    e.startRun(1, whole(j), RunOptions{.remoteFrom = 2, .replicationThreshold = 1});
  });
  const ShimRun plan = runOnce(network, [](Engine& e, const Job& j) {
    AccessPlan p;
    p.source = DataSource::RemoteCache;
    p.servingNode = 2;
    p.replicationThreshold = 1;
    e.startRun(1, whole(j), p);
  });
  // Bit-identical, not approximately equal: the shim is a pure rewrite.
  EXPECT_EQ(shim.endedAt, plan.endedAt);
  EXPECT_EQ(shim.processing, plan.processing);
  EXPECT_EQ(shim.replicatedEvents, plan.replicatedEvents);
  EXPECT_EQ(shim.avgSpeedup, plan.avgSpeedup);
  EXPECT_GT(shim.replicatedEvents, 0u);  // the scenario exercised replication
}

TEST(AccessPlanShim, BitIdenticalToExplicitPlan) { expectShimMatchesPlan(false); }

TEST(AccessPlanShim, BitIdenticalToExplicitPlanWithNetworkModel) {
  expectShimMatchesPlan(true);
}

TEST(AccessPlanShim, DefaultPlanEqualsDefaultOptions) {
  const ShimRun opts = runOnce(false, [](Engine& e, const Job& j) {
    e.startRun(1, whole(j), RunOptions{});
  });
  const ShimRun plan = runOnce(false, [](Engine& e, const Job& j) {
    e.startRun(1, whole(j));  // default AccessPlan
  });
  EXPECT_EQ(opts.endedAt, plan.endedAt);
  EXPECT_EQ(opts.replicatedEvents, 0u);
}

// --- planAccess properties --------------------------------------------------

TEST(PlanAccess, RandomizedRankingProperties) {
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 60; ++iter) {
    const int machines = 2 + static_cast<int>(rng() % 5);
    SimConfig cfg = tinyConfig(machines, 100'000, 20'000);
    cfg.cpusPerNode = 1 + static_cast<int>(rng() % 2);
    cfg.network.enabled = true;
    cfg.network.nicBytesPerSec = 6e6;
    cfg.network.nodesPerSwitch = 2;
    const double uplinks[] = {0.0, 2e6, 5e6};
    cfg.network.uplinkBytesPerSec = uplinks[rng() % 3];
    cfg.finalize();
    Harness h(cfg, {});
    Cluster& cl = h.engine->cluster();
    const int slots = cfg.totalCpus();
    // Random cache contents.
    for (int n = 0; n < slots; ++n) {
      const int extents = static_cast<int>(rng() % 3);
      for (int e = 0; e < extents; ++e) {
        const std::uint64_t lo = rng() % 90'000;
        cl.node(n).cache().insert({lo, lo + 1 + rng() % 9'000}, 0.0);
      }
    }
    // Maybe take one machine down.
    if (rng() % 2 == 0) h.engine->failNode(static_cast<NodeId>(rng() % slots));
    NodeId dst = static_cast<NodeId>(rng() % slots);
    if (!cl.node(dst).isUp()) continue;  // planning for a dead CPU is moot
    const std::uint64_t lo = rng() % 80'000;
    const EventRange range{lo, lo + 1 + rng() % 15'000};

    AccessGoal goal;
    goal.replicationThreshold = 3;
    goal.replicaCongestionFactor = 1.5;
    const std::vector<AccessPlan> plans = h.engine->planAccess(dst, range, goal);

    // Never empty; the last plan is always the tertiary fallback.
    ASSERT_FALSE(plans.empty());
    EXPECT_EQ(plans.back().source, DataSource::Tertiary);
    EXPECT_EQ(plans.back().servingNode, kNoNode);

    // Deterministic for fixed state: a second call returns the same list.
    const std::vector<AccessPlan> again = h.engine->planAccess(dst, range, goal);
    ASSERT_EQ(plans.size(), again.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].source, again[i].source);
      EXPECT_EQ(plans[i].servingNode, again[i].servingNode);
      EXPECT_EQ(plans[i].replicationThreshold, again[i].replicationThreshold);
      EXPECT_EQ(plans[i].secPerEvent, again[i].secPerEvent);
      EXPECT_EQ(plans[i].cachedEvents, again[i].cachedEvents);
    }

    // Ranked cheapest-first, and the front never loses to any single
    // mechanism: tertiary streaming or any viable remote source.
    for (std::size_t i = 0; i + 1 < plans.size(); ++i) {
      EXPECT_LE(plans[i].secPerEvent, plans[i + 1].secPerEvent);
    }
    const double tertiarySec =
        h.engine->estimatedSecPerEvent(dst, kNoNode, DataSource::Tertiary);
    EXPECT_LE(plans.front().secPerEvent, tertiarySec);
    for (NodeId n = 0; n < slots; ++n) {
      if (n == dst || !cl.node(n).isUp()) continue;
      if (cl.node(n).sharesCacheWith(cl.node(dst))) continue;
      if (cl.cachedOn(n, range).empty()) continue;
      EXPECT_LE(plans.front().secPerEvent,
                h.engine->estimatedSecPerEvent(dst, n, DataSource::RemoteCache));
    }

    // Remote plans only name viable serving nodes: up, not dst, not a
    // machine sibling (their cache is local content), actually caching
    // part of the range.
    for (const AccessPlan& p : plans) {
      if (p.source != DataSource::RemoteCache) continue;
      ASSERT_NE(p.servingNode, kNoNode);
      EXPECT_NE(p.servingNode, dst);
      EXPECT_TRUE(cl.node(p.servingNode).isUp());
      EXPECT_FALSE(cl.node(p.servingNode).sharesCacheWith(cl.node(dst)));
      EXPECT_GT(p.cachedEvents, 0u);
      EXPECT_EQ(p.cachedEvents, cl.cachedOn(p.servingNode, range).size());
    }
  }
}

TEST(PlanAccess, NetOffFrontMatchesLegacyCacheHeuristic) {
  SimConfig cfg = tinyConfig(4, 100'000, 20'000);
  Harness h(cfg, {});
  Cluster& cl = h.engine->cluster();
  cl.node(2).cache().insert({0, 5000}, 0.0);
  cl.node(3).cache().insert({0, 2000}, 0.0);
  AccessGoal goal;
  goal.replicationThreshold = 3;
  const auto plans = h.engine->planAccess(0, {0, 5000}, goal);
  ASSERT_GE(plans.size(), 2u);
  EXPECT_EQ(plans.front().source, DataSource::RemoteCache);
  EXPECT_EQ(plans.front().servingNode, cl.bestCacheNode({0, 5000}));
  EXPECT_EQ(plans.front().replicationThreshold, 3);
  // When dst itself holds the most content there is no remote plan. The
  // direct cache mutation below bypasses the engine, so its state epoch
  // does not advance and the planAccess memo would serve the pre-mutation
  // plans — a harness-only situation (every production cache mutation goes
  // through a host and bumps the epoch); turn the memo off for it.
  h.engine->setPlanMemoization(false);
  cl.node(0).cache().insert({0, 6000}, 0.0);
  const auto local = h.engine->planAccess(0, {0, 5000}, goal);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local.front().source, DataSource::Tertiary);
}

TEST(PlanAccess, PrefetchIntentRanksByPureTransferCost) {
  SimConfig cfg = tinyConfig(4, 100'000, 20'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 6e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.network.uplinkBytesPerSec = 2e6;
  cfg.finalize();
  Harness h(cfg, {});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);  // same switch as 0
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);  // across the uplink
  AccessGoal goal;
  goal.intent = AccessGoal::Intent::Prefetch;
  goal.deadline = 1234.5;
  const auto plans = h.engine->planAccess(0, {0, 4000}, goal);
  ASSERT_EQ(plans.size(), 3u);
  // Same-switch source at the 6 MB/s NIC beats the 2 MB/s uplink path and
  // the 1 MB/s tertiary stream; no CPU cost folded anywhere.
  EXPECT_EQ(plans[0].servingNode, 1);
  EXPECT_DOUBLE_EQ(plans[0].secPerEvent, 0.1);
  EXPECT_EQ(plans[1].servingNode, 3);
  EXPECT_DOUBLE_EQ(plans[1].secPerEvent, 0.3);
  EXPECT_EQ(plans[2].source, DataSource::Tertiary);
  EXPECT_DOUBLE_EQ(plans[2].secPerEvent, 0.6);
  for (const AccessPlan& p : plans) EXPECT_DOUBLE_EQ(p.prefetchDeadline, 1234.5);
}

// --- planAccess memoization -------------------------------------------------

TEST(PlanMemo, MemoizedCallsBitIdenticalToEnumeration) {
  // The memo is an optimization, never a semantic: for any state, the
  // memoized result equals fresh enumeration, including across engine
  // mutations (cache churn, failures) that must invalidate it.
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 20; ++iter) {
    SimConfig cfg = tinyConfig(2 + static_cast<int>(rng() % 4), 100'000, 20'000);
    Harness h(cfg, {});
    Cluster& cl = h.engine->cluster();
    for (int n = 0; n < cl.size(); ++n) {
      const std::uint64_t lo = rng() % 80'000;
      cl.node(n).cache().insert({lo, lo + 1 + rng() % 15'000}, 0.0);
    }
    EXPECT_GT(h.engine->planEpoch(), 0u);
    AccessGoal goal;
    goal.replicationThreshold = 3;
    const NodeId dst = static_cast<NodeId>(rng() % cl.size());
    const std::uint64_t lo = rng() % 70'000;
    const EventRange range{lo, lo + 1 + rng() % 20'000};

    auto compare = [&] {
      const auto memoized = h.engine->planAccess(dst, range, goal);  // warms the memo
      const auto cached = h.engine->planAccess(dst, range, goal);    // memo hit
      h.engine->setPlanMemoization(false);
      EXPECT_EQ(h.engine->planEpoch(), 0u);
      const auto fresh = h.engine->planAccess(dst, range, goal);
      h.engine->setPlanMemoization(true);
      ASSERT_EQ(memoized.size(), fresh.size());
      ASSERT_EQ(cached.size(), fresh.size());
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(memoized[i].source, fresh[i].source);
        EXPECT_EQ(memoized[i].servingNode, fresh[i].servingNode);
        EXPECT_EQ(memoized[i].secPerEvent, fresh[i].secPerEvent);
        EXPECT_EQ(memoized[i].cachedEvents, fresh[i].cachedEvents);
        EXPECT_EQ(cached[i].servingNode, fresh[i].servingNode);
        EXPECT_EQ(cached[i].secPerEvent, fresh[i].secPerEvent);
      }
    };
    compare();
    // Mutate through the engine (failure wipes a cache and bumps the
    // epoch); the memo must not serve the pre-failure plans.
    h.engine->failNode(static_cast<NodeId>(rng() % cl.size()));
    if (cl.node(dst).isUp()) compare();
  }
}

TEST(PlanMemo, InvalidatedByCacheEffectsOfRuns) {
  SimConfig cfg = tinyConfig(3, 100'000, 10'000);
  Harness h(cfg, {{0, 0.0, {0, 2000}}});
  AccessGoal goal;
  goal.replicationThreshold = 3;
  // Nothing cached yet: tertiary is the only plan. Ask twice so the second
  // answer comes from the memo.
  const auto before = h.engine->planAccess(1, {0, 2000}, goal);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before.front().source, DataSource::Tertiary);
  const auto again = h.engine->planAccess(1, {0, 2000}, goal);
  ASSERT_EQ(again.size(), 1u);
  // Run the job on node 2: the tertiary stream fills node 2's cache, which
  // must invalidate the memoized answer for (1, {0,2000}).
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(2, whole(j)); };
  h.engine->run({});
  const auto after = h.engine->planAccess(1, {0, 2000}, goal);
  ASSERT_GE(after.size(), 2u);
  EXPECT_EQ(after.front().source, DataSource::RemoteCache);
  EXPECT_EQ(after.front().servingNode, 2);
}

TEST(PlanMemo, DistinctGoalsDoNotCollide) {
  // The memo key covers every goal field that shapes the plans; goals
  // differing only in threshold or intent must hit distinct entries.
  SimConfig cfg = tinyConfig(3, 100'000, 20'000);
  Harness h(cfg, {});
  h.engine->cluster().node(2).cache().insert({0, 5000}, 0.0);
  AccessGoal g3;
  g3.replicationThreshold = 3;
  AccessGoal g5;
  g5.replicationThreshold = 5;
  const auto p3 = h.engine->planAccess(0, {0, 5000}, g3);
  const auto p5 = h.engine->planAccess(0, {0, 5000}, g5);
  const auto p3again = h.engine->planAccess(0, {0, 5000}, g3);
  ASSERT_GE(p3.size(), 2u);
  EXPECT_EQ(p3.front().replicationThreshold, 3);
  EXPECT_EQ(p5.front().replicationThreshold, 5);
  EXPECT_EQ(p3again.front().replicationThreshold, 3);
  AccessGoal pf = g3;
  pf.intent = AccessGoal::Intent::Prefetch;
  pf.deadline = 99.0;
  const auto pp = h.engine->planAccess(0, {0, 5000}, pf);
  ASSERT_FALSE(pp.empty());
  EXPECT_DOUBLE_EQ(pp.front().prefetchDeadline, 99.0);
  const auto p3third = h.engine->planAccess(0, {0, 5000}, g3);
  EXPECT_DOUBLE_EQ(p3third.front().prefetchDeadline, 0.0);
}

TEST(PlanMemo, WholeRunsBitIdenticalWithMemoOnAndOff) {
  // End-to-end differential: a full simulation of a planAccess-heavy policy
  // lands on identical metrics with the memo on and off.
  auto run = [](const char* policy, bool memo) {
    SimConfig cfg = tinyConfig(4, 100'000, 20'000);
    std::mt19937 rng(7);
    std::vector<Job> jobs;
    for (JobId j = 0; j < 40; ++j) {
      const std::uint64_t lo = rng() % 60'000;
      jobs.push_back({j, j * 400.0, {lo, lo + 5000 + rng() % 20'000}});
    }
    MetricsCollector m(cfg.cost, {0, 0.0});
    Engine e(cfg, testing::fixedSource(jobs), makePolicy(policy), m);
    e.setPlanMemoization(memo);
    e.run({});
    return m.finalize(e.now());
  };
  for (const char* policy : {"out_of_order", "replication"}) {
    const RunResult on = run(policy, true);
    const RunResult off = run(policy, false);
    EXPECT_EQ(on.simulatedTime, off.simulatedTime) << policy;
    EXPECT_EQ(on.avgSpeedup, off.avgSpeedup) << policy;
    EXPECT_EQ(on.avgWait, off.avgWait) << policy;
    EXPECT_EQ(on.cacheHitFraction, off.cacheHitFraction) << policy;
    EXPECT_EQ(on.completedJobs, off.completedJobs) << policy;
    EXPECT_EQ(on.replicatedEvents, off.replicatedEvents) << policy;
  }
}

// --- prefetch end-to-end ----------------------------------------------------

TEST(Prefetch, WarmedCacheIsLocalAtDispatch) {
  SimConfig cfg = tinyConfig(2, 100'000, 10'000);
  Harness h(cfg, {{0, 2000.0, {0, 1000}}});
  h.engine->at(0.0, [&] { h.engine->prefetch(0, {0, 1000}); });
  h.policy->arrivalHook = [&](const Job& j) { h.engine->startRun(0, whole(j)); };
  h.engine->run({});
  // The warming transfer (1000 x 0.6 s tertiary) finished by t = 600, long
  // before the job arrives: the run reads its whole range locally (0.26
  // s/event) instead of streaming from tertiary (0.8 s/event).
  EXPECT_TRUE(h.engine->cluster().node(0).cache().containsRange({0, 1000}));
  EXPECT_DOUBLE_EQ(h.metrics.record(0).processingTime(), 260.0);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.prefetchedEvents, 1000u);
  EXPECT_GE(r.prefetchOps, 1u);
}

TEST(Prefetch, RemotePlanCopiesFromServingNode) {
  SimConfig cfg = tinyConfig(2, 100'000, 10'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 6e6;
  cfg.finalize();
  Harness h(cfg, {});
  h.engine->cluster().node(0).cache().insert({0, 2000}, 0.0);
  AccessPlan plan;
  plan.source = DataSource::RemoteCache;
  plan.servingNode = 0;
  h.engine->at(0.0, [&] { h.engine->prefetch(1, {0, 2000}, plan); });
  h.engine->run({});
  EXPECT_TRUE(h.engine->cluster().node(1).cache().containsRange({0, 2000}));
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.prefetchedEvents, 2000u);
}

TEST(Prefetch, DelayedVariantBeatsPlainDelayedOnColdCaches) {
  // The strategy-matrix headline in miniature: from empty caches, warming
  // stripes during the accumulation window raises the hit rate and the
  // speedup over plain delayed scheduling.
  auto run = [](const char* policy) {
    ExperimentSpec spec;
    spec.policyName = policy;
    spec.policyParams.periodDelay = 6 * units::hour;
    spec.sim.numNodes = 10;
    spec.sim.network.enabled = true;
    spec.sim.network.nicBytesPerSec = 125e6;
    spec.sim.network.nodesPerSwitch = 5;
    spec.sim.network.uplinkBytesPerSec = 12.5e6;
    spec.sim.finalize();
    spec.jobsPerHour = 0.9;
    spec.warmupJobs = 0;  // cold: measure from the first job
    spec.measuredJobs = 100;
    spec.maxJobsInSystem = 200;
    return runExperiment(spec);
  };
  const RunResult plain = run("delayed");
  const RunResult warmed = run("prefetch_delayed");
  ASSERT_FALSE(plain.overloaded);
  ASSERT_FALSE(warmed.overloaded);
  EXPECT_GT(warmed.cacheHitFraction, plain.cacheHitFraction + 0.1);
  EXPECT_GT(warmed.avgSpeedup, plain.avgSpeedup);
  EXPECT_GT(warmed.prefetchedEvents, 0u);
  EXPECT_EQ(plain.prefetchedEvents, 0u);
}

// --- wall-clock host re-pricing ---------------------------------------------

TEST(RealtimeReprice, OpenStreamsSlowWhenASecondOpens) {
  // Two 1000-event tertiary jobs sharing a 1 MB/s ingress. The first run is
  // priced alone (0.8 s/event) but must be re-priced to the half share
  // (1.2 s transfer + 0.2 s CPU) once the second opens; with the old
  // static pricing it would finish at ~800 simulated seconds.
  SimConfig cfg = tinyConfig(2, 1'000'000, 50'000);
  cfg.network.enabled = true;
  cfg.network.tertiaryIngressBytesPerSec = 1e6;
  cfg.finalize();
  MetricsCollector m(cfg.cost, {0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 100'000.0;  // 1400 sim s ~= 14 wall ms
  RealtimeHost host(cfg, makePolicy("farm"), m, opt);
  const JobId a = host.submit({0, 1000});
  const JobId b = host.submit({500'000, 501'000});
  ASSERT_TRUE(host.drain(std::chrono::milliseconds(10'000)));
  EXPECT_TRUE(host.jobDone(a));
  EXPECT_TRUE(host.jobDone(b));
  // Both runs overlapped for essentially their whole duration, so both
  // reflect the shared rate. Lower bounds discriminate against the old
  // price-once behaviour; upper bounds are loose (OS jitter).
  for (const JobId id : {a, b}) {
    EXPECT_GT(m.record(id).processingTime(), 1400.0 * 0.85) << "job " << id;
    EXPECT_LT(m.record(id).processingTime(), 1400.0 * 2.0) << "job " << id;
  }
}

}  // namespace
}  // namespace ppsched
