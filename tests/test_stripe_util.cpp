// Stripe point list and meta-subjob aggregation (Table 4 machinery).
#include "sched/stripe_util.h"

#include <gtest/gtest.h>

namespace ppsched {
namespace {

Subjob mk(JobId job, EventIndex b, EventIndex e, SimTime arrival) {
  Subjob sj;
  sj.job = job;
  sj.range = {b, e};
  sj.jobArrival = arrival;
  return sj;
}

TEST(StripePoints, EmptyInput) {
  EXPECT_TRUE(buildStripePoints({}, 100).empty());
  EXPECT_TRUE(buildMetaSubjobs({}, 100).empty());
}

TEST(StripePoints, RejectsZeroStripe) {
  EXPECT_THROW(buildStripePoints({mk(0, 0, 10, 0.0)}, 0), std::invalid_argument);
}

TEST(StripePoints, NoGapExceedsStripeSize) {
  const auto points = buildStripePoints({mk(0, 0, 10'000, 0.0)}, 1000);
  ASSERT_GE(points.size(), 2u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i] - points[i - 1], 1000u);
  }
  EXPECT_EQ(points.front(), 0u);
  EXPECT_EQ(points.back(), 10'000u);
}

TEST(StripePoints, ClosePointsAreThinned) {
  // Boundaries at 0, 10, 20, 1000: the 10 and 20 points create sub-half
  // stripes and must be dropped.
  const auto points =
      buildStripePoints({mk(0, 0, 10, 0.0), mk(1, 10, 20, 0.0), mk(2, 20, 1000, 0.0)}, 500);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i] - points[i - 1], 250u);
  }
  EXPECT_EQ(points.back(), 1000u);
}

TEST(MetaSubjobs, OverlappingSegmentsShareAStripe) {
  const auto metas =
      buildMetaSubjobs({mk(0, 0, 900, 5.0), mk(1, 100, 1000, 7.0)}, 5000);
  // One stripe (everything below the stripe size), holding both subjobs.
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].subjobs.size(), 2u);
  EXPECT_DOUBLE_EQ(metas[0].earliestArrival, 5.0);
}

TEST(MetaSubjobs, CutsPreserveTotalWorkPerJob) {
  const std::vector<Subjob> cold{mk(0, 0, 12'000, 1.0), mk(1, 6000, 20'000, 2.0)};
  const auto metas = buildMetaSubjobs(cold, 2000);
  std::uint64_t job0 = 0, job1 = 0;
  for (const auto& meta : metas) {
    for (const Subjob& sj : meta.subjobs) {
      EXPECT_TRUE(meta.stripe.intersect(sj.range) == sj.range)
          << "piece escapes its stripe";
      (sj.job == 0 ? job0 : job1) += sj.events();
    }
  }
  EXPECT_EQ(job0, 12'000u);
  EXPECT_EQ(job1, 14'000u);
}

TEST(MetaSubjobs, SortedByEarliestArrival) {
  const auto metas = buildMetaSubjobs(
      {mk(0, 50'000, 54'000, 9.0), mk(1, 0, 4000, 3.0), mk(2, 100'000, 104'000, 6.0)}, 5000);
  ASSERT_EQ(metas.size(), 3u);
  EXPECT_DOUBLE_EQ(metas[0].earliestArrival, 3.0);
  EXPECT_DOUBLE_EQ(metas[1].earliestArrival, 6.0);
  EXPECT_DOUBLE_EQ(metas[2].earliestArrival, 9.0);
}

TEST(MetaSubjobs, DisjointSegmentsDoNotShareStripes) {
  const auto metas = buildMetaSubjobs({mk(0, 0, 1000, 0.0), mk(1, 50'000, 51'000, 0.0)}, 2000);
  ASSERT_EQ(metas.size(), 2u);
  EXPECT_EQ(metas[0].subjobs.size(), 1u);
  EXPECT_EQ(metas[1].subjobs.size(), 1u);
}

// Property sweep: for several stripe sizes, every stripe is bounded and the
// union of pieces equals the union of inputs.
class StripeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StripeSweep, PartitionInvariants) {
  const std::uint64_t stripe = GetParam();
  std::vector<Subjob> cold;
  for (JobId i = 0; i < 20; ++i) {
    const EventIndex b = i * 3137;
    cold.push_back(mk(i, b, b + 2000 + (i % 7) * 800, static_cast<SimTime>(i)));
  }
  IntervalSet input;
  std::uint64_t inputEvents = 0;
  for (const Subjob& sj : cold) {
    input.insert(sj.range);
    inputEvents += sj.events();
  }

  const auto metas = buildMetaSubjobs(cold, stripe);
  IntervalSet covered;
  std::uint64_t pieceEvents = 0;
  for (const auto& meta : metas) {
    EXPECT_LE(meta.stripe.size(), stripe);
    for (const Subjob& sj : meta.subjobs) {
      covered.insert(sj.range);
      pieceEvents += sj.events();
    }
  }
  EXPECT_EQ(covered, input);
  EXPECT_EQ(pieceEvents, inputEvents);  // no event lost or duplicated per job
}

INSTANTIATE_TEST_SUITE_P(StripeSizes, StripeSweep,
                         ::testing::Values(200u, 1000u, 5000u, 25'000u));

}  // namespace
}  // namespace ppsched
