// DelayedScheduler (§5, Table 4): periods, stripes, meta-subjobs.
#include "sched/delayed.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ppsched {
namespace {

using testing::fixedSource;
using testing::tinyConfig;

struct DelayedHarness {
  DelayedHarness(SimConfig cfg, std::vector<Job> jobs, Duration period,
                 std::uint64_t stripe = 5000)
      : metrics(cfg.cost, {0, 0.0}) {
    DelayedParams params;
    params.stripeEvents = stripe;
    auto p = std::make_unique<DelayedScheduler>(params, std::make_unique<FixedDelay>(period));
    policy = p.get();
    engine = std::make_unique<Engine>(cfg, fixedSource(std::move(jobs)), std::move(p), metrics);
  }
  MetricsCollector metrics;
  DelayedScheduler* policy = nullptr;
  std::unique_ptr<Engine> engine;
};

TEST(Delayed, ConstructionValidation) {
  DelayedParams p;
  EXPECT_THROW(DelayedScheduler(p, nullptr), std::invalid_argument);
  p.stripeEvents = 0;
  EXPECT_THROW(DelayedScheduler(p, std::make_unique<FixedDelay>(10.0)), std::invalid_argument);
}

TEST(Delayed, JobsWaitForPeriodEnd) {
  DelayedHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 1000}}}, 500.0);
  h.engine->run({});
  // Arrival at 0, scheduled at period end t=500.
  EXPECT_NEAR(h.metrics.record(0).firstStart, 500.0, 1e-6);
  // The period delay is attributed so Fig 5/6 can subtract it.
  EXPECT_NEAR(h.metrics.record(0).schedulingDelay, 500.0, 1e-6);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_NEAR(r.avgWait, 500.0, 1e-6);
  EXPECT_NEAR(r.avgWaitExDelay, 0.0, 1e-6);
}

TEST(Delayed, BatchScheduledTogether) {
  DelayedHarness h(tinyConfig(2, 1'000'000, 100'000),
                   {{0, 0.0, {0, 1000}}, {1, 100.0, {5000, 6000}}, {2, 200.0, {9000, 9500}}},
                   600.0);
  h.engine->run({});
  for (JobId i = 0; i < 3; ++i) {
    EXPECT_GE(h.metrics.record(i).firstStart, 600.0) << "job " << i;
  }
  EXPECT_EQ(h.metrics.completedJobs(), 3u);
}

TEST(Delayed, ZeroDelaySchedulesImmediately) {
  DelayedHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 10.0, {0, 1000}}}, 0.0);
  h.engine->run({});
  EXPECT_NEAR(h.metrics.record(0).firstStart, 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.metrics.record(0).schedulingDelay, 0.0);
}

TEST(Delayed, OverlappingColdJobsLoadTertiaryOnce) {
  // Three jobs over the same cold segment, one period: the stripe is
  // fetched from tertiary storage once and reused from cache.
  DelayedHarness h(tinyConfig(1, 1'000'000, 100'000),
                   {{0, 0.0, {0, 3000}}, {1, 10.0, {0, 3000}}, {2, 20.0, {0, 3000}}},
                   100.0, /*stripe=*/5000);
  h.engine->run({});
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_EQ(r.tertiaryEvents, 3000u);  // not 9000
  EXPECT_NEAR(r.cacheHitFraction, 2.0 / 3.0, 0.01);
}

TEST(Delayed, StripeSizeBoundsSubjobs) {
  // A single 10'000-event cold job with stripe 2000 becomes 5 meta-subjobs;
  // with two nodes they run in parallel.
  DelayedHarness big(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 10'000}}}, 100.0,
                     /*stripe=*/2000);
  big.engine->run({});
  // 5 stripes over 2 nodes: 3 stripes on one node = 3*2000*0.8 = 4800 s.
  EXPECT_NEAR(big.engine->now(), 100.0 + 4800.0, 1.0);

  DelayedHarness coarse(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 10'000}}}, 100.0,
                        /*stripe=*/25'000);
  coarse.engine->run({});
  // One stripe: a single node does everything.
  EXPECT_NEAR(coarse.engine->now(), 100.0 + 8000.0, 1.0);
}

TEST(Delayed, SmallerStripesImproveParallelism) {
  const SimConfig cfg = tinyConfig(4, 1'000'000, 100'000);
  std::vector<Job> jobs{{0, 0.0, {0, 20'000}}};
  DelayedHarness fine(cfg, jobs, 50.0, 500);
  fine.engine->run({});
  DelayedHarness coarse(cfg, jobs, 50.0, 25'000);
  coarse.engine->run({});
  EXPECT_LT(fine.engine->now(), coarse.engine->now());
}

TEST(Delayed, CachedPiecesGoToTheirNodes) {
  DelayedHarness h(tinyConfig(2, 1'000'000, 100'000), {{0, 0.0, {0, 2000}}}, 100.0);
  h.engine->cluster().node(1).cache().insert({0, 2000}, 0.0);
  h.engine->run({});
  // Fully cached on node 1: 2000 x 0.26 after the period.
  EXPECT_NEAR(h.engine->now(), 100.0 + 520.0, 1e-6);
  const RunResult r = h.metrics.finalize(h.engine->now());
  EXPECT_DOUBLE_EQ(r.cacheHitFraction, 1.0);
}

TEST(Delayed, MetaSubjobsOrderedByEarliestArrival) {
  // Two cold stripes; the one whose job arrived first must run first even
  // though the other was submitted in the same period.
  DelayedHarness h(tinyConfig(1, 1'000'000, 100'000),
                   {{0, 0.0, {50'000, 53'000}}, {1, 50.0, {0, 3000}}}, 200.0);
  h.engine->run({});
  EXPECT_LT(h.metrics.record(0).firstStart, h.metrics.record(1).firstStart);
}

TEST(Delayed, ConsecutivePeriodsKeepDraining) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 12; ++i) {
    jobs.push_back({i, i * 300.0, {i * 5000, i * 5000 + 2000}});
  }
  DelayedHarness h(tinyConfig(2, 1'000'000, 100'000), jobs, 1000.0);
  h.engine->run({});
  EXPECT_EQ(h.metrics.completedJobs(), 12u);
  EXPECT_EQ(h.policy->accumulatedJobs(), 0u);
  EXPECT_EQ(h.policy->metaQueueSize(), 0u);
}

TEST(Delayed, GridAlignedPeriodsUseGlobalBoundaries) {
  // With grid alignment, a job arriving at t=130 into 500 s periods is
  // scheduled at the t=500 boundary, not at 130+500.
  SimConfig cfg = tinyConfig(1, 1'000'000, 100'000);
  MetricsCollector m(cfg.cost, {0, 0.0});
  DelayedParams params;
  params.stripeEvents = 5000;
  params.alignPeriodsToGrid = true;
  Engine e(cfg, testing::fixedSource({{0, 130.0, {0, 1000}}}),
           std::make_unique<DelayedScheduler>(params, std::make_unique<FixedDelay>(500.0)),
           m);
  e.run({});
  EXPECT_NEAR(m.record(0).firstStart, 500.0, 1e-6);
  EXPECT_NEAR(m.record(0).schedulingDelay, 370.0, 1e-6);
}

TEST(Delayed, ObservedLoadTracksArrivalRate) {
  std::vector<Job> jobs;
  for (JobId i = 0; i < 50; ++i) {
    jobs.push_back({i, i * 1800.0, {i * 1000, i * 1000 + 100}});  // 2 jobs/hour
  }
  DelayedHarness h(tinyConfig(4, 1'000'000, 100'000), jobs, 3600.0);
  h.engine->run({});
  EXPECT_NEAR(h.policy->observedLoadJobsPerHour(), 2.0, 0.3);
}

}  // namespace
}  // namespace ppsched
