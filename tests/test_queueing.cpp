// Analytic queueing models (Erlang-B/C, Allen–Cunneen M/G/m approximation).
#include "core/queueing.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace ppsched {
namespace {

TEST(Queueing, ErlangBKnownValues) {
  // B(0, a) = 1 for any load; B(m, 0) = 0 for m >= 1.
  EXPECT_DOUBLE_EQ(erlangB(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(erlangB(3, 0.0), 0.0);
  // Classic: a = 1 Erlang, 1 server -> B = a/(1+a) = 0.5.
  EXPECT_DOUBLE_EQ(erlangB(1, 1.0), 0.5);
  // a = 2, m = 2: B = (2^2/2) / (1 + 2 + 2) = 2/5.
  EXPECT_NEAR(erlangB(2, 2.0), 0.4, 1e-12);
}

TEST(Queueing, ErlangBMonotonicInServers) {
  double prev = 1.0;
  for (int m = 1; m <= 20; ++m) {
    const double b = erlangB(m, 5.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Queueing, ErlangCKnownValues) {
  // Single server: C = rho.
  EXPECT_NEAR(erlangC(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(erlangC(1, 0.9), 0.9, 1e-12);
  // C is always >= B.
  EXPECT_GE(erlangC(5, 4.0), erlangB(5, 4.0));
}

TEST(Queueing, ErlangCRequiresStability) {
  EXPECT_THROW(erlangC(2, 2.0), std::invalid_argument);
  EXPECT_THROW(erlangC(2, 3.0), std::invalid_argument);
  EXPECT_THROW(erlangC(0, 0.5), std::invalid_argument);
}

TEST(Queueing, MM1WaitMatchesClosedForm) {
  // M/M/1: Wq = rho/(mu - lambda) * ... = rho * S / (1 - rho).
  QueueModel q;
  q.servers = 1;
  q.meanServiceSec = 10.0;
  q.arrivalRatePerSec = 0.05;  // rho = 0.5
  EXPECT_NEAR(q.meanWaitMMm(), 0.5 * 10.0 / 0.5, 1e-9);
}

TEST(Queueing, ApproxEqualsExactForExponentialService) {
  QueueModel q;
  q.servers = 3;
  q.meanServiceSec = 10.0;
  q.arrivalRatePerSec = 0.2;
  q.serviceScv = 1.0;  // exponential: approximation is exact
  EXPECT_DOUBLE_EQ(q.meanWaitApprox(), q.meanWaitMMm());
}

TEST(Queueing, ErlangServiceWaitsLessThanExponential) {
  QueueModel q = farmQueueModel(10, 1.0, 32'000.0, 4);
  EXPECT_DOUBLE_EQ(q.serviceScv, 0.25);
  EXPECT_LT(q.meanWaitApprox(), q.meanWaitMMm());
  // (1 + 1/4)/2 = 0.625 of the M/M/m wait.
  EXPECT_NEAR(q.meanWaitApprox() / q.meanWaitMMm(), 0.625, 1e-12);
}

TEST(Queueing, FarmModelOfThePaper) {
  // 10 nodes, 32000 s jobs: max ~1.125 jobs/hour.
  QueueModel q = farmQueueModel(10, 1.0, 32'000.0, 4);
  EXPECT_NEAR(q.utilization(), 32'000.0 / 36'000.0, 1e-9);
  EXPECT_TRUE(q.stable());
  EXPECT_NEAR(q.maxArrivalRatePerSec() * units::hour, 1.125, 1e-9);

  QueueModel over = farmQueueModel(10, 1.2, 32'000.0, 4);
  EXPECT_FALSE(over.stable());
  EXPECT_THROW(over.meanWaitMMm(), std::invalid_argument);
}

TEST(Queueing, WaitExplodesNearSaturation) {
  const double w1 = farmQueueModel(10, 0.9, 32'000.0, 4).meanWaitApprox();
  const double w2 = farmQueueModel(10, 1.05, 32'000.0, 4).meanWaitApprox();
  const double w3 = farmQueueModel(10, 1.12, 32'000.0, 4).meanWaitApprox();
  EXPECT_LT(w1, w2);
  EXPECT_LT(w2, w3);
  EXPECT_GT(w3, 10.0 * units::hour);  // near-saturation waits measured in hours
}

}  // namespace
}  // namespace ppsched
