// JobTrace: record / save / load / replay.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsched {
namespace {

std::vector<Job> sampleJobs() {
  return {
      {0, 100.0, {10, 50}},
      {1, 250.5, {0, 30}},
      {2, 300.0, {100, 400}},
  };
}

TEST(Trace, ConstructAndSummarize) {
  JobTrace t(sampleJobs());
  EXPECT_EQ(t.size(), 3u);
  const auto s = t.summarize();
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_DOUBLE_EQ(s.span, 200.0);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 100.0);
  EXPECT_NEAR(s.meanEvents, (40.0 + 30.0 + 300.0) / 3.0, 1e-9);
}

TEST(Trace, EmptySummary) {
  JobTrace t;
  const auto s = t.summarize();
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 0.0);
}

TEST(Trace, RejectsUnsortedArrivals) {
  std::vector<Job> jobs = sampleJobs();
  std::swap(jobs[0].arrival, jobs[2].arrival);
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RejectsNonIncreasingIds) {
  std::vector<Job> jobs = sampleJobs();
  jobs[1].id = 0;
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RejectsEmptyRanges) {
  std::vector<Job> jobs = sampleJobs();
  jobs[1].range = {5, 5};
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RoundTripsThroughCsv) {
  JobTrace t(sampleJobs());
  std::stringstream ss;
  t.write(ss);
  const JobTrace back = JobTrace::parse(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.jobs()[i], t.jobs()[i]);
  }
}

TEST(Trace, ParseSkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n0,1.5,10,20\n# trailing comment\n1,2.5,30,40\n");
  const JobTrace t = JobTrace::parse(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.jobs()[0].range, (EventRange{10, 20}));
}

TEST(Trace, ParseRejectsMalformedLines) {
  std::stringstream ss("0,1.5,10\n");
  EXPECT_THROW(JobTrace::parse(ss), std::runtime_error);
  std::stringstream ss2("0;1.5;10;20\n");
  EXPECT_THROW(JobTrace::parse(ss2), std::runtime_error);
}

TEST(Trace, RecordFromGenerator) {
  WorkloadParams p;
  p.jobsPerHour = 1.0;
  WorkloadGenerator g(p, 77);
  const JobTrace t = JobTrace::record(g, 50);
  EXPECT_EQ(t.size(), 50u);
  const auto s = t.summarize();
  EXPECT_GT(s.meanEvents, 0.0);
}

TEST(Trace, ReplaySourceReturnsJobsThenExhausts) {
  TraceSource src{JobTrace(sampleJobs())};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto j = src.next();
    ASSERT_TRUE(j);
    EXPECT_EQ(j->id, i);
  }
  EXPECT_FALSE(src.next());
  EXPECT_FALSE(src.next());  // stays exhausted
}

TEST(Trace, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/ppsched_trace_test.csv";
  JobTrace t(sampleJobs());
  t.save(path);
  const JobTrace back = JobTrace::load(path);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.jobs()[2].range, (EventRange{100, 400}));
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(JobTrace::load("/nonexistent/path/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace ppsched
