// JobTrace: record / save / load / replay.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "workload/in2p3.h"

namespace ppsched {
namespace {

std::vector<Job> sampleJobs() {
  return {
      {0, 100.0, {10, 50}},
      {1, 250.5, {0, 30}},
      {2, 300.0, {100, 400}},
  };
}

TEST(Trace, ConstructAndSummarize) {
  JobTrace t(sampleJobs());
  EXPECT_EQ(t.size(), 3u);
  const auto s = t.summarize();
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_DOUBLE_EQ(s.span, 200.0);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 100.0);
  EXPECT_NEAR(s.meanEvents, (40.0 + 30.0 + 300.0) / 3.0, 1e-9);
}

TEST(Trace, EmptySummary) {
  JobTrace t;
  const auto s = t.summarize();
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 0.0);
}

TEST(Trace, RejectsUnsortedArrivals) {
  std::vector<Job> jobs = sampleJobs();
  std::swap(jobs[0].arrival, jobs[2].arrival);
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RejectsNonIncreasingIds) {
  std::vector<Job> jobs = sampleJobs();
  jobs[1].id = 0;
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RejectsEmptyRanges) {
  std::vector<Job> jobs = sampleJobs();
  jobs[1].range = {5, 5};
  EXPECT_THROW(JobTrace{jobs}, std::runtime_error);
}

TEST(Trace, RoundTripsThroughCsv) {
  JobTrace t(sampleJobs());
  std::stringstream ss;
  t.write(ss);
  const JobTrace back = JobTrace::parse(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.jobs()[i], t.jobs()[i]);
  }
}

TEST(Trace, ParseSkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n0,1.5,10,20\n# trailing comment\n1,2.5,30,40\n");
  const JobTrace t = JobTrace::parse(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.jobs()[0].range, (EventRange{10, 20}));
}

TEST(Trace, ParseRejectsMalformedLines) {
  std::stringstream ss("0,1.5,10\n");
  EXPECT_THROW(JobTrace::parse(ss), std::runtime_error);
  std::stringstream ss2("0;1.5;10;20\n");
  EXPECT_THROW(JobTrace::parse(ss2), std::runtime_error);
}

TEST(Trace, RecordFromGenerator) {
  WorkloadParams p;
  p.jobsPerHour = 1.0;
  WorkloadGenerator g(p, 77);
  const JobTrace t = JobTrace::record(g, 50);
  EXPECT_EQ(t.size(), 50u);
  const auto s = t.summarize();
  EXPECT_GT(s.meanEvents, 0.0);
}

TEST(Trace, ReplaySourceReturnsJobsThenExhausts) {
  TraceSource src{JobTrace(sampleJobs())};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto j = src.next();
    ASSERT_TRUE(j);
    EXPECT_EQ(j->id, i);
  }
  EXPECT_FALSE(src.next());
  EXPECT_FALSE(src.next());  // stays exhausted
}

TEST(Trace, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/ppsched_trace_test.csv";
  JobTrace t(sampleJobs());
  t.save(path);
  const JobTrace back = JobTrace::load(path);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.jobs()[2].range, (EventRange{100, 400}));
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(JobTrace::load("/nonexistent/path/trace.csv"), std::runtime_error);
}

// --------------------------------------------------------------------------
// Strict parsing: every malformed input throws with the offending line.

/// Parse `csv` expecting failure; returns the error message ("" = no throw).
std::string parseError(const std::string& csv) {
  std::stringstream ss(csv);
  try {
    JobTrace::parse(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(TraceParse, NonMonotonicArrivalsNameTheLine) {
  const std::string msg = parseError("# header\n0,100,10,50\n1,50,10,50\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arrivals not sorted"), std::string::npos) << msg;
}

TEST(TraceParse, DuplicateIdThrows) {
  const std::string msg = parseError("0,100,10,50\n0,200,10,50\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ids not strictly increasing"), std::string::npos) << msg;
}

TEST(TraceParse, DecreasingIdThrows) {
  const std::string msg = parseError("5,100,10,50\n3,200,10,50\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(TraceParse, BeginAtOrPastEndThrows) {
  EXPECT_NE(parseError("0,100,50,10\n").find("begin_event"), std::string::npos);
  EXPECT_NE(parseError("0,100,50,50\n").find("begin_event"), std::string::npos);
}

TEST(TraceParse, NonFiniteArrivalThrows) {
  EXPECT_NE(parseError("0,nan,10,50\n").find("finite"), std::string::npos);
  EXPECT_NE(parseError("0,inf,10,50\n").find("finite"), std::string::npos);
}

TEST(TraceParse, NegativeFieldsThrow) {
  EXPECT_NE(parseError("0,-5,10,50\n").find(">= 0"), std::string::npos);
  EXPECT_NE(parseError("-1,5,10,50\n").find("unsigned"), std::string::npos);
  EXPECT_NE(parseError("0,5,-10,50\n").find("unsigned"), std::string::npos);
}

TEST(TraceParse, OverflowingFieldsThrow) {
  // One past uint64 max.
  EXPECT_NE(parseError("0,5,10,18446744073709551616\n").find("overflow"), std::string::npos);
  // Past the 32-bit JobId space (and the reserved kNoJob sentinel itself).
  EXPECT_NE(parseError("4294967295,5,10,50\n").find("out of range"), std::string::npos);
  EXPECT_NE(parseError("0,5,10,50,4294967295\n").find("out of range"), std::string::npos);
}

TEST(TraceParse, TrailingGarbageThrows) {
  EXPECT_NE(parseError("0,5,10,50x\n").find("malformed"), std::string::npos);
  EXPECT_NE(parseError("0,5,10,50,7x\n").find("malformed"), std::string::npos);
  EXPECT_NE(parseError("0,5e,10,50\n").find("malformed"), std::string::npos);
  EXPECT_NE(parseError("0,5,10,50,7,8\n").find("unknown class label"), std::string::npos);
  EXPECT_NE(parseError("0,5,10,50,7,bulk,9\n").find("too many fields"), std::string::npos);
}

TEST(TraceParse, EmptyFieldThrows) {
  EXPECT_NE(parseError("0,,10,50\n").find("empty"), std::string::npos);
  EXPECT_NE(parseError("0,5,10,\n").find("empty"), std::string::npos);
}

// --------------------------------------------------------------------------
// v2 format: optional per-line user column.

TEST(TraceParse, UserColumnParsedAndOptionalPerLine) {
  std::stringstream ss("0,100,10,50,7\n1,200,10,50\n2,300,10,50,7\n3,400,10,50,9\n");
  const JobTrace t = JobTrace::parse(ss);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.jobs()[0].user, 7u);
  EXPECT_EQ(t.jobs()[1].user, kNoUser);
  const auto s = t.summarize();
  EXPECT_EQ(s.users, 2u);  // 7 and 9; the untagged job does not count
}

TEST(TraceParse, UserColumnRoundTrips) {
  JobTrace t({{0, 100.0, {10, 50}, 3}, {1, 250.5, {0, 30}}, {2, 300.0, {100, 400}, 3}});
  std::stringstream ss;
  t.write(ss);
  const JobTrace back = JobTrace::parse(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(back.jobs()[i], t.jobs()[i]);
}

TEST(TraceParse, LargeArrivalsRoundTripLosslessly) {
  // A year-long log: arrivals ~3e7 s with sub-second structure would be
  // destroyed by default 6-digit formatting.
  JobTrace t({{0, 31536000.125, {10, 50}}, {1, 31536001.25, {0, 30}}});
  std::stringstream ss;
  t.write(ss);
  const JobTrace back = JobTrace::parse(ss);
  EXPECT_DOUBLE_EQ(back.jobs()[0].arrival, 31536000.125);
  EXPECT_DOUBLE_EQ(back.jobs()[1].arrival, 31536001.25);
}

TEST(TraceParse, FuzzRoundTripV1) {
  // Fixed-seed fuzz: save -> parse -> save must be a byte-identical fixed
  // point, and the parsed jobs must equal the originals.
  WorkloadParams p;
  p.jobsPerHour = 3.0;
  WorkloadGenerator g(p, 20240607);
  const JobTrace t = JobTrace::record(g, 500);
  std::stringstream once;
  t.write(once);
  const JobTrace back = JobTrace::parse(once);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(back.jobs()[i], t.jobs()[i]);
  std::stringstream again;
  back.write(again);
  EXPECT_EQ(once.str(), again.str());
}

TEST(TraceParse, FuzzRoundTripV2) {
  SkewedWorkloadParams p;
  p.jobsPerHour = 3.0;
  p.diurnalAmplitude = 0.5;
  SkewedWorkloadGenerator g(p, 20240608);
  const JobTrace t = JobTrace::record(g, 500);
  ASSERT_GT(t.summarize().users, 1u);  // the tags actually exercise v2
  std::stringstream once;
  t.write(once);
  const JobTrace back = JobTrace::parse(once);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(back.jobs()[i], t.jobs()[i]);
  std::stringstream again;
  back.write(again);
  EXPECT_EQ(once.str(), again.str());
}

// --------------------------------------------------------------------------
// v3 format: optional per-line QoS class column (requires the user column).

TEST(TraceParse, ClassColumnParsedAndDefaultsToBulk) {
  std::stringstream ss("0,100,10,50,7,interactive\n1,200,10,50,8,bulk\n2,300,10,50,8\n");
  const JobTrace t = JobTrace::parse(ss);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.jobs()[0].qos, QosClass::Interactive);
  EXPECT_EQ(t.jobs()[1].qos, QosClass::Bulk);
  EXPECT_EQ(t.jobs()[2].qos, QosClass::Bulk);  // absent column = bulk
}

TEST(TraceParse, UnknownClassLabelNamesTheLine) {
  const std::string msg = parseError("0,100,10,50,7,interactive\n1,200,10,50,7,gold\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown class label 'gold'"), std::string::npos) << msg;
  EXPECT_NE(parseError("0,100,10,50,7,\n").find("empty class field"), std::string::npos);
}

TEST(TraceParse, ClassOnUserlessLineNamesTheMissingColumn) {
  // A v1/v2-shaped line carrying a class label where the user id belongs.
  const std::string msg = parseError("0,100,10,50,interactive\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("requires a user column"), std::string::npos) << msg;
}

TEST(TraceParse, ConflictingClassesForOneUserNameTheLine) {
  const std::string msg = parseError("0,100,10,50,7,interactive\n1,200,10,50,7,bulk\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("user 7 has conflicting classes: 'interactive' then 'bulk'"),
            std::string::npos)
      << msg;
  // An absent class column means bulk, so a later interactive tag conflicts.
  const std::string msg2 = parseError("0,100,10,50,7\n1,200,10,50,7,interactive\n");
  EXPECT_NE(msg2.find("conflicting classes: 'bulk' then 'interactive'"), std::string::npos)
      << msg2;
}

TEST(TraceParse, ClassWithoutUserTagRejected) {
  Job j{0, 0.0, {0, 30}};
  j.qos = QosClass::Interactive;  // interactive but untagged: no account key
  EXPECT_THROW(JobTrace({j}), std::runtime_error);
  std::stringstream out;
  EXPECT_THROW(writeTraceLine(out, j), std::runtime_error);
}

TEST(TraceParse, FuzzRoundTripV3) {
  // Fixed-seed fuzz over class-tagged jobs: save -> parse -> save must be a
  // byte-identical fixed point. Bulk jobs write no class column, so a
  // class-free trace stays a valid v1/v2 file.
  SkewedWorkloadParams p;
  p.jobsPerHour = 3.0;
  p.groups = 6;
  p.interactiveGroups = 2;
  SkewedWorkloadGenerator g(p, 20240609);
  const JobTrace t = JobTrace::record(g, 500);
  std::size_t interactive = 0;
  for (const Job& j : t.jobs()) interactive += j.qos == QosClass::Interactive ? 1 : 0;
  ASSERT_GT(interactive, 0u);              // the tags actually exercise v3
  ASSERT_LT(interactive, t.size());        // ... on a mixed trace
  std::stringstream once;
  t.write(once);
  EXPECT_NE(once.str().find(",interactive\n"), std::string::npos);
  const JobTrace back = JobTrace::parse(once);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(back.jobs()[i], t.jobs()[i]);
  std::stringstream again;
  back.write(again);
  EXPECT_EQ(once.str(), again.str());
}

// --------------------------------------------------------------------------
// Sharing: copies and sources must not duplicate the job vector.

TEST(TraceShare, CopiesShareStorage) {
  JobTrace t(sampleJobs());
  const JobTrace copy = t;                        // O(1), shares jobs
  EXPECT_EQ(&copy.jobs(), &t.jobs());             // same vector instance
  EXPECT_EQ(copy.shared().get(), t.shared().get());
}

TEST(TraceShare, SourcesShareStorageAndReplayIdentically) {
  JobTrace t(sampleJobs());
  const long before = t.shared().use_count();
  TraceSource a{t};
  TraceSource b{t};
  EXPECT_EQ(t.shared().use_count(), before + 2);  // shared, not copied

  // Identical job streams from both sources (and intact originals after).
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto ja = a.next();
    const auto jb = b.next();
    ASSERT_TRUE(ja && jb);
    EXPECT_EQ(*ja, *jb);
    EXPECT_EQ(*ja, t.jobs()[i]);
  }
  EXPECT_FALSE(a.next());
  EXPECT_FALSE(b.next());
  EXPECT_EQ(t.size(), 3u);  // trace untouched by replay
}

TEST(TraceShare, SourceOutlivesTraceHandle) {
  auto src = [] {
    JobTrace t(sampleJobs());
    return TraceSource{t};
  }();  // the JobTrace handle is gone; the shared vector must survive
  std::size_t n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 3u);
}

// --------------------------------------------------------------------------
// Streaming source: identical stream, O(1) memory path.

std::unique_ptr<std::istream> streamOf(const std::string& text) {
  return std::make_unique<std::istringstream>(text);
}

TEST(TraceStream, MatchesInMemoryReplay) {
  JobTrace t(sampleJobs());
  std::stringstream ss;
  t.write(ss);
  StreamingTraceSource stream(streamOf(ss.str()));
  TraceSource memory{t};
  while (true) {
    const auto js = stream.next();
    const auto jm = memory.next();
    ASSERT_EQ(js.has_value(), jm.has_value());
    if (!js) break;
    EXPECT_EQ(*js, *jm);
  }
  EXPECT_EQ(stream.jobsReturned(), t.size());
  EXPECT_FALSE(stream.next());  // stays exhausted
}

TEST(TraceStream, RenumbersSparseIdsDensely) {
  const std::string csv = "5,100,10,50\n10,200,10,50\n20,300,10,50\n";
  StreamingTraceSource keep(streamOf(csv));
  EXPECT_EQ(keep.next()->id, 5u);  // ids preserved by default

  StreamingTraceSource dense(streamOf(csv), "<stream>", /*renumber=*/true);
  for (JobId want = 0; want < 3; ++want) {
    const auto j = dense.next();
    ASSERT_TRUE(j);
    EXPECT_EQ(j->id, want);
  }
  EXPECT_FALSE(dense.next());
}

TEST(TraceStream, RenumberStillRejectsDuplicateIds) {
  StreamingTraceSource s(streamOf("7,100,10,50\n7,200,10,50\n"), "<stream>", true);
  EXPECT_TRUE(s.next());
  EXPECT_THROW(s.next(), std::runtime_error);
}

TEST(TraceStream, ErrorsCarryLineNumbers) {
  StreamingTraceSource s(streamOf("# header\n0,100,10,50\n\n1,50,10,50\n"));
  EXPECT_TRUE(s.next());
  try {
    s.next();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(TraceStream, StreamingWriterMatchesInMemoryWriter) {
  WorkloadParams p;
  WorkloadGenerator g1(p, 99);
  WorkloadGenerator g2(p, 99);
  std::stringstream streamed;
  const std::size_t n = writeTrace(streamed, g1, 50);
  EXPECT_EQ(n, 50u);
  std::stringstream recorded;
  JobTrace::record(g2, 50).write(recorded);
  EXPECT_EQ(streamed.str(), recorded.str());
}

TEST(TraceStream, SaveTraceRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "/ppsched_stream_trace.csv";
  WorkloadParams p;
  WorkloadGenerator g(p, 7);
  EXPECT_EQ(saveTrace(path, g, 20), 20u);
  StreamingTraceSource s(path);
  std::size_t n = 0;
  while (s.next()) ++n;
  EXPECT_EQ(n, 20u);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Summary edge cases.

TEST(TraceSummary, SingleJob) {
  JobTrace t({{0, 123.0, {10, 50}}});
  const auto s = t.summarize();
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_DOUBLE_EQ(s.span, 0.0);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 0.0);
  EXPECT_DOUBLE_EQ(s.meanEvents, 40.0);
  EXPECT_EQ(s.users, 0u);
}

TEST(TraceSummary, IdenticalArrivals) {
  JobTrace t({{0, 50.0, {0, 10}}, {1, 50.0, {0, 10}}, {2, 50.0, {0, 10}}});
  const auto s = t.summarize();
  EXPECT_DOUBLE_EQ(s.span, 0.0);
  EXPECT_DOUBLE_EQ(s.meanInterarrival, 0.0);
}

TEST(TraceSummary, CountsDistinctTaggedUsers) {
  JobTrace t({{0, 1.0, {0, 10}, 4}, {1, 2.0, {0, 10}, 4}, {2, 3.0, {0, 10}, 2}, {3, 4.0, {0, 10}}});
  EXPECT_EQ(t.summarize().users, 2u);
}

}  // namespace
}  // namespace ppsched
