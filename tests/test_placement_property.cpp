// Property tests for the topology-aware placement API
// (ISchedulerHost::rankPlacements / sameSwitch).
//
// Core property: over randomized topologies and cache states, the
// topology-aware ranking never selects a serving node with a strictly worse
// estimatedSecPerEvent than the cache-content-only choice
// (Cluster::bestCacheNode) — it is an argmin over a candidate set that
// contains that choice. Rankings are deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

constexpr std::uint64_t kTotalEvents = 50'000;

/// One random placement instance: a cluster with random interconnect
/// parameters and random per-node cache contents.
struct Instance {
  SimConfig cfg;
  std::vector<std::pair<NodeId, EventRange>> cached;
  NodeId dst = 0;
  EventRange range;
};

Instance randomInstance(Rng& rng, bool networkEnabled) {
  Instance inst;
  const int nodes = static_cast<int>(rng.uniformInt(2, 12));
  inst.cfg = tinyConfig(nodes, kTotalEvents, 10'000);
  if (networkEnabled) {
    const double nics[] = {6e6, 12.5e6, 125e6};
    const double uplinks[] = {0.0, 1e6, 2e6, 5e6};
    const double ingresses[] = {0.0, 2e6, 10e6};
    const int groups[] = {0, 2, 3, 5};
    inst.cfg.network.enabled = true;
    inst.cfg.network.nicBytesPerSec = nics[rng.uniformInt(0, 2)];
    inst.cfg.network.uplinkBytesPerSec = uplinks[rng.uniformInt(0, 3)];
    inst.cfg.network.tertiaryIngressBytesPerSec = ingresses[rng.uniformInt(0, 2)];
    inst.cfg.network.nodesPerSwitch = groups[rng.uniformInt(0, 3)];
    inst.cfg.finalize();
  }
  for (NodeId n = 0; n < nodes; ++n) {
    const std::uint64_t extents = rng.uniformInt(0, 3);
    for (std::uint64_t e = 0; e < extents; ++e) {
      const EventIndex begin = rng.uniformInt(0, kTotalEvents - 5000);
      const EventIndex len = rng.uniformInt(100, 5000);
      inst.cached.emplace_back(n, EventRange{begin, begin + len});
    }
  }
  inst.dst = static_cast<NodeId>(rng.uniformInt(0, static_cast<std::uint64_t>(nodes - 1)));
  const EventIndex begin = rng.uniformInt(0, kTotalEvents - 5000);
  inst.range = {begin, begin + rng.uniformInt(500, 5000)};
  return inst;
}

/// Build an idle engine for the instance and seed the caches.
std::unique_ptr<Harness> build(const Instance& inst) {
  auto h = std::make_unique<Harness>(inst.cfg, std::vector<Job>{});
  for (const auto& [node, r] : inst.cached) {
    h->engine->cluster().node(node).cache().insert(r, 0.0);
  }
  return h;
}

TEST(PlacementProperty, NeverWorseThanCacheOnlyChoice) {
  Rng rng(20260807);
  int comparisons = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Instance inst = randomInstance(rng, /*networkEnabled=*/true);
    auto h = build(inst);
    const auto ranked = h->engine->rankPlacements(inst.dst, inst.range);
    const NodeId cacheOnly = h->engine->cluster().bestCacheNode(inst.range);
    if (cacheOnly == kNoNode || cacheOnly == inst.dst) continue;
    ASSERT_FALSE(ranked.empty()) << "iter " << iter;
    const double cacheOnlyCost =
        h->engine->estimatedSecPerEvent(inst.dst, cacheOnly, DataSource::RemoteCache);
    EXPECT_LE(ranked.front().secPerEvent, cacheOnlyCost + 1e-12) << "iter " << iter;
    ++comparisons;
  }
  // The generator must actually exercise the property, not vacuously pass.
  EXPECT_GT(comparisons, 100);
}

TEST(PlacementProperty, DeterministicForFixedSeed) {
  for (int run = 0; run < 2; ++run) {
    // Regenerate the full instance stream from the same seed: every ranked
    // list must be identical across regenerations and repeated calls.
    Rng rng(12345);
    std::vector<PlacementCandidate> flattened;
    for (int iter = 0; iter < 50; ++iter) {
      const Instance inst = randomInstance(rng, /*networkEnabled=*/true);
      auto h = build(inst);
      const auto first = h->engine->rankPlacements(inst.dst, inst.range);
      const auto second = h->engine->rankPlacements(inst.dst, inst.range);
      ASSERT_EQ(first.size(), second.size()) << "iter " << iter;
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].source, second[i].source) << "iter " << iter;
        EXPECT_EQ(first[i].secPerEvent, second[i].secPerEvent) << "iter " << iter;
        flattened.push_back(first[i]);
      }
    }
    static std::vector<PlacementCandidate> reference;
    if (run == 0) {
      reference = flattened;
    } else {
      ASSERT_EQ(reference.size(), flattened.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].source, flattened[i].source);
        EXPECT_EQ(reference[i].secPerEvent, flattened[i].secPerEvent);
        EXPECT_EQ(reference[i].cachedEvents, flattened[i].cachedEvents);
        EXPECT_EQ(reference[i].sameSwitch, flattened[i].sameSwitch);
      }
    }
  }
}

TEST(PlacementProperty, CandidateFieldsAreConsistent) {
  Rng rng(777);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = randomInstance(rng, /*networkEnabled=*/true);
    auto h = build(inst);
    const auto ranked = h->engine->rankPlacements(inst.dst, inst.range);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      const PlacementCandidate& c = ranked[i];
      EXPECT_NE(c.source, inst.dst) << "iter " << iter;
      EXPECT_GT(c.cachedEvents, 0u) << "iter " << iter;
      EXPECT_EQ(c.cachedEvents,
                h->engine->cluster().cachedOn(c.source, inst.range).size())
          << "iter " << iter;
      EXPECT_EQ(c.secPerEvent,
                h->engine->estimatedSecPerEvent(inst.dst, c.source, DataSource::RemoteCache))
          << "iter " << iter;
      EXPECT_EQ(c.sameSwitch, h->engine->sameSwitch(inst.dst, c.source)) << "iter " << iter;
      if (i > 0) {
        EXPECT_GE(c.secPerEvent, ranked[i - 1].secPerEvent) << "iter " << iter;
      }
      for (std::size_t j = i + 1; j < ranked.size(); ++j) {
        EXPECT_NE(c.source, ranked[j].source) << "iter " << iter;
      }
    }
  }
}

TEST(PlacementProperty, DisabledNetworkFrontMatchesBestCacheNode) {
  Rng rng(424242);
  int comparisons = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Instance inst = randomInstance(rng, /*networkEnabled=*/false);
    auto h = build(inst);
    const auto ranked = h->engine->rankPlacements(inst.dst, inst.range);
    const NodeId best = h->engine->cluster().bestCacheNode(inst.range);
    if (best == kNoNode || best == inst.dst) continue;
    ASSERT_FALSE(ranked.empty()) << "iter " << iter;
    EXPECT_EQ(ranked.front().source, best) << "iter " << iter;
    ++comparisons;
  }
  EXPECT_GT(comparisons, 100);
}

TEST(PlacementProperty, CandidatesExcludeDownNodes) {
  SimConfig cfg = tinyConfig(3, kTotalEvents, 10'000);
  Harness h(cfg, {});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->cluster().node(2).cache().insert({0, 2000}, 0.0);
  ASSERT_EQ(h.engine->rankPlacements(0, {0, 4000}).front().source, 1);
  h.engine->failNode(1);
  const auto ranked = h.engine->rankPlacements(0, {0, 4000});
  for (const PlacementCandidate& c : ranked) EXPECT_NE(c.source, 1);
  // With loseCacheOnFailure (default) node 1's content is gone entirely;
  // node 2 keeps serving.
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().source, 2);
}

TEST(PlacementProperty, CandidatesExcludeCacheSharingSiblings) {
  // Two machines with two CPUs each: CPU 1 shares machine 0's cache, so it
  // is local content for CPU 0, never a remote-read candidate.
  SimConfig cfg = tinyConfig(2, kTotalEvents, 10'000);
  cfg.cpusPerNode = 2;
  cfg.finalize();
  Harness h(cfg, {});
  h.engine->cluster().node(1).cache().insert({0, 3000}, 0.0);  // machine 0's cache
  h.engine->cluster().node(2).cache().insert({0, 2000}, 0.0);  // machine 1's cache
  const auto ranked = h.engine->rankPlacements(0, {0, 4000});
  ASSERT_EQ(ranked.size(), 2u);  // CPUs 2 and 3 (machine 1), not sibling CPU 1
  EXPECT_EQ(ranked.front().source, 2);
  for (const PlacementCandidate& c : ranked) EXPECT_NE(c.source, 1);
}

TEST(PlacementProperty, NarrowUplinkPrefersSameSwitchSource) {
  // Switches {0,1} and {2,3}; node 3 caches MORE of the range than node 1,
  // so the cache-content heuristic picks 3 — but its flow must cross a
  // 2 MB/s uplink (0.3 s transfer) while same-switch node 1 serves at the
  // full remote rate (0.06 s transfer).
  SimConfig cfg = tinyConfig(4, kTotalEvents, 10'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 125e6;
  cfg.network.uplinkBytesPerSec = 2e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  Harness h(cfg, {});
  h.engine->cluster().node(1).cache().insert({0, 3000}, 0.0);
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);

  EXPECT_EQ(h.engine->cluster().bestCacheNode({0, 4000}), 3);
  const auto ranked = h.engine->rankPlacements(0, {0, 4000});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().source, 1);
  EXPECT_TRUE(ranked.front().sameSwitch);
  EXPECT_LT(ranked.front().secPerEvent, ranked.back().secPerEvent);
  EXPECT_FALSE(ranked.back().sameSwitch);
}

TEST(PlacementProperty, LiveContentionFlipsRanking) {
  // Equal cache content on same-switch node 1 and cross-switch node 3, no
  // uplink constraint, 4 MB/s NICs. Idle: tie on cost, same-switch wins.
  // With a remote reader already streaming from node 1, its nic_up would be
  // shared — node 3 becomes strictly cheaper and takes the front.
  SimConfig cfg = tinyConfig(4, kTotalEvents, 20'000);
  cfg.network.enabled = true;
  cfg.network.nicBytesPerSec = 4e6;
  cfg.network.nodesPerSwitch = 2;
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {10'000, 14'000}}});
  h.engine->cluster().node(1).cache().insert({0, 4000}, 0.0);
  h.engine->cluster().node(3).cache().insert({0, 4000}, 0.0);
  h.engine->cluster().node(1).cache().insert({10'000, 14'000}, 0.0);

  const auto idle = h.engine->rankPlacements(0, {0, 4000});
  ASSERT_EQ(idle.size(), 2u);
  EXPECT_EQ(idle.front().source, 1);  // tie broken by same-switch
  EXPECT_DOUBLE_EQ(idle.front().secPerEvent, idle.back().secPerEvent);

  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(2, whole(j), {.remoteFrom = 1});
  };
  std::vector<PlacementCandidate> contended;
  h.policy->timerHook = [&](TimerId) {
    contended = h.engine->rankPlacements(0, {0, 4000});
  };
  h.engine->run({.simTimeLimit = 1.0});
  h.engine->scheduleTimer(10.0);
  h.engine->run({.simTimeLimit = 20.0});

  ASSERT_EQ(contended.size(), 2u);
  EXPECT_EQ(contended.front().source, 3);
  EXPECT_FALSE(contended.front().sameSwitch);
  EXPECT_LT(contended.front().secPerEvent, contended.back().secPerEvent);
}

TEST(PlacementProperty, SameSwitchQueryMatchesTopology) {
  SimConfig cfg = tinyConfig(5, kTotalEvents, 10'000);
  cfg.network.enabled = true;
  cfg.network.nodesPerSwitch = 2;  // switches {0,1}, {2,3}, {4}
  cfg.finalize();
  Harness h(cfg, {});
  EXPECT_TRUE(h.engine->sameSwitch(0, 1));
  EXPECT_TRUE(h.engine->sameSwitch(2, 3));
  EXPECT_TRUE(h.engine->sameSwitch(4, 4));
  EXPECT_FALSE(h.engine->sameSwitch(1, 2));
  EXPECT_FALSE(h.engine->sameSwitch(3, 4));

  // Disabled model or single switch: trivially true.
  Harness flat(tinyConfig(5, kTotalEvents, 10'000), {});
  EXPECT_TRUE(flat.engine->sameSwitch(0, 4));
  const FlowNetwork& net = h.engine->flowNetwork();
  EXPECT_TRUE(net.sameSwitch(0, 1));
  EXPECT_FALSE(net.sameSwitch(0, 2));
  EXPECT_FALSE(net.sameSwitch(FlowNetwork::kTertiarySource, 0));
}

}  // namespace
}  // namespace ppsched
