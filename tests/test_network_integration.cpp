// Engine-level network model tests: bit-identical determinism with the
// model disabled, closed-form shared-link contention scenarios, deferred
// replication transfers, contention-aware cost feedback, and report/
// timeline plumbing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/timeline.h"
#include "test_support.h"

namespace ppsched {
namespace {

using testing::Harness;
using testing::tinyConfig;
using testing::whole;

NetworkConfig netCfg(double nic, double ingress = 0.0, double uplink = 0.0, int group = 0) {
  NetworkConfig net;
  net.enabled = true;
  net.nicBytesPerSec = nic;
  net.tertiaryIngressBytesPerSec = ingress;
  net.uplinkBytesPerSec = uplink;
  net.nodesPerSwitch = group;
  return net;
}

std::uint64_t bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// ---------------------------------------------------------------------------
// Determinism: with NetworkConfig disabled (the default), fixed-seed
// experiments must be bit-identical to the pre-network-model engine. The
// constants below were captured from the engine BEFORE src/net existed;
// any drift in these bits means the disabled path is not inert.
// ---------------------------------------------------------------------------

struct GoldenRow {
  const char* policy;
  std::uint64_t speedupBits, waitBits, simTimeBits;
  std::uint64_t processedEvents, tertiaryEvents;
};

TEST(NetworkDeterminism, DisabledModelIsBitIdenticalAcrossPolicies) {
  const GoldenRow golden[] = {
      {"farm", 0x3ff0000000000000ULL, 0x41155eabba137eebULL, 0x412ea835e38d1468ULL,
       7453910ULL, 7453910ULL},
      {"out_of_order", 0x3fdca256f9278793ULL, 0x40e0450c89f92250ULL, 0x41303371a75f5f23ULL,
       11291166ULL, 6308111ULL},
      {"replication", 0x3fdca256f9278793ULL, 0x40e0450c89f92250ULL, 0x41303371a75f5f23ULL,
       11291166ULL, 6308111ULL},
      {"delayed", 0x3fe6cf631c3c926bULL, 0x40ffc2be13f22eaeULL, 0x4121b4c05a2a690aULL,
       8287757ULL, 494441ULL},
      {"cache_oriented", 0x3ff1db5f08b97d95ULL, 0x4112810bc7135692ULL, 0x412c59eeaf6adecdULL,
       7491562ULL, 6648658ULL},
  };
  for (const GoldenRow& row : golden) {
    ExperimentSpec spec;
    spec.policyName = row.policy;
    spec.jobsPerHour = 2.0;
    spec.seed = 20260807;
    spec.warmupJobs = 30;
    spec.measuredJobs = 150;
    spec.sim.numNodes = 6;
    spec.sim.cacheBytesPerNode = 20'000'000'000ULL;
    spec.sim.totalDataBytes = 200'000'000'000ULL;
    ASSERT_FALSE(spec.sim.network.enabled);
    const RunResult r = runExperiment(spec);
    EXPECT_EQ(bits(r.avgSpeedup), row.speedupBits) << row.policy;
    EXPECT_EQ(bits(r.avgWait), row.waitBits) << row.policy;
    EXPECT_EQ(bits(r.simulatedTime), row.simTimeBits) << row.policy;
    EXPECT_EQ(r.processedEvents, row.processedEvents) << row.policy;
    EXPECT_EQ(r.tertiaryEvents, row.tertiaryEvents) << row.policy;
    EXPECT_FALSE(r.network.enabled) << row.policy;
  }
}

TEST(NetworkDeterminism, DisabledModelIsBitIdenticalOnReplicationHeavyRun) {
  // Paper-default cluster at threshold 1: exercises remote reads, the
  // replication fast path, and remote-access counters.
  ExperimentSpec spec;
  spec.policyName = "replication";
  spec.policyParams.replicationThreshold = 1;
  spec.jobsPerHour = 1.5;
  spec.seed = 20260807;
  spec.warmupJobs = 50;
  spec.measuredJobs = 250;
  const RunResult r = runExperiment(spec);
  EXPECT_EQ(bits(r.avgSpeedup), 0x40267e0422c41d8dULL);
  EXPECT_EQ(bits(r.avgWait), 0x40632e609e402298ULL);
  EXPECT_EQ(bits(r.simulatedTime), 0x4127f6dac9b05c3aULL);
  EXPECT_EQ(r.processedEvents, 11627964ULL);
  EXPECT_EQ(r.tertiaryEvents, 4492075ULL);
  EXPECT_EQ(r.replicatedEvents, 775845ULL);
  EXPECT_EQ(r.replicationOps, 2094ULL);
}

// ---------------------------------------------------------------------------
// Closed-form contention scenarios.
// ---------------------------------------------------------------------------

// Two tertiary streams share a 1 MB/s ingress link: each runs at 0.5 MB/s
// (1.4 s/event serial) until the shorter job finishes, then the survivor is
// re-solved to the full link (0.8 s/event).
TEST(NetworkEngine, TertiaryStreamsShareIngressAndRescheduleOnClose) {
  SimConfig cfg = tinyConfig(2, 100'000, 10'000);
  cfg.network = netCfg(125e6, /*ingress=*/1e6);
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 1000}}, {1, 0.0, {1000, 4000}}}, /*caching=*/false);
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(j.id == 0 ? 0 : 1, whole(j));
  };
  SimTime firstDone = 0.0;
  h.policy->finishHook = [&](NodeId, const RunReport& rep) {
    if (rep.subjob.job == 0) firstDone = h.engine->now();
  };
  h.engine->run({});

  // Job 0: 1000 events at 1.4 s/event (0.5 MB/s share + 0.2 s CPU).
  EXPECT_NEAR(firstDone, 1400.0, 1e-6);
  // Job 1: 1000 events at 1.4, then 2000 at 0.8 once the link is all its.
  EXPECT_NEAR(h.engine->now(), 3000.0, 1e-6);

  const NetworkReport r = h.engine->networkReport();
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.flowsOpened, 2u);
  EXPECT_EQ(r.tertiaryFlows, 2u);
  EXPECT_EQ(r.maxConcurrentFlows, 2u);
  EXPECT_DOUBLE_EQ(r.tertiaryBytes, 4000 * 600e3);
  // The ingress link was saturated for the whole simulation.
  bool sawIngress = false;
  for (const LinkReport& link : r.links) {
    if (link.name == "tertiary_ingress") {
      sawIngress = true;
      EXPECT_NEAR(link.utilization, 1.0, 1e-6);
    }
  }
  EXPECT_TRUE(sawIngress);
  EXPECT_NEAR(r.maxLinkUtilization, 1.0, 1e-6);
}

// Two remote-cache reads from the same serving node share its 6 MB/s NIC
// uplink (3 MB/s each -> 0.4 s/event); when the short one closes, the other
// is re-estimated to the full NIC (0.3 s/event). Also checks the cost
// feedback: a hypothetical third stream would get 2 MB/s (0.5 s/event).
TEST(NetworkEngine, RemoteReadsShareServingNicWithCostFeedback) {
  SimConfig cfg = tinyConfig(3, 100'000, 10'000);
  cfg.network = netCfg(/*nic=*/6e6);
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 100}}, {1, 0.0, {100, 300}}}, /*caching=*/true);
  h.engine->cluster().node(0).cache().insert({0, 300}, 0.0);
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(j.id == 0 ? 1 : 2, whole(j), {.remoteFrom = 0});
  };
  SimTime firstDone = 0.0;
  h.policy->finishHook = [&](NodeId, const RunReport& rep) {
    if (rep.subjob.job == 0) firstDone = h.engine->now();
  };
  double estimateDuringContention = 0.0;
  double staticRemoteEstimate = 0.0;
  h.policy->timerHook = [&](TimerId) {
    // Probe while both flows are active: a third reader of node 0 would
    // share nic_up[0] three ways (2 MB/s -> 0.3 s transfer + 0.2 s CPU).
    estimateDuringContention = h.engine->estimatedSecPerEvent(2, 0, DataSource::RemoteCache);
    // Local reads never touch the network: static cost model.
    staticRemoteEstimate = h.engine->estimatedSecPerEvent(2, 0, DataSource::LocalCache);
  };
  h.engine->run({.arrivedJobs = 2, .simTimeLimit = 1.0});
  h.engine->scheduleTimer(10.0);
  h.engine->run({});

  EXPECT_NEAR(firstDone, 40.0, 1e-6);          // 100 events at 0.4 s/event
  EXPECT_NEAR(h.engine->now(), 70.0, 1e-6);    // 100 at 0.4, then 100 at 0.3
  EXPECT_NEAR(estimateDuringContention, 0.5, 1e-9);
  EXPECT_NEAR(staticRemoteEstimate, 0.26, 1e-9);

  const NetworkReport r = h.engine->networkReport();
  EXPECT_EQ(r.remoteFlows, 2u);
  EXPECT_DOUBLE_EQ(r.remoteBytes, 300 * 600e3);
}

TEST(NetworkEngine, DisabledNetworkKeepsStaticCostFeedback) {
  Harness h(tinyConfig(2, 100'000, 10'000), {});
  EXPECT_DOUBLE_EQ(h.engine->estimatedSecPerEvent(0, 1, DataSource::RemoteCache), 0.26);
  EXPECT_DOUBLE_EQ(h.engine->estimatedSecPerEvent(0, kNoNode, DataSource::Tertiary), 0.8);
  EXPECT_DOUBLE_EQ(h.engine->estimatedSecPerEvent(0, kNoNode, DataSource::LocalCache), 0.26);
  EXPECT_FALSE(h.engine->networkReport().enabled);
}

// With the network model on, a §4.2 replication is no longer instantaneous:
// it rides its own flow and lands in the destination cache only after
// range_bytes / share seconds.
TEST(NetworkEngine, ReplicationBecomesDeferredTransfer) {
  SimConfig cfg = tinyConfig(2, 100'000, 10'000);
  cfg.network = netCfg(/*nic=*/125e6);
  cfg.finalize();
  Harness h(cfg, {{0, 0.0, {0, 100}}}, /*caching=*/true);
  h.engine->cluster().node(0).cache().insert({0, 100}, 0.0);
  EventLog log;
  h.engine->setEventSink(&log);
  h.policy->arrivalHook = [&](const Job& j) {
    h.engine->startRun(1, whole(j), {.remoteFrom = 0, .replicationThreshold = 1});
  };
  bool cachedAtRunEnd = true;
  h.policy->finishHook = [&](NodeId, const RunReport&) {
    cachedAtRunEnd = h.engine->cluster().node(1).cache().containsRange({0, 100});
  };
  h.engine->run({});

  // The run ends at t=26 (100 remote events at 0.26 s/event); the copy is
  // still in flight then and lands 60 MB / 10 MB/s = 6 s later.
  EXPECT_FALSE(cachedAtRunEnd);
  EXPECT_TRUE(h.engine->cluster().node(1).cache().containsRange({0, 100}));
  EXPECT_NEAR(h.engine->now(), 32.0, 1e-6);

  const RunResult result = h.metrics.finalize(h.engine->now(), false);
  EXPECT_EQ(result.replicatedEvents, 100u);
  EXPECT_EQ(result.replicationOps, 1u);

  const NetworkReport r = h.engine->networkReport();
  EXPECT_EQ(r.flowsOpened, 2u);
  EXPECT_EQ(r.remoteFlows, 1u);
  EXPECT_EQ(r.replicationFlows, 1u);
  EXPECT_DOUBLE_EQ(r.replicationBytes, 60e6);

  // Event log: one flow open/close pair per flow, and the flow timeline
  // shows node 1 continuously on the network from t=0 to t=32.
  EXPECT_EQ(log.count(SimEventKind::FlowOpen), 2u);
  EXPECT_EQ(log.count(SimEventKind::FlowClose), 2u);
  const auto intervals = flowIntervals(log, 2, h.engine->now());
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].node, 1);
  EXPECT_NEAR(intervals[0].begin, 0.0, 1e-9);
  EXPECT_NEAR(intervals[0].end, 26.0, 1e-6);
  EXPECT_NEAR(intervals[1].begin, 26.0, 1e-6);
  EXPECT_NEAR(intervals[1].end, 32.0, 1e-6);
}

// A full experiment with the model enabled populates RunResult::network.
TEST(NetworkEngine, ExperimentReportCarriesNetworkCounters) {
  ExperimentSpec spec;
  spec.policyName = "replication";
  spec.policyParams.replicationThreshold = 1;
  spec.jobsPerHour = 1.5;
  spec.seed = 7;
  spec.warmupJobs = 5;
  spec.measuredJobs = 20;
  spec.sim.numNodes = 4;
  spec.sim.cacheBytesPerNode = 10'000'000'000ULL;
  spec.sim.totalDataBytes = 100'000'000'000ULL;
  spec.sim.network = netCfg(125e6, /*ingress=*/4e6);
  const RunResult r = runExperiment(spec);
  EXPECT_TRUE(r.network.enabled);
  EXPECT_GT(r.network.flowsOpened, 0u);
  EXPECT_GT(r.network.tertiaryFlows, 0u);
  EXPECT_GT(r.network.tertiaryBytes, 0.0);
  EXPECT_GT(r.network.maxLinkUtilization, 0.0);
  EXPECT_LE(r.network.maxLinkUtilization, 1.0 + 1e-9);
  EXPECT_FALSE(r.network.links.empty());
}

}  // namespace
}  // namespace ppsched
