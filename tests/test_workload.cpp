// WorkloadGenerator: the paper's §2.4 job model.
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.h"

namespace ppsched {
namespace {

WorkloadParams paperParams() {
  WorkloadParams p;  // defaults are the paper values
  p.jobsPerHour = 1.0;
  return p;
}

TEST(Workload, ValidatesParameters) {
  WorkloadParams p = paperParams();
  p.jobsPerHour = 0.0;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.totalEvents = 0;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.erlangShape = 0;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.hotProbability = 1.5;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.hotRegions = {{0.9, 0.2}};  // runs past the end of the space
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.hotRegions.clear();  // hotProbability 0.5 with no hot region
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
}

TEST(Workload, DeterministicForFixedSeed) {
  WorkloadGenerator a(paperParams(), 99), b(paperParams(), 99);
  for (int i = 0; i < 50; ++i) {
    const auto ja = a.next(), jb = b.next();
    ASSERT_TRUE(ja && jb);
    EXPECT_EQ(*ja, *jb);
  }
}

TEST(Workload, IdsAreDenseAndArrivalsIncrease) {
  WorkloadGenerator g(paperParams(), 5);
  SimTime last = 0.0;
  for (JobId i = 0; i < 200; ++i) {
    const auto j = g.next();
    ASSERT_TRUE(j);
    EXPECT_EQ(j->id, i);
    EXPECT_GT(j->arrival, last);
    last = j->arrival;
  }
}

TEST(Workload, JobsFitInsideDataSpace) {
  WorkloadParams p = paperParams();
  WorkloadGenerator g(p, 6);
  for (int i = 0; i < 2000; ++i) {
    const auto j = g.next();
    ASSERT_TRUE(j);
    ASSERT_FALSE(j->range.empty());
    ASSERT_LE(j->range.end, p.totalEvents);
    ASSERT_GE(j->events(), p.minJobEvents);
  }
}

TEST(Workload, MeanInterarrivalMatchesLoad) {
  WorkloadParams p = paperParams();
  p.jobsPerHour = 2.0;
  WorkloadGenerator g(p, 7);
  SimTime last = 0.0;
  StreamingStats gaps;
  for (int i = 0; i < 20'000; ++i) {
    const auto j = g.next();
    gaps.add(j->arrival - last);
    last = j->arrival;
  }
  EXPECT_NEAR(gaps.mean(), 1800.0, 30.0);  // 2 jobs/hour -> 1800 s
}

TEST(Workload, MeanJobSizeIsFortyThousand) {
  WorkloadGenerator g(paperParams(), 8);
  StreamingStats sizes;
  for (int i = 0; i < 20'000; ++i) sizes.add(static_cast<double>(g.drawJobEvents()));
  EXPECT_NEAR(sizes.mean(), 40'000.0, 600.0);
  // Erlang(4): stddev = mean/2.
  EXPECT_NEAR(sizes.stddev(), 20'000.0, 600.0);
}

TEST(Workload, HotRegionsAttractHalfTheStartPoints) {
  WorkloadParams p = paperParams();
  WorkloadGenerator g(p, 9);
  const double total = static_cast<double>(p.totalEvents);
  std::size_t hot = 0;
  const std::size_t n = 20'000;
  for (std::size_t i = 0; i < n; ++i) {
    const EventIndex start = g.drawStartPoint(p.minJobEvents);
    const double f = static_cast<double>(start) / total;
    const bool inHot = (f >= 0.20 && f < 0.25) || (f >= 0.60 && f < 0.65);
    hot += inHot ? 1 : 0;
  }
  // 10% of the space holds ~50% of start points.
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(n), 0.5, 0.02);
}

TEST(Workload, StartPointsClampSoJobsFit) {
  WorkloadParams p = paperParams();
  WorkloadGenerator g(p, 10);
  const std::uint64_t huge = p.totalEvents - 5;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(g.drawStartPoint(huge), 5u);
  }
}

TEST(Workload, UniformModeWithoutHotRegions) {
  WorkloadParams p = paperParams();
  p.hotProbability = 0.0;
  WorkloadGenerator g(p, 11);
  StreamingStats starts;
  for (int i = 0; i < 20'000; ++i) {
    starts.add(static_cast<double>(g.drawStartPoint(10)));
  }
  // Uniform over ~[0, N): mean ~ N/2.
  EXPECT_NEAR(starts.mean(), static_cast<double>(p.totalEvents) / 2.0,
              static_cast<double>(p.totalEvents) * 0.02);
}

TEST(Workload, DiurnalValidation) {
  WorkloadParams p = paperParams();
  p.diurnalAmplitude = 1.5;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
  p = paperParams();
  p.diurnalAmplitude = 0.5;
  p.diurnalPeriod = 0.0;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
}

TEST(Workload, DiurnalPreservesMeanRate) {
  WorkloadParams p = paperParams();
  p.jobsPerHour = 2.0;
  p.diurnalAmplitude = 0.8;
  p.diurnalPeriod = 24 * units::hour;
  WorkloadGenerator g(p, 21);
  SimTime last = 0.0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) last = g.next()->arrival;
  // Over many whole cycles, the mean rate equals the base rate.
  EXPECT_NEAR(static_cast<double>(n) / units::toHours(last), 2.0, 0.05);
}

TEST(Workload, DiurnalModulatesByPhase) {
  WorkloadParams p = paperParams();
  p.jobsPerHour = 2.0;
  p.diurnalAmplitude = 0.9;
  p.diurnalPeriod = 24 * units::hour;
  WorkloadGenerator g(p, 22);
  // Count arrivals in the rising half (sin > 0: first 12 h of each day)
  // vs the falling half.
  std::size_t peakHalf = 0, troughHalf = 0;
  for (int i = 0; i < 30'000; ++i) {
    const SimTime t = g.next()->arrival;
    const double frac = std::fmod(t, p.diurnalPeriod) / p.diurnalPeriod;
    (frac < 0.5 ? peakHalf : troughHalf)++;
  }
  // With amplitude 0.9 the first half holds ~ (1 + 2*0.9/pi)/2 ~= 0.79.
  const double share = static_cast<double>(peakHalf) / (peakHalf + troughHalf);
  EXPECT_NEAR(share, 0.5 + 0.9 / 3.14159265, 0.02);
}

TEST(Workload, HotDriftValidation) {
  WorkloadParams p = paperParams();
  p.hotDriftPeriod = -1.0;
  EXPECT_THROW(WorkloadGenerator(p, 1), std::invalid_argument);
}

TEST(Workload, HotDriftDeterministicForFixedSeed) {
  WorkloadParams p = paperParams();
  p.hotDriftPeriod = 6 * units::hour;
  WorkloadGenerator a(p, 99), b(p, 99);
  for (int i = 0; i < 200; ++i) {
    const auto ja = a.next(), jb = b.next();
    ASSERT_TRUE(ja && jb);
    EXPECT_EQ(*ja, *jb);
  }
}

TEST(Workload, HotDriftSlidesHotRegionsThroughTheSpace) {
  WorkloadParams p = paperParams();
  p.hotProbability = 1.0;  // every start is hot: the shift applies to all
  p.jobsPerHour = 100.0;
  p.hotDriftPeriod = 24 * units::hour;
  WorkloadGenerator g(p, 23);
  const double total = static_cast<double>(p.totalEvents);
  std::size_t inUnshifted = 0;
  const std::size_t n = 5000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = g.next();
    ASSERT_TRUE(j);
    // Undo the drift offset the generator applied at this arrival time
    // (same arithmetic as the generator, so the round-trip is exact) and
    // check the un-shifted start lands in an original hot region. The only
    // exceptions are starts clamped so the job fits in the space.
    const double frac = j->arrival / p.hotDriftPeriod;
    const auto offset = static_cast<EventIndex>((frac - std::floor(frac)) * total);
    const EventIndex unshifted =
        (j->range.begin + p.totalEvents - offset % p.totalEvents) % p.totalEvents;
    const double f = static_cast<double>(unshifted) / total;
    const bool inHot = (f >= 0.20 && f < 0.25) || (f >= 0.60 && f < 0.65);
    inUnshifted += inHot ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(inUnshifted) / static_cast<double>(n), 0.95);
  // And the drifted starts must NOT still sit in the original regions: over
  // a whole period the hot mass sweeps the entire space, so the original
  // 10% of the space gets roughly 10% of the (shifted) starts.
  WorkloadGenerator h(p, 24);
  std::size_t inOriginal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = h.next();
    const double f = static_cast<double>(j->range.begin) / total;
    inOriginal += ((f >= 0.20 && f < 0.25) || (f >= 0.60 && f < 0.65)) ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(inOriginal) / static_cast<double>(n), 0.25);
}

TEST(Workload, SizesClampedToDataSpace) {
  WorkloadParams p = paperParams();
  p.meanJobEvents = 1e9;  // absurd: must clamp to the data space
  WorkloadGenerator g(p, 12);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(g.drawJobEvents(), p.totalEvents);
  }
}

}  // namespace
}  // namespace ppsched
