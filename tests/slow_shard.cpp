// 100-node sharded-scheduling fuzz (ctest label: slow).
//
// Each shard's inner policy is wrapped in ValidatingPolicy, so every
// callback sweeps the global engine/cluster invariants through the shard's
// narrowed view — no double dispatch, runs only on remaining work, caches
// within capacity — while stochastic machine crashes, digest-guided steals
// and orphan rehoming all fire against the same run. The coordinator's own
// ownership invariant (a shard dispatching a peer's job throws) is armed
// throughout.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/validating_policy.h"
#include "net/network.h"
#include "shard/coordinator.h"
#include "workload/generator.h"

namespace ppsched {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

SimConfig shardedScaleConfig() {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.numNodes = 100;
  cfg.cacheBytesPerNode = 20'000'000'000ULL;
  cfg.totalDataBytes = 400'000'000'000ULL;
  cfg.workload.jobsPerHour = 20.0;
  cfg.network = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=5");
  cfg.shards = parseShardSpec("4,digest=600,admit=4");
  return cfg;
}

TEST(SlowShard, HundredNodeShardedInvariantsHoldUnderFailures) {
  SimConfig cfg = shardedScaleConfig();
  cfg.failures.meanTimeBetweenFailuresSec = 12 * units::hour;
  cfg.failures.meanTimeToRepairSec = 1 * units::hour;
  cfg.finalize();

  PolicyParams params;
  params.replicationThreshold = 1;
  auto coord = std::make_unique<ShardedCoordinator>(cfg.shards, [&params] {
    return std::make_unique<ValidatingPolicy>(makePolicy("replication", params));
  });
  auto* coordPtr = coord.get();

  MetricsCollector metrics(cfg.cost, {0, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 20260807),
                std::move(coord), metrics);
  ASSERT_NO_THROW(engine.run({.completedJobs = 120, .maxJobsInSystem = 2000}));
  EXPECT_GE(metrics.completedJobs(), 120u);
  const RunResult result = metrics.finalize(engine.now());
  EXPECT_GT(result.nodeFailures, 0u);

  const ShardReport rep = coordPtr->report();
  ASSERT_EQ(rep.shards.size(), 4u);
  std::size_t routed = 0;
  std::size_t stolenIn = 0;
  std::size_t stolenOut = 0;
  for (const ShardStats& s : rep.shards) {
    routed += s.jobsRouted;
    stolenIn += s.jobsStolenIn;
    stolenOut += s.jobsStolenOut;
  }
  // Routing covers every arrival; steal conservation holds even across
  // crashes interleaved with steals and rehomes.
  EXPECT_EQ(routed, metrics.arrivedJobs());
  EXPECT_EQ(stolenIn, rep.steals);
  EXPECT_EQ(stolenOut, rep.steals);
  EXPECT_GT(rep.digestAgeSamples, 0u);
}

TEST(SlowShard, HundredNodeShardedRunIsDeterministic) {
  // The coordinator adds no randomness of its own: routing, digests and
  // stealing are pure functions of simulation state, so identically-seeded
  // sharded runs agree bit-for-bit.
  auto run = [] {
    SimConfig cfg = shardedScaleConfig();
    cfg.finalize();
    auto coord = std::make_unique<ShardedCoordinator>(
        cfg.shards, [] { return makePolicy("out_of_order"); });
    auto* coordPtr = coord.get();
    MetricsCollector metrics(cfg.cost, {200, 0.0});
    Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 20260807),
                  std::move(coord), metrics);
    engine.run({.completedJobs = 400, .maxJobsInSystem = 2000});
    RunResult r = metrics.finalize(engine.now());
    r.shards = coordPtr->report();
    return r;
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(bits(a.avgSpeedup), bits(b.avgSpeedup));
  EXPECT_EQ(bits(a.avgWait), bits(b.avgWait));
  EXPECT_EQ(bits(a.simulatedTime), bits(b.simulatedTime));
  EXPECT_EQ(a.processedEvents, b.processedEvents);
  EXPECT_EQ(a.shards.steals, b.shards.steals);
  EXPECT_EQ(a.shards.staleSteals, b.shards.staleSteals);
  EXPECT_EQ(a.shards.digestRefreshes, b.shards.digestRefreshes);
  for (std::size_t s = 0; s < a.shards.shards.size(); ++s) {
    EXPECT_EQ(a.shards.shards[s].jobsRouted, b.shards.shards[s].jobsRouted) << s;
    EXPECT_EQ(a.shards.shards[s].jobsStolenIn, b.shards.shards[s].jobsStolenIn) << s;
  }
}

}  // namespace
}  // namespace ppsched
