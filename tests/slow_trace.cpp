// Million-job trace replay (ctest label: slow).
//
// The streaming trace path exists so that year-long real logs replay in
// O(1) memory per job. This pins that claim at scale: a 1M-job heavy-tailed
// trace is written with the streaming writer and read back with
// StreamingTraceSource, and the process peak RSS must stay far below what
// materializing the job vector (~40 MB for a million Jobs) would cost.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "workload/in2p3.h"
#include "workload/trace.h"

namespace ppsched {
namespace {

// Sanitizers inflate allocations and keep shadow memory resident, making
// peak-RSS deltas meaningless; the logical checks still run there.
constexpr bool kSanitized =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

/// Peak resident set (VmHWM) in bytes; 0 when /proc is unavailable.
std::size_t peakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmHWM:") {
      std::size_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
    status.ignore(1 << 20, '\n');
  }
  return 0;
}

TEST(SlowTrace, MillionJobsStreamWithBoundedMemory) {
  constexpr std::size_t kJobs = 1'000'000;
  SkewedWorkloadParams p;
  p.totalEvents = 3'333'333;
  p.jobsPerHour = 120.0;  // a year-scale log compressed into simulated weeks
  p.users = 500;
  p.zipfS = 1.3;
  p.minJobEvents = 50;
  p.paretoAlpha = 1.4;
  p.groups = 12;
  p.diurnalAmplitude = 0.5;

  const std::string path = ::testing::TempDir() + "/ppsched_million_job_trace.csv";

  // Streaming write: generator -> CSV, no vector in between.
  {
    SkewedWorkloadGenerator gen(p, 20260809);
    ASSERT_EQ(saveTrace(path, gen, kJobs), kJobs);
  }

  // Baseline AFTER the write: from here on, peak growth is the reader's.
  const std::size_t rssBefore = peakRssBytes();

  // Streaming read: every job visited once, nothing retained. The first
  // 10k jobs are cross-checked against a fresh generator (the streamed
  // bytes decode to exactly the jobs that were written).
  SkewedWorkloadGenerator expect(p, 20260809);
  StreamingTraceSource stream(path);
  std::uint64_t events = 0;
  SimTime lastArrival = 0.0;
  std::size_t count = 0;
  while (const auto job = stream.next()) {
    if (count < 10'000) {
      const auto want = expect.next();
      ASSERT_TRUE(want);
      ASSERT_EQ(job->id, want->id);
      ASSERT_EQ(job->range, want->range);
      ASSERT_EQ(job->user, want->user);
      ASSERT_DOUBLE_EQ(job->arrival, want->arrival);
    }
    ASSERT_EQ(job->id, count);  // dense ids across the full million
    ASSERT_GE(job->arrival, lastArrival);
    lastArrival = job->arrival;
    events += job->events();
    ++count;
  }
  std::remove(path.c_str());

  EXPECT_EQ(count, kJobs);
  EXPECT_EQ(stream.jobsReturned(), kJobs);
  EXPECT_GT(events, kJobs * p.minJobEvents);

  // The memory bound itself: materializing 1M Jobs costs ~40 MB (plus
  // reallocation transients), so a 16 MB ceiling on peak-RSS growth proves
  // the trace was never held in memory. (Skipped under sanitizers and when
  // /proc is unavailable.)
  const std::size_t rssAfter = peakRssBytes();
  if (!kSanitized && rssBefore > 0) {
    EXPECT_LT(rssAfter - rssBefore, 16u << 20)
        << "streaming replay grew peak RSS by " << (rssAfter - rssBefore) / 1024
        << " KiB - is something materializing the trace?";
  }
}

}  // namespace
}  // namespace ppsched
