// ThreadPool: the sweep parallelizer.
#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ppsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(10,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace ppsched
