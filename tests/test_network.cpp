// FlowNetwork unit tests: topology/routing, the max-min fair solver
// (closed-form cases + conservation/fairness property tests), utilization
// integrals, the estimateRate probe, and the network spec parser.
#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppsched {
namespace {

NetworkConfig enabledConfig(double nic = 125e6, double uplink = 0.0, int group = 0,
                            double ingress = 0.0) {
  NetworkConfig cfg;
  cfg.enabled = true;
  cfg.nicBytesPerSec = nic;
  cfg.uplinkBytesPerSec = uplink;
  cfg.nodesPerSwitch = group;
  cfg.tertiaryIngressBytesPerSec = ingress;
  return cfg;
}

TEST(NetworkSpec, DisabledForms) {
  EXPECT_FALSE(parseNetworkSpec("").enabled);
  EXPECT_FALSE(parseNetworkSpec("off").enabled);
  EXPECT_EQ(formatNetworkSpec(NetworkConfig{}), "off");
}

TEST(NetworkSpec, ParsesAllKeys) {
  const NetworkConfig cfg = parseNetworkSpec("nic=125,uplink=20,ingress=40,group=8");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.nicBytesPerSec, 125e6);
  EXPECT_DOUBLE_EQ(cfg.uplinkBytesPerSec, 20e6);
  EXPECT_DOUBLE_EQ(cfg.tertiaryIngressBytesPerSec, 40e6);
  EXPECT_EQ(cfg.nodesPerSwitch, 8);
}

TEST(NetworkSpec, PartialSpecKeepsDefaults) {
  const NetworkConfig cfg = parseNetworkSpec("uplink=12.5");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.nicBytesPerSec, 125e6);  // default NIC
  EXPECT_DOUBLE_EQ(cfg.uplinkBytesPerSec, 12.5e6);
  EXPECT_EQ(cfg.nodesPerSwitch, 0);
}

TEST(NetworkSpec, RoundTrips) {
  for (const std::string& spec :
       {std::string("off"), std::string("nic=125"), std::string("nic=125,uplink=20"),
        std::string("nic=125,uplink=20,ingress=40,group=8"),
        std::string("nic=62.5,ingress=1")}) {
    const NetworkConfig cfg = parseNetworkSpec(spec);
    EXPECT_EQ(parseNetworkSpec(formatNetworkSpec(cfg)), cfg) << spec;
  }
}

TEST(NetworkSpec, RejectsMalformedInput) {
  EXPECT_THROW(parseNetworkSpec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=abc"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=-5"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=0"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("group=-1"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("group=2.5"), std::invalid_argument);
}

TEST(NetworkSpec, RejectsMoreNegativePaths) {
  // Partial numeric parses, empty values, and signed/NaN rates all throw.
  EXPECT_THROW(parseNetworkSpec("nic="), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=125x"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=1e"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=nan"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("nic=inf"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("uplink=-1"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("ingress=-0.5"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("=5"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("NIC=125"), std::invalid_argument);  // keys are case-sensitive
  EXPECT_THROW(parseNetworkSpec("nic=125,uplink"), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("group="), std::invalid_argument);
  EXPECT_THROW(parseNetworkSpec("group=two"), std::invalid_argument);
  // A bad key later in the spec still throws (no partial acceptance).
  EXPECT_THROW(parseNetworkSpec("nic=125,ingress=40,bogus=1"), std::invalid_argument);
  // Zero uplink/ingress are valid ("feature off"), zero nic is not.
  EXPECT_NO_THROW(parseNetworkSpec("uplink=0,ingress=0"));
}

// Fuzz-lite: random valid configs survive format -> parse unchanged. Rates
// are drawn on a 0.25 MB/s grid so the default stream precision used by
// formatNetworkSpec reproduces them exactly.
TEST(NetworkSpec, RandomConfigsRoundTrip) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> quarters(1, 4000);   // 0.25 .. 1000 MB/s
  std::uniform_int_distribution<int> maybe(0, 3);
  std::uniform_int_distribution<int> group(0, 64);
  for (int trial = 0; trial < 200; ++trial) {
    NetworkConfig cfg;
    cfg.enabled = true;
    cfg.nicBytesPerSec = quarters(rng) * 0.25e6;
    if (maybe(rng) != 0) cfg.uplinkBytesPerSec = quarters(rng) * 0.25e6;
    if (maybe(rng) != 0) cfg.tertiaryIngressBytesPerSec = quarters(rng) * 0.25e6;
    cfg.nodesPerSwitch = group(rng);
    const std::string spec = formatNetworkSpec(cfg);
    NetworkConfig back;
    ASSERT_NO_THROW(back = parseNetworkSpec(spec)) << spec;
    EXPECT_EQ(back, cfg) << "trial " << trial << ": " << spec;
    EXPECT_EQ(formatNetworkSpec(back), spec);
  }
}

TEST(FlowNetwork, DisabledNetworkRejectsOpen) {
  FlowNetwork net;
  EXPECT_FALSE(net.enabled());
  EXPECT_THROW(net.open(0, 1, 1e6, FlowKind::RemoteRead, 0.0), std::logic_error);
  // estimateRate degrades to the demand cap (static cost model).
  EXPECT_DOUBLE_EQ(net.estimateRate(0, 1, 7e6), 7e6);
}

TEST(FlowNetwork, RejectsBadArguments) {
  FlowNetwork net(enabledConfig(), 4);
  EXPECT_THROW(net.open(0, 4, 1e6, FlowKind::RemoteRead, 0.0), std::out_of_range);
  EXPECT_THROW(net.open(-2, 1, 1e6, FlowKind::RemoteRead, 0.0), std::out_of_range);
  EXPECT_THROW(net.open(0, 1, 0.0, FlowKind::RemoteRead, 0.0), std::invalid_argument);
  EXPECT_THROW(net.close(99, 0.0), std::invalid_argument);
}

// The acceptance-criterion closed form: two unconstrained flows over one
// shared link of capacity C each get exactly C/2.
TEST(FlowNetwork, TwoFlowsOneLinkSplitEvenly) {
  FlowNetwork net(enabledConfig(10e6), 2);
  const FlowId a = net.open(0, 1, 100e6, FlowKind::RemoteRead, 0.0);
  const FlowId b = net.open(0, 1, 100e6, FlowKind::RemoteRead, 0.0);
  EXPECT_NEAR(net.rate(a), 5e6, 1.0);
  EXPECT_NEAR(net.rate(b), 5e6, 1.0);
  net.close(a, 1.0);
  EXPECT_NEAR(net.rate(b), 10e6, 1.0);  // survivor takes the whole link
}

// A demand-capped flow freezes at its cap; the other takes the rest.
TEST(FlowNetwork, CapLimitedFlowLeavesRestToOthers) {
  FlowNetwork net(enabledConfig(10e6), 2);
  const FlowId slow = net.open(0, 1, 2e6, FlowKind::TertiaryRead, 0.0);
  const FlowId fast = net.open(0, 1, 100e6, FlowKind::RemoteRead, 0.0);
  EXPECT_NEAR(net.rate(slow), 2e6, 1.0);
  EXPECT_NEAR(net.rate(fast), 8e6, 1.0);
}

TEST(FlowNetwork, SingleFlowLimitedByItsCap) {
  FlowNetwork net(enabledConfig(125e6), 2);
  const FlowId f = net.open(0, 1, 1e6, FlowKind::TertiaryRead, 0.0);
  EXPECT_NEAR(net.rate(f), 1e6, 1.0);  // the device, not the NIC, binds
}

TEST(FlowNetwork, TertiaryFlowsShareTheIngressLink) {
  FlowNetwork net(enabledConfig(125e6, 0.0, 0, 1e6), 2);
  const FlowId a = net.open(FlowNetwork::kTertiarySource, 0, 1e6, FlowKind::TertiaryRead, 0.0);
  const FlowId b = net.open(FlowNetwork::kTertiarySource, 1, 1e6, FlowKind::TertiaryRead, 0.0);
  EXPECT_NEAR(net.rate(a), 0.5e6, 1.0);
  EXPECT_NEAR(net.rate(b), 0.5e6, 1.0);
  net.close(a, 10.0);
  EXPECT_NEAR(net.rate(b), 1e6, 1.0);
}

TEST(FlowNetwork, UplinkCrossedOnlyBetweenGroups) {
  // 4 machines, 2 per edge switch, thin uplinks.
  FlowNetwork net(enabledConfig(10e6, 3e6, 2), 4);

  const auto sameGroup = net.pathNames(0, 1);
  EXPECT_EQ(sameGroup, (std::vector<std::string>{"nic_up[0]", "nic_down[1]"}));

  const auto crossGroup = net.pathNames(0, 2);
  EXPECT_EQ(crossGroup, (std::vector<std::string>{"nic_up[0]", "uplink_up[0]",
                                                  "uplink_down[1]", "nic_down[2]"}));

  const FlowId within = net.open(0, 1, 100e6, FlowKind::RemoteRead, 0.0);
  const FlowId across = net.open(2, 0, 100e6, FlowKind::RemoteRead, 0.0);
  EXPECT_NEAR(net.rate(within), 10e6, 1.0);  // NIC-bound, no uplink on path
  EXPECT_NEAR(net.rate(across), 3e6, 1.0);   // uplink-bound
}

TEST(FlowNetwork, TertiaryPathDescendsTheDestinationGroupUplink) {
  FlowNetwork net(enabledConfig(125e6, 5e6, 2, 40e6), 4);
  const auto path = net.pathNames(FlowNetwork::kTertiarySource, 3);
  EXPECT_EQ(path, (std::vector<std::string>{"tertiary_ingress", "uplink_down[1]",
                                            "nic_down[3]"}));
}

TEST(FlowNetwork, UtilizationIntegratesAllocationOverTime) {
  FlowNetwork net(enabledConfig(10e6), 2);
  const FlowId f = net.open(0, 1, 5e6, FlowKind::RemoteRead, 0.0);
  net.close(f, 10.0);
  const NetworkReport r = net.report(20.0);
  // nic_up[0] carried 5 MB/s for 10 of 20 seconds: 25% utilization.
  ASSERT_FALSE(r.links.empty());
  for (const LinkReport& link : r.links) {
    if (link.name == "nic_up[0]" || link.name == "nic_down[1]") {
      EXPECT_NEAR(link.utilization, 0.25, 1e-9) << link.name;
    } else {
      EXPECT_NEAR(link.utilization, 0.0, 1e-12) << link.name;
    }
  }
  EXPECT_NEAR(r.maxLinkUtilization, 0.25, 1e-9);
  EXPECT_EQ(r.flowsOpened, 1u);
  EXPECT_EQ(r.remoteFlows, 1u);
  EXPECT_EQ(r.maxConcurrentFlows, 1u);
}

TEST(FlowNetwork, FlowStatesExposeEndpointsAndAllocations) {
  FlowNetwork net(enabledConfig(10e6, 0.0, 0, 4e6), 3);
  const FlowId a = net.open(1, 0, 100e6, FlowKind::RemoteRead, 0.0);
  const FlowId b =
      net.open(FlowNetwork::kTertiarySource, 2, 100e6, FlowKind::TertiaryRead, 0.0);
  auto states = net.flowStates();
  ASSERT_EQ(states.size(), 2u);
  std::sort(states.begin(), states.end(),
            [](const auto& x, const auto& y) { return x.id < y.id; });
  EXPECT_EQ(states[0].id, a);
  EXPECT_EQ(states[0].kind, FlowKind::RemoteRead);
  EXPECT_EQ(states[0].srcMachine, 1);
  EXPECT_EQ(states[0].dstMachine, 0);
  EXPECT_NEAR(states[0].allocBytesPerSec, 10e6, 1.0);
  EXPECT_EQ(states[1].id, b);
  EXPECT_EQ(states[1].srcMachine, FlowNetwork::kTertiarySource);
  EXPECT_EQ(states[1].dstMachine, 2);
  EXPECT_NEAR(states[1].allocBytesPerSec, 4e6, 1.0);  // ingress-bound
  net.close(a, 1.0);
  net.close(b, 1.0);
  EXPECT_TRUE(net.flowStates().empty());
}

TEST(FlowNetwork, NoteBytesAccumulatesByKind) {
  FlowNetwork net(enabledConfig(), 2);
  net.noteBytes(FlowKind::RemoteRead, 100.0);
  net.noteBytes(FlowKind::TertiaryRead, 10.0);
  net.noteBytes(FlowKind::Replication, 1.0);
  net.noteBytes(FlowKind::Replication, 1.0);
  const NetworkReport r = net.report(1.0);
  EXPECT_DOUBLE_EQ(r.remoteBytes, 100.0);
  EXPECT_DOUBLE_EQ(r.tertiaryBytes, 10.0);
  EXPECT_DOUBLE_EQ(r.replicationBytes, 2.0);
}

TEST(FlowNetwork, EstimateMatchesActualOpenAndDoesNotPerturb) {
  FlowNetwork net(enabledConfig(10e6), 3);
  const FlowId a = net.open(0, 2, 100e6, FlowKind::RemoteRead, 0.0);
  const double rateABefore = net.rate(a);

  const double estimate = net.estimateRate(1, 2, 100e6);
  EXPECT_DOUBLE_EQ(net.rate(a), rateABefore);  // probe left state untouched
  EXPECT_EQ(net.activeFlows(), 1u);

  const FlowId b = net.open(1, 2, 100e6, FlowKind::RemoteRead, 0.0);
  EXPECT_NEAR(net.rate(b), estimate, 1.0);
  // Both bottlenecked on nic_down[2]: 5 MB/s each.
  EXPECT_NEAR(estimate, 5e6, 1.0);
}

// Property tests: random flow sets over a grouped topology must satisfy
// (1) conservation — no link carries more than its capacity — and
// (2) max-min fairness — every flow is at its demand cap, or crosses a
//     saturated link on which no other flow gets a larger share.
TEST(FlowNetwork, MaxMinPropertiesOnRandomFlowSets) {
  std::mt19937 rng(20260807);
  const int machines = 8;
  for (int trial = 0; trial < 50; ++trial) {
    FlowNetwork net(enabledConfig(10e6, 4e6, 3, 6e6), machines);
    std::uniform_int_distribution<int> pick(0, machines - 1);
    std::uniform_real_distribution<double> capDist(0.5e6, 20e6);
    std::uniform_int_distribution<int> kindDist(0, 2);

    struct TestFlow {
      FlowId id;
      std::vector<std::string> path;
      double cap;
    };
    std::vector<TestFlow> flows;
    const int count = 1 + trial % 12;
    for (int i = 0; i < count; ++i) {
      const int dst = pick(rng);
      int src = pick(rng);
      const int kind = kindDist(rng);
      if (kind == 2) src = FlowNetwork::kTertiarySource;
      if (src == dst) src = (dst + 1) % machines;
      const double cap = capDist(rng);
      const FlowId id = net.open(src, dst, cap,
                                 kind == 2 ? FlowKind::TertiaryRead : FlowKind::RemoteRead,
                                 static_cast<double>(i));
      flows.push_back({id, net.pathNames(src, dst), cap});
    }

    // Reconstruct per-link load and capacity from the public state.
    std::unordered_map<std::string, double> capacity;
    std::unordered_map<std::string, double> load;
    for (const auto& link : net.linkStates()) capacity[link.name] = link.capacityBytesPerSec;
    for (const TestFlow& f : flows) {
      for (const std::string& l : f.path) load[l] += net.rate(f.id);
    }

    constexpr double eps = 1.0;  // bytes/s slack on multi-MB/s links
    for (const auto& [name, used] : load) {
      EXPECT_LE(used, capacity.at(name) + eps) << "conservation on " << name;
    }
    for (const TestFlow& f : flows) {
      const double mine = net.rate(f.id);
      EXPECT_GT(mine, 0.0);
      if (mine >= f.cap - eps) continue;  // demand-capped: fair by definition
      bool bottlenecked = false;
      for (const std::string& l : f.path) {
        if (load.at(l) < capacity.at(l) - eps) continue;  // link not saturated
        bool largestShare = true;
        for (const TestFlow& other : flows) {
          if (other.id == f.id) continue;
          const bool crosses =
              std::find(other.path.begin(), other.path.end(), l) != other.path.end();
          if (crosses && net.rate(other.id) > mine + eps) {
            largestShare = false;
            break;
          }
        }
        if (largestShare) {
          bottlenecked = true;
          break;
        }
      }
      EXPECT_TRUE(bottlenecked)
          << "trial " << trial << ": flow below its cap (" << mine << " < " << f.cap
          << ") without a fair bottleneck link";
    }

    // Allocation sums reported by linkStates agree with the reconstruction.
    for (const auto& link : net.linkStates()) {
      const auto it = load.find(link.name);
      const double expected = it == load.end() ? 0.0 : it->second;
      EXPECT_NEAR(link.allocatedBytesPerSec, expected, 1e-3) << link.name;
    }
  }
}

}  // namespace
}  // namespace ppsched
