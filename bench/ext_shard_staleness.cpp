// Extension: sharded multi-master scheduling — where does digest staleness
// start to hurt?
//
// The paper's single master sees every cache perfectly and instantly; that
// is exactly what stops scaling when one scheduler cannot hold a global
// fresh view of hundreds of nodes. The sharded coordinator (src/shard/)
// partitions the cluster into K shards, each running its own instance of
// the policy over its slice, exchanging coarse cache digests on a period P
// and stealing queued jobs from backlogged peers when a slice drains.
//
// This bench sweeps the (K, P, steal) space on two workloads:
//   1. a 200-node scale configuration (constant per-node data and cache,
//      grouped switches, pipelined cost model) tuned so the staleness
//      signal is measurable rather than masked:
//        - 8 GB caches/node: a K=4 slice holds ~50% of the data space, so
//          digest content actually discriminates between slices (with the
//          paper's 100 GB caches every slice eventually claims everything
//          and routing degenerates to join-shortest-queue);
//        - 2048 digest buckets: at 200 nodes a job splits into ~1000-event
//          subjobs, and a digest bucket must be small enough that one
//          cached subjob can set its bit — the 256-bucket default never
//          fires at this scale;
//        - a modernized tertiary front-end (5 MB/s streams, 200 MB/s
//          aggregate): stream transfer overlaps compute, so a cold event
//          costs the same elapsed time as a cached one and staleness shows
//          up where it belongs — as wasted tertiary bandwidth (the
//          cache-hit column), not as a saturated-pipe artifact;
//        - a 1000-event subjob floor, keeping per-job parallelism below
//          the slice width so the single master's wider fan-out does not
//          dominate the comparison.
//   2. the IN2P3-shaped real-trace slice on the paper's 10-node cluster
//      (heavy-tailed sizes, Zipf users, dataset locality).
// and locates the staleness knee: the digest period beyond which affinity
// routing and steal targeting degrade into blind guesses and the sharded
// cache-hit fraction falls more than 10% below the fresh-digest (P = 0)
// arm. The trailing claim lines assert the acceptance criteria: the knee
// exists within the sweep, and the short-period K=4 + stealing arm stays
// within 10% of the single-master speedup.
//
// Columns: stale% = staleSteals / steals (digest promised cache affinity
// the thief's slice no longer held); age_s = mean digest age at
// digest-guided decisions; rehomed = pending jobs moved off dead slices
// (0 here: failures are off in this bench).
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shard/shard_config.h"

namespace {

using namespace ppsched;
using namespace ppsched::bench;

struct Arm {
  std::string label;    // perf-record series key
  ExperimentSpec spec;
  RunResult result;
};

ExperimentSpec scaleSpec(int nodes, const std::string& shards) {
  ExperimentSpec spec;
  spec.policyName = "out_of_order";
  spec.seed = 20260807;
  spec.sim.numNodes = nodes;
  // Constant per-node data (4 GB) and cache (8 GB): a K=4 slice covers
  // half the data space, so digests have something to disagree about.
  spec.sim.totalDataBytes = static_cast<std::uint64_t>(nodes) * 4'000'000'000ULL;
  spec.sim.cacheBytesPerNode = 8'000'000'000ULL;
  spec.sim.network.enabled = true;
  spec.sim.network.nicBytesPerSec = 125e6;
  spec.sim.network.nodesPerSwitch = 5;
  spec.sim.network.uplinkBytesPerSec = 20e6;
  // Disk-array tertiary front-end: the aggregate pipe is provisioned so
  // bandwidth waste is recorded (in the hit rate) rather than hiding the
  // staleness signal behind a saturated pipe.
  spec.sim.network.tertiaryIngressBytesPerSec = 200e6;
  spec.sim.cost.pipelined = true;
  spec.sim.cost.tertiaryBytesPerSec = 5e6;
  // Subjob floor: cap per-job fan-out (~40 subjobs for the mean job) below
  // the 50-node slice width, as any real per-subjob dispatch overhead would.
  spec.sim.minSubjobEvents = 1000;
  spec.sim.shards = parseShardSpec(shards);
  spec.jobsPerHour = 0.15 * nodes;
  spec.warmupJobs = jobs(80);
  spec.measuredJobs = jobs(400);
  spec.maxJobsInSystem = 400;
  return spec;
}

/// The IN2P3-shaped slice checked in for ext_real_trace (or PPSCHED_TRACE).
std::string tracePath() {
  if (const char* p = std::getenv("PPSCHED_TRACE")) return p;
  return "bench/data/in2p3_2024_sample.csv";
}

ExperimentSpec traceSpec(const std::string& shards) {
  ExperimentSpec spec;
  spec.policyName = "out_of_order";
  spec.tracePath = tracePath();
  spec.sim.shards = parseShardSpec(shards);
  spec.warmupJobs = jobs(300);
  spec.measuredJobs = jobs(1500);
  spec.maxJobsInSystem = 1000;
  return spec;
}

void printTable(const char* title, const std::vector<Arm>& arms) {
  std::printf("%s\n", title);
  std::printf("%-26s %9s %8s %10s %8s %7s %9s %8s\n", "arm", "speedup", "wait_h",
              "cache_hit", "steals", "stale%", "age_s", "rehomed");
  for (const Arm& a : arms) {
    if (a.result.overloaded) {
      std::printf("%-26s %9s\n", a.label.c_str(), "overloaded");
      continue;
    }
    const ShardReport& s = a.result.shards;
    std::size_t rehomed = 0;
    for (const ShardStats& st : s.shards) rehomed += st.jobsRehomed;
    const double stalePct =
        s.steals > 0 ? 100.0 * static_cast<double>(s.staleSteals) /
                           static_cast<double>(s.steals)
                     : 0.0;
    std::printf("%-26s %9.2f %8.3f %10.3f %8zu %7.1f %9.1f %8zu\n", a.label.c_str(),
                a.result.avgSpeedup, units::toHours(a.result.avgWait),
                a.result.cacheHitFraction, s.steals, stalePct, s.meanDigestAgeSec,
                rehomed);
  }
  std::printf("\n");
}

const Arm* find(const std::vector<Arm>& arms, const std::string& label) {
  for (const Arm& a : arms) {
    if (a.label == label) return &a;
  }
  return nullptr;
}

}  // namespace

int main() {
  printHeader("Shard staleness",
              "Digest period x shard count x stealing vs the single master");

  const int nodes = fastMode() ? 100 : 200;
  // Digest periods (seconds): 0 = rebuilt at every digest-guided decision.
  std::vector<double> periods{0.0, 600.0, 3600.0, 21600.0, 86400.0};
  if (fastMode()) periods = {0.0, 3600.0, 86400.0};

  std::vector<Arm> scaleArms;
  scaleArms.push_back({"single", scaleSpec(nodes, "off"), {}});
  char spec[96];
  char label[64];
  for (const double p : periods) {
    for (const bool steal : {true, false}) {
      std::snprintf(spec, sizeof spec, "4,digest=%.0f,admit=1,buckets=2048%s", p,
                    steal ? "" : ",steal=off");
      std::snprintf(label, sizeof label, "k4/p%.0f/%s", p, steal ? "steal" : "nosteal");
      scaleArms.push_back({label, scaleSpec(nodes, spec), {}});
    }
  }
  // Shard-count axis: K = 8 at the fresh and one stale period.
  scaleArms.push_back({"k8/p0/steal", scaleSpec(nodes, "8,digest=0,admit=1,buckets=2048"), {}});
  if (!fastMode()) {
    scaleArms.push_back(
        {"k8/p3600/steal", scaleSpec(nodes, "8,digest=3600,admit=1,buckets=2048"), {}});
    // Drift axis (full runs only): hot regions sliding through the data
    // space once per 6 h make any digest older than the drift blind, so
    // the knee deepens — the stationary sweep is the conservative bound.
    for (const double p : {0.0, 86400.0}) {
      std::snprintf(spec, sizeof spec, "4,digest=%.0f,admit=1,buckets=2048", p);
      std::snprintf(label, sizeof label, "k4/p%.0f/steal/drift", p);
      Arm arm{label, scaleSpec(nodes, spec), {}};
      arm.spec.sim.workload.hotDriftPeriod = 6.0 * 3600.0;
      scaleArms.push_back(std::move(arm));
    }
  }

  std::vector<Arm> traceArms;
  const bool haveTrace = std::ifstream(tracePath()).good();
  if (haveTrace) {
    traceArms.push_back({"trace/single", traceSpec("off"), {}});
    traceArms.push_back({"trace/k4/p0", traceSpec("4,digest=0,admit=4"), {}});
    traceArms.push_back({"trace/k4/p43200", traceSpec("4,digest=43200,admit=4"), {}});
  } else {
    std::printf("(%s not found; skipping the trace section)\n\n", tracePath().c_str());
  }

  ThreadPool pool;
  auto runAll = [&pool](std::vector<Arm>& arms) {
    std::vector<std::future<RunResult>> futures;
    futures.reserve(arms.size());
    for (const Arm& a : arms) {
      futures.push_back(pool.submit([spec = a.spec] { return runExperiment(spec); }));
    }
    for (std::size_t i = 0; i < arms.size(); ++i) arms[i].result = futures[i].get();
  };
  runAll(scaleArms);
  runAll(traceArms);

  std::snprintf(label, sizeof label,
                "%d nodes, %.0f jobs/hour, out_of_order per shard, failures off:", nodes,
                0.15 * nodes);
  printTable(label, scaleArms);
  if (!traceArms.empty()) {
    printTable("IN2P3-shaped trace, 10 nodes:", traceArms);
  }

  // ---- claim lines (the ISSUE's acceptance criteria) ----------------------
  const Arm* single = find(scaleArms, "single");
  const Arm* fresh = find(scaleArms, "k4/p0/steal");
  double kneePeriod = -1.0;
  if (fresh != nullptr && !fresh->result.overloaded) {
    for (const double p : periods) {
      if (p == 0.0) continue;
      std::snprintf(label, sizeof label, "k4/p%.0f/steal", p);
      const Arm* arm = find(scaleArms, label);
      if (arm == nullptr || arm->result.overloaded) continue;
      if (arm->result.cacheHitFraction < 0.9 * fresh->result.cacheHitFraction) {
        kneePeriod = p;
        break;
      }
    }
  }
  if (kneePeriod > 0.0) {
    const Arm* knee = find(scaleArms, std::string("k4/p") +
                                          std::to_string(static_cast<long long>(kneePeriod)) +
                                          "/steal");
    std::printf("staleness knee: digest period %.0f s drops the K=4 cache-hit to %.3f, "
                ">=10%% below the fresh-digest %.3f (knee found)\n",
                kneePeriod, knee->result.cacheHitFraction, fresh->result.cacheHitFraction);
  } else {
    std::printf("staleness knee: NOT FOUND within the swept periods\n");
  }
  if (single != nullptr && fresh != nullptr && !single->result.overloaded &&
      !fresh->result.overloaded) {
    const double ratio = fresh->result.avgSpeedup / single->result.avgSpeedup;
    std::printf("fresh-digest K=4 + stealing: %.2f vs single-master %.2f speedup, "
                "ratio %.3f (%s)\n",
                fresh->result.avgSpeedup, single->result.avgSpeedup, ratio,
                ratio >= 0.9 ? "within 10%" : "OUTSIDE 10%");
  }
  // Stealing's contribution at the fresh period: affinity routing
  // concentrates load on the slices that own the hot data, and without
  // stealing the concentrated shard's queue never drains.
  const Arm* noSteal = find(scaleArms, "k4/p0/nosteal");
  if (fresh != nullptr && noSteal != nullptr && !fresh->result.overloaded) {
    if (noSteal->result.overloaded) {
      std::printf("stealing at P=0: without stealing the fresh-digest K=4 arm "
                  "OVERLOADS (affinity concentration); with stealing it runs at "
                  "wait %.3f h (%zu steals)\n",
                  units::toHours(fresh->result.avgWait), fresh->result.shards.steals);
    } else {
      std::printf("stealing at P=0: wait %.3f h with steals vs %.3f h without "
                  "(%zu steals, %.1f%% stale)\n",
                  units::toHours(fresh->result.avgWait),
                  units::toHours(noSteal->result.avgWait), fresh->result.shards.steals,
                  fresh->result.shards.steals > 0
                      ? 100.0 * static_cast<double>(fresh->result.shards.staleSteals) /
                            static_cast<double>(fresh->result.shards.steals)
                      : 0.0);
    }
  }

  if (const char* dir = jsonDir()) {
    std::vector<PerfRecord> records;
    for (const std::vector<Arm>* arms : {&scaleArms, &traceArms}) {
      for (const Arm& a : *arms) {
        if (a.result.overloaded) continue;
        records.push_back({a.label, "speedup", a.result.avgSpeedup, "x"});
        records.push_back({a.label, "wait", units::toHours(a.result.avgWait), "hours"});
        records.push_back({a.label, "cache_hit", a.result.cacheHitFraction, ""});
      }
    }
    const std::string path = writeBenchJson(dir, "ext_shard_staleness", records);
    if (!path.empty()) std::printf("\n(perf json written to %s)\n", path.c_str());
  }

  std::printf("\nThe digest period is the freshness the shards' mutual view is allowed to\n"
              "lose. Below the knee, affinity routing and steal targeting still hit the\n"
              "caches; beyond it, shards route on memories of evicted data, the stale-\n"
              "steal fraction climbs, and the hit rate decays toward blind round-robin.\n");
  return 0;
}
