// Figure 7: adaptive delay scheduling (stripe 200 and 5000 events, cache
// 100 GB) vs out-of-order scheduling. Waiting time here INCLUDES the period
// delay (unlike Figs 5/6) — the paper plots the delay-included wait for the
// adaptive policy.
//
// Paper shape to reproduce: at low loads the adaptive policy's delay is
// zero and its speedup matches or slightly beats out-of-order (small
// stripes parallelize more); it sustains loads out-of-order cannot, paying
// a modest waiting-time overhead (up to ~1 h) at low loads.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 7", "Adaptive delay vs out-of-order (cache 100 GB)");

  ExperimentSpec base;
  base.warmupJobs = jobs(800);
  base.measuredJobs = jobs(2600);
  base.maxJobsInSystem = 3000;

  std::vector<Series> series;
  for (const std::uint64_t stripe : {200ull, 5000ull}) {
    Series s{"adaptive-s" + std::to_string(stripe), base};
    s.spec.policyName = "adaptive";
    s.spec.policyParams.stripeEvents = stripe;
    series.push_back(s);
  }
  {
    Series s{"out-of-order", base};
    s.spec.policyName = "out_of_order";
    s.spec.maxJobsInSystem = 500;
    series.push_back(s);
  }

  const std::vector<double> loads{0.5, 0.8, 1.1, 1.4, 1.7, 2.0, 2.3, 2.6};
  runAndPrint(series, loads, /*waitExDelay=*/false, "fig7");

  std::printf("Paper reference: adaptive delay sustains loads out-of-order cannot;\n"
              "at low loads the period delay is zero and speedup is comparable or\n"
              "slightly better for small stripes (Fig 7).\n");
  return 0;
}
