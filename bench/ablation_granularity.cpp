// Ablation: simulator granularity knobs.
//
// Two internal parameters could bias results if chosen badly:
//   - maxSpanEvents: how often a run re-plans its data source (and how
//     often LRU bookkeeping happens);
//   - minSubjobEvents: the paper's minimal subjob size (10 events).
// This bench shows the measured metrics are insensitive to the span size
// (validating the span-wise execution model) and quantifies the effect of
// the minimal subjob size.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Ablation", "Engine granularity: span size and minimal subjob size");

  ExperimentSpec base;
  base.policyName = "out_of_order";
  base.jobsPerHour = 1.2;
  base.warmupJobs = jobs(250);
  base.measuredJobs = jobs(1200);
  base.maxJobsInSystem = 500;

  std::printf("span sensitivity (out-of-order, 1.2 jobs/hour):\n");
  std::printf("%-14s %12s %14s %12s\n", "maxSpanEvents", "speedup", "wait (h)", "hit %");
  for (const std::uint64_t span : {500ull, 2000ull, 5000ull, 20'000ull}) {
    ExperimentSpec spec = base;
    spec.sim.maxSpanEvents = span;
    spec.sim.finalize();
    const RunResult r = runExperiment(spec);
    std::printf("%-14llu %12.2f %14.2f %11.0f%%\n", static_cast<unsigned long long>(span),
                r.avgSpeedup, units::toHours(r.avgWait), 100.0 * r.cacheHitFraction);
  }

  std::printf("\nminimal subjob size (paper: 10 events):\n");
  std::printf("%-14s %12s %14s\n", "minSubjob", "speedup", "wait (h)");
  for (const std::uint64_t minSize : {10ull, 100ull, 1000ull, 10'000ull}) {
    ExperimentSpec spec = base;
    spec.sim.minSubjobEvents = minSize;
    spec.sim.finalize();
    const RunResult r = runExperiment(spec);
    std::printf("%-14llu %12.2f %14.2f\n", static_cast<unsigned long long>(minSize),
                r.avgSpeedup, units::toHours(r.avgWait));
  }

  std::printf("\nExpected: span size has negligible influence (execution model is\n"
              "rate-exact); very large minimal subjob sizes reduce parallelism.\n");
  return 0;
}
