// Ablation: how much of the caching win comes from access skew?
//
// The paper's workload sends 50% of job start points into 10% of the data
// space (§2.4). Caching policies profit from that skew; this ablation
// varies it from uniform to extreme and reports where the out-of-order
// policy's advantage over the cache-less splitting policy comes from.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Ablation", "Access skew: hot-region probability (10% of the data space)");

  std::printf("%-14s %14s %16s %14s\n", "hot prob", "ooo speedup", "splitting", "ooo hit %");
  for (const double hotProb : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    double speedup[2] = {0, 0};
    double hit = 0.0;
    const char* policies[2] = {"out_of_order", "splitting"};
    for (int p = 0; p < 2; ++p) {
      ExperimentSpec spec;
      spec.policyName = policies[p];
      spec.jobsPerHour = 0.9;
      spec.sim.workload.hotProbability = hotProb;
      spec.sim.finalize();
      spec.warmupJobs = jobs(250);
      spec.measuredJobs = jobs(1000);
      spec.maxJobsInSystem = 500;
      const RunResult r = runExperiment(spec);
      speedup[p] = r.avgSpeedup;
      if (p == 0) hit = r.cacheHitFraction;
    }
    std::printf("%-14.2f %14.2f %16.2f %13.0f%%\n", hotProb, speedup[0], speedup[1],
                100.0 * hit);
  }

  std::printf("\nExpected: at uniform access (hot prob 0) the total cluster cache\n"
              "(1 TB of 2 TB) still gives a hit rate near 50%%; skew raises hit\n"
              "rates and widens the gap over the cache-less splitting policy —\n"
              "the paper's hot-region assumption matters, but is not load-bearing\n"
              "for the policy ordering.\n");
  return 0;
}
