// Figure 4: waiting-time distribution for out-of-order scheduling near its
// maximal sustainable load (100 GB cache at 1.7 jobs/hour, 50 GB at 1.44).
//
// Paper shape to reproduce: a bimodal log-log histogram — jobs with cached
// data overtake (left mass, minutes-to-an-hour), jobs without cached data
// are overtaken (right tail, up to one-two days); worst case stays within
// ~2 days thanks to the starvation guard.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 4", "Waiting-time distribution, out-of-order scheduling near max load");

  // The paper probes "near the maximal sustainable load": its out-of-order
  // maxima (1.7 / 1.44 jobs/hour). Our reproduction sustains somewhat more
  // (EXPERIMENTS.md), so we also probe near our own maxima — those rows are
  // the like-for-like comparison with the paper's figure.
  struct Config {
    std::uint64_t cacheGb;
    double load;
  };
  for (const Config& c :
       {Config{100, 1.7}, Config{50, 1.44}, Config{100, 2.05}, Config{50, 1.55}}) {
    ExperimentSpec spec;
    spec.policyName = "out_of_order";
    spec.jobsPerHour = c.load;
    spec.sim.cacheBytesPerNode = c.cacheGb * 1'000'000'000ULL;
    spec.sim.finalize();
    spec.warmupJobs = jobs(300);
    spec.measuredJobs = jobs(2500);
    spec.maxJobsInSystem = 600;
    spec.withHistogram = true;

    const RunResult r = runExperiment(spec);
    std::printf("cache %lu GB, load %.2f jobs/hour: %zu jobs measured%s\n",
                static_cast<unsigned long>(c.cacheGb), c.load, r.measuredJobs,
                r.overloaded ? " [overloaded]" : "");
    std::printf("  mean %.2f h | median %.2f h | p95 %.2f h | max %.2f h\n",
                units::toHours(r.avgWait), units::toHours(r.medianWait),
                units::toHours(r.p95Wait), units::toHours(r.maxWait));
    std::printf("  %-14s %s\n", "wait >=", "jobs");
    for (const auto& [lo, count] : r.waitHistogram) {
      if (count == 0) continue;
      std::printf("  %10.2f h   %llu\n", units::toHours(lo),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  std::printf("Paper reference: two-population distribution; worst case one to two\n"
              "days depending on cache size, acceptable against the 9 h single-node\n"
              "job time (Fig 4).\n");
  return 0;
}
