// §2.4 sensitivity claim: "Simulations were also carried out for 5 and 20
// nodes and lead to similar results."
//
// We scale the cluster (5/10/20 nodes) and normalize the load to the same
// fraction of each cluster's theoretical maximum; the paper's claim holds
// if the policies' relative behaviour (speedup per node, hit rates,
// overload fractions) is stable across cluster sizes.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Section 2.4", "Cluster-size sensitivity: 5, 10 and 20 nodes");

  std::printf("A) paper setup: 100 GB per node (total cluster cache scales with\n"
              "   the node count: 0.5 / 1 / 2 TB of the 2 TB data space)\n");
  std::printf("%-8s %-16s %12s %14s %12s %12s\n", "nodes", "policy", "speedup",
              "speedup/node", "wait (h)", "hit %");
  for (const int nodes : {5, 10, 20}) {
    SimConfig cfg = SimConfig::paperDefaults();
    cfg.numNodes = nodes;
    cfg.finalize();
    // 30% of each configuration's theoretical maximum.
    const double load = 0.3 * cfg.maxTheoreticalLoadJobsPerHour();
    for (const char* policy : {"cache_oriented", "out_of_order"}) {
      ExperimentSpec spec;
      spec.sim = cfg;
      spec.policyName = policy;
      spec.jobsPerHour = load;
      spec.warmupJobs = jobs(250);
      spec.measuredJobs = jobs(1200);
      spec.maxJobsInSystem = 500;
      const RunResult r = runExperiment(spec);
      std::printf("%-8d %-16s %12.2f %14.3f %12.3f %11.0f%%\n", nodes, policy, r.avgSpeedup,
                  r.avgSpeedup / nodes, units::toHours(r.avgWait),
                  100.0 * r.cacheHitFraction);
    }
  }

  std::printf("\nB) constant total cluster cache (1 TB split across the nodes):\n");
  std::printf("%-8s %-16s %12s %14s %12s %12s\n", "nodes", "policy", "speedup",
              "speedup/node", "wait (h)", "hit %");
  for (const int nodes : {5, 10, 20}) {
    SimConfig cfg = SimConfig::paperDefaults();
    cfg.numNodes = nodes;
    cfg.cacheBytesPerNode = 1'000'000'000'000ULL / static_cast<std::uint64_t>(nodes);
    cfg.finalize();
    const double load = 0.3 * cfg.maxTheoreticalLoadJobsPerHour();
    for (const char* policy : {"cache_oriented", "out_of_order"}) {
      ExperimentSpec spec;
      spec.sim = cfg;
      spec.policyName = policy;
      spec.jobsPerHour = load;
      spec.warmupJobs = jobs(250);
      spec.measuredJobs = jobs(1200);
      spec.maxJobsInSystem = 500;
      const RunResult r = runExperiment(spec);
      std::printf("%-8d %-16s %12.2f %14.3f %12.3f %11.0f%%\n", nodes, policy, r.avgSpeedup,
                  r.avgSpeedup / nodes, units::toHours(r.avgWait),
                  100.0 * r.cacheHitFraction);
    }
  }

  std::printf("\nPaper claim: results for 5 and 20 nodes are similar to 10 nodes. In\n"
              "setup A the hit rate grows with the node count because the total\n"
              "cluster cache grows with it; setup B isolates the cluster-size\n"
              "effect proper, where per-node speedups and hit rates should be\n"
              "comparable across rows.\n");
  return 0;
}
