// Ablation: pipelining data transfer with processing (§7 future work).
//
// The paper's conclusion proposes "pipelining of processing and data
// transfers" as future work. With pipelining, an uncached event costs
// max(0.6, 0.2) = 0.6 s instead of 0.8 s, and a cached one max(0.06, 0.2) =
// 0.2 s instead of 0.26 s — a 25-30% gain on both paths. This bench
// quantifies what the paper left open, across the main policies.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Ablation", "Serial fetch+process vs pipelined (paper's future work)");

  ExperimentSpec base;
  base.warmupJobs = jobs(250);
  base.measuredJobs = jobs(1200);
  base.maxJobsInSystem = 500;
  base.jobsPerHour = 1.0;

  // Speedup is relative to each cost model's own single-node reference, so
  // it cannot compare the two models; mean processing and waiting times can.
  std::printf("%-16s %18s %18s %10s %14s\n", "policy", "serial proc (h)",
              "pipelined proc (h)", "gain", "wait: s->p (h)");
  for (const char* policy : {"farm", "splitting", "cache_oriented", "out_of_order"}) {
    ExperimentSpec serial = base;
    serial.policyName = policy;
    ExperimentSpec pipelined = serial;
    pipelined.sim.cost.pipelined = true;
    pipelined.sim.finalize();

    const RunResult rs = runExperiment(serial);
    const RunResult rp = runExperiment(pipelined);
    std::printf("%-16s %18.2f %18.2f %9.1f%% %6.2f -> %.2f\n", policy,
                units::toHours(rs.avgProcessing), units::toHours(rp.avgProcessing),
                100.0 * (rs.avgProcessing / rp.avgProcessing - 1.0),
                units::toHours(rs.avgWait), units::toHours(rp.avgWait));
  }

  std::printf("\nExpected: every policy's processing time improves; the cache-less\n"
              "policies by up to ~33%% (0.8 -> 0.6 s/event on the tertiary path),\n"
              "cached paths by up to ~30%% (0.26 -> 0.2); queueing delays shrink\n"
              "further because utilization drops.\n");
  return 0;
}
