// Extension: scheduling under node failures (availability sweep).
//
// The paper assumes a perfectly reliable cluster; real farms lose machines.
// This bench turns on the stochastic failure model (exponential MTBF/MTTR
// per machine, crashed machines lose their disk cache) and sweeps MTBF from
// "never fails" down to one failure per machine-day. Every policy runs the
// SAME finite workload to drain, so the headline number is completion: with
// the default onNodeDown re-dispatch path, 100% of jobs must finish at any
// MTBF — failures cost waiting time and redone work, never jobs.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Availability: MTBF sweep x policy, run to drain");

  struct Cell {
    double mtbfSec;
    std::string policy;
    RunResult result;
    SimTime endTime = 0.0;
  };
  const std::vector<std::pair<const char*, double>> mtbfs{
      {"inf", 0.0},
      {"7d", 7 * units::day},
      {"2d", 2 * units::day},
      {"1d", 1 * units::day},
  };
  const std::size_t totalJobs = jobs(400);
  const std::size_t warmup = jobs(50);

  std::vector<Cell> cells;
  for (const auto& [label, mtbf] : mtbfs) {
    (void)label;
    for (const std::string& policy : policyNames()) {
      cells.push_back({mtbf, policy, {}, 0.0});
    }
  }

  ThreadPool pool;
  pool.parallelFor(cells.size(), [&](std::size_t i) {
    Cell& cell = cells[i];
    SimConfig cfg = SimConfig::paperDefaults();
    cfg.workload.jobsPerHour = 1.0;
    cfg.failures.meanTimeBetweenFailuresSec = cell.mtbfSec;
    cfg.failures.meanTimeToRepairSec = 2 * units::hour;
    cfg.finalize();

    PolicyParams params;
    params.periodDelay = 11 * units::hour;

    MetricsCollector metrics(cfg.cost, {warmup, 0.0});
    Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 42),
                  makePolicy(cell.policy, params), metrics);
    StopCondition stop;
    stop.arrivedJobs = totalJobs;  // then drain: completion is the headline
    stop.maxJobsInSystem = 4000;
    stop.simTimeLimit = 4000 * units::day;  // safety net only
    engine.run(stop);
    cell.result = metrics.finalize(engine.now());
    cell.endTime = engine.now();
  });

  std::printf("%-6s %-16s %10s %10s %10s %9s %9s %9s\n", "mtbf", "policy", "complete",
              "speedup", "wait (h)", "fails", "lostruns", "lost ev");
  for (const Cell& cell : cells) {
    const char* label = "inf";
    for (const auto& [l, m] : mtbfs) {
      if (m == cell.mtbfSec) label = l;
    }
    const RunResult& r = cell.result;
    const double complete =
        r.arrivedJobs == 0 ? 0.0
                           : 100.0 * static_cast<double>(r.completedJobs) /
                                 static_cast<double>(r.arrivedJobs);
    std::printf("%-6s %-16s %9.1f%% %10.2f %10.2f %9llu %9llu %9llu\n", label,
                cell.policy.c_str(), complete, r.avgSpeedup, units::toHours(r.avgWait),
                static_cast<unsigned long long>(r.nodeFailures),
                static_cast<unsigned long long>(r.lostRuns),
                static_cast<unsigned long long>(r.lostEvents));
  }

  std::printf("\nFindings: completion stays at 100%% for every policy at any MTBF —\n"
              "the host-level re-dispatch path (default onNodeDown) makes fault\n"
              "tolerance a property of the framework, not of each policy. What\n"
              "failures DO cost is waiting time and redone work: crashes discard\n"
              "the in-flight span, wipe the node's cache (so the cache-aware\n"
              "policies pay extra tertiary reloads), and remove capacity for the\n"
              "MTTR. At MTBF = 1 day the cluster of 10 loses ~10 machine-repairs\n"
              "per day, and waits degrade accordingly but stay finite well below\n"
              "the overload threshold.\n");
  return 0;
}
