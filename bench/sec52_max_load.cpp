// §5.2 headline numbers: maximal sustainable loads.
//
// Paper claims: the processing farm sustains ~1.1 jobs/hour; delayed
// scheduling with 200 GB caches, 1 week delay and stripe 200 reaches ~3
// jobs/hour with average speedup above 10 — close to the theoretical
// maximum of 3.46 and about 3x the farm's load. The maximal load depends
// almost linearly on both the delay and the stripe size.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Section 5.2", "Maximal sustainable load per policy");

  const SimConfig paper = SimConfig::paperDefaults();
  std::printf("theoretical maximum: %.2f jobs/hour; farm theory: %.2f jobs/hour\n\n",
              paper.maxTheoreticalLoadJobsPerHour(), paper.maxFarmLoadJobsPerHour());

  ExperimentSpec base;
  base.warmupJobs = jobs(250);
  base.measuredJobs = jobs(900);
  base.maxJobsInSystem = 500;

  std::printf("%-34s %22s\n", "configuration", "max load (jobs/hour)");

  auto report = [&](const char* label, ExperimentSpec spec, double lo, double hi) {
    const double maxLoad = findMaxSustainableLoad(spec, lo, hi, 0.08);
    // maxLoad == hi means the whole bracket was sustainable.
    std::printf("%-32s %s%21.2f\n", label, maxLoad >= hi ? ">=" : "  ", maxLoad);
    return maxLoad;
  };

  ExperimentSpec farm = base;
  farm.policyName = "farm";
  const double farmMax = report("farm (no cache)", farm, 0.5, 1.6);

  ExperimentSpec ooo = base;
  ooo.policyName = "out_of_order";
  ooo.sim.cacheBytesPerNode = 100'000'000'000ULL;
  ooo.sim.finalize();
  report("out-of-order, 100 GB", ooo, 0.8, 2.6);

  // Week-long periods hold ~600 jobs each at these loads; detecting a slow
  // drift under that sawtooth needs a long measurement window, and no load
  // above the theoretical 3.46 can be steady state, so the bracket stops
  // just below it.
  ExperimentSpec delayed = base;
  delayed.policyName = "delayed";
  delayed.policyParams.periodDelay = units::week;
  delayed.policyParams.stripeEvents = 200;
  delayed.sim.cacheBytesPerNode = 200'000'000'000ULL;
  delayed.sim.finalize();
  delayed.warmupJobs = jobs(1500);
  delayed.measuredJobs = jobs(6000);
  delayed.maxJobsInSystem = 6000;
  const double delayedMax = report("delayed, 200 GB, 1 week, s=200", delayed, 1.2, 3.4);

  std::printf("\ndelayed/farm sustainable-load ratio: %.2f (paper: ~3x, 3.0 vs 1.1)\n",
              delayedMax / farmMax);

  // Linearity probes (paper: "almost linear dependency of the maximal load
  // with respect to both the delay and the stripe size").
  std::printf("\nmax load vs delay (200 GB, stripe 200):\n");
  for (const Duration d : {2 * units::day, 4 * units::day, units::week}) {
    ExperimentSpec spec = delayed;
    spec.policyParams.periodDelay = d;
    const double m = findMaxSustainableLoad(spec, 1.0, 3.4, 0.1);
    std::printf("  delay %5.1f days -> %.2f jobs/hour\n", d / units::day, m);
  }
  return 0;
}
