// Extension: diurnal load and the adaptive delay policy.
//
// The paper evaluates at constant Poisson rates; real analysis clusters see
// day/night cycles. With the arrival rate modulated as
// 1 + 0.8*sin(2*pi*t/24h) around a mean of 1.6 jobs/hour, peaks reach 2.9
// jobs/hour — far beyond out-of-order's maximum — while nights nearly
// drain. The adaptive policy should ride the wave: zero delay at night,
// long periods at the peak; out-of-order must eventually drown.
#include "bench_util.h"
#include "core/engine.h"
#include "sched/adaptive.h"
#include "workload/generator.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Diurnal load (mean 1.9 jobs/hour, amplitude 0.7, 24 h cycle)");

  struct Case {
    const char* label;
    const char* policy;
    bool feedback;
  };
  const Case cases[] = {
      {"out_of_order", "out_of_order", false},
      {"adaptive-table", "adaptive", false},
      {"adaptive-fdbk", "adaptive", true},
      {"delayed-6h", "delayed", false},
      {"mixed-6h", "mixed", false},
  };
  std::printf("%-16s %12s %12s %12s %12s\n", "policy", "speedup", "wait (h)", "p95 (h)",
              "overloaded");
  for (const Case& c : cases) {
    ExperimentSpec spec;
    spec.policyName = c.policy;
    spec.jobsPerHour = 1.9;  // peaks ~3.2: beyond out-of-order's maximum
    spec.sim.workload.diurnalAmplitude = 0.7;
    spec.sim.workload.diurnalPeriod = 24 * units::hour;
    spec.sim.finalize();
    spec.policyParams.stripeEvents = 1000;
    spec.policyParams.periodDelay = 6 * units::hour;
    spec.policyParams.adaptiveFeedback = c.feedback;
    // Short window so the controllers can follow the daily wave.
    spec.policyParams.loadWindow = 12 * units::hour;
    spec.warmupJobs = jobs(600);
    spec.measuredJobs = jobs(2600);
    spec.maxJobsInSystem = 3000;
    spec.prewarmCaches = true;

    const RunResult r = runExperiment(spec);
    std::printf("%-16s %12.2f %12.2f %12.2f %12s\n", c.label, r.avgSpeedup,
                units::toHours(r.avgWait), units::toHours(r.p95Wait),
                r.overloaded ? "yes" : "no");
  }

  // A cycle-aware configuration: feedback controller with its delay ladder
  // capped well below the cycle length, run through the library API.
  {
    SimConfig cfg = SimConfig::paperDefaults();
    cfg.workload.jobsPerHour = 1.9;
    cfg.workload.diurnalAmplitude = 0.7;
    cfg.workload.diurnalPeriod = 24 * units::hour;
    cfg.finalize();
    DelayedParams dp;
    dp.stripeEvents = 1000;
    dp.loadWindow = 12 * units::hour;
    FeedbackAdaptiveDelay::Params fp;
    fp.ladder = {0.0, 2 * units::hour, 6 * units::hour, 12 * units::hour};
    auto policy = std::make_unique<DelayedScheduler>(
        dp, std::make_unique<FeedbackAdaptiveDelay>(fp), "adaptive");
    MetricsCollector metrics(cfg.cost, WarmupConfig{jobs(600), 0.0});
    Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 42),
                  std::move(policy), metrics);
    engine.run({.completedJobs = jobs(600) + jobs(2600), .maxJobsInSystem = 3000});
    const RunResult r = metrics.finalize(engine.now());
    std::printf("%-16s %12.2f %12.2f %12.2f %12s\n", "adaptive-capped", r.avgSpeedup,
                units::toHours(r.avgWait), units::toHours(r.p95Wait),
                r.overloaded ? "yes" : "no");
  }

  std::printf("\nFindings this bench demonstrates: batching with periods shorter than\n"
              "the cycle (delayed-6h, mixed-6h, adaptive-capped) absorbs daily peaks\n"
              "beyond out-of-order's stationary maximum. Adaptive controllers with\n"
              "their default, stationary-load settings over-commit to periods longer\n"
              "than the cycle and perform poorly — a negative result for naive\n"
              "load-lookup adaptation under non-stationary load; capping the delay\n"
              "ladder below the cycle length repairs it.\n");
  return 0;
}
