// Figure 5: delayed scheduling for period delays of 11 hours, 2 days and
// 1 week vs out-of-order scheduling (cache 100 GB, stripe 5000 events).
// Waiting times are reported with the period delay excluded, as in the
// paper's figure.
//
// Paper shape to reproduce: delayed scheduling has lower speedup and higher
// waiting time than out-of-order at loads both can sustain, but sustains
// much higher loads, growing with the delay (up to ~1 week periods).
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 5", "Delayed scheduling for different period delays (stripe 5000)");

  ExperimentSpec base;
  base.warmupJobs = jobs(800);
  base.measuredJobs = jobs(2600);
  base.maxJobsInSystem = 3000;  // whole periods of jobs legitimately queue

  std::vector<Series> series;
  struct DelayCase {
    const char* label;
    Duration delay;
  };
  for (const DelayCase& d : {DelayCase{"delay-11h", 11 * units::hour},
                             DelayCase{"delay-2d", 2 * units::day},
                             DelayCase{"delay-1w", units::week}}) {
    Series s{d.label, base};
    s.spec.policyName = "delayed";
    s.spec.policyParams.periodDelay = d.delay;
    s.spec.policyParams.stripeEvents = 5000;
    series.push_back(s);
  }
  {
    Series s{"out-of-order", base};
    s.spec.policyName = "out_of_order";
    s.spec.maxJobsInSystem = 500;
    series.push_back(s);
  }

  const std::vector<double> loads{1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5};
  runAndPrint(series, loads, /*waitExDelay=*/true, "fig5");

  std::printf("Paper reference: delayed scheduling behaves poorly in speedup and\n"
              "waiting time but sustains very high loads, the more so the larger the\n"
              "delay (up to 1 week for 9 h jobs) (Fig 5).\n");
  return 0;
}
