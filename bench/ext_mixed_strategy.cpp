// Extension (§7 future work): mixed scheduling — immediate out-of-order
// treatment for cached work, delayed/striped batching for uncached work.
//
// The question the paper leaves open: can a combined strategy keep
// out-of-order's response times while approaching delayed scheduling's
// sustainable load? This bench compares mixed against both parents (cache
// 100 GB, stripe 1000, mixed/delayed period 12 h).
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Mixed strategy vs out-of-order and delayed scheduling");

  ExperimentSpec base;
  base.warmupJobs = jobs(800);
  base.measuredJobs = jobs(2600);
  base.maxJobsInSystem = 3000;
  base.policyParams.stripeEvents = 1000;
  base.policyParams.periodDelay = 12 * units::hour;

  std::vector<Series> series;
  {
    Series s{"out-of-order", base};
    s.spec.policyName = "out_of_order";
    s.spec.maxJobsInSystem = 500;
    series.push_back(s);
  }
  {
    Series s{"delayed-12h", base};
    s.spec.policyName = "delayed";
    series.push_back(s);
  }
  {
    Series s{"mixed-12h", base};
    s.spec.policyName = "mixed";
    series.push_back(s);
  }

  const std::vector<double> loads{1.0, 1.3, 1.6, 1.9, 2.2, 2.5};
  runAndPrint(series, loads, /*waitExDelay=*/false, "ext_mixed");

  std::printf("Expected: mixed tracks out-of-order's waiting times at loads both\n"
              "sustain (cached work is never delayed), and keeps running at loads\n"
              "where out-of-order overloads (uncached work is batched).\n");
  return 0;
}
