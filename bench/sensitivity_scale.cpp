// Extension: does topology-aware replica placement matter at scale?
//
// The paper's measurements stop at 10 nodes (§2.4 re-runs at 5 and 20 and
// finds "similar results"). On a free LAN that generalizes: remote reads
// cost the same wherever the data sits, so placement is irrelevant. This
// bench sweeps the cluster to 200 nodes under the flow-level network model
// with a *fixed* tertiary-ingress pipe — the one resource that does not
// grow with the cluster — and per-group edge switches (5 nodes/switch,
// Gigabit NICs) whose uplink capacity is swept from unconstrained to
// 2 MB/s.
//
// Three arms per cell: out-of-order (no replication), replication with
// topology-aware placement (the default: serving node and replica target
// chosen by ranked contention-aware cost, same-switch sources preferred,
// copies withheld on congested paths), and the same policy with the
// paper's cache-content heuristic forced (topologyAware = false).
//
// Expected shape, asserted by the trailing claim lines:
//   (1) on unconstrained uplinks placement is still irrelevant —
//       topology-aware stays within 5% of out-of-order (§4.2 neutrality);
//   (2) on the narrowest uplink tier at 100+ nodes topology-aware beats
//       the cache-content heuristic, which keeps dragging reads and
//       replica copies across saturated uplinks.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct Cell {
  std::string policy;
  std::string tier;
  int nodes = 0;
  ppsched::RunResult result;
};

}  // namespace

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Scale sensitivity",
              "Topology-aware vs cache-content replica placement, 20..200 nodes");

  struct PolicyDef {
    const char* label;
    const char* name;
    bool topologyAware;
  };
  const std::vector<PolicyDef> policies{
      {"ooo", "out_of_order", false},
      {"repl_topo", "replication", true},
      {"repl_cache", "replication", false},
  };
  struct Tier {
    const char* label;
    double uplinkBytesPerSec;
  };
  const std::vector<Tier> tiers{
      {"uplink_inf", 0.0},
      {"uplink_5", 5e6},
      {"uplink_2", 2e6},
  };
  std::vector<int> nodeCounts{20, 50, 100, 200};
  if (fastMode()) nodeCounts.pop_back();  // 200-node cells are full-run only

  std::vector<Cell> cells;
  std::vector<ExperimentSpec> specs;
  for (const int nodes : nodeCounts) {
    for (const Tier& tier : tiers) {
      for (const PolicyDef& p : policies) {
        ExperimentSpec spec;
        spec.policyName = p.name;
        if (std::string(p.name) == "replication") {
          spec.policyParams.replicationThreshold = 1;
          spec.policyParams.topologyAware = p.topologyAware;
        }
        spec.seed = 20260807;
        spec.sim.numNodes = nodes;
        // Constant per-node data (4 GB) and cache (20 GB): the cache-to-data
        // ratio stays fixed while the cluster grows.
        spec.sim.totalDataBytes = static_cast<std::uint64_t>(nodes) * 4'000'000'000ULL;
        spec.sim.cacheBytesPerNode = 20'000'000'000ULL;
        spec.sim.network.enabled = true;
        spec.sim.network.nicBytesPerSec = 125e6;
        spec.sim.network.nodesPerSwitch = 5;
        spec.sim.network.uplinkBytesPerSec = tier.uplinkBytesPerSec;
        // The fixed pipe: 40 MB/s of tertiary ingress for the whole
        // cluster, whether it has 20 nodes or 200.
        spec.sim.network.tertiaryIngressBytesPerSec = 40e6;
        // Network benches study the tiers, not the paper's serial fetch
        // arithmetic: opt into the overlapped-transfer cost model.
        spec.sim.cost.pipelined = true;
        spec.jobsPerHour = 0.2 * nodes;  // constant offered load per node
        spec.warmupJobs = jobs(80);
        spec.measuredJobs = jobs(400);
        spec.maxJobsInSystem = 400;
        cells.push_back({p.label, tier.label, nodes, {}});
        specs.push_back(spec);
      }
    }
  }

  ThreadPool pool;
  std::vector<std::future<RunResult>> futures;
  futures.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    futures.push_back(pool.submit([spec] { return runExperiment(spec); }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].result = futures[i].get();

  auto cellFor = [&](int nodes, const char* tier, const char* policy) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.nodes == nodes && c.tier == tier && c.policy == policy) return &c;
    }
    return nullptr;
  };

  for (const int nodes : nodeCounts) {
    std::printf("%d nodes (%.0f jobs/hour), 5 nodes/switch, 40 MB/s tertiary ingress\n",
                nodes, 0.2 * nodes);
    std::printf("%-12s", "uplink");
    for (const PolicyDef& p : policies) std::printf(" %13s sp", p.label);
    std::printf(" %14s\n", "max link util");
    for (const Tier& tier : tiers) {
      std::printf("%-12s", tier.label);
      double maxUtil = 0.0;
      for (const PolicyDef& p : policies) {
        const Cell* c = cellFor(nodes, tier.label, p.label);
        if (c == nullptr) continue;
        if (c->result.overloaded) {
          std::printf(" %16s", "overloaded");
        } else {
          std::printf(" %16.2f", c->result.avgSpeedup);
        }
        if (c->result.network.maxLinkUtilization > maxUtil) {
          maxUtil = c->result.network.maxLinkUtilization;
        }
      }
      std::printf(" %14.2f\n", maxUtil);
    }
    std::printf("\n");
  }

  // Claim lines (the ISSUE's acceptance criteria, computed from the sweep).
  for (const int nodes : nodeCounts) {
    const Cell* ooo = cellFor(nodes, "uplink_inf", "ooo");
    const Cell* topoWide = cellFor(nodes, "uplink_inf", "repl_topo");
    if (ooo != nullptr && topoWide != nullptr && !ooo->result.overloaded &&
        !topoWide->result.overloaded) {
      const double ratio = topoWide->result.avgSpeedup / ooo->result.avgSpeedup;
      std::printf("%3d nodes: repl_topo/ooo speedup ratio %.3f on wide uplinks (%s)\n",
                  nodes, ratio, ratio >= 0.95 ? "within 5%" : "OUTSIDE 5%");
    }
    const Cell* topoNarrow = cellFor(nodes, "uplink_2", "repl_topo");
    const Cell* cacheNarrow = cellFor(nodes, "uplink_2", "repl_cache");
    if (topoNarrow != nullptr && cacheNarrow != nullptr) {
      if (cacheNarrow->result.overloaded && !topoNarrow->result.overloaded) {
        std::printf("%3d nodes: uplink_2 — cache-content placement overloads, "
                    "topology-aware sustains the load\n", nodes);
      } else if (!topoNarrow->result.overloaded && !cacheNarrow->result.overloaded) {
        std::printf("%3d nodes: uplink_2 — topology-aware %.2f vs cache-content %.2f "
                    "(%s)\n", nodes, topoNarrow->result.avgSpeedup,
                    cacheNarrow->result.avgSpeedup,
                    topoNarrow->result.avgSpeedup > cacheNarrow->result.avgSpeedup
                        ? "topology wins"
                        : "NO WIN");
      }
    }
  }

  if (const char* dir = jsonDir(); dir != nullptr) {
    std::vector<PerfRecord> records;
    for (const Cell& c : cells) {
      if (c.result.overloaded) continue;
      const std::string key = c.policy + "/" + std::to_string(c.nodes) + "n/" + c.tier;
      records.push_back({key, "speedup", c.result.avgSpeedup, "x"});
      records.push_back({key, "wait", units::toHours(c.result.avgWait), "hours"});
      records.push_back({key, "max_link_util", c.result.network.maxLinkUtilization, ""});
    }
    const std::string path = writeBenchJson(dir, "sensitivity_scale", records);
    if (!path.empty()) std::printf("\n(perf json written to %s)\n", path.c_str());
  }

  std::printf("\nPaper reference: Section 2.4 reports size-insensitivity up to 20 nodes on\n"
              "a free LAN. With shared uplinks and a fixed tertiary pipe, placement\n"
              "becomes the difference between sustaining the load and overloading.\n");
  return 0;
}
