// §4.2: data replication — the paper's negative result.
//
// Out-of-order scheduling with and without inter-node replication must
// perform the same, and replication must fire on well under 1% of the work:
// the scheduler already spreads every large segment over many nodes, so an
// overloaded node holding exclusively useful data is rare.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Section 4.2", "Out-of-order scheduling with vs without data replication");

  const std::vector<double> loads{1.0, 1.3, 1.6};
  std::printf("%-8s %18s %18s %14s %16s\n", "load", "ooo speedup", "repl speedup",
              "repl ops", "replicated/evt");
  for (const double load : loads) {
    ExperimentSpec base;
    base.jobsPerHour = load;
    base.warmupJobs = jobs(300);
    base.measuredJobs = jobs(1500);
    base.maxJobsInSystem = 500;

    ExperimentSpec ooo = base;
    ooo.policyName = "out_of_order";
    ExperimentSpec repl = base;
    repl.policyName = "replication";
    repl.policyParams.replicationThreshold = 3;  // paper: replicate on 3rd access

    const RunResult ro = runExperiment(ooo);
    const RunResult rr = runExperiment(repl);
    const double totalEvents =
        static_cast<double>(rr.tertiaryEvents) /
        std::max(1e-9, 1.0 - rr.cacheHitFraction - rr.remoteReadFraction);
    std::printf("%-8.2f %18.2f %18.2f %14llu %15.4f%%\n", load, ro.avgSpeedup, rr.avgSpeedup,
                static_cast<unsigned long long>(rr.replicationOps),
                100.0 * static_cast<double>(rr.replicatedEvents) / std::max(1.0, totalEvents));
  }

  std::printf("\nPaper reference: \"out of order job scheduling with and without data\n"
              "replication have identical performances\"; replication used in < 1 permille\n"
              "of job arrivals (Section 4.2).\n");
  return 0;
}
