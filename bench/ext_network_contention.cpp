// Extension: shared-link network contention vs the paper's free-LAN model.
//
// §2.3 assumes the Gigabit LAN "is not the constraint" and §4.2 prices
// remote reads at a fixed per-event rate, so data movement is free at any
// scale. This bench re-runs the farm / out-of-order / replication
// comparison under the flow-level network model (src/net): every node
// hangs off an edge switch (5 nodes/switch), switches reach the backbone
// through an uplink of swept capacity, and tertiary/remote/replication
// traffic shares those links max-min fairly.
//
// The headline is an ordering change on the *viability* axis. With an
// unconstrained uplink all three policies sustain the offered load and
// the paper's ordering holds (replication ~ out-of-order >> farm ~ 1).
// As the uplink narrows, the farm — whose entire input crosses the
// constrained links as tertiary streams — overloads first: the same
// offered load that the farm sustained at speedup 1.00 becomes
// unschedulable, while the caching policies, whose hits never touch the
// network, still clear it. Constrained uplink bandwidth therefore flips
// the farm-vs-replication comparison from "farm trades throughput for
// simplicity" to "farm cannot run the workload at all".
//
// A second §4.2 observation rides along: the replication/out-of-order
// speedup ratio stays within a few percent across every uplink tier —
// §4.2's "replication is performance-neutral" holds even under congestion,
// but only because the policy consults the host's contention-aware cost
// feedback (Engine::estimatedSecPerEvent) and skips remote reads that
// would lose to streaming from tertiary. Without that gate eager copies
// would compete with the tertiary streams for the same saturated uplinks.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/network.h"

namespace {

struct Cell {
  std::string policy;  // series label part
  std::string tier;    // uplink tier label
  int nodes = 0;
  ppsched::RunResult result;
};

}  // namespace

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Network contention",
              "Farm vs replication under shared-link contention (flow-level model)");

  struct PolicyDef {
    const char* label;
    const char* name;
    int threshold;  // replication policies only
  };
  const std::vector<PolicyDef> policies{
      {"farm", "farm", 0},
      {"ooo", "out_of_order", 0},
      {"repl_t1", "replication", 1},
  };
  // Uplink capacity per 5-node switch group (MB/s); 0 = no uplink layer.
  struct Tier {
    const char* label;
    double uplinkBytesPerSec;
  };
  const std::vector<Tier> tiers{
      {"uplink_inf", 0.0},
      {"uplink_12", 12.5e6},
      {"uplink_5", 5e6},
      {"uplink_2", 2e6},
  };
  const std::vector<int> nodeCounts{10, 20};

  std::vector<Cell> cells;
  std::vector<ExperimentSpec> specs;
  for (const int nodes : nodeCounts) {
    for (const Tier& tier : tiers) {
      for (const PolicyDef& p : policies) {
        ExperimentSpec spec;
        spec.policyName = p.name;
        if (p.threshold > 0) spec.policyParams.replicationThreshold = p.threshold;
        spec.sim.numNodes = nodes;
        spec.sim.network.enabled = true;
        spec.sim.network.nicBytesPerSec = 125e6;  // Gigabit NIC
        spec.sim.network.nodesPerSwitch = 5;
        spec.sim.network.uplinkBytesPerSec = tier.uplinkBytesPerSec;
        // Network benches study the tiers, not the paper's serial fetch
        // arithmetic: opt into the overlapped-transfer cost model.
        spec.sim.cost.pipelined = true;
        // Load scales with cluster size; 0.9 jobs/hour on 10 nodes is 80%
        // of the paper's farm capacity (1.125), so the farm itself is
        // viable whenever the network lets it stream.
        spec.jobsPerHour = 0.9 * nodes / 10;
        spec.warmupJobs = jobs(300);
        spec.measuredJobs = jobs(1500);
        spec.maxJobsInSystem = 200;
        cells.push_back({p.label, tier.label, nodes, {}});
        specs.push_back(spec);
      }
    }
  }

  ThreadPool pool;
  std::vector<std::future<RunResult>> futures;
  futures.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    futures.push_back(pool.submit([spec] { return runExperiment(spec); }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].result = futures[i].get();

  for (const int nodes : nodeCounts) {
    std::printf("%d nodes (%.1f jobs/hour), 5 nodes/switch, Gigabit NICs\n", nodes,
                0.9 * nodes / 10);
    std::printf("%-12s", "uplink");
    for (const PolicyDef& p : policies) std::printf(" %10s sp %9s w_h", p.label, p.label);
    std::printf(" %14s\n", "max link util");
    for (const Tier& tier : tiers) {
      std::printf("%-12s", tier.label);
      double maxUtil = 0.0;
      for (const PolicyDef& p : policies) {
        for (const Cell& c : cells) {
          if (c.nodes != nodes || c.tier != tier.label || c.policy != p.label) continue;
          if (c.result.overloaded) {
            std::printf(" %13s %13s", "overloaded", "-");
          } else {
            std::printf(" %13.2f %13.2f", c.result.avgSpeedup,
                        units::toHours(c.result.avgWait));
          }
          if (c.result.network.maxLinkUtilization > maxUtil) {
            maxUtil = c.result.network.maxLinkUtilization;
          }
        }
      }
      std::printf(" %14.2f\n", maxUtil);
    }
    std::printf("\n");
  }

  // The qualitative claims, computed from the sweep:
  //  (1) viability flip: the farm sustains the load on a wide uplink but
  //      overloads on a narrow one, while replication clears it throughout;
  //  (2) replication stays within a few percent of out-of-order at every
  //      tier (the §4.2 neutrality claim, preserved by the congestion gate).
  auto cellFor = [&](int nodes, const char* tier, const char* policy) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.nodes == nodes && c.tier == tier && c.policy == policy) return &c;
    }
    return nullptr;
  };
  for (const int nodes : nodeCounts) {
    const char* farmViableAt = nullptr;
    const char* farmOverloadedAt = nullptr;
    bool replViableEverywhere = true;
    for (const Tier& tier : tiers) {
      const Cell* farm = cellFor(nodes, tier.label, "farm");
      const Cell* repl = cellFor(nodes, tier.label, "repl_t1");
      if (farm != nullptr) {
        if (!farm->result.overloaded && farmViableAt == nullptr) farmViableAt = tier.label;
        if (farm->result.overloaded && farmOverloadedAt == nullptr) {
          farmOverloadedAt = tier.label;
        }
      }
      if (repl == nullptr || repl->result.overloaded) replViableEverywhere = false;
    }
    if (farmViableAt != nullptr && farmOverloadedAt != nullptr && replViableEverywhere) {
      std::printf(
          "%2d nodes: ordering flips on viability — farm sustains the load at %s "
          "but overloads at %s; replication clears it at every tier\n",
          nodes, farmViableAt, farmOverloadedAt);
    } else {
      std::printf("%2d nodes: no viability flip in this sweep (farm %s, repl %s)\n",
                  nodes, farmOverloadedAt == nullptr ? "always viable" : "overloads",
                  replViableEverywhere ? "always viable" : "overloads");
    }
    const Cell* oooWide = cellFor(nodes, "uplink_inf", "ooo");
    const Cell* replWide = cellFor(nodes, "uplink_inf", "repl_t1");
    const Cell* oooNarrow = cellFor(nodes, "uplink_2", "ooo");
    const Cell* replNarrow = cellFor(nodes, "uplink_2", "repl_t1");
    if (oooWide != nullptr && replWide != nullptr && oooNarrow != nullptr &&
        replNarrow != nullptr && !oooWide->result.overloaded &&
        !replWide->result.overloaded && !oooNarrow->result.overloaded &&
        !replNarrow->result.overloaded) {
      const double gainWide =
          replWide->result.avgSpeedup / oooWide->result.avgSpeedup;
      const double gainNarrow =
          replNarrow->result.avgSpeedup / oooNarrow->result.avgSpeedup;
      std::printf(
          "%2d nodes: replication/out-of-order speedup ratio %.3f (uplink_inf) -> "
          "%.3f (uplink_2) — neutrality holds under the congestion gate\n",
          nodes, gainWide, gainNarrow);
    }
  }

  if (const char* dir = jsonDir(); dir != nullptr) {
    std::vector<PerfRecord> records;
    for (const Cell& c : cells) {
      if (c.result.overloaded) continue;
      const std::string key =
          c.policy + "/" + std::to_string(c.nodes) + "n/" + c.tier;
      records.push_back({key, "speedup", c.result.avgSpeedup, "x"});
      records.push_back({key, "wait", units::toHours(c.result.avgWait), "hours"});
      records.push_back({key, "max_link_util", c.result.network.maxLinkUtilization, ""});
    }
    const std::string path = writeBenchJson(dir, "ext_network_contention", records);
    if (!path.empty()) std::printf("\n(perf json written to %s)\n", path.c_str());
  }

  std::printf("\nPaper reference: Section 2.3 assumes the LAN is not a constraint and 4.2\n"
              "finds replication performance-neutral; both claims hold only while the\n"
              "switch uplinks carry the offered tertiary + remote + replication load.\n");
  return 0;
}
