// Shared helpers for the figure-reproduction benches.
//
// Each bench binary reproduces one figure/table of the paper: it runs the
// relevant simulations and prints the series the paper plots. Loads are in
// jobs/hour, waits in hours. Like the paper, curves are cut at the load
// where the cluster becomes overloaded ("waiting time grows to infinity"):
// overloaded points print "overloaded" instead of numbers.
//
// Environment:
//   PPSCHED_FAST=1     quarter-size runs (quick smoke of the harness)
//   PPSCHED_CSV=<dir>  additionally write one CSV per figure into <dir>
//                      (plot with scripts/plot_figure.gp)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppsched::bench {

inline bool fastMode() {
  const char* v = std::getenv("PPSCHED_FAST");
  return v != nullptr && v[0] == '1';
}

/// Scale a job count down in fast mode.
inline std::size_t jobs(std::size_t n) { return fastMode() ? n / 4 : n; }

/// A labelled series: one ExperimentSpec template swept over loads.
struct Series {
  std::string label;
  ExperimentSpec spec;
};

inline void printHeader(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

/// Slug for CSV file names: "Figure 2" -> "figure_2".
inline std::string slugify(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (!(c >= 'a' && c <= 'z') && !(c >= '0' && c <= '9')) c = '_';
  }
  return s;
}

/// Run every series over `loads` and print two paper-style tables: average
/// speedup and average waiting time (hours). `waitExDelay` selects the
/// Fig 5/6 presentation (period delay subtracted). With PPSCHED_CSV set,
/// also writes <dir>/<figure slug>.csv with one row per (series, load).
inline void runAndPrint(const std::vector<Series>& series, const std::vector<double>& loads,
                        bool waitExDelay = false, const char* figure = nullptr) {
  std::vector<std::vector<RunResult>> results(series.size());
  ThreadPool pool;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto points = loadSweep(series[s].spec, loads, &pool);
    for (const auto& p : points) results[s].push_back(p.result);
  }

  if (const char* dir = std::getenv("PPSCHED_CSV"); dir != nullptr && figure != nullptr) {
    const std::string path = std::string(dir) + "/" + slugify(figure) + ".csv";
    std::ofstream csv(path);
    csv << "series,load,speedup,wait_h,wait_ex_delay_h,cache_hit,overloaded\n";
    for (std::size_t s = 0; s < series.size(); ++s) {
      for (std::size_t i = 0; i < loads.size(); ++i) {
        const RunResult& r = results[s][i];
        csv << series[s].label << ',' << loads[i] << ',' << r.avgSpeedup << ','
            << units::toHours(r.avgWait) << ',' << units::toHours(r.avgWaitExDelay) << ','
            << r.cacheHitFraction << ',' << (r.overloaded ? 1 : 0) << '\n';
      }
    }
    std::printf("(csv written to %s)\n\n", path.c_str());
  }

  auto printTable = [&](const char* title, auto value) {
    std::printf("%s\n%-10s", title, "load");
    for (const auto& s : series) std::printf(" %14s", s.label.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < loads.size(); ++i) {
      std::printf("%-10.2f", loads[i]);
      for (std::size_t s = 0; s < series.size(); ++s) {
        const RunResult& r = results[s][i];
        if (r.overloaded) {
          std::printf(" %14s", "overloaded");
        } else {
          std::printf(" %14.2f", value(r));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  };

  printTable("Average speedup:", [](const RunResult& r) { return r.avgSpeedup; });
  if (waitExDelay) {
    printTable("Average waiting time, period delay excluded (hours):",
               [](const RunResult& r) { return units::toHours(r.avgWaitExDelay); });
  } else {
    printTable("Average waiting time (hours):",
               [](const RunResult& r) { return units::toHours(r.avgWait); });
  }
}

}  // namespace ppsched::bench
