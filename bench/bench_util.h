// Shared helpers for the figure-reproduction benches.
//
// Each bench binary reproduces one figure/table of the paper: it runs the
// relevant simulations and prints the series the paper plots. Loads are in
// jobs/hour, waits in hours. Like the paper, curves are cut at the load
// where the cluster becomes overloaded ("waiting time grows to infinity"):
// overloaded points print "overloaded" instead of numbers.
//
// Environment:
//   PPSCHED_FAST=1     quarter-size runs (quick smoke of the harness)
//   PPSCHED_CSV=<dir>  additionally write one CSV per figure into <dir>
//                      (plot with scripts/plot_figure.gp)
//   PPSCHED_JSON=<dir> additionally write <dir>/BENCH_<figure slug>.json in
//                      the machine-readable perf schema (ppsched-bench-v1)
//                      consumed by scripts/perf_compare.py
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppsched::bench {

inline bool fastMode() {
  const char* v = std::getenv("PPSCHED_FAST");
  return v != nullptr && v[0] == '1';
}

/// Slug for CSV/JSON file names: "Figure 2" -> "figure_2".
inline std::string slugify(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (!(c >= 'a' && c <= 'z') && !(c >= '0' && c <= '9')) c = '_';
  }
  return s;
}

/// One measurement in the perf-trajectory schema. The (bench, series,
/// metric) triple is the key perf_compare.py joins two JSON files on.
struct PerfRecord {
  std::string series;
  std::string metric;
  double value = 0.0;
  std::string unit;
};

/// Write `records` as <dir>/BENCH_<slug>.json in the ppsched-bench-v1
/// schema. Returns the path written, or "" when nothing was written.
/// Numbers are emitted with printf %.17g so round-trips are lossless.
inline std::string writeBenchJson(const std::string& dir, const std::string& bench,
                                  const std::vector<PerfRecord>& records) {
  const std::string path = dir + "/BENCH_" + slugify(bench) + ".json";
  std::ofstream out(path);
  if (!out) return "";
  char num[64];
  out << "{\n"
      << "  \"schema\": \"ppsched-bench-v1\",\n"
      << "  \"bench\": \"" << slugify(bench) << "\",\n"
      << "  \"fast\": " << (fastMode() ? "true" : "false") << ",\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PerfRecord& r = records[i];
    std::snprintf(num, sizeof num, "%.17g", r.value);
    out << "    {\"series\": \"" << r.series << "\", \"metric\": \"" << r.metric
        << "\", \"value\": " << num << ", \"unit\": \"" << r.unit << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return path;
}

/// Directory for BENCH_*.json output, or nullptr when disabled.
inline const char* jsonDir() { return std::getenv("PPSCHED_JSON"); }

/// Scale a job count down in fast mode.
inline std::size_t jobs(std::size_t n) { return fastMode() ? n / 4 : n; }

/// A labelled series: one ExperimentSpec template swept over loads.
struct Series {
  std::string label;
  ExperimentSpec spec;
};

inline void printHeader(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

/// Run every series over `loads` and print two paper-style tables: average
/// speedup and average waiting time (hours). `waitExDelay` selects the
/// Fig 5/6 presentation (period delay subtracted). With PPSCHED_CSV set,
/// also writes <dir>/<figure slug>.csv with one row per (series, load).
inline void runAndPrint(const std::vector<Series>& series, const std::vector<double>& loads,
                        bool waitExDelay = false, const char* figure = nullptr) {
  std::vector<std::vector<RunResult>> results(series.size());
  ThreadPool pool;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto points = loadSweep(series[s].spec, loads, &pool);
    for (const auto& p : points) results[s].push_back(p.result);
  }

  if (const char* dir = std::getenv("PPSCHED_CSV"); dir != nullptr && figure != nullptr) {
    const std::string path = std::string(dir) + "/" + slugify(figure) + ".csv";
    std::ofstream csv(path);
    csv << "series,load,speedup,wait_h,wait_ex_delay_h,cache_hit,overloaded\n";
    for (std::size_t s = 0; s < series.size(); ++s) {
      for (std::size_t i = 0; i < loads.size(); ++i) {
        const RunResult& r = results[s][i];
        csv << series[s].label << ',' << loads[i] << ',' << r.avgSpeedup << ','
            << units::toHours(r.avgWait) << ',' << units::toHours(r.avgWaitExDelay) << ','
            << r.cacheHitFraction << ',' << (r.overloaded ? 1 : 0) << '\n';
      }
    }
    std::printf("(csv written to %s)\n\n", path.c_str());
  }

  if (const char* dir = jsonDir(); dir != nullptr && figure != nullptr) {
    std::vector<PerfRecord> records;
    char key[128];
    for (std::size_t s = 0; s < series.size(); ++s) {
      for (std::size_t i = 0; i < loads.size(); ++i) {
        const RunResult& r = results[s][i];
        if (r.overloaded) continue;  // no finite wait to compare
        std::snprintf(key, sizeof key, "%s@%.2f", series[s].label.c_str(), loads[i]);
        records.push_back({key, "speedup", r.avgSpeedup, "x"});
        records.push_back({key, waitExDelay ? "wait_ex_delay" : "wait",
                           units::toHours(waitExDelay ? r.avgWaitExDelay : r.avgWait), "hours"});
      }
    }
    const std::string path = writeBenchJson(dir, figure, records);
    if (!path.empty()) std::printf("(perf json written to %s)\n\n", path.c_str());
  }

  auto printTable = [&](const char* title, auto value) {
    std::printf("%s\n%-10s", title, "load");
    for (const auto& s : series) std::printf(" %14s", s.label.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < loads.size(); ++i) {
      std::printf("%-10.2f", loads[i]);
      for (std::size_t s = 0; s < series.size(); ++s) {
        const RunResult& r = results[s][i];
        if (r.overloaded) {
          std::printf(" %14s", "overloaded");
        } else {
          std::printf(" %14.2f", value(r));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  };

  printTable("Average speedup:", [](const RunResult& r) { return r.avgSpeedup; });
  if (waitExDelay) {
    printTable("Average waiting time, period delay excluded (hours):",
               [](const RunResult& r) { return units::toHours(r.avgWaitExDelay); });
  } else {
    printTable("Average waiting time (hours):",
               [](const RunResult& r) { return units::toHours(r.avgWait); });
  }
}

}  // namespace ppsched::bench
