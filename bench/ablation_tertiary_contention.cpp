// Ablation: shared tertiary-storage bandwidth.
//
// The paper gives every node a dedicated 1 MB/s stream from Castor (§2.4).
// Real tape/disk-array front-ends have a finite aggregate bandwidth; this
// ablation caps the total across streams and asks whether the paper's
// conclusions (caching policies win; out-of-order beats FIFO) survive when
// tertiary storage is a shared bottleneck.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Ablation", "Aggregate tertiary bandwidth cap (10 nodes, 1 jobs/hour)");

  std::printf("%-12s %16s %16s %16s %12s\n", "cap (MB/s)", "farm", "cache-oriented",
              "out-of-order", "ooo hit %");
  for (const double capMBps : {0.0, 10.0, 5.0, 3.0, 2.0}) {
    double speedups[3] = {0, 0, 0};
    double oooHit = 0.0;
    const char* policies[3] = {"farm", "cache_oriented", "out_of_order"};
    for (int p = 0; p < 3; ++p) {
      ExperimentSpec spec;
      spec.policyName = policies[p];
      spec.jobsPerHour = 1.0;
      spec.sim.tertiaryAggregateBytesPerSec = capMBps * 1e6;
      spec.sim.finalize();
      spec.warmupJobs = jobs(250);
      spec.measuredJobs = jobs(1000);
      spec.maxJobsInSystem = 600;
      const RunResult r = runExperiment(spec);
      speedups[p] = r.overloaded ? -1.0 : r.avgSpeedup;
      if (p == 2) oooHit = r.cacheHitFraction;
    }
    auto cell = [](double v) { return v; };
    if (capMBps == 0.0) {
      std::printf("%-12s", "unlimited");
    } else {
      std::printf("%-12.1f", capMBps);
    }
    for (double s : speedups) {
      if (s < 0) {
        std::printf(" %16s", "overloaded");
      } else {
        std::printf(" %16.2f", cell(s));
      }
    }
    std::printf(" %11.0f%%\n", 100.0 * oooHit);
  }

  std::printf("\nExpected: the cache-less farm collapses first as the cap tightens\n"
              "(every byte crosses the bottleneck); caching policies degrade more\n"
              "gracefully — the paper's ordering is robust to tertiary contention.\n");
  return 0;
}
