// Micro-benchmarks of the simulator substrate (google-benchmark).
//
// These guard the performance envelope that makes the figure benches cheap:
// interval algebra, LRU cache operations, event-queue throughput, workload
// generation, and a whole small simulation end to end.
//
// With PPSCHED_JSON=<dir> set, additionally writes
// <dir>/BENCH_micro_kernel.json in the ppsched-bench-v1 schema (one record
// per benchmark: real ns/iteration, plus items/s where reported) for
// scripts/perf_compare.py.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/experiment.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "storage/interval_map.h"
#include "storage/interval_set.h"
#include "storage/lru_cache.h"
#include "workload/generator.h"

namespace {

using namespace ppsched;

void BM_IntervalSetInsertErase(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    IntervalSet s;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t b = (i * 7919) % 100'000;
      s.insert({b, b + 50});
    }
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      const std::uint64_t b = (i * 104'729) % 100'000;
      s.erase({b, b + 30});
    }
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n * 3 / 2));
}
BENCHMARK(BM_IntervalSetInsertErase)->Arg(100)->Arg(1000)->Arg(10'000);

void BM_IntervalSetOverlapQuery(benchmark::State& state) {
  IntervalSet s;
  for (std::uint64_t i = 0; i < 1000; ++i) s.insert({i * 100, i * 100 + 50});
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.overlapSize({probe % 90'000, probe % 90'000 + 5000}));
    probe += 137;
  }
}
BENCHMARK(BM_IntervalSetOverlapQuery);

void BM_LruCacheChurn(benchmark::State& state) {
  for (auto _ : state) {
    LruExtentCache cache(50'000);
    SimTime t = 0.0;
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t b = static_cast<std::uint64_t>((i * 7919) % 200'000);
      cache.insert({b, b + 400}, t);
      benchmark::DoNotOptimize(cache.overlapSize({b / 2, b / 2 + 1000}));
      t += 1.0;
    }
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LruCacheChurn);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<SimTime>((i * 7919) % 4096), [] {});
    }
    while (!q.empty()) q.runNext();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_EventQueueRealisticCaptures(benchmark::State& state) {
  // Engine-shaped callbacks: a this-pointer plus a Job-sized payload, the
  // capture profile that used to force one heap allocation per event.
  struct Payload {
    std::uint64_t id;
    double arrival;
    EventRange range;
  };
  std::uint64_t sink = 0;
  for (auto _ : state) {
    EventQueue q;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      const Payload p{i, static_cast<double>((i * 7919) % 4096), {i, i + 40'000}};
      q.schedule(p.arrival, [&sink, p] { sink += p.id + p.range.begin; });
    }
    while (!q.empty()) q.runNext();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueRealisticCaptures);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Timer-churn profile: most events are cancelled before firing (span
  // completions rescheduled on preemption, failure chains, adaptive-delay
  // timers). Exercises the tombstone-compaction path.
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    ids.reserve(2000);
    for (int round = 0; round < 10; ++round) {
      ids.clear();
      for (int i = 0; i < 200; ++i) {
        ids.push_back(q.schedule(static_cast<SimTime>(round * 10'000 + (i * 7919) % 4096),
                                 [] {}));
      }
      for (std::size_t i = 0; i < ids.size(); i += 8) {
        for (std::size_t k = i; k < std::min(ids.size(), i + 7); ++k) q.cancel(ids[k]);
      }
      while (!q.empty()) q.runNext();
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_IntervalCounterPinChurn(benchmark::State& state) {
  // The LRU-cache pin/unpin profile plus the replication policy's
  // access-count queries.
  for (auto _ : state) {
    IntervalCounter c;
    for (std::uint64_t i = 0; i < 300; ++i) {
      const std::uint64_t b = (i * 7919) % 100'000;
      c.add({b, b + 500}, +1);
      benchmark::DoNotOptimize(c.rangesAtLeast({b / 2, b / 2 + 2000}, 2));
      c.add({b, b + 500}, -1);
    }
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_IntervalCounterPinChurn);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.jobsPerHour = 1.0;
  WorkloadGenerator gen(params, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

void BM_EndToEndSimulation(benchmark::State& state) {
  // One small but complete out-of-order simulation: 120 jobs through the
  // paper's cluster model.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ExperimentSpec spec;
    spec.policyName = "out_of_order";
    spec.jobsPerHour = 1.0;
    spec.warmupJobs = 20;
    spec.measuredJobs = 100;
    spec.seed = seed++;
    benchmark::DoNotOptimize(runExperiment(spec));
  }
  state.SetItemsProcessed(state.iterations() * 120);
  state.SetLabel("jobs");
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

/// Console reporter that also collects one PerfRecord per benchmark run for
/// the BENCH_micro_kernel.json perf-trajectory file.
class JsonPerfReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonPerfReporter(std::vector<ppsched::bench::PerfRecord>* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double iters = static_cast<double>(run.iterations);
      out_->push_back({name, "real_time_per_iter",
                       run.real_accumulated_time / iters * 1e9, "ns"});
      if (auto it = run.counters.find("items_per_second"); it != run.counters.end()) {
        out_->push_back({name, "items_per_second", it->second.value, "items/s"});
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<ppsched::bench::PerfRecord>* out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::vector<ppsched::bench::PerfRecord> records;
  JsonPerfReporter reporter(&records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (const char* dir = ppsched::bench::jsonDir(); dir != nullptr) {
    const std::string path = ppsched::bench::writeBenchJson(dir, "micro_kernel", records);
    if (!path.empty()) std::printf("(perf json written to %s)\n", path.c_str());
  }
  return 0;
}
