// Micro-benchmarks of the simulator substrate (google-benchmark).
//
// These guard the performance envelope that makes the figure benches cheap:
// interval algebra, LRU cache operations, event-queue throughput, workload
// generation, and a whole small simulation end to end.
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "storage/interval_set.h"
#include "storage/lru_cache.h"
#include "workload/generator.h"

namespace {

using namespace ppsched;

void BM_IntervalSetInsertErase(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    IntervalSet s;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t b = (i * 7919) % 100'000;
      s.insert({b, b + 50});
    }
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      const std::uint64_t b = (i * 104'729) % 100'000;
      s.erase({b, b + 30});
    }
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n * 3 / 2));
}
BENCHMARK(BM_IntervalSetInsertErase)->Arg(100)->Arg(1000)->Arg(10'000);

void BM_IntervalSetOverlapQuery(benchmark::State& state) {
  IntervalSet s;
  for (std::uint64_t i = 0; i < 1000; ++i) s.insert({i * 100, i * 100 + 50});
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.overlapSize({probe % 90'000, probe % 90'000 + 5000}));
    probe += 137;
  }
}
BENCHMARK(BM_IntervalSetOverlapQuery);

void BM_LruCacheChurn(benchmark::State& state) {
  for (auto _ : state) {
    LruExtentCache cache(50'000);
    SimTime t = 0.0;
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t b = static_cast<std::uint64_t>((i * 7919) % 200'000);
      cache.insert({b, b + 400}, t);
      benchmark::DoNotOptimize(cache.overlapSize({b / 2, b / 2 + 1000}));
      t += 1.0;
    }
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LruCacheChurn);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<SimTime>((i * 7919) % 4096), [] {});
    }
    while (!q.empty()) q.runNext();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.jobsPerHour = 1.0;
  WorkloadGenerator gen(params, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

void BM_EndToEndSimulation(benchmark::State& state) {
  // One small but complete out-of-order simulation: 120 jobs through the
  // paper's cluster model.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ExperimentSpec spec;
    spec.policyName = "out_of_order";
    spec.jobsPerHour = 1.0;
    spec.warmupJobs = 20;
    spec.measuredJobs = 100;
    spec.seed = seed++;
    benchmark::DoNotOptimize(runExperiment(spec));
  }
  state.SetItemsProcessed(state.iterations() * 120);
  state.SetLabel("jobs");
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
