// Extension: empirical scheduler-overhead scaling.
//
// The paper's footnote 1 defers "the time and space complexity analysis of
// the proposed scheduling policies" to a subsequent paper. This bench
// measures the wall-clock cost of the scheduling machinery itself (policy
// decisions + engine bookkeeping) as the cluster and workload grow, giving
// the practical half of that deferred analysis: decision costs per job for
// each policy, and how they scale with the node count.
#include <chrono>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Scheduler overhead: wall-clock cost per simulated job");

  const std::size_t measured = jobs(1200);
  std::printf("%-8s %-16s %18s %18s\n", "nodes", "policy", "wall ms / job",
              "sim events / job");
  for (const int nodes : {10, 20, 40}) {
    for (const char* policy : {"cache_oriented", "out_of_order", "delayed"}) {
      SimConfig cfg = SimConfig::paperDefaults();
      cfg.numNodes = nodes;
      cfg.finalize();
      ExperimentSpec spec;
      spec.sim = cfg;
      spec.policyName = policy;
      spec.policyParams.periodDelay = 12 * units::hour;
      // Scale the load with the cluster so per-node pressure is constant.
      spec.jobsPerHour = 0.3 * cfg.maxTheoreticalLoadJobsPerHour();
      spec.warmupJobs = jobs(200);
      spec.measuredJobs = measured;
      spec.maxJobsInSystem = 4000;

      const auto start = std::chrono::steady_clock::now();
      const RunResult r = runExperiment(spec);
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      const double perJob = elapsed / static_cast<double>(r.completedJobs);
      // Rough event count proxy: every job produces run/span bookkeeping
      // proportional to its pieces; report completions-normalized wall time
      // and the simulated-time compression factor.
      std::printf("%-8d %-16s %18.3f %18.1f\n", nodes, policy, perJob,
                  r.simulatedTime / elapsed);  // sim-seconds per wall-ms
    }
  }

  std::printf("\nColumns: wall-clock milliseconds of simulation per completed job\n"
              "(includes all policy decisions), and simulated seconds per wall\n"
              "millisecond (compression factor). Near-linear growth of the per-job\n"
              "cost with the node count reflects the O(nodes) scans in the\n"
              "policies' placement loops.\n");
  return 0;
}
