// Extension: empirical scheduler-overhead scaling.
//
// The paper's footnote 1 defers "the time and space complexity analysis of
// the proposed scheduling policies" to a subsequent paper. This bench
// measures the wall-clock cost of the scheduling machinery itself (policy
// decisions + engine bookkeeping) as the cluster and workload grow, giving
// the practical half of that deferred analysis: decision costs per job for
// each policy, and how they scale with the node count.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "shard/coordinator.h"
#include "shard/shard_config.h"
#include "workload/generator.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Scheduler overhead: wall-clock cost per simulated job");

  const std::size_t measured = jobs(1200);
  std::printf("%-8s %-16s %18s %18s\n", "nodes", "policy", "wall ms / job",
              "sim events / job");
  for (const int nodes : {10, 20, 40}) {
    for (const char* policy : {"cache_oriented", "out_of_order", "delayed"}) {
      SimConfig cfg = SimConfig::paperDefaults();
      cfg.numNodes = nodes;
      cfg.finalize();
      ExperimentSpec spec;
      spec.sim = cfg;
      spec.policyName = policy;
      spec.policyParams.periodDelay = 12 * units::hour;
      // Scale the load with the cluster so per-node pressure is constant.
      spec.jobsPerHour = 0.3 * cfg.maxTheoreticalLoadJobsPerHour();
      spec.warmupJobs = jobs(200);
      spec.measuredJobs = measured;
      spec.maxJobsInSystem = 4000;

      const auto start = std::chrono::steady_clock::now();
      const RunResult r = runExperiment(spec);
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      const double perJob = elapsed / static_cast<double>(r.completedJobs);
      // Rough event count proxy: every job produces run/span bookkeeping
      // proportional to its pieces; report completions-normalized wall time
      // and the simulated-time compression factor.
      std::printf("%-8d %-16s %18.3f %18.1f\n", nodes, policy, perJob,
                  r.simulatedTime / elapsed);  // sim-seconds per wall-ms
    }
  }

  // ---- planAccess memoization ---------------------------------------------
  // planAccess enumerates candidate sources per subjob — an O(candidates)
  // scan that policies re-price repeatedly within one scheduling round, and
  // that digest-driven work stealing makes strictly worse (a steal pass
  // scores many queued subjobs against many idle nodes). The engine
  // memoizes the enumeration keyed on (dst, range, goal), invalidated
  // whenever cache/flow/node state mutates (the state epoch). Results are
  // bit-identical either way (tests/test_access_plan.cpp pins that); only
  // wall time moves. The hit rate is deterministic; the ms/job columns are
  // wall-clock and thus noisy on a loaded machine.
  std::printf("\nplanAccess memoization (engine state-epoch memo, %zu jobs):\n",
              measured);
  struct MemoArm {
    int nodes;
    const char* policy;
    const char* shards;  // nullptr = single master
    const char* label;
  };
  // eevdf is the score-then-dispatch policy: every dispatched subjob is
  // priced once while ranking the queue and again when launched, so the
  // memo converts the second enumeration into a hash lookup. replication
  // prices each subjob exactly once per epoch — zero hits by construction —
  // and serves as the "memo inert, no harm" control.
  const MemoArm arms[] = {
      {40, "eevdf", nullptr, "eevdf"},
      {40, "replication", nullptr, "replication"},
      {40, "eevdf", "4,digest=0,admit=1", "eevdf K=4"},
      {40, "replication", "4,digest=0,admit=1", "replication K=4"},
  };
  std::printf("%-8s %-18s %15s %14s %7s %8s\n", "nodes", "arm", "memo off ms/job",
              "memo on ms/job", "hit%", "saved");
  for (const MemoArm& arm : arms) {
    double msPerJob[2] = {0.0, 0.0};
    double hitPct = 0.0;
    for (const bool memo : {false, true}) {
      SimConfig cfg = SimConfig::paperDefaults();
      cfg.numNodes = arm.nodes;
      if (arm.shards != nullptr) cfg.shards = parseShardSpec(arm.shards);
      cfg.finalize();
      cfg.workload.jobsPerHour = 0.3 * cfg.maxTheoreticalLoadJobsPerHour();
      PolicyParams params;
      params.replicationThreshold = 1;
      std::unique_ptr<ISchedulerPolicy> policy;
      if (cfg.shards.enabled()) {
        policy = std::make_unique<ShardedCoordinator>(
            cfg.shards,
            [&] { return makePolicy(arm.policy, params); });
      } else {
        policy = makePolicy(arm.policy, params);
      }
      MetricsCollector metrics(cfg.cost, {jobs(200), 0.0});
      Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 20260807),
                    std::move(policy), metrics);
      engine.setPlanMemoization(memo);
      const auto start = std::chrono::steady_clock::now();
      engine.run({.completedJobs = jobs(200) + measured, .maxJobsInSystem = 4000});
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      msPerJob[memo ? 1 : 0] = elapsed / static_cast<double>(metrics.completedJobs());
      if (memo) {
        auto stats = engine.planMemoStats();
        if (const auto* coord = dynamic_cast<const ShardedCoordinator*>(&engine.policy())) {
          const auto viewStats = coord->viewPlanMemoStats();
          stats.lookups += viewStats.lookups;
          stats.hits += viewStats.hits;
        }
        hitPct = stats.lookups == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(stats.hits) /
                           static_cast<double>(stats.lookups);
      }
    }
    std::printf("%-8d %-18s %15.3f %14.3f %6.1f%% %7.1f%%\n", arm.nodes, arm.label,
                msPerJob[0], msPerJob[1], hitPct,
                100.0 * (1.0 - msPerJob[1] / msPerJob[0]));
  }

  std::printf("\nColumns: wall-clock milliseconds of simulation per completed job\n"
              "(includes all policy decisions), and simulated seconds per wall\n"
              "millisecond (compression factor). Near-linear growth of the per-job\n"
              "cost with the node count reflects the O(nodes) scans in the\n"
              "policies' placement loops.\n");
  return 0;
}
