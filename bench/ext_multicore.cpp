// Extension: cluster shape — many thin nodes vs few fat SMP nodes.
//
// The paper assumes single-CPU machines (§2.4). Holding total CPU count
// (10) and total cluster cache (1 TB) constant, we vary the machine shape:
// 10x1, 5x2, 2x5. Fat nodes concentrate cache behind fewer, larger pools —
// more of the hot data is "local" to every CPU slot — at the price of
// coarser failure domains (not modelled) and intra-node disk contention
// (not modelled; see DESIGN.md). The bench quantifies the caching side.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Extension", "Cluster shape: machines x CPUs at constant totals");

  std::printf("%-10s %-16s %12s %12s %12s\n", "shape", "policy", "speedup", "wait (h)",
              "hit %");
  struct Shape {
    int machines;
    int cpus;
  };
  for (const Shape& shape : {Shape{10, 1}, Shape{5, 2}, Shape{2, 5}}) {
    for (const char* policy : {"cache_oriented", "out_of_order"}) {
      ExperimentSpec spec;
      spec.sim.numNodes = shape.machines;
      spec.sim.cpusPerNode = shape.cpus;
      spec.sim.cacheBytesPerNode =
          1'000'000'000'000ULL / static_cast<unsigned>(shape.machines);
      spec.sim.finalize();
      spec.policyName = policy;
      spec.jobsPerHour = 1.2;
      spec.warmupJobs = jobs(300);
      spec.measuredJobs = jobs(1200);
      spec.maxJobsInSystem = 500;
      const RunResult r = runExperiment(spec);
      char label[16];
      std::snprintf(label, sizeof label, "%dx%d", shape.machines, shape.cpus);
      if (r.overloaded) {
        std::printf("%-10s %-16s %12s\n", label, policy, "overloaded");
      } else {
        std::printf("%-10s %-16s %12.2f %12.3f %11.0f%%\n", label, policy, r.avgSpeedup,
                    units::toHours(r.avgWait), 100.0 * r.cacheHitFraction);
      }
    }
  }

  std::printf("\nFindings: cache pooling transforms the FIFO cache-oriented policy\n"
              "(more of the hot data is local to every slot). Out-of-order\n"
              "scheduling stays level across shapes — but only because its queues\n"
              "are cache-GROUP based: an earlier per-CPU-queue implementation\n"
              "funnelled all cached work through one sibling CPU and lost over\n"
              "half its speedup at 2x5. Topology awareness is load-bearing for\n"
              "Table 3 on SMP clusters. Unmodelled costs of fat nodes: shared\n"
              "disk bandwidth and bigger failure domains.\n");
  return 0;
}
