// Figure 2: average speedup and waiting time vs load for the FCFS policies —
// processing farm, job splitting, and cache-oriented job splitting with
// 50 / 100 / 200 GB node caches. Loads 0.7 .. 1.3 jobs/hour, 10 nodes.
//
// Paper shape to reproduce: splitting beats the farm; the cache-oriented
// policy's gain grows with cache size (~x3 caching gain at 200 GB); all
// FCFS policies overload a little beyond ~1.1-1.3 jobs/hour; waiting times
// drop from days (farm) to hours/minutes with caches.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 2", "FCFS policies: farm, job splitting, cache-oriented splitting");

  ExperimentSpec base;
  base.warmupJobs = jobs(300);
  base.measuredJobs = jobs(1400);
  base.maxJobsInSystem = 500;

  std::vector<Series> series;
  {
    Series s{"farm", base};
    s.spec.policyName = "farm";
    series.push_back(s);
  }
  {
    Series s{"splitting", base};
    s.spec.policyName = "splitting";
    series.push_back(s);
  }
  for (const std::uint64_t gb : {50ull, 100ull, 200ull}) {
    Series s{"cache-" + std::to_string(gb) + "GB", base};
    s.spec.policyName = "cache_oriented";
    s.spec.sim.cacheBytesPerNode = gb * 1'000'000'000ULL;
    s.spec.sim.finalize();
    series.push_back(s);
  }

  const std::vector<double> loads{0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3};
  runAndPrint(series, loads, false, "fig2");

  std::printf("Paper reference: farm speedup ~1 and overload beyond ~1.1 jobs/hour;\n"
              "cache-oriented 200GB reaches the ~x3 caching gain at low load;\n"
              "larger caches cut waiting times from days to hours (Fig 2).\n");
  return 0;
}
