// Figure 3: cache-oriented job splitting vs out-of-order scheduling for
// 50 / 100 / 200 GB caches, loads 0.8 .. 2.6 jobs/hour.
//
// Paper shape to reproduce: same cache and load give a much higher speedup
// and an order-of-magnitude lower waiting time for out-of-order scheduling;
// the sustainable load roughly doubles, especially with large caches.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 3", "Cache-oriented (FIFO) vs out-of-order scheduling");

  ExperimentSpec base;
  base.warmupJobs = jobs(300);
  base.measuredJobs = jobs(1400);
  base.maxJobsInSystem = 500;

  std::vector<Series> series;
  for (const char* policy : {"cache_oriented", "out_of_order"}) {
    for (const std::uint64_t gb : {50ull, 100ull, 200ull}) {
      const std::string tag = policy == std::string("cache_oriented") ? "fifo" : "ooo";
      Series s{tag + "-" + std::to_string(gb) + "GB", base};
      s.spec.policyName = policy;
      s.spec.sim.cacheBytesPerNode = gb * 1'000'000'000ULL;
      s.spec.sim.finalize();
      series.push_back(s);
    }
  }

  const std::vector<double> loads{0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6};
  runAndPrint(series, loads, false, "fig3");

  std::printf("Paper reference: out-of-order sustains ~1.44 (50GB) and ~1.7 (100GB)\n"
              "jobs/hour and roughly doubles the FIFO cache-based sustainable load;\n"
              "waiting times are an order of magnitude lower (Fig 3).\n");
  return 0;
}
