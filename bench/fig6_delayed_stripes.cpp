// Figure 6: delayed scheduling for stripe sizes of 200 / 1000 / 5000 /
// 25000 events (cache 100 GB, period delay 2 days). Waiting time excludes
// the period delay, as in the paper.
//
// Paper shape to reproduce: smaller stripes give clearly better speedups
// (more parallelism) and have almost no influence on the average waiting
// time; a larger average speedup lets the cluster sustain higher loads.
#include "bench_util.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Figure 6", "Delayed scheduling for different stripe sizes (delay 2 days)");

  ExperimentSpec base;
  base.policyName = "delayed";
  base.policyParams.periodDelay = 2 * units::day;
  base.warmupJobs = jobs(800);
  base.measuredJobs = jobs(2600);
  base.maxJobsInSystem = 3000;

  std::vector<Series> series;
  for (const std::uint64_t stripe : {200ull, 1000ull, 5000ull, 25'000ull}) {
    Series s{"stripe-" + std::to_string(stripe), base};
    s.spec.policyParams.stripeEvents = stripe;
    series.push_back(s);
  }

  const std::vector<double> loads{0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4};
  runAndPrint(series, loads, /*waitExDelay=*/true, "fig6");

  std::printf("Paper reference: clear speedup improvement for small stripes, no\n"
              "influence on the average waiting time (Fig 6).\n");
  return 0;
}
