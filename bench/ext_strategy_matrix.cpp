// Extension: access-strategy matrix — planner vs pinned mechanisms.
//
// The access-plan redesign (core/host.h) turns "how should a stolen subjob
// reach its data" from a policy-private heuristic into a host decision:
// ISchedulerHost::planAccess ranks every viable mechanism (stream from
// tertiary, read the best remote replica, replicate-through) by
// contention-aware cost. This bench checks that the planner is not just a
// refactor: it sweeps strategy x uplink tier x node count under the
// flow-level network model and compares the planner against arms that pin
// one mechanism unconditionally (PolicyParams::accessMode).
//
// Arms:
//   planned          replication policy, host planner picks per subjob
//   always_remote    every steal reads the ranked-best replica, never gated
//   always_replicate every steal replicates through on first access
//   never_remote     steals always stream from tertiary (no remote reads)
//   delayed          plain delayed scheduling (period accumulation)
//   prefetch_delayed delayed + planner-guided cache warming in the window
//
// Expected shape: on a wide uplink the fixed arms tie the planner (every
// mechanism is cheap), but on the narrowest tier each pinned mechanism has
// a failure mode — always_remote/always_replicate push replica traffic
// into saturated uplinks, never_remote pushes everything through the
// shared tertiary ingress — while the planner falls back per subjob to
// whichever side is cheaper. The planner should therefore match or beat
// every fixed arm where they remain viable and stay viable where they
// overload. A cold-start section checks the second headline: prefetching
// during the accumulation window beats plain delayed scheduling before
// the caches have filled.
//
// Like the other network benches this one opts into the pipelined cost
// model (transfer overlapped with compute) — the network tiers, not the
// paper's serial fetch arithmetic, are the object of study here.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/network.h"

namespace {

struct Cell {
  std::string arm;   // series label part
  std::string tier;  // uplink tier label
  int nodes = 0;
  ppsched::RunResult result;
};

}  // namespace

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Strategy matrix",
              "Access planner vs pinned mechanisms across uplink tiers (flow-level model)");

  struct Arm {
    const char* label;
    const char* policy;
    const char* accessMode;  // replication arms only
  };
  const std::vector<Arm> arms{
      {"planned", "replication", "planned"},
      {"always_remote", "replication", "always_remote"},
      {"always_repl", "replication", "always_replicate"},
      {"never_remote", "replication", "never_remote"},
      {"delayed", "delayed", nullptr},
      {"prefetch_del", "prefetch_delayed", nullptr},
  };
  // Uplink capacity per 5-node switch group (MB/s); 0 = no uplink layer.
  struct Tier {
    const char* label;
    double uplinkBytesPerSec;
  };
  const std::vector<Tier> tiers{
      {"uplink_inf", 0.0},
      {"uplink_12", 12.5e6},
      {"uplink_5", 5e6},
      {"uplink_2", 2e6},
  };
  const std::vector<int> nodeCounts{10, 20};

  auto baseSpec = [&](int nodes, double uplink) {
    ExperimentSpec spec;
    spec.sim.numNodes = nodes;
    spec.sim.network.enabled = true;
    spec.sim.network.nicBytesPerSec = 125e6;  // Gigabit NIC
    spec.sim.network.nodesPerSwitch = 5;
    spec.sim.network.uplinkBytesPerSec = uplink;
    // Modern overlapped-transfer cost model; the serial paper arithmetic
    // is pinned by SimConfig::paperDefaults() for the figure benches.
    spec.sim.cost.pipelined = true;
    // 80% of the paper's single-policy capacity at 10 nodes, scaled.
    spec.jobsPerHour = 0.9 * nodes / 10;
    spec.warmupJobs = jobs(300);
    spec.measuredJobs = jobs(1500);
    spec.maxJobsInSystem = 200;
    return spec;
  };

  std::vector<Cell> cells;
  std::vector<ExperimentSpec> specs;
  for (const int nodes : nodeCounts) {
    for (const Tier& tier : tiers) {
      for (const Arm& a : arms) {
        ExperimentSpec spec = baseSpec(nodes, tier.uplinkBytesPerSec);
        spec.policyName = a.policy;
        if (a.accessMode != nullptr) {
          // Pinned modes override the threshold themselves (0 or 1); the
          // planned arm keeps the paper's default replicate-on-third.
          spec.policyParams.accessMode = a.accessMode;
        } else {
          // Short enough that several accumulation windows fit the run.
          spec.policyParams.periodDelay = 6 * units::hour;
        }
        cells.push_back({a.label, tier.label, nodes, {}});
        specs.push_back(spec);
      }
    }
  }

  // Cold-start section: no warm-up, caches empty, one node count/tier.
  // Plain delayed pays tertiary rates for every first touch; the prefetch
  // variant warms caches during the accumulation window it is already
  // paying for.
  const int coldNodes = 10;
  std::vector<Cell> coldCells;
  for (const char* policy : {"delayed", "prefetch_delayed"}) {
    ExperimentSpec spec = baseSpec(coldNodes, 12.5e6);
    spec.policyName = policy;
    spec.policyParams.periodDelay = 6 * units::hour;
    spec.warmupJobs = 0;
    spec.measuredJobs = jobs(400);
    coldCells.push_back({policy, "cold_uplink_12", coldNodes, {}});
    specs.push_back(spec);
  }

  ThreadPool pool;
  std::vector<std::future<RunResult>> futures;
  futures.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    futures.push_back(pool.submit([spec] { return runExperiment(spec); }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].result = futures[i].get();
  for (std::size_t i = 0; i < coldCells.size(); ++i) {
    coldCells[i].result = futures[cells.size() + i].get();
  }

  for (const int nodes : nodeCounts) {
    std::printf("%d nodes (%.1f jobs/hour), 5 nodes/switch, Gigabit NICs, pipelined\n",
                nodes, 0.9 * nodes / 10);
    std::printf("%-12s", "uplink");
    for (const Arm& a : arms) std::printf(" %15s", a.label);
    std::printf("\n");
    for (const Tier& tier : tiers) {
      std::printf("%-12s", tier.label);
      for (const Arm& a : arms) {
        for (const Cell& c : cells) {
          if (c.nodes != nodes || c.tier != tier.label || c.arm != a.label) continue;
          if (c.result.overloaded) {
            std::printf(" %15s", "overloaded");
          } else {
            std::printf(" %15.2f", c.result.avgSpeedup);
          }
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("cold start, %d nodes, uplink_12, no warm-up (%zu jobs measured)\n",
              coldNodes, jobs(400));
  for (const Cell& c : coldCells) {
    if (c.result.overloaded) {
      std::printf("  %-16s overloaded\n", c.arm.c_str());
    } else {
      std::printf("  %-16s speedup %6.2f  wait_h %6.2f  cache_hit %.3f\n", c.arm.c_str(),
                  c.result.avgSpeedup, units::toHours(c.result.avgWait),
                  c.result.cacheHitFraction);
    }
  }
  std::printf("\n");

  // The qualitative claims, computed from the sweep:
  //  (1) on the narrowest tier the planner matches or beats every pinned
  //      replication mechanism (viable where they are, never slower by
  //      more than a couple of percent);
  //  (2) from a cold start the prefetching delayed variant beats plain
  //      delayed scheduling.
  auto cellFor = [&](int nodes, const char* tier, const char* arm) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.nodes == nodes && c.tier == tier && c.arm == arm) return &c;
    }
    return nullptr;
  };
  for (const int nodes : nodeCounts) {
    const Cell* planned = cellFor(nodes, "uplink_2", "planned");
    if (planned == nullptr || planned->result.overloaded) {
      std::printf("%2d nodes: planner itself overloads on uplink_2 — claim fails\n", nodes);
      continue;
    }
    bool holds = true;
    for (const char* fixed : {"always_remote", "always_repl", "never_remote"}) {
      const Cell* c = cellFor(nodes, "uplink_2", fixed);
      if (c == nullptr || c->result.overloaded) continue;  // planner viable, arm not
      if (planned->result.avgSpeedup < 0.98 * c->result.avgSpeedup) {
        std::printf("%2d nodes: planner loses to %s on uplink_2 (%.2f vs %.2f)\n", nodes,
                    fixed, planned->result.avgSpeedup, c->result.avgSpeedup);
        holds = false;
      }
    }
    if (holds) {
      std::printf(
          "%2d nodes: planner matches or beats every pinned mechanism on uplink_2 "
          "(speedup %.2f)\n",
          nodes, planned->result.avgSpeedup);
    }
  }
  {
    const Cell& plain = coldCells[0];
    const Cell& pre = coldCells[1];
    if (!pre.result.overloaded &&
        (plain.result.overloaded || pre.result.avgSpeedup > plain.result.avgSpeedup)) {
      char plainSp[32];
      if (plain.result.overloaded) {
        std::snprintf(plainSp, sizeof plainSp, "overloaded");
      } else {
        std::snprintf(plainSp, sizeof plainSp, "%.2f", plain.result.avgSpeedup);
      }
      std::printf(
          "cold start: prefetch_delayed beats delayed (speedup %.2f vs %s, cache hits "
          "%.3f vs %.3f)\n",
          pre.result.avgSpeedup, plainSp, pre.result.cacheHitFraction,
          plain.result.cacheHitFraction);
    } else {
      std::printf("cold start: prefetch_delayed does NOT beat delayed (%.2f vs %.2f)\n",
                  pre.result.avgSpeedup, plain.result.avgSpeedup);
    }
  }

  if (const char* dir = jsonDir(); dir != nullptr) {
    std::vector<PerfRecord> records;
    for (const Cell& c : cells) {
      if (c.result.overloaded) continue;
      const std::string key = c.arm + "/" + std::to_string(c.nodes) + "n/" + c.tier;
      records.push_back({key, "speedup", c.result.avgSpeedup, "x"});
      records.push_back({key, "wait", units::toHours(c.result.avgWait), "hours"});
    }
    for (const Cell& c : coldCells) {
      if (c.result.overloaded) continue;
      const std::string key = c.arm + "/" + c.tier;
      records.push_back({key, "speedup", c.result.avgSpeedup, "x"});
      records.push_back({key, "cache_hit", c.result.cacheHitFraction, ""});
    }
    const std::string path = writeBenchJson(dir, "ext_strategy_matrix", records);
    if (!path.empty()) std::printf("\n(perf json written to %s)\n", path.c_str());
  }

  std::printf("\nPaper reference: Section 4.2 fixes one replication heuristic; the access\n"
              "planner generalizes it to a per-subjob choice among the same mechanisms,\n"
              "and prefetch extends Section 5's delayed scheduling with cache warming.\n");
  return 0;
}
