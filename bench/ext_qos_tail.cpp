// Extension: QoS classes and tail latency under diurnal overload.
//
// The paper's policies treat every job alike; production analysis farms do
// not — short interactive analyses share the cluster with bulk production
// passes, and what users feel is the *tail* of the interactive waiting-time
// distribution, not the mean speedup. This bench drives an IN2P3-shaped
// skewed workload (Zipf users, Pareto job sizes, diurnal arrival wave whose
// peaks overload the farm) with one third of the user groups tagged
// interactive, and compares the EEVDF virtual-deadline scheduler against
// the class-blind baselines on three axes:
//
//   - per-class waiting-time tails (p95/p99, interactive vs bulk),
//   - weighted per-user fairness (Jain index over events/weight shares),
//   - aggregate speedup (the price paid for differentiation).
//
// The eevdf rows vary the cache-affinity tie-break window: window=0 is
// strict EEVDF (earliest eligible virtual deadline, period), the default
// window may swap near-tied deadlines for a cheaper data plan. A failure
// column re-runs the whole grid with node crashes (MTBF 40 h, MTTR 2 h)
// to confirm the refund/requeue path keeps the QoS ordering.
//
// What to expect: eevdf holds interactive p95 well below bulk p95 through
// the daily peaks while the class-blind policies serve both classes the
// same tail; its aggregate speedup stays within a few percent of
// out_of_order (same greedy cache-affinity core, different queue order).
#include <future>

#include "bench_util.h"
#include "sched/eevdf.h"
#include "sim/thread_pool.h"
#include "workload/in2p3.h"

namespace {

using namespace ppsched;
using namespace ppsched::bench;

struct Case {
  const char* label;
  const char* policy;
  const char* qosSpec;  // nullptr = defaults (class-blind policies)
};

struct Outcome {
  RunResult result;
  double p95Interactive = 0.0;  // hours; 0 when the class saw no jobs
  double p95Bulk = 0.0;
  double p99Interactive = 0.0;
  double p99Bulk = 0.0;
};

Outcome runCase(const Case& c, bool failures) {
  ExperimentSpec spec;
  spec.policyName = c.policy;
  spec.jobsPerHour = 5.0;  // peaks reach 8 jobs/hour on the diurnal wave
  spec.sim.finalize();
  spec.policyParams.stripeEvents = 5000;
  spec.policyParams.periodDelay = 3 * units::hour;
  if (c.qosSpec != nullptr) spec.policyParams.qos = parseQosSpec(c.qosSpec);
  if (failures) {
    spec.sim.failures.meanTimeBetweenFailuresSec = 40 * units::hour;
    spec.sim.failures.meanTimeToRepairSec = 2 * units::hour;
  }
  spec.warmupJobs = jobs(400);
  spec.measuredJobs = jobs(2400);
  spec.maxJobsInSystem = 4000;  // peaks queue deeply; delayed batches whole periods
  spec.prewarmCaches = true;

  SkewedWorkloadParams wl;
  wl.totalEvents = spec.sim.totalEvents();
  wl.jobsPerHour = spec.jobsPerHour;
  wl.users = 40;
  wl.zipfS = 1.2;
  wl.minJobEvents = 2'000;
  wl.paretoAlpha = 1.3;
  wl.groups = 6;
  wl.interactiveGroups = 2;  // ~1/3 of groups submit interactive analyses
  wl.diurnalAmplitude = 0.6;
  const std::uint64_t seed = spec.seed;
  spec.sourceFactory = [wl, seed] {
    return std::make_unique<SkewedWorkloadGenerator>(wl, seed);
  };

  Outcome out;
  out.result = runExperiment(spec);
  for (const ClassStats& cs : out.result.classStats) {
    if (cs.cls == QosClass::Interactive) {
      out.p95Interactive = units::toHours(cs.p95Wait);
      out.p99Interactive = units::toHours(cs.p99Wait);
    } else {
      out.p95Bulk = units::toHours(cs.p95Wait);
      out.p99Bulk = units::toHours(cs.p99Wait);
    }
  }
  return out;
}

}  // namespace

int main() {
  printHeader("Extension",
              "QoS tail latency: skewed diurnal overload (mean 5 jobs/hour, amplitude 0.6),\n"
              "2 of 6 groups interactive; waits in hours");

  // The same qos weights for every row: class-blind policies ignore them for
  // scheduling but the weighted Jain index must use one yardstick.
  const char* kQos = "iweight=4,bweight=1";
  const Case cases[] = {
      {"out_of_order", "out_of_order", kQos},
      {"delayed-3h", "delayed", kQos},
      {"prefetch-3h", "prefetch_delayed", kQos},
      {"eevdf", "eevdf", kQos},  // default affinity window (5000 events)
      {"eevdf-strict", "eevdf", "iweight=4,bweight=1,window=0"},
      {"eevdf-deadline", "eevdf", "iweight=4,bweight=1,ideadline=900"},
  };

  std::vector<PerfRecord> records;
  for (const bool failures : {false, true}) {
    std::printf("%s\n", failures ? "With node failures (MTBF 40 h, MTTR 2 h):"
                                 : "No failures:");
    std::printf("%-16s %8s %8s %9s %9s %9s %9s %9s %11s\n", "policy", "thruput",
                "speedup", "i-p95", "b-p95", "i-p99", "b-p99", "jain-w", "overloaded");

    // One future per row: the grid is embarrassingly parallel.
    ThreadPool pool;
    std::vector<std::future<Outcome>> rows;
    rows.reserve(std::size(cases));
    for (const Case& c : cases) {
      rows.push_back(pool.submit([&c, failures] { return runCase(c, failures); }));
    }
    for (std::size_t i = 0; i < std::size(cases); ++i) {
      const Outcome o = rows[i].get();
      const RunResult& r = o.result;
      std::printf("%-16s %8.2f %8.2f %9.2f %9.2f %9.2f %9.2f %9.3f %11s\n",
                  cases[i].label, r.throughputJobsPerHour, r.avgSpeedup, o.p95Interactive,
                  o.p95Bulk, o.p99Interactive, o.p99Bulk, r.weightedUserFairness,
                  r.overloaded ? "yes" : "no");
      if (r.overloaded) continue;  // no finite tails to compare
      const std::string series =
          std::string(cases[i].label) + (failures ? "+fail" : "");
      records.push_back({series, "throughput", r.throughputJobsPerHour, "jobs/h"});
      records.push_back({series, "speedup", r.avgSpeedup, "x"});
      records.push_back({series, "p95_wait_interactive", o.p95Interactive, "hours"});
      records.push_back({series, "p95_wait_bulk", o.p95Bulk, "hours"});
      records.push_back({series, "jain_weighted", r.weightedUserFairness, "index"});
    }
    std::printf("\n");
  }

  if (const char* dir = jsonDir(); dir != nullptr) {
    const std::string path = writeBenchJson(dir, "ext_qos_tail", records);
    if (!path.empty()) std::printf("(perf json written to %s)\n\n", path.c_str());
  }

  std::printf("Findings this bench demonstrates: virtual-deadline scheduling buys the\n"
              "interactive class a much shorter waiting-time tail through diurnal peaks\n"
              "at near-zero aggregate cost — eevdf's throughput matches out_of_order\n"
              "(both are work-conserving) while the class-blind policies give both\n"
              "classes the same (bulk-sized) tail. Per-job speedup is lower under\n"
              "contention by construction: a proportional-share queue round-robins the\n"
              "active accounts where out_of_order dedicates the whole cluster to the\n"
              "head of the queue. The affinity window (eevdf vs eevdf-strict) trades a\n"
              "little deadline fidelity for cache hits; a hard relative deadline\n"
              "(eevdf-deadline) caps interactive stripe sizes and bounds the\n"
              "interactive tail even when node failures refund and requeue work.\n");
  return 0;
}
