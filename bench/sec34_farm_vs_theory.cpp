// §3.1/§3.4: the processing farm behaves as an M/Er/m queue.
//
// Compares the simulated mean waiting time of the farm policy against the
// Allen–Cunneen M/G/m approximation with Erlang-4 service (SCV 1/4),
// validating the simulator's queueing behaviour against theory.
#include <cstdio>

#include "bench_util.h"
#include "core/queueing.h"

int main() {
  using namespace ppsched;
  using namespace ppsched::bench;

  printHeader("Section 3.4", "Farm simulation vs M/Er/m queueing theory");

  const SimConfig paper = SimConfig::paperDefaults();
  std::printf("service: Erlang-4, mean %.0f s; %d servers; max stable load %.3f jobs/hour\n\n",
              paper.meanSingleNodeTime(), paper.numNodes, paper.maxFarmLoadJobsPerHour());

  std::printf("%-8s %14s %18s %18s %10s\n", "load", "utilization", "sim wait (h)",
              "theory wait (h)", "ratio");
  for (const double load : {0.6, 0.7, 0.8, 0.9, 1.0, 1.05}) {
    ExperimentSpec spec;
    spec.policyName = "farm";
    spec.jobsPerHour = load;
    spec.warmupJobs = jobs(400);
    spec.measuredJobs = jobs(3000);
    spec.maxJobsInSystem = 800;
    const RunResult r = runExperiment(spec);

    const QueueModel q = farmQueueModel(paper.numNodes, load, paper.meanSingleNodeTime(), 4);
    const double theory = q.meanWaitApprox();
    std::printf("%-8.2f %14.3f %18.3f %18.3f %10.2f\n", load, q.utilization(),
                units::toHours(r.avgWait), units::toHours(theory),
                theory > 0 ? r.avgWait / theory : 0.0);
  }

  std::printf("\nThe ratio should hover around 1 (simulation noise grows near\n"
              "saturation, where the mean wait diverges).\n");
  return 0;
}
