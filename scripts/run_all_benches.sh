#!/usr/bin/env sh
# Run every figure/ablation bench and capture the output.
#
#   scripts/run_all_benches.sh [build-dir] [output-file]
#
# Set PPSCHED_FAST=1 for quarter-size smoke runs (~1 min instead of ~10).
# Set PPSCHED_JSON=<dir> to also collect the BENCH_*.json perf-trajectory
# files there (the directory is created if missing).
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

if [ -n "${PPSCHED_JSON:-}" ]; then
  mkdir -p "$PPSCHED_JSON"
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first (cmake -B build && cmake --build build)" >&2
  exit 1
fi

: > "$OUT"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  "$b" >> "$OUT" 2>&1
done
echo "wrote $OUT"
