# Plot a ppsched_cli CSV sweep with gnuplot.
#
#   ./build/tools/ppsched_cli sweep --policy out_of_order \
#       --loads 0.8,1.0,1.2,1.4,1.6,1.8 --csv > ooo.csv
#   gnuplot -e "csv='ooo.csv'" scripts/plot_sweep.gp
#
# Produces sweep_speedup.png and sweep_wait.png in the working directory
# (the paper's two standard panels: average speedup and average waiting time
# against the load).
if (!exists("csv")) csv = "sweep.csv"

set datafile separator ","
set key autotitle columnheader
set grid
set xlabel "Load (jobs/hour)"
set terminal pngcairo size 800,500

set output "sweep_speedup.png"
set ylabel "Average speedup"
plot csv using 2:3 with linespoints lw 2 title "speedup"

set output "sweep_wait.png"
set ylabel "Average waiting time (hours)"
set logscale y
plot csv using 2:4 with linespoints lw 2 title "wait (h)"
