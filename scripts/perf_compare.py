#!/usr/bin/env python3
"""Diff two ppsched-bench-v1 BENCH_*.json files with a tolerance.

Usage:
    perf_compare.py BASELINE.json CURRENT.json [--tolerance 0.10]
                    [--fail-on-regress] [--fail-on-missing]

Records are joined on (bench, series, metric). For each pair the relative
change is reported; changes beyond the tolerance are flagged as REGRESS or
IMPROVE depending on the metric's direction:

  - metrics where higher is better: items_per_second, speedup
  - everything else (times, waits) is lower-is-better

By default the script is report-only and always exits 0 so it can run
against a checked-in baseline measured on different hardware. With
--fail-on-regress it exits 1 when any regression exceeds the tolerance
(same-machine A/B comparisons).
"""

from __future__ import annotations

import argparse
import json
import sys

HIGHER_IS_BETTER = {"items_per_second", "speedup"}
SCHEMA = "ppsched-bench-v1"


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        sys.exit(f"{path}: unsupported schema {data.get('schema')!r} (want {SCHEMA!r})")
    for field in ("bench", "records"):
        if field not in data:
            sys.exit(f"{path}: missing field {field!r}")
    for rec in data["records"]:
        for field in ("series", "metric", "value", "unit"):
            if field not in rec:
                sys.exit(f"{path}: record missing field {field!r}: {rec}")
    return data


def keyed(data: dict) -> dict:
    out = {}
    for rec in data["records"]:
        out[(data["bench"], rec["series"], rec["metric"])] = rec
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative change treated as noise (default 0.10 = 10%%)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 if any regression exceeds the tolerance")
    ap.add_argument("--fail-on-missing", action="store_true",
                    help="exit 1 if a baseline record is absent from current")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base.get("fast") != cur.get("fast"):
        print(f"note: comparing fast={base.get('fast')} baseline against "
              f"fast={cur.get('fast')} current; sizes differ")

    base_recs = keyed(base)
    cur_recs = keyed(cur)

    regressions = 0
    missing = 0
    rows = []
    for key, brec in sorted(base_recs.items()):
        crec = cur_recs.get(key)
        bench, series, metric = key
        label = f"{bench}/{series}/{metric}"
        if crec is None:
            rows.append((label, brec["value"], None, None, "MISSING"))
            missing += 1
            continue
        bval, cval = float(brec["value"]), float(crec["value"])
        if bval == 0.0:
            delta = 0.0 if cval == 0.0 else float("inf")
        else:
            delta = (cval - bval) / abs(bval)
        better = delta > 0 if metric in HIGHER_IS_BETTER else delta < 0
        if abs(delta) <= args.tolerance:
            verdict = "ok"
        elif better:
            verdict = "IMPROVE"
        else:
            verdict = "REGRESS"
            regressions += 1
        rows.append((label, bval, cval, delta, verdict))

    new_keys = sorted(set(cur_recs) - set(base_recs))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'record':<{width}} {'baseline':>14} {'current':>14} {'change':>9}  verdict")
    for label, bval, cval, delta, verdict in rows:
        cur_s = f"{cval:14.6g}" if cval is not None else f"{'-':>14}"
        delta_s = f"{delta:+8.1%}" if delta is not None else f"{'-':>8}"
        print(f"{label:<{width}} {bval:14.6g} {cur_s} {delta_s}  {verdict}")
    for key in new_keys:
        print(f"{'/'.join(key):<{width}} {'-':>14} {cur_recs[key]['value']:14.6g} "
              f"{'-':>8}  NEW")

    print(f"\n{len(rows)} compared, {regressions} regression(s), {missing} missing, "
          f"{len(new_keys)} new (tolerance {args.tolerance:.0%})")
    if args.fail_on_regress and regressions:
        return 1
    if args.fail_on_missing and missing:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
