# Plot a figure CSV produced by the benches (PPSCHED_CSV=<dir>).
#
#   PPSCHED_CSV=out ./build/bench/fig3_out_of_order
#   gnuplot -e "csv='out/fig3.csv'" scripts/plot_figure.gp
#
# Produces <csv>_speedup.png and <csv>_wait.png with one curve per series —
# the two panels of the paper's figures. Overloaded points are dropped, as
# the paper cuts its curves there.
if (!exists("csv")) csv = "fig2.csv"

set datafile separator ","
set grid
set xlabel "Load (jobs/hour)"
set key outside right
set terminal pngcairo size 900,540

# Distinct series labels, preserving order of first appearance.
series = system(sprintf("awk -F, 'NR>1 && !seen[$1]++ {print $1}' %s", csv))

set output csv."_speedup.png"
set ylabel "Average speedup"
plot for [s in series] csv \
  using (strcol(1) eq s && $7 == 0 ? $2 : NaN):3 with linespoints lw 2 title s

set output csv."_wait.png"
set ylabel "Average waiting time (hours)"
set logscale y
plot for [s in series] csv \
  using (strcol(1) eq s && $7 == 0 ? $2 : NaN):4 with linespoints lw 2 title s
