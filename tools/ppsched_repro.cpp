// Automated reproduction checker.
//
// Runs reduced-size versions of the paper's experiments and verifies the
// qualitative claims of EXPERIMENTS.md as explicit pass/fail checks — the
// executable summary of the reproduction. Exit code 0 iff every check
// passes. Runtime a couple of minutes; suitable for CI.
//
//   ./build/tools/ppsched_repro            # all checks
//   ./build/tools/ppsched_repro --fast     # quarter-size (smoke)
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/queueing.h"

namespace {

using namespace ppsched;

struct Checker {
  bool fast = false;
  int passed = 0;
  int failed = 0;

  std::size_t jobs(std::size_t n) const { return fast ? n / 4 : n; }

  void check(const std::string& claim, bool ok, const std::string& detail) {
    std::printf("[%s] %s\n        %s\n", ok ? "PASS" : "FAIL", claim.c_str(),
                detail.c_str());
    (ok ? passed : failed)++;
  }

  RunResult run(const std::string& policy, double load,
                const std::function<void(ExperimentSpec&)>& tweak = nullptr) {
    ExperimentSpec spec;
    spec.policyName = policy;
    spec.jobsPerHour = load;
    spec.warmupJobs = jobs(300);
    spec.measuredJobs = jobs(1200);
    spec.maxJobsInSystem = policy == "delayed" || policy == "adaptive" ? 3000 : 500;
    if (tweak) tweak(spec);
    spec.sim.finalize();
    return runExperiment(spec);
  }
};

std::string fmt(const char* format, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, format, a, b);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Checker c;
  c.fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  std::printf("ppsched reproduction checklist (%s)\n\n", c.fast ? "fast" : "full");

  // --- §2.4 calibration identities ---------------------------------------
  const SimConfig paper = SimConfig::paperDefaults();
  c.check("single-node no-cache mean job time is 32000 s",
          paper.meanSingleNodeTime() == 32000.0,
          fmt("measured %.0f (paper %.0f)", paper.meanSingleNodeTime(), 32000.0));
  c.check("theoretical max load is 3.46 jobs/hour",
          std::abs(paper.maxTheoreticalLoadJobsPerHour() - 3.46) < 0.01,
          fmt("measured %.3f (paper %.2f)", paper.maxTheoreticalLoadJobsPerHour(), 3.46));
  c.check("caching gain slightly larger than 3",
          paper.cost.cachingGain() > 3.0 && paper.cost.cachingGain() < 3.2,
          fmt("measured %.3f (paper ~%.0f)", paper.cost.cachingGain(), 3.0));

  // --- §3 FCFS policies ---------------------------------------------------
  const RunResult farm09 = c.run("farm", 0.9);
  c.check("farm speedup is 1 (Fig 2)", std::abs(farm09.avgSpeedup - 1.0) < 0.02,
          fmt("measured %.3f (paper %.0f)", farm09.avgSpeedup, 1.0));
  const QueueModel q = farmQueueModel(10, 0.9, 32'000.0, 4);
  c.check("farm wait matches M/Er/m theory within 2x (Sec 3.1)",
          farm09.avgWait > 0.5 * q.meanWaitApprox() && farm09.avgWait < 2.0 * q.meanWaitApprox(),
          fmt("measured %.2f h vs theory %.2f h", units::toHours(farm09.avgWait),
              units::toHours(q.meanWaitApprox())));
  const RunResult farm14 = c.run("farm", 1.4);
  c.check("farm overloads beyond ~1.1 jobs/hour (Fig 2)", farm14.overloaded,
          fmt("overloaded at %.1f jobs/hour: yes/no -> %.0f", 1.4,
              farm14.overloaded ? 1.0 : 0.0));

  const RunResult split09 = c.run("splitting", 0.9);
  c.check("job splitting always beats the farm (Sec 3.2)",
          split09.avgSpeedup > farm09.avgSpeedup && split09.avgWait < farm09.avgWait,
          fmt("speedups %.2f vs %.2f", split09.avgSpeedup, farm09.avgSpeedup));

  const RunResult cache09 = c.run("cache_oriented", 0.9);
  c.check("cache-oriented splitting beats plain splitting (Sec 3.3)",
          cache09.avgSpeedup > split09.avgSpeedup,
          fmt("speedups %.2f vs %.2f", cache09.avgSpeedup, split09.avgSpeedup));
  const RunResult cache50 = c.run("cache_oriented", 0.9, [](ExperimentSpec& s) {
    s.sim.cacheBytesPerNode = 50'000'000'000ULL;
  });
  const RunResult cache200 = c.run("cache_oriented", 0.9, [](ExperimentSpec& s) {
    s.sim.cacheBytesPerNode = 200'000'000'000ULL;
  });
  c.check("cache size is decisive: 200 GB > 100 GB > 50 GB (Fig 2)",
          cache200.avgSpeedup > cache09.avgSpeedup && cache09.avgSpeedup > cache50.avgSpeedup,
          fmt("speedups %.2f / %.2f", cache200.avgSpeedup, cache50.avgSpeedup));

  // --- §4 out-of-order ----------------------------------------------------
  const RunResult ooo10 = c.run("out_of_order", 1.0);
  const RunResult fifo10 = c.run("cache_oriented", 1.0);
  c.check("out-of-order beats FIFO cache-oriented on speedup (Fig 3)",
          ooo10.avgSpeedup > fifo10.avgSpeedup,
          fmt("speedups %.2f vs %.2f", ooo10.avgSpeedup, fifo10.avgSpeedup));
  // The order-of-magnitude wait gap appears where the FIFO policy starts
  // queueing (near its saturation), per Fig 3's mid-range loads.
  const RunResult ooo12 = c.run("out_of_order", 1.2);
  const RunResult fifo12 = c.run("cache_oriented", 1.2);
  c.check("out-of-order waits are several times lower near FIFO saturation (Fig 3)",
          ooo12.avgWait < 0.5 * fifo12.avgWait,
          fmt("waits %.3f h vs %.3f h at 1.2 jobs/hour", units::toHours(ooo12.avgWait),
              units::toHours(fifo12.avgWait)));
  const RunResult ooo16 = c.run("out_of_order", 1.6);
  const RunResult fifo16 = c.run("cache_oriented", 1.6);
  c.check("out-of-order sustains loads FIFO cannot (Fig 3)",
          !ooo16.overloaded && fifo16.overloaded,
          fmt("overloaded at 1.6: ooo %.0f, fifo %.0f", ooo16.overloaded ? 1.0 : 0.0,
              fifo16.overloaded ? 1.0 : 0.0));

  const RunResult repl13 = c.run("replication", 1.3);
  const RunResult ooo13 = c.run("out_of_order", 1.3);
  c.check("replication changes out-of-order performance by < 15% (Sec 4.2)",
          std::abs(repl13.avgSpeedup - ooo13.avgSpeedup) < 0.15 * ooo13.avgSpeedup,
          fmt("speedups %.2f vs %.2f", repl13.avgSpeedup, ooo13.avgSpeedup));

  // --- §5 delayed ----------------------------------------------------------
  auto delayed = [&](Duration delay, std::uint64_t stripe, double load) {
    return c.run("delayed", load, [&](ExperimentSpec& s) {
      s.policyParams.periodDelay = delay;
      s.policyParams.stripeEvents = stripe;
      s.warmupJobs = c.jobs(600);
      s.measuredJobs = c.jobs(2000);
    });
  };
  const RunResult d2d = delayed(2 * units::day, 5000, 2.2);
  c.check("delayed (2 d) sustains 2.2 jobs/hour, beyond out-of-order (Fig 5)",
          !d2d.overloaded,
          fmt("overloaded %.0f, speedup %.2f", d2d.overloaded ? 1.0 : 0.0, d2d.avgSpeedup));
  const RunResult fine = delayed(2 * units::day, 200, 1.4);
  const RunResult coarse = delayed(2 * units::day, 25'000, 1.4);
  c.check("smaller stripes give clearly better speedup (Fig 6)",
          fine.avgSpeedup > 2.0 * coarse.avgSpeedup,
          fmt("speedups %.2f vs %.2f", fine.avgSpeedup, coarse.avgSpeedup));
  c.check("delayed speedup below out-of-order at shared loads (Fig 5)",
          delayed(2 * units::day, 5000, 1.2).avgSpeedup < c.run("out_of_order", 1.2).avgSpeedup,
          "delayed trades response time for sustainable load");

  // --- §6 adaptive ----------------------------------------------------------
  const RunResult adaptLow = c.run("adaptive", 0.8, [](ExperimentSpec& s) {
    s.policyParams.stripeEvents = 200;
  });
  const RunResult oooLow = c.run("out_of_order", 0.8);
  c.check("adaptive with small stripes >= out-of-order at low load (Fig 7)",
          adaptLow.avgSpeedup > 0.95 * oooLow.avgSpeedup,
          fmt("speedups %.2f vs %.2f", adaptLow.avgSpeedup, oooLow.avgSpeedup));
  c.check("adaptive delay at low load costs little waiting time (Fig 7)",
          adaptLow.avgWait < units::hour,
          fmt("wait %.2f h (paper: up to ~%.0f h)", units::toHours(adaptLow.avgWait), 1.0));
  const RunResult adaptHigh = c.run("adaptive", 2.4, [&](ExperimentSpec& s) {
    s.policyParams.stripeEvents = 200;
    s.warmupJobs = c.jobs(800);
    s.measuredJobs = c.jobs(2000);
  });
  // Fast mode's small samples are too noisy to flag out-of-order's overload
  // reliably; the full run checks both sides.
  const bool oooDrowns = c.fast || c.run("out_of_order", 2.4).overloaded;
  c.check("adaptive sustains loads out-of-order cannot (Fig 7)",
          !adaptHigh.overloaded && oooDrowns,
          fmt("adaptive overloaded at %.1f: %.0f", 2.4, adaptHigh.overloaded ? 1.0 : 0.0));

  std::printf("\n%d passed, %d failed\n", c.passed, c.failed);
  return c.failed == 0 ? 0 : 1;
}
