// ppsched command-line simulator.
//
// The operational front-end to the library: run single experiments, load
// sweeps, sustainable-load searches and multi-seed replications for any
// policy/configuration, with table or CSV output.
//
//   ppsched_cli policies
//   ppsched_cli config
//   ppsched_cli run   [options]
//   ppsched_cli sweep [options] --loads 0.8,1.0,1.2
//   ppsched_cli maxload [options] --lo 0.8 --hi 3.0
//   ppsched_cli replicate [options] --replicas 5
//   ppsched_cli timeline [options] --jobs 8      ASCII Gantt of a short run
//
// Common options:
//   --policy NAME          scheduling policy (default out_of_order)
//   --load X               jobs/hour (default 1.0)
//   --nodes N              cluster size (default 10)
//   --cpus K               CPUs per node sharing one cache (default 1)
//   --cache GB             per-node disk cache (default 100)
//   --delay HOURS          delayed/mixed period delay
//   --stripe N             delayed/adaptive/mixed stripe size (events)
//   --warmup N / --jobs N  warm-up and measured job counts
//   --seed S               base RNG seed
//   --trace FILE           replay a trace file instead of the synthetic
//                          generator (streamed job by job; ppsched CSV or
//                          IN2P3 batch records, auto-detected). Real traces
//                          carry user tags: run/timeline also report the
//                          per-user fairness index.
//   --pipelined            overlap transfer and processing (§7)
//   --tertiary-cap MBPS    aggregate tertiary bandwidth cap
//   --network SPEC         flow-level network model, e.g.
//                          "nic=125,uplink=20,ingress=40,group=8" (MB/s;
//                          group = nodes per edge switch) or "off"
//   --shards SPEC          sharded multi-master scheduling, e.g.
//                          "4,digest=600,steal=on" (K shards, digest
//                          exchange period in seconds, cross-shard work
//                          stealing) or "off"; also route=affinity|rr,
//                          admit=N, buckets=N
//   --qos SPEC             QoS classes for the eevdf policy, e.g.
//                          "iweight=4,bweight=1,ideadline=600,window=5000,
//                          igroups=lhcb|atlas" (weights, per-class relative
//                          deadlines in seconds, cache-affinity window in
//                          events, IN2P3 groups classed interactive)
//   --csv                  machine-readable output
//
// Flag parsing lives in core/cli.{h,cpp} (unit tested); this file only
// renders results.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/queueing.h"
#include "core/timeline.h"
#include "workload/trace.h"

namespace {

using namespace ppsched;

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "ppsched_cli: %s\n", message.c_str());
  std::exit(2);
}

void printResult(const CliOptions& opt, double load, const RunResult& r) {
  if (opt.csv) {
    std::printf("%s,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f,%zu,%d\n", opt.spec.policyName.c_str(),
                load, r.avgSpeedup, units::toHours(r.avgWait),
                units::toHours(r.avgWaitExDelay), units::toHours(r.p95Wait),
                r.cacheHitFraction, r.measuredJobs, r.overloaded ? 1 : 0);
    return;
  }
  if (opt.spec.tracePath.empty()) {
    std::printf("policy %s @ %.2f jobs/hour%s\n", opt.spec.policyName.c_str(), load,
                r.overloaded ? "  [OVERLOADED]" : "");
  } else {
    std::printf("policy %s replaying %s%s\n", opt.spec.policyName.c_str(),
                opt.spec.tracePath.c_str(), r.overloaded ? "  [OVERLOADED]" : "");
  }
  std::printf("  speedup        %.2f\n", r.avgSpeedup);
  std::printf("  wait           %.3f h (ex-delay %.3f h, p95 %.3f h, max %.3f h)\n",
              units::toHours(r.avgWait), units::toHours(r.avgWaitExDelay),
              units::toHours(r.p95Wait), units::toHours(r.maxWait));
  std::printf("  cache hits     %.1f%% (remote %.1f%%)\n", 100 * r.cacheHitFraction,
              100 * r.remoteReadFraction);
  std::printf("  throughput     %.2f jobs/hour over %zu measured jobs\n",
              r.throughputJobsPerHour, r.measuredJobs);
  if (r.classStats.size() > 1) {
    for (const ClassStats& c : r.classStats) {
      std::printf("  %-12s %5zu jobs  %5.1f%% of events  wait %.3f h (p95 %.3f h, p99 %.3f h)\n",
                  std::string(qosClassName(c.cls)).c_str(), c.jobs, 100.0 * c.eventShare,
                  units::toHours(c.meanWait), units::toHours(c.p95Wait),
                  units::toHours(c.p99Wait));
    }
  }
  if (r.userStats.size() > 1 ||
      (r.userStats.size() == 1 && r.userStats.front().user != kNoUser)) {
    std::printf("  fairness       %.3f (Jain, %zu users)\n", r.userFairness,
                r.userStats.size());
    const std::size_t top = std::min<std::size_t>(5, r.userStats.size());
    for (std::size_t i = 0; i < top; ++i) {
      const UserStats& u = r.userStats[i];
      std::printf("    user %-6u %5zu jobs  %5.1f%% of events  wait %.3f h (p95 %.3f h)\n",
                  u.user, u.jobs, 100.0 * u.eventShare, units::toHours(u.meanWait),
                  units::toHours(u.p95Wait));
    }
    if (r.userStats.size() > top) {
      std::printf("    ... %zu more users\n", r.userStats.size() - top);
    }
  }
  if (r.shards.enabled) {
    std::printf("  shards         %d (digest %.0f s, steal %s): %zu steals (%zu stale), "
                "digest age %.0f s mean\n",
                r.shards.count, r.shards.digestPeriodSec, r.shards.steal ? "on" : "off",
                r.shards.steals, r.shards.staleSteals, r.shards.meanDigestAgeSec);
    for (const ShardStats& s : r.shards.shards) {
      std::printf("    shard %-2d nodes [%d,%d)  %4zu routed  %3zu in / %3zu out stolen  "
                  "%3zu rehomed  queue peak %zu mean %.1f\n",
                  s.shard, s.nodeBegin, s.nodeEnd, s.jobsRouted, s.jobsStolenIn,
                  s.jobsStolenOut, s.jobsRehomed, s.peakQueueDepth, s.meanQueueDepth);
    }
  }
  if (r.network.enabled) {
    std::printf("  network        %llu flows (%llu remote, %llu tertiary, %llu repl), "
                "peak %llu concurrent\n",
                static_cast<unsigned long long>(r.network.flowsOpened),
                static_cast<unsigned long long>(r.network.remoteFlows),
                static_cast<unsigned long long>(r.network.tertiaryFlows),
                static_cast<unsigned long long>(r.network.replicationFlows),
                static_cast<unsigned long long>(r.network.maxConcurrentFlows));
    std::printf("  net bytes      %.1f GB remote, %.1f GB tertiary, %.1f GB replication; "
                "max link util %.1f%%\n",
                r.network.remoteBytes / 1e9, r.network.tertiaryBytes / 1e9,
                r.network.replicationBytes / 1e9, 100.0 * r.network.maxLinkUtilization);
  }
}

const char kCsvHeader[] =
    "policy,load,speedup,wait_h,wait_ex_delay_h,p95_wait_h,cache_hit,measured,overloaded";

int cmdRun(const CliOptions& opt) {
  if (opt.csv) std::puts(kCsvHeader);
  printResult(opt, opt.spec.jobsPerHour, runExperiment(opt.spec));
  return 0;
}

int cmdSweep(CliOptions opt) {
  if (opt.loads.empty()) fail("sweep needs --loads a,b,c");
  ThreadPool pool;
  const auto points = loadSweep(opt.spec, opt.loads, &pool);
  if (opt.csv) std::puts(kCsvHeader);
  for (const auto& p : points) printResult(opt, p.jobsPerHour, p.result);
  return 0;
}

int cmdMaxLoad(const CliOptions& opt) {
  const double maxLoad = findMaxSustainableLoad(opt.spec, opt.lo, opt.hi, 0.05);
  std::printf("%s: max sustainable load %.2f jobs/hour (bracket %.2f..%.2f)\n",
              opt.spec.policyName.c_str(), maxLoad, opt.lo, opt.hi);
  return 0;
}

int cmdReplicate(const CliOptions& opt) {
  ThreadPool pool;
  const ReplicatedResult r = runReplicated(opt.spec, opt.replicas, &pool);
  std::printf("%s @ %.2f jobs/hour, %zu replicas\n", opt.spec.policyName.c_str(),
              opt.spec.jobsPerHour, opt.replicas);
  std::printf("  speedup  %.2f +- %.2f (s.e.)\n", r.meanSpeedup, r.speedupStdErr);
  std::printf("  wait     %.3f +- %.3f h (s.e.)\n", r.meanWaitHours, r.waitHoursStdErr);
  std::printf("  overloaded in %zu/%zu replicas\n", r.overloadedRuns, r.runs.size());
  return 0;
}

int cmdTimeline(const CliOptions& opt) {
  SimConfig cfg = opt.spec.sim;
  cfg.workload.jobsPerHour = opt.spec.jobsPerHour;
  cfg.finalize();
  const std::size_t jobCount = opt.spec.measuredJobs != 1500 ? opt.spec.measuredJobs : 8;

  std::unique_ptr<JobSource> src;
  if (!opt.spec.tracePath.empty()) {
    src = openTraceSource(opt.spec.tracePath, cfg, opt.spec.policyParams.qos.interactiveGroups);
  } else {
    src = std::make_unique<WorkloadGenerator>(cfg.workload, opt.spec.seed);
  }
  const JobTrace trace = JobTrace::record(*src, jobCount);
  MetricsCollector metrics(cfg.cost, WarmupConfig{0, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(trace),
                makePolicy(opt.spec.policyName, opt.spec.policyParams), metrics);
  EventLog log;
  engine.setEventSink(&log);
  engine.run({});

  std::printf("%zu jobs under '%s' on %d nodes (makespan %.1f h)\n\n", trace.size(),
              opt.spec.policyName.c_str(), cfg.numNodes, units::toHours(engine.now()));
  TimelineOptions tl;
  tl.end = engine.now();
  tl.width = 96;
  std::fputs(renderTimeline(log, cfg.numNodes, tl).c_str(), stdout);
  const auto util = nodeUtilization(log, cfg.numNodes, 0.0, engine.now());
  std::printf("\nutilization:");
  for (double u : util) std::printf(" %3.0f%%", 100.0 * u);
  std::printf("\nrows are nodes, digits job ids (mod 10), '.' idle\n");
  return 0;
}

int cmdPolicies() {
  for (const std::string& name : policyNames()) std::puts(name.c_str());
  return 0;
}

int cmdConfig(const CliOptions& opt) {
  const SimConfig& cfg = opt.spec.sim;
  std::printf("nodes                  %d\n", cfg.numNodes);
  std::printf("data space             %.2f TB (%llu events)\n", cfg.totalDataBytes / 1e12,
              static_cast<unsigned long long>(cfg.totalEvents()));
  std::printf("cache per node         %.0f GB (%llu events)\n", cfg.cacheBytesPerNode / 1e9,
              static_cast<unsigned long long>(cfg.cacheEvents()));
  std::printf("cached event cost      %.3f s\n", cfg.cost.cachedSecPerEvent());
  std::printf("uncached event cost    %.3f s\n", cfg.cost.uncachedSecPerEvent());
  std::printf("caching gain           %.2fx\n", cfg.cost.cachingGain());
  std::printf("mean single-node job   %.0f s (%.2f h)\n", cfg.meanSingleNodeTime(),
              units::toHours(cfg.meanSingleNodeTime()));
  std::printf("max farm load          %.3f jobs/hour\n", cfg.maxFarmLoadJobsPerHour());
  std::printf("max theoretical load   %.3f jobs/hour\n", cfg.maxTheoreticalLoadJobsPerHour());
  std::printf("network model          %s\n", formatNetworkSpec(cfg.network).c_str());
  std::printf("shards                 %s\n", formatShardSpec(cfg.shards).c_str());
  const QueueModel q =
      farmQueueModel(cfg.numNodes, opt.spec.jobsPerHour, cfg.meanSingleNodeTime(), 4);
  if (q.stable()) {
    std::printf("M/Er/m farm wait       %.3f h at %.2f jobs/hour\n",
                units::toHours(q.meanWaitApprox()), opt.spec.jobsPerHour);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = parseCliArgs(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  try {
    if (opt.command == "run") return cmdRun(opt);
    if (opt.command == "sweep") return cmdSweep(opt);
    if (opt.command == "maxload") return cmdMaxLoad(opt);
    if (opt.command == "replicate") return cmdReplicate(opt);
    if (opt.command == "timeline") return cmdTimeline(opt);
    if (opt.command == "policies") return cmdPolicies();
    if (opt.command == "config") return cmdConfig(opt);
    fail("unknown command: " + opt.command);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppsched_cli: %s\n", e.what());
    return 1;
  }
}
