#include "storage/lru_cache.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ppsched {

LruExtentCache::LruExtentCache(std::uint64_t capacityEvents) : capacity_(capacityEvents) {}

IntervalSet LruExtentCache::cachedIn(EventRange r) const {
  IntervalSet out;
  if (r.empty() || extents_.empty()) return out;
  auto it = extents_.upper_bound(r.begin);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < r.end; ++it) {
    const EventIndex b = std::max(it->first, r.begin);
    const EventIndex e = std::min(it->second.end, r.end);
    if (b < e) out.insert({b, e});
  }
  return out;
}

std::uint64_t LruExtentCache::overlapSize(EventRange r) const {
  return cachedIn(r).size();
}

bool LruExtentCache::containsRange(EventRange r) const {
  // Coverage may span several extents with different timestamps; walk them
  // and require contiguity.
  if (r.empty()) return true;
  auto it = extents_.upper_bound(r.begin);
  if (it == extents_.begin()) return false;
  --it;
  if (r.begin < it->first || r.begin >= it->second.end) return false;
  EventIndex covered = it->second.end;
  while (covered < r.end) {
    ++it;
    if (it == extents_.end() || it->first != covered) return false;
    covered = it->second.end;
  }
  return true;
}

IntervalSet LruExtentCache::contents() const {
  IntervalSet out;
  for (const auto& [b, ext] : extents_) out.insert({b, ext.end});
  return out;
}

void LruExtentCache::splitAt(EventIndex pos) {
  auto it = extents_.upper_bound(pos);
  if (it == extents_.begin()) return;
  --it;
  if (pos <= it->first || pos >= it->second.end) return;
  const EventIndex end = it->second.end;
  const SimTime t = it->second.lastAccess;
  it->second.end = pos;
  extents_.emplace(pos, Extent{end, t});
  lru_.emplace(t, pos);
}

LruExtentCache::ExtentMap::iterator LruExtentCache::removeExtent(ExtentMap::iterator it) {
  lru_.erase({it->second.lastAccess, it->first});
  used_ -= it->second.end - it->first;
  return extents_.erase(it);
}

void LruExtentCache::addExtent(EventIndex b, EventIndex e, SimTime t) {
  assert(b < e);
  // Merge with an equal-timestamp left neighbour.
  auto left = extents_.lower_bound(b);
  if (left != extents_.begin()) {
    auto prev = std::prev(left);
    assert(prev->second.end <= b);
    if (prev->second.end == b && prev->second.lastAccess == t) {
      b = prev->first;
      used_ -= prev->second.end - prev->first;
      lru_.erase({t, prev->first});
      extents_.erase(prev);
    }
  }
  // Merge with an equal-timestamp right neighbour.
  auto right = extents_.lower_bound(e);
  if (right != extents_.end() && right->first == e && right->second.lastAccess == t) {
    e = right->second.end;
    used_ -= right->second.end - right->first;
    lru_.erase({t, right->first});
    extents_.erase(right);
  }
  extents_.emplace(b, Extent{e, t});
  lru_.emplace(t, b);
  used_ += e - b;
}

void LruExtentCache::touch(EventRange r, SimTime now) {
  if (r.empty()) return;
  splitAt(r.begin);
  splitAt(r.end);
  std::vector<EventRange> touched;
  auto it = extents_.lower_bound(r.begin);
  while (it != extents_.end() && it->first < r.end) {
    assert(it->second.end <= r.end);
    touched.push_back({it->first, it->second.end});
    it = removeExtent(it);
  }
  for (const auto& piece : touched) addExtent(piece.begin, piece.end, now);
}

void LruExtentCache::pin(EventRange r) { pins_.add(r, +1); }

void LruExtentCache::unpin(EventRange r) { pins_.add(r, -1); }

IntervalSet LruExtentCache::pinnedIn(EventRange r) const {
  if (r.empty()) return {};
  return pins_.rangesAtLeast(r, 1);
}

void LruExtentCache::evict(EventRange r) {
  if (r.empty()) return;
  splitAt(r.begin);
  splitAt(r.end);
  auto it = extents_.lower_bound(r.begin);
  while (it != extents_.end() && it->first < r.end) {
    totalEvicted_ += it->second.end - it->first;
    it = removeExtent(it);
  }
}

void LruExtentCache::drop() {
  totalEvicted_ += used_;
  extents_.clear();
  lru_.clear();
  used_ = 0;
  // pins_ intentionally survives: pins track *runs*, not contents, and every
  // pin() is still balanced by the run's eventual unpin().
}

bool LruExtentCache::makeRoom(std::uint64_t needed) {
  if (needed > capacity_) return false;
  // Walk the LRU index oldest-first; evict unpinned portions. Partially
  // pinned extents shed only their unpinned pieces; fully pinned extents are
  // skipped.
  while (capacity_ - used_ < needed) {
    bool evictedSomething = false;
    for (auto lruIt = lru_.begin(); lruIt != lru_.end(); ++lruIt) {
      const EventIndex begin = lruIt->second;
      auto extIt = extents_.find(begin);
      assert(extIt != extents_.end());
      const EventRange range{begin, extIt->second.end};
      const SimTime t = extIt->second.lastAccess;
      IntervalSet evictable{range};
      evictable.erase(pins_.rangesAtLeast(range, 1));
      if (evictable.empty()) continue;  // fully pinned, skip
      // Evict only as much as the deficit requires, taking the lowest
      // indices of the extent first; the remainder keeps its timestamp and
      // stays first in LRU order.
      const std::uint64_t deficit = needed - (capacity_ - used_);
      IntervalSet keep{range};
      std::uint64_t freed = 0;
      for (const EventRange& piece : evictable.intervals()) {
        if (freed >= deficit) break;
        const EventRange cut = piece.prefix(deficit - freed);
        keep.erase(cut);
        freed += cut.size();
      }
      totalEvicted_ += freed;
      removeExtent(extIt);
      for (const auto& piece : keep.intervals()) addExtent(piece.begin, piece.end, t);
      evictedSomething = true;
      break;  // LRU index changed; restart from the (new) oldest
    }
    if (!evictedSomething) return false;  // everything remaining is pinned
  }
  return true;
}

IntervalSet LruExtentCache::insert(EventRange r, SimTime now) {
  IntervalSet inserted;
  if (r.empty() || capacity_ == 0) return inserted;
  // Refresh what is already there, so it becomes MRU and is not evicted to
  // make room for the rest of the same range.
  touch(r, now);
  IntervalSet missing{r};
  missing.erase(cachedIn(r));
  for (const auto& gap : missing.intervals()) {
    // A gap larger than the whole cache can at best leave its prefix behind.
    EventRange piece = gap.prefix(capacity_);
    if (!makeRoom(piece.size())) {
      // Insert only the prefix that fits (streamed data fills the cache
      // until pinned contents block further eviction).
      const std::uint64_t space = capacity_ - used_;
      if (space == 0) break;
      piece = piece.prefix(space);
    }
    addExtent(piece.begin, piece.end, now);
    inserted.insert(piece);
  }
  return inserted;
}

}  // namespace ppsched
