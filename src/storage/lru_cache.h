// Extent-based LRU disk cache.
//
// Each processing node owns one LruExtentCache modelling its local disk
// cache (§2.4: 50/100/200 GB). Capacity is measured in events (one event =
// 600 KB). The paper's eviction rule (§3.3, Table 2): "When needing new disk
// cache space, it deallocates the least recently used cached segments."
//
// Extents carry a last-access timestamp; insertion of new data evicts the
// least recently used unpinned extents until it fits. Extents currently
// being processed by a run are pinned so a run can never evict the very data
// it is about to read.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sim/time.h"
#include "storage/interval_map.h"
#include "storage/interval_set.h"

namespace ppsched {

class LruExtentCache {
 public:
  /// Capacity in events. A capacity of 0 makes a cache that never stores
  /// anything (used to model the cache-less farm/splitting policies).
  explicit LruExtentCache(std::uint64_t capacityEvents);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t freeSpace() const { return capacity_ - used_; }

  /// Portion of `r` currently cached.
  [[nodiscard]] IntervalSet cachedIn(EventRange r) const;
  /// Number of cached events within `r`.
  [[nodiscard]] std::uint64_t overlapSize(EventRange r) const;
  /// True if all of `r` is cached.
  [[nodiscard]] bool containsRange(EventRange r) const;
  /// Everything cached, as an IntervalSet (O(extents); for policy planning
  /// and tests).
  [[nodiscard]] IntervalSet contents() const;
  /// Number of stored extents (fragmentation indicator; for tests).
  [[nodiscard]] std::size_t extentCount() const { return extents_.size(); }

  /// Cache `r` at time `now`: already-cached parts are touched; missing
  /// parts are inserted, evicting least-recently-used unpinned extents as
  /// needed. If pinned data prevents making room, only the part that fits is
  /// inserted. Returns the newly inserted set (excluding already-cached
  /// parts).
  IntervalSet insert(EventRange r, SimTime now);

  /// Update the LRU timestamp of the cached portions of `r`.
  void touch(EventRange r, SimTime now);

  /// Pin / unpin `r` against eviction. Pins nest; each pin() must be
  /// balanced by an unpin() of the same range.
  void pin(EventRange r);
  void unpin(EventRange r);
  /// Pinned events within `r` (for tests).
  [[nodiscard]] IntervalSet pinnedIn(EventRange r) const;

  /// Forcibly drop the cached portions of `r`, pinned or not (failure
  /// injection / tests).
  void evict(EventRange r);

  /// Wipe the entire cache contents, pinned or not: a node crash loses its
  /// disk cache. Pin *counters* survive — a run that pinned data before the
  /// crash still owes a balancing unpin(), and in-flight remote readers keep
  /// their accounting consistent. touch() on dropped data is a no-op;
  /// re-inserting previously pinned ranges is allowed.
  void drop();

  /// Cumulative number of events evicted over the cache's lifetime.
  [[nodiscard]] std::uint64_t totalEvicted() const { return totalEvicted_; }

 private:
  struct Extent {
    EventIndex end;
    SimTime lastAccess;
  };
  using ExtentMap = std::map<EventIndex, Extent>;

  /// Split the extent containing `pos` (if any) at `pos`.
  void splitAt(EventIndex pos);
  /// Remove an extent from both the map and the LRU index.
  ExtentMap::iterator removeExtent(ExtentMap::iterator it);
  /// Add an extent, merging with equal-timestamp neighbours.
  void addExtent(EventIndex b, EventIndex e, SimTime t);
  /// Evict LRU unpinned extents until `needed` events fit (or nothing more
  /// can be evicted). Returns true if the space is now available.
  bool makeRoom(std::uint64_t needed);

  ExtentMap extents_;                           // begin -> extent
  std::set<std::pair<SimTime, EventIndex>> lru_;  // (lastAccess, begin)
  IntervalCounter pins_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t totalEvicted_ = 0;
};

}  // namespace ppsched
