#include "storage/interval_map.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ppsched {

namespace {
/// Value implied at index `e` by a boundary map (0 before the first key).
std::int64_t boundaryValueAt(const std::map<EventIndex, std::int64_t>& m, EventIndex e) {
  auto it = m.upper_bound(e);
  if (it == m.begin()) return 0;
  return std::prev(it)->second;
}
}  // namespace

void IntervalCounter::add(EventRange r, std::int64_t delta) {
  if (r.empty() || delta == 0) return;
  // Materialize boundaries at both ends so the update stays inside [begin,end).
  bounds_.try_emplace(r.begin, boundaryValueAt(bounds_, r.begin));
  bounds_.try_emplace(r.end, boundaryValueAt(bounds_, r.end));
  for (auto it = bounds_.lower_bound(r.begin); it != bounds_.end() && it->first < r.end; ++it) {
    it->second += delta;
    if (it->second < 0) throw std::logic_error("IntervalCounter went negative");
  }
  coalesce(r.begin, r.end);
}

void IntervalCounter::coalesce(EventIndex from, EventIndex to) {
  // Remove keys whose value equals the value just before them, scanning a
  // window slightly wider than [from, to] to catch merges at the edges.
  auto it = bounds_.lower_bound(from);
  for (;;) {
    if (it == bounds_.end()) break;
    const std::int64_t prevValue =
        it == bounds_.begin() ? 0 : std::prev(it)->second;
    if (it->second == prevValue) {
      it = bounds_.erase(it);
    } else {
      if (it->first > to) break;
      ++it;
    }
  }
}

std::int64_t IntervalCounter::valueAt(EventIndex e) const {
  return boundaryValueAt(bounds_, e);
}

std::int64_t IntervalCounter::minOver(EventRange r) const {
  if (r.empty()) throw std::invalid_argument("minOver of empty range");
  std::int64_t best = valueAt(r.begin);
  for (auto it = bounds_.upper_bound(r.begin); it != bounds_.end() && it->first < r.end; ++it) {
    best = std::min(best, it->second);
  }
  return best;
}

std::int64_t IntervalCounter::maxOver(EventRange r) const {
  if (r.empty()) throw std::invalid_argument("maxOver of empty range");
  std::int64_t best = valueAt(r.begin);
  for (auto it = bounds_.upper_bound(r.begin); it != bounds_.end() && it->first < r.end; ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

IntervalSet IntervalCounter::rangesAtLeast(EventRange r, std::int64_t threshold) const {
  IntervalSet out;
  if (r.empty()) return out;
  EventIndex pos = r.begin;
  std::int64_t value = valueAt(r.begin);
  auto it = bounds_.upper_bound(r.begin);
  while (pos < r.end) {
    const EventIndex next =
        (it == bounds_.end()) ? r.end : std::min<EventIndex>(it->first, r.end);
    if (value >= threshold && pos < next) out.insert({pos, next});
    pos = next;
    if (it != bounds_.end() && it->first == next) {
      value = it->second;
      ++it;
    }
  }
  return out;
}

std::vector<std::pair<EventIndex, std::int64_t>> IntervalCounter::breakpoints() const {
  return {bounds_.begin(), bounds_.end()};
}

}  // namespace ppsched
