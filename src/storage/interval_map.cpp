#include "storage/interval_map.h"

#include <algorithm>
#include <stdexcept>

namespace ppsched {

std::vector<IntervalCounter::Bound>::const_iterator IntervalCounter::boundAfter(
    EventIndex e) const {
  return std::upper_bound(bounds_.begin(), bounds_.end(), e,
                          [](EventIndex v, const Bound& b) { return v < b.first; });
}

std::int64_t IntervalCounter::valueBefore(std::vector<Bound>::const_iterator it) const {
  return it == bounds_.begin() ? 0 : std::prev(it)->second;
}

void IntervalCounter::add(EventRange r, std::int64_t delta) {
  if (r.empty() || delta == 0) return;
  // Materialize boundaries at both ends so the update stays inside
  // [begin, end). One batched splice: find the affected window, remember the
  // values at the edges, then rewrite the window.
  auto first = std::lower_bound(bounds_.begin(), bounds_.end(), r.begin,
                                [](const Bound& b, EventIndex v) { return b.first < v; });
  const std::int64_t beforeValue = valueBefore(first);
  auto last = std::lower_bound(first, bounds_.end(), r.end,
                               [](const Bound& b, EventIndex v) { return b.first < v; });
  const std::int64_t endValue =
      (last != bounds_.end() && last->first == r.end)
          ? last->second
          : (last == bounds_.begin() ? 0 : std::prev(last)->second);

  // New window contents: a boundary at r.begin, the shifted interior
  // boundaries, and a boundary restoring endValue at r.end — minus any
  // entry that duplicates the value in force just before it.
  std::vector<Bound> window;
  window.reserve(static_cast<std::size_t>(last - first) + 2);
  std::int64_t prevValue = beforeValue;
  auto emit = [&](EventIndex pos, std::int64_t value) {
    if (value < 0) throw std::logic_error("IntervalCounter went negative");
    if (value != prevValue) {
      window.emplace_back(pos, value);
      prevValue = value;
    }
  };
  auto it = first;
  if (it == bounds_.end() || it->first != r.begin) {
    emit(r.begin, beforeValue + delta);
  }
  for (; it != last; ++it) emit(it->first, it->second + delta);
  emit(r.end, endValue);

  // Splice the window in. `last` may start with a now-redundant boundary at
  // r.end (same value as the window's tail): drop it.
  if (last != bounds_.end() && last->first == r.end) ++last;
  const auto firstIdx = first - bounds_.begin();
  if (static_cast<std::size_t>(last - first) == window.size()) {
    std::copy(window.begin(), window.end(), first);
  } else {
    bounds_.erase(first, last);
    bounds_.insert(bounds_.begin() + firstIdx, window.begin(), window.end());
  }
  // The splice may have left the boundary after the window equal to its new
  // predecessor; coalesce that single seam.
  const std::size_t seam = firstIdx + window.size();
  if (seam < bounds_.size() &&
      bounds_[seam].second == (seam == 0 ? 0 : bounds_[seam - 1].second)) {
    bounds_.erase(bounds_.begin() + seam);
  }
}

std::int64_t IntervalCounter::valueAt(EventIndex e) const { return valueBefore(boundAfter(e)); }

std::int64_t IntervalCounter::minOver(EventRange r) const {
  if (r.empty()) throw std::invalid_argument("minOver of empty range");
  auto it = boundAfter(r.begin);
  std::int64_t best = valueBefore(it);
  for (; it != bounds_.end() && it->first < r.end; ++it) {
    best = std::min(best, it->second);
  }
  return best;
}

std::int64_t IntervalCounter::maxOver(EventRange r) const {
  if (r.empty()) throw std::invalid_argument("maxOver of empty range");
  auto it = boundAfter(r.begin);
  std::int64_t best = valueBefore(it);
  for (; it != bounds_.end() && it->first < r.end; ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

IntervalSet IntervalCounter::rangesAtLeast(EventRange r, std::int64_t threshold) const {
  IntervalSet out;
  if (r.empty()) return out;
  EventIndex pos = r.begin;
  auto it = boundAfter(r.begin);
  std::int64_t value = valueBefore(it);
  while (pos < r.end) {
    const EventIndex next =
        (it == bounds_.end()) ? r.end : std::min<EventIndex>(it->first, r.end);
    if (value >= threshold && pos < next) out.insert({pos, next});
    pos = next;
    if (it != bounds_.end() && it->first == next) {
      value = it->second;
      ++it;
    }
  }
  return out;
}

}  // namespace ppsched
