// Per-event cost model: where data comes from determines how fast a node
// can process it.
//
// Paper calibration (DESIGN.md §2):
//   - tertiary storage -> node: 1 MB/s, so 0.6 s/event transfer;
//   - node disk: 10 MB/s, so 0.06 s/event read;
//   - CPU: 0.2 s/event.
// In the serial (non-pipelined) model implied by the paper's own numbers an
// uncached event costs 0.8 s and a cached one 0.26 s (ratio ~3.08, "slightly
// larger than 3"). The pipelined variant (transfer overlapped with compute,
// the paper's stated future work) costs max(transfer, cpu) instead and is
// the default here — it matches how any modern analysis pipeline streams.
// SimConfig::paperDefaults() pins the serial model for paper reproduction.
#pragma once

#include <cstdint>

namespace ppsched {

/// Where the data of a span is read from.
enum class DataSource {
  LocalCache,   ///< node's own disk cache
  RemoteCache,  ///< another node's disk cache, read over the LAN
  Tertiary,     ///< Castor-style tertiary storage
};

/// Converts throughputs into per-event processing costs.
struct CostModel {
  double cpuSecPerEvent = 0.2;
  double bytesPerEvent = 600e3;
  double diskBytesPerSec = 10e6;
  double tertiaryBytesPerSec = 1e6;
  /// Reading from a remote node's disk: bottlenecked by that disk (the
  /// Gigabit LAN of §2.3 is not the constraint).
  double remoteBytesPerSec = 10e6;
  /// When true (default), data transfer overlaps event processing (paper
  /// §7 future work); an event then costs max(transfer, cpu) instead of
  /// their sum. SimConfig::paperDefaults() turns this off to reproduce the
  /// paper's serial fetch-then-process numbers.
  bool pipelined = true;

  [[nodiscard]] double diskSecPerEvent() const { return bytesPerEvent / diskBytesPerSec; }
  [[nodiscard]] double tertiarySecPerEvent() const { return bytesPerEvent / tertiaryBytesPerSec; }
  [[nodiscard]] double remoteSecPerEvent() const { return bytesPerEvent / remoteBytesPerSec; }

  /// Cost of processing one event whose data comes from `src`.
  [[nodiscard]] double secPerEvent(DataSource src) const;

  /// Cost of processing one locally cached event.
  [[nodiscard]] double cachedSecPerEvent() const { return secPerEvent(DataSource::LocalCache); }
  /// Cost of processing one event fetched from tertiary storage.
  [[nodiscard]] double uncachedSecPerEvent() const { return secPerEvent(DataSource::Tertiary); }

  /// The paper's caching gain: uncached/cached cost ratio (~3.08).
  [[nodiscard]] double cachingGain() const { return uncachedSecPerEvent() / cachedSecPerEvent(); }

  /// Reference time for speedup: one job of `events` events on a single
  /// node with no disk cache (paper: 32000 s for the mean 40000-event job).
  [[nodiscard]] double singleNodeUncachedTime(std::uint64_t events) const {
    return static_cast<double>(events) * uncachedSecPerEvent();
  }
};

}  // namespace ppsched
