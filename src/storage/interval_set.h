// Ordered set of disjoint half-open intervals over event indices.
//
// The whole simulator reasons about contiguous ranges of collision events:
// job data segments, subjob assignments, cached extents, remaining work.
// IntervalSet is the shared vocabulary: disjoint, coalesced [begin, end)
// intervals over std::uint64_t with the usual set algebra.
//
// Storage is a flat sorted vector of ranges rather than a node-based tree:
// interval counts are small (tens, rarely hundreds) and the hot policy
// queries (overlapSize, runAt, containsRange) are binary-search-plus-scan,
// so contiguity wins over pointer chasing by a wide margin. Mutations splice
// the vector in place; the batched insert(IntervalSet) path does a single
// linear merge.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace ppsched {

/// Index of a collision event within the data space.
using EventIndex = std::uint64_t;

/// Half-open range of events [begin, end). An empty range has begin == end.
struct EventRange {
  EventIndex begin = 0;
  EventIndex end = 0;

  [[nodiscard]] std::uint64_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
  [[nodiscard]] bool contains(EventIndex e) const { return e >= begin && e < end; }
  [[nodiscard]] bool overlaps(const EventRange& o) const {
    return begin < o.end && o.begin < end;
  }
  /// Intersection (may be empty).
  [[nodiscard]] EventRange intersect(const EventRange& o) const;
  /// First `n` events of this range (or the whole range if shorter).
  [[nodiscard]] EventRange prefix(std::uint64_t n) const;

  friend bool operator==(const EventRange&, const EventRange&) = default;
};

std::ostream& operator<<(std::ostream& os, const EventRange& r);

/// Disjoint, coalesced set of half-open intervals with set algebra.
/// All operations keep the invariant: intervals sorted, non-empty,
/// non-overlapping, non-adjacent (adjacent intervals are merged).
class IntervalSet {
 public:
  IntervalSet() = default;
  /*implicit*/ IntervalSet(EventRange r) { insert(r); }
  IntervalSet(std::initializer_list<EventRange> ranges);

  /// Insert a range (union). Empty ranges are ignored.
  void insert(EventRange r);
  /// Remove a range (difference). Empty ranges are ignored.
  void erase(EventRange r);
  /// Batched union: single linear merge of the two sorted interval lists.
  void insert(const IntervalSet& other);
  void erase(const IntervalSet& other);
  void clear() { ivs_.clear(); size_ = 0; }

  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  /// Total number of events covered.
  [[nodiscard]] std::uint64_t size() const { return size_; }
  /// Number of disjoint intervals.
  [[nodiscard]] std::size_t intervalCount() const { return ivs_.size(); }

  [[nodiscard]] bool contains(EventIndex e) const;
  /// True if the whole of `r` is covered.
  [[nodiscard]] bool containsRange(EventRange r) const;
  /// True if any part of `r` is covered.
  [[nodiscard]] bool intersects(EventRange r) const;
  /// Number of events of `r` that are covered.
  [[nodiscard]] std::uint64_t overlapSize(EventRange r) const;

  /// Set intersection / difference as new sets.
  [[nodiscard]] IntervalSet intersectWith(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet intersectWith(EventRange r) const;
  [[nodiscard]] IntervalSet difference(const IntervalSet& other) const;

  /// The covered intervals in ascending order.
  [[nodiscard]] std::vector<EventRange> intervals() const { return ivs_; }
  /// First interval; precondition: !empty().
  [[nodiscard]] EventRange first() const;

  /// The maximal covered run starting at `e`, or an empty range if `e` is
  /// not covered. Used to plan spans: "how far can I read contiguously?"
  [[nodiscard]] EventRange runAt(EventIndex e) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  /// Iterator to the last interval with begin <= e, or end() if none.
  [[nodiscard]] std::vector<EventRange>::const_iterator atOrBefore(EventIndex e) const;
  /// Iterator to the first interval whose end is > e (first that can cover
  /// or follow index e), or end().
  [[nodiscard]] std::vector<EventRange>::iterator firstEndingAfter(EventIndex e);
  [[nodiscard]] std::vector<EventRange>::const_iterator firstEndingAfter(EventIndex e) const;

  // Sorted, disjoint, non-adjacent, non-empty ranges.
  std::vector<EventRange> ivs_;
  std::uint64_t size_ = 0;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace ppsched
