#include "storage/interval_set.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace ppsched {

EventRange EventRange::intersect(const EventRange& o) const {
  const EventIndex b = std::max(begin, o.begin);
  const EventIndex e = std::min(end, o.end);
  if (b >= e) return {};
  return {b, e};
}

EventRange EventRange::prefix(std::uint64_t n) const {
  if (n >= size()) return *this;
  return {begin, begin + n};
}

std::ostream& operator<<(std::ostream& os, const EventRange& r) {
  return os << '[' << r.begin << ',' << r.end << ')';
}

IntervalSet::IntervalSet(std::initializer_list<EventRange> ranges) {
  for (const auto& r : ranges) insert(r);
}

std::vector<EventRange>::const_iterator IntervalSet::atOrBefore(EventIndex e) const {
  // First interval with begin > e, then step back.
  auto it = std::upper_bound(ivs_.begin(), ivs_.end(), e,
                             [](EventIndex v, const EventRange& iv) { return v < iv.begin; });
  if (it == ivs_.begin()) return ivs_.end();
  return std::prev(it);
}

std::vector<EventRange>::iterator IntervalSet::firstEndingAfter(EventIndex e) {
  return std::lower_bound(ivs_.begin(), ivs_.end(), e,
                          [](const EventRange& iv, EventIndex v) { return iv.end <= v; });
}

std::vector<EventRange>::const_iterator IntervalSet::firstEndingAfter(EventIndex e) const {
  return std::lower_bound(ivs_.begin(), ivs_.end(), e,
                          [](const EventRange& iv, EventIndex v) { return iv.end <= v; });
}

void IntervalSet::insert(EventRange r) {
  if (r.empty()) return;
  // First interval that could touch r: end >= r.begin (adjacency merges too).
  auto first = std::lower_bound(ivs_.begin(), ivs_.end(), r.begin,
                                [](const EventRange& iv, EventIndex v) { return iv.end < v; });
  if (first == ivs_.end() || first->begin > r.end) {
    // No overlap or adjacency: plain insertion keeps the order.
    ivs_.insert(first, r);
    size_ += r.size();
    return;
  }
  // Absorb all overlapping/adjacent intervals [first, last) into one.
  EventIndex b = std::min(r.begin, first->begin);
  EventIndex e = r.end;
  auto last = first;
  while (last != ivs_.end() && last->begin <= r.end) {
    e = std::max(e, last->end);
    size_ -= last->size();
    ++last;
  }
  *first = {b, e};
  size_ += e - b;
  ivs_.erase(first + 1, last);
}

void IntervalSet::erase(EventRange r) {
  if (r.empty() || ivs_.empty()) return;
  auto it = firstEndingAfter(r.begin);
  if (it == ivs_.end() || it->begin >= r.end) return;
  if (it->begin < r.begin && it->end > r.end) {
    // r is strictly inside one interval: split it.
    const EventIndex tail = it->end;
    it->end = r.begin;
    ivs_.insert(it + 1, {r.end, tail});
    size_ -= r.size();
    return;
  }
  // Trim a left partial overlap in place.
  if (it->begin < r.begin) {
    size_ -= it->end - r.begin;
    it->end = r.begin;
    ++it;
  }
  // Drop fully covered intervals.
  auto last = it;
  while (last != ivs_.end() && last->end <= r.end) {
    size_ -= last->size();
    ++last;
  }
  // Trim a right partial overlap in place.
  if (last != ivs_.end() && last->begin < r.end) {
    size_ -= r.end - last->begin;
    last->begin = r.end;
  }
  ivs_.erase(it, last);
}

void IntervalSet::insert(const IntervalSet& other) {
  if (other.ivs_.empty()) return;
  if (ivs_.empty()) {
    *this = other;
    return;
  }
  // Linear merge of the two sorted lists, coalescing as we go.
  std::vector<EventRange> merged;
  merged.reserve(ivs_.size() + other.ivs_.size());
  std::uint64_t total = 0;
  auto a = ivs_.begin();
  auto b = other.ivs_.begin();
  auto take = [&] {
    if (b == other.ivs_.end() || (a != ivs_.end() && a->begin <= b->begin)) return *a++;
    return *b++;
  };
  EventRange cur = take();
  while (a != ivs_.end() || b != other.ivs_.end()) {
    const EventRange next = take();
    if (next.begin <= cur.end) {
      cur.end = std::max(cur.end, next.end);
    } else {
      merged.push_back(cur);
      total += cur.size();
      cur = next;
    }
  }
  merged.push_back(cur);
  total += cur.size();
  ivs_ = std::move(merged);
  size_ = total;
}

void IntervalSet::erase(const IntervalSet& other) {
  for (const auto& r : other.ivs_) erase(r);
}

bool IntervalSet::contains(EventIndex e) const {
  auto it = atOrBefore(e);
  return it != ivs_.end() && e < it->end;
}

bool IntervalSet::containsRange(EventRange r) const {
  if (r.empty()) return true;
  auto it = atOrBefore(r.begin);
  return it != ivs_.end() && r.end <= it->end;
}

bool IntervalSet::intersects(EventRange r) const {
  if (r.empty()) return false;
  auto it = firstEndingAfter(r.begin);
  return it != ivs_.end() && it->begin < r.end;
}

std::uint64_t IntervalSet::overlapSize(EventRange r) const {
  if (r.empty()) return 0;
  std::uint64_t total = 0;
  for (auto it = firstEndingAfter(r.begin); it != ivs_.end() && it->begin < r.end; ++it) {
    total += std::min(it->end, r.end) - std::max(it->begin, r.begin);
  }
  return total;
}

IntervalSet IntervalSet::intersectWith(EventRange r) const {
  IntervalSet out;
  if (r.empty()) return out;
  for (auto it = firstEndingAfter(r.begin); it != ivs_.end() && it->begin < r.end; ++it) {
    out.ivs_.push_back({std::max(it->begin, r.begin), std::min(it->end, r.end)});
    out.size_ += out.ivs_.back().size();
  }
  return out;
}

IntervalSet IntervalSet::intersectWith(const IntervalSet& other) const {
  // Linear sweep over both sorted lists.
  IntervalSet out;
  auto a = ivs_.begin();
  auto b = other.ivs_.begin();
  while (a != ivs_.end() && b != other.ivs_.end()) {
    const EventIndex lo = std::max(a->begin, b->begin);
    const EventIndex hi = std::min(a->end, b->end);
    if (lo < hi) {
      out.ivs_.push_back({lo, hi});
      out.size_ += hi - lo;
    }
    if (a->end < b->end) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

IntervalSet IntervalSet::difference(const IntervalSet& other) const {
  IntervalSet out = *this;
  out.erase(other);
  return out;
}

EventRange IntervalSet::first() const {
  if (ivs_.empty()) throw std::logic_error("IntervalSet::first on empty set");
  return ivs_.front();
}

EventRange IntervalSet::runAt(EventIndex e) const {
  auto it = atOrBefore(e);
  if (it == ivs_.end() || e >= it->end) return {};
  return {e, it->end};
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << '{';
  bool firstItem = true;
  for (const auto& r : s.intervals()) {
    if (!firstItem) os << ' ';
    os << r;
    firstItem = false;
  }
  return os << '}';
}

}  // namespace ppsched
