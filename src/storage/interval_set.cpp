#include "storage/interval_set.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace ppsched {

EventRange EventRange::intersect(const EventRange& o) const {
  const EventIndex b = std::max(begin, o.begin);
  const EventIndex e = std::min(end, o.end);
  if (b >= e) return {};
  return {b, e};
}

EventRange EventRange::prefix(std::uint64_t n) const {
  if (n >= size()) return *this;
  return {begin, begin + n};
}

std::ostream& operator<<(std::ostream& os, const EventRange& r) {
  return os << '[' << r.begin << ',' << r.end << ')';
}

IntervalSet::IntervalSet(std::initializer_list<EventRange> ranges) {
  for (const auto& r : ranges) insert(r);
}

void IntervalSet::insert(EventRange r) {
  if (r.empty()) return;
  EventIndex b = r.begin;
  EventIndex e = r.end;

  // Find the first interval that could touch [b, e): the one before b, if it
  // reaches b (adjacency merges too).
  auto it = map_.lower_bound(b);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= b) it = prev;
  }
  // Absorb all overlapping/adjacent intervals.
  while (it != map_.end() && it->first <= e) {
    b = std::min(b, it->first);
    e = std::max(e, it->second);
    size_ -= it->second - it->first;
    it = map_.erase(it);
  }
  map_.emplace(b, e);
  size_ += e - b;
}

void IntervalSet::erase(EventRange r) {
  if (r.empty() || map_.empty()) return;
  auto it = map_.lower_bound(r.begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > r.begin) it = prev;
  }
  while (it != map_.end() && it->first < r.end) {
    const EventIndex ib = it->first;
    const EventIndex ie = it->second;
    size_ -= ie - ib;
    it = map_.erase(it);
    if (ib < r.begin) {
      map_.emplace(ib, r.begin);
      size_ += r.begin - ib;
    }
    if (ie > r.end) {
      map_.emplace(r.end, ie);
      size_ += ie - r.end;
      break;  // nothing beyond this interval can overlap r
    }
  }
}

void IntervalSet::insert(const IntervalSet& other) {
  for (const auto& [b, e] : other.map_) insert({b, e});
}

void IntervalSet::erase(const IntervalSet& other) {
  for (const auto& [b, e] : other.map_) erase({b, e});
}

bool IntervalSet::contains(EventIndex e) const {
  auto it = map_.upper_bound(e);
  if (it == map_.begin()) return false;
  --it;
  return e < it->second;
}

bool IntervalSet::containsRange(EventRange r) const {
  if (r.empty()) return true;
  auto it = map_.upper_bound(r.begin);
  if (it == map_.begin()) return false;
  --it;
  return r.begin >= it->first && r.end <= it->second;
}

bool IntervalSet::intersects(EventRange r) const {
  if (r.empty() || map_.empty()) return false;
  auto it = map_.lower_bound(r.begin);
  if (it != map_.end() && it->first < r.end) return true;
  if (it == map_.begin()) return false;
  --it;
  return it->second > r.begin;
}

std::uint64_t IntervalSet::overlapSize(EventRange r) const {
  if (r.empty()) return 0;
  std::uint64_t total = 0;
  auto it = map_.upper_bound(r.begin);
  if (it != map_.begin()) --it;
  for (; it != map_.end() && it->first < r.end; ++it) {
    const EventIndex b = std::max(it->first, r.begin);
    const EventIndex e = std::min(it->second, r.end);
    if (b < e) total += e - b;
  }
  return total;
}

IntervalSet IntervalSet::intersectWith(EventRange r) const {
  IntervalSet out;
  if (r.empty()) return out;
  auto it = map_.upper_bound(r.begin);
  if (it != map_.begin()) --it;
  for (; it != map_.end() && it->first < r.end; ++it) {
    const EventIndex b = std::max(it->first, r.begin);
    const EventIndex e = std::min(it->second, r.end);
    if (b < e) out.insert({b, e});
  }
  return out;
}

IntervalSet IntervalSet::intersectWith(const IntervalSet& other) const {
  // Iterate the smaller set's intervals against the bigger one.
  const IntervalSet& small = map_.size() <= other.map_.size() ? *this : other;
  const IntervalSet& big = map_.size() <= other.map_.size() ? other : *this;
  IntervalSet out;
  for (const auto& [b, e] : small.map_) {
    IntervalSet piece = big.intersectWith(EventRange{b, e});
    for (const auto& r : piece.intervals()) out.insert(r);
  }
  return out;
}

IntervalSet IntervalSet::difference(const IntervalSet& other) const {
  IntervalSet out = *this;
  out.erase(other);
  return out;
}

std::vector<EventRange> IntervalSet::intervals() const {
  std::vector<EventRange> out;
  out.reserve(map_.size());
  for (const auto& [b, e] : map_) out.push_back({b, e});
  return out;
}

EventRange IntervalSet::first() const {
  if (map_.empty()) throw std::logic_error("IntervalSet::first on empty set");
  return {map_.begin()->first, map_.begin()->second};
}

EventRange IntervalSet::runAt(EventIndex e) const {
  auto it = map_.upper_bound(e);
  if (it == map_.begin()) return {};
  --it;
  if (e >= it->second) return {};
  return {e, it->second};
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << '{';
  bool firstItem = true;
  for (const auto& r : s.intervals()) {
    if (!firstItem) os << ' ';
    os << r;
    firstItem = false;
  }
  return os << '}';
}

}  // namespace ppsched
