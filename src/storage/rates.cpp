#include "storage/rates.h"

#include <algorithm>

namespace ppsched {

double CostModel::secPerEvent(DataSource src) const {
  double transfer = 0.0;
  switch (src) {
    case DataSource::LocalCache:
      transfer = diskSecPerEvent();
      break;
    case DataSource::RemoteCache:
      transfer = remoteSecPerEvent();
      break;
    case DataSource::Tertiary:
      transfer = tertiarySecPerEvent();
      break;
  }
  return pipelined ? std::max(transfer, cpuSecPerEvent) : transfer + cpuSecPerEvent;
}

}  // namespace ppsched
