// Interval -> integer counter map over event indices.
//
// Two users:
//  - the replication policy counts remote accesses per extent ("replicate a
//    data item on its 3rd access", §4.2 of the paper);
//  - the LRU cache tracks pin counts (extents that must not be evicted while
//    a run is actively processing them).
//
// Implemented as a boundary list: keys are positions where the value
// changes; the value at index e is the entry at the greatest key <= e
// (default 0 before the first key). Adjacent equal values are coalesced.
// The boundaries live in a flat sorted vector rather than a std::map:
// rangesAtLeast/minOver/maxOver — the placement-decision hot path of the
// replication and cache-oriented policies — are linear scans that want
// contiguous memory, and boundary counts stay small.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/interval_set.h"

namespace ppsched {

class IntervalCounter {
 public:
  /// Add `delta` to every index in `r`. The resulting values must remain
  /// >= 0 (throws std::logic_error otherwise, catching unbalanced unpins).
  void add(EventRange r, std::int64_t delta);

  /// Value at a single index.
  [[nodiscard]] std::int64_t valueAt(EventIndex e) const;

  /// Minimum value over the (non-empty) range.
  [[nodiscard]] std::int64_t minOver(EventRange r) const;
  /// Maximum value over the (non-empty) range.
  [[nodiscard]] std::int64_t maxOver(EventRange r) const;

  /// Sub-ranges of `r` whose value is >= threshold.
  [[nodiscard]] IntervalSet rangesAtLeast(EventRange r, std::int64_t threshold) const;

  /// True if every index everywhere has value 0.
  [[nodiscard]] bool allZero() const { return bounds_.empty(); }

  /// Breakpoints (for tests/debugging): (start, value) pairs in order.
  [[nodiscard]] std::vector<std::pair<EventIndex, std::int64_t>> breakpoints() const {
    return bounds_;
  }

 private:
  using Bound = std::pair<EventIndex, std::int64_t>;

  /// First boundary with key > e (upper bound by position).
  [[nodiscard]] std::vector<Bound>::const_iterator boundAfter(EventIndex e) const;
  /// Value implied at index e (0 before the first boundary).
  [[nodiscard]] std::int64_t valueBefore(std::vector<Bound>::const_iterator it) const;

  // Position -> value from that position until the next key, sorted by
  // position. The implicit value before the first key and after regions
  // trimmed back to 0 is 0; trailing/leading zero entries are removed by
  // the coalescing pass in add().
  std::vector<Bound> bounds_;
};

}  // namespace ppsched
