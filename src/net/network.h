// Flow-level network model: shared-link contention for remote-cache,
// replication and tertiary traffic.
//
// The paper assumes the Gigabit LAN "is not the constraint" (§2.3) and the
// cost model therefore charges every remote read the serving disk's full
// bandwidth regardless of how many transfers are in flight. That holds for
// 10 nodes; at 100+ nodes the switch uplinks and the tertiary ingress pipe
// become the constraint, and the §4.2 replication results change character.
//
// This module models the cluster interconnect at flow granularity:
//   - topology: one full-duplex NIC per machine (separate up/down links),
//     machines grouped onto edge switches of `nodesPerSwitch` ports whose
//     uplinks (again one per direction) join a core switch, and a single
//     tertiary ingress link through which all tertiary traffic enters;
//   - every network transfer (remote-cache span, tertiary span, replication
//     copy) is one flow with a demand cap (the source device rate) routed
//     over the links between its endpoints;
//   - bandwidth is shared by progressive-filling max-min fairness with
//     per-flow rate caps, recomputed on every flow open/close. The engine
//     re-estimates in-flight completion times against the event queue when
//     shares change.
//
// The model is flow-level, not packet-level: a flow's allocation is the
// bandwidth it holds while its span/copy is active (a serial, non-pipelined
// span interleaves transfer and CPU bursts; at flow granularity it reserves
// its transfer-phase rate for the whole span — a conservative, documented
// approximation, see DESIGN.md "Network model").
//
// `NetworkConfig{}` (enabled == false) disables all of this and reproduces
// the paper's unconstrained-LAN behaviour bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppsched {

/// Topology and capacities of the cluster interconnect. Disabled by
/// default: `NetworkConfig{}` keeps every existing experiment bit-identical.
struct NetworkConfig {
  /// Master switch for the flow-level model.
  bool enabled = false;
  /// Per-machine NIC capacity, each direction (default: Gigabit Ethernet,
  /// 125 MB/s decimal). Must be > 0 when enabled.
  double nicBytesPerSec = 125e6;
  /// Edge-switch uplink capacity towards the core, each direction. Flows
  /// between machines on different edge switches and all tertiary traffic
  /// cross these. 0 = unconstrained (uplink links are not modelled).
  double uplinkBytesPerSec = 0.0;
  /// Machines per edge switch; 0 = all machines on one switch (flows
  /// between nodes never cross an uplink, but tertiary traffic still
  /// crosses the single switch's downlink when uplinkBytesPerSec > 0).
  int nodesPerSwitch = 0;
  /// Capacity of the single link through which tertiary-storage traffic
  /// enters the cluster. 0 = unconstrained (the per-stream
  /// CostModel::tertiaryBytesPerSec and SimConfig::tertiaryAggregateBytesPerSec
  /// caps still apply).
  double tertiaryIngressBytesPerSec = 0.0;

  bool operator==(const NetworkConfig&) const = default;
};

/// Parse a compact network spec: "nic=125,uplink=20,ingress=40,group=8"
/// (rates in MB/s decimal; group = machines per edge switch). Any subset of
/// keys may appear; parsing a non-empty spec enables the model. "off" (or
/// an empty string) yields the disabled default. Throws
/// std::invalid_argument on unknown keys or malformed values.
NetworkConfig parseNetworkSpec(const std::string& spec);

/// Inverse of parseNetworkSpec: "off" when disabled, otherwise a spec that
/// parses back to an equal config.
std::string formatNetworkSpec(const NetworkConfig& cfg);

/// Identifies an open flow. 0 (`kNoFlow`) is never a valid id.
using FlowId = std::uint64_t;
inline constexpr FlowId kNoFlow = 0;

/// What a flow carries (for accounting; routing only depends on endpoints).
enum class FlowKind {
  RemoteRead,    ///< a span reading another node's disk cache
  TertiaryRead,  ///< a span streaming from tertiary storage
  Replication,   ///< a §4.2 replication copy between node caches
  Prefetch,      ///< a cache-warming copy issued ahead of dispatch
};

/// Per-link accounting of one run.
struct LinkReport {
  std::string name;                ///< "nic_up[3]", "uplink_down[0]", "tertiary_ingress"
  double capacityBytesPerSec = 0.0;
  /// Time-averaged allocated fraction of the link over [0, reportTime].
  double utilization = 0.0;
};

/// Aggregate network accounting of one run (RunResult::network).
struct NetworkReport {
  bool enabled = false;
  std::vector<LinkReport> links;
  double maxLinkUtilization = 0.0;
  std::uint64_t flowsOpened = 0;
  std::uint64_t remoteFlows = 0;
  std::uint64_t tertiaryFlows = 0;
  std::uint64_t replicationFlows = 0;
  std::uint64_t prefetchFlows = 0;
  std::uint64_t maxConcurrentFlows = 0;
  /// Bytes actually delivered (events processed / copies completed), by kind.
  double remoteBytes = 0.0;
  double tertiaryBytes = 0.0;
  double replicationBytes = 0.0;
  double prefetchBytes = 0.0;
};

/// The flow-level network simulation. Owns no clock: callers pass the
/// current time so utilization integrals stay exact; completion-time
/// bookkeeping of flows lives with the host (it owns the event queue).
class FlowNetwork {
 public:
  /// Source pseudo-machine of tertiary ingress flows.
  static constexpr int kTertiarySource = -1;

  /// Disabled network: open() must not be called.
  FlowNetwork() = default;
  /// Build the link set for `numMachines` machines. With cfg.enabled ==
  /// false this is equivalent to FlowNetwork().
  FlowNetwork(const NetworkConfig& cfg, int numMachines);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when `machineA` and `machineB` hang off the same edge switch
  /// (trivially true when the model is disabled or single-switch). The
  /// tertiary pseudo-source is on no switch: never same-switch.
  [[nodiscard]] bool sameSwitch(int machineA, int machineB) const;

  /// Open a flow from `srcMachine` (or kTertiarySource) to `dstMachine`
  /// with demand cap `capBytesPerSec` (> 0: the source device rate). All
  /// link shares are recomputed; query the new rates afterwards.
  FlowId open(int srcMachine, int dstMachine, double capBytesPerSec, FlowKind kind, double now);

  /// Close an open flow and recompute the remaining flows' shares.
  void close(FlowId id, double now);

  /// Current allocated rate of an open flow (bytes/s, > 0).
  [[nodiscard]] double rate(FlowId id) const;

  /// Rate a hypothetical new flow would receive right now, without
  /// perturbing the open flows (policy cost feedback).
  [[nodiscard]] double estimateRate(int srcMachine, int dstMachine,
                                    double capBytesPerSec) const;

  /// Record bytes actually delivered for a flow kind (report accounting).
  void noteBytes(FlowKind kind, double bytes);

  [[nodiscard]] std::size_t activeFlows() const { return flows_.size(); }

  /// Link names along the src->dst route (tests, diagnostics).
  [[nodiscard]] std::vector<std::string> pathNames(int srcMachine, int dstMachine) const;

  /// Current (name, capacity, allocated) of every modelled link.
  struct LinkState {
    std::string name;
    double capacityBytesPerSec = 0.0;
    double allocatedBytesPerSec = 0.0;
  };
  [[nodiscard]] std::vector<LinkState> linkStates() const;

  /// Endpoints and allocation of every open flow (validation, diagnostics).
  struct FlowState {
    FlowId id = kNoFlow;
    FlowKind kind = FlowKind::RemoteRead;
    int srcMachine = kTertiarySource;
    int dstMachine = 0;
    double allocBytesPerSec = 0.0;
  };
  [[nodiscard]] std::vector<FlowState> flowStates() const;

  /// Utilization integrals and flow counters up to `now`.
  [[nodiscard]] NetworkReport report(double now) const;

 private:
  struct Link {
    std::string name;
    double capacity = 0.0;
    double allocated = 0.0;     ///< sum of current flow allocations
    double busyIntegral = 0.0;  ///< integral of `allocated` dt since t=0
  };

  struct Flow {
    FlowId id = kNoFlow;
    FlowKind kind = FlowKind::RemoteRead;
    int src = kTertiarySource;  ///< source machine (kTertiarySource for ingress)
    int dst = 0;                ///< destination machine
    double cap = 0.0;
    double alloc = 0.0;
    std::vector<int> path;  ///< link indices
  };

  [[nodiscard]] int groupOf(int machine) const;
  [[nodiscard]] std::vector<int> pathFor(int srcMachine, int dstMachine) const;
  /// Demand-capped progressive-filling max-min over `flows` (allocations
  /// written in place; links_ capacities read only).
  void solve(std::vector<Flow>& flows) const;
  /// Advance per-link busy integrals to `now`.
  void integrate(double now);
  /// Re-solve all open flows and refresh per-link allocated sums.
  void recompute();
  [[nodiscard]] const Flow& find(FlowId id) const;

  bool enabled_ = false;
  int machines_ = 0;
  int groupSize_ = 0;   ///< machines per edge switch (0 = single switch)
  int numGroups_ = 0;
  int uplinkBase_ = -1;  ///< first uplink link index, -1 when unconstrained
  int ingressLink_ = -1; ///< tertiary ingress link index, -1 when unconstrained

  std::vector<Link> links_;
  std::vector<Flow> flows_;
  FlowId nextId_ = 1;
  double lastTime_ = 0.0;

  // Counters for report().
  std::uint64_t flowsOpened_ = 0;
  std::uint64_t remoteFlows_ = 0;
  std::uint64_t tertiaryFlows_ = 0;
  std::uint64_t replicationFlows_ = 0;
  std::uint64_t prefetchFlows_ = 0;
  std::uint64_t maxConcurrentFlows_ = 0;
  double remoteBytes_ = 0.0;
  double tertiaryBytes_ = 0.0;
  double replicationBytes_ = 0.0;
  double prefetchBytes_ = 0.0;
};

}  // namespace ppsched
