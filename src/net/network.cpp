#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ppsched {

namespace {

constexpr double kEps = 1e-9;

double parseRateMB(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double mb = 0.0;
  try {
    mb = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("network spec: bad value for '" + key + "': " + value);
  }
  if (pos != value.size() || !(mb >= 0.0) || !std::isfinite(mb)) {
    throw std::invalid_argument("network spec: bad value for '" + key + "': " + value);
  }
  return mb * 1e6;
}

std::string formatRateMB(double bytesPerSec) {
  std::ostringstream os;
  os << bytesPerSec / 1e6;
  return os.str();
}

}  // namespace

NetworkConfig parseNetworkSpec(const std::string& spec) {
  NetworkConfig cfg;
  if (spec.empty() || spec == "off") return cfg;
  cfg.enabled = true;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("network spec: expected key=value, got '" + item + "'");
    }
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (key == "nic") {
      cfg.nicBytesPerSec = parseRateMB(key, value);
    } else if (key == "uplink") {
      cfg.uplinkBytesPerSec = parseRateMB(key, value);
    } else if (key == "ingress") {
      cfg.tertiaryIngressBytesPerSec = parseRateMB(key, value);
    } else if (key == "group") {
      std::size_t pos = 0;
      int n = 0;
      try {
        n = std::stoi(value, &pos);
      } catch (const std::exception&) {
        throw std::invalid_argument("network spec: bad value for 'group': " + value);
      }
      if (pos != value.size() || n < 0) {
        throw std::invalid_argument("network spec: bad value for 'group': " + value);
      }
      cfg.nodesPerSwitch = n;
    } else {
      throw std::invalid_argument("network spec: unknown key '" + key + "'");
    }
  }
  if (cfg.nicBytesPerSec <= 0.0) {
    throw std::invalid_argument("network spec: nic rate must be > 0");
  }
  return cfg;
}

std::string formatNetworkSpec(const NetworkConfig& cfg) {
  if (!cfg.enabled) return "off";
  std::string out = "nic=" + formatRateMB(cfg.nicBytesPerSec);
  if (cfg.uplinkBytesPerSec > 0.0) out += ",uplink=" + formatRateMB(cfg.uplinkBytesPerSec);
  if (cfg.tertiaryIngressBytesPerSec > 0.0) {
    out += ",ingress=" + formatRateMB(cfg.tertiaryIngressBytesPerSec);
  }
  if (cfg.nodesPerSwitch > 0) out += ",group=" + std::to_string(cfg.nodesPerSwitch);
  return out;
}

FlowNetwork::FlowNetwork(const NetworkConfig& cfg, int numMachines) {
  if (!cfg.enabled) return;
  if (numMachines <= 0) throw std::invalid_argument("FlowNetwork: numMachines must be > 0");
  if (cfg.nicBytesPerSec <= 0.0) {
    throw std::invalid_argument("FlowNetwork: nicBytesPerSec must be > 0 when enabled");
  }
  enabled_ = true;
  machines_ = numMachines;
  groupSize_ = cfg.nodesPerSwitch > 0 ? cfg.nodesPerSwitch : numMachines;
  numGroups_ = (numMachines + groupSize_ - 1) / groupSize_;

  // Links 2*m and 2*m+1: machine m's NIC, up (towards switch) and down.
  links_.reserve(static_cast<std::size_t>(2 * numMachines) + 2 * numGroups_ + 1);
  for (int m = 0; m < numMachines; ++m) {
    links_.push_back({"nic_up[" + std::to_string(m) + "]", cfg.nicBytesPerSec, 0.0, 0.0});
    links_.push_back({"nic_down[" + std::to_string(m) + "]", cfg.nicBytesPerSec, 0.0, 0.0});
  }
  if (cfg.uplinkBytesPerSec > 0.0) {
    uplinkBase_ = static_cast<int>(links_.size());
    for (int g = 0; g < numGroups_; ++g) {
      links_.push_back(
          {"uplink_up[" + std::to_string(g) + "]", cfg.uplinkBytesPerSec, 0.0, 0.0});
      links_.push_back(
          {"uplink_down[" + std::to_string(g) + "]", cfg.uplinkBytesPerSec, 0.0, 0.0});
    }
  }
  if (cfg.tertiaryIngressBytesPerSec > 0.0) {
    ingressLink_ = static_cast<int>(links_.size());
    links_.push_back({"tertiary_ingress", cfg.tertiaryIngressBytesPerSec, 0.0, 0.0});
  }
}

int FlowNetwork::groupOf(int machine) const { return machine / groupSize_; }

bool FlowNetwork::sameSwitch(int machineA, int machineB) const {
  if (!enabled_) return true;
  if (machineA == kTertiarySource || machineB == kTertiarySource) return false;
  if (machineA < 0 || machineA >= machines_ || machineB < 0 || machineB >= machines_) {
    throw std::out_of_range("FlowNetwork::sameSwitch: machine out of range");
  }
  return groupOf(machineA) == groupOf(machineB);
}

std::vector<int> FlowNetwork::pathFor(int srcMachine, int dstMachine) const {
  std::vector<int> path;
  if (srcMachine == kTertiarySource) {
    // Tertiary data enters through the ingress pipe, crosses the core, and
    // descends the destination group's uplink and the destination NIC.
    if (ingressLink_ >= 0) path.push_back(ingressLink_);
    if (uplinkBase_ >= 0) path.push_back(uplinkBase_ + 2 * groupOf(dstMachine) + 1);
    path.push_back(2 * dstMachine + 1);
    return path;
  }
  path.push_back(2 * srcMachine);  // source NIC up
  if (uplinkBase_ >= 0 && groupOf(srcMachine) != groupOf(dstMachine)) {
    path.push_back(uplinkBase_ + 2 * groupOf(srcMachine));      // source group uplink up
    path.push_back(uplinkBase_ + 2 * groupOf(dstMachine) + 1);  // dest group uplink down
  }
  path.push_back(2 * dstMachine + 1);  // dest NIC down
  return path;
}

void FlowNetwork::solve(std::vector<Flow>& flows) const {
  // Demand-capped progressive filling (water-filling). All unfrozen flows'
  // rates rise together; a flow freezes when it hits its own demand cap or
  // when some link on its path saturates. Each round freezes at least one
  // flow or one link, so the loop is O(flows × links) in the worst case.
  if (flows.empty()) return;
  std::vector<double> remaining(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) remaining[l] = links_[l].capacity;
  std::vector<int> count(links_.size(), 0);
  std::vector<bool> frozen(flows.size(), false);
  for (Flow& f : flows) {
    f.alloc = 0.0;
    for (int l : f.path) ++count[static_cast<std::size_t>(l)];
  }
  std::size_t active = flows.size();
  while (active > 0) {
    // Smallest per-flow increment that saturates a link or caps a flow.
    double step = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (count[l] > 0) step = std::min(step, remaining[l] / count[l]);
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!frozen[i]) step = std::min(step, flows[i].cap - flows[i].alloc);
    }
    if (!std::isfinite(step)) break;  // all active flows have empty paths and no caps
    step = std::max(step, 0.0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (frozen[i]) continue;
      flows[i].alloc += step;
      for (int l : flows[i].path) remaining[static_cast<std::size_t>(l)] -= step;
    }
    // Freeze flows that reached their cap or crossed a saturated link.
    std::size_t froze = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (frozen[i]) continue;
      bool done = flows[i].alloc >= flows[i].cap - kEps * flows[i].cap;
      if (!done) {
        for (int l : flows[i].path) {
          auto li = static_cast<std::size_t>(l);
          if (remaining[li] <= kEps * links_[li].capacity) {
            done = true;
            break;
          }
        }
      }
      if (done) {
        frozen[i] = true;
        for (int l : flows[i].path) --count[static_cast<std::size_t>(l)];
        ++froze;
      }
    }
    if (froze == 0 && step <= 0.0) break;  // numeric stall guard
    active -= froze;
  }
}

void FlowNetwork::integrate(double now) {
  double dt = now - lastTime_;
  if (dt > 0.0) {
    for (Link& l : links_) l.busyIntegral += l.allocated * dt;
    lastTime_ = now;
  }
}

void FlowNetwork::recompute() {
  solve(flows_);
  for (Link& l : links_) l.allocated = 0.0;
  for (const Flow& f : flows_) {
    for (int l : f.path) links_[static_cast<std::size_t>(l)].allocated += f.alloc;
  }
}

FlowId FlowNetwork::open(int srcMachine, int dstMachine, double capBytesPerSec, FlowKind kind,
                         double now) {
  if (!enabled_) throw std::logic_error("FlowNetwork::open on disabled network");
  if (dstMachine < 0 || dstMachine >= machines_ ||
      (srcMachine != kTertiarySource && (srcMachine < 0 || srcMachine >= machines_))) {
    throw std::out_of_range("FlowNetwork::open: machine out of range");
  }
  if (!(capBytesPerSec > 0.0)) {
    throw std::invalid_argument("FlowNetwork::open: capBytesPerSec must be > 0");
  }
  integrate(now);
  Flow f;
  f.id = nextId_++;
  f.kind = kind;
  f.src = srcMachine;
  f.dst = dstMachine;
  f.cap = capBytesPerSec;
  f.path = pathFor(srcMachine, dstMachine);
  flows_.push_back(std::move(f));
  recompute();
  ++flowsOpened_;
  switch (kind) {
    case FlowKind::RemoteRead:
      ++remoteFlows_;
      break;
    case FlowKind::TertiaryRead:
      ++tertiaryFlows_;
      break;
    case FlowKind::Replication:
      ++replicationFlows_;
      break;
    case FlowKind::Prefetch:
      ++prefetchFlows_;
      break;
  }
  maxConcurrentFlows_ = std::max<std::uint64_t>(maxConcurrentFlows_, flows_.size());
  return flows_.back().id;
}

void FlowNetwork::close(FlowId id, double now) {
  auto it = std::find_if(flows_.begin(), flows_.end(),
                         [id](const Flow& f) { return f.id == id; });
  if (it == flows_.end()) throw std::invalid_argument("FlowNetwork::close: unknown flow");
  integrate(now);
  flows_.erase(it);
  recompute();
}

const FlowNetwork::Flow& FlowNetwork::find(FlowId id) const {
  auto it = std::find_if(flows_.begin(), flows_.end(),
                         [id](const Flow& f) { return f.id == id; });
  if (it == flows_.end()) throw std::invalid_argument("FlowNetwork: unknown flow");
  return *it;
}

double FlowNetwork::rate(FlowId id) const { return find(id).alloc; }

double FlowNetwork::estimateRate(int srcMachine, int dstMachine, double capBytesPerSec) const {
  if (!enabled_) return capBytesPerSec;
  std::vector<Flow> probe = flows_;
  Flow f;
  f.id = kNoFlow;
  f.cap = capBytesPerSec;
  f.path = pathFor(srcMachine, dstMachine);
  probe.push_back(std::move(f));
  solve(probe);
  return probe.back().alloc;
}

void FlowNetwork::noteBytes(FlowKind kind, double bytes) {
  switch (kind) {
    case FlowKind::RemoteRead:
      remoteBytes_ += bytes;
      break;
    case FlowKind::TertiaryRead:
      tertiaryBytes_ += bytes;
      break;
    case FlowKind::Replication:
      replicationBytes_ += bytes;
      break;
    case FlowKind::Prefetch:
      prefetchBytes_ += bytes;
      break;
  }
}

std::vector<std::string> FlowNetwork::pathNames(int srcMachine, int dstMachine) const {
  std::vector<std::string> names;
  if (!enabled_) return names;
  for (int l : pathFor(srcMachine, dstMachine)) {
    names.push_back(links_[static_cast<std::size_t>(l)].name);
  }
  return names;
}

std::vector<FlowNetwork::LinkState> FlowNetwork::linkStates() const {
  std::vector<LinkState> out;
  out.reserve(links_.size());
  for (const Link& l : links_) out.push_back({l.name, l.capacity, l.allocated});
  return out;
}

std::vector<FlowNetwork::FlowState> FlowNetwork::flowStates() const {
  std::vector<FlowState> out;
  out.reserve(flows_.size());
  for (const Flow& f : flows_) out.push_back({f.id, f.kind, f.src, f.dst, f.alloc});
  return out;
}

NetworkReport FlowNetwork::report(double now) const {
  NetworkReport r;
  r.enabled = enabled_;
  if (!enabled_) return r;
  for (const Link& l : links_) {
    double integral = l.busyIntegral;
    if (now > lastTime_) integral += l.allocated * (now - lastTime_);
    double util = now > 0.0 ? integral / (l.capacity * now) : 0.0;
    r.links.push_back({l.name, l.capacity, util});
    r.maxLinkUtilization = std::max(r.maxLinkUtilization, util);
  }
  r.flowsOpened = flowsOpened_;
  r.remoteFlows = remoteFlows_;
  r.tertiaryFlows = tertiaryFlows_;
  r.replicationFlows = replicationFlows_;
  r.prefetchFlows = prefetchFlows_;
  r.maxConcurrentFlows = maxConcurrentFlows_;
  r.remoteBytes = remoteBytes_;
  r.tertiaryBytes = tertiaryBytes_;
  r.replicationBytes = replicationBytes_;
  r.prefetchBytes = prefetchBytes_;
  return r;
}

}  // namespace ppsched
