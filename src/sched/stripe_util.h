// Stripe-splitting and meta-subjob aggregation (Table 4), shared by the
// delayed scheduler (§5) and the mixed scheduler (§7 future work).
//
// Uncached subjobs are re-cut along a point list derived from their segment
// boundaries — points closer than half the stripe size are dropped, points
// are added so no stripe exceeds the stripe size — and the pieces of each
// stripe are bundled into one meta-subjob. A node executing a meta-subjob
// fetches the stripe from tertiary storage once and serves every member
// subjob from its cache.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/job.h"

namespace ppsched {

/// A bundle of subjobs requiring overlapping pieces of one stripe.
struct MetaSubjob {
  EventRange stripe;
  std::vector<Subjob> subjobs;  ///< in range order per source subjob
  SimTime earliestArrival = 0.0;
};

/// The Table 4 point list: boundaries of `cold` subjobs, thinned so no two
/// points are closer than ceil(stripe/2), then densified so no gap exceeds
/// `stripe`. Exposed separately for tests.
std::vector<EventIndex> buildStripePoints(const std::vector<Subjob>& cold,
                                          std::uint64_t stripeEvents);

/// Cut `cold` subjobs along the stripe point list and gather the pieces of
/// each stripe into a meta-subjob. Metas are returned sorted by their
/// earliest member arrival (Table 4 fairness). `stripeEvents` >= 1.
std::vector<MetaSubjob> buildMetaSubjobs(const std::vector<Subjob>& cold,
                                         std::uint64_t stripeEvents);

}  // namespace ppsched
