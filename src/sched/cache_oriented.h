// Cache-oriented job splitting (§3.3, Table 2).
//
// FCFS job start order, like SplittingScheduler, but node disks cache all
// data read from tertiary storage (LRU) and splitting follows cache
// boundaries: each subjob's data is either fully cached on one node or not
// cached at all, and placement maximizes cached access.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "core/host.h"
#include "core/policy.h"
#include "sched/split_util.h"

namespace ppsched {

class CacheOrientedScheduler final : public ISchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "cache_oriented"; }

  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;

  [[nodiscard]] std::size_t queuedJobs() const { return pending_.size(); }

 private:
  struct JobInfo {
    std::deque<PlacedSubjob> suspended;
    int runningNodes = 0;
  };

  /// Start a (not yet started) job across the given idle nodes: split by
  /// cache boundaries, subdivide if there are fewer pieces than nodes,
  /// place cached pieces on their nodes, suspend the surplus.
  void startJobOnIdleNodes(const Job& job, const std::vector<NodeId>& idle);

  /// Find work for an idle node: activate the most suitable suspended
  /// subjob (largest amount of data cached on this node), else split the
  /// running subjob with the largest caching benefit. May leave it idle.
  void feedNode(NodeId node);

  Subjob preemptTracked(NodeId node);

  [[nodiscard]] std::uint64_t cachedOnNode(NodeId node, EventRange r) const;

  std::map<JobId, JobInfo> active_;
  std::deque<Job> pending_;
};

}  // namespace ppsched
