#include "sched/adaptive.h"

#include <stdexcept>

namespace ppsched {

TableAdaptiveDelay::TableAdaptiveDelay(std::vector<AdaptiveLevel> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) throw std::invalid_argument("adaptive table must not be empty");
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    if (levels_[i].maxLoadJobsPerHour <= levels_[i - 1].maxLoadJobsPerHour) {
      throw std::invalid_argument("adaptive table loads must be ascending");
    }
    if (levels_[i].delay < levels_[i - 1].delay) {
      throw std::invalid_argument("adaptive table delays must be non-decreasing");
    }
  }
}

Duration TableAdaptiveDelay::nextPeriod(const ISchedulerHost&, double observedJobsPerHour) {
  std::size_t target = levels_.size() - 1;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (observedJobsPerHour <= levels_[i].maxLoadJobsPerHour) {
      target = i;
      break;
    }
  }
  if (target >= level_) {
    level_ = target;  // escalate immediately
  } else {
    // De-escalate one band at a time, and only when the load sits clearly
    // inside the lower band; prevents flapping when the observed load
    // hovers at a band boundary.
    while (level_ > target &&
           observedJobsPerHour <= levels_[level_ - 1].maxLoadJobsPerHour * kHysteresis) {
      --level_;
    }
  }
  return levels_[level_].delay;
}

std::vector<AdaptiveLevel> TableAdaptiveDelay::defaultTable() {
  // Measured from this repository's delayed-scheduling sweeps (cache 100 GB,
  // Figs 5/6 and EXPERIMENTS.md): zero delay sustains ~2.0 jobs/hour, the
  // Fig 5 delays extend the sustainable range step by step.
  return {
      {1.95, 0.0},
      {2.1, 11 * units::hour},
      {2.35, 2 * units::day},
      {1e9, units::week},
  };
}

FeedbackAdaptiveDelay::FeedbackAdaptiveDelay(Params params) : params_(std::move(params)) {
  if (params_.ladder.empty()) throw std::invalid_argument("delay ladder must not be empty");
  for (std::size_t i = 1; i < params_.ladder.size(); ++i) {
    if (params_.ladder[i] < params_.ladder[i - 1]) {
      throw std::invalid_argument("delay ladder must be ascending");
    }
  }
  if (params_.lowWater >= params_.highWater) {
    throw std::invalid_argument("lowWater must be < highWater");
  }
}

Duration FeedbackAdaptiveDelay::nextPeriod(const ISchedulerHost& host, double) {
  const std::size_t inSystem = host.jobsInSystem();
  if (inSystem > params_.highWater && level_ + 1 < params_.ladder.size()) {
    ++level_;
  } else if (inSystem < params_.lowWater && level_ > 0) {
    --level_;
  }
  return params_.ladder[level_];
}

std::unique_ptr<DelayedScheduler> makeAdaptiveScheduler(DelayedParams params,
                                                        std::vector<AdaptiveLevel> table) {
  if (table.empty()) table = TableAdaptiveDelay::defaultTable();
  return std::make_unique<DelayedScheduler>(
      params, std::make_unique<TableAdaptiveDelay>(std::move(table)), "adaptive");
}

}  // namespace ppsched
