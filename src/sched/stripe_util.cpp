#include "sched/stripe_util.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ppsched {

std::vector<EventIndex> buildStripePoints(const std::vector<Subjob>& cold,
                                          std::uint64_t stripeEvents) {
  if (stripeEvents == 0) throw std::invalid_argument("stripeEvents must be >= 1");
  std::vector<EventIndex> finalPoints;
  if (cold.empty()) return finalPoints;

  // Table 4: a list of the data segment start and end points...
  std::set<EventIndex> rawPoints;
  for (const Subjob& sj : cold) {
    rawPoints.insert(sj.range.begin);
    rawPoints.insert(sj.range.end);
  }
  // ... points creating stripes below half the stripe size are removed ...
  std::vector<EventIndex> points;
  const std::uint64_t halfStripe = stripeEvents / 2 + stripeEvents % 2;
  for (const EventIndex p : rawPoints) {
    if (points.empty() || p - points.back() >= halfStripe) points.push_back(p);
  }
  if (points.back() != *rawPoints.rbegin()) points.push_back(*rawPoints.rbegin());
  // ... and points are added so that no stripe exceeds the stripe size.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      const std::uint64_t gap = points[i] - points[i - 1];
      if (gap > stripeEvents) {
        const std::uint64_t chunks = (gap + stripeEvents - 1) / stripeEvents;
        for (std::uint64_t c = 1; c < chunks; ++c) {
          finalPoints.push_back(points[i - 1] + gap * c / chunks);
        }
      }
    }
    finalPoints.push_back(points[i]);
  }
  return finalPoints;
}

std::vector<MetaSubjob> buildMetaSubjobs(const std::vector<Subjob>& cold,
                                         std::uint64_t stripeEvents) {
  std::vector<MetaSubjob> metas;
  if (cold.empty()) return metas;
  const std::vector<EventIndex> points = buildStripePoints(cold, stripeEvents);

  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const EventRange stripeRange{points[i], points[i + 1]};
    MetaSubjob meta;
    meta.stripe = stripeRange;
    for (const Subjob& sj : cold) {
      const EventRange cut = sj.range.intersect(stripeRange);
      if (cut.empty()) continue;
      Subjob piece = sj;
      piece.range = cut;
      meta.subjobs.push_back(piece);
    }
    if (meta.subjobs.empty()) continue;
    meta.earliestArrival = meta.subjobs.front().jobArrival;
    for (const Subjob& sj : meta.subjobs) {
      meta.earliestArrival = std::min(meta.earliestArrival, sj.jobArrival);
    }
    metas.push_back(std::move(meta));
  }
  std::stable_sort(metas.begin(), metas.end(), [](const MetaSubjob& a, const MetaSubjob& b) {
    return a.earliestArrival < b.earliestArrival;
  });
  return metas;
}

}  // namespace ppsched
