// Shared job-splitting helpers used by all policies.
//
// Jobs are arbitrarily divisible into contiguous subjobs, subject to the
// paper's minimal subjob size ("we do not split beyond a minimal job size
// (10 events)", Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "workload/job.h"

namespace ppsched {

/// A subjob plus the node (if any) on which its data is fully cached.
struct PlacedSubjob {
  Subjob subjob;
  NodeId cachedOn = kNoNode;

  [[nodiscard]] bool cached() const { return cachedOn != kNoNode; }
};

/// Split `sj` into at most `parts` contiguous subjobs of (nearly) equal
/// size, none smaller than `minSize` (fewer parts are produced when the
/// range is too small). parts >= 1.
std::vector<Subjob> splitEqual(const Subjob& sj, std::size_t parts, std::uint64_t minSize);

/// Split `sj` into two parts such that the first takes `firstRate`-seconds
/// per event and the second `secondRate`, and both finish at about the same
/// time (Table 3 work stealing: "split so as to ensure that the two subjobs
/// terminate around the same time"). Returns {first, second}; `second` may
/// be empty when the range is too small to split (< 2 * minSize).
std::pair<Subjob, Subjob> splitProportional(const Subjob& sj, double firstRate,
                                            double secondRate, std::uint64_t minSize);

/// Partition a job's range along cache boundaries (Table 2: "data processed
/// by a given subjob should always either be fully cached on a node or not
/// cached at all"). Each returned piece is labelled with the node caching it
/// (the node with the longest cached run at the piece's start; ties go to
/// the lowest id) or kNoNode when no node caches its first event. Pieces
/// respect `minSize` where possible: boundary positions creating smaller
/// pieces are pushed outward, so a piece may include a short differently-
/// labelled tail (at 10-event granularity this is negligible against
/// 40000-event jobs).
std::vector<PlacedSubjob> splitByCaches(const Job& job, const Cluster& cluster,
                                        std::uint64_t minSize);

/// Same, for an arbitrary subjob (used when re-splitting remainders).
std::vector<PlacedSubjob> splitByCaches(const Subjob& sj, const Cluster& cluster,
                                        std::uint64_t minSize);

}  // namespace ppsched
