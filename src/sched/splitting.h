// Job-splitting scheduling (§3.2, Table 1).
//
// FCFS job order, but jobs are split into subjobs across idle nodes so the
// maximum possible number of nodes is always in use. No disk caching: all
// data comes from tertiary storage. Invariant (§3 basic principles): once
// started, a job always holds at least one node until it completes.
#pragma once

#include <deque>
#include <map>

#include "core/host.h"
#include "core/policy.h"

namespace ppsched {

class SplittingScheduler final : public ISchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "splitting"; }
  [[nodiscard]] bool usesCaching() const override { return false; }

  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;

  [[nodiscard]] std::size_t queuedJobs() const { return pending_.size(); }

 private:
  struct JobInfo {
    std::deque<Subjob> suspended;  ///< preempted pieces, front = activate first
    int runningNodes = 0;
  };

  /// Give an idle node work by splitting the largest running subjob in two
  /// (Table 1, "upon subjob end"). Leaves the node idle when nothing is
  /// splittable.
  void allocateToRunning(NodeId node);

  /// Bookkeeping around ISchedulerHost::preempt: decrements the victim's node count
  /// and handles the corner case of a run that was exactly complete.
  Subjob preemptTracked(NodeId node);

  std::map<JobId, JobInfo> active_;
  std::deque<Job> pending_;
};

}  // namespace ppsched
