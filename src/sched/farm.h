// Processing-farm scheduling (§3.1) — the paper's baseline, "the policy in
// use at CERN for scheduling jobs on a computing cluster".
//
// Jobs queue FCFS in front of the cluster; each job runs unsplit on the
// first available node, which stays dedicated to it until the end. No disk
// caching: every byte comes from tertiary storage. Behaves as an M/Er/m
// queue (validated against core/queueing.h).
#pragma once

#include <deque>

#include "core/host.h"
#include "core/policy.h"

namespace ppsched {

class FarmScheduler final : public ISchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "farm"; }
  [[nodiscard]] bool usesCaching() const override { return false; }

  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;

  [[nodiscard]] std::size_t queuedJobs() const { return queue_.size(); }

 private:
  std::deque<Job> queue_;
};

}  // namespace ppsched
