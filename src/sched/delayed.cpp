#include "sched/delayed.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sched/split_util.h"

namespace ppsched {

DelayedScheduler::DelayedScheduler(DelayedParams params,
                                   std::unique_ptr<DelayController> controller,
                                   std::string displayName)
    : params_(params), controller_(std::move(controller)), displayName_(std::move(displayName)) {
  if (!controller_) throw std::invalid_argument("DelayedScheduler needs a controller");
  if (params_.stripeEvents == 0) throw std::invalid_argument("stripeEvents must be >= 1");
}

void DelayedScheduler::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  nodeQueues_.assign(static_cast<std::size_t>(host.numNodes()), {});
  warmed_.assign(static_cast<std::size_t>(host.numNodes()), {});
}

void DelayedScheduler::noteArrivalForLoad(SimTime t) {
  recentArrivals_.push_back(t);
  while (!recentArrivals_.empty() && recentArrivals_.front() < t - params_.loadWindow) {
    recentArrivals_.pop_front();
  }
}

double DelayedScheduler::observedLoadJobsPerHour() const {
  // Rate over the retained window. Fewer than 5 samples is not enough
  // history to justify delaying anybody — report 0 (zero delay is the safe
  // default; the paper's adaptive policy also idles at low load).
  if (recentArrivals_.size() < 5) return 0.0;
  const Duration span = recentArrivals_.back() - recentArrivals_.front();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(recentArrivals_.size() - 1) / units::toHours(span);
}

void DelayedScheduler::onJobArrival(const Job& job) {
  noteArrivalForLoad(job.arrival);
  if (timerActive_) {
    accumulating_.push_back(job);
    maybePrefetch(job);
    return;
  }
  // Between periods: ask the controller how long the next period should be.
  currentPeriod_ = controller_->nextPeriod(host(), observedLoadJobsPerHour());
  if (currentPeriod_ <= 0.0) {
    scheduleBatch({job});  // zero delay: immediate scheduling
    return;
  }
  accumulating_.push_back(job);
  timerActive_ = true;
  SimTime at = host().now() + currentPeriod_;
  if (params_.alignPeriodsToGrid) {
    // Next boundary of the global grid k * period (Table 4's equal-size
    // periods anchored at t = 0).
    const double k = std::ceil(host().now() / currentPeriod_ + 1e-12);
    at = std::max(host().now(), k * currentPeriod_);
  }
  host().scheduleTimer(at);
  // A fresh accumulation window opened: forget the previous window's
  // warming bookkeeping (delivered extents live in the caches now, so
  // splitByCaches sees them anyway) and warm the first arrival.
  periodEnd_ = at;
  for (IntervalSet& w : warmed_) w.clear();
  maybePrefetch(job);
}

void DelayedScheduler::maybePrefetch(const Job& job) {
  if (!params_.prefetch) return;
  const SimConfig& cfg = host().config();
  // The reference for a "cheap window": the uncontended tertiary transfer.
  const double uncontended = cfg.cost.bytesPerEvent / cfg.cost.tertiaryBytesPerSec;
  for (const PlacedSubjob& piece :
       splitByCaches(job, host().cluster(), cfg.minSubjobEvents)) {
    if (piece.cached()) continue;  // dispatches to its caching node anyway
    // Skip extents some warming transfer already covers this window,
    // whichever node it targets.
    IntervalSet todo{piece.subjob.range};
    for (const IntervalSet& w : warmed_) todo.erase(w);
    if (todo.empty()) continue;
    // Warm in stripe-sized chunks, round-robining the landing node per
    // chunk: dispatch will stripe this cold range across the cluster the
    // same way, and warming a whole job onto one node would serialize a
    // range that plain delayed scheduling processes in parallel.
    for (const EventRange& r : todo.intervals()) {
      for (EventIndex lo = r.begin; lo < r.end; lo += params_.stripeEvents) {
        const EventRange chunk{lo, std::min(r.end, lo + params_.stripeEvents)};
        NodeId dst = kNoNode;
        const int n = host().numNodes();
        for (int i = 0; i < n; ++i) {
          const NodeId cand = static_cast<NodeId>((prefetchRover_ + i) % n);
          if (host().isUp(cand)) {
            dst = cand;
            prefetchRover_ = cand + 1;
            break;
          }
        }
        if (dst == kNoNode) return;  // whole cluster down
        AccessGoal goal;
        goal.intent = AccessGoal::Intent::Prefetch;
        goal.deadline = periodEnd_;
        const AccessPlan best = host().planAccess(dst, chunk, goal).front();
        // Only warm through cheap ingress windows: when even the planner's
        // cheapest transfer is congested past the gate, warming now would
        // fight the traffic it is meant to avoid.
        if (best.secPerEvent > params_.prefetchMaxCostFactor * uncontended) continue;
        host().prefetch(dst, chunk, best);
        warmed_[static_cast<std::size_t>(dst)].insert(chunk);
      }
    }
  }
}

void DelayedScheduler::onTimer(TimerId) {
  timerActive_ = false;
  std::vector<Job> batch;
  batch.swap(accumulating_);
  scheduleBatch(batch);
  // The next period is armed by the next arrival; an empty grid period
  // would only add an idle timer event.
}

void DelayedScheduler::scheduleBatch(const std::vector<Job>& jobs) {
  const std::uint64_t minSize = host().config().minSubjobEvents;
  std::vector<Subjob> cold;
  // Jobs are in arrival order, so cached pieces enter the node queues in
  // FIFO order (fairness).
  for (const Job& job : jobs) {
    host().noteSchedulingDelay(job.id, host().now() - job.arrival);
    for (const PlacedSubjob& piece : splitByCaches(job, host().cluster(), minSize)) {
      if (piece.cached()) {
        nodeQueues_[static_cast<std::size_t>(piece.cachedOn)].push_back(piece.subjob);
      } else {
        cold.push_back(piece.subjob);
      }
    }
  }
  // Queue the meta-subjobs by earliest arrival (Table 4 fairness), merging
  // with whatever is left over from earlier periods.
  for (MetaSubjob& m : buildMetaSubjobs(cold, params_.stripeEvents)) {
    metaQueue_.push_back(std::move(m));
  }
  std::stable_sort(metaQueue_.begin(), metaQueue_.end(),
                   [](const MetaSubjob& a, const MetaSubjob& b) {
                     return a.earliestArrival < b.earliestArrival;
                   });
  for (NodeId n : host().idleNodes()) feedNode(n);
}

void DelayedScheduler::feedNode(NodeId node) {
  auto& own = nodeQueues_[static_cast<std::size_t>(node)];
  if (!own.empty()) {
    const Subjob sj = own.front();
    own.pop_front();
    host().startRun(node, sj);
    return;
  }
  if (!metaQueue_.empty()) {
    auto pick = metaQueue_.begin();
    if (params_.prefetch) {
      // Prefer a meta-subjob whose stripe was warmed towards this node:
      // matching warmed data to its landing node preserves the "fetch
      // once" property for transfers still in flight at dispatch.
      for (auto it = metaQueue_.begin(); it != metaQueue_.end(); ++it) {
        const auto& mine = warmed_[static_cast<std::size_t>(node)];
        bool warmedHere = false;
        for (const Subjob& sj : it->subjobs) {
          if (!mine.intersectWith(sj.range).empty()) {
            warmedHere = true;
            break;
          }
        }
        if (warmedHere) {
          pick = it;
          break;
        }
      }
    }
    MetaSubjob meta = std::move(*pick);
    metaQueue_.erase(pick);
    // All subjobs of the meta run on this node: the first fetches the
    // stripe from tertiary storage, the rest hit the local cache.
    for (const Subjob& sj : meta.subjobs) own.push_back(sj);
    const Subjob first = own.front();
    own.pop_front();
    host().startRun(node, first);
    return;
  }
  // Nothing to do until the next period.
}

void DelayedScheduler::onRunFinished(NodeId node, const RunReport&) { feedNode(node); }

}  // namespace ppsched
