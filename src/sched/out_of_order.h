// Out-of-order job scheduling (§4.1, Table 3).
//
// Each node keeps a queue of subjobs whose data is cached on it; a global
// extra queue holds subjobs with no cached data anywhere. Cached subjobs may
// overtake uncached ones and even preempt runs that work on non-cached data
// (such preempted work returns to the *front* of the queue it came from).
// Idle nodes steal work from the most loaded nodes; stolen pieces carry a
// flag allowing future cached subjobs to preempt them.
//
// Fairness guard: a job that waited longer than `starvationLimit` (paper:
// 2 days) is promoted — the first available node runs it, and the promoted
// run is itself protected from preemption.
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "core/host.h"
#include "core/policy.h"

namespace ppsched {

class OutOfOrderScheduler : public ISchedulerPolicy {
 public:
  struct Params {
    Duration starvationLimit = 2 * units::day;
  };

  OutOfOrderScheduler() = default;
  explicit OutOfOrderScheduler(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "out_of_order"; }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;

  /// Queue depths (for tests and diagnostics).
  [[nodiscard]] std::size_t nodeQueueSize(NodeId node) const;
  [[nodiscard]] std::size_t uncachedQueueSize() const { return uncachedQueue_.size(); }
  /// Number of jobs promoted by the starvation guard so far.
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }

 protected:
  /// Hook for the replication variant (§4.2): how a run should access its
  /// data. The base policy always reads locally/from tertiary (empty plan).
  virtual AccessPlan planFor(NodeId node, const Subjob& sj);

 private:
  void start(NodeId node, const Subjob& sj);
  /// Find work for an idle node (Table 3, "whenever a node becomes
  /// available"). May leave it idle.
  void feedNode(NodeId node);
  /// Return a preempted remainder to the front of the queue it belongs to:
  /// the queue of the node caching (most of) it, or the no-cached-data
  /// queue.
  void requeueRemainderFront(Subjob rem);
  /// Index in uncachedQueue_ of the starving subjob with the earliest
  /// arrival, or npos.
  [[nodiscard]] std::size_t findStarving() const;

  [[nodiscard]] std::uint64_t cachedOnNode(NodeId node, EventRange r) const;
  /// Estimated seconds/event for executing `r` on `node` given current
  /// cache contents (used to balance stolen work, Table 3).
  [[nodiscard]] double estimatedRate(NodeId node, EventRange r) const;

  /// "Queued on the node where its data is cached" generalizes to cache
  /// *groups* on SMP clusters: CPUs sharing a cache share one queue (and
  /// any sibling may pop it). With single-CPU nodes (the paper's model)
  /// every group is a singleton and this is exactly Table 3.
  [[nodiscard]] std::deque<Subjob>& queueOf(NodeId node) {
    return nodeQueues_[static_cast<std::size_t>(group_[static_cast<std::size_t>(node)])];
  }

  Params params_;
  /// group_[cpu] = lowest NodeId sharing that cpu's cache.
  std::vector<NodeId> group_;
  std::vector<std::deque<Subjob>> nodeQueues_;  ///< indexed by group leader id
  std::deque<Subjob> uncachedQueue_;
  std::set<NodeId> promotedNodes_;  ///< nodes running promoted (protected) jobs
  std::uint64_t promotions_ = 0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace ppsched
