#include "sched/split_util.h"

#include <algorithm>
#include <cassert>

namespace ppsched {

std::vector<Subjob> splitEqual(const Subjob& sj, std::size_t parts, std::uint64_t minSize) {
  assert(parts >= 1);
  std::vector<Subjob> out;
  if (sj.empty()) return out;
  const std::uint64_t total = sj.events();
  // Cap the number of parts so each stays >= minSize.
  const std::uint64_t byMin = std::max<std::uint64_t>(1, total / std::max<std::uint64_t>(1, minSize));
  const std::uint64_t n = std::min<std::uint64_t>(parts, byMin);
  EventIndex cursor = sj.range.begin;
  for (std::uint64_t i = 0; i < n; ++i) {
    // Distribute the remainder one event at a time so sizes differ by <= 1.
    const std::uint64_t size = total / n + (i < total % n ? 1 : 0);
    Subjob piece = sj;
    piece.range = {cursor, cursor + size};
    out.push_back(piece);
    cursor += size;
  }
  assert(cursor == sj.range.end);
  return out;
}

std::pair<Subjob, Subjob> splitProportional(const Subjob& sj, double firstRate,
                                            double secondRate, std::uint64_t minSize) {
  Subjob first = sj;
  Subjob second = sj;
  second.range = {sj.range.end, sj.range.end};
  const std::uint64_t total = sj.events();
  if (total < 2 * minSize || firstRate <= 0.0 || secondRate <= 0.0) {
    return {first, second};  // too small: all work stays in `first`
  }
  // first.size * firstRate == second.size * secondRate
  auto firstSize = static_cast<std::uint64_t>(
      static_cast<double>(total) * secondRate / (firstRate + secondRate));
  firstSize = std::clamp<std::uint64_t>(firstSize, minSize, total - minSize);
  first.range = {sj.range.begin, sj.range.begin + firstSize};
  second.range = {sj.range.begin + firstSize, sj.range.end};
  return {first, second};
}

namespace {

/// Node with the longest contiguous cached run starting at `pos` (within
/// `limit`); kNoNode if nobody caches `pos`. Ties: lowest node id.
struct RunInfo {
  NodeId node = kNoNode;
  EventIndex runEnd = 0;
};

RunInfo longestRunAt(const Cluster& cluster, EventIndex pos, EventIndex limit) {
  RunInfo best;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    const EventRange run = cluster.node(n).cache().cachedIn({pos, limit}).runAt(pos);
    if (!run.empty() && (best.node == kNoNode || run.end > best.runEnd)) {
      best.node = n;
      best.runEnd = run.end;
    }
  }
  return best;
}

/// First position > pos (and < limit) where any node's cache coverage
/// begins; `limit` if none.
EventIndex nextCachedStart(const Cluster& cluster, EventIndex pos, EventIndex limit) {
  EventIndex next = limit;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    for (const EventRange& r : cluster.node(n).cache().cachedIn({pos, next}).intervals()) {
      if (r.begin > pos) {
        next = std::min(next, r.begin);
        break;  // intervals are sorted; later ones only start further away
      }
    }
  }
  return next;
}

}  // namespace

std::vector<PlacedSubjob> splitByCaches(const Subjob& sj, const Cluster& cluster,
                                        std::uint64_t minSize) {
  std::vector<PlacedSubjob> out;
  if (sj.empty()) return out;
  const EventIndex end = sj.range.end;
  EventIndex cursor = sj.range.begin;
  while (cursor < end) {
    PlacedSubjob piece;
    piece.subjob = sj;
    const RunInfo run = longestRunAt(cluster, cursor, end);
    EventIndex pieceEnd;
    if (run.node != kNoNode) {
      piece.cachedOn = run.node;
      pieceEnd = run.runEnd;
    } else {
      pieceEnd = nextCachedStart(cluster, cursor, end);
    }
    // Enforce the minimal piece size by pushing the boundary outward; the
    // final piece absorbs any sub-minimum tail.
    if (pieceEnd - cursor < minSize) pieceEnd = std::min(cursor + minSize, end);
    if (end - pieceEnd < minSize && pieceEnd != end) pieceEnd = end;
    piece.subjob.range = {cursor, pieceEnd};
    out.push_back(piece);
    cursor = pieceEnd;
  }
  return out;
}

std::vector<PlacedSubjob> splitByCaches(const Job& job, const Cluster& cluster,
                                        std::uint64_t minSize) {
  return splitByCaches(wholeSubjob(job), cluster, minSize);
}

}  // namespace ppsched
