// EEVDF virtual-deadline scheduling (QoS classes beyond the paper).
//
// The paper's policies order work by arrival and cache affinity only; no
// deadline, weight or user information is consumed. This policy implements
// Earliest Eligible Virtual Deadline First (Stoica & Abdel-Wahab's
// proportional-share algorithm, the shape Linux adopted for its CFS
// successor) over per-(user, class) accounts:
//
//   - every account holds a weight w_i and a virtual runtime v_i;
//   - the global virtual time is the weighted average over active accounts,
//       V = Σ w_i v_i / Σ w_i,
//     so each account's lag, lag_i = w_i (V - v_i), sums to exactly zero
//     by construction;
//   - an account is *eligible* when v_i <= V (it is not ahead of its share);
//   - its head request of r events carries the virtual deadline
//       d_i = v_i + r / w_i;
//   - dispatch picks the eligible account with the earliest virtual
//     deadline and charges it v_i += r / w_i.
//
// Classic EEVDF guarantees |lag_i| stays bounded by one maximal request —
// the property-test harness (tests/slow_eevdf.cpp) pins that bound, the
// zero-sum identity, eligibility of every dispatch, and the degeneration
// to FIFO under equal weights.
//
// Deadlines map to request sizes (the Linux latency-nice trick): a class
// with a relative deadline D gets stripes of at most D / cachedSecPerEvent
// events, so its virtual deadlines come up sooner and its jobs jump the
// queue without any reservation machinery.
//
// Cache affinity is a bounded tie-break, not an override: among eligible
// accounts whose head deadline is within `affinityWindowEvents` of the
// minimum (scaled by weight, so the window is denominated in forfeited
// service events), the dispatcher may pick the head whose data is cheapest
// to access from the idle node (per ISchedulerHost::planAccess). Window 0
// is strict EEVDF; a huge window is pure cache-greedy. The tension between
// serving the deadline and serving the cache is exactly this knob, swept by
// bench/ext_qos_tail.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/host.h"
#include "core/policy.h"

namespace ppsched {

/// QoS knobs: per-class weights and optional relative deadlines, plus the
/// deadline-vs-cache tie-break window. Carried in PolicyParams; also the
/// carrier of the trace-side group -> class mapping.
struct QosParams {
  /// Proportional-share weights (any positive scale; only ratios matter).
  double bulkWeight = 1.0;
  double interactiveWeight = 4.0;
  /// Optional per-class relative deadline (seconds; 0 = none). Mapped to a
  /// request-size cap: stripes of at most deadline/cachedSecPerEvent events.
  Duration bulkDeadline = 0.0;
  Duration interactiveDeadline = 0.0;
  /// Cache-affinity tie-break window in forfeited service events (see file
  /// header). 0 = strict EEVDF order.
  std::uint64_t affinityWindowEvents = 5'000;
  /// Trace ingestion: IN2P3 group labels mapped to the interactive class
  /// (In2p3MapConfig::interactiveGroups). Not consumed by the policy.
  std::vector<std::string> interactiveGroups;

  [[nodiscard]] double weightOf(QosClass cls) const {
    return cls == QosClass::Interactive ? interactiveWeight : bulkWeight;
  }
  [[nodiscard]] Duration deadlineOf(QosClass cls) const {
    return cls == QosClass::Interactive ? interactiveDeadline : bulkDeadline;
  }
};

/// Parse "key=value,..." into QosParams: iweight=, bweight= (weights),
/// ideadline=, bdeadline= (seconds), window= (events), igroups=a|b|c
/// (group labels). Throws std::invalid_argument on unknown keys or
/// non-positive weights. Empty string = defaults.
QosParams parseQosSpec(const std::string& spec);
/// Inverse of parseQosSpec (canonical key order, defaults included).
std::string formatQosSpec(const QosParams& qos);

/// The EEVDF bookkeeping core: a host-independent weighted queue of subjobs
/// in per-(user, class) accounts. Exposed separately so the property-test
/// harness can drive the invariants directly, with serial dispatch, where
/// the classic lag bounds apply.
class EevdfQueue {
 public:
  struct AccountKey {
    UserId user = kNoUser;
    QosClass cls = QosClass::Bulk;
    friend bool operator<(const AccountKey& a, const AccountKey& b) {
      if (a.user != b.user) return a.user < b.user;
      return a.cls < b.cls;
    }
    friend bool operator==(const AccountKey&, const AccountKey&) = default;
  };

  /// Introspection snapshot of one account (for tests / diagnostics).
  struct AccountView {
    AccountKey key;
    double weight = 0.0;
    double vruntime = 0.0;
    double lag = 0.0;  ///< w * (V - v); 0 for inactive accounts
    bool active = false;
    std::uint64_t queuedSubjobs = 0;
    std::uint64_t queuedEvents = 0;
  };

  /// Append `sj` to its (user, class) account, activating the account if it
  /// was idle: it joins at v = max(v_old, V), with any carried-over debt
  /// capped at one incoming request (v <= V + events/weight). `weight` must
  /// be > 0 and stable per account.
  void enqueue(const Subjob& sj, double weight);

  /// Dispatch the head of the eligible account with the earliest virtual
  /// deadline (ties: activation order, then account key) and charge it.
  /// nullopt when empty.
  std::optional<Subjob> pop();

  /// Like pop(), but among eligible accounts whose head deadline is within
  /// `windowEvents` of the earliest (weight-scaled: (d_i - d*) * w_i <=
  /// window), dispatch the head with the lowest `cost`. windowEvents == 0
  /// degenerates to pop().
  std::optional<Subjob> popPreferring(const std::function<double(const Subjob&)>& cost,
                                      std::uint64_t windowEvents);

  /// Return `events` of charged-but-unprocessed service to an account (a
  /// lost run's remainder): v -= events/weight. The caller re-enqueues the
  /// remainder, which is then charged again at its next dispatch.
  void refund(UserId user, QosClass cls, std::uint64_t events);

  [[nodiscard]] bool empty() const { return queuedSubjobs_ == 0; }
  [[nodiscard]] std::uint64_t queuedSubjobs() const { return queuedSubjobs_; }
  [[nodiscard]] std::uint64_t queuedEvents() const { return queuedEvents_; }
  /// Current global virtual time V (weighted average over active accounts;
  /// frozen at its last value while the queue is idle).
  [[nodiscard]] double virtualTime() const;
  /// Largest single request (events) ever enqueued — the classic EEVDF
  /// per-account lag bound, in service units.
  [[nodiscard]] std::uint64_t maxRequestEvents() const { return maxRequestEvents_; }
  /// Snapshot of every known account (active and drained), key order.
  [[nodiscard]] std::vector<AccountView> accounts() const;

 private:
  struct Account {
    double weight = 1.0;
    double vruntime = 0.0;
    std::uint64_t activationSeq = 0;  ///< FIFO tie-break within a deadline
    std::deque<Subjob> queue;
    [[nodiscard]] bool active() const { return !queue.empty(); }
  };

  /// Charge `acct` for its head request, pop it, and deactivate on drain.
  Subjob take(const AccountKey& key, Account& acct);
  void activate(const AccountKey& key, Account& acct, std::uint64_t requestEvents);
  void deactivate(Account& acct);

  std::map<AccountKey, Account> accounts_;
  double sumW_ = 0.0;    ///< Σ weight over active accounts
  double sumWV_ = 0.0;   ///< Σ weight * vruntime over active accounts
  double idleV_ = 0.0;   ///< V frozen at the last drain (joins while idle)
  std::uint64_t activationCounter_ = 0;
  std::uint64_t queuedSubjobs_ = 0;
  std::uint64_t queuedEvents_ = 0;
  std::uint64_t maxRequestEvents_ = 0;
};

/// The scheduling policy: jobs are cut into per-class stripes (request
/// sizes derived from the class deadline, see file header) and dispatched
/// by earliest eligible virtual deadline with the bounded cache-affinity
/// tie-break. Work lost to node failures is refunded and re-queued.
class EevdfScheduler final : public ISchedulerPolicy {
 public:
  struct Params {
    QosParams qos;
    /// Stripe size for classes without a deadline (cf. delayed's stripes).
    std::uint64_t stripeEvents = 5'000;
  };

  EevdfScheduler() = default;
  explicit EevdfScheduler(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "eevdf"; }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;
  void onNodeDown(NodeId node, const RunReport* lost) override;
  void onNodeUp(NodeId node) override;

  /// The live queue (tests / diagnostics).
  [[nodiscard]] const EevdfQueue& queue() const { return queue_; }
  /// The request size (events) a job of `cls` is cut into.
  [[nodiscard]] std::uint64_t requestEvents(QosClass cls) const;

 private:
  void feedNode(NodeId node);
  void feedIdleNodes();

  Params params_;
  EevdfQueue queue_;
  double cachedSecPerEvent_ = 1.0;  ///< deadline -> request-size conversion
};

}  // namespace ppsched
