// Delayed scheduling (§5, Table 4).
//
// Time is divided into periods; jobs accumulate during a period and are all
// scheduled together at its end. Cached subjobs go to the queues of the
// nodes holding their data. Uncached subjobs are re-cut along a stripe-size
// point list and aggregated into *meta-subjobs* over overlapping segments:
// a node that pops a meta-subjob executes all of its subjobs back to back,
// so the stripe is fetched from tertiary storage once and then served from
// the local cache — the policy's whole point ("load the data from tertiary
// storage only once during a given period").
//
// The period length comes from a DelayController: fixed for §5, adapted to
// the observed load for §6 (adaptive delay). A zero period schedules each
// job immediately upon arrival — still through the stripe machinery, which
// is why zero-delay adaptive differs from out-of-order scheduling (§6).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/host.h"
#include "core/policy.h"
#include "sched/stripe_util.h"

namespace ppsched {

/// Chooses the length of each scheduling period.
class DelayController {
 public:
  virtual ~DelayController() = default;
  /// Period length to use for the period starting now. 0 means "schedule
  /// arrivals immediately". `observedJobsPerHour` is the arrival rate over
  /// the scheduler's load window.
  virtual Duration nextPeriod(const ISchedulerHost& host, double observedJobsPerHour) = 0;
};

/// §5: a constant period delay (the paper evaluates 11 h, 2 days, 1 week).
class FixedDelay final : public DelayController {
 public:
  explicit FixedDelay(Duration period) : period_(period) {}
  Duration nextPeriod(const ISchedulerHost&, double) override { return period_; }

 private:
  Duration period_;
};

struct DelayedParams {
  /// Largest acceptable data segment per uncached subjob (paper: 200 to
  /// 25000 events).
  std::uint64_t stripeEvents = 5000;
  /// Window over which the arrival rate is estimated for the controller.
  /// Wide enough that the estimate's relative noise (~1/sqrt(samples))
  /// does not flap the adaptive table at band boundaries.
  Duration loadWindow = 96 * units::hour;
  /// Table 4 divides "time into periods of equal size": with this set,
  /// period boundaries sit on the global grid (k * period). When false
  /// (default), a period starts at the first arrival after an idle stretch
  /// — same steady-state behaviour, fewer idle timer events, and the mode
  /// the adaptive controller needs (periods of varying length).
  bool alignPeriodsToGrid = false;
  /// Prefetching variant: during the accumulation window, ask the host's
  /// access planner for cheap ingress windows and issue cache-warming
  /// transfers for accumulated uncached data, so stripes are already local
  /// when the period ends and the batch dispatches.
  bool prefetch = false;
  /// Warm only through cheap windows: skip a transfer whose planned cost
  /// exceeds this multiple of the uncontended tertiary transfer (the
  /// ingress is busy; warming now would fight the traffic it should avoid).
  double prefetchMaxCostFactor = 1.5;
};

class DelayedScheduler final : public ISchedulerPolicy {
 public:
  /// `displayName` distinguishes "delayed" from "adaptive" in reports.
  DelayedScheduler(DelayedParams params, std::unique_ptr<DelayController> controller,
                   std::string displayName = "delayed");

  [[nodiscard]] std::string name() const override { return displayName_; }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;
  void onTimer(TimerId timer) override;

  /// Diagnostics.
  [[nodiscard]] std::size_t accumulatedJobs() const { return accumulating_.size(); }
  [[nodiscard]] std::size_t metaQueueSize() const { return metaQueue_.size(); }
  [[nodiscard]] Duration currentPeriod() const { return currentPeriod_; }
  [[nodiscard]] double observedLoadJobsPerHour() const;

 private:
  /// Split, stripe, aggregate and enqueue a batch of jobs; then feed all
  /// idle nodes. The elapsed accumulation time is noted per job as
  /// scheduling delay.
  void scheduleBatch(const std::vector<Job>& jobs);
  void feedNode(NodeId node);
  void noteArrivalForLoad(SimTime t);
  /// Prefetch variant: warm an accumulated job's uncached data into caches
  /// through planner-approved cheap windows (no-op unless params_.prefetch).
  void maybePrefetch(const Job& job);

  DelayedParams params_;
  std::unique_ptr<DelayController> controller_;
  std::string displayName_;

  std::vector<Job> accumulating_;
  std::vector<std::deque<Subjob>> nodeQueues_;
  std::deque<MetaSubjob> metaQueue_;
  bool timerActive_ = false;
  Duration currentPeriod_ = 0.0;
  std::deque<SimTime> recentArrivals_;
  /// Per-node extents handed to prefetch() this window (dedup + dispatch
  /// preference); cleared when a new accumulation window starts.
  std::vector<IntervalSet> warmed_;
  int prefetchRover_ = 0;  ///< round-robin cursor over landing nodes
  SimTime periodEnd_ = 0.0;  ///< deadline passed to the planner
};

}  // namespace ppsched
