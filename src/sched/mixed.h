// Mixed scheduling (§7, the paper's named future work): "mixed scheduling
// strategies combining period delays and immediate processing of job
// requests".
//
// The idea: cached work never benefits from waiting — it is handled
// immediately, out-of-order style (per-node queues, preemption of
// non-cached runs, overtaking). Uncached work is what delayed scheduling
// optimizes — it accumulates for a period and is then stripe-aggregated
// into meta-subjobs so every stripe is fetched from tertiary storage once.
//
// Expected behaviour (bench/ext_mixed_strategy): out-of-order-class waiting
// times for jobs with cached data at every load, with a sustainable load
// approaching delayed scheduling's.
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "core/host.h"
#include "core/policy.h"
#include "sched/stripe_util.h"

namespace ppsched {

class MixedScheduler final : public ISchedulerPolicy {
 public:
  struct Params {
    /// Accumulation period for uncached work (0 disables batching: uncached
    /// pieces are striped and queued immediately).
    Duration periodDelay = 12 * units::hour;
    /// Stripe size for the uncached batches.
    std::uint64_t stripeEvents = 1000;
    /// Starvation guard for uncached work (as in Table 3).
    Duration starvationLimit = 2 * units::day;
  };

  MixedScheduler() = default;
  explicit MixedScheduler(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "mixed"; }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;
  void onTimer(TimerId timer) override;

  /// Diagnostics.
  [[nodiscard]] std::size_t accumulatedSubjobs() const { return coldPool_.size(); }
  [[nodiscard]] std::size_t metaQueueSize() const { return metaQueue_.size(); }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }

 private:
  /// Stripe the accumulated cold pool into meta-subjobs and enqueue them.
  void flushColdPool();
  /// Find work for an idle node: starving meta first, own queue, meta
  /// queue, then split the most loaded running subjob.
  void feedNode(NodeId node);
  void requeueRemainderFront(Subjob rem);

  [[nodiscard]] std::uint64_t cachedOnNode(NodeId node, EventRange r) const;
  [[nodiscard]] double estimatedRate(NodeId node, EventRange r) const;

  Params params_;
  std::vector<std::deque<Subjob>> nodeQueues_;  ///< cached work, immediate
  std::vector<Subjob> coldPool_;                ///< uncached work, this period
  std::deque<MetaSubjob> metaQueue_;            ///< striped uncached work
  bool timerActive_ = false;
  std::set<NodeId> promotedNodes_;
  std::uint64_t promotions_ = 0;
};

}  // namespace ppsched
