#include "sched/mixed.h"

#include <algorithm>

#include "sched/split_util.h"

namespace ppsched {

void MixedScheduler::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  nodeQueues_.assign(static_cast<std::size_t>(host.numNodes()), {});
}

std::uint64_t MixedScheduler::cachedOnNode(NodeId node, EventRange r) const {
  return host().cluster().node(node).cache().overlapSize(r);
}

double MixedScheduler::estimatedRate(NodeId node, EventRange r) const {
  if (r.empty()) return host().config().cost.cachedSecPerEvent();
  const double f = static_cast<double>(cachedOnNode(node, r)) / static_cast<double>(r.size());
  const auto& cost = host().config().cost;
  return f * cost.cachedSecPerEvent() + (1.0 - f) * cost.uncachedSecPerEvent();
}

void MixedScheduler::requeueRemainderFront(Subjob rem) {
  if (rem.empty()) return;
  const NodeId home = host().cluster().bestCacheNode(rem.range);
  rem.yieldsToCached = false;
  if (home != kNoNode) {
    nodeQueues_[static_cast<std::size_t>(home)].push_front(rem);
  } else {
    // Back into the cold pool; it will re-stripe with the next batch.
    coldPool_.push_back(rem);
  }
}

void MixedScheduler::onJobArrival(const Job& job) {
  const std::uint64_t minSize = host().config().minSubjobEvents;
  const auto pieces = splitByCaches(job, host().cluster(), minSize);

  // Cached pieces: out-of-order immediate treatment (Table 3 arrival rule).
  for (const PlacedSubjob& piece : pieces) {
    if (!piece.cached()) {
      coldPool_.push_back(piece.subjob);
      continue;
    }
    const NodeId n = piece.cachedOn;
    if (host().isIdle(n)) {
      host().startRun(n, piece.subjob);
      continue;
    }
    const auto view = host().running(n);
    const bool preemptible = !promotedNodes_.contains(n) &&
                             (view.subjob.yieldsToCached ||
                              cachedOnNode(n, view.remaining) == 0);
    if (preemptible) {
      Subjob rem = host().preempt(n);
      requeueRemainderFront(rem);
      host().startRun(n, piece.subjob);
    } else {
      nodeQueues_[static_cast<std::size_t>(n)].push_back(piece.subjob);
    }
  }

  // Uncached pieces: accumulate for the period (delayed-scheduling
  // treatment). With a zero period they are striped right away.
  if (!coldPool_.empty()) {
    if (params_.periodDelay <= 0.0) {
      flushColdPool();
    } else if (!timerActive_) {
      timerActive_ = true;
      host().scheduleTimer(host().now() + params_.periodDelay);
    }
  }

  // Feed any nodes that are still idle.
  for (NodeId n = 0; n < host().numNodes(); ++n) {
    if (host().isIdle(n)) feedNode(n);
  }
}

void MixedScheduler::onTimer(TimerId) {
  timerActive_ = false;
  flushColdPool();
  for (NodeId n : host().idleNodes()) feedNode(n);
}

void MixedScheduler::flushColdPool() {
  if (coldPool_.empty()) return;
  std::vector<Subjob> cold;
  cold.swap(coldPool_);
  for (const Subjob& sj : cold) {
    // The accumulation period is a scheduling delay in the Fig 5/6 sense.
    host().noteSchedulingDelay(sj.job, host().now() - sj.jobArrival);
  }
  for (MetaSubjob& m : buildMetaSubjobs(cold, params_.stripeEvents)) {
    metaQueue_.push_back(std::move(m));
  }
  std::stable_sort(metaQueue_.begin(), metaQueue_.end(),
                   [](const MetaSubjob& a, const MetaSubjob& b) {
                     return a.earliestArrival < b.earliestArrival;
                   });
}

void MixedScheduler::feedNode(NodeId node) {
  const std::uint64_t minSize = host().config().minSubjobEvents;

  // 1. Starvation guard over queued meta-subjobs.
  const SimTime cutoff = host().now() - params_.starvationLimit;
  for (std::size_t i = 0; i < metaQueue_.size(); ++i) {
    if (metaQueue_[i].earliestArrival >= cutoff) continue;
    MetaSubjob meta = std::move(metaQueue_[i]);
    metaQueue_.erase(metaQueue_.begin() + static_cast<std::ptrdiff_t>(i));
    auto& own = nodeQueues_[static_cast<std::size_t>(node)];
    for (auto it = meta.subjobs.rbegin(); it != meta.subjobs.rend(); ++it) {
      own.push_front(*it);
    }
    const Subjob first = own.front();
    own.pop_front();
    promotedNodes_.insert(node);
    ++promotions_;
    host().startRun(node, first);
    return;
  }

  // 2. The node's own queue (cached work first).
  auto& own = nodeQueues_[static_cast<std::size_t>(node)];
  if (!own.empty()) {
    const Subjob sj = own.front();
    own.pop_front();
    host().startRun(node, sj);
    return;
  }

  // 3. The striped uncached queue.
  if (!metaQueue_.empty()) {
    MetaSubjob meta = std::move(metaQueue_.front());
    metaQueue_.pop_front();
    for (const Subjob& sj : meta.subjobs) own.push_back(sj);
    const Subjob first = own.front();
    own.pop_front();
    host().startRun(node, first);
    return;
  }

  // 4. Steal: split the most loaded node's running subjob (as in Table 3).
  NodeId loaded = kNoNode;
  std::uint64_t maxLoad = 0;
  for (NodeId m = 0; m < host().numNodes(); ++m) {
    if (m == node) continue;
    std::uint64_t load = 0;
    for (const Subjob& q : nodeQueues_[static_cast<std::size_t>(m)]) load += q.events();
    const auto view = host().running(m);
    if (view.active) load += view.remaining.size();
    if (load > maxLoad) {
      maxLoad = load;
      loaded = m;
    }
  }
  if (loaded == kNoNode) return;
  const auto view = host().running(loaded);
  if (!view.active || view.remaining.size() < 2 * minSize) return;
  Subjob rem = host().preempt(loaded);
  if (rem.empty()) {
    feedNode(loaded);
    feedNode(node);
    return;
  }
  if (rem.events() < 2 * minSize) {
    host().startRun(loaded, rem);
    return;
  }
  auto [keep, stolen] = splitProportional(rem, estimatedRate(loaded, rem.range),
                                          host().config().cost.uncachedSecPerEvent(), minSize);
  if (stolen.empty()) {
    host().startRun(loaded, keep);
    return;
  }
  stolen.yieldsToCached = true;
  host().startRun(loaded, keep);
  host().startRun(node, stolen);
}

void MixedScheduler::onRunFinished(NodeId node, const RunReport&) {
  promotedNodes_.erase(node);
  feedNode(node);
}

}  // namespace ppsched
