#include "sched/out_of_order.h"

#include <algorithm>

#include "sched/split_util.h"

namespace ppsched {

void OutOfOrderScheduler::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  // Map each CPU to its cache group's leader (lowest sibling id); on the
  // paper's single-CPU nodes every CPU leads its own group.
  group_.assign(static_cast<std::size_t>(host.numNodes()), kNoNode);
  for (NodeId n = 0; n < host.numNodes(); ++n) {
    NodeId leader = n;
    for (NodeId m = 0; m < n; ++m) {
      if (host.cluster().node(n).sharesCacheWith(host.cluster().node(m))) {
        leader = m;
        break;
      }
    }
    group_[static_cast<std::size_t>(n)] = leader;
  }
  nodeQueues_.assign(static_cast<std::size_t>(host.numNodes()), {});
}

std::size_t OutOfOrderScheduler::nodeQueueSize(NodeId node) const {
  return nodeQueues_.at(static_cast<std::size_t>(group_.at(static_cast<std::size_t>(node))))
      .size();
}

AccessPlan OutOfOrderScheduler::planFor(NodeId, const Subjob&) { return {}; }

void OutOfOrderScheduler::start(NodeId node, const Subjob& sj) {
  host().startRun(node, sj, planFor(node, sj));
}

std::uint64_t OutOfOrderScheduler::cachedOnNode(NodeId node, EventRange r) const {
  return host().cluster().node(node).cache().overlapSize(r);
}

double OutOfOrderScheduler::estimatedRate(NodeId node, EventRange r) const {
  if (r.empty()) return host().config().cost.cachedSecPerEvent();
  const double f = static_cast<double>(cachedOnNode(node, r)) / static_cast<double>(r.size());
  const auto& cost = host().config().cost;
  return f * cost.cachedSecPerEvent() + (1.0 - f) * cost.uncachedSecPerEvent();
}

void OutOfOrderScheduler::requeueRemainderFront(Subjob rem) {
  if (rem.empty()) return;
  const NodeId home = host().cluster().bestCacheNode(rem.range);
  rem.yieldsToCached = false;
  if (home != kNoNode) {
    queueOf(home).push_front(rem);
  } else {
    uncachedQueue_.push_front(rem);
  }
}

void OutOfOrderScheduler::onJobArrival(const Job& job) {
  const std::uint64_t minSize = host().config().minSubjobEvents;
  auto pieces = splitByCaches(job, host().cluster(), minSize);

  std::vector<Subjob> uncached;
  for (const PlacedSubjob& piece : pieces) {
    if (!piece.cached()) {
      uncached.push_back(piece.subjob);
      continue;
    }
    const NodeId n = piece.cachedOn;
    if (host().isIdle(n)) {
      start(n, piece.subjob);
      continue;
    }
    // Preempt a run working on non-cached data (or stolen work), unless it
    // is a promoted starving job.
    const auto view = host().running(n);
    const bool preemptible = !promotedNodes_.contains(n) &&
                             (view.subjob.yieldsToCached ||
                              cachedOnNode(n, view.remaining) == 0);
    if (preemptible) {
      Subjob rem = host().preempt(n);
      requeueRemainderFront(rem);
      start(n, piece.subjob);
    } else {
      queueOf(n).push_back(piece.subjob);
    }
  }

  // Uncached pieces: feed any still-idle nodes, splitting further if there
  // are more nodes than pieces; queue the surplus.
  const auto idle = host().idleNodes();
  if (!idle.empty() && !uncached.empty()) {
    while (uncached.size() < idle.size()) {
      auto largest = std::max_element(uncached.begin(), uncached.end(),
                                      [](const Subjob& a, const Subjob& b) {
                                        return a.events() < b.events();
                                      });
      if (largest->events() < 2 * minSize) break;
      const auto halves = splitEqual(*largest, 2, minSize);
      *largest = halves[0];
      uncached.push_back(halves[1]);
    }
    std::size_t i = 0;
    for (NodeId n : idle) {
      if (i >= uncached.size()) break;
      start(n, uncached[i++]);
    }
    uncached.erase(uncached.begin(), uncached.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(uncached.size(), idle.size())));
  }
  for (const Subjob& sj : uncached) uncachedQueue_.push_back(sj);

  // Nodes can still be idle here (e.g. the whole job was cached on one
  // node): give them the usual node-available treatment, which includes
  // stealing from the most loaded node (Table 3).
  for (NodeId n = 0; n < host().numNodes(); ++n) {
    if (host().isIdle(n)) feedNode(n);
  }
}

std::size_t OutOfOrderScheduler::findStarving() const {
  std::size_t best = npos;
  const SimTime cutoff = host().now() - params_.starvationLimit;
  for (std::size_t i = 0; i < uncachedQueue_.size(); ++i) {
    if (uncachedQueue_[i].jobArrival >= cutoff) continue;
    if (best == npos || uncachedQueue_[i].jobArrival < uncachedQueue_[best].jobArrival) {
      best = i;
    }
  }
  return best;
}

void OutOfOrderScheduler::feedNode(NodeId node) {
  const std::uint64_t minSize = host().config().minSubjobEvents;

  // 1. Starvation guard: a job that waited too long in the no-cached-data
  // queue runs before anything else and is protected from preemption.
  if (const std::size_t starving = findStarving(); starving != npos) {
    const Subjob sj = uncachedQueue_[starving];
    uncachedQueue_.erase(uncachedQueue_.begin() + static_cast<std::ptrdiff_t>(starving));
    promotedNodes_.insert(node);
    ++promotions_;
    start(node, sj);
    return;
  }

  // 2. The node's own queue of locally cached subjobs.
  auto& own = queueOf(node);
  if (!own.empty()) {
    const Subjob sj = own.front();
    own.pop_front();
    start(node, sj);
    return;
  }

  // 3. The no-cached-data queue; share the front subjob among all currently
  // idle nodes (Table 3: "subjobs may be split ... to feed all nodes").
  if (!uncachedQueue_.empty()) {
    Subjob sj = uncachedQueue_.front();
    uncachedQueue_.pop_front();
    if (!uncachedQueue_.empty()) {
      // Enough queued subjobs for everyone: one whole subjob per node.
      start(node, sj);
      return;
    }
    // Last queued subjob and possibly several idle nodes: split it so all
    // of them are fed (Table 3).
    const auto idle = host().idleNodes();  // includes `node`
    const auto parts = splitEqual(sj, std::max<std::size_t>(1, idle.size()), minSize);
    start(node, parts[0]);
    std::size_t next = 1;
    for (NodeId n : idle) {
      if (next >= parts.size()) break;
      if (n == node || !host().isIdle(n)) continue;
      start(n, parts[next++]);
    }
    // Put unplaced parts back, preserving range order.
    for (std::size_t i = parts.size(); i > next; --i) {
      uncachedQueue_.push_front(parts[i - 1]);
    }
    return;
  }

  // 4. Work stealing from the most loaded node (Table 3): split its running
  // subjob so that both halves finish around the same time. (Queued subjobs
  // are not poached: Table 3 only describes splitting running work, which
  // is also what keeps remote-read opportunities rare in §4.2.)
  NodeId loaded = kNoNode;
  std::uint64_t maxLoad = 0;
  for (NodeId m = 0; m < host().numNodes(); ++m) {
    if (m == node) continue;
    std::uint64_t load = 0;
    for (const Subjob& q : queueOf(m)) load += q.events();
    const auto view = host().running(m);
    if (view.active) load += view.remaining.size();
    if (load > maxLoad) {
      maxLoad = load;
      loaded = m;
    }
  }
  if (loaded == kNoNode) return;

  const auto view = host().running(loaded);
  if (!view.active || view.remaining.size() < 2 * minSize) return;
  Subjob rem = host().preempt(loaded);
  if (rem.empty()) {
    // The victim's run was exactly complete: refill it, then retry here.
    // Terminates: every such preempt consumes one finished run.
    feedNode(loaded);
    feedNode(node);
    return;
  }
  if (rem.events() < 2 * minSize) {
    start(loaded, rem);
    return;
  }
  auto [keep, stolen] = splitProportional(rem, estimatedRate(loaded, rem.range),
                                          host().config().cost.uncachedSecPerEvent(), minSize);
  if (stolen.empty()) {
    start(loaded, keep);
    return;
  }
  stolen.yieldsToCached = true;
  start(loaded, keep);
  start(node, stolen);
}

void OutOfOrderScheduler::onRunFinished(NodeId node, const RunReport&) {
  promotedNodes_.erase(node);
  feedNode(node);
}

}  // namespace ppsched
