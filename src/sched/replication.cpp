#include "sched/replication.h"

#include <algorithm>

namespace ppsched {

double ReplicationScheduler::uncontendedRemoteSecPerEvent(NodeId node,
                                                          bool crossSwitch) const {
  const SimConfig& cfg = host().config();
  double cpu = cfg.cost.cpuSecPerEvent;
  if (!cfg.nodeSpeedFactors.empty()) {
    cpu /= cfg.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  double bps = std::min(cfg.cost.remoteBytesPerSec, cfg.network.nicBytesPerSec);
  // The uncontended cost of the *chosen path*: a cross-switch read rides
  // the uplink even on an idle network. Charging it here keeps the
  // congestion gate a measure of sharing, not of topology — the topology
  // preference already happened in the ranking.
  if (crossSwitch && cfg.network.uplinkBytesPerSec > 0.0) {
    bps = std::min(bps, cfg.network.uplinkBytesPerSec);
  }
  const double transfer = cfg.cost.bytesPerEvent / bps;
  return cfg.cost.pipelined ? std::max(transfer, cpu) : transfer + cpu;
}

RunOptions ReplicationScheduler::optionsFor(NodeId node, const Subjob& sj) {
  // §4.2: remote reads happen when "a node is overloaded and other nodes
  // take work from it without having the corresponding data" — i.e. only
  // for stolen subjobs (yieldsToCached), not for any subjob that happens to
  // overlap another node's cache. This matches the paper's mechanism and
  // keeps replication rare.
  RunOptions opts;
  if (!sj.yieldsToCached) return opts;

  if (host().config().network.enabled && params_.topologyAware) {
    // Topology-aware placement: rank candidate serving nodes by the host's
    // contention-aware cost feedback (same-switch sources win ties — their
    // flows never cross an uplink) and take the cheapest one. By
    // construction this is never worse than the raw cache-content pick.
    const auto candidates = host().rankPlacements(node, sj.range);
    if (candidates.empty()) return opts;
    const PlacementCandidate& best = candidates.front();
    const double tertiary = host().estimatedSecPerEvent(node, kNoNode, DataSource::Tertiary);
    // Even the best source can lose to tertiary streaming when every path
    // in is congested; reading remotely then only adds traffic.
    if (best.secPerEvent >= tertiary) return opts;
    opts.remoteFrom = best.source;
    opts.replicationThreshold = params_.replicationThreshold;
    // Congested path: keep the (still cheapest) remote read but withhold
    // the replica copy — the copy would ride the same loaded links and
    // amplify the congestion that made the path expensive.
    if (params_.replicaCongestionFactor > 0.0 &&
        best.secPerEvent > params_.replicaCongestionFactor *
                               uncontendedRemoteSecPerEvent(node, !best.sameSwitch)) {
      opts.replicationThreshold = 0;
    }
    return opts;
  }

  // Network model off (or topology-awareness disabled): the paper's
  // cache-content heuristic, bit-identical to the pre-topology policy.
  const NodeId best = host().cluster().bestCacheNode(sj.range);
  if (best != kNoNode && best != node) {
    // With the network model on, check the host's contention-aware cost
    // feedback: a remote read over congested links can be slower than
    // streaming from tertiary storage, in which case reading remotely (and
    // replicating on top of it) only adds traffic. The guard is inert when
    // the model is disabled — the estimates then reduce to the static cost
    // model, where remote reads always win.
    if (host().config().network.enabled) {
      const double remote = host().estimatedSecPerEvent(node, best, DataSource::RemoteCache);
      const double tertiary = host().estimatedSecPerEvent(node, kNoNode, DataSource::Tertiary);
      if (remote >= tertiary) return opts;
    }
    opts.remoteFrom = best;
    opts.replicationThreshold = params_.replicationThreshold;
  }
  return opts;
}

}  // namespace ppsched
