#include "sched/replication.h"

namespace ppsched {

RunOptions ReplicationScheduler::optionsFor(NodeId node, const Subjob& sj) {
  // §4.2: remote reads happen when "a node is overloaded and other nodes
  // take work from it without having the corresponding data" — i.e. only
  // for stolen subjobs (yieldsToCached), not for any subjob that happens to
  // overlap another node's cache. This matches the paper's mechanism and
  // keeps replication rare.
  RunOptions opts;
  if (!sj.yieldsToCached) return opts;
  const NodeId best = host().cluster().bestCacheNode(sj.range);
  if (best != kNoNode && best != node) {
    opts.remoteFrom = best;
    opts.replicationThreshold = params_.replicationThreshold;
  }
  return opts;
}

}  // namespace ppsched
