#include "sched/replication.h"

namespace ppsched {

AccessPlan ReplicationScheduler::planFor(NodeId node, const Subjob& sj) {
  // §4.2: remote reads happen when "a node is overloaded and other nodes
  // take work from it without having the corresponding data" — i.e. only
  // for stolen subjobs (yieldsToCached), not for any subjob that happens to
  // overlap another node's cache. This matches the paper's mechanism and
  // keeps replication rare. The gate applies in every mode: the fixed
  // strategy arms vary the access mechanism, not the scheduling rule.
  if (!sj.yieldsToCached) return {};

  switch (params_.mode) {
    case Mode::NeverRemote:
      return {};
    case Mode::AlwaysRemote:
    case Mode::AlwaysReplicate: {
      // Fixed mechanism: take the cheapest ranked source unconditionally —
      // no tertiary gate, no congestion gate. These arms exist to measure
      // what the planner's gates are worth (bench/ext_strategy_matrix).
      const auto candidates = host().rankPlacements(node, sj.range);
      if (candidates.empty()) return {};
      AccessPlan p;
      p.source = DataSource::RemoteCache;
      p.servingNode = candidates.front().source;
      p.secPerEvent = candidates.front().secPerEvent;
      p.cachedEvents = candidates.front().cachedEvents;
      p.replicationThreshold = params_.mode == Mode::AlwaysReplicate ? 1 : 0;
      return p;
    }
    case Mode::Planned:
      break;
  }

  // Planned: the host's access planner evaluates every viable strategy
  // (ranked remote sources gated against tertiary streaming, congestion-
  // gated replica copies, tertiary fallback) and returns them ranked;
  // front() is the legacy §4.2 heuristic bit-for-bit (golden-pinned).
  AccessGoal goal;
  goal.replicationThreshold = params_.replicationThreshold;
  goal.replicaCongestionFactor = params_.replicaCongestionFactor;
  goal.topologyAware = params_.topologyAware;
  return host().planAccess(node, sj.range, goal).front();
}

}  // namespace ppsched
