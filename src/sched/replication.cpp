#include "sched/replication.h"

namespace ppsched {

RunOptions ReplicationScheduler::optionsFor(NodeId node, const Subjob& sj) {
  // §4.2: remote reads happen when "a node is overloaded and other nodes
  // take work from it without having the corresponding data" — i.e. only
  // for stolen subjobs (yieldsToCached), not for any subjob that happens to
  // overlap another node's cache. This matches the paper's mechanism and
  // keeps replication rare.
  RunOptions opts;
  if (!sj.yieldsToCached) return opts;
  const NodeId best = host().cluster().bestCacheNode(sj.range);
  if (best != kNoNode && best != node) {
    // With the network model on, check the host's contention-aware cost
    // feedback: a remote read over congested links can be slower than
    // streaming from tertiary storage, in which case reading remotely (and
    // replicating on top of it) only adds traffic. The guard is inert when
    // the model is disabled — the estimates then reduce to the static cost
    // model, where remote reads always win.
    if (host().config().network.enabled) {
      const double remote = host().estimatedSecPerEvent(node, best, DataSource::RemoteCache);
      const double tertiary = host().estimatedSecPerEvent(node, kNoNode, DataSource::Tertiary);
      if (remote >= tertiary) return opts;
    }
    opts.remoteFrom = best;
    opts.replicationThreshold = params_.replicationThreshold;
  }
  return opts;
}

}  // namespace ppsched
