#include "sched/splitting.h"

#include <algorithm>

#include "sched/split_util.h"

namespace ppsched {

namespace {
Subjob wholeJob(const Job& job) { return wholeSubjob(job); }
}  // namespace

Subjob SplittingScheduler::preemptTracked(NodeId node) {
  const JobId victim = host().running(node).subjob.job;
  Subjob rem = host().preempt(node);
  auto it = active_.find(victim);
  if (it != active_.end()) {
    --it->second.runningNodes;
    // A preempt can land exactly at run completion; tidy up as
    // onRunFinished would have.
    if (rem.empty() && host().jobDone(victim)) active_.erase(it);
  }
  return rem;
}

void SplittingScheduler::onJobArrival(const Job& job) {
  const auto idle = host().idleNodes();
  const std::uint64_t minSize = host().config().minSubjobEvents;

  if (!idle.empty()) {
    // Split into equal subjobs, one per idle node (Table 1).
    const auto pieces = splitEqual(wholeJob(job), idle.size(), minSize);
    JobInfo info;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      host().startRun(idle[i], pieces[i]);
      ++info.runningNodes;
    }
    active_.emplace(job.id, std::move(info));
    return;
  }

  // No idle node: release one node from the job with the largest
  // nodes-per-remaining-event ratio, if any job runs on several nodes.
  JobId victimJob = kNoJob;
  double bestRatio = -1.0;
  for (const auto& [id, info] : active_) {
    if (info.runningNodes < 2) continue;
    const auto remaining = host().remainingOf(id).size();
    const double ratio =
        static_cast<double>(info.runningNodes) / static_cast<double>(std::max<std::uint64_t>(1, remaining));
    if (ratio > bestRatio) {
      bestRatio = ratio;
      victimJob = id;
    }
  }
  if (victimJob != kNoJob) {
    // Victim node: the one running this job's smallest remaining piece
    // (least disruption; Table 1 leaves the choice open).
    NodeId victimNode = kNoNode;
    std::uint64_t smallest = 0;
    for (NodeId n = 0; n < host().numNodes(); ++n) {
      const auto view = host().running(n);
      if (!view.active || view.subjob.job != victimJob) continue;
      if (victimNode == kNoNode || view.remaining.size() < smallest) {
        victimNode = n;
        smallest = view.remaining.size();
      }
    }
    Subjob rem = preemptTracked(victimNode);
    if (!rem.empty()) active_[victimJob].suspended.push_front(rem);
    host().startRun(victimNode, wholeJob(job));
    active_[job.id].runningNodes = 1;
    return;
  }

  // As many jobs running as nodes: queue.
  pending_.push_back(job);
}

void SplittingScheduler::allocateToRunning(NodeId node) {
  const std::uint64_t minSize = host().config().minSubjobEvents;
  // Find the largest subjob running on the cluster.
  NodeId largestNode = kNoNode;
  std::uint64_t largest = 0;
  for (NodeId n = 0; n < host().numNodes(); ++n) {
    const auto view = host().running(n);
    if (!view.active) continue;
    if (view.remaining.size() > largest) {
      largest = view.remaining.size();
      largestNode = n;
    }
  }
  if (largestNode == kNoNode || largest < 2 * minSize) return;  // nothing splittable

  const JobId jobId = host().running(largestNode).subjob.job;
  Subjob rem = preemptTracked(largestNode);
  if (rem.empty()) return;
  if (rem.events() < 2 * minSize) {
    // Progress since our snapshot made it too small after all: put it back.
    host().startRun(largestNode, rem);
    ++active_[jobId].runningNodes;
    return;
  }
  const auto halves = splitEqual(rem, 2, minSize);
  host().startRun(largestNode, halves[0]);
  host().startRun(node, halves[1]);
  active_[jobId].runningNodes += 2;
}

void SplittingScheduler::onRunFinished(NodeId node, const RunReport& report) {
  const JobId jobId = report.subjob.job;
  auto it = active_.find(jobId);
  if (it != active_.end()) --it->second.runningNodes;

  if (report.jobCompleted) {
    if (it != active_.end()) active_.erase(it);
    if (!pending_.empty()) {
      const Job next = pending_.front();
      pending_.pop_front();
      host().startRun(node, wholeJob(next));
      active_[next.id].runningNodes = 1;
      return;
    }
    allocateToRunning(node);
    return;
  }

  // Subjob end (job still alive): resume a suspended piece of the same job
  // first.
  if (it != active_.end() && !it->second.suspended.empty()) {
    Subjob sj = it->second.suspended.front();
    it->second.suspended.pop_front();
    host().startRun(node, sj);
    ++it->second.runningNodes;
    return;
  }
  allocateToRunning(node);
}

}  // namespace ppsched
