#include "sched/eevdf.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "sched/split_util.h"

namespace ppsched {

namespace {

/// Eligibility must tolerate the float error the running sums accumulate;
/// scale the slack with the magnitude of V.
double eligibilityEps(double v) { return 1e-9 * (1.0 + std::abs(v)); }

[[noreturn]] void failSpec(const std::string& what) {
  throw std::invalid_argument("qos: " + what);
}

double parseSpecNumber(std::string_view field, const char* what) {
  const std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (buf.empty() || end == buf.c_str() || *end != '\0' || !std::isfinite(v)) {
    failSpec(std::string("malformed ") + what + " value '" + buf + "'");
  }
  return v;
}

}  // namespace

// --------------------------------------------------------------------------
// QosParams spec

QosParams parseQosSpec(const std::string& spec) {
  QosParams qos;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) failSpec("expected key=value, got '" + std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "iweight") {
      qos.interactiveWeight = parseSpecNumber(value, "iweight");
    } else if (key == "bweight") {
      qos.bulkWeight = parseSpecNumber(value, "bweight");
    } else if (key == "ideadline") {
      qos.interactiveDeadline = parseSpecNumber(value, "ideadline");
    } else if (key == "bdeadline") {
      qos.bulkDeadline = parseSpecNumber(value, "bdeadline");
    } else if (key == "window") {
      const double w = parseSpecNumber(value, "window");
      if (w < 0.0 || w > 1e18 || w != std::floor(w)) {
        failSpec("window must be a non-negative integer event count");
      }
      qos.affinityWindowEvents = static_cast<std::uint64_t>(w);
    } else if (key == "igroups") {
      qos.interactiveGroups.clear();
      std::string_view labels = value;
      while (!labels.empty()) {
        const std::size_t bar = labels.find('|');
        const std::string_view label =
            bar == std::string_view::npos ? labels : labels.substr(0, bar);
        labels = bar == std::string_view::npos ? std::string_view{} : labels.substr(bar + 1);
        if (!label.empty()) qos.interactiveGroups.emplace_back(label);
      }
    } else {
      failSpec("unknown key '" + std::string(key) + "'");
    }
  }
  if (qos.interactiveWeight <= 0.0 || qos.bulkWeight <= 0.0) {
    failSpec("weights must be > 0");
  }
  if (qos.interactiveDeadline < 0.0 || qos.bulkDeadline < 0.0) {
    failSpec("deadlines must be >= 0");
  }
  return qos;
}

std::string formatQosSpec(const QosParams& qos) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "iweight=%g,bweight=%g,ideadline=%g,bdeadline=%g,window=%llu",
                qos.interactiveWeight, qos.bulkWeight, qos.interactiveDeadline, qos.bulkDeadline,
                static_cast<unsigned long long>(qos.affinityWindowEvents));
  std::string out = buf;
  if (!qos.interactiveGroups.empty()) {
    out += ",igroups=";
    for (std::size_t i = 0; i < qos.interactiveGroups.size(); ++i) {
      if (i > 0) out += '|';
      out += qos.interactiveGroups[i];
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// EevdfQueue

double EevdfQueue::virtualTime() const { return sumW_ > 0.0 ? sumWV_ / sumW_ : idleV_; }

void EevdfQueue::activate(const AccountKey&, Account& acct, std::uint64_t requestEvents) {
  const double v = virtualTime();
  // Join at the later of the account's own clock and V: an account that
  // over-served before draining keeps its debt; one owed service at drain
  // time forfeits it (the standard rule — lag does not accrue while idle).
  // The carried debt is capped at one incoming request so a long-idle
  // heavy hitter is delayed, not starved.
  acct.vruntime = std::max(acct.vruntime, v);
  acct.vruntime = std::min(acct.vruntime, v + static_cast<double>(requestEvents) / acct.weight);
  acct.activationSeq = activationCounter_++;
  sumW_ += acct.weight;
  sumWV_ += acct.weight * acct.vruntime;
}

void EevdfQueue::deactivate(Account& acct) {
  sumW_ -= acct.weight;
  sumWV_ -= acct.weight * acct.vruntime;
  if (sumW_ <= 1e-12) {
    // Last account drained: freeze V at its clock (they coincide when one
    // account remains, since sum-lag is identically zero) and clear the
    // sums so float residue cannot accumulate across idle periods.
    sumW_ = 0.0;
    sumWV_ = 0.0;
    idleV_ = acct.vruntime;
  }
}

void EevdfQueue::enqueue(const Subjob& sj, double weight) {
  if (sj.empty()) return;
  if (!(weight > 0.0)) throw std::invalid_argument("eevdf: weight must be > 0");
  const AccountKey key{sj.user, sj.qos};
  auto [it, inserted] = accounts_.try_emplace(key);
  Account& acct = it->second;
  if (inserted) acct.vruntime = virtualTime();
  if (acct.active() && acct.weight != weight) {
    // Weight changes apply account-wide (sums track w and w*v).
    sumW_ += weight - acct.weight;
    sumWV_ += (weight - acct.weight) * acct.vruntime;
  }
  acct.weight = weight;
  if (!acct.active()) activate(key, acct, sj.events());
  acct.queue.push_back(sj);
  ++queuedSubjobs_;
  queuedEvents_ += sj.events();
  maxRequestEvents_ = std::max(maxRequestEvents_, sj.events());
}

Subjob EevdfQueue::take(const AccountKey&, Account& acct) {
  Subjob sj = acct.queue.front();
  acct.queue.pop_front();
  const auto r = static_cast<double>(sj.events());
  acct.vruntime += r / acct.weight;
  sumWV_ += r;  // d(w * v) = w * (r / w)
  --queuedSubjobs_;
  queuedEvents_ -= sj.events();
  if (!acct.active()) deactivate(acct);
  return sj;
}

std::optional<Subjob> EevdfQueue::pop() {
  return popPreferring([](const Subjob&) { return 0.0; }, 0);
}

std::optional<Subjob> EevdfQueue::popPreferring(const std::function<double(const Subjob&)>& cost,
                                                std::uint64_t windowEvents) {
  if (queuedSubjobs_ == 0) return std::nullopt;
  const double v = virtualTime();
  const double eps = eligibilityEps(v);

  // Pass 1: the eligible account with the earliest virtual deadline, ties
  // broken by activation order then key (std::map iteration is key-ordered,
  // making the whole order deterministic).
  struct Choice {
    std::map<AccountKey, Account>::iterator it;
    double deadline = 0.0;
    std::uint64_t seq = 0;
  };
  std::optional<Choice> best;
  std::optional<Choice> fallback;  // min vruntime, if float slack excludes all
  for (auto it = accounts_.begin(); it != accounts_.end(); ++it) {
    Account& acct = it->second;
    if (!acct.active()) continue;
    const double deadline =
        acct.vruntime + static_cast<double>(acct.queue.front().events()) / acct.weight;
    const Choice c{it, deadline, acct.activationSeq};
    if (!fallback || acct.vruntime < fallback->it->second.vruntime) fallback = c;
    if (acct.vruntime > v + eps) continue;  // not eligible: ahead of its share
    if (!best || deadline < best->deadline ||
        (deadline == best->deadline && c.seq < best->seq)) {
      best = c;
    }
  }
  // The weighted mean V is >= the minimum vruntime, so an eligible account
  // always exists mathematically; the fallback only covers float slack.
  if (!best) best = fallback;

  if (windowEvents > 0) {
    // Pass 2: among eligible heads within the window of the earliest
    // deadline — (d_i - d*) * w_i is the service (events) the winner would
    // forfeit — prefer the cheapest-to-access head. Strict order wins ties.
    const double dStar = best->deadline;
    double bestCost = std::numeric_limits<double>::infinity();
    for (auto it = accounts_.begin(); it != accounts_.end(); ++it) {
      Account& acct = it->second;
      if (!acct.active() || acct.vruntime > v + eps) continue;
      const double deadline =
          acct.vruntime + static_cast<double>(acct.queue.front().events()) / acct.weight;
      if ((deadline - dStar) * acct.weight > static_cast<double>(windowEvents)) continue;
      const double c = cost(acct.queue.front());
      const Choice candidate{it, deadline, acct.activationSeq};
      const bool better =
          c < bestCost ||
          (c == bestCost && (candidate.deadline < best->deadline ||
                             (candidate.deadline == best->deadline && candidate.seq < best->seq)));
      if (better) {
        best = candidate;
        bestCost = c;
      }
    }
  }
  return take(best->it->first, best->it->second);
}

void EevdfQueue::refund(UserId user, QosClass cls, std::uint64_t events) {
  const auto it = accounts_.find(AccountKey{user, cls});
  if (it == accounts_.end() || events == 0) return;
  Account& acct = it->second;
  acct.vruntime -= static_cast<double>(events) / acct.weight;
  if (acct.active()) sumWV_ -= static_cast<double>(events);
}

std::vector<EevdfQueue::AccountView> EevdfQueue::accounts() const {
  std::vector<AccountView> out;
  out.reserve(accounts_.size());
  const double v = virtualTime();
  for (const auto& [key, acct] : accounts_) {
    AccountView view;
    view.key = key;
    view.weight = acct.weight;
    view.vruntime = acct.vruntime;
    view.active = acct.active();
    view.lag = acct.active() ? acct.weight * (v - acct.vruntime) : 0.0;
    view.queuedSubjobs = acct.queue.size();
    for (const Subjob& sj : acct.queue) view.queuedEvents += sj.events();
    out.push_back(view);
  }
  return out;
}

// --------------------------------------------------------------------------
// EevdfScheduler

void EevdfScheduler::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  const SimConfig& cfg = host.config();
  const double disk = cfg.cost.diskSecPerEvent();
  cachedSecPerEvent_ =
      cfg.cost.pipelined ? std::max(disk, cfg.cost.cpuSecPerEvent) : disk + cfg.cost.cpuSecPerEvent;
}

std::uint64_t EevdfScheduler::requestEvents(QosClass cls) const {
  std::uint64_t req = std::max<std::uint64_t>(1, params_.stripeEvents);
  const Duration deadline = params_.qos.deadlineOf(cls);
  if (deadline > 0.0 && cachedSecPerEvent_ > 0.0) {
    // A relative deadline maps to a request-size cap: smaller requests get
    // earlier virtual deadlines, which is how EEVDF trades throughput share
    // for latency without reservations.
    const double cap = deadline / cachedSecPerEvent_;
    req = std::min(req, static_cast<std::uint64_t>(std::max(1.0, cap)));
  }
  return std::max(req, host().config().minSubjobEvents);
}

void EevdfScheduler::onJobArrival(const Job& job) {
  const std::uint64_t req = requestEvents(job.qos);
  const std::uint64_t parts = (job.events() + req - 1) / req;
  const double weight = params_.qos.weightOf(job.qos);
  for (const Subjob& piece :
       splitEqual(wholeSubjob(job), parts, host().config().minSubjobEvents)) {
    queue_.enqueue(piece, weight);
  }
  feedIdleNodes();
}

void EevdfScheduler::onRunFinished(NodeId node, const RunReport&) { feedNode(node); }

void EevdfScheduler::onNodeDown(NodeId, const RunReport* lost) {
  if (lost == nullptr || lost->remainder.empty()) return;
  // The full request was charged at dispatch; give back the unprocessed
  // part before re-queueing it (it is charged again when re-dispatched).
  const Subjob& rem = lost->remainder;
  queue_.refund(rem.user, rem.qos, rem.events());
  queue_.enqueue(rem, params_.qos.weightOf(rem.qos));
}

void EevdfScheduler::onNodeUp(NodeId node) { feedNode(node); }

void EevdfScheduler::feedIdleNodes() {
  for (const NodeId node : host().idleNodes()) {
    if (queue_.empty()) return;
    feedNode(node);
  }
}

void EevdfScheduler::feedNode(NodeId node) {
  if (queue_.empty() || !host().isIdle(node)) return;
  const auto planFor = [&](const Subjob& sj) {
    return host().planAccess(node, sj.range).front();
  };
  const auto sj = queue_.popPreferring(
      [&](const Subjob& head) { return planFor(head).secPerEvent; },
      params_.qos.affinityWindowEvents);
  if (!sj) return;
  host().startRun(node, *sj, planFor(*sj));
}

}  // namespace ppsched
