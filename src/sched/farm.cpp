#include "sched/farm.h"

namespace ppsched {

namespace {
Subjob wholeJob(const Job& job) { return wholeSubjob(job); }
}  // namespace

void FarmScheduler::onJobArrival(const Job& job) {
  const auto idle = host().idleNodes();
  if (!idle.empty()) {
    host().startRun(idle.front(), wholeJob(job));
  } else {
    queue_.push_back(job);
  }
}

void FarmScheduler::onRunFinished(NodeId node, const RunReport&) {
  if (!queue_.empty()) {
    const Job job = queue_.front();
    queue_.pop_front();
    host().startRun(node, wholeJob(job));
  }
}

}  // namespace ppsched
