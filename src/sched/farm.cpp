#include "sched/farm.h"

namespace ppsched {

namespace {
Subjob wholeJob(const Job& job) {
  Subjob sj;
  sj.job = job.id;
  sj.range = job.range;
  sj.jobArrival = job.arrival;
  return sj;
}
}  // namespace

void FarmScheduler::onJobArrival(const Job& job) {
  const auto idle = host().idleNodes();
  if (!idle.empty()) {
    host().startRun(idle.front(), wholeJob(job));
  } else {
    queue_.push_back(job);
  }
}

void FarmScheduler::onRunFinished(NodeId node, const RunReport&) {
  if (!queue_.empty()) {
    const Job job = queue_.front();
    queue_.pop_front();
    host().startRun(node, wholeJob(job));
  }
}

}  // namespace ppsched
