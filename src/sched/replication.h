// Out-of-order scheduling with inter-node data replication (§4.2).
//
// When a node runs a subjob whose data sits in another node's cache, it
// reads the data remotely from that node's disk instead of re-fetching it
// from tertiary storage. Remote reads do not populate the local cache by
// default; an extent is replicated (copied into the local cache) only once
// its remote access count reaches `replicationThreshold` (paper: the 3rd
// access), following the rent-or-buy rule of [3, 9].
//
// The paper's finding — reproduced by bench/sec42_replication — is that
// replication brings no measurable improvement, because out-of-order
// scheduling spreads every large segment over many nodes anyway. That holds
// on a free LAN; with the flow-level network model enabled the serving node
// is chosen topology-aware via ISchedulerHost::rankPlacements (cheapest
// contention-aware estimatedSecPerEvent, same-switch sources preferred),
// and replica copies are withheld when the chosen path is congested so the
// copy traffic stays off loaded uplinks (bench/sensitivity_scale shows the
// difference at 100+ nodes). With the network model disabled the policy is
// bit-identical to the paper heuristic (pinned by golden-bit tests).
#pragma once

#include "sched/out_of_order.h"

namespace ppsched {

class ReplicationScheduler : public OutOfOrderScheduler {
 public:
  /// How stolen subjobs access remote data. Planned delegates to the host's
  /// access planner (the default); the fixed modes pin one mechanism for
  /// strategy-matrix comparisons (bench/ext_strategy_matrix).
  enum class Mode {
    Planned,          ///< take planAccess().front() — contention-aware
    AlwaysRemote,     ///< cheapest ranked source, never replicate
    AlwaysReplicate,  ///< cheapest ranked source, replicate on first access
    NeverRemote,      ///< local/tertiary only (no remote reads at all)
  };

  struct Params {
    OutOfOrderScheduler::Params base;
    Mode mode = Mode::Planned;
    /// Replicate on the Nth remote access (paper: 3). 0 disables
    /// replication but keeps remote reads.
    int replicationThreshold = 3;
    /// With the network model enabled, pick the serving node by ranked
    /// contention-aware cost instead of raw cache content, and withhold
    /// replica copies on congested paths. false = the paper heuristic even
    /// with the model on (the bench's "cache-only" arm).
    bool topologyAware = true;
    /// Congestion gate for replica copies: withhold the copy when the
    /// chosen source's estimated cost exceeds this multiple of the same
    /// path's uncontended cost (the copy would ride the same loaded links
    /// as the read). Only consulted when topologyAware and the network
    /// model are on.
    double replicaCongestionFactor = 1.5;
  };

  ReplicationScheduler() = default;
  explicit ReplicationScheduler(Params params)
      : OutOfOrderScheduler(params.base), params_(params) {}

  [[nodiscard]] std::string name() const override { return "replication"; }

 protected:
  AccessPlan planFor(NodeId node, const Subjob& sj) override;

 private:
  Params params_;
};

}  // namespace ppsched
