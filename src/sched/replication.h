// Out-of-order scheduling with inter-node data replication (§4.2).
//
// When a node runs a subjob whose data sits in another node's cache, it
// reads the data remotely from that node's disk instead of re-fetching it
// from tertiary storage. Remote reads do not populate the local cache by
// default; an extent is replicated (copied into the local cache) only once
// its remote access count reaches `replicationThreshold` (paper: the 3rd
// access), following the rent-or-buy rule of [3, 9].
//
// The paper's finding — reproduced by bench/sec42_replication — is that
// replication brings no measurable improvement, because out-of-order
// scheduling spreads every large segment over many nodes anyway.
#pragma once

#include "sched/out_of_order.h"

namespace ppsched {

class ReplicationScheduler final : public OutOfOrderScheduler {
 public:
  struct Params {
    OutOfOrderScheduler::Params base;
    /// Replicate on the Nth remote access (paper: 3). 0 disables
    /// replication but keeps remote reads.
    int replicationThreshold = 3;
  };

  ReplicationScheduler() = default;
  explicit ReplicationScheduler(Params params)
      : OutOfOrderScheduler(params.base), params_(params) {}

  [[nodiscard]] std::string name() const override { return "replication"; }

 protected:
  RunOptions optionsFor(NodeId node, const Subjob& sj) override;

 private:
  Params params_;
};

}  // namespace ppsched
