// Adaptive delay scheduling (§6).
//
// Chooses "the minimal period delay that allows to sustain the current
// load", using performance parameters like those of Figs 5 and 6. Two
// controllers are provided:
//  - TableAdaptiveDelay: the paper's approach — a calibration table mapping
//    observed load to the smallest sufficient delay. A built-in default is
//    calibrated for the paper configuration (cache 100 GB); benches can
//    inject their own measured tables.
//  - FeedbackAdaptiveDelay: an online alternative that escalates the delay
//    ladder when the in-system job count grows and de-escalates when the
//    cluster drains (no offline calibration needed).
#pragma once

#include <memory>
#include <vector>

#include "sched/delayed.h"

namespace ppsched {

/// One calibration row: loads up to `maxLoadJobsPerHour` are sustainable
/// with `delay`.
struct AdaptiveLevel {
  double maxLoadJobsPerHour;
  Duration delay;
};

class TableAdaptiveDelay final : public DelayController {
 public:
  /// Levels must be sorted by ascending maxLoadJobsPerHour; loads above the
  /// last level use the last level's delay.
  explicit TableAdaptiveDelay(std::vector<AdaptiveLevel> levels);

  Duration nextPeriod(const ISchedulerHost&, double observedJobsPerHour) override;

  /// Default calibration for the paper's configuration with a 100 GB cache,
  /// measured from this repository's Fig 5/6 reproductions.
  static std::vector<AdaptiveLevel> defaultTable();

  [[nodiscard]] std::size_t currentLevel() const { return level_; }

 private:
  /// De-escalation margin: step down only when the observed load is below
  /// this fraction of the lower band's limit.
  static constexpr double kHysteresis = 0.92;

  std::vector<AdaptiveLevel> levels_;
  std::size_t level_ = 0;
};

class FeedbackAdaptiveDelay final : public DelayController {
 public:
  struct Params {
    /// Delay ladder, ascending (default 0, 11 h, 2 d, 1 week — the delays
    /// the paper evaluates in Fig 5).
    std::vector<Duration> ladder{0.0, 11 * units::hour, 2 * units::day, units::week};
    /// Escalate when more jobs than this are in the system...
    std::size_t highWater = 30;
    /// ... and de-escalate below this.
    std::size_t lowWater = 10;
  };

  FeedbackAdaptiveDelay() : FeedbackAdaptiveDelay(Params()) {}
  explicit FeedbackAdaptiveDelay(Params params);

  Duration nextPeriod(const ISchedulerHost& host, double observedJobsPerHour) override;

  [[nodiscard]] std::size_t currentLevel() const { return level_; }

 private:
  Params params_;
  std::size_t level_ = 0;
};

/// Convenience factory: the paper's adaptive delay policy (§6).
std::unique_ptr<DelayedScheduler> makeAdaptiveScheduler(
    DelayedParams params, std::vector<AdaptiveLevel> table = {});

}  // namespace ppsched
