#include "sched/cache_oriented.h"

#include <algorithm>

namespace ppsched {

std::uint64_t CacheOrientedScheduler::cachedOnNode(NodeId node, EventRange r) const {
  return host().cluster().node(node).cache().overlapSize(r);
}

Subjob CacheOrientedScheduler::preemptTracked(NodeId node) {
  const JobId victim = host().running(node).subjob.job;
  Subjob rem = host().preempt(node);
  auto it = active_.find(victim);
  if (it != active_.end()) {
    --it->second.runningNodes;
    if (rem.empty() && host().jobDone(victim)) active_.erase(it);
  }
  return rem;
}

void CacheOrientedScheduler::startJobOnIdleNodes(const Job& job, const std::vector<NodeId>& idle) {
  const std::uint64_t minSize = host().config().minSubjobEvents;
  auto pieces = splitByCaches(job, host().cluster(), minSize);

  // Fewer pieces than idle nodes: subdivide the largest piece until every
  // node can be fed (or nothing is splittable). Halves of a fully cached
  // piece stay fully cached on the same node.
  while (pieces.size() < idle.size()) {
    auto largest = std::max_element(pieces.begin(), pieces.end(),
                                    [](const PlacedSubjob& a, const PlacedSubjob& b) {
                                      return a.subjob.events() < b.subjob.events();
                                    });
    if (largest == pieces.end() || largest->subjob.events() < 2 * minSize) break;
    const auto halves = splitEqual(largest->subjob, 2, minSize);
    PlacedSubjob second = *largest;
    largest->subjob = halves[0];
    second.subjob = halves[1];
    pieces.push_back(second);
  }

  // Place: cached pieces on their own node first, then fill the remaining
  // idle nodes with the largest remaining pieces.
  JobInfo info;
  std::vector<bool> pieceUsed(pieces.size(), false);
  std::vector<NodeId> unfilled;
  for (NodeId n : idle) {
    std::size_t best = pieces.size();
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (pieceUsed[i] || pieces[i].cachedOn != n) continue;
      if (best == pieces.size() || pieces[i].subjob.events() > pieces[best].subjob.events()) {
        best = i;
      }
    }
    if (best < pieces.size()) {
      pieceUsed[best] = true;
      host().startRun(n, pieces[best].subjob);
      ++info.runningNodes;
    } else {
      unfilled.push_back(n);
    }
  }
  for (NodeId n : unfilled) {
    std::size_t best = pieces.size();
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (pieceUsed[i]) continue;
      if (best == pieces.size() || pieces[i].subjob.events() > pieces[best].subjob.events()) {
        best = i;
      }
    }
    if (best == pieces.size()) break;  // more nodes than pieces (tiny job)
    pieceUsed[best] = true;
    host().startRun(n, pieces[best].subjob);
    ++info.runningNodes;
  }
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (!pieceUsed[i]) info.suspended.push_back(pieces[i]);
  }
  active_[job.id] = std::move(info);
}

void CacheOrientedScheduler::onJobArrival(const Job& job) {
  const auto idle = host().idleNodes();
  if (!idle.empty()) {
    startJobOnIdleNodes(job, idle);
    return;
  }

  // No idle node. Release a node so the new job starts now (FCFS), provided
  // the victim's job keeps at least one other node. Node selection maximizes
  // cached data access (Table 2): prefer a node where a piece of the new job
  // is cached and whose current run profits least from its own cache.
  const std::uint64_t minSize = host().config().minSubjobEvents;
  const auto pieces = splitByCaches(job, host().cluster(), minSize);
  NodeId victimNode = kNoNode;
  double bestVictimScore = 0.0;
  for (NodeId n = 0; n < host().numNodes(); ++n) {
    const auto view = host().running(n);
    if (!view.active) continue;
    auto it = active_.find(view.subjob.job);
    if (it == active_.end() || it->second.runningNodes < 2) continue;
    const auto remaining = view.remaining.size();
    if (remaining == 0) continue;
    const double usefulness =
        static_cast<double>(cachedOnNode(n, view.remaining)) / static_cast<double>(remaining);
    double newJobBenefit = 0.0;
    for (const PlacedSubjob& piece : pieces) {
      const double f = static_cast<double>(cachedOnNode(n, piece.subjob.range)) /
                       static_cast<double>(piece.subjob.events());
      newJobBenefit = std::max(newJobBenefit, f);
    }
    const double score = 1.0 + newJobBenefit - usefulness;  // > 0 for any candidate
    if (score > bestVictimScore) {
      bestVictimScore = score;
      victimNode = n;
    }
  }
  if (victimNode != kNoNode) {
    const JobId victimJob = host().running(victimNode).subjob.job;
    Subjob rem = preemptTracked(victimNode);
    if (!rem.empty()) {
      PlacedSubjob susp;
      susp.subjob = rem;
      susp.cachedOn = host().cluster().bestCacheNode(rem.range);
      active_[victimJob].suspended.push_front(susp);
    }
    // Start the new job's best piece for this node; suspend the rest.
    std::size_t best = 0;
    std::uint64_t bestScore = 0;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const std::uint64_t score = cachedOnNode(victimNode, pieces[i].subjob.range);
      if (i == 0 || score > bestScore) {
        best = i;
        bestScore = score;
      }
    }
    JobInfo info;
    host().startRun(victimNode, pieces[best].subjob);
    info.runningNodes = 1;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (i != best) info.suspended.push_back(pieces[i]);
    }
    active_[job.id] = std::move(info);
    return;
  }

  pending_.push_back(job);
}

void CacheOrientedScheduler::feedNode(NodeId node) {
  const std::uint64_t minSize = host().config().minSubjobEvents;

  // 1. Most suitable suspended subjob across all jobs: the one with the
  // largest amount of data cached on this node; FIFO by job arrival as the
  // tie-break (cold pieces of old jobs before cold pieces of new ones).
  JobId bestJob = kNoJob;
  std::size_t bestIdx = 0;
  std::uint64_t bestCached = 0;
  SimTime bestArrival = 0.0;
  for (auto& [id, info] : active_) {
    for (std::size_t i = 0; i < info.suspended.size(); ++i) {
      const auto& piece = info.suspended[i];
      const std::uint64_t cached = cachedOnNode(node, piece.subjob.range);
      const SimTime arrival = piece.subjob.jobArrival;
      const bool better =
          bestJob == kNoJob || cached > bestCached ||
          (cached == bestCached && arrival < bestArrival);
      if (better) {
        bestJob = id;
        bestIdx = i;
        bestCached = cached;
        bestArrival = arrival;
      }
    }
  }
  if (bestJob != kNoJob) {
    auto& info = active_[bestJob];
    const Subjob sj = info.suspended[bestIdx].subjob;
    info.suspended.erase(info.suspended.begin() + static_cast<std::ptrdiff_t>(bestIdx));
    host().startRun(node, sj);
    ++info.runningNodes;
    return;
  }

  // 2. Split the running subjob with the largest caching benefit for this
  // node (overlap of its second half with our cache); fall back to the
  // largest remaining subjob when caches offer nothing.
  NodeId splitNode = kNoNode;
  double bestScore = -1.0;
  for (NodeId m = 0; m < host().numNodes(); ++m) {
    const auto view = host().running(m);
    if (!view.active || view.remaining.size() < 2 * minSize) continue;
    const EventRange secondHalf{view.remaining.begin + view.remaining.size() / 2,
                                view.remaining.end};
    const double score = static_cast<double>(cachedOnNode(node, secondHalf)) +
                         static_cast<double>(view.remaining.size()) * 1e-9;
    if (score > bestScore) {
      bestScore = score;
      splitNode = m;
    }
  }
  if (splitNode == kNoNode) return;  // nothing splittable: node stays idle

  const JobId jobId = host().running(splitNode).subjob.job;
  Subjob rem = preemptTracked(splitNode);
  if (rem.empty()) return;
  if (rem.events() < 2 * minSize) {
    host().startRun(splitNode, rem);
    ++active_[jobId].runningNodes;
    return;
  }
  const auto halves = splitEqual(rem, 2, minSize);
  host().startRun(splitNode, halves[0]);
  host().startRun(node, halves[1]);
  active_[jobId].runningNodes += 2;
}

void CacheOrientedScheduler::onRunFinished(NodeId node, const RunReport& report) {
  const JobId jobId = report.subjob.job;
  auto it = active_.find(jobId);
  if (it != active_.end()) --it->second.runningNodes;

  if (report.jobCompleted) {
    if (it != active_.end()) active_.erase(it);
    if (!pending_.empty()) {
      const Job next = pending_.front();
      pending_.pop_front();
      startJobOnIdleNodes(next, host().idleNodes());
      return;
    }
    feedNode(node);
    return;
  }

  // Subjob end: resume the suspended piece of the same job with the largest
  // amount of data cached on this node (Table 2).
  if (it != active_.end() && !it->second.suspended.empty()) {
    auto& susp = it->second.suspended;
    std::size_t best = 0;
    std::uint64_t bestCached = 0;
    for (std::size_t i = 0; i < susp.size(); ++i) {
      const std::uint64_t cached = cachedOnNode(node, susp[i].subjob.range);
      if (i == 0 || cached > bestCached) {
        best = i;
        bestCached = cached;
      }
    }
    const Subjob sj = susp[best].subjob;
    susp.erase(susp.begin() + static_cast<std::ptrdiff_t>(best));
    host().startRun(node, sj);
    ++it->second.runningNodes;
    return;
  }
  feedNode(node);
}

}  // namespace ppsched
