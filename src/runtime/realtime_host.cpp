#include "runtime/realtime_host.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppsched {

RealtimeHost::RealtimeHost(const SimConfig& cfg, std::unique_ptr<ISchedulerPolicy> policy,
                           MetricsCollector& metrics, RealtimeOptions options)
    : cfg_(cfg),
      policy_(std::move(policy)),
      metrics_(metrics),
      cluster_(cfg.numNodes, cfg.cacheEvents(), cfg.cpusPerNode),
      options_(options),
      epoch_(Clock::now()),
      assignments_(static_cast<std::size_t>(cfg.totalCpus())) {
  if (!policy_) throw std::invalid_argument("RealtimeHost needs a policy");
  if (options_.timeScale <= 0.0) throw std::invalid_argument("timeScale must be > 0");
  policy_->bind(*this);
  slots_.reserve(static_cast<std::size_t>(cfg.totalCpus()));
  for (NodeId n = 0; n < cfg.totalCpus(); ++n) {
    slots_.push_back(std::make_unique<ExecutorSlot>());
  }
  for (NodeId n = 0; n < cfg.totalCpus(); ++n) {
    executors_.emplace_back([this, n] { executorLoop(n); });
  }
  scheduler_ = std::thread([this] { schedulerLoop(); });
}

RealtimeHost::~RealtimeHost() {
  {
    std::lock_guard guard(lock_);
    stopping_ = true;
  }
  schedulerCv_.notify_all();
  for (auto& slot : slots_) {
    std::lock_guard guard(slot->m);
    slot->cancel = true;
    slot->cv.notify_all();
  }
  scheduler_.join();
  for (auto& t : executors_) t.join();
}

SimTime RealtimeHost::now() const {
  const auto wall = std::chrono::duration<double>(Clock::now() - epoch_).count();
  return wall * options_.timeScale;
}

// ---------------------------------------------------------------------------
// External interface

JobId RealtimeHost::submit(EventRange range) {
  std::lock_guard guard(lock_);
  Job job;
  job.id = static_cast<JobId>(jobs_.size());
  job.arrival = now();
  job.range = range;
  JobState js;
  js.job = job;
  js.remaining = IntervalSet{range};
  jobs_.push_back(std::move(js));
  metrics_.onArrival(job, job.arrival);
  post([this, job] { policy_->onJobArrival(job); });
  return job.id;
}

bool RealtimeHost::drain(std::chrono::milliseconds wallTimeout) {
  std::unique_lock guard(lock_);
  return drainCv_.wait_for(guard, wallTimeout, [this] {
    return metrics_.completedJobs() == jobs_.size();
  });
}

std::size_t RealtimeHost::completedJobs() const {
  std::lock_guard guard(lock_);
  return metrics_.completedJobs();
}

// ---------------------------------------------------------------------------
// Scheduler thread

void RealtimeHost::post(std::function<void()> fn) {
  {
    std::lock_guard guard(lock_);
    commands_.push_back({std::move(fn)});
  }
  schedulerCv_.notify_all();
}

void RealtimeHost::schedulerLoop() {
  std::unique_lock guard(lock_);
  while (!stopping_) {
    // Fire due timers. Collect ids first: the policy's onTimer may add or
    // cancel timers, which would invalidate a live iterator.
    const SimTime t = now();
    std::vector<TimerId> due;
    for (const auto& [id, at] : timers_) {
      if (at <= t) due.push_back(id);
    }
    for (const TimerId id : due) {
      if (timers_.erase(id) > 0) policy_->onTimer(id);
    }
    if (!commands_.empty()) {
      Command cmd = std::move(commands_.front());
      commands_.pop_front();
      cmd.fn();
      continue;
    }
    // Sleep until the next timer or the next command.
    SimTime nextTimer = -1.0;
    for (const auto& [id, at] : timers_) {
      if (nextTimer < 0.0 || at < nextTimer) nextTimer = at;
    }
    if (nextTimer >= 0.0) {
      const double wallDelay = std::max(0.0, (nextTimer - now()) / options_.timeScale);
      schedulerCv_.wait_for(guard, std::chrono::duration<double>(wallDelay), [this] {
        return stopping_ || !commands_.empty();
      });
    } else {
      schedulerCv_.wait(guard, [this] { return stopping_ || !commands_.empty(); });
    }
  }
}

// ---------------------------------------------------------------------------
// Executors

void RealtimeHost::executorLoop(NodeId node) {
  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  for (;;) {
    std::uint64_t generation = 0;
    double wallSeconds = 0.0;
    {
      std::unique_lock guard(slot.m);
      slot.cv.wait(guard, [&] { return slot.hasWork || slot.cancel; });
      if (slot.cancel && !slot.hasWork) return;
      if (!slot.hasWork) continue;
      generation = slot.generation;
      wallSeconds = slot.wallSeconds;
      slot.hasWork = false;
    }
    // "Process" the subjob: wait out its scaled cost, abortable by preempt
    // (generation bump) or shutdown (cancel).
    {
      std::unique_lock guard(slot.m);
      slot.cv.wait_for(guard, std::chrono::duration<double>(wallSeconds),
                       [&] { return slot.cancel || slot.generation != generation; });
      if (slot.cancel) return;
      if (slot.generation != generation) continue;  // preempted/reassigned
    }
    post([this, node, generation] { handleCompletion(node, generation); });
  }
}

// ---------------------------------------------------------------------------
// ISchedulerHost queries

RealtimeHost::JobState& RealtimeHost::state(JobId id) {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const RealtimeHost::JobState& RealtimeHost::state(JobId id) const {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Job& RealtimeHost::job(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).job;
}

const IntervalSet& RealtimeHost::remainingOf(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).remaining;
}

bool RealtimeHost::jobDone(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).completed;
}

std::size_t RealtimeHost::jobsInSystem() const {
  std::lock_guard guard(lock_);
  return metrics_.jobsInSystem();
}

bool RealtimeHost::isIdle(NodeId node) const {
  std::lock_guard guard(lock_);
  return !assignments_.at(static_cast<std::size_t>(node)).has_value();
}

std::vector<NodeId> RealtimeHost::idleNodes() const {
  std::lock_guard guard(lock_);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < numNodes(); ++n) {
    if (!assignments_[static_cast<std::size_t>(n)]) out.push_back(n);
  }
  return out;
}

std::uint64_t RealtimeHost::eventsDoneByNow(const Assignment& assignment) const {
  double elapsed = now() - assignment.startedAt;
  std::uint64_t done = 0;
  for (const PlanPiece& piece : assignment.plan) {
    const double pieceTime = static_cast<double>(piece.range.size()) * piece.rate;
    if (elapsed >= pieceTime) {
      done += piece.range.size();
      elapsed -= pieceTime;
    } else {
      if (piece.rate > 0.0 && elapsed > 0.0) {
        done += static_cast<std::uint64_t>(std::floor(elapsed / piece.rate + 1e-9));
      }
      break;
    }
  }
  return std::min<std::uint64_t>(done, assignment.subjob.events());
}

RunningView RealtimeHost::running(NodeId node) const {
  std::lock_guard guard(lock_);
  RunningView view;
  const auto& slot = assignments_.at(static_cast<std::size_t>(node));
  if (!slot) return view;
  view.active = true;
  view.subjob = slot->subjob;
  view.startedAt = slot->startedAt;
  const std::uint64_t done = eventsDoneByNow(*slot);
  view.remaining = {slot->subjob.range.begin + done, slot->subjob.range.end};
  return view;
}

// ---------------------------------------------------------------------------
// ISchedulerHost actions

std::vector<RealtimeHost::PlanPiece> RealtimeHost::planRun(NodeId node, const Subjob& sj,
                                                           const RunOptions& opts) const {
  std::vector<PlanPiece> plan;
  const LruExtentCache& localCache = cluster_.node(node).cache();
  const LruExtentCache* remoteCache =
      opts.remoteFrom != kNoNode ? &cluster_.node(opts.remoteFrom).cache() : nullptr;
  const bool caching = policy_->usesCaching();
  EventIndex cursor = sj.range.begin;
  while (cursor < sj.range.end) {
    const EventRange rest{cursor, sj.range.end};
    PlanPiece piece;
    if (caching) {
      const EventRange localRun = localCache.cachedIn(rest).runAt(cursor);
      if (!localRun.empty()) {
        piece.range = localRun;
        piece.source = DataSource::LocalCache;
      } else if (remoteCache != nullptr &&
                 !remoteCache->cachedIn(rest).runAt(cursor).empty()) {
        piece.range = remoteCache->cachedIn(rest).runAt(cursor);
        piece.source = DataSource::RemoteCache;
      }
    }
    if (piece.range.empty()) {
      IntervalSet avail = caching ? localCache.cachedIn(rest) : IntervalSet{};
      if (caching && remoteCache != nullptr) avail.insert(remoteCache->cachedIn(rest));
      EventIndex stopAt = rest.end;
      for (const EventRange& r : avail.intervals()) {
        if (r.begin > cursor) {
          stopAt = std::min(stopAt, r.begin);
          break;
        }
      }
      piece.range = {cursor, stopAt};
      piece.source = DataSource::Tertiary;
    }
    CostModel cost = cfg_.cost;
    if (!cfg_.nodeSpeedFactors.empty()) {
      cost.cpuSecPerEvent /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
    }
    piece.rate = cost.secPerEvent(piece.source);
    plan.push_back(piece);
    cursor = piece.range.end;
  }
  return plan;
}

void RealtimeHost::startRun(NodeId node, Subjob sj, RunOptions opts) {
  std::lock_guard guard(lock_);
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (assignment) throw std::logic_error("startRun on a busy node");
  if (sj.empty()) throw std::logic_error("startRun with an empty subjob");
  if (!state(sj.job).remaining.containsRange(sj.range)) {
    throw std::logic_error("subjob range is not remaining work of its job");
  }
  Assignment a;
  a.subjob = sj;
  a.opts = opts;
  a.plan = planRun(node, sj, opts);
  for (const PlanPiece& piece : a.plan) {
    a.durationSimSec += static_cast<double>(piece.range.size()) * piece.rate;
  }
  a.startedAt = now();
  a.generation = nextGeneration_++;
  metrics_.onFirstStart(sj.job, a.startedAt);

  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  {
    std::lock_guard slotGuard(slot.m);
    slot.hasWork = true;
    slot.generation = a.generation;
    slot.wallSeconds = a.durationSimSec / options_.timeScale;
  }
  slot.cv.notify_all();
  assignment = std::move(a);
}

void RealtimeHost::applyProgress(NodeId node, Assignment& assignment,
                                 std::uint64_t eventsDone) {
  if (eventsDone == 0) return;
  const EventRange done{assignment.subjob.range.begin,
                        assignment.subjob.range.begin + eventsDone};
  JobState& js = state(assignment.subjob.job);
  js.remaining.erase(done);
  const SimTime t = now();
  // Cache effects piece by piece, as in the simulator.
  if (policy_->usesCaching()) {
    LruExtentCache& localCache = cluster_.node(node).cache();
    for (const PlanPiece& piece : assignment.plan) {
      const EventRange processed = piece.range.intersect(done);
      if (processed.empty()) continue;
      metrics_.onEventsProcessed(piece.source, processed.size(), t);
      switch (piece.source) {
        case DataSource::LocalCache:
          localCache.touch(processed, t);
          break;
        case DataSource::Tertiary:
          localCache.insert(processed, t);
          break;
        case DataSource::RemoteCache:
          cluster_.node(assignment.opts.remoteFrom).cache().touch(processed, t);
          break;
      }
    }
  } else {
    metrics_.onEventsProcessed(DataSource::Tertiary, done.size(), t);
  }
  if (js.remaining.empty() && !js.completed) {
    js.completed = true;
    metrics_.onCompletion(js.job.id, t);
    drainCv_.notify_all();
  }
}

void RealtimeHost::handleCompletion(NodeId node, std::uint64_t generation) {
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (!assignment || assignment->generation != generation) return;  // stale
  Assignment finished = std::move(*assignment);
  assignment.reset();
  applyProgress(node, finished, finished.subjob.events());
  RunReport report;
  report.subjob = finished.subjob;
  report.jobCompleted = state(finished.subjob.job).completed;
  policy_->onRunFinished(node, report);
}

Subjob RealtimeHost::preempt(NodeId node) {
  std::lock_guard guard(lock_);
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (!assignment) throw std::logic_error("preempt on an idle node");
  Assignment stopped = std::move(*assignment);
  assignment.reset();
  // Invalidate the executor's current wait; a bumped generation makes any
  // in-flight completion stale.
  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  {
    std::lock_guard slotGuard(slot.m);
    slot.generation = nextGeneration_++;
    slot.hasWork = false;
  }
  slot.cv.notify_all();

  const std::uint64_t done = eventsDoneByNow(stopped);
  applyProgress(node, stopped, done);
  Subjob remainder = stopped.subjob;
  remainder.range = {stopped.subjob.range.begin + done, stopped.subjob.range.end};
  return remainder;
}

TimerId RealtimeHost::scheduleTimer(SimTime at) {
  std::lock_guard guard(lock_);
  const TimerId id = nextTimer_++;
  timers_[id] = at;
  schedulerCv_.notify_all();
  return id;
}

void RealtimeHost::cancelTimer(TimerId id) {
  std::lock_guard guard(lock_);
  timers_.erase(id);
}

void RealtimeHost::noteSchedulingDelay(JobId id, Duration delay) {
  std::lock_guard guard(lock_);
  metrics_.onSchedulingDelay(id, delay);
}

}  // namespace ppsched
