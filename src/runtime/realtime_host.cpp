#include "runtime/realtime_host.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppsched {

RealtimeHost::RealtimeHost(const SimConfig& cfg, std::unique_ptr<ISchedulerPolicy> policy,
                           MetricsCollector& metrics, RealtimeOptions options)
    : cfg_(cfg),
      policy_(std::move(policy)),
      metrics_(metrics),
      cluster_(cfg.numNodes, cfg.cacheEvents(), cfg.cpusPerNode),
      options_(options),
      epoch_(Clock::now()),
      assignments_(static_cast<std::size_t>(cfg.totalCpus())) {
  if (!policy_) throw std::invalid_argument("RealtimeHost needs a policy");
  if (options_.timeScale <= 0.0) throw std::invalid_argument("timeScale must be > 0");
  policy_->bind(*this);
  slots_.reserve(static_cast<std::size_t>(cfg.totalCpus()));
  for (NodeId n = 0; n < cfg.totalCpus(); ++n) {
    slots_.push_back(std::make_unique<ExecutorSlot>());
  }
  for (NodeId n = 0; n < cfg.totalCpus(); ++n) {
    executors_.emplace_back([this, n] { executorLoop(n); });
  }
  scheduler_ = std::thread([this] { schedulerLoop(); });
}

RealtimeHost::~RealtimeHost() {
  {
    std::lock_guard guard(lock_);
    stopping_ = true;
  }
  schedulerCv_.notify_all();
  for (auto& slot : slots_) {
    std::lock_guard guard(slot->m);
    slot->cancel = true;
    slot->cv.notify_all();
  }
  scheduler_.join();
  for (auto& t : executors_) t.join();
}

SimTime RealtimeHost::now() const {
  const auto wall = std::chrono::duration<double>(Clock::now() - epoch_).count();
  return wall * options_.timeScale;
}

// ---------------------------------------------------------------------------
// External interface

JobId RealtimeHost::submit(EventRange range) {
  std::lock_guard guard(lock_);
  Job job;
  job.id = static_cast<JobId>(jobs_.size());
  job.arrival = now();
  job.range = range;
  JobState js;
  js.job = job;
  js.remaining = IntervalSet{range};
  jobs_.push_back(std::move(js));
  metrics_.onArrival(job, job.arrival);
  post([this, job] { policy_->onJobArrival(job); });
  return job.id;
}

bool RealtimeHost::drain(std::chrono::milliseconds wallTimeout) {
  std::unique_lock guard(lock_);
  return drainCv_.wait_for(guard, wallTimeout, [this] {
    return metrics_.completedJobs() == jobs_.size();
  });
}

std::size_t RealtimeHost::completedJobs() const {
  std::lock_guard guard(lock_);
  return metrics_.completedJobs();
}

// ---------------------------------------------------------------------------
// Scheduler thread

void RealtimeHost::post(std::function<void()> fn) {
  {
    std::lock_guard guard(lock_);
    commands_.push_back({std::move(fn)});
  }
  schedulerCv_.notify_all();
}

void RealtimeHost::schedulerLoop() {
  std::unique_lock guard(lock_);
  while (!stopping_) {
    // Fire due timers and scripted at() actions. Collect first: the
    // callbacks may add or cancel entries, invalidating a live iterator.
    const SimTime t = now();
    std::vector<TimerId> due;
    for (const auto& [id, at] : timers_) {
      if (at <= t) due.push_back(id);
    }
    for (const TimerId id : due) {
      if (timers_.erase(id) > 0) policy_->onTimer(id);
    }
    std::vector<std::pair<ActionId, std::function<void()>>> dueActions;
    for (const auto& [id, entry] : actions_) {
      if (entry.first <= t) dueActions.emplace_back(id, entry.second);
    }
    for (auto& [id, fn] : dueActions) {
      if (actions_.erase(id) > 0) fn();
    }
    // Re-dispatch parked lost work between every batch of callbacks.
    drainDeferred();
    if (!commands_.empty()) {
      Command cmd = std::move(commands_.front());
      commands_.pop_front();
      cmd.fn();
      drainDeferred();
      continue;
    }
    // Sleep until the next timer/action or the next command.
    SimTime nextDue = -1.0;
    for (const auto& [id, at] : timers_) {
      if (nextDue < 0.0 || at < nextDue) nextDue = at;
    }
    for (const auto& [id, entry] : actions_) {
      if (nextDue < 0.0 || entry.first < nextDue) nextDue = entry.first;
    }
    if (nextDue >= 0.0) {
      const double wallDelay = std::max(0.0, (nextDue - now()) / options_.timeScale);
      schedulerCv_.wait_for(guard, std::chrono::duration<double>(wallDelay), [this] {
        return stopping_ || !commands_.empty();
      });
    } else {
      schedulerCv_.wait(guard, [this] { return stopping_ || !commands_.empty(); });
    }
  }
}

// ---------------------------------------------------------------------------
// Executors

void RealtimeHost::executorLoop(NodeId node) {
  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  for (;;) {
    std::uint64_t generation = 0;
    double wallSeconds = 0.0;
    {
      std::unique_lock guard(slot.m);
      slot.cv.wait(guard, [&] { return slot.hasWork || slot.cancel; });
      if (slot.cancel && !slot.hasWork) return;
      if (!slot.hasWork) continue;
      generation = slot.generation;
      wallSeconds = slot.wallSeconds;
      slot.hasWork = false;
    }
    // "Process" the subjob: wait out its scaled cost, abortable by preempt
    // (generation bump) or shutdown (cancel).
    {
      std::unique_lock guard(slot.m);
      slot.cv.wait_for(guard, std::chrono::duration<double>(wallSeconds),
                       [&] { return slot.cancel || slot.generation != generation; });
      if (slot.cancel) return;
      if (slot.generation != generation) continue;  // preempted/reassigned
    }
    post([this, node, generation] { handleCompletion(node, generation); });
  }
}

// ---------------------------------------------------------------------------
// ISchedulerHost queries

RealtimeHost::JobState& RealtimeHost::state(JobId id) {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const RealtimeHost::JobState& RealtimeHost::state(JobId id) const {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Job& RealtimeHost::job(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).job;
}

const IntervalSet& RealtimeHost::remainingOf(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).remaining;
}

bool RealtimeHost::jobDone(JobId id) const {
  std::lock_guard guard(lock_);
  return state(id).completed;
}

std::size_t RealtimeHost::jobsInSystem() const {
  std::lock_guard guard(lock_);
  return metrics_.jobsInSystem();
}

bool RealtimeHost::isUp(NodeId node) const {
  std::lock_guard guard(lock_);
  return cluster_.node(node).isUp();
}

bool RealtimeHost::isIdle(NodeId node) const {
  std::lock_guard guard(lock_);
  return cluster_.node(node).isUp() &&
         !assignments_.at(static_cast<std::size_t>(node)).has_value();
}

std::vector<NodeId> RealtimeHost::idleNodes() const {
  std::lock_guard guard(lock_);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < numNodes(); ++n) {
    if (cluster_.node(n).isUp() && !assignments_[static_cast<std::size_t>(n)]) out.push_back(n);
  }
  return out;
}

std::uint64_t RealtimeHost::eventsDoneByNow(const Assignment& assignment) const {
  // Events before the fold point were completed at earlier rates; walk the
  // pieces past them, then charge the current rates for the time since.
  // With no re-pricing (foldedEvents == 0, foldTime == startedAt) this is
  // the original single-pass formula.
  double elapsed = now() - assignment.foldTime;
  std::uint64_t done = assignment.foldedEvents;
  std::uint64_t skip = assignment.foldedEvents;
  for (const PlanPiece& piece : assignment.pieces) {
    std::uint64_t pieceEvents = piece.range.size();
    if (skip >= pieceEvents) {
      skip -= pieceEvents;
      continue;
    }
    pieceEvents -= skip;
    skip = 0;
    const double pieceTime = static_cast<double>(pieceEvents) * piece.rate;
    if (elapsed >= pieceTime) {
      done += pieceEvents;
      elapsed -= pieceTime;
    } else {
      if (piece.rate > 0.0 && elapsed > 0.0) {
        done += static_cast<std::uint64_t>(std::floor(elapsed / piece.rate + 1e-9));
      }
      break;
    }
  }
  return std::min<std::uint64_t>(done, assignment.subjob.events());
}

RunningView RealtimeHost::running(NodeId node) const {
  std::lock_guard guard(lock_);
  RunningView view;
  const auto& slot = assignments_.at(static_cast<std::size_t>(node));
  if (!slot) return view;
  view.active = true;
  view.subjob = slot->subjob;
  view.startedAt = slot->startedAt;
  const std::uint64_t done = eventsDoneByNow(*slot);
  view.remaining = {slot->subjob.range.begin + done, slot->subjob.range.end};
  return view;
}

// ---------------------------------------------------------------------------
// ISchedulerHost actions

std::vector<RealtimeHost::PlanPiece> RealtimeHost::planRun(NodeId node, const Subjob& sj,
                                                           const AccessPlan& access) const {
  std::vector<PlanPiece> plan;
  const LruExtentCache& localCache = cluster_.node(node).cache();
  const LruExtentCache* remoteCache =
      access.servingNode != kNoNode ? &cluster_.node(access.servingNode).cache() : nullptr;
  const bool caching = policy_->usesCaching();
  EventIndex cursor = sj.range.begin;
  while (cursor < sj.range.end) {
    const EventRange rest{cursor, sj.range.end};
    PlanPiece piece;
    if (caching) {
      const EventRange localRun = localCache.cachedIn(rest).runAt(cursor);
      if (!localRun.empty()) {
        piece.range = localRun;
        piece.source = DataSource::LocalCache;
      } else if (remoteCache != nullptr &&
                 !remoteCache->cachedIn(rest).runAt(cursor).empty()) {
        piece.range = remoteCache->cachedIn(rest).runAt(cursor);
        piece.source = DataSource::RemoteCache;
      }
    }
    if (piece.range.empty()) {
      IntervalSet avail = caching ? localCache.cachedIn(rest) : IntervalSet{};
      if (caching && remoteCache != nullptr) avail.insert(remoteCache->cachedIn(rest));
      EventIndex stopAt = rest.end;
      for (const EventRange& r : avail.intervals()) {
        if (r.begin > cursor) {
          stopAt = std::min(stopAt, r.begin);
          break;
        }
      }
      piece.range = {cursor, stopAt};
      piece.source = DataSource::Tertiary;
    }
    CostModel cost = cfg_.cost;
    if (!cfg_.nodeSpeedFactors.empty()) {
      cost.cpuSecPerEvent /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
    }
    if (cfg_.network.enabled && piece.source != DataSource::LocalCache) {
      // Equal share: price the transfer at the bandwidth one more stream
      // would get right now. Open runs are re-priced whenever the stream
      // count changes (see the model-differences note in the header).
      piece.rate = networkPieceRate(piece.source, node, access.servingNode, activeNetRuns_ + 1);
    } else {
      piece.rate = cost.secPerEvent(piece.source);
    }
    plan.push_back(piece);
    cursor = piece.range.end;
  }
  return plan;
}

double RealtimeHost::staticNetBytesPerSec(DataSource src, NodeId node, NodeId remoteFrom,
                                          int streams) const {
  const NetworkConfig& net = cfg_.network;
  const double share = static_cast<double>(std::max(1, streams));
  double bps = src == DataSource::RemoteCache ? cfg_.cost.remoteBytesPerSec
                                              : cfg_.cost.tertiaryBytesPerSec;
  bps = std::min(bps, net.nicBytesPerSec);
  if (src == DataSource::Tertiary) {
    if (cfg_.tertiaryAggregateBytesPerSec > 0.0) {
      bps = std::min(bps, cfg_.tertiaryAggregateBytesPerSec / share);
    }
    if (net.tertiaryIngressBytesPerSec > 0.0) {
      bps = std::min(bps, net.tertiaryIngressBytesPerSec / share);
    }
  } else if (net.uplinkBytesPerSec > 0.0 &&
             (remoteFrom == kNoNode || !sameSwitch(node, remoteFrom))) {
    bps = std::min(bps, net.uplinkBytesPerSec / share);
  }
  return bps;
}

double RealtimeHost::networkPieceRate(DataSource src, NodeId node, NodeId remoteFrom,
                                      int streams) const {
  double cpu = cfg_.cost.cpuSecPerEvent;
  if (!cfg_.nodeSpeedFactors.empty()) {
    cpu /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  const double transfer =
      cfg_.cost.bytesPerEvent / staticNetBytesPerSec(src, node, remoteFrom, streams);
  return cfg_.cost.pipelined ? std::max(transfer, cpu) : transfer + cpu;
}

void RealtimeHost::repriceOpenRuns() {
  if (!cfg_.network.enabled) return;
  const int streams = std::max(1, activeNetRuns_);
  for (NodeId n = 0; n < numNodes(); ++n) {
    auto& slot = assignments_[static_cast<std::size_t>(n)];
    if (!slot || !slot->usesNetwork) continue;
    Assignment& a = *slot;
    // Fold progress at the rates in effect so far, then re-rate what is
    // left of each network piece at the current stream count.
    a.foldedEvents = eventsDoneByNow(a);
    a.foldTime = now();
    double remainingSim = 0.0;
    std::uint64_t skip = a.foldedEvents;
    for (PlanPiece& piece : a.pieces) {
      std::uint64_t left = piece.range.size();
      if (skip >= left) {
        skip -= left;
        continue;
      }
      left -= skip;
      skip = 0;
      if (piece.source != DataSource::LocalCache) {
        piece.rate = networkPieceRate(piece.source, n, a.access.servingNode, streams);
      }
      remainingSim += static_cast<double>(left) * piece.rate;
    }
    // Re-arm the executor with the new deadline; the generation bump makes
    // any completion computed against the old rates stale.
    a.generation = nextGeneration_++;
    ExecutorSlot& ex = *slots_[static_cast<std::size_t>(n)];
    {
      std::lock_guard slotGuard(ex.m);
      ex.generation = a.generation;
      ex.hasWork = true;
      ex.wallSeconds = remainingSim / options_.timeScale;
    }
    ex.cv.notify_all();
  }
}

void RealtimeHost::releaseNetRun(const Assignment& assignment) {
  if (assignment.usesNetwork && activeNetRuns_ > 0) --activeNetRuns_;
}

double RealtimeHost::estimatedSecPerEvent(NodeId node, NodeId remoteFrom,
                                          DataSource src) const {
  std::lock_guard guard(lock_);
  if (!cfg_.network.enabled || src == DataSource::LocalCache) {
    return ISchedulerHost::estimatedSecPerEvent(node, remoteFrom, src);
  }
  // Price what one more stream would get right now; planRun uses the same
  // formula, so estimates match what a started run is actually charged.
  return networkPieceRate(src, node, remoteFrom, activeNetRuns_ + 1);
}

std::vector<PlacementCandidate> RealtimeHost::rankPlacements(NodeId dst, EventRange range) {
  std::lock_guard guard(lock_);
  return ISchedulerHost::rankPlacements(dst, range);
}

std::vector<AccessPlan> RealtimeHost::planAccess(NodeId dst, EventRange range, AccessGoal goal) {
  std::lock_guard guard(lock_);
  return ISchedulerHost::planAccess(dst, range, goal);
}

double RealtimeHost::estimatedTransferBytesPerSec(NodeId dst, NodeId src) const {
  std::lock_guard guard(lock_);
  if (!cfg_.network.enabled) {
    return ISchedulerHost::estimatedTransferBytesPerSec(dst, src);
  }
  const DataSource kind = src == kNoNode ? DataSource::Tertiary : DataSource::RemoteCache;
  return staticNetBytesPerSec(kind, dst, src, activeNetRuns_ + 1);
}

void RealtimeHost::startRun(NodeId node, Subjob sj, AccessPlan plan) {
  std::lock_guard guard(lock_);
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (!cluster_.node(node).isUp()) throw std::logic_error("startRun on a down node");
  if (assignment) throw std::logic_error("startRun on a busy node");
  if (sj.empty()) throw std::logic_error("startRun with an empty subjob");
  if (!state(sj.job).remaining.containsRange(sj.range)) {
    throw std::logic_error("subjob range is not remaining work of its job");
  }
  if (plan.servingNode != kNoNode && !cluster_.node(plan.servingNode).isUp()) {
    // Engine parity: a remote source that crashed since the policy's
    // decision degrades to local/tertiary reads.
    plan.servingNode = kNoNode;
    plan.source = DataSource::Tertiary;
  }
  Assignment a;
  a.subjob = sj;
  a.access = plan;
  a.pieces = planRun(node, sj, plan);
  for (const PlanPiece& piece : a.pieces) {
    a.durationSimSec += static_cast<double>(piece.range.size()) * piece.rate;
    if (piece.source != DataSource::LocalCache) a.usesNetwork = true;
  }
  a.usesNetwork = a.usesNetwork && cfg_.network.enabled;
  if (a.usesNetwork) ++activeNetRuns_;
  a.startedAt = now();
  a.foldTime = a.startedAt;
  a.generation = nextGeneration_++;
  metrics_.onFirstStart(sj.job, a.startedAt);

  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  {
    std::lock_guard slotGuard(slot.m);
    slot.hasWork = true;
    slot.generation = a.generation;
    slot.wallSeconds = a.durationSimSec / options_.timeScale;
  }
  slot.cv.notify_all();
  const bool opened = a.usesNetwork;
  assignment = std::move(a);
  // This run's pieces were priced at activeNetRuns_ streams already (the +1
  // included itself); everyone else now shares with one more stream.
  if (opened) repriceOpenRuns();
}

void RealtimeHost::prefetch(NodeId dst, EventRange range, AccessPlan plan) {
  std::lock_guard guard(lock_);
  if (range.empty() || !policy_->usesCaching() || !cluster_.node(dst).isUp()) return;
  NodeId src = plan.servingNode;
  if (src != kNoNode &&
      (src < 0 || src >= numNodes() || !cluster_.node(src).isUp() ||
       cluster_.node(src).sharesCacheWith(cluster_.node(dst)))) {
    src = kNoNode;  // degrade to tertiary streaming (the plan went stale)
  }
  // Copy only what the destination does not already hold; a remote source
  // can serve only what it caches (Engine::prefetch parity).
  IntervalSet todo{range};
  todo.erase(cluster_.node(dst).cache().cachedIn(range));
  if (src != kNoNode) {
    todo = todo.intersectWith(cluster_.node(src).cache().cachedIn(range));
  }
  if (todo.empty()) return;
  const DataSource kind = src == kNoNode ? DataSource::Tertiary : DataSource::RemoteCache;
  double bps = src == kNoNode ? cfg_.cost.tertiaryBytesPerSec : cfg_.cost.remoteBytesPerSec;
  bool counted = false;
  if (cfg_.network.enabled) {
    // The warming copy is one more stream: price it at its share and
    // re-price everyone sharing with it.
    bps = staticNetBytesPerSec(kind, dst, src, activeNetRuns_ + 1);
    ++activeNetRuns_;
    counted = true;
    repriceOpenRuns();
  }
  const double durationSim = static_cast<double>(todo.size()) * cfg_.cost.bytesPerEvent / bps;
  // Completion rides the scheduler thread's action wheel (fires with lock_
  // held, like every scripted action).
  at(now() + durationSim, [this, dst, todo, counted] {
    if (counted && activeNetRuns_ > 0) --activeNetRuns_;
    if (cluster_.node(dst).isUp() && policy_->usesCaching()) {
      const SimTime t = now();
      for (const EventRange& r : todo.intervals()) {
        cluster_.node(dst).cache().insert(r, t);
      }
      metrics_.onPrefetch(todo.size());
    }
    if (counted) repriceOpenRuns();
  });
}

void RealtimeHost::applyProgress(NodeId node, Assignment& assignment,
                                 std::uint64_t eventsDone) {
  if (eventsDone == 0) return;
  const EventRange done{assignment.subjob.range.begin,
                        assignment.subjob.range.begin + eventsDone};
  JobState& js = state(assignment.subjob.job);
  js.remaining.erase(done);
  const SimTime t = now();
  // Cache effects piece by piece, as in the simulator.
  if (policy_->usesCaching()) {
    LruExtentCache& localCache = cluster_.node(node).cache();
    for (const PlanPiece& piece : assignment.pieces) {
      const EventRange processed = piece.range.intersect(done);
      if (processed.empty()) continue;
      metrics_.onEventsProcessed(piece.source, processed.size(), t);
      switch (piece.source) {
        case DataSource::LocalCache:
          localCache.touch(processed, t);
          break;
        case DataSource::Tertiary:
          localCache.insert(processed, t);
          break;
        case DataSource::RemoteCache:
          cluster_.node(assignment.access.servingNode).cache().touch(processed, t);
          break;
      }
    }
  } else {
    metrics_.onEventsProcessed(DataSource::Tertiary, done.size(), t);
  }
  if (js.remaining.empty() && !js.completed) {
    js.completed = true;
    metrics_.onCompletion(js.job.id, t);
    drainCv_.notify_all();
  }
}

void RealtimeHost::handleCompletion(NodeId node, std::uint64_t generation) {
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (!assignment || assignment->generation != generation) return;  // stale
  Assignment finished = std::move(*assignment);
  assignment.reset();
  releaseNetRun(finished);
  if (finished.usesNetwork) repriceOpenRuns();
  applyProgress(node, finished, finished.subjob.events());
  RunReport report;
  report.subjob = finished.subjob;
  report.jobCompleted = state(finished.subjob.job).completed;
  policy_->onRunFinished(node, report);
}

Subjob RealtimeHost::preempt(NodeId node) {
  std::lock_guard guard(lock_);
  auto& assignment = assignments_.at(static_cast<std::size_t>(node));
  if (!assignment) throw std::logic_error("preempt on an idle node");
  Assignment stopped = std::move(*assignment);
  assignment.reset();
  releaseNetRun(stopped);
  // Invalidate the executor's current wait; a bumped generation makes any
  // in-flight completion stale.
  ExecutorSlot& slot = *slots_[static_cast<std::size_t>(node)];
  {
    std::lock_guard slotGuard(slot.m);
    slot.generation = nextGeneration_++;
    slot.hasWork = false;
  }
  slot.cv.notify_all();
  // `stopped` is detached, so its eventsDoneByNow below still reads the
  // rates it actually experienced; only the surviving runs re-price.
  if (stopped.usesNetwork) repriceOpenRuns();

  const std::uint64_t done = eventsDoneByNow(stopped);
  applyProgress(node, stopped, done);
  Subjob remainder = stopped.subjob;
  remainder.range = {stopped.subjob.range.begin + done, stopped.subjob.range.end};
  return remainder;
}

TimerId RealtimeHost::scheduleTimer(SimTime at) {
  std::lock_guard guard(lock_);
  const TimerId id = nextTimer_++;
  timers_[id] = at;
  schedulerCv_.notify_all();
  return id;
}

void RealtimeHost::cancelTimer(TimerId id) {
  std::lock_guard guard(lock_);
  timers_.erase(id);
}

ActionId RealtimeHost::at(SimTime when, std::function<void()> action) {
  std::lock_guard guard(lock_);
  const ActionId id = nextAction_++;
  actions_[id] = {when, std::move(action)};
  schedulerCv_.notify_all();
  return id;
}

void RealtimeHost::deferLost(Subjob sj) {
  std::lock_guard guard(lock_);
  if (sj.empty()) return;
  sj.yieldsToCached = false;
  lostWork_.push_back(std::move(sj));
  schedulerCv_.notify_all();
}

void RealtimeHost::noteSchedulingDelay(JobId id, Duration delay) {
  std::lock_guard guard(lock_);
  metrics_.onSchedulingDelay(id, delay);
}

// ---------------------------------------------------------------------------
// Failure injection

void RealtimeHost::failNode(NodeId node) {
  std::lock_guard guard(lock_);
  const int machine = machineOf(node);
  const NodeId first = machine * cfg_.cpusPerNode;
  if (!cluster_.node(first).isUp()) return;
  cluster_.node(first).setUp(false);
  metrics_.onNodeFailure();
  std::vector<std::pair<NodeId, std::optional<RunReport>>> lost;
  for (int c = 0; c < cfg_.cpusPerNode; ++c) {
    const NodeId slot = first + c;
    auto& assignment = assignments_.at(static_cast<std::size_t>(slot));
    if (!assignment) {
      lost.emplace_back(slot, std::nullopt);
      continue;
    }
    Assignment dead = std::move(*assignment);
    assignment.reset();
    releaseNetRun(dead);
    // Kill the executor's wait; a bumped generation makes any in-flight
    // completion stale. Unlike preempt(), NO progress is applied: the crash
    // discards everything the executor had done.
    ExecutorSlot& ex = *slots_[static_cast<std::size_t>(slot)];
    {
      std::lock_guard slotGuard(ex.m);
      ex.generation = nextGeneration_++;
      ex.hasWork = false;
    }
    ex.cv.notify_all();
    metrics_.onRunLost(dead.subjob.job, eventsDoneByNow(dead));
    RunReport report;
    report.subjob = dead.subjob;
    report.reason = RunEndReason::Lost;
    report.remainder = dead.subjob;
    report.remainder.yieldsToCached = false;
    lost.emplace_back(slot, std::move(report));
  }
  if (cfg_.failures.loseCacheOnFailure) cluster_.node(first).cache().drop();
  // The dead machine's network streams are gone; survivors re-price once.
  repriceOpenRuns();
  // Policy callbacks belong on the scheduler thread, like every other
  // callback of this host.
  post([this, lost] {
    for (const auto& [slot, report] : lost) {
      policy_->onNodeDown(slot, report ? &*report : nullptr);
    }
  });
}

void RealtimeHost::repairNode(NodeId node) {
  std::lock_guard guard(lock_);
  const int machine = machineOf(node);
  const NodeId first = machine * cfg_.cpusPerNode;
  if (cluster_.node(first).isUp()) return;
  cluster_.node(first).setUp(true);
  post([this, first] {
    for (int c = 0; c < cfg_.cpusPerNode; ++c) {
      policy_->onNodeUp(first + c);
    }
  });
}

void RealtimeHost::drainDeferred() {
  while (!lostWork_.empty()) {
    NodeId target = kNoNode;
    for (NodeId n = 0; n < numNodes(); ++n) {
      if (cluster_.node(n).isUp() && !assignments_[static_cast<std::size_t>(n)]) {
        target = n;
        break;
      }
    }
    if (target == kNoNode) return;
    Subjob sj = std::move(lostWork_.front());
    lostWork_.pop_front();
    const JobState& js = state(sj.job);
    if (js.completed) continue;
    // Trim anything completed or re-dispatched since the loss.
    IntervalSet todo = js.remaining.intersectWith(sj.range);
    for (const auto& active : assignments_) {
      if (active && active->subjob.job == sj.job) todo.erase(active->subjob.range);
    }
    bool started = false;
    for (const EventRange& r : todo.intervals()) {
      Subjob piece = sj;
      piece.range = r;
      if (!started) {
        startRun(target, piece);
        started = true;
      } else {
        lostWork_.push_back(piece);
      }
    }
  }
}

}  // namespace ppsched
