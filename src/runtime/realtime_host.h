// Wall-clock scheduler host.
//
// §2.3 of the paper: "The job parallelization and scheduling software may
// run both on the simulated and on the target system (production
// environment)." This host is the target-system side of that claim: it
// drives the *same* ISchedulerPolicy objects as the simulator, but against
// the wall clock, with one asynchronous executor thread per node standing
// in for the real machines. Executors "process" their assigned subjobs by
// waiting out the scaled real-time cost (a production deployment would
// replace the executor body with actual event analysis; everything above
// the executor — queues, splitting, preemption, cache bookkeeping — is the
// production scheduler as-is).
//
// Time scale: `timeScale` simulated seconds pass per wall-clock second, so
// a 9-hour analysis job completes in milliseconds during tests and demos.
//
// Model differences from the simulator (documented, acceptable for a
// functional stand-in): a run's data-source plan is computed once at start
// against the then-current cache state (the simulator re-plans every span),
// completion times are subject to OS scheduling jitter, and a run killed by
// failNode() loses its whole subjob (the simulator rolls back to the last
// span boundary; here no span checkpoints exist). With the network model
// enabled this host uses an equal-share approximation: a run's network
// pieces are priced against the active count of network-using streams, and
// open runs are RE-PRICED whenever that count changes (a stream opens or
// closes) — progress at the old rates is folded, the remainder re-rated —
// so estimatedSecPerEvent/planAccess answers stay consistent with what runs
// actually experience, mirroring the simulator's FlowNetwork re-solve on
// every flow open/close (shares here are equal-split, not max-min).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/host.h"
#include "core/metrics.h"
#include "core/policy.h"

namespace ppsched {

struct RealtimeOptions {
  /// Simulated seconds per wall-clock second (default: 1 simulated hour
  /// per ~0.36 wall seconds).
  double timeScale = 10'000.0;
};

class RealtimeHost final : public ISchedulerHost {
 public:
  /// `cfg` must be finalized; `metrics` must outlive the host.
  RealtimeHost(const SimConfig& cfg, std::unique_ptr<ISchedulerPolicy> policy,
               MetricsCollector& metrics, RealtimeOptions options = {});
  ~RealtimeHost() override;

  RealtimeHost(const RealtimeHost&) = delete;
  RealtimeHost& operator=(const RealtimeHost&) = delete;

  /// Submit a job now (its arrival time is stamped by the host clock; the
  /// Job::arrival field of the argument is ignored). Thread-safe.
  JobId submit(EventRange range);

  /// Block until all submitted jobs have completed, or the wall-clock
  /// timeout expires. Returns true when everything completed.
  bool drain(std::chrono::milliseconds wallTimeout);

  /// Jobs completed so far. Thread-safe.
  [[nodiscard]] std::size_t completedJobs() const;

  /// Failure injection: crash the machine hosting `node` now. All its CPU
  /// slots go down, in-flight executor runs are killed with their progress
  /// discarded (no span checkpoints exist here, so a lost run's remainder
  /// is its whole subjob), and the machine's cache is wiped per
  /// config().failures.loseCacheOnFailure. The policy sees onNodeDown per
  /// slot on the scheduler thread. Thread-safe; no-op if already down.
  void failNode(NodeId node);
  /// Repair the machine hosting `node`; the policy sees onNodeUp per slot.
  /// Thread-safe; no-op if already up.
  void repairNode(NodeId node);

  // --- ISchedulerHost (called by the policy on the scheduler thread) -----
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] const SimConfig& config() const override { return cfg_; }
  [[nodiscard]] int numNodes() const override { return cluster_.size(); }
  [[nodiscard]] Cluster& cluster() override { return cluster_; }
  [[nodiscard]] bool isUp(NodeId node) const override;
  [[nodiscard]] bool isIdle(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> idleNodes() const override;
  [[nodiscard]] RunningView running(NodeId node) const override;
  [[nodiscard]] const Job& job(JobId id) const override;
  [[nodiscard]] const IntervalSet& remainingOf(JobId id) const override;
  [[nodiscard]] bool jobDone(JobId id) const override;
  [[nodiscard]] std::size_t jobsInSystem() const override;
  void startRun(NodeId node, Subjob sj, AccessPlan plan = {}) override;
  using ISchedulerHost::startRun;  // keep the deprecated RunOptions shim visible
  /// Cache-warming transfer (see ISchedulerHost::prefetch). Counts as one
  /// network stream while in flight (open runs are re-priced around it);
  /// the warmed extents land in `dst`'s cache when it completes.
  void prefetch(NodeId dst, EventRange range, AccessPlan plan = {}) override;
  Subjob preempt(NodeId node) override;
  TimerId scheduleTimer(SimTime at) override;
  void cancelTimer(TimerId id) override;
  /// Scripted actions ride the scheduler thread's timer wheel, so the same
  /// failure script drives this host and the simulator identically.
  ActionId at(SimTime when, std::function<void()> action) override;
  void deferLost(Subjob sj) override;
  void noteSchedulingDelay(JobId id, Duration delay) override;
  /// Contention-aware cost feedback (static share approximation; see the
  /// model-differences note above). Thread-safe.
  [[nodiscard]] double estimatedSecPerEvent(NodeId node, NodeId remoteFrom,
                                            DataSource src) const override;
  /// Shared placement ranking (see ISchedulerHost::rankPlacements), taken
  /// under the host lock so the candidate list is one consistent snapshot
  /// of cache and contention state. Thread-safe.
  [[nodiscard]] std::vector<PlacementCandidate> rankPlacements(NodeId dst,
                                                               EventRange range) override;
  /// Shared access planner (see ISchedulerHost::planAccess), under the host
  /// lock for one consistent snapshot. Thread-safe.
  [[nodiscard]] std::vector<AccessPlan> planAccess(NodeId dst, EventRange range,
                                                   AccessGoal goal = {}) override;
  /// Equal-share bulk-copy rate (see ISchedulerHost). Thread-safe.
  [[nodiscard]] double estimatedTransferBytesPerSec(NodeId dst, NodeId src) const override;

 private:
  using Clock = std::chrono::steady_clock;

  /// One contiguous stretch of a run's plan with a single data source.
  struct PlanPiece {
    EventRange range;
    DataSource source = DataSource::Tertiary;
    double rate = 0.0;  ///< simulated seconds per event
  };

  struct Assignment {
    Subjob subjob;
    AccessPlan access;
    std::vector<PlanPiece> pieces;
    double durationSimSec = 0.0;
    SimTime startedAt = 0.0;
    std::uint64_t generation = 0;
    /// The plan has remote/tertiary pieces priced against the network
    /// (counts towards activeNetRuns_ until the run ends).
    bool usesNetwork = false;
    /// Re-pricing fold point: events completed before `foldTime` at the
    /// rates then in effect; the current piece rates apply from foldTime on.
    std::uint64_t foldedEvents = 0;
    SimTime foldTime = 0.0;
  };

  struct JobState {
    Job job;
    IntervalSet remaining;
    bool completed = false;
  };

  /// Scheduler-thread commands (arrivals, completions).
  struct Command {
    std::function<void()> fn;
  };

  void schedulerLoop();
  void executorLoop(NodeId node);
  /// Enqueue a command for the scheduler thread.
  void post(std::function<void()> fn);
  [[nodiscard]] int machineOf(NodeId node) const { return node / cfg_.cpusPerNode; }
  /// Start parked lost work on idle up nodes (scheduler thread, lock held).
  void drainDeferred();

  // The following run on the scheduler thread with lock_ held.
  void handleCompletion(NodeId node, std::uint64_t generation);
  void applyProgress(NodeId node, Assignment& assignment, std::uint64_t eventsDone);
  [[nodiscard]] std::vector<PlanPiece> planRun(NodeId node, const Subjob& sj,
                                               const AccessPlan& access) const;
  /// Equal-share network rate for a `src` stream into `node` when `streams`
  /// streams share the constrained links (lock held). Remote reads pay the
  /// uplink share only when `remoteFrom` sits on another edge switch
  /// (same-switch flows never cross an uplink).
  [[nodiscard]] double staticNetBytesPerSec(DataSource src, NodeId node, NodeId remoteFrom,
                                            int streams) const;
  /// Sim sec/event of a network-priced piece at `streams` sharers (lock held).
  [[nodiscard]] double networkPieceRate(DataSource src, NodeId node, NodeId remoteFrom,
                                        int streams) const;
  /// A network stream opened or closed: fold every open network run's
  /// progress at its old rates and re-rate the remainder at the current
  /// stream count, resetting the executor's deadline (lock held).
  void repriceOpenRuns();
  /// Drop a finished/killed assignment's network-run count (lock held).
  void releaseNetRun(const Assignment& assignment);
  [[nodiscard]] std::uint64_t eventsDoneByNow(const Assignment& assignment) const;
  JobState& state(JobId id);
  [[nodiscard]] const JobState& state(JobId id) const;

  SimConfig cfg_;
  std::unique_ptr<ISchedulerPolicy> policy_;
  MetricsCollector& metrics_;
  Cluster cluster_;
  RealtimeOptions options_;
  Clock::time_point epoch_;

  mutable std::recursive_mutex lock_;
  std::condition_variable_any schedulerCv_;
  std::condition_variable_any drainCv_;
  std::deque<Command> commands_;
  std::map<TimerId, SimTime> timers_;
  TimerId nextTimer_ = 1;
  /// Scripted at() actions: fired from the scheduler loop like timers.
  std::map<ActionId, std::pair<SimTime, std::function<void()>>> actions_;
  ActionId nextAction_ = 1;
  std::deque<Subjob> lostWork_;  ///< parked remainders of killed runs
  std::vector<JobState> jobs_;
  std::vector<std::optional<Assignment>> assignments_;  // per node
  std::uint64_t nextGeneration_ = 1;
  /// Runs whose plans contain network pieces (static share denominator).
  int activeNetRuns_ = 0;
  bool stopping_ = false;

  // Per-node executor handshake.
  struct ExecutorSlot {
    std::mutex m;
    std::condition_variable cv;
    bool hasWork = false;
    bool cancel = false;
    double wallSeconds = 0.0;
    std::uint64_t generation = 0;
  };
  std::vector<std::unique_ptr<ExecutorSlot>> slots_;
  std::vector<std::thread> executors_;
  std::thread scheduler_;
};

}  // namespace ppsched
