// Sharded multi-master scheduling: configuration and run report.
//
// The paper's master has a perfectly fresh global view of every node's
// cache. A production-scale cluster partitions that master: K shards each
// own a contiguous slice of the machines, run their own instance of any
// scheduling policy against that slice only, and learn about remote caches
// through periodically exchanged digests (see shard/digest.h). This header
// is the dependency-free leaf: the knob struct parsed from the CLI
// (`--shards K,digest=P,steal=on|off`) plus the per-run accounting the
// coordinator reports back (see shard/coordinator.h for the machinery).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ppsched {

/// Knobs of the sharded coordinator. Disabled (count == 0) runs the classic
/// single-master path untouched; count == 1 wraps the policy in a single
/// shard whose view spans the whole cluster — bit-identical to disabled by
/// construction (the golden pins hold it to that).
struct ShardConfig {
  /// Number of shards; 0 disables sharding entirely.
  int count = 0;
  /// Period of the cache-digest exchange (seconds). Shards see remote cache
  /// state through digests at most this stale; 0 = always fresh (every
  /// decision reads a just-rebuilt digest).
  double digestPeriodSec = 0.0;
  /// Steal work from the most-backlogged peer when a shard's queue drains.
  bool steal = true;
  /// Arrival routing: "affinity" sends each job to the shard whose slice's
  /// digest claims the most of its data; "rr" round-robins over live shards.
  std::string route = "affinity";
  /// Admission window: jobs a shard's inner policy holds open at once;
  /// further jobs wait in the shard's pending queue (the stealable tail).
  /// 0 = auto: unlimited for a single shard, 2 CPU slots' worth (min 4)
  /// per shard otherwise.
  int admit = 0;
  /// Digest resolution: buckets over the whole data space. One bit per
  /// (machine, bucket); a set bit means the machine caches at least half
  /// the bucket.
  int buckets = 256;

  [[nodiscard]] bool enabled() const { return count > 0; }

  friend bool operator==(const ShardConfig&, const ShardConfig&) = default;
};

/// Parse a shard spec: "" or "off" disables; otherwise the shard count
/// first, then optional key=value items, e.g. "4,digest=600,steal=off".
/// Keys: digest (seconds, >= 0), steal (on|off), route (affinity|rr),
/// admit (>= 0), buckets (>= 1). Strict: a zero count, duplicate keys,
/// unknown keys and trailing garbage all throw std::invalid_argument with
/// a message naming the offender.
ShardConfig parseShardSpec(const std::string& spec);

/// Inverse of parseShardSpec: "off" when disabled, otherwise the count plus
/// every non-default key. parseShardSpec(formatShardSpec(c)) == c.
std::string formatShardSpec(const ShardConfig& cfg);

/// Upper edges (seconds) of the digest-age histogram buckets; the histogram
/// has one extra bucket for ages beyond the last edge.
inline constexpr double kDigestAgeEdgesSec[] = {1.0,    10.0,   60.0,  300.0,
                                                1800.0, 7200.0, 43200.0};

/// Per-shard accounting over one run.
struct ShardStats {
  int shard = 0;
  /// Global CPU-slot range [nodeBegin, nodeEnd) this shard owns.
  int nodeBegin = 0;
  int nodeEnd = 0;
  std::size_t jobsRouted = 0;     ///< arrivals routed to this shard
  std::size_t jobsStolenIn = 0;   ///< jobs this shard stole from peers
  std::size_t jobsStolenOut = 0;  ///< jobs peers stole from this shard
  std::size_t jobsRehomed = 0;    ///< pending jobs re-homed after the slice died
  std::size_t peakQueueDepth = 0; ///< peak pending (un-admitted) queue depth
  double meanQueueDepth = 0.0;    ///< mean pending depth, sampled per arrival
};

/// What the sharded coordinator measured over one run. Attached to
/// RunResult; enabled == false on unsharded runs.
struct ShardReport {
  bool enabled = false;
  int count = 0;
  double digestPeriodSec = 0.0;
  bool steal = true;
  std::size_t steals = 0;         ///< jobs moved between shards by stealing
  std::size_t stealAttempts = 0;  ///< steal passes that found a victim
  /// Stale-decision regret: steals whose digest-predicted cache coverage on
  /// the thief's slice was over twice what the caches actually held.
  std::size_t staleSteals = 0;
  std::size_t digestRefreshes = 0;
  /// Digest age at each digest-guided decision (routing and stealing).
  double meanDigestAgeSec = 0.0;
  std::size_t digestAgeSamples = 0;
  /// Histogram over kDigestAgeEdgesSec (one trailing overflow bucket).
  std::vector<std::uint64_t> digestAgeHistogram;
  std::vector<ShardStats> shards;
};

}  // namespace ppsched
