#include "shard/coordinator.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ppsched {
namespace {

/// Restores a flag on scope exit even when a callback throws.
struct ScopeFlag {
  explicit ScopeFlag(bool& flag) : flag_(flag) { flag_ = true; }
  ~ScopeFlag() { flag_ = false; }
  bool& flag_;
};

}  // namespace

ShardedCoordinator::ShardedCoordinator(ShardConfig cfg, PolicyFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {
  probe_ = factory_();
  innerName_ = probe_->name();
  usesCaching_ = probe_->usesCaching();
  digestAgeHistogram_.assign(std::size(kDigestAgeEdgesSec) + 1, 0);
}

void ShardedCoordinator::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  real_ = &host;
  const int machines = host.config().numNodes;
  const int cpus = host.config().cpusPerNode;
  const int k = std::max(1, std::min(cfg_.count, machines));
  shards_.resize(static_cast<std::size_t>(k));
  machineShard_.assign(static_cast<std::size_t>(machines), 0);
  for (int s = 0; s < k; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.machineBegin = s * machines / k;
    shard.machineEnd = (s + 1) * machines / k;
    shard.view = std::make_unique<ShardHostView>(*this, host, s, shard.machineBegin,
                                                 shard.machineEnd);
    shard.policy = (s == 0) ? std::move(probe_) : factory_();
    shard.policy->bind(*shard.view);
    shard.stats.shard = s;
    shard.stats.nodeBegin = shard.machineBegin * cpus;
    shard.stats.nodeEnd = shard.machineEnd * cpus;
    for (int m = shard.machineBegin; m < shard.machineEnd; ++m) {
      machineShard_[static_cast<std::size_t>(m)] = s;
    }
  }
  board_ = std::make_unique<DigestBoard>(cfg_.digestPeriodSec, host.config().totalEvents(),
                                         cfg_.buckets, machines);
}

int ShardedCoordinator::machineShard(NodeId globalNode) const {
  const int machine = globalNode / real_->config().cpusPerNode;
  return machineShard_[static_cast<std::size_t>(machine)];
}

bool ShardedCoordinator::sliceAlive(const Shard& s) const {
  const int cpus = real_->config().cpusPerNode;
  for (int m = s.machineBegin; m < s.machineEnd; ++m) {
    if (real_->isUp(m * cpus)) return true;
  }
  return false;
}

std::size_t ShardedCoordinator::admitLimit(const Shard& s) const {
  if (cfg_.admit > 0) return static_cast<std::size_t>(cfg_.admit);
  if (shards_.size() <= 1) return std::numeric_limits<std::size_t>::max();
  const std::size_t slots = static_cast<std::size_t>(s.machineEnd - s.machineBegin) *
                            static_cast<std::size_t>(real_->config().cpusPerNode);
  return std::max<std::size_t>(4, 2 * slots);
}

std::uint64_t ShardedCoordinator::sliceDigestEstimate(const Shard& s, EventRange r) const {
  std::uint64_t total = 0;
  for (int m = s.machineBegin; m < s.machineEnd; ++m) total += board_->estimate(m, r);
  return total;
}

std::uint64_t ShardedCoordinator::sliceActualCached(const Shard& s, EventRange r) const {
  const int cpus = real_->config().cpusPerNode;
  std::uint64_t total = 0;
  for (int m = s.machineBegin; m < s.machineEnd; ++m) {
    total += real_->cluster().node(m * cpus).cache().overlapSize(r);
  }
  return total;
}

void ShardedCoordinator::consultDigests() {
  board_->refresh(real_->now(), real_->cluster(), real_->config().cpusPerNode);
  const double age = board_->age(real_->now());
  digestAgeSum_ += age;
  ++digestAgeSamples_;
  std::size_t bucket = std::size(kDigestAgeEdgesSec);  // overflow by default
  for (std::size_t i = 0; i < std::size(kDigestAgeEdgesSec); ++i) {
    if (age <= kDigestAgeEdgesSec[i]) {
      bucket = i;
      break;
    }
  }
  ++digestAgeHistogram_[bucket];
}

int ShardedCoordinator::routeShard(const Job& job) {
  const int k = static_cast<int>(shards_.size());
  if (k == 1) return 0;
  if (cfg_.route == "rr") {
    // Round-robin over live slices; all dead degenerates to plain rotation.
    for (int tries = 0; tries < k; ++tries) {
      const int s = static_cast<int>(rrNext_++ % static_cast<std::size_t>(k));
      if (sliceAlive(shards_[static_cast<std::size_t>(s)])) return s;
    }
    return static_cast<int>(rrNext_++ % static_cast<std::size_t>(k));
  }
  // Affinity: the slice whose digests claim the most of the job's data; ties
  // go to the least-loaded slice, then the lowest id. A slice that caches
  // nothing competes purely on load.
  consultDigests();
  int best = -1;
  std::uint64_t bestScore = 0;
  std::size_t bestLoad = 0;
  bool anyAlive = false;
  for (int s = 0; s < k; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    if (!sliceAlive(shard)) continue;
    const std::uint64_t score = sliceDigestEstimate(shard, job.range);
    const std::size_t load = shard.pending.size() + shard.open;
    if (!anyAlive || score > bestScore || (score == bestScore && load < bestLoad)) {
      anyAlive = true;
      best = s;
      bestScore = score;
      bestLoad = load;
    }
  }
  if (best >= 0) return best;
  // Whole cluster down: park with the least-loaded shard; admission waits
  // for a repair anyway.
  std::size_t minLoad = std::numeric_limits<std::size_t>::max();
  best = 0;
  for (int s = 0; s < k; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::size_t load = shard.pending.size() + shard.open;
    if (load < minLoad) {
      minLoad = load;
      best = s;
    }
  }
  return best;
}

void ShardedCoordinator::onJobArrival(const Job& job) {
  const int s = routeShard(job);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  jobShard_[job.id] = s;
  shard.pending.push_back(job.id);
  ++shard.stats.jobsRouted;
  const std::size_t depth = shard.pending.size();
  shard.stats.peakQueueDepth = std::max(shard.stats.peakQueueDepth, depth);
  shard.depthSum += static_cast<double>(depth);
  ++shard.depthSamples;
  afterCallback();
}

void ShardedCoordinator::onRunFinished(NodeId node, const RunReport& report) {
  if (report.jobCompleted) {
    const auto it = jobShard_.find(report.subjob.job);
    if (it != jobShard_.end()) {
      Shard& owner = shards_[static_cast<std::size_t>(it->second)];
      if (owner.open > 0) --owner.open;
      jobShard_.erase(it);
    }
  }
  const int s = machineShard(node);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  shard.policy->onRunFinished(shard.view->toLocal(node), report);
  afterCallback();
}

void ShardedCoordinator::onTimer(TimerId timer) {
  int s = 0;
  const auto it = timerShard_.find(timer);
  if (it != timerShard_.end()) {
    s = it->second;
    timerShard_.erase(it);
  }
  shards_[static_cast<std::size_t>(s)].policy->onTimer(timer);
  afterCallback();
}

void ShardedCoordinator::onNodeDown(NodeId node, const RunReport* lost) {
  const int s = machineShard(node);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  shard.policy->onNodeDown(shard.view->toLocal(node), lost);
  if (!sliceAlive(shard)) rehomeOrphans(shard);
  afterCallback();
}

void ShardedCoordinator::onNodeUp(NodeId node) {
  const int s = machineShard(node);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  shard.policy->onNodeUp(shard.view->toLocal(node));
  afterCallback();
}

void ShardedCoordinator::noteDispatch(int shard, JobId job) {
  const auto it = jobShard_.find(job);
  if (it == jobShard_.end()) return;  // completed / untracked: the host validates
  if (it->second != shard) {
    throw std::logic_error("shard " + std::to_string(shard) + " dispatched job " +
                           std::to_string(job) + " owned by shard " +
                           std::to_string(it->second));
  }
}

void ShardedCoordinator::registerTimer(TimerId id, int shard) { timerShard_[id] = shard; }

void ShardedCoordinator::unregisterTimer(TimerId id) { timerShard_.erase(id); }

void ShardedCoordinator::deferLost(int shard, Subjob sj) {
  if (shards_.size() <= 1) {
    // Single shard: the global first-fit drain IS the slice drain —
    // forwarding keeps the K=1 path bit-identical to the unsharded host.
    real_->deferLost(std::move(sj));
    return;
  }
  shards_[static_cast<std::size_t>(shard)].parked.push_back(std::move(sj));
}

void ShardedCoordinator::afterCallback() {
  if (inSweep_) return;
  ScopeFlag guard(inSweep_);
  for (Shard& s : shards_) {
    admitPending(s);
    drainParked(s);
  }
  if (cfg_.steal && shards_.size() > 1) stealWork();
}

void ShardedCoordinator::admitPending(Shard& s) {
  while (!s.pending.empty() && s.open < admitLimit(s) && sliceAlive(s)) {
    const JobId id = s.pending.front();
    s.pending.pop_front();
    if (real_->jobDone(id)) {
      jobShard_.erase(id);
      continue;
    }
    ++s.open;
    s.policy->onJobArrival(real_->job(id));
  }
}

void ShardedCoordinator::drainParked(Shard& s) {
  // Engine::drainDeferred, restricted to the owning slice: first idle node
  // of the slice takes the first still-needed interval; the rest re-parks.
  const int cpus = real_->config().cpusPerNode;
  const NodeId sliceBegin = s.machineBegin * cpus;
  const NodeId sliceEnd = s.machineEnd * cpus;
  while (!s.parked.empty()) {
    NodeId target = kNoNode;
    for (NodeId n = sliceBegin; n < sliceEnd; ++n) {
      if (real_->isIdle(n)) {
        target = n;
        break;
      }
    }
    if (target == kNoNode) return;
    Subjob sj = std::move(s.parked.front());
    s.parked.pop_front();
    if (real_->jobDone(sj.job)) continue;
    // Trim anything completed or re-dispatched since the loss: only work
    // that is still remaining and not running anywhere may start.
    IntervalSet todo = real_->remainingOf(sj.job).intersectWith(sj.range);
    for (NodeId n = 0; n < real_->numNodes(); ++n) {
      const RunningView rv = real_->running(n);
      if (rv.active && rv.subjob.job == sj.job) todo.erase(rv.subjob.range);
    }
    bool started = false;
    for (const EventRange& r : todo.intervals()) {
      Subjob piece = sj;
      piece.range = r;
      if (!started) {
        real_->startRun(target, piece);
        started = true;
      } else {
        s.parked.push_back(piece);
      }
    }
  }
}

void ShardedCoordinator::stealWork() {
  // Keep sweeping until no shard can steal: each steal admits one job, so
  // the total pending count strictly decreases and the loop terminates.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t t = 0; t < shards_.size(); ++t) {
      Shard& thief = shards_[t];
      if (!thief.pending.empty()) continue;  // it has local work to admit
      if (!sliceAlive(thief)) continue;
      if (thief.open >= admitLimit(thief)) continue;
      bool hasIdle = false;
      const int cpus = real_->config().cpusPerNode;
      for (NodeId n = thief.machineBegin * cpus; n < thief.machineEnd * cpus; ++n) {
        if (real_->isIdle(n)) {
          hasIdle = true;
          break;
        }
      }
      if (!hasIdle) continue;
      // Victim: the most-backlogged peer (ties: lowest shard id).
      int v = -1;
      std::size_t backlog = 0;
      for (std::size_t o = 0; o < shards_.size(); ++o) {
        if (o == t) continue;
        if (shards_[o].pending.size() > backlog) {
          backlog = shards_[o].pending.size();
          v = static_cast<int>(o);
        }
      }
      if (v < 0) continue;
      ++stealAttempts_;
      consultDigests();
      Shard& victim = shards_[static_cast<std::size_t>(v)];
      // Prefer the queued job whose data the thief's slice caches most,
      // per the (possibly stale) digest; scan a bounded prefix so a huge
      // backlog cannot turn one steal into a full-queue scoring pass.
      const std::size_t scan = std::min<std::size_t>(victim.pending.size(), 32);
      std::size_t bestIdx = 0;
      std::uint64_t bestScore = 0;
      for (std::size_t i = 0; i < scan; ++i) {
        const std::uint64_t score =
            sliceDigestEstimate(thief, real_->job(victim.pending[i]).range);
        if (score > bestScore) {
          bestScore = score;
          bestIdx = i;
        }
      }
      const JobId id = victim.pending[bestIdx];
      victim.pending.erase(victim.pending.begin() +
                           static_cast<std::ptrdiff_t>(bestIdx));
      // Stale-decision regret: the digest promised cache affinity the
      // slice's caches no longer deliver (less than half the promise).
      if (bestScore > 0 &&
          sliceActualCached(thief, real_->job(id).range) * 2 < bestScore) {
        ++staleSteals_;
      }
      jobShard_[id] = static_cast<int>(t);
      ++steals_;
      ++victim.stats.jobsStolenOut;
      ++thief.stats.jobsStolenIn;
      ++thief.open;
      thief.policy->onJobArrival(real_->job(id));
      progress = true;
    }
  }
}

void ShardedCoordinator::rehomeOrphans(Shard& from) {
  if (from.pending.empty()) return;
  int target = -1;
  std::size_t minLoad = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& peer = shards_[s];
    if (&peer == &from || !sliceAlive(peer)) continue;
    const std::size_t load = peer.pending.size() + peer.open;
    if (load < minLoad) {
      minLoad = load;
      target = static_cast<int>(s);
    }
  }
  if (target < 0) return;  // no live peer; jobs wait for a repair
  Shard& peer = shards_[static_cast<std::size_t>(target)];
  for (const JobId id : from.pending) {
    jobShard_[id] = target;
    peer.pending.push_back(id);
    ++from.stats.jobsRehomed;
  }
  from.pending.clear();
}

ISchedulerHost::PlanMemoStats ShardedCoordinator::viewPlanMemoStats() const {
  ISchedulerHost::PlanMemoStats total;
  for (const Shard& s : shards_) {
    if (!s.view) continue;
    const auto stats = s.view->planMemoStats();
    total.lookups += stats.lookups;
    total.hits += stats.hits;
  }
  return total;
}

ShardReport ShardedCoordinator::report() const {
  ShardReport rep;
  rep.enabled = true;
  rep.count = static_cast<int>(shards_.size());
  rep.digestPeriodSec = cfg_.digestPeriodSec;
  rep.steal = cfg_.steal;
  rep.steals = steals_;
  rep.stealAttempts = stealAttempts_;
  rep.staleSteals = staleSteals_;
  rep.digestRefreshes = board_ ? board_->refreshes() : 0;
  rep.meanDigestAgeSec =
      digestAgeSamples_ > 0 ? digestAgeSum_ / static_cast<double>(digestAgeSamples_) : 0.0;
  rep.digestAgeSamples = digestAgeSamples_;
  rep.digestAgeHistogram = digestAgeHistogram_;
  rep.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    ShardStats st = s.stats;
    st.meanQueueDepth =
        s.depthSamples > 0 ? s.depthSum / static_cast<double>(s.depthSamples) : 0.0;
    rep.shards.push_back(st);
  }
  return rep;
}

}  // namespace ppsched
