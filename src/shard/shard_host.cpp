#include "shard/shard_host.h"

#include "shard/coordinator.h"

namespace ppsched {
namespace {

SimConfig narrowConfig(const SimConfig& real, int machineBegin, int machineEnd) {
  SimConfig cfg = real;
  cfg.numNodes = machineEnd - machineBegin;
  cfg.shards = {};  // the inner policy must not see the sharding layer
  if (!real.nodeSpeedFactors.empty()) {
    const auto begin =
        real.nodeSpeedFactors.begin() + machineBegin * real.cpusPerNode;
    cfg.nodeSpeedFactors.assign(begin, begin + cfg.numNodes * real.cpusPerNode);
  }
  // Deliberately not re-finalized: derived workload fields were already
  // filled from the (unchanged) data space, and re-validation could reject
  // a slice of an otherwise valid config.
  return cfg;
}

Cluster subCluster(ISchedulerHost& real, NodeId base, int count) {
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    nodes.push_back(real.cluster().node(base + i).withId(i));
  }
  return Cluster(std::move(nodes));
}

}  // namespace

ShardHostView::ShardHostView(ShardedCoordinator& coord, ISchedulerHost& real, int shard,
                             int machineBegin, int machineEnd)
    : coord_(coord),
      real_(real),
      shard_(shard),
      base_(machineBegin * real.config().cpusPerNode),
      count_((machineEnd - machineBegin) * real.config().cpusPerNode),
      cfg_(narrowConfig(real.config(), machineBegin, machineEnd)),
      sub_(subCluster(real, base_, count_)) {}

std::vector<NodeId> ShardHostView::idleNodes() const {
  std::vector<NodeId> out;
  for (NodeId local = 0; local < count_; ++local) {
    if (real_.isIdle(toGlobal(local))) out.push_back(local);
  }
  return out;
}

void ShardHostView::startRun(NodeId node, Subjob sj, AccessPlan plan) {
  coord_.noteDispatch(shard_, sj.job);
  if (plan.servingNode != kNoNode) plan.servingNode = toGlobal(plan.servingNode);
  real_.startRun(toGlobal(node), std::move(sj), plan);
}

void ShardHostView::prefetch(NodeId dst, EventRange range, AccessPlan plan) {
  if (plan.servingNode != kNoNode) plan.servingNode = toGlobal(plan.servingNode);
  real_.prefetch(toGlobal(dst), range, plan);
}

TimerId ShardHostView::scheduleTimer(SimTime at) {
  const TimerId id = real_.scheduleTimer(at);
  coord_.registerTimer(id, shard_);
  return id;
}

void ShardHostView::cancelTimer(TimerId id) {
  real_.cancelTimer(id);
  coord_.unregisterTimer(id);
}

void ShardHostView::deferLost(Subjob sj) { coord_.deferLost(shard_, std::move(sj)); }

}  // namespace ppsched
