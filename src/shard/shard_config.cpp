#include "shard/shard_config.h"

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ppsched {
namespace {

double parseNonNegativeDouble(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("shard spec: bad value for '" + key + "': '" +
                                value + "'");
  }
  if (pos != value.size() || !(parsed >= 0.0)) {
    throw std::invalid_argument("shard spec: bad value for '" + key + "': '" +
                                value + "'");
  }
  return parsed;
}

int parseInt(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("shard spec: bad value for '" + key + "': '" +
                                value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument("shard spec: bad value for '" + key + "': '" +
                                value + "'");
  }
  return parsed;
}

bool parseOnOff(const std::string& key, const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw std::invalid_argument("shard spec: '" + key + "' must be on|off, got '" +
                              value + "'");
}

}  // namespace

ShardConfig parseShardSpec(const std::string& spec) {
  ShardConfig cfg;
  if (spec.empty() || spec == "off") return cfg;

  std::istringstream in(spec);
  std::string item;
  bool first = true;
  std::set<std::string> seen;
  while (std::getline(in, item, ',')) {
    if (first) {
      first = false;
      if (item.find('=') != std::string::npos) {
        throw std::invalid_argument(
            "shard spec: expected the shard count first, got '" + item + "'");
      }
      cfg.count = parseInt("count", item);
      if (cfg.count < 1) {
        throw std::invalid_argument("shard spec: count must be >= 1, got '" +
                                    item + "'");
      }
      continue;
    }
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("shard spec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("shard spec: duplicate key '" + key + "'");
    }
    if (key == "digest") {
      cfg.digestPeriodSec = parseNonNegativeDouble(key, value);
    } else if (key == "steal") {
      cfg.steal = parseOnOff(key, value);
    } else if (key == "route") {
      if (value != "affinity" && value != "rr") {
        throw std::invalid_argument(
            "shard spec: route must be affinity|rr, got '" + value + "'");
      }
      cfg.route = value;
    } else if (key == "admit") {
      cfg.admit = parseInt(key, value);
      if (cfg.admit < 0) {
        throw std::invalid_argument("shard spec: admit must be >= 0, got '" +
                                    value + "'");
      }
    } else if (key == "buckets") {
      cfg.buckets = parseInt(key, value);
      if (cfg.buckets < 1) {
        throw std::invalid_argument("shard spec: buckets must be >= 1, got '" +
                                    value + "'");
      }
    } else {
      throw std::invalid_argument("shard spec: unknown key '" + key + "'");
    }
  }
  // getline drops nothing silently, but a trailing comma produces an empty
  // final item only when characters follow it; catch "4," explicitly.
  if (!spec.empty() && spec.back() == ',') {
    throw std::invalid_argument("shard spec: trailing ',' in '" + spec + "'");
  }
  return cfg;
}

std::string formatShardSpec(const ShardConfig& cfg) {
  if (!cfg.enabled()) return "off";
  std::ostringstream out;
  out << cfg.count;
  if (cfg.digestPeriodSec != 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", cfg.digestPeriodSec);
    out << ",digest=" << buf;
  }
  if (!cfg.steal) out << ",steal=off";
  if (cfg.route != "affinity") out << ",route=" << cfg.route;
  if (cfg.admit != 0) out << ",admit=" << cfg.admit;
  if (cfg.buckets != 256) out << ",buckets=" << cfg.buckets;
  return out.str();
}

}  // namespace ppsched
