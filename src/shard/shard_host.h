// Shard-scoped view of a scheduler host.
//
// Each shard's inner policy is an unmodified ISchedulerPolicy; it must not
// know it owns only a slice of the cluster. ShardHostView narrows the real
// host to the shard's contiguous machine slice: node ids are re-numbered to
// 0..sliceCpus-1 (policies iterate 0..numNodes()-1 and index from zero),
// cluster() is a sub-Cluster of re-numbered Node aliases sharing the real
// nodes' caches and liveness flags, and config() reports the slice's node
// count and speed factors. Actions translate back to global ids; dispatches
// are checked against the coordinator's job-ownership map, and deferred
// lost work is parked with the coordinator (which re-dispatches strictly
// within the owning slice — the global host's first-fit drain would leak
// runs across shard boundaries).
#pragma once

#include "core/host.h"

namespace ppsched {

class ShardedCoordinator;

class ShardHostView final : public ISchedulerHost {
 public:
  /// View of `real` restricted to machines [machineBegin, machineEnd).
  ShardHostView(ShardedCoordinator& coord, ISchedulerHost& real, int shard,
                int machineBegin, int machineEnd);

  // --- id translation ---------------------------------------------------
  [[nodiscard]] NodeId toGlobal(NodeId local) const { return local + base_; }
  [[nodiscard]] NodeId toLocal(NodeId global) const { return global - base_; }
  [[nodiscard]] bool ownsGlobal(NodeId global) const {
    return global >= base_ && global < base_ + count_;
  }

  // --- time & topology --------------------------------------------------
  [[nodiscard]] SimTime now() const override { return real_.now(); }
  [[nodiscard]] const SimConfig& config() const override { return cfg_; }
  [[nodiscard]] int numNodes() const override { return count_; }
  [[nodiscard]] Cluster& cluster() override { return sub_; }

  // --- node state -------------------------------------------------------
  [[nodiscard]] bool isUp(NodeId node) const override { return real_.isUp(toGlobal(node)); }
  [[nodiscard]] bool isIdle(NodeId node) const override {
    return real_.isIdle(toGlobal(node));
  }
  [[nodiscard]] std::vector<NodeId> idleNodes() const override;
  [[nodiscard]] RunningView running(NodeId node) const override {
    return real_.running(toGlobal(node));
  }

  // --- job bookkeeping (global: job ids are cluster-wide) ----------------
  [[nodiscard]] const Job& job(JobId id) const override { return real_.job(id); }
  [[nodiscard]] const IntervalSet& remainingOf(JobId id) const override {
    return real_.remainingOf(id);
  }
  [[nodiscard]] bool jobDone(JobId id) const override { return real_.jobDone(id); }
  [[nodiscard]] std::size_t jobsInSystem() const override { return real_.jobsInSystem(); }

  // --- actions ----------------------------------------------------------
  void startRun(NodeId node, Subjob sj, AccessPlan plan = {}) override;
  using ISchedulerHost::startRun;
  void prefetch(NodeId dst, EventRange range, AccessPlan plan = {}) override;
  Subjob preempt(NodeId node) override { return real_.preempt(toGlobal(node)); }
  TimerId scheduleTimer(SimTime at) override;
  void cancelTimer(TimerId id) override;
  ActionId at(SimTime when, std::function<void()> action) override {
    return real_.at(when, std::move(action));
  }
  void deferLost(Subjob sj) override;
  void noteSchedulingDelay(JobId id, Duration delay) override {
    real_.noteSchedulingDelay(id, delay);
  }

  // --- cost feedback / placement (delegate with translated ids, so the
  // real host's contention-aware estimates flow through) ------------------
  [[nodiscard]] double estimatedSecPerEvent(NodeId node, NodeId remoteFrom,
                                            DataSource src) const override {
    return real_.estimatedSecPerEvent(
        toGlobal(node), remoteFrom == kNoNode ? kNoNode : toGlobal(remoteFrom), src);
  }
  [[nodiscard]] bool sameSwitch(NodeId a, NodeId b) const override {
    return real_.sameSwitch(toGlobal(a), toGlobal(b));
  }
  [[nodiscard]] double estimatedTransferBytesPerSec(NodeId dst, NodeId src) const override {
    return real_.estimatedTransferBytesPerSec(
        toGlobal(dst), src == kNoNode ? kNoNode : toGlobal(src));
  }
  /// Shares the real host's planning epoch: the view's planAccess memo (its
  /// candidate scan walks only the slice's sub-cluster) invalidates exactly
  /// when the simulator's state changes.
  [[nodiscard]] std::uint64_t planEpoch() const override { return real_.planEpoch(); }

 private:
  ShardedCoordinator& coord_;
  ISchedulerHost& real_;
  int shard_;
  NodeId base_;   ///< first global CPU slot of the slice
  int count_;     ///< CPU slots in the slice
  SimConfig cfg_; ///< the real config narrowed to the slice
  Cluster sub_;   ///< re-numbered aliases of the slice's nodes
};

}  // namespace ppsched
