// Sharded multi-master scheduling.
//
// The ShardedCoordinator is a meta-policy: it partitions the cluster into K
// contiguous machine slices, instantiates one unmodified inner policy per
// slice behind a ShardHostView, and routes every host callback to the shard
// that owns it. What the single master did globally is decomposed into
//
//   - routing: each arriving job goes to one shard's pending queue —
//     "affinity" scores slices by their cache digests (shard/digest.h),
//     "rr" round-robins;
//   - admission: a shard feeds its inner policy at most `admit` jobs at a
//     time; the un-admitted tail is the coordinator's (stealable) queue;
//   - stealing: a shard with an empty queue and spare capacity takes the
//     head of the most-backlogged peer's queue, preferring jobs whose data
//     its slice caches according to the (possibly stale) digest — the
//     inner policy then re-prices the job against ground truth through
//     planAccess on dispatch;
//   - failure rehoming: when a slice's machines are all down, its pending
//     (un-admitted) jobs move to a live peer. Jobs already admitted stay
//     with their policy (only it knows their internal state) and resume on
//     repair; their lost run remainders are parked per shard and drained
//     strictly within the owning slice.
//
// Ownership invariant: every job belongs to exactly one shard at a time
// (transfers happen only before admission — steal and rehome — so no inner
// policy ever shares a job). ShardHostView::startRun checks each dispatch
// against the ownership map and throws on a violation.
//
// K == 1 is bit-identical to the unsharded path: one view spanning every
// machine (identity id translation), unlimited admission (arrivals reach
// the inner policy synchronously, in order), deferLost forwarded verbatim
// to the real host, and no digests, routing or stealing on the decision
// path. The golden pins in tests/test_shard.cpp hold all ten policies to
// this.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "shard/digest.h"
#include "shard/shard_config.h"
#include "shard/shard_host.h"

namespace ppsched {

class ShardedCoordinator final : public ISchedulerPolicy {
 public:
  using PolicyFactory = std::function<std::unique_ptr<ISchedulerPolicy>()>;

  /// `factory` builds one inner policy per shard (all identical).
  ShardedCoordinator(ShardConfig cfg, PolicyFactory factory);

  [[nodiscard]] std::string name() const override { return "sharded(" + innerName_ + ")"; }
  [[nodiscard]] bool usesCaching() const override { return usesCaching_; }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;
  void onTimer(TimerId timer) override;
  void onNodeDown(NodeId node, const RunReport* lost) override;
  void onNodeUp(NodeId node) override;

  /// Accounting over the run so far (attached to RunResult by experiment).
  [[nodiscard]] ShardReport report() const;

  /// planAccess memo counters summed over the per-shard host views (each
  /// view keeps its own memo over the slice's sub-cluster). The engine's own
  /// counters are separate; bench/ext_scheduler_overhead adds the two.
  [[nodiscard]] ISchedulerHost::PlanMemoStats viewPlanMemoStats() const;

  // --- callbacks from ShardHostView --------------------------------------
  /// A shard's inner policy dispatches `job`; throws std::logic_error when
  /// the job is owned by a different shard (the two-masters bug this
  /// subsystem must never have).
  void noteDispatch(int shard, JobId job);
  void registerTimer(TimerId id, int shard);
  void unregisterTimer(TimerId id);
  /// Lost-work parking: forwarded to the real host at K <= 1 (bit-identity
  /// with the global first-fit drain); parked per shard otherwise.
  void deferLost(int shard, Subjob sj);

 private:
  struct Shard {
    std::unique_ptr<ShardHostView> view;
    std::unique_ptr<ISchedulerPolicy> policy;
    int machineBegin = 0;
    int machineEnd = 0;
    std::deque<JobId> pending;  ///< routed, not yet admitted (stealable)
    std::deque<Subjob> parked;  ///< lost-run remainders awaiting re-dispatch
    std::size_t open = 0;       ///< jobs admitted and not yet completed
    ShardStats stats;
    double depthSum = 0.0;        ///< accumulators behind stats.meanQueueDepth
    std::size_t depthSamples = 0;
  };

  [[nodiscard]] int machineShard(NodeId globalNode) const;
  [[nodiscard]] bool sliceAlive(const Shard& s) const;
  [[nodiscard]] std::size_t admitLimit(const Shard& s) const;
  [[nodiscard]] int routeShard(const Job& job);
  /// Digest-estimated events of `r` cached across `s`'s slice.
  [[nodiscard]] std::uint64_t sliceDigestEstimate(const Shard& s, EventRange r) const;
  /// Ground-truth events of `r` cached across `s`'s slice (regret check).
  [[nodiscard]] std::uint64_t sliceActualCached(const Shard& s, EventRange r) const;
  /// Refresh the digest board and record the age of the digests consulted.
  void consultDigests();

  /// Post-callback sweep: admit pending jobs up to each shard's window,
  /// drain parked lost work within each slice, then steal across shards.
  void afterCallback();
  void admitPending(Shard& s);
  void drainParked(Shard& s);
  void stealWork();
  /// Move every pending (un-admitted) job of the dead shard `from` to the
  /// least-loaded live peer. Admitted jobs and their parked remainders stay
  /// with `from`'s policy — only it knows their internal state — and resume
  /// when the slice repairs.
  void rehomeOrphans(Shard& from);

  ShardConfig cfg_;
  PolicyFactory factory_;
  std::unique_ptr<ISchedulerPolicy> probe_;  ///< becomes shard 0's policy at bind
  std::string innerName_;
  bool usesCaching_ = true;

  ISchedulerHost* real_ = nullptr;
  std::vector<Shard> shards_;
  std::vector<int> machineShard_;  ///< machine index -> shard
  std::unique_ptr<DigestBoard> board_;
  std::unordered_map<JobId, int> jobShard_;
  std::unordered_map<TimerId, int> timerShard_;
  bool inSweep_ = false;   ///< afterCallback re-entry guard
  std::size_t rrNext_ = 0; ///< next shard for route=rr

  // Run-wide counters (see ShardReport).
  std::size_t steals_ = 0;
  std::size_t stealAttempts_ = 0;
  std::size_t staleSteals_ = 0;
  double digestAgeSum_ = 0.0;
  std::size_t digestAgeSamples_ = 0;
  std::vector<std::uint64_t> digestAgeHistogram_;
};

}  // namespace ppsched
