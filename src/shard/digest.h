// Staleness-bounded cache digests.
//
// Shards do not see each other's caches directly; they exchange compact
// summaries on a period. A CacheDigest is a coarse bitmap over the event
// space: the space is cut into fixed-size buckets and a bucket's bit is set
// when the summarized cache holds at least half of it. That makes a digest
// a few dozen bytes per machine regardless of cache fragmentation — cheap
// enough to broadcast — at the price of resolution and, between refreshes,
// staleness. The DigestBoard owns one digest per physical machine and
// refreshes them lazily: the first digest-guided decision inside each
// period window rebuilds the board from ground truth (no timers, so an
// idle simulation still terminates).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sim/time.h"
#include "storage/interval_set.h"

namespace ppsched {

class LruExtentCache;

/// Coarse interval bitmap over the event space [0, totalEvents).
class CacheDigest {
 public:
  CacheDigest() = default;
  CacheDigest(std::uint64_t totalEvents, int buckets);

  /// Re-summarize `cache`: bucket bit set iff the cache holds at least half
  /// of that bucket's events.
  void rebuild(const LruExtentCache& cache);

  /// Events of `r` falling in set buckets — the digest's estimate of how
  /// much of `r` the summarized cache holds. An over- or under-estimate of
  /// up to half a bucket per boundary even when fresh; arbitrarily wrong
  /// when stale.
  [[nodiscard]] std::uint64_t estimate(EventRange r) const;

  [[nodiscard]] int buckets() const { return static_cast<int>(bits_.size()); }
  [[nodiscard]] bool bit(int bucket) const { return bits_[static_cast<std::size_t>(bucket)]; }

 private:
  [[nodiscard]] EventRange bucketRange(int bucket) const;

  std::uint64_t totalEvents_ = 0;
  std::uint64_t perBucket_ = 0;
  std::vector<bool> bits_;
};

/// One digest per physical machine plus the refresh clock. Staleness is
/// measured from the instant the board was actually rebuilt.
class DigestBoard {
 public:
  DigestBoard(double periodSec, std::uint64_t totalEvents, int buckets, int machines);

  /// Lazily refresh: with period <= 0 every call rebuilds; otherwise the
  /// board rebuilds once per period window (floor(now / period) changing).
  /// Reads each machine's cache through its first CPU slot.
  void refresh(SimTime now, const Cluster& cluster, int cpusPerNode);

  /// Digest-estimated events of `r` cached on `machine`.
  [[nodiscard]] std::uint64_t estimate(int machine, EventRange r) const;

  /// Age of the current digests; 0 before the first rebuild.
  [[nodiscard]] double age(SimTime now) const {
    return builtAt_ < 0 ? 0.0 : static_cast<double>(now) - builtAt_;
  }
  [[nodiscard]] std::size_t refreshes() const { return refreshes_; }

 private:
  double periodSec_;
  std::uint64_t totalEvents_;
  int buckets_;
  long long epoch_ = -1;   // floor(now / period) of the last rebuild
  double builtAt_ = -1.0;  // instant of the last rebuild; < 0 = never
  std::size_t refreshes_ = 0;
  std::vector<CacheDigest> digests_;  // one per physical machine
};

}  // namespace ppsched
