#include "shard/digest.h"

#include <cmath>
#include <stdexcept>

#include "storage/lru_cache.h"

namespace ppsched {

CacheDigest::CacheDigest(std::uint64_t totalEvents, int buckets)
    : totalEvents_(totalEvents) {
  if (buckets < 1) throw std::invalid_argument("digest needs at least one bucket");
  perBucket_ = (totalEvents + static_cast<std::uint64_t>(buckets) - 1) /
               static_cast<std::uint64_t>(buckets);
  if (perBucket_ == 0) perBucket_ = 1;
  // The last bucket may be short (or empty) when buckets does not divide
  // totalEvents; bucketRange clamps to the data space.
  bits_.assign(static_cast<std::size_t>(buckets), false);
}

EventRange CacheDigest::bucketRange(int bucket) const {
  const EventIndex begin = static_cast<EventIndex>(bucket) * perBucket_;
  EventIndex end = begin + perBucket_;
  if (begin > totalEvents_) return {totalEvents_, totalEvents_};
  if (end > totalEvents_) end = totalEvents_;
  return {begin, end};
}

void CacheDigest::rebuild(const LruExtentCache& cache) {
  for (int b = 0; b < buckets(); ++b) {
    const EventRange r = bucketRange(b);
    if (r.empty()) {
      bits_[static_cast<std::size_t>(b)] = false;
      continue;
    }
    const std::uint64_t covered = cache.overlapSize(r);
    bits_[static_cast<std::size_t>(b)] = covered * 2 >= r.size();
  }
}

std::uint64_t CacheDigest::estimate(EventRange r) const {
  if (r.empty() || perBucket_ == 0 || bits_.empty()) return 0;
  std::uint64_t total = 0;
  int first = static_cast<int>(r.begin / perBucket_);
  int last = static_cast<int>((r.end - 1) / perBucket_);
  if (first >= buckets()) return 0;
  if (last >= buckets()) last = buckets() - 1;
  for (int b = first; b <= last; ++b) {
    if (!bits_[static_cast<std::size_t>(b)]) continue;
    const EventRange overlap = bucketRange(b).intersect(r);
    total += overlap.size();
  }
  return total;
}

DigestBoard::DigestBoard(double periodSec, std::uint64_t totalEvents, int buckets,
                         int machines)
    : periodSec_(periodSec), totalEvents_(totalEvents), buckets_(buckets) {
  digests_.assign(static_cast<std::size_t>(machines),
                  CacheDigest(totalEvents, buckets));
}

void DigestBoard::refresh(SimTime now, const Cluster& cluster, int cpusPerNode) {
  if (periodSec_ > 0.0) {
    const long long window = static_cast<long long>(std::floor(now / periodSec_));
    if (window == epoch_ && builtAt_ >= 0) return;
    epoch_ = window;
  }
  for (std::size_t m = 0; m < digests_.size(); ++m) {
    const NodeId slot = static_cast<NodeId>(m) * cpusPerNode;
    digests_[m].rebuild(cluster.node(slot).cache());
  }
  builtAt_ = now;
  ++refreshes_;
}

std::uint64_t DigestBoard::estimate(int machine, EventRange r) const {
  return digests_[static_cast<std::size_t>(machine)].estimate(r);
}

}  // namespace ppsched
