#include "cluster/node.h"

// Node is header-only today; this translation unit anchors the target and
// keeps a stable home for future node state (e.g. per-node failure models).
