#include "cluster/node.h"

// Node is header-only today; this translation unit anchors the target and
// keeps a stable home for heavier node state as the failure model grows
// (e.g. per-node repair statistics).
