// A processing node: one CPU plus a local disk cache.
//
// Paper assumptions (§2.4): identical single-CPU nodes, effectively infinite
// RAM (only one subjob runs per node at a time), a local disk cache of
// 50/100/200 GB. Run execution state lives in the engine; the node owns the
// durable part — its cache.
#pragma once

#include <cstdint>
#include <memory>

#include "storage/lru_cache.h"

namespace ppsched {

/// Index of a schedulable CPU within the cluster. With multi-CPU nodes
/// (SimConfig::cpusPerNode > 1) several consecutive NodeIds share one
/// physical machine and hence one disk cache.
using NodeId = int;
inline constexpr NodeId kNoNode = -1;

class Node {
 public:
  /// A node owning its private cache (the paper's single-CPU machine).
  Node(NodeId id, std::uint64_t cacheCapacityEvents)
      : id_(id),
        cache_(std::make_shared<LruExtentCache>(cacheCapacityEvents)),
        up_(std::make_shared<bool>(true)) {}

  /// A logical CPU sharing the cache (and liveness) of a physical machine
  /// (SMP extension). A null `sharedUp` gives the CPU its own liveness flag.
  Node(NodeId id, std::shared_ptr<LruExtentCache> sharedCache,
       std::shared_ptr<bool> sharedUp = nullptr)
      : id_(id),
        cache_(std::move(sharedCache)),
        up_(sharedUp ? std::move(sharedUp) : std::make_shared<bool>(true)) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] LruExtentCache& cache() { return *cache_; }
  [[nodiscard]] const LruExtentCache& cache() const { return *cache_; }
  /// True when this logical CPU shares its disk cache with `other`.
  [[nodiscard]] bool sharesCacheWith(const Node& other) const {
    return cache_ == other.cache_;
  }

  /// Liveness of the physical machine this CPU lives on. All CPUs of one
  /// machine share the flag: a crash takes the whole machine down.
  [[nodiscard]] bool isUp() const { return *up_; }
  void setUp(bool up) { *up_ = up; }
  /// True when this logical CPU lives on the same physical machine.
  [[nodiscard]] bool sharesMachineWith(const Node& other) const { return up_ == other.up_; }

  /// A re-numbered alias of this CPU sharing its cache and liveness. Sub-
  /// clusters (shard views) are built from these: the copy's cache and up
  /// flag are the physical machine's, only the id differs.
  [[nodiscard]] Node withId(NodeId id) const { return Node(id, cache_, up_); }

 private:
  NodeId id_;
  std::shared_ptr<LruExtentCache> cache_;
  std::shared_ptr<bool> up_;
};

}  // namespace ppsched
