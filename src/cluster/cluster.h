// The simulated cluster: a fixed set of identical nodes (§2.3, Fig 1).
//
// The master node of the paper runs only the scheduler, never subjobs; it is
// represented by the Engine/policy pair rather than by a Node.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "storage/interval_set.h"

namespace ppsched {

class Cluster {
 public:
  /// `numNodes` physical machines of `cpusPerNode` logical CPUs each. The
  /// cluster exposes numNodes*cpusPerNode schedulable NodeIds; CPUs of the
  /// same machine share one disk cache (paper default: cpusPerNode = 1).
  Cluster(int numNodes, std::uint64_t cacheCapacityEventsPerNode, int cpusPerNode = 1);

  /// A cluster over explicit nodes (shard views: re-numbered aliases of
  /// another cluster's nodes sharing their caches). Ids must be dense
  /// 0..n-1 in order.
  explicit Cluster(std::vector<Node> nodes);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  /// Portion of `r` cached on node `id`.
  [[nodiscard]] IntervalSet cachedOn(NodeId id, EventRange r) const;

  /// Nodes holding at least one event of `r` in cache, ascending id.
  [[nodiscard]] std::vector<NodeId> nodesCaching(EventRange r) const;

  /// The node caching the largest part of `r` (ties: lowest id);
  /// kNoNode when nothing is cached anywhere.
  [[nodiscard]] NodeId bestCacheNode(EventRange r) const;

  /// Union over all nodes of the cached portions of `r`.
  [[nodiscard]] IntervalSet cachedAnywhere(EventRange r) const;

  /// Total cached events across all nodes (duplicates counted once per
  /// node holding them).
  [[nodiscard]] std::uint64_t totalCachedEvents() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace ppsched
