#include "cluster/cluster.h"

#include <stdexcept>

namespace ppsched {

Cluster::Cluster(int numNodes, std::uint64_t cacheCapacityEventsPerNode, int cpusPerNode) {
  if (numNodes < 1) throw std::invalid_argument("cluster needs at least one node");
  if (cpusPerNode < 1) throw std::invalid_argument("cpusPerNode must be >= 1");
  nodes_.reserve(static_cast<std::size_t>(numNodes) * static_cast<std::size_t>(cpusPerNode));
  NodeId id = 0;
  for (int machine = 0; machine < numNodes; ++machine) {
    auto cache = std::make_shared<LruExtentCache>(cacheCapacityEventsPerNode);
    auto up = std::make_shared<bool>(true);
    for (int cpu = 0; cpu < cpusPerNode; ++cpu) {
      nodes_.emplace_back(id++, cache, up);
    }
  }
}

Cluster::Cluster(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.empty()) throw std::invalid_argument("cluster needs at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id() != static_cast<NodeId>(i)) {
      throw std::invalid_argument("cluster node ids must be dense 0..n-1");
    }
  }
}

Node& Cluster::node(NodeId id) {
  if (id < 0 || id >= size()) throw std::out_of_range("bad NodeId");
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(NodeId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("bad NodeId");
  return nodes_[static_cast<std::size_t>(id)];
}

IntervalSet Cluster::cachedOn(NodeId id, EventRange r) const {
  return node(id).cache().cachedIn(r);
}

std::vector<NodeId> Cluster::nodesCaching(EventRange r) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.cache().cachedIn(r).size() > 0) out.push_back(n.id());
  }
  return out;
}

NodeId Cluster::bestCacheNode(EventRange r) const {
  NodeId best = kNoNode;
  std::uint64_t bestAmount = 0;
  for (const Node& n : nodes_) {
    const std::uint64_t amount = n.cache().overlapSize(r);
    if (amount > bestAmount) {
      bestAmount = amount;
      best = n.id();
    }
  }
  return best;
}

IntervalSet Cluster::cachedAnywhere(EventRange r) const {
  IntervalSet out;
  for (const Node& n : nodes_) out.insert(n.cache().cachedIn(r));
  return out;
}

std::uint64_t Cluster::totalCachedEvents() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Count each physical cache once (CPUs of one machine share theirs).
    bool alias = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (nodes_[i].sharesCacheWith(nodes_[j])) {
        alias = true;
        break;
      }
    }
    if (!alias) total += nodes_[i].cache().used();
  }
  return total;
}

}  // namespace ppsched
