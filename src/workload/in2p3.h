// Real-trace ingestion: IN2P3 Computing Center batch records.
//
// The IN2P3 Computing Center 2024 workload dataset (arXiv 2606.05914)
// publishes a year of batch-system accounting: per job a submission time,
// the submitting user and group, and the requested/consumed resources.
// Medernach's grid-workload analysis (physics/0506176) of an IN2P3 cluster
// shows the shape such logs share: arrivals dominated by a few heavy users,
// heavy-tailed job sizes, diurnal load. This module maps that record shape
// onto the simulator's Job model so every policy can be driven by real
// arrival skew instead of Erlang synthetics.
//
// Input format: CSV with a mandatory header line naming the columns
// (flexible order, extra columns ignored), e.g.
//
//   submit_time,user,group,walltime_req
//   1704067260,u042,lhcb,14400
//   ...
//
//   - submit_time   seconds (absolute epoch or relative); non-decreasing
//   - user          opaque user label (mapped to dense UserIds first-seen)
//   - group         accounting group / experiment; determines which region
//                   of the event space the job reads (optional: one shared
//                   region when absent)
//   - walltime_req  requested walltime in seconds (> 0); converted to an
//                   event count via the reference per-event cost
//
// Mapping (In2p3MapConfig):
//   arrival = submit_time - first submit_time
//   events  = clamp(walltime_req / secPerEventRef, minJobEvents, groupSpan)
//   range   = a segment inside the group's region of the data space: each
//             group hashes to a contiguous region of `groupSpanFraction` of
//             the event space, and jobs start at a deterministic
//             per-job offset inside it — jobs of one experiment re-read
//             overlapping data, which is what gives caches a chance.
//   ids     = renumbered densely 0,1,2,... in arrival order
//
// The reader is a streaming JobSource: one record is parsed per next()
// call, so a million-job year replays in O(1) memory per job (only the
// user-label table grows, O(distinct users)).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/random.h"
#include "workload/generator.h"
#include "workload/job.h"

namespace ppsched {

/// How batch records map onto the simulator's data space / cost model.
struct In2p3MapConfig {
  /// Total events of the simulated data space (SimConfig::totalEvents()).
  std::uint64_t totalEvents = 3'333'333;
  /// Reference seconds/event for walltime -> events conversion (the
  /// paper's uncached single-node rate; SimConfig cost.uncachedSecPerEvent).
  double secPerEventRef = 0.8;
  /// Job sizes are clamped below by this (the paper's minimal job size).
  std::uint64_t minJobEvents = 10;
  /// Fraction of the event space one group's jobs read (its "dataset").
  double groupSpanFraction = 0.125;
  /// Group labels whose jobs are classed interactive (exact match on the
  /// record's group field); every other group maps to bulk. Production
  /// sites route interactive analysis through dedicated groups/queues, so
  /// the group column is the natural class carrier in accounting logs.
  std::vector<std::string> interactiveGroups;
};

/// One raw batch record (exposed for tests and converters).
struct In2p3Record {
  double submitTime = 0.0;
  std::string user;
  std::string group;
  double walltimeReq = 0.0;
};

/// Streaming reader: IN2P3-format CSV -> Jobs in arrival order with dense
/// ids and dense UserIds (assigned in order of first appearance). Throws
/// std::runtime_error with line numbers on malformed input, including
/// records whose submit times go backwards (batch accounting logs are
/// written in submission order; pre-sort anything that is not).
class In2p3TraceReader final : public JobSource {
 public:
  In2p3TraceReader(const std::string& path, In2p3MapConfig cfg);
  In2p3TraceReader(std::unique_ptr<std::istream> in, In2p3MapConfig cfg,
                   std::string name = "<stream>");

  std::optional<Job> next() override;

  /// Map a single record (the core of the importer; exposed for tests).
  /// `index` is the dense job id the record receives.
  [[nodiscard]] Job map(const In2p3Record& rec, JobId index) const;

  /// Users seen so far (dense UserId == index of first appearance).
  [[nodiscard]] std::size_t usersSeen() const { return users_.size(); }
  [[nodiscard]] std::size_t jobsReturned() const { return nextId_; }

 private:
  void readHeader();
  [[nodiscard]] UserId internUser(const std::string& label);

  std::unique_ptr<std::istream> in_;
  std::string name_;
  In2p3MapConfig cfg_;
  std::size_t lineNo_ = 0;
  // Column indices from the header (-1 = absent).
  int colSubmit_ = -1, colUser_ = -1, colGroup_ = -1, colWalltime_ = -1;
  std::size_t nCols_ = 0;
  double firstSubmit_ = -1.0;
  double lastSubmit_ = -1.0;
  JobId nextId_ = 0;
  std::unordered_map<std::string, UserId> users_;
};

/// Stable 64-bit hash of a label (group/user placement); SplitMix64 over
/// FNV-1a so the mapping is identical across platforms and runs.
std::uint64_t stableLabelHash(std::string_view label);

// --------------------------------------------------------------------------
// Synthetic IN2P3-shaped workload: heavy-tailed sizes, Zipf users.
//
// For scale experiments (and the bounded-memory replay claim) a generator
// producing the *shape* of the real logs at any length: Zipf-distributed
// user activity (a few heavy users dominate arrivals), Pareto-tailed job
// sizes truncated to the data space, per-user group affinity, and optional
// diurnal arrival modulation. Deterministic for a fixed seed.

struct SkewedWorkloadParams {
  std::uint64_t totalEvents = 3'333'333;
  double jobsPerHour = 1.0;
  /// Distinct users; activity of user k proportional to 1/(k+1)^zipfS.
  int users = 50;
  double zipfS = 1.2;
  /// Pareto(alpha) job sizes with this scale (minimum), truncated at the
  /// data-space size. alpha in (1, 2] gives the heavy tail real logs show.
  std::uint64_t minJobEvents = 1'000;
  double paretoAlpha = 1.5;
  /// Groups (experiments); each user belongs to one, hashed deterministically.
  int groups = 8;
  double groupSpanFraction = 0.125;
  /// Diurnal modulation of the arrival rate (0 = homogeneous Poisson).
  double diurnalAmplitude = 0.0;
  /// Groups 0..interactiveGroups-1 (after the stable hash) produce
  /// interactive-class jobs; the rest bulk. 0 = everything bulk.
  int interactiveGroups = 0;
};

/// Endless deterministic stream of IN2P3-shaped jobs (ids dense from 0).
class SkewedWorkloadGenerator final : public JobSource {
 public:
  SkewedWorkloadGenerator(const SkewedWorkloadParams& params, std::uint64_t seed);

  std::optional<Job> next() override;

  [[nodiscard]] const SkewedWorkloadParams& params() const { return params_; }
  /// The group a user's jobs read from.
  [[nodiscard]] int groupOf(UserId user) const;

 private:
  SkewedWorkloadParams params_;
  Rng rng_;
  SimTime clock_ = 0.0;
  JobId nextId_ = 0;
  std::vector<double> userWeights_;
};

/// Dump `count` jobs from any source as IN2P3-format CSV (submit_time,
/// user,group,walltime_req) — the inverse of In2p3TraceReader, used to
/// produce checked-in sample slices and reader round-trip tests. Group
/// labels are g<groupOf(user)> when `gen` is given, g0 otherwise.
std::size_t writeIn2p3Csv(std::ostream& out, JobSource& source, std::size_t count,
                          double secPerEventRef,
                          const SkewedWorkloadGenerator* gen = nullptr);

}  // namespace ppsched
