#include "workload/job.h"

#include <ostream>

namespace ppsched {

std::ostream& operator<<(std::ostream& os, const Job& j) {
  os << "Job{" << j.id << ", t=" << j.arrival << ", " << j.range;
  if (j.user != kNoUser) os << ", u=" << j.user;
  return os << '}';
}

std::ostream& operator<<(std::ostream& os, const Subjob& s) {
  os << "Subjob{job=" << s.job << ", " << s.range;
  if (s.yieldsToCached) os << ", yields";
  return os << '}';
}

}  // namespace ppsched
