#include "workload/job.h"

#include <ostream>

namespace ppsched {

std::string_view qosClassName(QosClass cls) {
  switch (cls) {
    case QosClass::Bulk:
      return "bulk";
    case QosClass::Interactive:
      return "interactive";
  }
  return "bulk";
}

bool parseQosClassName(std::string_view text, QosClass& out) {
  if (text == "bulk") {
    out = QosClass::Bulk;
    return true;
  }
  if (text == "interactive") {
    out = QosClass::Interactive;
    return true;
  }
  return false;
}

std::ostream& operator<<(std::ostream& os, const Job& j) {
  os << "Job{" << j.id << ", t=" << j.arrival << ", " << j.range;
  if (j.user != kNoUser) os << ", u=" << j.user;
  if (j.qos != QosClass::Bulk) os << ", " << qosClassName(j.qos);
  return os << '}';
}

std::ostream& operator<<(std::ostream& os, const Subjob& s) {
  os << "Subjob{job=" << s.job << ", " << s.range;
  if (s.yieldsToCached) os << ", yields";
  if (s.qos != QosClass::Bulk) os << ", " << qosClassName(s.qos);
  return os << '}';
}

}  // namespace ppsched
