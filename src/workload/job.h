// Jobs and subjobs.
//
// A job is a request to analyze one contiguous segment of collision events
// (§2.2). Jobs are arbitrarily divisible: policies split them into subjobs,
// each again a contiguous range, executed independently on cluster nodes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string_view>

#include "sim/time.h"
#include "storage/interval_set.h"

namespace ppsched {

using JobId = std::uint32_t;
inline constexpr JobId kNoJob = std::numeric_limits<JobId>::max();

/// Identity of the submitting user (or accounting class). Real batch logs
/// attribute every job to a user; per-user fairness metrics (core/metrics)
/// aggregate by this tag. kNoUser marks jobs from sources that carry no
/// user information (the synthetic generator, v1 traces) — untagged runs
/// behave and report exactly as before the tag existed.
using UserId = std::uint32_t;
inline constexpr UserId kNoUser = std::numeric_limits<UserId>::max();

/// Quality-of-service class of a job. Production HEP sites distinguish
/// short interactive analysis from long bulk production; the class selects
/// the scheduling weight (and optional relative deadline) a QoS-aware
/// policy applies. Bulk is the default: untagged jobs behave and report
/// exactly as before the class existed.
enum class QosClass : std::uint8_t {
  Bulk = 0,
  Interactive = 1,
};
inline constexpr int kNumQosClasses = 2;

/// Canonical lower-case label ("bulk" / "interactive").
[[nodiscard]] std::string_view qosClassName(QosClass cls);

/// Strict inverse of qosClassName. Returns false for any other spelling.
[[nodiscard]] bool parseQosClassName(std::string_view text, QosClass& out);

/// A user analysis job: a contiguous event segment plus its arrival time.
struct Job {
  JobId id = kNoJob;
  SimTime arrival = 0.0;
  EventRange range;
  UserId user = kNoUser;
  QosClass qos = QosClass::Bulk;

  [[nodiscard]] std::uint64_t events() const { return range.size(); }

  friend bool operator==(const Job&, const Job&) = default;
};

/// A schedulable piece of a job: a contiguous sub-range.
struct Subjob {
  JobId job = kNoJob;
  EventRange range;
  /// Arrival time of the parent job; used for FIFO fairness ordering.
  SimTime jobArrival = 0.0;
  /// Out-of-order policy (Table 3): a subjob stolen onto a node that does
  /// not hold its data carries a flag allowing cached subjobs to preempt it.
  bool yieldsToCached = false;
  /// Submitting user and QoS class of the parent job; QoS-aware policies
  /// charge the (user, class) virtual-time account for dispatched work.
  UserId user = kNoUser;
  QosClass qos = QosClass::Bulk;

  [[nodiscard]] std::uint64_t events() const { return range.size(); }
  [[nodiscard]] bool empty() const { return range.empty(); }
};

/// A subjob spanning the whole job, carrying the job's identity fields
/// (arrival, user, QoS class). The canonical Job -> Subjob conversion.
[[nodiscard]] inline Subjob wholeSubjob(const Job& job) {
  Subjob sj;
  sj.job = job.id;
  sj.range = job.range;
  sj.jobArrival = job.arrival;
  sj.user = job.user;
  sj.qos = job.qos;
  return sj;
}

std::ostream& operator<<(std::ostream& os, const Job& j);
std::ostream& operator<<(std::ostream& os, const Subjob& s);

}  // namespace ppsched
