// Jobs and subjobs.
//
// A job is a request to analyze one contiguous segment of collision events
// (§2.2). Jobs are arbitrarily divisible: policies split them into subjobs,
// each again a contiguous range, executed independently on cluster nodes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>

#include "sim/time.h"
#include "storage/interval_set.h"

namespace ppsched {

using JobId = std::uint32_t;
inline constexpr JobId kNoJob = std::numeric_limits<JobId>::max();

/// Identity of the submitting user (or accounting class). Real batch logs
/// attribute every job to a user; per-user fairness metrics (core/metrics)
/// aggregate by this tag. kNoUser marks jobs from sources that carry no
/// user information (the synthetic generator, v1 traces) — untagged runs
/// behave and report exactly as before the tag existed.
using UserId = std::uint32_t;
inline constexpr UserId kNoUser = std::numeric_limits<UserId>::max();

/// A user analysis job: a contiguous event segment plus its arrival time.
struct Job {
  JobId id = kNoJob;
  SimTime arrival = 0.0;
  EventRange range;
  UserId user = kNoUser;

  [[nodiscard]] std::uint64_t events() const { return range.size(); }

  friend bool operator==(const Job&, const Job&) = default;
};

/// A schedulable piece of a job: a contiguous sub-range.
struct Subjob {
  JobId job = kNoJob;
  EventRange range;
  /// Arrival time of the parent job; used for FIFO fairness ordering.
  SimTime jobArrival = 0.0;
  /// Out-of-order policy (Table 3): a subjob stolen onto a node that does
  /// not hold its data carries a flag allowing cached subjobs to preempt it.
  bool yieldsToCached = false;

  [[nodiscard]] std::uint64_t events() const { return range.size(); }
  [[nodiscard]] bool empty() const { return range.empty(); }
};

std::ostream& operator<<(std::ostream& os, const Job& j);
std::ostream& operator<<(std::ostream& os, const Subjob& s);

}  // namespace ppsched
