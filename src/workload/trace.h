// Job trace recording and replay.
//
// No public LHCb cluster trace from 2004 exists, so traces are synthesized
// with WorkloadGenerator and can be saved/replayed: this makes experiments
// byte-for-byte repeatable across policies (every policy sees the identical
// job stream) and lets users feed their own traces to the simulator.
//
// CSV format, one job per line:  id,arrival_seconds,begin_event,end_event
// Lines starting with '#' are comments.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/generator.h"
#include "workload/job.h"

namespace ppsched {

/// An in-memory job trace in arrival order.
class JobTrace {
 public:
  JobTrace() = default;
  explicit JobTrace(std::vector<Job> jobs);

  /// Record `count` jobs from a source.
  static JobTrace record(JobSource& source, std::size_t count);

  /// Parse from CSV (throws std::runtime_error on malformed input).
  static JobTrace parse(std::istream& in);
  static JobTrace load(const std::string& path);

  void write(std::ostream& out) const;
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

  /// Basic aggregate statistics (for summaries / tests).
  struct Summary {
    std::size_t jobs = 0;
    double meanEvents = 0.0;
    double meanInterarrival = 0.0;  // seconds; 0 when fewer than 2 jobs
    SimTime span = 0.0;             // last arrival - first arrival
  };
  [[nodiscard]] Summary summarize() const;

 private:
  /// Jobs must be sorted by arrival and have monotonically increasing ids.
  void validate() const;

  std::vector<Job> jobs_;
};

/// Replays a trace as a JobSource.
class TraceSource final : public JobSource {
 public:
  explicit TraceSource(JobTrace trace) : trace_(std::move(trace)) {}

  std::optional<Job> next() override;

 private:
  JobTrace trace_;
  std::size_t pos_ = 0;
};

}  // namespace ppsched
