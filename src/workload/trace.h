// Job trace recording and replay.
//
// No public LHCb cluster trace from 2004 exists, so traces are synthesized
// with WorkloadGenerator and can be saved/replayed: this makes experiments
// byte-for-byte repeatable across policies (every policy sees the identical
// job stream) and lets users feed their own traces to the simulator.
//
// CSV format, one job per line:
//   v1:  id,arrival_seconds,begin_event,end_event
//   v2:  id,arrival_seconds,begin_event,end_event,user
//   v3:  id,arrival_seconds,begin_event,end_event,user,class
// The user column is optional per line (v1 lines inside a v2 file are jobs
// without a user tag); the class column ('bulk' | 'interactive') is
// optional per line but requires a user, defaults to bulk, and must be
// consistent per user across the file. Lines starting with '#' are
// comments. Parsing is strict: non-monotonic arrivals, non-increasing ids,
// empty ranges, NaN/negative/overflowing fields, unknown class labels and
// trailing garbage all throw std::runtime_error naming the offending line.
//
// Two replay paths exist:
//   - TraceSource replays an in-memory JobTrace. The underlying job vector
//     is immutable and shared (shared_ptr), so replaying one trace across
//     many policies/sweeps never duplicates it.
//   - StreamingTraceSource reads a trace file (or any istream) one line per
//     next() call: O(1) memory per job regardless of trace length, for
//     replaying million-job, year-long logs without materializing them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.h"
#include "workload/job.h"

namespace ppsched {

/// Incremental validator shared by every trace-consuming path: feeds one
/// job at a time and enforces the stream invariants (non-empty range,
/// non-decreasing arrivals, strictly increasing ids, finite non-negative
/// arrival). Errors name the 1-based source line when one is provided.
class TraceValidator {
 public:
  /// Throws std::runtime_error when `job` violates the trace invariants.
  /// `line` is the source line for error messages (0 = no line info).
  void check(const Job& job, std::size_t line = 0);

  [[nodiscard]] std::size_t jobsSeen() const { return count_; }

 private:
  std::size_t count_ = 0;
  SimTime lastArrival_ = 0.0;
  JobId lastId_ = 0;
  /// First-seen QoS class per user; later jobs must agree (absent column
  /// counts as bulk). Bounded by the distinct-user count, not trace length.
  std::map<UserId, QosClass> userClass_;
};

/// Parse one CSV trace line (v1, v2 or v3) into a Job. Strict: rejects
/// malformed fields, negative/NaN/infinite numbers, out-of-range ids,
/// unknown class labels, a class without a user column, and trailing
/// garbage, naming `line` in the error. Returns false for blank and
/// comment lines.
bool parseTraceLine(const std::string& text, std::size_t line, Job& out);

/// Write one job as a CSV trace line (v2 when it carries a user tag, v3
/// when additionally non-bulk). Throws for a non-bulk job without a user
/// tag: the class column cannot be expressed without one.
void writeTraceLine(std::ostream& out, const Job& job);

/// The standard trace header comment (documents the column layout).
extern const char kTraceHeader[];

/// An in-memory job trace in arrival order. Immutable after construction;
/// copies share the underlying job vector (O(1) copy), so fanning one trace
/// out across policies or sweep points never duplicates the jobs.
class JobTrace {
 public:
  JobTrace() = default;
  explicit JobTrace(std::vector<Job> jobs);

  /// Record `count` jobs from a source.
  static JobTrace record(JobSource& source, std::size_t count);

  /// Parse from CSV (throws std::runtime_error with line numbers on
  /// malformed input).
  static JobTrace parse(std::istream& in);
  static JobTrace load(const std::string& path);

  void write(std::ostream& out) const;
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<Job>& jobs() const { return *jobs_; }
  [[nodiscard]] std::size_t size() const { return jobs_->size(); }
  [[nodiscard]] bool empty() const { return jobs_->empty(); }
  /// The shared underlying storage (for sources that outlive this handle).
  [[nodiscard]] std::shared_ptr<const std::vector<Job>> shared() const { return jobs_; }

  /// Basic aggregate statistics (for summaries / tests).
  struct Summary {
    std::size_t jobs = 0;
    std::size_t users = 0;          // distinct tagged users (0 if untagged)
    double meanEvents = 0.0;
    double meanInterarrival = 0.0;  // seconds; 0 when fewer than 2 jobs
    SimTime span = 0.0;             // last arrival - first arrival
  };
  [[nodiscard]] Summary summarize() const;

 private:
  static std::shared_ptr<const std::vector<Job>> emptyJobs();
  /// Jobs must be sorted by arrival and have monotonically increasing ids.
  void validate() const;

  std::shared_ptr<const std::vector<Job>> jobs_ = emptyJobs();
};

/// Stream `count` jobs (or until exhaustion) from a source straight to CSV
/// without materializing them: the bounded-memory writer counterpart of
/// StreamingTraceSource. Returns the number of jobs written.
std::size_t writeTrace(std::ostream& out, JobSource& source, std::size_t count);
std::size_t saveTrace(const std::string& path, JobSource& source, std::size_t count);

/// Replays an in-memory trace as a JobSource. Shares the trace's job
/// vector — constructing one (or many, for multi-policy comparisons) never
/// copies the jobs.
class TraceSource final : public JobSource {
 public:
  explicit TraceSource(JobTrace trace) : jobs_(trace.shared()) {}
  explicit TraceSource(std::shared_ptr<const std::vector<Job>> jobs)
      : jobs_(std::move(jobs)) {}

  std::optional<Job> next() override;

 private:
  std::shared_ptr<const std::vector<Job>> jobs_;
  std::size_t pos_ = 0;
};

/// Streams a trace file line by line: one Job is parsed per next() call and
/// nothing is retained, so memory stays O(1) in the trace length. The
/// stream is validated incrementally with the same strictness as
/// JobTrace::parse (errors carry line numbers).
class StreamingTraceSource final : public JobSource {
 public:
  /// Open `path` (throws std::runtime_error when it cannot be read).
  explicit StreamingTraceSource(const std::string& path, bool renumber = false);
  /// Stream from an owned istream; `name` labels errors.
  StreamingTraceSource(std::unique_ptr<std::istream> in, std::string name = "<stream>",
                       bool renumber = false);

  std::optional<Job> next() override;

  /// Jobs returned so far.
  [[nodiscard]] std::size_t jobsReturned() const { return validator_.jobsSeen(); }

 private:
  std::unique_ptr<std::istream> in_;
  std::string name_;
  std::size_t lineNo_ = 0;
  /// Re-assign dense ids 0,1,2,... in stream order (for traces whose ids
  /// are not engine-dense); ids must still be strictly increasing.
  bool renumber_ = false;
  TraceValidator validator_;
};

}  // namespace ppsched
