#include "workload/in2p3.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "sim/time.h"

namespace ppsched {

namespace {

[[noreturn]] void failLine(const std::string& name, std::size_t line, const std::string& what) {
  throw std::runtime_error("in2p3 trace " + name + ": line " + std::to_string(line) + ": " +
                           what);
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> splitCsv(std::string_view line) {
  std::vector<std::string> fields;
  while (true) {
    const std::size_t comma = line.find(',');
    fields.emplace_back(trimmed(comma == std::string_view::npos ? line : line.substr(0, comma)));
    if (comma == std::string_view::npos) break;
    line = line.substr(comma + 1);
  }
  return fields;
}

double parseNumber(const std::string& name, std::size_t line, const std::string& field,
                   const char* what) {
  if (field.empty()) failLine(name, line, std::string("empty ") + what + " field");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    failLine(name, line, std::string("malformed ") + what + " field '" + field + "'");
  }
  if (!std::isfinite(v)) {
    failLine(name, line, std::string(what) + " must be finite, got '" + field + "'");
  }
  return v;
}

std::uint64_t splitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t stableLabelHash(std::string_view label) {
  // FNV-1a 64 then a SplitMix64 finalizer: cheap, platform-independent and
  // well-mixed in the low bits (FNV alone is weak there).
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return splitMix64(h);
}

// --------------------------------------------------------------------------
// In2p3TraceReader

In2p3TraceReader::In2p3TraceReader(const std::string& path, In2p3MapConfig cfg)
    : name_(path), cfg_(cfg) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) throw std::runtime_error("in2p3 trace: cannot open " + path);
  in_ = std::move(file);
  readHeader();
}

In2p3TraceReader::In2p3TraceReader(std::unique_ptr<std::istream> in, In2p3MapConfig cfg,
                                   std::string name)
    : in_(std::move(in)), name_(std::move(name)), cfg_(cfg) {
  if (!in_) throw std::invalid_argument("In2p3TraceReader needs a stream");
  readHeader();
}

void In2p3TraceReader::readHeader() {
  if (cfg_.totalEvents == 0) throw std::invalid_argument("in2p3: totalEvents must be > 0");
  if (cfg_.secPerEventRef <= 0.0) {
    throw std::invalid_argument("in2p3: secPerEventRef must be > 0");
  }
  if (cfg_.minJobEvents == 0 || cfg_.minJobEvents > cfg_.totalEvents) {
    throw std::invalid_argument("in2p3: minJobEvents out of range");
  }
  if (cfg_.groupSpanFraction <= 0.0 || cfg_.groupSpanFraction > 1.0) {
    throw std::invalid_argument("in2p3: groupSpanFraction out of (0,1]");
  }
  std::string line;
  while (std::getline(*in_, line)) {
    ++lineNo_;
    const std::string_view t = trimmed(line);
    if (t.empty() || t.front() == '#') continue;
    const std::vector<std::string> cols = splitCsv(t);
    nCols_ = cols.size();
    for (std::size_t i = 0; i < cols.size(); ++i) {
      std::string c = cols[i];
      std::transform(c.begin(), c.end(), c.begin(),
                     [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
      const int idx = static_cast<int>(i);
      if (c == "submit_time" || c == "submit") colSubmit_ = idx;
      if (c == "user") colUser_ = idx;
      if (c == "group") colGroup_ = idx;
      if (c == "walltime_req" || c == "walltime") colWalltime_ = idx;
    }
    if (colSubmit_ < 0 || colUser_ < 0 || colWalltime_ < 0) {
      failLine(name_, lineNo_,
               "header must name submit_time, user and walltime_req columns (got '" +
                   std::string(t) + "')");
    }
    return;
  }
  failLine(name_, lineNo_ + 1, "missing header line");
}

UserId In2p3TraceReader::internUser(const std::string& label) {
  const auto [it, inserted] = users_.emplace(label, static_cast<UserId>(users_.size()));
  return it->second;
}

Job In2p3TraceReader::map(const In2p3Record& rec, JobId index) const {
  Job job;
  job.id = index;
  job.arrival = firstSubmit_ >= 0.0 ? rec.submitTime - firstSubmit_ : 0.0;

  // Requested walltime -> events via the reference rate. Group regions cap
  // the size: a job never reads more than its experiment's dataset.
  const auto span = std::max<std::uint64_t>(
      cfg_.minJobEvents,
      static_cast<std::uint64_t>(cfg_.groupSpanFraction *
                                 static_cast<double>(cfg_.totalEvents)));
  const double rawEvents = rec.walltimeReq / cfg_.secPerEventRef;
  const auto events = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(std::min(
          rawEvents, static_cast<double>(cfg_.totalEvents)))),
      cfg_.minJobEvents, std::min<std::uint64_t>(span, cfg_.totalEvents));

  // The group's dataset is a contiguous region whose start is a stable hash
  // of its label; the job starts at a per-job deterministic offset inside
  // it. Same group => overlapping reads (cache locality), different groups
  // => disjoint regions (unless the hash collides, which is harmless).
  const std::uint64_t maxBase = cfg_.totalEvents - std::min(span, cfg_.totalEvents);
  const std::uint64_t base =
      maxBase == 0 ? 0 : stableLabelHash(rec.group.empty() ? "default" : rec.group) % (maxBase + 1);
  const std::uint64_t maxOffset = span - events;
  const std::uint64_t offset =
      maxOffset == 0
          ? 0
          : splitMix64(stableLabelHash(rec.user) ^ (0x9E3779B97F4A7C15ULL * (index + 1))) %
                (maxOffset + 1);
  job.range = {base + offset, base + offset + events};
  for (const std::string& g : cfg_.interactiveGroups) {
    if (rec.group == g) {
      job.qos = QosClass::Interactive;
      break;
    }
  }
  return job;
}

std::optional<Job> In2p3TraceReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lineNo_;
    const std::string_view t = trimmed(line);
    if (t.empty() || t.front() == '#') continue;
    const std::vector<std::string> fields = splitCsv(t);
    if (fields.size() != nCols_) {
      failLine(name_, lineNo_,
               "expected " + std::to_string(nCols_) + " fields per the header, got " +
                   std::to_string(fields.size()));
    }
    In2p3Record rec;
    rec.submitTime = parseNumber(name_, lineNo_, fields[static_cast<std::size_t>(colSubmit_)],
                                 "submit_time");
    if (rec.submitTime < 0.0) failLine(name_, lineNo_, "submit_time must be >= 0");
    rec.user = fields[static_cast<std::size_t>(colUser_)];
    if (rec.user.empty()) failLine(name_, lineNo_, "empty user field");
    if (colGroup_ >= 0) rec.group = fields[static_cast<std::size_t>(colGroup_)];
    rec.walltimeReq = parseNumber(name_, lineNo_, fields[static_cast<std::size_t>(colWalltime_)],
                                  "walltime_req");
    if (rec.walltimeReq <= 0.0) failLine(name_, lineNo_, "walltime_req must be > 0");
    if (lastSubmit_ >= 0.0 && rec.submitTime < lastSubmit_) {
      failLine(name_, lineNo_,
               "submit times go backwards (" + std::to_string(rec.submitTime) + " after " +
                   std::to_string(lastSubmit_) + "); sort the log by submission time");
    }
    if (firstSubmit_ < 0.0) firstSubmit_ = rec.submitTime;
    lastSubmit_ = rec.submitTime;

    Job job = map(rec, nextId_);
    job.user = internUser(rec.user);
    ++nextId_;
    return job;
  }
  if (in_->bad()) throw std::runtime_error("in2p3 trace: I/O error reading " + name_);
  return std::nullopt;
}

// --------------------------------------------------------------------------
// SkewedWorkloadGenerator

SkewedWorkloadGenerator::SkewedWorkloadGenerator(const SkewedWorkloadParams& params,
                                                 std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.totalEvents == 0) throw std::invalid_argument("totalEvents must be > 0");
  if (params_.jobsPerHour <= 0.0) throw std::invalid_argument("jobsPerHour must be > 0");
  if (params_.users < 1) throw std::invalid_argument("users must be >= 1");
  if (params_.zipfS < 0.0) throw std::invalid_argument("zipfS must be >= 0");
  if (params_.minJobEvents == 0 || params_.minJobEvents > params_.totalEvents) {
    throw std::invalid_argument("minJobEvents out of range");
  }
  if (params_.paretoAlpha <= 1.0) {
    throw std::invalid_argument("paretoAlpha must be > 1 (finite mean)");
  }
  if (params_.groups < 1) throw std::invalid_argument("groups must be >= 1");
  if (params_.groupSpanFraction <= 0.0 || params_.groupSpanFraction > 1.0) {
    throw std::invalid_argument("groupSpanFraction out of (0,1]");
  }
  if (params_.diurnalAmplitude < 0.0 || params_.diurnalAmplitude > 1.0) {
    throw std::invalid_argument("diurnalAmplitude out of [0,1]");
  }
  if (params_.interactiveGroups < 0 || params_.interactiveGroups > params_.groups) {
    throw std::invalid_argument("interactiveGroups out of [0, groups]");
  }
  userWeights_.reserve(static_cast<std::size_t>(params_.users));
  for (int k = 0; k < params_.users; ++k) {
    userWeights_.push_back(std::pow(static_cast<double>(k + 1), -params_.zipfS));
  }
}

int SkewedWorkloadGenerator::groupOf(UserId user) const {
  char label[16];
  std::snprintf(label, sizeof label, "u%u", user);
  return static_cast<int>(stableLabelHash(label) % static_cast<std::uint64_t>(params_.groups));
}

std::optional<Job> SkewedWorkloadGenerator::next() {
  if (params_.diurnalAmplitude <= 0.0) {
    clock_ += rng_.exponential(units::interarrivalFromJobsPerHour(params_.jobsPerHour));
  } else {
    // Non-homogeneous Poisson by thinning (same scheme as WorkloadGenerator).
    const double peakRate = params_.jobsPerHour * (1.0 + params_.diurnalAmplitude);
    for (;;) {
      clock_ += rng_.exponential(units::interarrivalFromJobsPerHour(peakRate));
      const double phase = 2.0 * 3.14159265358979323846 * clock_ / (24 * units::hour);
      const double rate =
          params_.jobsPerHour * (1.0 + params_.diurnalAmplitude * std::sin(phase));
      if (rng_.uniform01() * peakRate < rate) break;
    }
  }

  const auto user = static_cast<UserId>(rng_.weightedIndex(userWeights_));

  // Pareto(alpha, xm = minJobEvents) truncated at the group span.
  const auto span = std::max<std::uint64_t>(
      params_.minJobEvents,
      static_cast<std::uint64_t>(params_.groupSpanFraction *
                                 static_cast<double>(params_.totalEvents)));
  const double u = std::max(1e-12, 1.0 - rng_.uniform01());
  const double raw = static_cast<double>(params_.minJobEvents) *
                     std::pow(u, -1.0 / params_.paretoAlpha);
  const auto events = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(std::min(raw, 1e18))), params_.minJobEvents,
      std::min<std::uint64_t>(span, params_.totalEvents));

  // Same placement scheme as the reader: group region by stable hash, a
  // uniform start inside it.
  char glabel[16];
  std::snprintf(glabel, sizeof glabel, "g%d", groupOf(user));
  const std::uint64_t maxBase = params_.totalEvents - std::min(span, params_.totalEvents);
  const std::uint64_t base = maxBase == 0 ? 0 : stableLabelHash(glabel) % (maxBase + 1);
  const std::uint64_t maxOffset = span - events;
  const std::uint64_t offset = maxOffset == 0 ? 0 : rng_.uniformInt(0, maxOffset);

  Job job;
  job.id = nextId_++;
  job.arrival = clock_;
  job.range = {base + offset, base + offset + events};
  job.user = user;
  if (groupOf(user) < params_.interactiveGroups) job.qos = QosClass::Interactive;
  return job;
}

std::size_t writeIn2p3Csv(std::ostream& out, JobSource& source, std::size_t count,
                          double secPerEventRef, const SkewedWorkloadGenerator* gen) {
  if (secPerEventRef <= 0.0) throw std::invalid_argument("secPerEventRef must be > 0");
  out << "submit_time,user,group,walltime_req\n";
  std::size_t written = 0;
  char submit[32], walltime[32];
  for (; written < count; ++written) {
    const auto job = source.next();
    if (!job) break;
    const UserId user = job->user == kNoUser ? 0 : job->user;
    const int group = gen != nullptr ? gen->groupOf(user) : 0;
    std::snprintf(submit, sizeof submit, "%.17g", job->arrival);
    std::snprintf(walltime, sizeof walltime, "%.17g",
                  static_cast<double>(job->events()) * secPerEventRef);
    out << submit << ",u" << user << ",g" << group << ',' << walltime << '\n';
  }
  return written;
}

}  // namespace ppsched
