#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppsched {

WorkloadGenerator::WorkloadGenerator(const WorkloadParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.totalEvents == 0) throw std::invalid_argument("totalEvents must be > 0");
  if (params_.jobsPerHour <= 0.0) throw std::invalid_argument("jobsPerHour must be > 0");
  if (params_.meanJobEvents <= 0.0) throw std::invalid_argument("meanJobEvents must be > 0");
  if (params_.erlangShape < 1) throw std::invalid_argument("erlangShape must be >= 1");
  if (params_.minJobEvents == 0 || params_.minJobEvents > params_.totalEvents) {
    throw std::invalid_argument("minJobEvents out of range");
  }
  if (params_.hotProbability < 0.0 || params_.hotProbability > 1.0) {
    throw std::invalid_argument("hotProbability out of [0,1]");
  }
  if (params_.diurnalAmplitude < 0.0 || params_.diurnalAmplitude > 1.0) {
    throw std::invalid_argument("diurnalAmplitude out of [0,1]");
  }
  if (params_.diurnalAmplitude > 0.0 && params_.diurnalPeriod <= 0.0) {
    throw std::invalid_argument("diurnalPeriod must be > 0");
  }
  if (params_.hotDriftPeriod < 0.0) {
    throw std::invalid_argument("hotDriftPeriod must be >= 0");
  }

  // Materialize hot regions as absolute, disjoint event ranges.
  IntervalSet hot;
  const double total = static_cast<double>(params_.totalEvents);
  for (const auto& region : params_.hotRegions) {
    if (region.start < 0.0 || region.length <= 0.0 || region.start + region.length > 1.0) {
      throw std::invalid_argument("hot region out of [0,1]");
    }
    const auto b = static_cast<EventIndex>(region.start * total);
    const auto e = static_cast<EventIndex>((region.start + region.length) * total);
    if (b < e) hot.insert({b, e});
  }
  hotRanges_ = hot.intervals();
  IntervalSet cold{EventRange{0, params_.totalEvents}};
  cold.erase(hot);
  coldRanges_ = cold.intervals();
  for (const auto& r : hotRanges_) hotWeights_.push_back(static_cast<double>(r.size()));
  for (const auto& r : coldRanges_) coldWeights_.push_back(static_cast<double>(r.size()));
  if (params_.hotProbability > 0.0 && hotRanges_.empty()) {
    throw std::invalid_argument("hotProbability > 0 but no hot regions");
  }
  if (params_.hotProbability < 1.0 && coldRanges_.empty()) {
    throw std::invalid_argument("hotProbability < 1 but hot regions cover everything");
  }
}

std::uint64_t WorkloadGenerator::drawJobEvents() {
  const double x = rng_.erlang(params_.erlangShape, params_.meanJobEvents);
  const auto n = static_cast<std::uint64_t>(std::llround(x));
  return std::clamp(n, params_.minJobEvents, params_.totalEvents);
}

EventIndex WorkloadGenerator::drawStartPoint(std::uint64_t jobEvents) {
  const bool hot = rng_.chance(params_.hotProbability);
  const auto& ranges = hot ? hotRanges_ : coldRanges_;
  const auto& weights = hot ? hotWeights_ : coldWeights_;
  const std::size_t i = rng_.weightedIndex(weights);
  EventIndex start = rng_.uniformInt(ranges[i].begin, ranges[i].end - 1);
  if (hot && params_.hotDriftPeriod > 0.0) {
    const double frac = clock_ / params_.hotDriftPeriod;
    const auto offset =
        static_cast<EventIndex>((frac - std::floor(frac)) *
                                static_cast<double>(params_.totalEvents));
    start = (start + offset) % params_.totalEvents;
  }
  // Segments are contiguous and must fit inside the data space; the paper is
  // silent on boundary behaviour, so we clamp the start point (DESIGN.md §7).
  const EventIndex maxStart = params_.totalEvents - jobEvents;
  return std::min(start, maxStart);
}

std::optional<Job> WorkloadGenerator::next() {
  if (params_.diurnalAmplitude <= 0.0) {
    clock_ += rng_.exponential(units::interarrivalFromJobsPerHour(params_.jobsPerHour));
  } else {
    // Non-homogeneous Poisson by thinning: propose at the peak rate, accept
    // with probability rate(t)/peak.
    const double peakRate = params_.jobsPerHour * (1.0 + params_.diurnalAmplitude);
    for (;;) {
      clock_ += rng_.exponential(units::interarrivalFromJobsPerHour(peakRate));
      const double phase = 2.0 * 3.14159265358979323846 * clock_ / params_.diurnalPeriod;
      const double rate =
          params_.jobsPerHour * (1.0 + params_.diurnalAmplitude * std::sin(phase));
      if (rng_.uniform01() * peakRate < rate) break;
    }
  }
  const std::uint64_t events = drawJobEvents();
  const EventIndex start = drawStartPoint(events);
  Job job;
  job.id = nextId_++;
  job.arrival = clock_;
  job.range = {start, start + events};
  return job;
}

}  // namespace ppsched
