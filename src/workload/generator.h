// Synthetic LHCb-style workload generator (§2.4 of the paper).
//
// The paper evaluated its policies against a synthetic workload (there were
// no production LHCb traces in 2004); we synthesize the same model:
//   - Poisson arrivals with a configurable cadence (jobs/hour);
//   - Erlang(shape 4) job sizes with mean 40000 events (mode 30000 — the
//     figure the paper's text quotes; see DESIGN.md §2);
//   - contiguous data segments whose start points are homogeneous except for
//     two hot regions: 10% of the data space attracts 50% of start points.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "workload/job.h"

namespace ppsched {

/// Abstract stream of jobs in arrival order. Implemented by the synthetic
/// generator and by trace replay.
class JobSource {
 public:
  virtual ~JobSource() = default;
  /// Next job in arrival order, or nullopt when the source is exhausted
  /// (the synthetic generator never is).
  virtual std::optional<Job> next() = 0;
};

/// A hot region of the data space, in fractions of the total event count.
struct HotRegion {
  double start = 0.0;   ///< fraction in [0, 1)
  double length = 0.0;  ///< fraction in (0, 1]
};

struct WorkloadParams {
  /// Total number of events in the data space (2 TB / 600 KB by default;
  /// set from SimConfig).
  std::uint64_t totalEvents = 3'333'333;
  /// Mean arrival cadence.
  double jobsPerHour = 1.0;
  /// Erlang job-size distribution.
  double meanJobEvents = 40'000.0;
  int erlangShape = 4;
  /// Job sizes are clamped below by this (the paper's minimal job size)
  /// and above by the data-space size.
  std::uint64_t minJobEvents = 10;
  /// Hot regions: together `hotProbability` of start points fall uniformly
  /// inside them; the rest fall uniformly in the remaining space.
  std::vector<HotRegion> hotRegions{{0.20, 0.05}, {0.60, 0.05}};
  double hotProbability = 0.5;
  /// Diurnal modulation (extension; 0 = the paper's homogeneous Poisson
  /// arrivals): the instantaneous rate is
  ///   jobsPerHour * (1 + diurnalAmplitude * sin(2*pi*t / diurnalPeriod)),
  /// sampled by Poisson thinning. Amplitude must be in [0, 1].
  double diurnalAmplitude = 0.0;
  Duration diurnalPeriod = 24 * 3600.0;
  /// Hot-region drift (extension; 0 = the paper's static hot regions):
  /// hot start points are shifted by fract(t / hotDriftPeriod) of the data
  /// space, modulo the space, so the hot working set slides through the
  /// dataset once per period. Models analysis campaigns migrating between
  /// datasets; the cold complement stays uniform (a uniform distribution
  /// is shift-invariant).
  Duration hotDriftPeriod = 0.0;
};

/// Generates an endless stream of jobs. Deterministic given the Rng seed.
class WorkloadGenerator final : public JobSource {
 public:
  /// Validates parameters (throws std::invalid_argument).
  WorkloadGenerator(const WorkloadParams& params, std::uint64_t seed);

  std::optional<Job> next() override;

  /// Draw only a job size (for tests / analytic checks).
  std::uint64_t drawJobEvents();
  /// Draw only a start point for a job of the given size.
  EventIndex drawStartPoint(std::uint64_t jobEvents);

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

 private:
  WorkloadParams params_;
  Rng rng_;
  SimTime clock_ = 0.0;
  JobId nextId_ = 0;
  // Hot regions in absolute event indices, plus the cold complement.
  std::vector<EventRange> hotRanges_;
  std::vector<EventRange> coldRanges_;
  std::vector<double> hotWeights_;
  std::vector<double> coldWeights_;
};

}  // namespace ppsched
