#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppsched {

JobTrace::JobTrace(std::vector<Job> jobs) : jobs_(std::move(jobs)) { validate(); }

void JobTrace::validate() const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& j = jobs_[i];
    if (j.range.empty()) throw std::runtime_error("trace: job with empty range");
    if (i > 0) {
      if (j.arrival < jobs_[i - 1].arrival) {
        throw std::runtime_error("trace: arrivals not sorted");
      }
      if (j.id <= jobs_[i - 1].id) {
        throw std::runtime_error("trace: ids not strictly increasing");
      }
    }
  }
}

JobTrace JobTrace::record(JobSource& source, std::size_t count) {
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto job = source.next();
    if (!job) break;
    jobs.push_back(*job);
  }
  return JobTrace(std::move(jobs));
}

JobTrace JobTrace::parse(std::istream& in) {
  std::vector<Job> jobs;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Job job;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(ls >> job.id >> c1 >> job.arrival >> c2 >> job.range.begin >> c3 >> job.range.end) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      throw std::runtime_error("trace: malformed line " + std::to_string(lineNo));
    }
    jobs.push_back(job);
  }
  return JobTrace(std::move(jobs));
}

JobTrace JobTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse(in);
}

void JobTrace::write(std::ostream& out) const {
  out << "# ppsched job trace: id,arrival_seconds,begin_event,end_event\n";
  for (const Job& j : jobs_) {
    out << j.id << ',' << j.arrival << ',' << j.range.begin << ',' << j.range.end << '\n';
  }
}

void JobTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  write(out);
}

JobTrace::Summary JobTrace::summarize() const {
  Summary s;
  s.jobs = jobs_.size();
  if (jobs_.empty()) return s;
  double events = 0.0;
  for (const Job& j : jobs_) events += static_cast<double>(j.events());
  s.meanEvents = events / static_cast<double>(jobs_.size());
  s.span = jobs_.back().arrival - jobs_.front().arrival;
  if (jobs_.size() > 1) s.meanInterarrival = s.span / static_cast<double>(jobs_.size() - 1);
  return s;
}

std::optional<Job> TraceSource::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  return trace_.jobs()[pos_++];
}

}  // namespace ppsched
