#include "workload/trace.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>

namespace ppsched {

const char kTraceHeader[] =
    "# ppsched job trace: id,arrival_seconds,begin_event,end_event[,user[,class]]\n";

namespace {

[[noreturn]] void failLine(std::size_t line, const std::string& what) {
  if (line == 0) throw std::runtime_error("trace: " + what);
  throw std::runtime_error("trace: line " + std::to_string(line) + ": " + what);
}

/// Strip ASCII whitespace (incl. the '\r' of CRLF files) from both ends.
std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse a full unsigned decimal field; rejects signs, empty fields,
/// overflow past uint64, and trailing garbage.
std::uint64_t parseUnsigned(std::string_view field, std::size_t line, const char* what) {
  if (field.empty()) failLine(line, std::string("empty ") + what + " field");
  if (field.front() == '-' || field.front() == '+') {
    failLine(line, std::string(what) + " must be an unsigned integer, got '" +
                       std::string(field) + "'");
  }
  const std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    failLine(line, std::string("malformed ") + what + " field '" + buf + "'");
  }
  if (errno == ERANGE) failLine(line, std::string(what) + " overflows: '" + buf + "'");
  return static_cast<std::uint64_t>(v);
}

/// Parse a full floating-point field; rejects NaN/inf, negatives, empty
/// fields and trailing garbage.
double parseSeconds(std::string_view field, std::size_t line, const char* what) {
  if (field.empty()) failLine(line, std::string("empty ") + what + " field");
  const std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') {
    failLine(line, std::string("malformed ") + what + " field '" + buf + "'");
  }
  if (!std::isfinite(v)) failLine(line, std::string(what) + " must be finite, got '" + buf + "'");
  if (v < 0.0) failLine(line, std::string(what) + " must be >= 0, got '" + buf + "'");
  return v;
}

}  // namespace

void TraceValidator::check(const Job& job, std::size_t line) {
  if (job.id == kNoJob) failLine(line, "job id " + std::to_string(job.id) + " is reserved");
  if (job.range.empty()) {
    failLine(line, "job " + std::to_string(job.id) + " has an empty event range [" +
                       std::to_string(job.range.begin) + ", " + std::to_string(job.range.end) +
                       ")");
  }
  if (!std::isfinite(job.arrival) || job.arrival < 0.0) {
    failLine(line, "job " + std::to_string(job.id) + " has invalid arrival time");
  }
  if (count_ > 0) {
    if (job.arrival < lastArrival_) {
      failLine(line, "arrivals not sorted: job " + std::to_string(job.id) + " arrives at " +
                         std::to_string(job.arrival) + " after " +
                         std::to_string(lastArrival_));
    }
    if (job.id <= lastId_) {
      failLine(line, "ids not strictly increasing: job " + std::to_string(job.id) +
                         " follows job " + std::to_string(lastId_));
    }
  }
  if (job.qos != QosClass::Bulk && job.user == kNoUser) {
    failLine(line, "job " + std::to_string(job.id) + " has class '" +
                       std::string(qosClassName(job.qos)) + "' but no user tag");
  }
  if (job.user != kNoUser) {
    // One class per user: the first tagged occurrence fixes it (an absent
    // class column means bulk), later jobs must agree.
    const auto [it, inserted] = userClass_.try_emplace(job.user, job.qos);
    if (!inserted && it->second != job.qos) {
      failLine(line, "user " + std::to_string(job.user) + " has conflicting classes: '" +
                         std::string(qosClassName(it->second)) + "' then '" +
                         std::string(qosClassName(job.qos)) + "'");
    }
  }
  lastArrival_ = job.arrival;
  lastId_ = job.id;
  ++count_;
}

bool parseTraceLine(const std::string& text, std::size_t line, Job& out) {
  const std::string_view whole = trimmed(text);
  if (whole.empty() || whole.front() == '#') return false;

  std::string_view fields[6];
  std::size_t nFields = 0;
  std::string_view rest = whole;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view field = comma == std::string_view::npos ? rest : rest.substr(0, comma);
    if (nFields == 6) failLine(line, "too many fields (expected 4 to 6)");
    fields[nFields++] = trimmed(field);
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (nFields < 4) {
    failLine(line, "expected id,arrival,begin,end[,user[,class]], got " +
                       std::to_string(nFields) + " field(s)");
  }

  Job job;
  const std::uint64_t id = parseUnsigned(fields[0], line, "id");
  if (id >= kNoJob) failLine(line, "id " + std::to_string(id) + " out of range");
  job.id = static_cast<JobId>(id);
  job.arrival = parseSeconds(fields[1], line, "arrival");
  job.range.begin = parseUnsigned(fields[2], line, "begin_event");
  job.range.end = parseUnsigned(fields[3], line, "end_event");
  if (job.range.begin >= job.range.end) {
    failLine(line, "begin_event " + std::to_string(job.range.begin) + " >= end_event " +
                       std::to_string(job.range.end));
  }
  if (nFields >= 5) {
    // A class label in the user slot is a v3 line missing its user column;
    // name that directly rather than "malformed user field".
    QosClass misplaced;
    if (parseQosClassName(fields[4], misplaced)) {
      failLine(line, "class label '" + std::string(fields[4]) +
                         "' requires a user column (expected id,arrival,begin,end,user,class)");
    }
    const std::uint64_t user = parseUnsigned(fields[4], line, "user");
    if (user >= kNoUser) failLine(line, "user " + std::to_string(user) + " out of range");
    job.user = static_cast<UserId>(user);
  }
  if (nFields == 6) {
    if (fields[5].empty()) failLine(line, "empty class field");
    if (!parseQosClassName(fields[5], job.qos)) {
      failLine(line, "unknown class label '" + std::string(fields[5]) +
                         "' (expected 'bulk' or 'interactive')");
    }
  }
  out = job;
  return true;
}

void writeTraceLine(std::ostream& out, const Job& j) {
  // %.17g keeps arrivals lossless through save -> parse -> save: a
  // year-long log has arrivals ~3e7 s, where the default 6-digit ostream
  // formatting would truncate to tens of seconds.
  char arrival[32];
  std::snprintf(arrival, sizeof arrival, "%.17g", j.arrival);
  out << j.id << ',' << arrival << ',' << j.range.begin << ',' << j.range.end;
  if (j.user != kNoUser) out << ',' << j.user;
  // The class column rides on the user column; bulk (the default) is
  // omitted so untagged and bulk jobs round-trip to v1/v2 lines unchanged.
  if (j.qos != QosClass::Bulk) {
    if (j.user == kNoUser) {
      throw std::runtime_error("trace: job " + std::to_string(j.id) + " has class '" +
                               std::string(qosClassName(j.qos)) + "' but no user tag");
    }
    out << ',' << qosClassName(j.qos);
  }
  out << '\n';
}

// --------------------------------------------------------------------------
// JobTrace

std::shared_ptr<const std::vector<Job>> JobTrace::emptyJobs() {
  static const std::shared_ptr<const std::vector<Job>> empty =
      std::make_shared<const std::vector<Job>>();
  return empty;
}

JobTrace::JobTrace(std::vector<Job> jobs)
    : jobs_(std::make_shared<const std::vector<Job>>(std::move(jobs))) {
  validate();
}

void JobTrace::validate() const {
  TraceValidator v;
  for (const Job& j : *jobs_) v.check(j);
}

JobTrace JobTrace::record(JobSource& source, std::size_t count) {
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto job = source.next();
    if (!job) break;
    jobs.push_back(*job);
  }
  return JobTrace(std::move(jobs));
}

JobTrace JobTrace::parse(std::istream& in) {
  std::vector<Job> jobs;
  TraceValidator validator;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    Job job;
    if (!parseTraceLine(line, lineNo, job)) continue;
    validator.check(job, lineNo);
    jobs.push_back(job);
  }
  // The vector was validated incrementally (with line numbers); the
  // constructor re-checks, which is cheap and keeps one invariant path.
  return JobTrace(std::move(jobs));
}

JobTrace JobTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse(in);
}

void JobTrace::write(std::ostream& out) const {
  out << kTraceHeader;
  for (const Job& j : *jobs_) writeTraceLine(out, j);
}

void JobTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  write(out);
}

JobTrace::Summary JobTrace::summarize() const {
  Summary s;
  const std::vector<Job>& jobs = *jobs_;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;
  double events = 0.0;
  std::vector<UserId> users;
  for (const Job& j : jobs) {
    events += static_cast<double>(j.events());
    if (j.user != kNoUser) users.push_back(j.user);
  }
  std::sort(users.begin(), users.end());
  s.users = static_cast<std::size_t>(std::unique(users.begin(), users.end()) - users.begin());
  s.meanEvents = events / static_cast<double>(jobs.size());
  // Arrivals are validated non-decreasing, so span >= 0 always; with a
  // single job (or all-identical arrivals) span and meanInterarrival are an
  // exact 0, never a division artifact.
  s.span = jobs.back().arrival - jobs.front().arrival;
  if (jobs.size() > 1) s.meanInterarrival = s.span / static_cast<double>(jobs.size() - 1);
  return s;
}

std::size_t writeTrace(std::ostream& out, JobSource& source, std::size_t count) {
  out << kTraceHeader;
  TraceValidator validator;
  for (std::size_t i = 0; i < count; ++i) {
    auto job = source.next();
    if (!job) break;
    validator.check(*job);
    writeTraceLine(out, *job);
  }
  return validator.jobsSeen();
}

std::size_t saveTrace(const std::string& path, JobSource& source, std::size_t count) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  return writeTrace(out, source, count);
}

// --------------------------------------------------------------------------
// Sources

std::optional<Job> TraceSource::next() {
  if (pos_ >= jobs_->size()) return std::nullopt;
  return (*jobs_)[pos_++];
}

StreamingTraceSource::StreamingTraceSource(const std::string& path, bool renumber)
    : name_(path), renumber_(renumber) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) throw std::runtime_error("trace: cannot open " + path);
  in_ = std::move(file);
}

StreamingTraceSource::StreamingTraceSource(std::unique_ptr<std::istream> in, std::string name,
                                           bool renumber)
    : in_(std::move(in)), name_(std::move(name)), renumber_(renumber) {
  if (!in_) throw std::invalid_argument("StreamingTraceSource needs a stream");
}

std::optional<Job> StreamingTraceSource::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lineNo_;
    Job job;
    if (!parseTraceLine(line, lineNo_, job)) continue;
    // Original ids must be well-formed (strictly increasing) either way;
    // with renumbering the engine then sees dense ids in stream order.
    validator_.check(job, lineNo_);
    if (renumber_) job.id = static_cast<JobId>(validator_.jobsSeen() - 1);
    return job;
  }
  if (in_->bad()) throw std::runtime_error("trace: I/O error reading " + name_);
  return std::nullopt;
}

}  // namespace ppsched
