#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ppsched {

Engine::Engine(const SimConfig& cfg, std::unique_ptr<JobSource> source,
               std::unique_ptr<ISchedulerPolicy> policy, MetricsCollector& metrics)
    : cfg_(cfg),
      source_(std::move(source)),
      policy_(std::move(policy)),
      metrics_(metrics),
      cluster_(cfg.numNodes, cfg.cacheEvents(), cfg.cpusPerNode),
      runs_(static_cast<std::size_t>(cfg.totalCpus())),
      remoteAccess_(static_cast<std::size_t>(cfg.totalCpus())) {
  if (!source_) throw std::invalid_argument("Engine needs a JobSource");
  if (!policy_) throw std::invalid_argument("Engine needs a policy");
  policy_->bind(*this);
}

// --------------------------------------------------------------------------
// Run loop

void Engine::run(const StopCondition& stop) {
  stop_ = stop;
  stopping_ = false;
  scheduleNextArrival();
  while (!queue_.empty()) {
    if (shouldStop()) break;
    const SimTime next = queue_.nextTime();
    if (stop_.simTimeLimit > 0.0 && next > stop_.simTimeLimit) {
      now_ = stop_.simTimeLimit;
      break;
    }
    now_ = next;  // advance the clock before the event's callback runs
    queue_.runNext();
  }
}

bool Engine::shouldStop() {
  if (stopping_) return true;
  if (stop_.completedJobs > 0 && metrics_.completedJobs() >= stop_.completedJobs) {
    stopping_ = true;
  }
  if (stop_.maxJobsInSystem > 0 && metrics_.jobsInSystem() > stop_.maxJobsInSystem) {
    metrics_.markAbortedOverloaded();
    stopping_ = true;
  }
  return stopping_;
}

void Engine::scheduleNextArrival() {
  if (arrivalsExhausted_) return;
  if (stop_.arrivedJobs > 0 && metrics_.arrivedJobs() >= stop_.arrivedJobs) {
    arrivalsExhausted_ = true;
    return;
  }
  std::optional<Job> next = source_->next();
  if (!next) {
    arrivalsExhausted_ = true;
    return;
  }
  if (next->arrival < now_) throw std::logic_error("job source produced a past arrival");
  const Job job = *next;
  queue_.schedule(job.arrival, [this, job] { handleArrival(job); });
}

void Engine::handleArrival(const Job& job) {
  if (job.id != jobs_.size()) throw std::logic_error("JobIds must be dense and increasing");
  if (job.range.empty()) throw std::logic_error("job with empty range");
  JobState js;
  js.job = job;
  js.remaining = IntervalSet{job.range};
  jobs_.push_back(std::move(js));
  metrics_.onArrival(job, now_);
  emit(SimEventKind::JobArrival, job.id, kNoNode, job.range);
  policy_->onJobArrival(job);
  scheduleNextArrival();
}

// --------------------------------------------------------------------------
// State queries

Engine::JobState& Engine::state(JobId id) {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Engine::JobState& Engine::state(JobId id) const {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Job& Engine::job(JobId id) const { return state(id).job; }

const IntervalSet& Engine::remainingOf(JobId id) const { return state(id).remaining; }

bool Engine::jobDone(JobId id) const { return state(id).completed; }

bool Engine::isIdle(NodeId node) const {
  return !runs_.at(static_cast<std::size_t>(node)).has_value();
}

std::vector<NodeId> Engine::idleNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < numNodes(); ++n) {
    if (isIdle(n)) out.push_back(n);
  }
  return out;
}

RunningView Engine::running(NodeId node) const {
  RunningView view;
  const auto& slot = runs_.at(static_cast<std::size_t>(node));
  if (!slot) return view;
  const ActiveRun& r = *slot;
  view.active = true;
  view.subjob = r.subjob;
  view.startedAt = r.runStart;
  // Progress inside the current span is linear in time after the span's
  // fixed latency (tertiary access latency, when configured).
  const double elapsed = std::max(0.0, now_ - r.spanStart - r.spanLatency);
  const auto inSpan = std::min<std::uint64_t>(
      r.span.size(),
      static_cast<std::uint64_t>(std::floor(elapsed / r.spanRate + 1e-9)));
  view.remaining = {r.span.begin + inSpan, r.subjob.range.end};
  return view;
}

// --------------------------------------------------------------------------
// Run execution

void Engine::startRun(NodeId node, Subjob sj, RunOptions opts) {
  if (!isIdle(node)) throw std::logic_error("startRun on a busy node");
  if (sj.empty()) throw std::logic_error("startRun with an empty subjob");
  JobState& js = state(sj.job);
  if (!js.remaining.containsRange(sj.range)) {
    throw std::logic_error("subjob range is not (entirely) remaining work of its job");
  }
  if (opts.remoteFrom != kNoNode &&
      (opts.remoteFrom < 0 || opts.remoteFrom >= numNodes() || opts.remoteFrom == node)) {
    throw std::logic_error("bad remoteFrom node");
  }
  ActiveRun run;
  run.subjob = sj;
  run.opts = opts;
  run.cursor = sj.range.begin;
  run.runStart = now_;
  runs_[static_cast<std::size_t>(node)] = std::move(run);
  metrics_.onFirstStart(sj.job, now_);
  emit(SimEventKind::RunStart, sj.job, node, sj.range);
  beginNextSpan(node);
}

void Engine::beginNextSpan(NodeId node) {
  ActiveRun& run = *runs_[static_cast<std::size_t>(node)];
  if (run.cursor >= run.subjob.range.end) {
    finishRun(node);
    return;
  }
  const EventRange rest{run.cursor, run.subjob.range.end};
  const EventRange window = rest.prefix(cfg_.maxSpanEvents);

  LruExtentCache& localCache = cluster_.node(node).cache();
  const bool caching = policy_->usesCaching();
  LruExtentCache* remoteCache =
      run.opts.remoteFrom != kNoNode ? &cluster_.node(run.opts.remoteFrom).cache() : nullptr;

  EventRange span;
  DataSource src = DataSource::Tertiary;
  run.pinnedLocal = run.pinnedRemote = false;

  if (caching) {
    const IntervalSet localAvail = localCache.cachedIn(window);
    const EventRange localRun = localAvail.runAt(run.cursor);
    if (!localRun.empty()) {
      span = localRun;
      src = DataSource::LocalCache;
    } else if (remoteCache != nullptr) {
      const EventRange remoteRun = remoteCache->cachedIn(window).runAt(run.cursor);
      if (!remoteRun.empty()) {
        span = remoteRun;
        src = DataSource::RemoteCache;
      }
    }
    if (span.empty()) {
      // Uncached: read from tertiary storage up to the next event available
      // in a cache this run can use (local, or the designated remote node).
      IntervalSet avail = localAvail;
      if (remoteCache != nullptr) avail.insert(remoteCache->cachedIn(window));
      EventIndex stopAt = window.end;
      for (const EventRange& r : avail.intervals()) {
        if (r.begin > run.cursor) {
          stopAt = std::min(stopAt, r.begin);
          break;
        }
      }
      span = {run.cursor, stopAt};
      src = DataSource::Tertiary;
    }
  } else {
    span = window;
    src = DataSource::Tertiary;
  }

  assert(!span.empty() && span.begin == run.cursor && span.end <= window.end);
  if (src == DataSource::LocalCache) {
    localCache.pin(span);
    run.pinnedLocal = true;
  } else if (src == DataSource::RemoteCache) {
    remoteCache->pin(span);
    run.pinnedRemote = true;
  }
  run.span = span;
  run.spanSource = src;
  run.spanRate = spanRateFor(node, src);
  run.spanLatency = src == DataSource::Tertiary ? cfg_.tertiaryLatencySec : 0.0;
  if (src == DataSource::Tertiary) {
    ++activeTertiaryStreams_;
    run.countsTertiaryStream = true;
  }
  run.spanStart = now_;
  const double duration =
      run.spanLatency + static_cast<double>(span.size()) * run.spanRate;
  run.spanEventId = queue_.schedule(now_ + duration, [this, node] { onSpanComplete(node); });
}

void Engine::onSpanComplete(NodeId node) {
  ActiveRun& run = *runs_[static_cast<std::size_t>(node)];
  applySpanEffects(node, run, run.span);
  run.cursor = run.span.end;
  beginNextSpan(node);
}

double Engine::spanRateFor(NodeId node, DataSource src) const {
  CostModel cost = cfg_.cost;
  if (!cfg_.nodeSpeedFactors.empty()) {
    cost.cpuSecPerEvent /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  if (src == DataSource::Tertiary && cfg_.tertiaryAggregateBytesPerSec > 0.0) {
    // Aggregate cap: this span joins activeTertiaryStreams_ existing streams.
    cost.tertiaryBytesPerSec =
        std::min(cfg_.cost.tertiaryBytesPerSec,
                 cfg_.tertiaryAggregateBytesPerSec /
                     static_cast<double>(activeTertiaryStreams_ + 1));
  }
  return cost.secPerEvent(src);
}

void Engine::applySpanEffects(NodeId node, ActiveRun& run, EventRange done) {
  LruExtentCache& localCache = cluster_.node(node).cache();
  if (run.countsTertiaryStream) {
    --activeTertiaryStreams_;
    run.countsTertiaryStream = false;
  }
  LruExtentCache* remoteCache =
      run.opts.remoteFrom != kNoNode ? &cluster_.node(run.opts.remoteFrom).cache() : nullptr;

  // Release span pins first so touch/insert below see a consistent state.
  if (run.pinnedLocal) {
    localCache.unpin(run.span);
    run.pinnedLocal = false;
  }
  if (run.pinnedRemote) {
    assert(remoteCache != nullptr);
    remoteCache->unpin(run.span);
    run.pinnedRemote = false;
  }

  run.justCompletedJob = false;
  if (done.empty()) return;
  assert(done.begin == run.span.begin && done.end <= run.span.end);

  JobState& js = state(run.subjob.job);
  assert(js.remaining.containsRange(done));
  js.remaining.erase(done);
  metrics_.onEventsProcessed(run.spanSource, done.size(), now_);

  if (policy_->usesCaching()) {
    switch (run.spanSource) {
      case DataSource::LocalCache:
        localCache.touch(done, now_);
        break;
      case DataSource::Tertiary:
        localCache.insert(done, now_);
        break;
      case DataSource::RemoteCache: {
        remoteCache->touch(done, now_);
        if (run.opts.replicationThreshold > 0) {
          IntervalCounter& counter = remoteAccess_[static_cast<std::size_t>(run.opts.remoteFrom)];
          counter.add(done, +1);
          const IntervalSet hot = counter.rangesAtLeast(done, run.opts.replicationThreshold);
          for (const EventRange& r : hot.intervals()) {
            localCache.insert(r, now_);
            metrics_.onReplication(r.size());
          }
        }
        break;
      }
    }
  }

  if (js.remaining.empty() && !js.completed) {
    js.completed = true;
    run.justCompletedJob = true;
    metrics_.onCompletion(js.job.id, now_);
    emit(SimEventKind::JobComplete, js.job.id, node);
  }
}

void Engine::finishRun(NodeId node) {
  ActiveRun run = std::move(*runs_[static_cast<std::size_t>(node)]);
  runs_[static_cast<std::size_t>(node)].reset();
  emit(SimEventKind::RunEnd, run.subjob.job, node, run.subjob.range);
  RunReport report;
  report.subjob = run.subjob;
  report.jobCompleted = run.justCompletedJob;
  policy_->onRunFinished(node, report);
}

Subjob Engine::preempt(NodeId node) {
  auto& slot = runs_[static_cast<std::size_t>(node)];
  if (!slot) throw std::logic_error("preempt on an idle node");
  ActiveRun& run = *slot;
  queue_.cancel(run.spanEventId);
  const double elapsed = std::max(0.0, now_ - run.spanStart - run.spanLatency);
  const auto processed = std::min<std::uint64_t>(
      run.span.size(),
      static_cast<std::uint64_t>(std::floor(elapsed / run.spanRate + 1e-9)));
  applySpanEffects(node, run, EventRange{run.span.begin, run.span.begin + processed});
  Subjob remainder = run.subjob;
  remainder.range = {run.span.begin + processed, run.subjob.range.end};
  emit(SimEventKind::Preempt, run.subjob.job, node,
       {run.subjob.range.begin, run.span.begin + processed});
  slot.reset();
  return remainder;
}

// --------------------------------------------------------------------------
// Timers & annotations

TimerId Engine::scheduleTimer(SimTime at) {
  if (at < now_) throw std::invalid_argument("timer in the past");
  // The EventId doubles as the TimerId; capture it via a shared slot.
  auto idSlot = std::make_shared<TimerId>(0);
  const EventId id = queue_.schedule(at, [this, idSlot] {
    emit(SimEventKind::TimerFired, kNoJob, kNoNode);
    policy_->onTimer(*idSlot);
  });
  *idSlot = id;
  return id;
}

void Engine::emit(SimEventKind kind, JobId job, NodeId node, EventRange range) const {
  if (sink_ == nullptr) return;
  SimEvent event;
  event.time = now_;
  event.kind = kind;
  event.job = job;
  event.node = node;
  event.range = range;
  sink_->record(event);
}

void Engine::cancelTimer(TimerId id) { queue_.cancel(id); }

EventId Engine::at(SimTime when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("action in the past");
  return queue_.schedule(when, std::move(action));
}

void Engine::noteSchedulingDelay(JobId id, Duration delay) {
  metrics_.onSchedulingDelay(id, delay);
}

}  // namespace ppsched
