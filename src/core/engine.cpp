#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ppsched {

Engine::Engine(const SimConfig& cfg, std::unique_ptr<JobSource> source,
               std::unique_ptr<ISchedulerPolicy> policy, MetricsCollector& metrics)
    : cfg_(cfg),
      source_(std::move(source)),
      policy_(std::move(policy)),
      metrics_(metrics),
      cluster_(cfg.numNodes, cfg.cacheEvents(), cfg.cpusPerNode),
      runs_(static_cast<std::size_t>(cfg.totalCpus())),
      remoteAccess_(static_cast<std::size_t>(cfg.totalCpus())),
      failureRng_(cfg.failures.seed),
      failureEvents_(static_cast<std::size_t>(cfg.numNodes), kNoFailureEvent),
      net_(cfg.network, cfg.numNodes) {
  if (!source_) throw std::invalid_argument("Engine needs a JobSource");
  if (!policy_) throw std::invalid_argument("Engine needs a policy");
  policy_->bind(*this);
  if (cfg_.failures.enabled()) {
    // One independent MTBF/MTTR chain per machine. With failures disabled
    // nothing is scheduled and the RNG is never drawn, so all existing
    // experiments stay bit-identical.
    failureChainActive_ = true;
    for (int m = 0; m < cfg_.numNodes; ++m) {
      failureEvents_[static_cast<std::size_t>(m)] = queue_.schedule(
          failureRng_.exponential(cfg_.failures.meanTimeBetweenFailuresSec),
          [this, m] { stochasticFail(m); });
    }
  }
}

// --------------------------------------------------------------------------
// Run loop

void Engine::run(const StopCondition& stop) {
  stop_ = stop;
  stopping_ = false;
  scheduleNextArrival();
  while (!queue_.empty()) {
    if (shouldStop()) break;
    if (failureChainActive_ && allWorkDone()) {
      // Nothing left to disturb: stop the failure churn so idle crash/repair
      // events cannot inflate the simulated end time.
      cancelFailureChain();
      if (queue_.empty()) break;
    }
    const SimTime next = queue_.nextTime();
    if (stop_.simTimeLimit > 0.0 && next > stop_.simTimeLimit) {
      now_ = stop_.simTimeLimit;
      break;
    }
    now_ = next;  // advance the clock before the event's callback runs
    queue_.runNext();
  }
}

bool Engine::shouldStop() {
  if (stopping_) return true;
  if (stop_.completedJobs > 0 && metrics_.completedJobs() >= stop_.completedJobs) {
    stopping_ = true;
  }
  if (stop_.maxJobsInSystem > 0 && metrics_.jobsInSystem() > stop_.maxJobsInSystem) {
    metrics_.markAbortedOverloaded();
    stopping_ = true;
  }
  return stopping_;
}

void Engine::scheduleNextArrival() {
  if (arrivalsExhausted_) return;
  if (stop_.arrivedJobs > 0 && metrics_.arrivedJobs() >= stop_.arrivedJobs) {
    arrivalsExhausted_ = true;
    return;
  }
  std::optional<Job> next = source_->next();
  if (!next) {
    arrivalsExhausted_ = true;
    return;
  }
  if (next->arrival < now_) throw std::logic_error("job source produced a past arrival");
  const Job job = *next;
  queue_.schedule(job.arrival, [this, job] { handleArrival(job); });
}

void Engine::handleArrival(const Job& job) {
  if (job.id != jobs_.size()) throw std::logic_error("JobIds must be dense and increasing");
  if (job.range.empty()) throw std::logic_error("job with empty range");
  JobState js;
  js.job = job;
  js.remaining = IntervalSet{job.range};
  jobs_.push_back(std::move(js));
  metrics_.onArrival(job, now_);
  emit(SimEventKind::JobArrival, job.id, kNoNode, job.range);
  policy_->onJobArrival(job);
  drainDeferred();
  scheduleNextArrival();
}

// --------------------------------------------------------------------------
// State queries

Engine::JobState& Engine::state(JobId id) {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Engine::JobState& Engine::state(JobId id) const {
  if (id >= jobs_.size()) throw std::out_of_range("unknown JobId");
  return jobs_[id];
}

const Job& Engine::job(JobId id) const { return state(id).job; }

const IntervalSet& Engine::remainingOf(JobId id) const { return state(id).remaining; }

bool Engine::jobDone(JobId id) const { return state(id).completed; }

bool Engine::isUp(NodeId node) const { return cluster_.node(node).isUp(); }

bool Engine::isIdle(NodeId node) const {
  return isUp(node) && !runs_.at(static_cast<std::size_t>(node)).has_value();
}

std::vector<NodeId> Engine::idleNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < numNodes(); ++n) {
    if (isIdle(n)) out.push_back(n);
  }
  return out;
}

RunningView Engine::running(NodeId node) const {
  RunningView view;
  const auto& slot = runs_.at(static_cast<std::size_t>(node));
  if (!slot) return view;
  const ActiveRun& r = *slot;
  view.active = true;
  view.subjob = r.subjob;
  view.startedAt = r.runStart;
  // Progress inside the current span is linear in time after the span's
  // fixed latency (tertiary access latency, when configured); network spans
  // additionally fold in progress at earlier allocation rates.
  const auto inSpan = spanEventsDoneAt(r, now_);
  view.remaining = {r.span.begin + inSpan, r.subjob.range.end};
  return view;
}

// --------------------------------------------------------------------------
// Run execution

void Engine::startRun(NodeId node, Subjob sj, AccessPlan plan) {
  if (!isUp(node)) throw std::logic_error("startRun on a down node");
  if (!isIdle(node)) throw std::logic_error("startRun on a busy node");
  if (sj.empty()) throw std::logic_error("startRun with an empty subjob");
  JobState& js = state(sj.job);
  if (!js.remaining.containsRange(sj.range)) {
    throw std::logic_error("subjob range is not (entirely) remaining work of its job");
  }
  if (plan.servingNode != kNoNode &&
      (plan.servingNode < 0 || plan.servingNode >= numNodes() || plan.servingNode == node)) {
    throw std::logic_error("bad servingNode");
  }
  if (plan.servingNode != kNoNode && !isUp(plan.servingNode)) {
    // The designated remote source crashed between the policy's decision and
    // this call: degrade to local/tertiary reads rather than stream from a
    // dead (and possibly wiped) cache.
    plan.servingNode = kNoNode;
  }
  ActiveRun run;
  run.subjob = sj;
  run.plan = plan;
  run.cursor = sj.range.begin;
  run.runStart = now_;
  runs_[static_cast<std::size_t>(node)] = std::move(run);
  metrics_.onFirstStart(sj.job, now_);
  emit(SimEventKind::RunStart, sj.job, node, sj.range);
  beginNextSpan(node);
}

void Engine::beginNextSpan(NodeId node) {
  ++stateEpoch_;
  ActiveRun& run = *runs_[static_cast<std::size_t>(node)];
  if (run.cursor >= run.subjob.range.end) {
    finishRun(node);
    return;
  }
  const EventRange rest{run.cursor, run.subjob.range.end};
  const EventRange window = rest.prefix(cfg_.maxSpanEvents);

  LruExtentCache& localCache = cluster_.node(node).cache();
  const bool caching = policy_->usesCaching();
  LruExtentCache* remoteCache =
      run.plan.servingNode != kNoNode ? &cluster_.node(run.plan.servingNode).cache() : nullptr;

  EventRange span;
  DataSource src = DataSource::Tertiary;
  run.pinnedLocal = run.pinnedRemote = false;

  if (caching) {
    const IntervalSet localAvail = localCache.cachedIn(window);
    const EventRange localRun = localAvail.runAt(run.cursor);
    if (!localRun.empty()) {
      span = localRun;
      src = DataSource::LocalCache;
    } else if (remoteCache != nullptr) {
      const EventRange remoteRun = remoteCache->cachedIn(window).runAt(run.cursor);
      if (!remoteRun.empty()) {
        span = remoteRun;
        src = DataSource::RemoteCache;
      }
    }
    if (span.empty()) {
      // Uncached: read from tertiary storage up to the next event available
      // in a cache this run can use (local, or the designated remote node).
      IntervalSet avail = localAvail;
      if (remoteCache != nullptr) avail.insert(remoteCache->cachedIn(window));
      EventIndex stopAt = window.end;
      for (const EventRange& r : avail.intervals()) {
        if (r.begin > run.cursor) {
          stopAt = std::min(stopAt, r.begin);
          break;
        }
      }
      span = {run.cursor, stopAt};
      src = DataSource::Tertiary;
    }
  } else {
    span = window;
    src = DataSource::Tertiary;
  }

  assert(!span.empty() && span.begin == run.cursor && span.end <= window.end);
  if (src == DataSource::LocalCache) {
    localCache.pin(span);
    run.pinnedLocal = true;
  } else if (src == DataSource::RemoteCache) {
    remoteCache->pin(span);
    run.pinnedRemote = true;
  }
  run.span = span;
  run.spanSource = src;
  run.spanRate = spanRateFor(node, src);
  // Tertiary spans starting inside a scheduled outage stall until the
  // window (chain) ends; spans already streaming are unaffected.
  run.spanLatency = src == DataSource::Tertiary
                        ? cfg_.tertiaryLatencySec + tertiaryOutageDelay(now_)
                        : 0.0;
  // Demand cap of the span's network flow: the serving device's rate,
  // computed before this span joins the tertiary stream count (matching
  // spanRateFor's view).
  const double flowCap = flowDemandCap(src);
  if (src == DataSource::Tertiary) {
    ++activeTertiaryStreams_;
    run.countsTertiaryStream = true;
  }
  run.spanStart = now_;
  run.flow = kNoFlow;
  run.netDoneEvents = 0.0;
  run.netMark = 0.0;
  if (net_.enabled() && src != DataSource::LocalCache) {
    const int srcMachine = src == DataSource::RemoteCache
                               ? machineOf(run.plan.servingNode)
                               : FlowNetwork::kTertiarySource;
    const FlowKind kind = src == DataSource::RemoteCache ? FlowKind::RemoteRead
                                                         : FlowKind::TertiaryRead;
    run.flow = net_.open(srcMachine, machineOf(node), flowCap, kind, now_);
    run.netMark = now_ + run.spanLatency;
    run.spanRate = networkSpanRate(node, net_.rate(run.flow));
    run.spanEventId = queue_.schedule(
        run.netMark + static_cast<double>(span.size()) * run.spanRate,
        [this, node] { onSpanComplete(node); });
    emit(SimEventKind::FlowOpen, run.subjob.job, node, span);
    reconcileNetworkFlows();  // the new flow squeezed everyone sharing its links
    return;
  }
  const double duration =
      run.spanLatency + static_cast<double>(span.size()) * run.spanRate;
  run.spanEventId = queue_.schedule(now_ + duration, [this, node] { onSpanComplete(node); });
}

void Engine::onSpanComplete(NodeId node) {
  ActiveRun& run = *runs_[static_cast<std::size_t>(node)];
  applySpanEffects(node, run, run.span);
  run.cursor = run.span.end;
  beginNextSpan(node);
}

double Engine::spanRateFor(NodeId node, DataSource src) const {
  CostModel cost = cfg_.cost;
  if (!cfg_.nodeSpeedFactors.empty()) {
    cost.cpuSecPerEvent /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  if (src == DataSource::Tertiary && cfg_.tertiaryAggregateBytesPerSec > 0.0) {
    // Aggregate cap: this span joins activeTertiaryStreams_ existing streams.
    cost.tertiaryBytesPerSec =
        std::min(cfg_.cost.tertiaryBytesPerSec,
                 cfg_.tertiaryAggregateBytesPerSec /
                     static_cast<double>(activeTertiaryStreams_ + 1));
  }
  return cost.secPerEvent(src);
}

// --------------------------------------------------------------------------
// Network model

double Engine::networkSpanRate(NodeId node, double flowBps) const {
  double cpu = cfg_.cost.cpuSecPerEvent;
  if (!cfg_.nodeSpeedFactors.empty()) {
    cpu /= cfg_.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  const double transfer = cfg_.cost.bytesPerEvent / flowBps;
  return cfg_.cost.pipelined ? std::max(transfer, cpu) : transfer + cpu;
}

double Engine::flowDemandCap(DataSource src) const {
  if (src == DataSource::RemoteCache) return cfg_.cost.remoteBytesPerSec;
  double cap = cfg_.cost.tertiaryBytesPerSec;
  if (cfg_.tertiaryAggregateBytesPerSec > 0.0) {
    cap = std::min(cap, cfg_.tertiaryAggregateBytesPerSec /
                            static_cast<double>(activeTertiaryStreams_ + 1));
  }
  return cap;
}

std::uint64_t Engine::spanEventsDoneAt(const ActiveRun& run, SimTime t) const {
  double fraction;
  if (run.flow != kNoFlow) {
    fraction = run.netDoneEvents + std::max(0.0, t - run.netMark) / run.spanRate;
  } else {
    fraction = std::max(0.0, t - run.spanStart - run.spanLatency) / run.spanRate;
  }
  return std::min<std::uint64_t>(
      run.span.size(), static_cast<std::uint64_t>(std::floor(fraction + 1e-9)));
}

void Engine::reconcileNetworkFlows() {
  if (!net_.enabled()) return;
  ++stateEpoch_;
  for (NodeId n = 0; n < numNodes(); ++n) {
    auto& slot = runs_[static_cast<std::size_t>(n)];
    if (!slot || slot->flow == kNoFlow) continue;
    ActiveRun& run = *slot;
    const double newRate = networkSpanRate(n, net_.rate(run.flow));
    if (newRate == run.spanRate) continue;
    // Fold progress at the old rate up to now, then finish the remaining
    // whole-span fraction at the new rate (the PR 2 causality guard makes
    // cancel + reschedule safe even at the current timestamp).
    if (now_ > run.netMark) {
      run.netDoneEvents += (now_ - run.netMark) / run.spanRate;
      run.netMark = now_;
    }
    run.spanRate = newRate;
    const double left =
        std::max(0.0, static_cast<double>(run.span.size()) - run.netDoneEvents);
    queue_.cancel(run.spanEventId);
    run.spanEventId = queue_.schedule(std::max(now_, run.netMark) + left * newRate,
                                      [this, n] { onSpanComplete(n); });
  }
  for (auto& [id, tr] : transfers_) {
    if (tr.flow == kNoFlow) continue;  // net-off prefetch: static rate, fixed ETA
    const double newRate = net_.rate(tr.flow);
    if (newRate == tr.rateBytesPerSec) continue;
    if (now_ > tr.mark) {
      tr.bytesLeft = std::max(0.0, tr.bytesLeft - (now_ - tr.mark) * tr.rateBytesPerSec);
    }
    tr.mark = now_;
    tr.rateBytesPerSec = newRate;
    queue_.cancel(tr.event);
    const std::uint64_t tid = id;
    tr.event =
        queue_.schedule(now_ + tr.bytesLeft / newRate, [this, tid] { finishTransfer(tid); });
  }
}

void Engine::startTransfer(NodeId dstNode, NodeId srcNode, JobId job, EventRange r,
                           FlowKind kind) {
  ++stateEpoch_;
  // Skip parts already being copied to this machine (double-paying the
  // uplink for the same extent would overstate transfer pressure).
  IntervalSet todo{r};
  for (const auto& [id, tr] : transfers_) {
    if (machineOf(tr.dstNode) == machineOf(dstNode)) todo.erase(tr.range);
  }
  const double cap =
      srcNode == kNoNode ? cfg_.cost.tertiaryBytesPerSec : cfg_.cost.remoteBytesPerSec;
  for (const EventRange& piece : todo.intervals()) {
    Transfer tr;
    tr.range = piece;
    tr.dstNode = dstNode;
    tr.srcNode = srcNode;
    tr.job = job;
    tr.kind = kind;
    tr.bytesLeft = static_cast<double>(piece.size()) * cfg_.cost.bytesPerEvent;
    tr.mark = now_;
    const std::uint64_t id = nextTransferId_++;
    if (net_.enabled()) {
      const int srcMachine =
          srcNode == kNoNode ? FlowNetwork::kTertiarySource : machineOf(srcNode);
      tr.flow = net_.open(srcMachine, machineOf(dstNode), cap, kind, now_);
      tr.rateBytesPerSec = net_.rate(tr.flow);
      tr.event = queue_.schedule(now_ + tr.bytesLeft / tr.rateBytesPerSec,
                                 [this, id] { finishTransfer(id); });
      emit(SimEventKind::FlowOpen, job, dstNode, piece);
      transfers_.emplace(id, std::move(tr));
      reconcileNetworkFlows();
    } else {
      // Network model off (prefetch only; replication is instantaneous
      // there): the copy streams at the static device rate, no flow.
      tr.rateBytesPerSec = cap;
      tr.event = queue_.schedule(now_ + tr.bytesLeft / tr.rateBytesPerSec,
                                 [this, id] { finishTransfer(id); });
      transfers_.emplace(id, std::move(tr));
    }
  }
}

void Engine::finishTransfer(std::uint64_t transferId) {
  ++stateEpoch_;
  auto it = transfers_.find(transferId);
  if (it == transfers_.end()) return;
  Transfer tr = std::move(it->second);
  transfers_.erase(it);
  if (tr.flow != kNoFlow) {
    net_.noteBytes(tr.kind, static_cast<double>(tr.range.size()) * cfg_.cost.bytesPerEvent);
    net_.close(tr.flow, now_);
    emit(SimEventKind::FlowClose, tr.job, tr.dstNode, tr.range);
  }
  if (cluster_.node(tr.dstNode).isUp() && policy_->usesCaching()) {
    cluster_.node(tr.dstNode).cache().insert(tr.range, now_);
    if (tr.kind == FlowKind::Prefetch) {
      metrics_.onPrefetch(tr.range.size());
    } else {
      metrics_.onReplication(tr.range.size());
    }
  }
  reconcileNetworkFlows();
}

void Engine::abortTransfers(int machine) {
  ++stateEpoch_;
  bool changed = false;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    const Transfer& tr = it->second;
    // machineOf(kNoNode) is undefined: tertiary-sourced prefetches only die
    // with their destination machine.
    if ((tr.srcNode != kNoNode && machineOf(tr.srcNode) == machine) ||
        machineOf(tr.dstNode) == machine) {
      queue_.cancel(tr.event);
      if (tr.flow != kNoFlow) {
        net_.close(tr.flow, now_);
        emit(SimEventKind::FlowClose, tr.job, tr.dstNode, EventRange{});
        changed = true;
      }
      it = transfers_.erase(it);
    } else {
      ++it;
    }
  }
  if (changed) reconcileNetworkFlows();
}

bool Engine::sameSwitch(NodeId a, NodeId b) const {
  if (!net_.enabled()) return true;
  return net_.sameSwitch(machineOf(a), machineOf(b));
}

std::vector<Engine::TransferView> Engine::activeTransfers() const {
  std::vector<TransferView> out;
  out.reserve(transfers_.size());
  for (const auto& [id, tr] : transfers_) {
    out.push_back({tr.range, tr.srcNode, tr.dstNode, tr.job, tr.kind});
  }
  return out;
}

double Engine::estimatedSecPerEvent(NodeId node, NodeId remoteFrom, DataSource src) const {
  if (!net_.enabled() || src == DataSource::LocalCache) {
    return ISchedulerHost::estimatedSecPerEvent(node, remoteFrom, src);
  }
  const int srcMachine = src == DataSource::RemoteCache ? machineOf(remoteFrom)
                                                        : FlowNetwork::kTertiarySource;
  const double bps = net_.estimateRate(srcMachine, machineOf(node), flowDemandCap(src));
  return networkSpanRate(node, bps);
}

double Engine::estimatedTransferBytesPerSec(NodeId dst, NodeId src) const {
  if (!net_.enabled()) return ISchedulerHost::estimatedTransferBytesPerSec(dst, src);
  const int srcMachine = src == kNoNode ? FlowNetwork::kTertiarySource : machineOf(src);
  const double cap =
      src == kNoNode ? cfg_.cost.tertiaryBytesPerSec : cfg_.cost.remoteBytesPerSec;
  return net_.estimateRate(srcMachine, machineOf(dst), cap);
}

void Engine::prefetch(NodeId dst, EventRange range, AccessPlan plan) {
  if (range.empty() || !policy_->usesCaching() || !isUp(dst)) return;
  NodeId src = plan.servingNode;
  if (src != kNoNode &&
      (src < 0 || src >= numNodes() || !isUp(src) ||
       cluster_.node(src).sharesCacheWith(cluster_.node(dst)))) {
    src = kNoNode;  // degrade to tertiary streaming (the plan went stale)
  }
  // Copy only what the destination does not already hold; a remote source
  // can serve only what it caches.
  IntervalSet todo{range};
  todo.erase(cluster_.node(dst).cache().cachedIn(range));
  if (src != kNoNode) {
    todo = todo.intersectWith(cluster_.node(src).cache().cachedIn(range));
  }
  for (const EventRange& piece : todo.intervals()) {
    startTransfer(dst, src, kNoJob, piece, FlowKind::Prefetch);
  }
}

void Engine::applySpanEffects(NodeId node, ActiveRun& run, EventRange done) {
  ++stateEpoch_;
  LruExtentCache& localCache = cluster_.node(node).cache();
  if (run.countsTertiaryStream) {
    --activeTertiaryStreams_;
    run.countsTertiaryStream = false;
  }
  LruExtentCache* remoteCache =
      run.plan.servingNode != kNoNode ? &cluster_.node(run.plan.servingNode).cache() : nullptr;

  // Release span pins first so touch/insert below see a consistent state.
  if (run.pinnedLocal) {
    localCache.unpin(run.span);
    run.pinnedLocal = false;
  }
  if (run.pinnedRemote) {
    assert(remoteCache != nullptr);
    remoteCache->unpin(run.span);
    run.pinnedRemote = false;
  }

  // Close the span's network flow (also when `done` is empty — a killed run
  // releases its bandwidth) before cache effects, so replication copies this
  // span triggers open against the post-close allocation.
  if (run.flow != kNoFlow) {
    const FlowId flow = run.flow;
    run.flow = kNoFlow;
    net_.noteBytes(run.spanSource == DataSource::RemoteCache ? FlowKind::RemoteRead
                                                             : FlowKind::TertiaryRead,
                   static_cast<double>(done.size()) * cfg_.cost.bytesPerEvent);
    net_.close(flow, now_);
    emit(SimEventKind::FlowClose, run.subjob.job, node, done);
    reconcileNetworkFlows();
  }

  run.justCompletedJob = false;
  if (done.empty()) return;
  assert(done.begin == run.span.begin && done.end <= run.span.end);

  JobState& js = state(run.subjob.job);
  assert(js.remaining.containsRange(done));
  js.remaining.erase(done);
  metrics_.onEventsProcessed(run.spanSource, done.size(), now_);

  if (policy_->usesCaching()) {
    switch (run.spanSource) {
      case DataSource::LocalCache:
        localCache.touch(done, now_);
        break;
      case DataSource::Tertiary:
        localCache.insert(done, now_);
        break;
      case DataSource::RemoteCache: {
        remoteCache->touch(done, now_);
        if (run.plan.replicationThreshold > 0) {
          IntervalCounter& counter =
              remoteAccess_[static_cast<std::size_t>(run.plan.servingNode)];
          counter.add(done, +1);
          const IntervalSet hot = counter.rangesAtLeast(done, run.plan.replicationThreshold);
          for (const EventRange& r : hot.intervals()) {
            if (net_.enabled()) {
              // The copy takes time and bandwidth: open a replication flow
              // and insert into the cache only when it completes.
              startTransfer(node, run.plan.servingNode, run.subjob.job, r,
                            FlowKind::Replication);
            } else {
              localCache.insert(r, now_);
              metrics_.onReplication(r.size());
            }
          }
        }
        break;
      }
    }
  }

  if (js.remaining.empty() && !js.completed) {
    js.completed = true;
    run.justCompletedJob = true;
    metrics_.onCompletion(js.job.id, now_);
    emit(SimEventKind::JobComplete, js.job.id, node);
  }
}

void Engine::finishRun(NodeId node) {
  ActiveRun run = std::move(*runs_[static_cast<std::size_t>(node)]);
  runs_[static_cast<std::size_t>(node)].reset();
  emit(SimEventKind::RunEnd, run.subjob.job, node, run.subjob.range);
  RunReport report;
  report.subjob = run.subjob;
  report.jobCompleted = run.justCompletedJob;
  policy_->onRunFinished(node, report);
  drainDeferred();
}

Subjob Engine::preempt(NodeId node) {
  auto& slot = runs_[static_cast<std::size_t>(node)];
  if (!slot) throw std::logic_error("preempt on an idle node");
  ActiveRun& run = *slot;
  queue_.cancel(run.spanEventId);
  const auto processed = spanEventsDoneAt(run, now_);
  applySpanEffects(node, run, EventRange{run.span.begin, run.span.begin + processed});
  Subjob remainder = run.subjob;
  remainder.range = {run.span.begin + processed, run.subjob.range.end};
  emit(SimEventKind::Preempt, run.subjob.job, node,
       {run.subjob.range.begin, run.span.begin + processed});
  slot.reset();
  return remainder;
}

// --------------------------------------------------------------------------
// Timers & annotations

TimerId Engine::scheduleTimer(SimTime at) {
  if (at < now_) throw std::invalid_argument("timer in the past");
  // The EventId doubles as the TimerId; capture it via a shared slot.
  auto idSlot = std::make_shared<TimerId>(0);
  const EventId id = queue_.schedule(at, [this, idSlot] {
    emit(SimEventKind::TimerFired, kNoJob, kNoNode);
    policy_->onTimer(*idSlot);
    drainDeferred();
  });
  *idSlot = id;
  return id;
}

void Engine::emit(SimEventKind kind, JobId job, NodeId node, EventRange range) const {
  if (sink_ == nullptr) return;
  SimEvent event;
  event.time = now_;
  event.kind = kind;
  event.job = job;
  event.node = node;
  event.range = range;
  sink_->record(event);
}

void Engine::cancelTimer(TimerId id) { queue_.cancel(id); }

ActionId Engine::at(SimTime when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("action in the past");
  return queue_.schedule(when, std::move(action));
}

void Engine::noteSchedulingDelay(JobId id, Duration delay) {
  metrics_.onSchedulingDelay(id, delay);
}

// --------------------------------------------------------------------------
// Failure model

void Engine::failNode(NodeId node) { failMachine(machineOf(node)); }

void Engine::repairNode(NodeId node) { repairMachine(machineOf(node)); }

void Engine::deferLost(Subjob sj) {
  if (sj.empty()) return;
  // The steal-preemption marker is meaningless on a host-restarted run.
  sj.yieldsToCached = false;
  lostWork_.push_back(std::move(sj));
}

RunReport Engine::killRun(NodeId node) {
  auto& slot = runs_[static_cast<std::size_t>(node)];
  ActiveRun run = std::move(*slot);
  slot.reset();
  queue_.cancel(run.spanEventId);
  const auto discarded = spanEventsDoneAt(run, now_);
  // A crash is not a preemption: the span in flight is discarded entirely
  // (nothing durable left the node), so the run rolls back to its last span
  // boundary. An empty `done` releases pins and stream counts only.
  applySpanEffects(node, run, EventRange{});
  RunReport report;
  report.subjob = run.subjob;
  report.reason = RunEndReason::Lost;
  report.remainder = run.subjob;
  report.remainder.range = {run.span.begin, run.subjob.range.end};
  report.remainder.yieldsToCached = false;
  metrics_.onRunLost(run.subjob.job, discarded);
  emit(SimEventKind::RunLost, run.subjob.job, node, report.remainder.range);
  return report;
}

void Engine::retargetRemoteReaders(int machine) {
  for (NodeId n = 0; n < numNodes(); ++n) {
    if (machineOf(n) == machine) continue;  // the machine's own runs are killed
    auto& slot = runs_[static_cast<std::size_t>(n)];
    if (!slot) continue;
    ActiveRun& run = *slot;
    if (run.plan.servingNode == kNoNode || machineOf(run.plan.servingNode) != machine) {
      continue;
    }
    if (run.spanSource != DataSource::RemoteCache) {
      // The current span doesn't touch the dead machine; only forget the
      // source so later spans re-plan without it.
      run.plan.servingNode = kNoNode;
      continue;
    }
    queue_.cancel(run.spanEventId);
    const auto done = spanEventsDoneAt(run, now_);
    applySpanEffects(n, run, EventRange{run.span.begin, run.span.begin + done});
    run.plan.servingNode = kNoNode;
    run.cursor = run.span.begin + done;
    beginNextSpan(n);
  }
}

void Engine::failMachine(int machine) {
  ++stateEpoch_;
  const NodeId first = machine * cfg_.cpusPerNode;
  if (!cluster_.node(first).isUp()) return;
  cluster_.node(first).setUp(false);
  metrics_.onNodeFailure();
  // Surviving runs streaming from the dead machine's cache re-plan first
  // (while that cache is still readable for progress accounting), then
  // replication copies to or from the dead machine die with it (their
  // bandwidth frees up for the surviving flows). Copies a retargeted span
  // may have just triggered from the dead source are aborted here too.
  retargetRemoteReaders(machine);
  abortTransfers(machine);
  std::vector<std::pair<NodeId, std::optional<RunReport>>> lost;
  for (int c = 0; c < cfg_.cpusPerNode; ++c) {
    const NodeId slot = first + c;
    emit(SimEventKind::NodeDown, kNoJob, slot);
    if (runs_[static_cast<std::size_t>(slot)]) {
      lost.emplace_back(slot, killRun(slot));
    } else {
      lost.emplace_back(slot, std::nullopt);
    }
  }
  if (cfg_.failures.loseCacheOnFailure) cluster_.node(first).cache().drop();
  for (const auto& [slot, report] : lost) {
    policy_->onNodeDown(slot, report ? &*report : nullptr);
  }
  drainDeferred();
}

void Engine::repairMachine(int machine) {
  ++stateEpoch_;
  const NodeId first = machine * cfg_.cpusPerNode;
  if (cluster_.node(first).isUp()) return;
  cluster_.node(first).setUp(true);
  for (int c = 0; c < cfg_.cpusPerNode; ++c) {
    emit(SimEventKind::NodeUp, kNoJob, first + c);
  }
  for (int c = 0; c < cfg_.cpusPerNode; ++c) {
    policy_->onNodeUp(first + c);
  }
  drainDeferred();
}

void Engine::stochasticFail(int machine) {
  failureEvents_[static_cast<std::size_t>(machine)] = kNoFailureEvent;
  if (allWorkDone()) return;
  const NodeId first = machine * cfg_.cpusPerNode;
  if (cluster_.node(first).isUp()) {
    failMachine(machine);
    failureEvents_[static_cast<std::size_t>(machine)] = queue_.schedule(
        now_ + failureRng_.exponential(cfg_.failures.meanTimeToRepairSec),
        [this, machine] { stochasticRepair(machine); });
  } else {
    // Scripted injection already took the machine down; keep the chain alive.
    failureEvents_[static_cast<std::size_t>(machine)] = queue_.schedule(
        now_ + failureRng_.exponential(cfg_.failures.meanTimeBetweenFailuresSec),
        [this, machine] { stochasticFail(machine); });
  }
}

void Engine::stochasticRepair(int machine) {
  failureEvents_[static_cast<std::size_t>(machine)] = kNoFailureEvent;
  repairMachine(machine);
  if (allWorkDone()) return;
  failureEvents_[static_cast<std::size_t>(machine)] = queue_.schedule(
      now_ + failureRng_.exponential(cfg_.failures.meanTimeBetweenFailuresSec),
      [this, machine] { stochasticFail(machine); });
}

bool Engine::allWorkDone() const {
  return arrivalsExhausted_ && metrics_.jobsInSystem() == 0;
}

void Engine::cancelFailureChain() {
  failureChainActive_ = false;
  for (EventId& id : failureEvents_) {
    if (id != kNoFailureEvent) queue_.cancel(id);
    id = kNoFailureEvent;
  }
}

double Engine::tertiaryOutageDelay(SimTime t) const {
  SimTime ready = t;
  for (const OutageWindow& w : cfg_.failures.tertiaryOutages) {
    if (ready < w.start) break;  // sorted by start: no later window covers it
    if (ready < w.end()) ready = w.end();
  }
  return ready - t;
}

void Engine::drainDeferred() {
  while (!lostWork_.empty()) {
    NodeId target = kNoNode;
    for (NodeId n = 0; n < numNodes(); ++n) {
      if (isIdle(n)) {
        target = n;
        break;
      }
    }
    if (target == kNoNode) return;
    Subjob sj = std::move(lostWork_.front());
    lostWork_.pop_front();
    const JobState& js = state(sj.job);
    if (js.completed) continue;
    // Trim anything completed or re-dispatched since the loss: only work
    // that is still remaining and not running anywhere may start.
    IntervalSet todo = js.remaining.intersectWith(sj.range);
    for (const auto& active : runs_) {
      if (active && active->subjob.job == sj.job) todo.erase(active->subjob.range);
    }
    bool started = false;
    for (const EventRange& r : todo.intervals()) {
      Subjob piece = sj;
      piece.range = r;
      if (!started) {
        startRun(target, piece);
        started = true;
      } else {
        lostWork_.push_back(piece);
      }
    }
  }
}

}  // namespace ppsched
