// Metrics collection: the two variables the paper evaluates everywhere
// (average speedup and average waiting time, §3.4), plus the waiting-time
// distribution of Fig 4, cache-hit accounting, and the overload signals used
// to cut curves "when the cluster becomes overloaded".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.h"
#include "shard/shard_config.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "storage/rates.h"
#include "workload/job.h"

namespace ppsched {

/// Lifecycle record of one job.
struct JobRecord {
  JobId id = kNoJob;
  UserId user = kNoUser;
  QosClass qos = QosClass::Bulk;
  SimTime arrival = 0.0;
  SimTime firstStart = -1.0;  ///< start of processing of its first piece
  SimTime completion = -1.0;
  std::uint64_t events = 0;
  /// Scheduling ("period") delay attributed by the policy; Fig 5/6 subtract
  /// it from the waiting time, Fig 7 includes it.
  Duration schedulingDelay = 0.0;
  /// Runs of this job killed by node failures (retries the job needed).
  int lostRuns = 0;

  [[nodiscard]] bool completed() const { return completion >= 0.0; }
  [[nodiscard]] Duration waitingTime() const { return firstStart - arrival; }
  [[nodiscard]] Duration processingTime() const { return completion - firstStart; }
};

/// What to exclude as warm-up: the paper measures steady state only and
/// ignores the startup period while caches fill (§3.4).
struct WarmupConfig {
  std::size_t jobs = 200;   ///< ignore the first N arrived jobs
  Duration time = 0.0;      ///< additionally ignore jobs arriving before this
};

/// Per-user aggregates over the measured window (real traces tag jobs with
/// the submitting user; Medernach's grid-workload analysis shows a few
/// heavy users dominate arrivals, so fairness across users is a first-class
/// result, not a footnote).
struct UserStats {
  UserId user = kNoUser;
  std::size_t jobs = 0;          ///< measured completed jobs of this user
  double meanWait = 0.0;         ///< seconds
  double p95Wait = 0.0;          ///< seconds
  std::uint64_t servedEvents = 0;
  double eventShare = 0.0;       ///< servedEvents / all users' servedEvents
};

/// Per-QoS-class aggregates over the measured window: the tail-latency
/// split a deadline-aware policy is judged by (interactive p95/p99 vs
/// bulk). Untagged runs report a single bulk entry identical to the global
/// waiting-time aggregates.
struct ClassStats {
  QosClass cls = QosClass::Bulk;
  std::size_t jobs = 0;        ///< measured completed jobs of this class
  double meanWait = 0.0;       ///< seconds
  double p95Wait = 0.0;        ///< seconds
  double p99Wait = 0.0;        ///< seconds
  std::uint64_t servedEvents = 0;
  double eventShare = 0.0;     ///< servedEvents / all classes' servedEvents
};

/// Aggregated results of one simulation run.
struct RunResult {
  std::size_t arrivedJobs = 0;
  std::size_t completedJobs = 0;
  std::size_t measuredJobs = 0;

  double avgSpeedup = 0.0;
  /// Mean processing time (first start -> completion) in seconds; unlike
  /// speedup it does not depend on the cost-model reference, so it is the
  /// right basis for comparisons across cost models (e.g. pipelining).
  double avgProcessing = 0.0;
  /// Waiting times in seconds; "ExDelay" variants subtract the per-job
  /// scheduling delay (Fig 5/6 presentation).
  double avgWait = 0.0;
  double avgWaitExDelay = 0.0;
  double medianWait = 0.0;
  double p95Wait = 0.0;
  double maxWait = 0.0;

  /// Fraction of processed events whose data came from a local disk cache.
  double cacheHitFraction = 0.0;
  /// Fraction read from a remote node's cache (replication policy).
  double remoteReadFraction = 0.0;
  std::uint64_t replicatedEvents = 0;
  std::uint64_t replicationOps = 0;
  /// Events copied into caches by prefetch warming transfers (and the
  /// number of completed warming copies).
  std::uint64_t prefetchedEvents = 0;
  std::uint64_t prefetchOps = 0;
  /// Events fetched from tertiary storage (for the "load once per period"
  /// analysis of §5).
  std::uint64_t tertiaryEvents = 0;
  /// Total events processed from any source (conservation checks: equals
  /// the summed size of all completed jobs plus partial progress).
  std::uint64_t processedEvents = 0;

  /// Failure / lost-work accounting (zero when failures are disabled).
  std::uint64_t nodeFailures = 0;  ///< machine crashes over the run
  std::uint64_t lostRuns = 0;      ///< runs killed by crashes
  /// In-flight span events discarded by crashes; this work was re-done, so
  /// it is *not* part of processedEvents.
  std::uint64_t lostEvents = 0;

  /// Overload signals over the measurement window.
  double avgJobsInSystem = 0.0;
  double inSystemSlopePerHour = 0.0;  ///< trend of the in-system count
  double throughputJobsPerHour = 0.0;
  bool abortedOverloaded = false;  ///< engine hit the in-system hard cap
  SimTime simulatedTime = 0.0;

  /// Verdict combining the signals; set by finalize().
  bool overloaded = false;

  /// Per-user breakdown, sorted by descending served-event share. Jobs
  /// without a user tag aggregate under kNoUser; on fully tagless runs the
  /// vector holds that single entry (and userFairness is exactly 1).
  std::vector<UserStats> userStats;
  /// Jain fairness index over per-user served events:
  /// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly even shares, 1/n =
  /// one user got everything. Exactly 1.0 for <= 1 user (incl. tagless
  /// runs) so untagged experiments read as trivially fair.
  double userFairness = 1.0;

  /// Per-class breakdown (bulk first); only classes with measured jobs
  /// appear. Empty only when no jobs were measured.
  std::vector<ClassStats> classStats;
  /// Jain index over *weighted* per-(user, class) shares x = servedEvents /
  /// classWeight: 1.0 means every account received service proportional to
  /// its class weight — the tuning target of a weighted-share policy. With
  /// unit weights (the default, see MetricsCollector::setQosWeights) this
  /// is the Jain index over per-account raw shares.
  double weightedUserFairness = 1.0;

  /// Waiting-time histogram (Fig 4), filled only when requested.
  std::vector<std::pair<double, std::uint64_t>> waitHistogram;  // (bucket lo sec, count)

  /// Flow-level network accounting (enabled == false when the network model
  /// is off). Filled by the experiment layer from Engine::networkReport().
  NetworkReport network;

  /// Sharded-scheduling accounting (enabled == false on unsharded runs).
  /// Filled by the experiment layer from ShardedCoordinator::report().
  ShardReport shards;
};

/// Collects per-job records and event-level counters during a run and
/// aggregates them at the end. Owned by the experiment layer; written to by
/// the engine.
class MetricsCollector {
 public:
  MetricsCollector(const CostModel& cost, WarmupConfig warmup);

  /// Class weights used by RunResult::weightedUserFairness (a share is fair
  /// when proportional to its weight). Defaults to 1/1, making the weighted
  /// index coincide with the raw per-account index on untagged runs.
  void setQosWeights(double bulkWeight, double interactiveWeight);

  // --- engine callbacks -------------------------------------------------
  void onArrival(const Job& job, SimTime now);
  void onFirstStart(JobId job, SimTime now);
  void onCompletion(JobId job, SimTime now);
  void onSchedulingDelay(JobId job, Duration delay);
  void onEventsProcessed(DataSource source, std::uint64_t events, SimTime now);
  void onReplication(std::uint64_t events);
  /// A prefetch warming copy delivered `events` events into a cache.
  void onPrefetch(std::uint64_t events);
  /// A machine crashed (counted once per crash, not per CPU slot).
  void onNodeFailure() { ++nodeFailures_; }
  /// A run was killed by a crash; `discardedEvents` is the in-flight span
  /// progress thrown away (re-done later, never counted as processed).
  void onRunLost(JobId job, std::uint64_t discardedEvents);
  void markAbortedOverloaded() { abortedOverloaded_ = true; }

  // --- queries ----------------------------------------------------------
  [[nodiscard]] std::size_t arrivedJobs() const { return records_.size(); }
  [[nodiscard]] std::size_t completedJobs() const { return completed_; }
  [[nodiscard]] std::size_t jobsInSystem() const { return records_.size() - completed_; }
  [[nodiscard]] const JobRecord& record(JobId job) const;

  /// Aggregate everything; `withHistogram` also fills the Fig 4 histogram.
  [[nodiscard]] RunResult finalize(SimTime endTime, bool withHistogram = false) const;

 private:
  [[nodiscard]] bool measured(const JobRecord& r) const;
  JobRecord& mutableRecord(JobId job);

  CostModel cost_;
  WarmupConfig warmup_;
  double qosWeights_[kNumQosClasses] = {1.0, 1.0};  ///< indexed by QosClass
  std::vector<JobRecord> records_;  // indexed by JobId
  std::size_t completed_ = 0;
  bool abortedOverloaded_ = false;

  // Event-source accounting, split at the warm-up boundary by job identity
  // being unavailable at event level; counted globally instead (warm-up bias
  // is negligible over long runs).
  std::uint64_t cachedEvents_ = 0;
  std::uint64_t remoteEvents_ = 0;
  std::uint64_t tertiaryEvents_ = 0;
  std::uint64_t replicatedEvents_ = 0;
  std::uint64_t replicationOps_ = 0;
  std::uint64_t prefetchedEvents_ = 0;
  std::uint64_t prefetchOps_ = 0;
  std::uint64_t nodeFailures_ = 0;
  std::uint64_t lostRuns_ = 0;
  std::uint64_t lostEvents_ = 0;

  // In-system trend over the post-warm-up window.
  TimeWeightedStat inSystem_;
  LinearTrend inSystemTrend_;
  /// (time, in-system count) at each measured arrival/completion; used for
  /// the robust first-half vs second-half overload comparison.
  std::vector<std::pair<SimTime, double>> inSystemSamples_;
  SimTime firstMeasuredArrival_ = -1.0;
  SimTime lastMeasuredArrival_ = -1.0;
  std::size_t measuredArrivals_ = 0;
  std::size_t measuredCompletions_ = 0;
};

}  // namespace ppsched
