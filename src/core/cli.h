// Command-line argument parsing for the ppsched CLI.
//
// Lives in the library (not tools/ppsched_cli.cpp) so flag parsing is unit
// testable with plain argument vectors: parseCliArgs throws
// std::invalid_argument instead of exiting, and the tool's main converts
// that to the usual exit code 2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppsched {

/// Everything the CLI commands need, parsed and validated.
struct CliOptions {
  std::string command;
  ExperimentSpec spec;
  std::vector<double> loads;  ///< sweep points (--loads)
  double lo = 0.8;            ///< maxload bracket
  double hi = 3.2;
  std::size_t replicas = 5;
  bool csv = false;
};

/// Parse the argument vector (argv[1..argc-1]: command first, then flags).
/// Strict: unknown commands/flags, missing values and malformed numbers all
/// throw std::invalid_argument with a message naming the offender.
CliOptions parseCliArgs(const std::vector<std::string>& args);

}  // namespace ppsched
