// Simulation event log: a structured record of every scheduling decision.
//
// The engine can emit one SimEvent per state change (arrival, run start,
// run end, preemption, job completion, timer). Consumers: debugging, the
// ASCII timeline renderer (core/timeline.h), CSV export for external
// analysis, and tests asserting decision sequences.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "cluster/node.h"
#include "sim/time.h"
#include "workload/job.h"

namespace ppsched {

enum class SimEventKind {
  JobArrival,
  RunStart,     ///< a subjob begins executing on a node
  RunEnd,       ///< a run finished on its own
  Preempt,      ///< a run was stopped by the policy; range = processed part
  JobComplete,  ///< last piece of the job finished
  TimerFired,
  NodeDown,     ///< the node's machine failed (one event per CPU slot)
  NodeUp,       ///< the node's machine was repaired
  RunLost,      ///< a run died with its node; range = unprocessed remainder
  FlowOpen,     ///< a network flow opened towards `node` (network model)
  FlowClose,    ///< a network flow closed; range = the bytes' event range
};

/// Printable name of an event kind.
std::string_view toString(SimEventKind kind);

struct SimEvent {
  SimTime time = 0.0;
  SimEventKind kind = SimEventKind::JobArrival;
  JobId job = kNoJob;
  NodeId node = kNoNode;
  /// RunStart: the subjob's range; Preempt: the processed prefix;
  /// JobArrival: the job's range; otherwise empty.
  EventRange range;
};

std::ostream& operator<<(std::ostream& os, const SimEvent& e);

/// Receives engine events. Implementations must not call back into the
/// engine (they observe, they don't act).
class IEventSink {
 public:
  virtual ~IEventSink() = default;
  virtual void record(const SimEvent& event) = 0;
};

/// In-memory event log with query helpers and CSV export.
class EventLog final : public IEventSink {
 public:
  void record(const SimEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<SimEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// All events of one kind, in time order.
  [[nodiscard]] std::vector<SimEvent> ofKind(SimEventKind kind) const;
  /// All events touching one job, in time order.
  [[nodiscard]] std::vector<SimEvent> ofJob(JobId job) const;
  /// All events on one node, in time order.
  [[nodiscard]] std::vector<SimEvent> onNode(NodeId node) const;
  [[nodiscard]] std::size_t count(SimEventKind kind) const;

  /// CSV: time,kind,job,node,begin,end
  void writeCsv(std::ostream& os) const;

 private:
  std::vector<SimEvent> events_;
};

}  // namespace ppsched
