// The scheduler host interface.
//
// §2.3 of the paper: "The job parallelization and scheduling software may
// run both on the simulated and on the target system (production
// environment). It implements a plugin model...". This interface is that
// boundary: policies are written against ISchedulerHost only, and the same
// policy object can drive
//   - the discrete-event simulator (core/engine.h), or
//   - a wall-clock runtime with asynchronous executors
//     (runtime/realtime_host.h) standing in for a production cluster.
//
// The host owns ground truth: time, node/cache state, job progress, run
// execution. Policies query it and act through it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "core/config.h"
#include "sim/time.h"
#include "storage/rates.h"
#include "workload/job.h"

namespace ppsched {

/// Identifies a policy timer.
using TimerId = std::uint64_t;

/// Identifies a scripted action scheduled via ISchedulerHost::at.
using ActionId = std::uint64_t;

/// An explicit data-access decision for one run (or one cache-warming
/// transfer): which mechanism moves the bytes, from where, and whether the
/// read should replicate through into the local cache. Produced by
/// ISchedulerHost::planAccess and consumed by startRun / prefetch; policies
/// may also construct plans directly. The default-constructed plan means
/// "local cache where present, tertiary otherwise, never replicate" — the
/// same behaviour as a default-constructed legacy RunOptions.
struct AccessPlan {
  /// Mechanism the non-local part of the range is fetched through.
  /// RemoteCache requires `servingNode`; LocalCache/Tertiary ignore it.
  DataSource source = DataSource::Tertiary;
  /// Node whose cache serves remote reads; kNoNode disables remote reads.
  NodeId servingNode = kNoNode;
  /// Replicate a remotely read extent into the local cache once its remote
  /// access count reaches this value (paper: 3). 0 = never replicate.
  int replicationThreshold = 0;
  /// For Prefetch-intent plans: the sim time by which the warmed data should
  /// be local (informational; transfers are best-effort). 0 = no deadline.
  SimTime prefetchDeadline = 0.0;
  /// Planner estimate of the per-event cost of this plan at planning time
  /// (contention-aware when a network model is live). Informational.
  double secPerEvent = 0.0;
  /// Events of the requested range cached on `servingNode` at planning time.
  std::uint64_t cachedEvents = 0;
};

/// What the policy wants out of planAccess.
struct AccessGoal {
  enum class Intent {
    Dispatch,  ///< plans for running a subjob now (CPU + transfer folded)
    Prefetch,  ///< plans for warming a cache ahead of dispatch (transfer only)
  };
  Intent intent = Intent::Dispatch;
  /// Replicate-through threshold to stamp on remote plans (see AccessPlan).
  int replicationThreshold = 0;
  /// Withhold replicate-through when the serving path is congested beyond
  /// this factor of its uncontended cost (§4.2 extension). 0 disables.
  double replicaCongestionFactor = 0.0;
  /// Rank remote candidates by contention-aware cost (rankPlacements) when a
  /// network model is live; false forces the cache-content heuristic.
  bool topologyAware = true;
  /// For Prefetch intent: when the data is wanted (stamped on plans).
  SimTime deadline = 0.0;
};

/// Deprecated per-run options, kept as a shim for policies and tests that
/// predate AccessPlan. Prefer planAccess/AccessPlan; this converts 1:1.
struct RunOptions {
  /// Node whose cache may serve this run's data remotely (replication
  /// policy); kNoNode disables remote reads.
  NodeId remoteFrom = kNoNode;
  /// Replicate a remotely read extent into the local cache once its remote
  /// access count reaches this value (paper: 3). 0 = never replicate.
  int replicationThreshold = 0;

  /// The equivalent AccessPlan (bit-identical behaviour by construction).
  [[nodiscard]] AccessPlan toPlan() const {
    AccessPlan plan;
    if (remoteFrom != kNoNode) {
      plan.source = DataSource::RemoteCache;
      plan.servingNode = remoteFrom;
    }
    plan.replicationThreshold = replicationThreshold;
    return plan;
  }
};

/// One candidate serving node for a remote read, as ranked by
/// ISchedulerHost::rankPlacements.
struct PlacementCandidate {
  /// Node whose cache would serve the read.
  NodeId source = kNoNode;
  /// Events of the requested range cached on `source`.
  std::uint64_t cachedEvents = 0;
  /// estimatedSecPerEvent(dst, source, RemoteCache) at ranking time.
  double secPerEvent = 0.0;
  /// Whether `source` shares an edge switch with the destination (always
  /// true when no network model / single switch).
  bool sameSwitch = true;
};

/// Snapshot of what a node is doing right now.
struct RunningView {
  bool active = false;
  Subjob subjob;            ///< the subjob as started
  EventRange remaining;     ///< unprocessed part, quantized to events
  SimTime startedAt = 0.0;  ///< when the run began on this node
};

class ISchedulerHost {
 public:
  virtual ~ISchedulerHost() = default;

  // --- time & topology --------------------------------------------------
  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual const SimConfig& config() const = 0;
  [[nodiscard]] virtual int numNodes() const = 0;
  /// Node/cache state. On the simulator this is the modelled cluster; a
  /// production host mirrors the real nodes' disk contents here.
  [[nodiscard]] virtual Cluster& cluster() = 0;

  // --- node state -------------------------------------------------------
  /// Liveness of the machine hosting `node`. Down nodes are never idle,
  /// reject startRun, and report an inactive RunningView.
  [[nodiscard]] virtual bool isUp(NodeId node) const = 0;
  /// True when `node` is up and has no run assigned.
  [[nodiscard]] virtual bool isIdle(NodeId node) const = 0;
  /// All idle nodes (down nodes are filtered out).
  [[nodiscard]] virtual std::vector<NodeId> idleNodes() const = 0;
  [[nodiscard]] virtual RunningView running(NodeId node) const = 0;

  // --- job bookkeeping --------------------------------------------------
  [[nodiscard]] virtual const Job& job(JobId id) const = 0;
  [[nodiscard]] virtual const IntervalSet& remainingOf(JobId id) const = 0;
  [[nodiscard]] virtual bool jobDone(JobId id) const = 0;
  [[nodiscard]] virtual std::size_t jobsInSystem() const = 0;

  // --- actions ----------------------------------------------------------
  virtual void startRun(NodeId node, Subjob sj, AccessPlan plan = {}) = 0;
  /// Deprecated shim: accepts the legacy RunOptions and forwards the
  /// equivalent AccessPlan. Bit-identical to the pre-plan API.
  void startRun(NodeId node, Subjob sj, RunOptions opts) {
    startRun(node, std::move(sj), opts.toPlan());
  }
  /// Issue a cache-warming transfer: copy the uncached part of `range` into
  /// `dst`'s cache, from `plan.servingNode`'s cache when it is a live remote
  /// source (degraded to tertiary otherwise). A best-effort background flow
  /// (FlowKind::Prefetch on hosts with a network model); no-op when the
  /// policy does not use caching. Default: hosts without transfer machinery
  /// ignore prefetch requests.
  virtual void prefetch(NodeId dst, EventRange range, AccessPlan plan = {}) {
    (void)dst;
    (void)range;
    (void)plan;
  }
  /// Stop the run on `node`; progress is applied; returns the unprocessed
  /// remainder (empty if the run was exactly complete).
  virtual Subjob preempt(NodeId node) = 0;
  virtual TimerId scheduleTimer(SimTime at) = 0;
  virtual void cancelTimer(TimerId id) = 0;
  /// Schedule an arbitrary callback at absolute time `when` (>= now). The
  /// simulator runs it as a normal event; the wall-clock host fires it from
  /// its timer wheel. Intended for scripted scenarios and failure injection,
  /// so the same script drives Engine and RealtimeHost identically.
  virtual ActionId at(SimTime when, std::function<void()> action) = 0;
  /// Park lost work (a killed run's remainder) with the host. The host
  /// re-dispatches parked work onto the first idle up node after each policy
  /// callback — the default recovery path of ISchedulerPolicy::onNodeDown,
  /// which keeps every policy correct under failures with no bespoke code.
  /// Work that was re-dispatched or completed by other means in the meantime
  /// is trimmed (never run twice).
  virtual void deferLost(Subjob sj) = 0;
  /// Attribute a scheduling ("period") delay to a job (Fig 5/6 reporting).
  virtual void noteSchedulingDelay(JobId id, Duration delay) = 0;

  // --- cost feedback ----------------------------------------------------
  /// Estimated cost of processing one event on `node` from `src`, given the
  /// current state of the host. The default is the static cost model (with
  /// the node's CPU speed factor); hosts with a network model override this
  /// to fold in present link contention, so policies can compare e.g. a
  /// remote-cache read against streaming from tertiary before committing.
  /// `remoteFrom` is the serving node for RemoteCache (ignored otherwise).
  [[nodiscard]] virtual double estimatedSecPerEvent(NodeId node, NodeId remoteFrom,
                                                    DataSource src) const {
    (void)remoteFrom;
    const SimConfig& cfg = config();
    double cpu = cfg.cost.cpuSecPerEvent;
    if (!cfg.nodeSpeedFactors.empty()) {
      cpu /= cfg.nodeSpeedFactors[static_cast<std::size_t>(node)];
    }
    double transfer = 0.0;
    switch (src) {
      case DataSource::LocalCache:
        transfer = cfg.cost.diskSecPerEvent();
        break;
      case DataSource::RemoteCache:
        transfer = cfg.cost.remoteSecPerEvent();
        break;
      case DataSource::Tertiary:
        transfer = cfg.cost.tertiarySecPerEvent();
        break;
    }
    return cfg.cost.pipelined ? std::max(transfer, cpu) : transfer + cpu;
  }

  // --- placement --------------------------------------------------------
  /// Whether two nodes' machines hang off the same edge switch. Hosts with
  /// a network model override this with topology truth; the default derives
  /// it from SimConfig::network (trivially true when the model is disabled
  /// or single-switch).
  [[nodiscard]] virtual bool sameSwitch(NodeId a, NodeId b) const;

  /// Rank the candidate serving nodes for a remote read of `range` into
  /// `dst`'s CPU. Candidates are every up node caching part of `range`,
  /// excluding `dst` itself and nodes sharing `dst`'s machine cache (their
  /// content is local, not remote). Order:
  ///   - network model disabled: most cached events first, ties by lowest
  ///     node id — exactly the Cluster::bestCacheNode heuristic, so
  ///     policies that switch to this API stay bit-identical;
  ///   - network model enabled: cheapest estimatedSecPerEvent first (which
  ///     folds in live link contention), ties prefer same-switch sources,
  ///     then most cached events, then lowest id.
  /// Both hosts share this default; overrides only adjust locking/topology.
  [[nodiscard]] virtual std::vector<PlacementCandidate> rankPlacements(NodeId dst,
                                                                       EventRange range);

  /// Estimated sustained transfer rate (bytes/s) of a bulk copy into `dst`
  /// from `src` (kNoNode = the tertiary store). The default derives it from
  /// the static cost model plus the configured link capacities; hosts with a
  /// live network model override it with contention-aware rates.
  [[nodiscard]] virtual double estimatedTransferBytesPerSec(NodeId dst, NodeId src) const;

  // --- access planning --------------------------------------------------
  /// Evaluate every viable access strategy for reading `range` into `dst`
  /// and return the plans ranked cheapest-first by contention-aware cost.
  ///
  /// Dispatch intent: remote-read plans (one per viable serving node, gated
  /// against the tertiary alternative and, optionally, replica-congestion)
  /// followed by a final no-remote fallback plan (stream uncached data from
  /// tertiary). The list is never empty and `front()` reproduces the legacy
  /// per-policy heuristics exactly: with the network model off (or
  /// `goal.topologyAware == false`) remote candidates come from the
  /// cache-content heuristic (Cluster::bestCacheNode); with it on, from the
  /// contention-aware rankPlacements order.
  ///
  /// Prefetch intent: plans for warming `dst`'s cache, ranked by pure
  /// transfer cost (no CPU folded): each viable remote source plus a
  /// tertiary-streaming plan, each stamped with `goal.deadline`.
  ///
  /// Within one scheduling round the candidate enumeration is memoized,
  /// keyed on (dst, range, goal) and valid while planEpoch() is unchanged —
  /// a policy re-pricing the same stripe against several destinations (or a
  /// work-stealing pass scoring many queued jobs) pays the O(candidates)
  /// scan once. planEpoch() == 0 disables the memo entirely.
  [[nodiscard]] virtual std::vector<AccessPlan> planAccess(NodeId dst, EventRange range,
                                                           AccessGoal goal = {});

  /// Monotone counter identifying the host's current planning state. Any
  /// mutation that can change planAccess results (cache content, network
  /// flows, node liveness, run state, simulated time) must advance it.
  /// 0 (the default) means "no epoch tracking": planAccess memoization is
  /// off and every call re-enumerates. The simulator overrides this.
  [[nodiscard]] virtual std::uint64_t planEpoch() const { return 0; }

  /// planAccess memo effectiveness counters (bench/ext_scheduler_overhead).
  /// Lookups count every planAccess call made while the memo is active;
  /// hits count the subset served from the memo without re-enumeration.
  struct PlanMemoStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
  };
  [[nodiscard]] PlanMemoStats planMemoStats() const { return planMemoStats_; }

 private:
  /// Memo key for planAccess: destination, range, and every goal field that
  /// influences the plan list.
  struct PlanMemoKey {
    NodeId dst;
    EventIndex begin;
    EventIndex end;
    int intent;
    int replicationThreshold;
    double replicaCongestionFactor;
    bool topologyAware;
    SimTime deadline;
    friend bool operator==(const PlanMemoKey&, const PlanMemoKey&) = default;
  };
  struct PlanMemoHash {
    std::size_t operator()(const PlanMemoKey& k) const;
  };

  /// Uncached enumeration (the original planAccess body).
  [[nodiscard]] std::vector<AccessPlan> enumerateAccessPlans(NodeId dst, EventRange range,
                                                             const AccessGoal& goal);

  std::uint64_t planMemoEpoch_ = 0;
  std::unordered_map<PlanMemoKey, std::vector<AccessPlan>, PlanMemoHash> planMemo_;
  PlanMemoStats planMemoStats_;
};

}  // namespace ppsched
