// Policy registry: create any of the paper's scheduling policies by name.
//
// Names: "farm", "splitting", "cache_oriented", "out_of_order",
// "replication", "delayed", "adaptive", "mixed", "prefetch_delayed",
// "eevdf".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sched/adaptive.h"
#include "sched/eevdf.h"

namespace ppsched {

/// Union of all per-policy knobs; each policy reads only its own.
struct PolicyParams {
  /// out_of_order / replication: starvation promotion limit (paper: 2 days).
  Duration starvationLimit = 2 * units::day;
  /// replication: replicate on the Nth remote access (paper: 3).
  int replicationThreshold = 3;
  /// replication: rank serving nodes by contention-aware cost when the
  /// network model is on (false = the paper's cache-content heuristic).
  bool topologyAware = true;
  /// replication: withhold replica copies when the chosen source's cost
  /// exceeds this multiple of the uncontended remote-read cost.
  double replicaCongestionFactor = 1.5;
  /// replication: how stolen subjobs access remote data. "" or "planned"
  /// delegates to the host's access planner; "always_remote",
  /// "always_replicate" and "never_remote" pin one fixed mechanism
  /// (the strategy-matrix arms of bench/ext_strategy_matrix).
  std::string accessMode;
  /// prefetch_delayed: skip warming transfers costlier than this multiple
  /// of the uncontended tertiary transfer.
  double prefetchMaxCostFactor = 1.5;
  /// delayed: the fixed period delay (paper: 11 h / 2 days / 1 week).
  Duration periodDelay = 2 * units::day;
  /// delayed / adaptive: stripe size in events (paper: 200 to 25000).
  std::uint64_t stripeEvents = 5000;
  /// adaptive: load -> delay calibration; empty selects the built-in table.
  std::vector<AdaptiveLevel> adaptiveTable;
  /// adaptive: use the online feedback controller instead of the table.
  bool adaptiveFeedback = false;
  /// delayed / adaptive: window for the observed-load estimate.
  Duration loadWindow = 96 * units::hour;
  /// eevdf: per-class weights/deadlines and the cache-affinity window; also
  /// carries the trace-side group -> class mapping (interactiveGroups).
  QosParams qos;
};

/// Instantiate a policy by name (throws std::invalid_argument for unknown
/// names).
std::unique_ptr<ISchedulerPolicy> makePolicy(const std::string& name,
                                             const PolicyParams& params = {});

/// All registered policy names, in the paper's order of presentation.
std::vector<std::string> policyNames();

}  // namespace ppsched
