#include "core/registry.h"

#include <stdexcept>

#include "sched/cache_oriented.h"
#include "sched/delayed.h"
#include "sched/eevdf.h"
#include "sched/farm.h"
#include "sched/mixed.h"
#include "sched/out_of_order.h"
#include "sched/replication.h"
#include "sched/splitting.h"

namespace ppsched {

std::unique_ptr<ISchedulerPolicy> makePolicy(const std::string& name,
                                             const PolicyParams& params) {
  if (name == "farm") return std::make_unique<FarmScheduler>();
  if (name == "splitting") return std::make_unique<SplittingScheduler>();
  if (name == "cache_oriented") return std::make_unique<CacheOrientedScheduler>();
  if (name == "out_of_order") {
    OutOfOrderScheduler::Params p;
    p.starvationLimit = params.starvationLimit;
    return std::make_unique<OutOfOrderScheduler>(p);
  }
  if (name == "replication") {
    ReplicationScheduler::Params p;
    p.base.starvationLimit = params.starvationLimit;
    p.replicationThreshold = params.replicationThreshold;
    p.topologyAware = params.topologyAware;
    p.replicaCongestionFactor = params.replicaCongestionFactor;
    if (params.accessMode.empty() || params.accessMode == "planned") {
      p.mode = ReplicationScheduler::Mode::Planned;
    } else if (params.accessMode == "always_remote") {
      p.mode = ReplicationScheduler::Mode::AlwaysRemote;
    } else if (params.accessMode == "always_replicate") {
      p.mode = ReplicationScheduler::Mode::AlwaysReplicate;
    } else if (params.accessMode == "never_remote") {
      p.mode = ReplicationScheduler::Mode::NeverRemote;
    } else {
      throw std::invalid_argument("unknown accessMode: " + params.accessMode +
                                  " (known: planned, always_remote, always_replicate, "
                                  "never_remote)");
    }
    return std::make_unique<ReplicationScheduler>(p);
  }
  if (name == "delayed") {
    DelayedParams p;
    p.stripeEvents = params.stripeEvents;
    p.loadWindow = params.loadWindow;
    return std::make_unique<DelayedScheduler>(p, std::make_unique<FixedDelay>(params.periodDelay));
  }
  if (name == "adaptive") {
    DelayedParams p;
    p.stripeEvents = params.stripeEvents;
    p.loadWindow = params.loadWindow;
    if (params.adaptiveFeedback) {
      return std::make_unique<DelayedScheduler>(
          p, std::make_unique<FeedbackAdaptiveDelay>(), "adaptive");
    }
    return makeAdaptiveScheduler(p, params.adaptiveTable);
  }
  if (name == "prefetch_delayed") {
    DelayedParams p;
    p.stripeEvents = params.stripeEvents;
    p.loadWindow = params.loadWindow;
    p.prefetch = true;
    p.prefetchMaxCostFactor = params.prefetchMaxCostFactor;
    return std::make_unique<DelayedScheduler>(
        p, std::make_unique<FixedDelay>(params.periodDelay), "prefetch_delayed");
  }
  if (name == "eevdf") {
    EevdfScheduler::Params p;
    p.qos = params.qos;
    p.stripeEvents = params.stripeEvents;
    return std::make_unique<EevdfScheduler>(p);
  }
  if (name == "mixed") {
    MixedScheduler::Params p;
    p.periodDelay = params.periodDelay;
    p.stripeEvents = params.stripeEvents;
    p.starvationLimit = params.starvationLimit;
    return std::make_unique<MixedScheduler>(p);
  }
  std::string known;
  for (const std::string& n : policyNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown policy: " + name + " (known policies: " + known + ")");
}

std::vector<std::string> policyNames() {
  // The paper's policies in order of presentation, then this repository's
  // implementation of the paper's §7 future work.
  return {"farm",    "splitting", "cache_oriented",   "out_of_order", "replication",
          "delayed", "adaptive",  "mixed",            "prefetch_delayed", "eevdf"};
}

}  // namespace ppsched
