#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace ppsched {

MetricsCollector::MetricsCollector(const CostModel& cost, WarmupConfig warmup)
    : cost_(cost), warmup_(warmup) {}

void MetricsCollector::setQosWeights(double bulkWeight, double interactiveWeight) {
  if (!(bulkWeight > 0.0) || !(interactiveWeight > 0.0)) {
    throw std::invalid_argument("metrics: QoS weights must be > 0");
  }
  qosWeights_[static_cast<std::size_t>(QosClass::Bulk)] = bulkWeight;
  qosWeights_[static_cast<std::size_t>(QosClass::Interactive)] = interactiveWeight;
}

bool MetricsCollector::measured(const JobRecord& r) const {
  return r.id >= warmup_.jobs && r.arrival >= warmup_.time;
}

JobRecord& MetricsCollector::mutableRecord(JobId job) {
  if (job >= records_.size()) throw std::out_of_range("unknown JobId in metrics");
  return records_[job];
}

const JobRecord& MetricsCollector::record(JobId job) const {
  if (job >= records_.size()) throw std::out_of_range("unknown JobId in metrics");
  return records_[job];
}

void MetricsCollector::onArrival(const Job& job, SimTime now) {
  if (job.id != records_.size()) {
    throw std::logic_error("metrics expects dense, increasing JobIds");
  }
  JobRecord rec;
  rec.id = job.id;
  rec.user = job.user;
  rec.qos = job.qos;
  rec.arrival = job.arrival;
  rec.events = job.events();
  records_.push_back(rec);
  inSystem_.set(now, static_cast<double>(jobsInSystem()));
  if (measured(rec)) {
    if (firstMeasuredArrival_ < 0.0) firstMeasuredArrival_ = now;
    lastMeasuredArrival_ = now;
    ++measuredArrivals_;
    inSystemTrend_.add(now, static_cast<double>(jobsInSystem()));
    inSystemSamples_.emplace_back(now, static_cast<double>(jobsInSystem()));
  }
}

void MetricsCollector::onFirstStart(JobId job, SimTime now) {
  JobRecord& rec = mutableRecord(job);
  if (rec.firstStart < 0.0) rec.firstStart = now;
}

void MetricsCollector::onCompletion(JobId job, SimTime now) {
  JobRecord& rec = mutableRecord(job);
  if (rec.completed()) throw std::logic_error("job completed twice");
  if (rec.firstStart < 0.0) throw std::logic_error("job completed without starting");
  rec.completion = now;
  ++completed_;
  inSystem_.set(now, static_cast<double>(jobsInSystem()));
  if (measured(rec)) {
    ++measuredCompletions_;
    inSystemTrend_.add(now, static_cast<double>(jobsInSystem()));
    inSystemSamples_.emplace_back(now, static_cast<double>(jobsInSystem()));
  }
}

void MetricsCollector::onSchedulingDelay(JobId job, Duration delay) {
  mutableRecord(job).schedulingDelay += delay;
}

void MetricsCollector::onEventsProcessed(DataSource source, std::uint64_t events, SimTime) {
  switch (source) {
    case DataSource::LocalCache:
      cachedEvents_ += events;
      break;
    case DataSource::RemoteCache:
      remoteEvents_ += events;
      break;
    case DataSource::Tertiary:
      tertiaryEvents_ += events;
      break;
  }
}

void MetricsCollector::onReplication(std::uint64_t events) {
  replicatedEvents_ += events;
  ++replicationOps_;
}

void MetricsCollector::onPrefetch(std::uint64_t events) {
  prefetchedEvents_ += events;
  ++prefetchOps_;
}

void MetricsCollector::onRunLost(JobId job, std::uint64_t discardedEvents) {
  ++mutableRecord(job).lostRuns;
  ++lostRuns_;
  lostEvents_ += discardedEvents;
}

RunResult MetricsCollector::finalize(SimTime endTime, bool withHistogram) const {
  RunResult out;
  out.arrivedJobs = records_.size();
  out.completedJobs = completed_;
  out.simulatedTime = endTime;
  out.abortedOverloaded = abortedOverloaded_;

  StreamingStats speedup;
  StreamingStats processing;
  SampleSet waits;
  StreamingStats waitsExDelay;
  for (const JobRecord& rec : records_) {
    if (!rec.completed() || !measured(rec)) continue;
    const double ref = cost_.singleNodeUncachedTime(rec.events);
    const double proc = rec.processingTime();
    speedup.add(proc > 0.0 ? ref / proc : 0.0);
    processing.add(proc);
    waits.add(rec.waitingTime());
    waitsExDelay.add(std::max(0.0, rec.waitingTime() - rec.schedulingDelay));
  }
  out.measuredJobs = waits.count();
  if (out.measuredJobs > 0) {
    out.avgSpeedup = speedup.mean();
    out.avgProcessing = processing.mean();
    out.avgWait = waits.mean();
    out.avgWaitExDelay = waitsExDelay.mean();
    out.medianWait = waits.quantile(0.5);
    out.p95Wait = waits.quantile(0.95);
    out.maxWait = waits.max();
  }

  // Per-user fairness over the same measured window. Tagless jobs all fall
  // into the kNoUser bucket, so untagged runs report one pseudo-user with
  // fairness exactly 1.0 and every aggregate above is untouched.
  {
    struct Acc {
      SampleSet waits;
      std::uint64_t events = 0;
    };
    std::map<UserId, Acc> byUser;
    for (const JobRecord& rec : records_) {
      if (!rec.completed() || !measured(rec)) continue;
      Acc& acc = byUser[rec.user];
      acc.waits.add(rec.waitingTime());
      acc.events += rec.events;
    }
    double sumX = 0.0, sumX2 = 0.0;
    for (const auto& [user, acc] : byUser) {
      const auto x = static_cast<double>(acc.events);
      sumX += x;
      sumX2 += x * x;
    }
    for (const auto& [user, acc] : byUser) {
      UserStats us;
      us.user = user;
      us.jobs = acc.waits.count();
      us.meanWait = acc.waits.mean();
      us.p95Wait = acc.waits.quantile(0.95);
      us.servedEvents = acc.events;
      us.eventShare = sumX > 0.0 ? static_cast<double>(acc.events) / sumX : 0.0;
      out.userStats.push_back(us);
    }
    std::sort(out.userStats.begin(), out.userStats.end(),
              [](const UserStats& a, const UserStats& b) {
                return a.servedEvents != b.servedEvents ? a.servedEvents > b.servedEvents
                                                        : a.user < b.user;
              });
    out.userFairness = byUser.size() > 1 && sumX2 > 0.0
                           ? (sumX * sumX) / (static_cast<double>(byUser.size()) * sumX2)
                           : 1.0;
  }

  // Weighted per-(user, class) fairness: a share is fair when proportional
  // to its class weight, so the Jain index runs over x = events / weight.
  {
    std::map<std::pair<UserId, QosClass>, std::uint64_t> byAccount;
    for (const JobRecord& rec : records_) {
      if (!rec.completed() || !measured(rec)) continue;
      byAccount[{rec.user, rec.qos}] += rec.events;
    }
    double sumX = 0.0, sumX2 = 0.0;
    for (const auto& [key, events] : byAccount) {
      const double x =
          static_cast<double>(events) / qosWeights_[static_cast<std::size_t>(key.second)];
      sumX += x;
      sumX2 += x * x;
    }
    out.weightedUserFairness =
        byAccount.size() > 1 && sumX2 > 0.0
            ? (sumX * sumX) / (static_cast<double>(byAccount.size()) * sumX2)
            : 1.0;
  }

  // Per-class wait / tail-latency split (interactive vs bulk).
  {
    struct Acc {
      SampleSet waits;
      std::uint64_t events = 0;
    };
    Acc byClass[kNumQosClasses];
    std::uint64_t classTotal = 0;
    for (const JobRecord& rec : records_) {
      if (!rec.completed() || !measured(rec)) continue;
      Acc& acc = byClass[static_cast<std::size_t>(rec.qos)];
      acc.waits.add(rec.waitingTime());
      acc.events += rec.events;
      classTotal += rec.events;
    }
    for (int c = 0; c < kNumQosClasses; ++c) {
      const Acc& acc = byClass[c];
      if (acc.waits.count() == 0) continue;
      ClassStats cs;
      cs.cls = static_cast<QosClass>(c);
      cs.jobs = acc.waits.count();
      cs.meanWait = acc.waits.mean();
      cs.p95Wait = acc.waits.quantile(0.95);
      cs.p99Wait = acc.waits.quantile(0.99);
      cs.servedEvents = acc.events;
      cs.eventShare =
          classTotal > 0 ? static_cast<double>(acc.events) / static_cast<double>(classTotal) : 0.0;
      out.classStats.push_back(cs);
    }
  }

  const std::uint64_t totalEvents = cachedEvents_ + remoteEvents_ + tertiaryEvents_;
  if (totalEvents > 0) {
    out.cacheHitFraction = static_cast<double>(cachedEvents_) / static_cast<double>(totalEvents);
    out.remoteReadFraction = static_cast<double>(remoteEvents_) / static_cast<double>(totalEvents);
  }
  out.tertiaryEvents = tertiaryEvents_;
  out.processedEvents = totalEvents;
  out.replicatedEvents = replicatedEvents_;
  out.replicationOps = replicationOps_;
  out.prefetchedEvents = prefetchedEvents_;
  out.prefetchOps = prefetchOps_;
  out.nodeFailures = nodeFailures_;
  out.lostRuns = lostRuns_;
  out.lostEvents = lostEvents_;

  out.avgJobsInSystem = inSystem_.average(endTime);
  out.inSystemSlopePerHour = inSystemTrend_.slope() * units::hour;
  if (firstMeasuredArrival_ >= 0.0 && endTime > firstMeasuredArrival_) {
    const double hours = units::toHours(endTime - firstMeasuredArrival_);
    out.throughputJobsPerHour = static_cast<double>(measuredCompletions_) / hours;

    // Overload verdict (the paper cuts curves "when queues start growing
    // indefinitely"): the engine hit its hard cap, or the time-weighted
    // in-system count of the second half of the measurement window clearly
    // exceeds that of the first half. The half-window comparison is robust
    // to the sawtooth of delayed scheduling, which a raw slope is not.
    const SimTime mid = 0.5 * (firstMeasuredArrival_ + endTime);
    double firstSum = 0.0, firstTime = 0.0, secondSum = 0.0, secondTime = 0.0;
    for (std::size_t i = 0; i < inSystemSamples_.size(); ++i) {
      const auto [t, v] = inSystemSamples_[i];
      const SimTime next =
          i + 1 < inSystemSamples_.size() ? inSystemSamples_[i + 1].first : endTime;
      // The signal is piecewise constant at v over [t, next); split the
      // span at the midpoint.
      const double inFirst = std::max(0.0, std::min(next, mid) - t);
      const double inSecond = std::max(0.0, next - std::max(t, mid));
      firstSum += v * inFirst;
      firstTime += inFirst;
      secondSum += v * inSecond;
      secondTime += inSecond;
    }
    const double firstMean = firstTime > 0.0 ? firstSum / firstTime : 0.0;
    const double secondMean = secondTime > 0.0 ? secondSum / secondTime : 0.0;
    // A genuine overload grows monotonically, so the final backlog must
    // also dominate the window means; a mid-run transient that drained does
    // not qualify.
    const double finalBacklog = static_cast<double>(jobsInSystem());
    const bool grewAcrossWindow = secondMean > firstMean + std::max(8.0, 0.6 * firstMean);
    const bool endsHigh = finalBacklog > 0.5 * (firstMean + secondMean) + 8.0;
    out.overloaded = abortedOverloaded_ || (grewAcrossWindow && endsHigh);
  } else {
    out.overloaded = abortedOverloaded_;
  }

  if (withHistogram && out.measuredJobs > 0) {
    // Fig 4 axes: ~minutes to days, log-spaced.
    LogHistogram hist(units::minute, 4 * units::day, 28);
    for (const JobRecord& rec : records_) {
      if (!rec.completed() || !measured(rec)) continue;
      hist.add(std::max(rec.waitingTime(), 1.0));
    }
    for (std::size_t i = 0; i < hist.bucketCount(); ++i) {
      out.waitHistogram.emplace_back(hist.bucketLow(i), hist.countInBucket(i));
    }
  }
  return out;
}

}  // namespace ppsched
